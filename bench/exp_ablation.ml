(* Ablations over the design choices DESIGN.md calls out:

   1. Eviction batch size for the rate-limited pager — the reason the
      ay_* ABI takes page lists (§5.2.1) and the driver evicts 16-page
      batches (§7.1).
   2. ORAM cache size — the enclave-managed cache is what Autarky makes
      safe (§5.2.2); sweeping it shows the practicality cliff.
   3. The accessed/dirty check cost — §7 assumes a pessimistic 10 cycles
      per TLB fill; sweep it to show the claim is robust.
   4. Cluster write-back policy — dirty-only (CoSMIX) vs always
      (dirtiness-oblivious) ORAM cache eviction. *)

let page = Exp_common.page

(* --- 1. eviction batch size ------------------------------------------- *)

let batch_sweep () =
  Harness.Report.subheading "eviction batch size (rate-limited paging)";
  let run batch =
    let sys =
      Harness.System.create ~epc_frames:1_024 ~epc_limit:512 ~enclave_pages:4_096
        ~self_paging:true ~budget:256 ()
    in
    let rt = Harness.System.runtime_exn sys in
    let rl = Autarky.Policy_rate_limit.create ~runtime:rt ~evict_batch:batch () in
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
    let _burn = Harness.System.reserve sys ~pages:512 in
    let n = 512 in
    let b = Harness.System.reserve sys ~pages:n in
    Harness.System.manage sys (List.init n (fun i -> b + i));
    let vm = Harness.System.vm sys () in
    let rng = Metrics.Rng.create ~seed:7L in
    let ops = 20_000 in
    let r =
      Harness.Measure.run sys (fun () ->
          for _ = 1 to ops do
            vm.Workloads.Vm.read ((b + Metrics.Rng.int rng n) * page)
          done)
    in
    (batch, float_of_int r.Harness.Measure.cycles /. float_of_int ops,
     r.Harness.Measure.page_faults)
  in
  let rows =
    Par.map
      (fun batch ->
        let b, cyc, faults = run batch in
        [ string_of_int b; Harness.Report.f1 cyc; string_of_int faults ])
      [ 1; 4; 16; 64 ]
  in
  Harness.Report.table ~header:[ "batch"; "cycles/access"; "faults" ] ~rows;
  Harness.Report.note
    "larger batches amortize the host-call round trip, at the cost of \
     evicting still-useful pages (the fault column)"

(* --- 1b. eviction policy: FIFO vs fault-frequency ----------------------- *)

let eviction_policy_sweep () =
  Harness.Report.subheading
    "victim policy without accessed bits: FIFO vs fault-frequency (§5.1.4)";
  let run eviction skew =
    let sys =
      Harness.System.create ~epc_frames:1_024 ~epc_limit:512 ~enclave_pages:4_096
        ~self_paging:true ~budget:256 ()
    in
    let rt = Harness.System.runtime_exn sys in
    let rl = Autarky.Policy_rate_limit.create ~runtime:rt ~eviction () in
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
    let _burn = Harness.System.reserve sys ~pages:512 in
    let n = 512 in
    let b = Harness.System.reserve sys ~pages:n in
    Harness.System.manage sys (List.init n (fun i -> b + i));
    let vm = Harness.System.vm sys () in
    let rng = Metrics.Rng.create ~seed:9L in
    let dist = Metrics.Dist.hotspot ~n ~hot_fraction:0.1 ~hot_probability:skew in
    let ops = 20_000 in
    let r =
      Harness.Measure.run sys (fun () ->
          for _ = 1 to ops do
            vm.Workloads.Vm.read ((b + Metrics.Dist.sample dist rng) * page)
          done)
    in
    r.Harness.Measure.page_faults
  in
  let rows =
    Par.map
      (fun skew ->
        [ Printf.sprintf "hotspot p=%.2f" skew;
          string_of_int (run `Fifo skew);
          string_of_int (run `Fault_frequency skew) ])
      [ 0.5; 0.8; 0.95 ]
  in
  Harness.Report.table
    ~header:[ "request skew"; "FIFO faults"; "fault-frequency faults" ] ~rows;
  Harness.Report.note
    "fault-frequency learns the hot set the runtime cannot see through \
     accessed bits — the coarse-grain heuristic §5.1.4 proposes"

(* --- 2. ORAM cache size ------------------------------------------------ *)

let oram_cache_sweep () =
  Harness.Report.subheading "ORAM page-cache size (the Autarky-enabled cache)";
  let data_pages = 2_048 in
  let run cache_pages =
    let b =
      Exp_common.build ~scheme:Exp_common.Oram_cached ~epc_frames:4_096
        ~epc_limit:3_072 ~enclave_pages:16_384 ~heap_pages:data_pages
        ~budget:2_900 ~oram_cache_pages:cache_pages ()
    in
    b.Exp_common.finish ();
    let rng = Metrics.Rng.create ~seed:8L in
    let ops = 5_000 in
    let r =
      Harness.Measure.run b.Exp_common.sys (fun () ->
          for _ = 1 to ops do
            b.Exp_common.vm.Workloads.Vm.read
              ((Autarky.Allocator.base_vpage b.Exp_common.heap
               + Metrics.Rng.int rng data_pages)
              * page)
          done)
    in
    float_of_int r.Harness.Measure.cycles /. float_of_int ops
  in
  let rows =
    Par.map
      (fun frac ->
        let cache = data_pages * frac / 100 in
        [ Printf.sprintf "%d%% of data" frac; string_of_int cache;
          Harness.Report.f0 (run cache) ])
      [ 10; 25; 50; 75 ]
  in
  Harness.Report.table ~header:[ "cache"; "pages"; "cycles/access" ] ~rows;
  Harness.Report.note
    "without Autarky this cache is unsafe and every miss-ratio point \
     collapses to the uncached column of fig6"

(* --- 3. A/D-check cost -------------------------------------------------- *)

let ad_check_sweep () =
  Harness.Report.subheading "accessed/dirty check cost (nbench geomean, analytic)";
  (* One run counts fills; the check cost is applied analytically, as in
     the paper. *)
  let measured =
    Par.map
      (fun app ->
        let pages = app.Workloads.Nbench.nb_ws_pages in
        let sys =
          Harness.System.create ~epc_frames:(pages + 64) ~epc_limit:(pages + 32)
            ~enclave_pages:(pages + 64) ~self_paging:true ~budget:(pages + 16) ()
        in
        let base = Harness.System.reserve sys ~pages in
        Harness.System.pin sys (List.init pages (fun i -> base + i));
        let vm0 = Harness.System.vm sys () in
        let vm =
          { vm0 with
            Workloads.Vm.read = (fun a -> vm0.Workloads.Vm.read (a + (base * page))) }
        in
        let rng = Metrics.Rng.create ~seed:101L in
        let clock = Harness.System.clock sys in
        let counters = Harness.System.counters sys in
        let fills = ref 0 and cycles = ref 0 in
        Harness.System.run_in_enclave sys (fun () ->
            Workloads.Nbench.run app ~vm ~rng ~accesses:20_000;
            Metrics.Clock.reset clock;
            Workloads.Nbench.run app ~vm ~rng ~accesses:60_000;
            fills := Metrics.Counters.get counters "mmu.tlb_miss";
            cycles := Metrics.Clock.now clock);
        (!fills, !cycles))
      Workloads.Nbench.apps
  in
  let rows =
    List.map
      (fun check ->
        let geo =
          Metrics.Stats.geomean
            (List.map
               (fun (fills, cycles) ->
                 1.0
                 +. Workloads.Nbench.analytic_slowdown ~check_cycles:check ~fills
                      ~base_cycles:cycles)
               measured)
          -. 1.0
        in
        [ string_of_int check; Harness.Report.pct geo ])
      [ 5; 10; 20; 40 ]
  in
  Harness.Report.table ~header:[ "check cycles/fill"; "geomean slowdown" ] ~rows;
  Harness.Report.note "the 0.07%-class overhead claim survives a 4x cost error"

(* --- 4. write-back policy ------------------------------------------------ *)

let writeback_sweep () =
  Harness.Report.subheading "ORAM cache write-back: dirty-only vs always";
  let run writeback write_fraction =
    let sys =
      Harness.System.create ~epc_frames:2_048 ~epc_limit:1_024
        ~enclave_pages:8_192 ~self_paging:true ~budget:900 ()
    in
    let rt = Harness.System.runtime_exn sys in
    let data_pages = 1_024 in
    let data_base = Harness.System.reserve sys ~pages:data_pages in
    let cache_pages = 256 in
    let cache_base = Harness.System.reserve sys ~pages:cache_pages in
    Harness.System.pin sys (List.init cache_pages (fun i -> cache_base + i));
    let oram =
      Oram.Path_oram.create
        ~clock:(Harness.System.clock sys)
        ~rng:(Metrics.Rng.create ~seed:3L) ~n_blocks:data_pages ()
    in
    let cache =
      Autarky.Oram_cache.create ~writeback ~machine:(Harness.System.machine sys)
        ~enclave:(Harness.System.enclave sys)
        ~touch:(fun a k -> Sgx.Cpu.access (Harness.System.cpu sys) a k)
        ~oram ~data_base_vpage:data_base ~n_pages:data_pages
        ~cache_base_vpage:cache_base ~capacity_pages:cache_pages ()
    in
    let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
    Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol);
    let rng = Metrics.Rng.create ~seed:4L in
    let ops = 5_000 in
    let r =
      Harness.Measure.run sys (fun () ->
          for _ = 1 to ops do
            let addr = (data_base + Metrics.Rng.int rng data_pages) * page in
            if Metrics.Rng.float rng < write_fraction then
              Autarky.Oram_cache.access cache addr Sgx.Types.Write
            else Autarky.Oram_cache.access cache addr Sgx.Types.Read
          done)
    in
    float_of_int r.Harness.Measure.cycles /. float_of_int ops
  in
  let rows =
    Par.map
      (fun wf ->
        [ Printf.sprintf "%.0f%% writes" (100.0 *. wf);
          Harness.Report.f0 (run `Dirty_only wf);
          Harness.Report.f0 (run `Always wf) ])
      [ 0.0; 0.3; 1.0 ]
  in
  Harness.Report.table
    ~header:[ "workload"; "dirty-only cyc/access"; "always cyc/access" ] ~rows;
  Harness.Report.note
    "dirty-only (CoSMIX) is cheaper on read-heavy loads but its eviction \
     traffic reveals page dirtiness; `Always trades that back"

(* --- 5. exitless vs trap-based host calls -------------------------------- *)

let hostcall_sweep () =
  Harness.Report.subheading
    "ay_* host calls: exitless (Eleos/HotCalls) vs trap-based ocalls";
  let run model =
    let sys =
      Harness.System.create ~model ~epc_frames:1_024 ~epc_limit:512
        ~enclave_pages:4_096 ~self_paging:true ~budget:256 ()
    in
    let rt = Harness.System.runtime_exn sys in
    let rl = Autarky.Policy_rate_limit.create ~runtime:rt ~evict_batch:1 () in
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
    let _burn = Harness.System.reserve sys ~pages:512 in
    let n = 512 in
    let b = Harness.System.reserve sys ~pages:n in
    Harness.System.manage sys (List.init n (fun i -> b + i));
    let vm = Harness.System.vm sys () in
    let rng = Metrics.Rng.create ~seed:12L in
    let ops = 10_000 in
    let r =
      Harness.Measure.run sys (fun () ->
          for _ = 1 to ops do
            vm.Workloads.Vm.read ((b + Metrics.Rng.int rng n) * page)
          done)
    in
    float_of_int r.Harness.Measure.cycles /. float_of_int ops
  in
  let m = Metrics.Cost_model.default in
  let trap_model =
    (* An ocall that actually leaves the enclave: EEXIT + syscall + EENTER. *)
    { m with exitless_call = m.eexit + m.syscall + m.eenter }
  in
  let exitless, trapped =
    match Par.map run [ m; trap_model ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Harness.Report.table
    ~header:[ "host-call mechanism"; "cycles/access (paging-heavy)" ]
    ~rows:
      [ [ "exitless (1.2k/call)"; Harness.Report.f1 exitless ];
        [ Printf.sprintf "trap-based (%dk/call)"
            ((m.eexit + m.syscall + m.eenter) / 1000);
          Harness.Report.f1 trapped ] ];
  Harness.Report.note
    (Printf.sprintf
       "exitless host calls (the prototype's configuration, after Eleos) save \
        %.0f%% on this fault-heavy phase"
       (100.0 *. (trapped -. exitless) /. trapped))

let run () =
  Harness.Report.heading "ablation — design-choice sweeps";
  batch_sweep ();
  eviction_policy_sweep ();
  oram_cache_sweep ();
  ad_check_sweep ();
  writeback_sweep ();
  hostcall_sweep ()
