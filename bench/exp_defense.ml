(* SLO-under-attack: scripted adversary waves against the live serving
   fleet with the escalation controller in place, reporting p99 / shed /
   bits leaked before, during and after each wave plus the controller's
   decision timeline.  Writes BENCH_defense.json (schema
   autarky-defense/1) in the current directory — the committed baseline
   lives at the repository root.  Only the "wall" block depends on the
   machine; everything else is byte-identical at any --jobs. *)

let run () =
  print_endline "== defense: SLO-under-attack, waves x policy ladders ==";
  let jobs = Par.get_jobs () in
  let t0 = Unix.gettimeofday () in
  let cells = Defense.Defend.run ~quick:false ~seed:42 ~jobs () in
  let matrix_s = Unix.gettimeofday () -. t0 in
  Defense.Defend.print_table cells;
  let json =
    Defense.Defend.to_json ~wall:(jobs, matrix_s) ~quick:false ~seed:42 cells
  in
  Out_channel.with_open_bin "BENCH_defense.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote      : BENCH_defense.json (%d cells)\n%!"
    (List.length cells)
