(* Shared worker-count state for the bench experiments: main.ml parses
   --jobs once, experiments shard their independent cells via [map].
   Serial (jobs = 1) by default, so every experiment keeps its exact
   sequential behaviour unless asked otherwise.

   Contract for callers: tasks passed to [map] must be self-contained
   cells (own platform, own RNG), and anything printed must move after
   the merge — [map] returns results in task order regardless of the
   worker count, so post-merge output is byte-identical at any --jobs. *)

let jobs = ref 1
let set_jobs n = jobs := n
let get_jobs () = !jobs
let map f xs = Parallel.Pool.map ~jobs:!jobs f xs
