(* Figure 8: Memcached under YCSB workload C, four request distributions
   x four schemes (insecure baseline, rate-limited paging, 10-page
   clusters, cached ORAM), at 1/8 the paper's 400 MB store.

   Paper shapes: rate-limit costs least; uniform favours clusters over
   ORAM; as skew grows the gap closes and ORAM can win; on the hottest
   distribution ORAM is within ~60% of the insecure baseline. *)

let n_entries = 49_152
let value_bytes = 1_024
let heap_pages = 16_384
let epc_limit = 6_000
let oram_cache = 4_000
let warmup = 500
let requests = 4_000

let distributions =
  [ ("uniform", fun () -> Metrics.Dist.uniform ~n:n_entries);
    ("zipf(0.99)", fun () -> Metrics.Dist.scrambled_zipfian ~n:n_entries ());
    ("hotspot(0.9)", fun () ->
       Metrics.Dist.hotspot ~n:n_entries ~hot_fraction:0.01 ~hot_probability:0.9);
    ("hotspot(0.99)", fun () ->
       Metrics.Dist.hotspot ~n:n_entries ~hot_fraction:0.01 ~hot_probability:0.99) ]

let schemes =
  [ Exp_common.Baseline; Exp_common.Rate_limit; Exp_common.Clusters 10;
    Exp_common.Oram_cached ]

let build_store scheme =
  let b =
    Exp_common.build ~scheme ~epc_frames:(epc_limit + 1_024) ~epc_limit
      ~enclave_pages:32_768 ~heap_pages ~budget:(epc_limit - 256)
      ~oram_cache_pages:oram_cache ~rate_limit:64 ()
  in
  let rng = Metrics.Rng.create ~seed:88L in
  let alloc ~bytes = Autarky.Allocator.alloc b.Exp_common.heap ~bytes in
  let kv =
    Workloads.Kvstore.create ~vm:b.Exp_common.vm ~alloc ~rng ~n_entries
      ~value_bytes ~slab_pages:10 ()
  in
  b.Exp_common.finish ();
  (b, kv)

let measure (b : Exp_common.built) kv dist =
  let rng = Metrics.Rng.create ~seed:77L in
  let gen = Workloads.Ycsb.workload_c ~dist ~rng in
  let serve () =
    match Workloads.Ycsb.next gen with
    | Workloads.Ycsb.Get k -> ignore (Workloads.Kvstore.get kv ~key:k)
    | _ -> ()
  in
  for _ = 1 to warmup do
    serve ()
  done;
  let r =
    Harness.Measure.run b.Exp_common.sys (fun () ->
        for _ = 1 to requests do
          serve ()
        done)
  in
  Harness.Measure.throughput r ~ops:requests

let run () =
  Harness.Report.heading "fig8 — Memcached (YCSB C) throughput, 1/8 scale";
  Printf.printf "%d entries x %d B (%.0f MB), EPC allowance %.0f MB, ORAM cache %.0f MB\n"
    n_entries value_bytes
    (float_of_int (n_entries * (value_bytes + 64)) /. 1048576.0)
    (float_of_int (epc_limit * 4096) /. 1048576.0)
    (float_of_int (oram_cache * 4096) /. 1048576.0);
  (* Build each scheme's store once; run all distributions against it.
     Schemes are independent cells (own platform, own RNGs), so they
     shard across the domain pool; progress lines print after the merge
     so the output is byte-identical at any --jobs. *)
  let results =
    Par.map
      (fun scheme ->
        let b, kv = build_store scheme in
        let tps =
          List.map (fun (dname, mk) -> (dname, measure b kv (mk ()))) distributions
        in
        (scheme, tps))
      schemes
  in
  List.iter
    (fun (scheme, tps) ->
      Printf.printf "  built %s store\n%!" (Exp_common.scheme_name scheme);
      List.iter
        (fun (dname, tp) ->
          Printf.printf "    %-14s %-18s %9.0f req/s\n%!" dname
            (Exp_common.scheme_name scheme) tp)
        tps)
    results;
  let header = "distribution" :: List.map Exp_common.scheme_name schemes in
  let rows =
    List.map
      (fun (dname, _) ->
        dname
        :: List.map
             (fun (_, tps) -> Harness.Report.f0 (List.assoc dname tps))
             results)
      distributions
  in
  Harness.Report.table ~header ~rows;
  (* Shape checks the paper calls out. *)
  let tp scheme dname =
    List.assoc dname (List.assq scheme results)
  in
  let baseline = List.nth schemes 0 in
  let rl = List.nth schemes 1 in
  let cl = List.nth schemes 2 in
  let oram = List.nth schemes 3 in
  Harness.Report.note
    (Printf.sprintf "rate-limit overhead is the lowest of the protections \
                     (uniform: %.0f%% of baseline)"
       (100.0 *. tp rl "uniform" /. tp baseline "uniform"));
  Harness.Report.note
    (Printf.sprintf "uniform: clusters/ORAM = %.2f (paper: clusters ahead)"
       (tp cl "uniform" /. tp oram "uniform"));
  Harness.Report.note
    (Printf.sprintf "hotspot(0.99): clusters/ORAM = %.2f (paper: gap closes, \
                     ORAM can win)"
       (tp cl "hotspot(0.99)" /. tp oram "hotspot(0.99)"));
  Harness.Report.note
    (Printf.sprintf "hotspot(0.99): ORAM at %.0f%% of the insecure baseline \
                     (paper: ~60%% slower)"
       (100.0 *. tp oram "hotspot(0.99)" /. tp baseline "hotspot(0.99)"))
