(* Figure 6: effect of cluster size on hash-table (uthash) throughput,
   against cached ORAM and the uncached (no-Autarky) ORAM baseline.

   Paper setup: 431 MB of 256-byte items, <=10 items/bucket, 190 MB EPC,
   128 MB ORAM cache over a 1 GB PathORAM range.  We run at 1/16 scale
   (same ratios: data 1.74x the EPC allowance, cache 2/3 of it); the
   uncached baseline keeps the full-size 1 GB PathORAM tree, as the
   paper's own fallback experiment did.  Expected shapes: throughput
   inversely proportional to cluster size; rehashing improves clusters
   ~1.5x; cached ORAM crosses the cluster line at around 10 pages per
   cluster; uncached ORAM is orders of magnitude slower. *)

let n_items = 105_472
let item_bytes = 256
let target_chain = 10
let heap_pages = 7_400
let epc_limit = 2_900
let oram_cache = 2_000
let uncached_tree_blocks = 262_144 (* the full 1 GB range *)
let warmup = 300
let requests = 2_000

let measure_requests (b : Exp_common.built) table =
  let rng = Metrics.Rng.create ~seed:404L in
  for _ = 1 to warmup do
    ignore (Workloads.Uthash.find table ~key:(Metrics.Rng.int rng n_items))
  done;
  let r =
    Harness.Measure.run b.Exp_common.sys (fun () ->
        for _ = 1 to requests do
          ignore (Workloads.Uthash.find table ~key:(Metrics.Rng.int rng n_items))
        done)
  in
  Harness.Measure.throughput r ~ops:requests

let run_cluster_config cluster_size =
  let b =
    Exp_common.build ~scheme:(Exp_common.Clusters cluster_size)
      ~epc_frames:(epc_limit + 512) ~epc_limit ~enclave_pages:16_384
      ~heap_pages ~budget:(epc_limit - 200) ()
  in
  let rng = Metrics.Rng.create ~seed:42L in
  let alloc ~bytes = Autarky.Allocator.alloc b.Exp_common.heap ~bytes in
  let table =
    Workloads.Uthash.create ~vm:b.Exp_common.vm ~alloc ~rng ~n_items ~item_bytes
      ~target_chain
  in
  b.Exp_common.finish ();
  let before = measure_requests b table in
  Workloads.Uthash.rehash table;
  let after = measure_requests b table in
  (before, after)

let run_oram_cached () =
  let b =
    Exp_common.build ~scheme:Exp_common.Oram_cached ~epc_frames:(epc_limit + 512)
      ~epc_limit ~enclave_pages:16_384 ~heap_pages
      ~budget:(epc_limit - 200) ~oram_cache_pages:oram_cache ()
  in
  let rng = Metrics.Rng.create ~seed:42L in
  let alloc ~bytes = Autarky.Allocator.alloc b.Exp_common.heap ~bytes in
  let table =
    Workloads.Uthash.create ~vm:b.Exp_common.vm ~alloc ~rng ~n_items ~item_bytes
      ~target_chain
  in
  b.Exp_common.finish ();
  measure_requests b table

(* The no-Autarky baseline: CoSMIX-style instrumentation with oblivious
   metadata scans and no EPC cache, over the full-size tree.  Every
   word-granularity load/store runs the full ORAM protocol; like the
   paper, we measure 100 random requests (the full run would not
   complete) against a table built outside the measurement. *)
let run_oram_uncached () =
  let clock = Metrics.Clock.create Metrics.Cost_model.default in
  let oram =
    Oram.Path_oram.create ~clock ~rng:(Metrics.Rng.create ~seed:5L)
      ~metadata:`Oblivious_scan ~n_blocks:uncached_tree_blocks ()
  in
  (* Build the table off-line (free): only the request phase is timed. *)
  let next = ref 0 in
  let alloc ~bytes =
    let addr = !next in
    next := addr + ((bytes + 255) / 256 * 256);
    addr
  in
  let words_per_line = 8 in
  let vm =
    {
      Workloads.Vm.read =
        (fun a ->
          let block = a / Exp_common.page mod uncached_tree_blocks in
          for _ = 1 to words_per_line do
            Oram.Path_oram.access oram ~block (fun _ -> ())
          done);
      write =
        (fun a ->
          let block = a / Exp_common.page mod uncached_tree_blocks in
          for _ = 1 to words_per_line do
            Oram.Path_oram.access oram ~block (fun _ -> ())
          done);
      exec = ignore;
      compute = Metrics.Clock.charge clock;
      progress = (fun () -> ());
    }
  in
  let rng = Metrics.Rng.create ~seed:42L in
  let table =
    Workloads.Uthash.create ~vm:Workloads.Vm.null
      ~alloc ~rng ~n_items ~item_bytes ~target_chain
  in
  (* Rebind the table's VM is not possible; instead drive the request
     phase through a twin find that touches the same pages. *)
  let find key =
    List.iter
      (fun p -> vm.Workloads.Vm.read (p * Exp_common.page))
      (Workloads.Uthash.probe_pages table ~key)
  in
  Metrics.Clock.reset clock;
  let reqs = 100 in
  for _ = 1 to reqs do
    find (Metrics.Rng.int rng n_items)
  done;
  float_of_int reqs
  /. Metrics.Cost_model.seconds Metrics.Cost_model.default (Metrics.Clock.now clock)

let cluster_sizes = [ 1; 2; 5; 10; 20; 50; 100 ]

let run () =
  Harness.Report.heading
    "fig6 — uthash throughput vs cluster size, vs ORAM (1/16 scale)";
  Printf.printf
    "items=%d x %dB (%.0f MB data), EPC allowance %.0f MB, ORAM cache %.0f MB\n"
    n_items item_bytes
    (float_of_int (n_items * item_bytes) /. 1048576.0)
    (float_of_int (epc_limit * 4096) /. 1048576.0)
    (float_of_int (oram_cache * 4096) /. 1048576.0);
  (* Every cluster size and both ORAM variants are independent cells;
     progress lines print after the merge, in the original order. *)
  let cells =
    Par.map
      (function
        | `Cluster k ->
          let before, after = run_cluster_config k in
          `Cluster_tp (k, before, after)
        | `Oram_cached -> `Cached_tp (run_oram_cached ())
        | `Oram_uncached -> `Uncached_tp (run_oram_uncached ()))
      (List.map (fun k -> `Cluster k) cluster_sizes
      @ [ `Oram_cached; `Oram_uncached ])
  in
  let cluster_rows =
    List.filter_map (function `Cluster_tp x -> Some x | _ -> None) cells
  in
  let find_tp f = List.find_map f cells |> Option.get in
  let oram_tp = find_tp (function `Cached_tp t -> Some t | _ -> None) in
  let uncached_tp = find_tp (function `Uncached_tp t -> Some t | _ -> None) in
  List.iter
    (fun (k, before, after) ->
      Printf.printf
        "  clusters(%3d pages): %9.0f req/s   after rehash: %9.0f req/s\n%!" k
        before after)
    cluster_rows;
  Printf.printf "  cached ORAM        : %9.0f req/s\n%!" oram_tp;
  Printf.printf "  uncached ORAM      : %9.0f req/s\n%!" uncached_tp;
  Harness.Report.series ~title:"clusters (before rehash)" ~xlabel:"pages/cluster"
    ~ylabel:"req/s"
    (List.map (fun (k, b, _) -> (float_of_int k, b)) cluster_rows);
  Harness.Report.series ~title:"clusters (after rehash)" ~xlabel:"pages/cluster"
    ~ylabel:"req/s"
    (List.map (fun (k, _, a) -> (float_of_int k, a)) cluster_rows);
  Harness.Report.series ~title:"ORAM" ~xlabel:"pages/cluster" ~ylabel:"req/s"
    (List.map (fun (k, _, _) -> (float_of_int k, oram_tp)) cluster_rows);
  Harness.Report.series ~title:"ORAM uncached" ~xlabel:"pages/cluster"
    ~ylabel:"req/s"
    (List.map (fun (k, _, _) -> (float_of_int k, uncached_tp)) cluster_rows);
  (* Crossover: first cluster size whose throughput falls below ORAM. *)
  let crossover =
    List.find_opt (fun (_, b, _) -> b < oram_tp) cluster_rows
    |> Option.map (fun (k, _, _) -> k)
  in
  (match crossover with
  | Some k ->
    Harness.Report.note
      (Printf.sprintf "clusters and cached ORAM break even near %d pages/cluster \
                       (paper: ~10)" k)
  | None ->
    Harness.Report.note "clusters stayed above cached ORAM for all sizes tested");
  Harness.Report.note
    (Printf.sprintf "uncached ORAM is %.0fx slower than cached (paper: 232x)"
       (oram_tp /. uncached_tp));
  let _, r1, a1 = List.nth cluster_rows 3 in
  Harness.Report.note
    (Printf.sprintf "rehashing improves cluster throughput ~%.2fx at 10 pages \
                     (paper: ~1.5x)"
       (a1 /. r1))
