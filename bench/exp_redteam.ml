(* Red-team scoreboard: every adversary against every policy x SGX
   version, scored in bits leaked (§5.2.3).  Writes BENCH_redteam.json
   (schema autarky-redteam/1) in the current directory — the committed
   baseline lives at the repository root. *)

let run () =
  print_endline "== redteam: adversary suite, bits-leaked scoreboard ==";
  let cells =
    Redteam.Scoreboard.run ~quick:false ~seed:42 ~jobs:(Par.get_jobs ()) ()
  in
  Redteam.Scoreboard.print_table cells;
  let json = Redteam.Scoreboard.to_json ~quick:false ~seed:42 cells in
  Out_channel.with_open_bin "BENCH_redteam.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote      : BENCH_redteam.json (%d cells)\n%!"
    (List.length cells)
