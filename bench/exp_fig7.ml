(* Figure 7: rate-limited demand paging for the 14 Phoenix/PARSEC
   applications with ~100 MB EPC — slowdown relative to an unprotected
   baseline, and the page-fault rate each application sustains.

   Paper results: 6% mean slowdown (2% with AEX elision), slowdown
   correlated with fault rate, no recompilation.  Varys, the comparable
   software-only defense, reports 15%. *)

let epc_limit = 25_600 (* ~100 MB *)
let units = 150
let rate_limit = 400 (* faults per progress unit; tuned to avoid false positives *)

let run_app ?mode (spec : Workloads.Kernels.spec) ~self_paging () =
  let enclave_pages = spec.ws_pages + 256 in
  let sys =
    match mode with
    | Some mode ->
      Harness.System.create ~mode ~epc_frames:(epc_limit + 1_024) ~epc_limit
        ~enclave_pages ~self_paging ~budget:(epc_limit - 256) ()
    | None ->
      Harness.System.create ~epc_frames:(epc_limit + 1_024) ~epc_limit
        ~enclave_pages ~self_paging ~budget:(epc_limit - 256) ()
  in
  let base = Harness.System.reserve sys ~pages:spec.ws_pages in
  let progress_hook = ref (fun () -> ()) in
  let vm0 = Harness.System.vm sys ~on_progress:(fun () -> !progress_hook ()) () in
  if self_paging then begin
    let rt = Harness.System.runtime_exn sys in
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:rate_limit ()
    in
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
    Harness.System.manage sys (List.init spec.ws_pages (fun i -> base + i));
    progress_hook := fun () -> Autarky.Policy_rate_limit.progress rl
  end;
  let rng = Metrics.Rng.create ~seed:2020L in
  (* Warm the working set (up to the EPC allowance), emitting progress
     so the warmup's own cold faults stay under the rate limit.  Touch
     descending so the hot subset (low page indices) is resident when
     FIFO eviction has trimmed the sweep to the budget. *)
  for i = spec.ws_pages - 1 downto 0 do
    vm0.Workloads.Vm.read ((base + i) * Exp_common.page);
    if i mod 64 = 0 then vm0.Workloads.Vm.progress ()
  done;
  let r =
    Harness.Measure.run sys (fun () ->
        Workloads.Kernels.run spec ~vm:vm0 ~rng ~base_page:base ~units ())
  in
  r

let run () =
  Harness.Report.heading
    "fig7 — rate-limited paging, Phoenix + PARSEC, ~100 MB EPC";
  let rows = ref [] in
  let slowdowns = ref [] in
  let slowdowns_elided = ref [] in
  let slowdowns_analytic = ref [] in
  (* Each application's three runs (baseline, autarky, elided) are one
     self-contained cell; the per-app progress lines print after the
     merge, in suite order, so the output is identical at any --jobs. *)
  let measured =
    Par.map
      (fun spec ->
        let base = run_app spec ~self_paging:false () in
        let auta = run_app spec ~self_paging:true () in
        let elided =
          run_app ~mode:Sgx.Machine.No_upcall_no_aex spec ~self_paging:true ()
        in
        (spec, base, auta, elided))
      Workloads.Kernels.suite
  in
  List.iter
    (fun ((spec : Workloads.Kernels.spec), base, auta, elided) ->
      let slowdown =
        float_of_int auta.Harness.Measure.cycles
        /. float_of_int base.Harness.Measure.cycles
      in
      let slowdown_e =
        float_of_int elided.Harness.Measure.cycles
        /. float_of_int base.Harness.Measure.cycles
      in
      (* The paper's 2% figure for elision is analytic: it removes only
         the direct transition cycles.  (The full simulation — the
         previous column — shows a larger win because elision also
         preserves TLB state across faults.) *)
      let cm = Metrics.Cost_model.default in
      let transition_savings =
        cm.aex + cm.eresume + cm.eenter + cm.eexit + cm.eresume
        - cm.aex_elided_entry - cm.inenclave_resume
      in
      let slowdown_a =
        float_of_int
          (auta.Harness.Measure.cycles
          - (auta.Harness.Measure.page_faults * transition_savings))
        /. float_of_int base.Harness.Measure.cycles
      in
      let pf_rate = Harness.Measure.fault_rate auta in
      slowdowns := slowdown :: !slowdowns;
      slowdowns_elided := slowdown_e :: !slowdowns_elided;
      slowdowns_analytic := slowdown_a :: !slowdowns_analytic;
      rows :=
        [ spec.Workloads.Kernels.k_name;
          (match spec.suite with `Phoenix -> "phoenix" | `Parsec -> "parsec");
          string_of_int (spec.ws_pages * 4096 / 1048576) ^ " MB";
          Printf.sprintf "%.3f" slowdown;
          Printf.sprintf "%.3f" slowdown_a;
          Printf.sprintf "%.3f" slowdown_e;
          Harness.Report.si pf_rate ^ "/s";
          string_of_int auta.Harness.Measure.page_faults ]
        :: !rows;
      Printf.printf
        "  %-10s slowdown %.3f (elided: analytic %.3f, simulated %.3f)  pf-rate %s/s\n%!"
        spec.k_name slowdown slowdown_a slowdown_e (Harness.Report.si pf_rate))
    measured;
  Harness.Report.table
    ~header:
      [ "application"; "suite"; "working set"; "slowdown";
        "no-AEX (analytic)"; "no-AEX (simulated)"; "fault rate"; "faults" ]
    ~rows:(List.rev !rows);
  let geo = Metrics.Stats.geomean !slowdowns in
  let geo_e = Metrics.Stats.geomean !slowdowns_elided in
  let geo_a = Metrics.Stats.geomean !slowdowns_analytic in
  Harness.Report.note
    (Printf.sprintf
       "geomean slowdown: %.3f as measured, %.3f with AEX elision (analytic) \
        (paper: 1.06 and 1.02; Varys reports 1.15)"
       geo geo_a);
  Harness.Report.note
    (Printf.sprintf
       "fully simulated elision gives %.3f: beyond removing transition cycles \
        it preserves TLB state across faults, making secure paging faster than \
        unprotected paging (the paper's §7.1 observation)"
       geo_e);
  Harness.Report.note
    "fault rate correlates with slowdown; in-EPC applications pay ~nothing"
