(* Figure 5: paging latency and its breakdown for the SGXv1
   (driver/EWB+ELDU) and SGXv2 (in-enclave dynamic-memory) mechanisms,
   normalized per page with the driver's 16-page batches.

   The paper reports four bars (page fault and page evict, each for
   SGXv1/v2), broken into: enclave preemption (AEX+ERESUME), PF-handler
   invocation (EENTER+EEXIT), Autarky runtime overhead, and the SGX
   paging work including encryption — with transitions accounting for
   40-50% of fault latency, and SGXv2 costlier than SGXv1. *)

let iterations = 2_000
let batch = 16

(* Per-page fetch/evict cost of the bare paging mechanism (no fault). *)
let paging_only ~mech =
  let sys =
    Harness.System.create ~epc_frames:512 ~epc_limit:256 ~enclave_pages:1024
      ~self_paging:true ~budget:64 ~mech ()
  in
  let rt = Harness.System.runtime_exn sys in
  let pager = Autarky.Runtime.pager rt in
  let _burn = Harness.System.reserve sys ~pages:256 in
  let b = Harness.System.reserve sys ~pages:batch in
  let pages = List.init batch (fun i -> b + i) in
  Harness.System.manage sys pages;
  (* Warm so SGXv2 measures real reloads. *)
  Autarky.Pager.fetch pager pages;
  Autarky.Pager.evict pager pages;
  let clock = Harness.System.clock sys in
  let fetch_total = ref 0 and evict_total = ref 0 in
  for _ = 1 to iterations do
    Metrics.Clock.reset clock;
    Autarky.Pager.fetch pager pages;
    fetch_total := !fetch_total + Metrics.Clock.now clock;
    Metrics.Clock.reset clock;
    Autarky.Pager.evict pager pages;
    evict_total := !evict_total + Metrics.Clock.now clock
  done;
  let per_page total = total / iterations / batch in
  (per_page !fetch_total, per_page !evict_total)

(* Fault-path cost per page: a demand-paging fault through the full
   architectural flow (AEX, blocked resume, EENTER handler, policy fetch
   of one page, EEXIT, ERESUME), measured end to end. *)
let fault_path ~mech =
  let sys =
    Harness.System.create ~epc_frames:1024 ~epc_limit:512 ~enclave_pages:2048
      ~self_paging:true ~budget:64 ~mech ()
  in
  let rt = Harness.System.runtime_exn sys in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt ~evict_batch:batch () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  let _burn = Harness.System.reserve sys ~pages:512 in
  let n = 256 in
  let b = Harness.System.reserve sys ~pages:n in
  Harness.System.manage sys (List.init n (fun i -> b + i));
  let vm = Harness.System.vm sys () in
  let clock = Harness.System.clock sys in
  (* Warm: fill the budget so steady-state faults include eviction. *)
  for i = 0 to n - 1 do
    vm.Workloads.Vm.read ((b + i) * Exp_common.page)
  done;
  Metrics.Clock.reset clock;
  let faults0 =
    Metrics.Counters.get (Harness.System.counters sys) "cpu.page_fault"
  in
  let rng = Metrics.Rng.create ~seed:55L in
  for _ = 1 to iterations do
    (* FIFO eviction + sequential sweep => every touch is a cold miss. *)
    vm.Workloads.Vm.read ((b + Metrics.Rng.int rng n) * Exp_common.page)
  done;
  let faults =
    Metrics.Counters.get (Harness.System.counters sys) "cpu.page_fault" - faults0
  in
  if faults = 0 then 0 else Metrics.Clock.now clock / faults

let run () =
  Harness.Report.heading
    "fig5 — paging latency per page, SGXv1 vs SGXv2 (batch 16)";
  let m = Metrics.Cost_model.default in
  let preempt = m.aex + m.eresume in
  let invoc = m.eenter + m.eexit in
  let handler = m.runtime_handler in
  (* Four independent measurement cells; sharded over the domain pool. *)
  let f1, e1, f2, e2, fault1, fault2 =
    match
      Par.map
        (function
          | `Paging mech -> paging_only ~mech
          | `Fault mech -> (fault_path ~mech, 0))
        [ `Paging `Sgx1; `Paging `Sgx2; `Fault `Sgx1; `Fault `Sgx2 ]
    with
    | [ (f1, e1); (f2, e2); (fault1, _); (fault2, _) ] ->
      (f1, e1, f2, e2, fault1, fault2)
    | _ -> assert false
  in
  Harness.Report.table
    ~header:
      [ "operation"; "total cyc/page"; "AEX+ERESUME"; "EENTER+EEXIT";
        "handler"; "SGX paging (inc. crypto)" ]
    ~rows:
      [
        [ "page fault SGX1"; string_of_int fault1; string_of_int preempt;
          string_of_int invoc; string_of_int handler;
          string_of_int (max 0 (fault1 - preempt - invoc - handler)) ];
        [ "page fault SGX2"; string_of_int fault2; string_of_int preempt;
          string_of_int invoc; string_of_int handler;
          string_of_int (max 0 (fault2 - preempt - invoc - handler)) ];
        [ "page evict SGX1"; string_of_int e1; "-"; "-"; "-"; string_of_int e1 ];
        [ "page evict SGX2"; string_of_int e2; "-"; "-"; "-"; string_of_int e2 ];
        [ "page fetch SGX1 (no fault)"; string_of_int f1; "-"; "-"; "-";
          string_of_int f1 ];
        [ "page fetch SGX2 (no fault)"; string_of_int f2; "-"; "-"; "-";
          string_of_int f2 ];
      ];
  let frac = float_of_int (preempt + invoc) /. float_of_int fault1 in
  Harness.Report.note
    (Printf.sprintf
       "transitions (preemption + handler invocation) = %s of SGX1 fault latency \
        (paper: 40-50%%)"
       (Harness.Report.pct frac));
  Harness.Report.note
    (Printf.sprintf "SGXv2 vs SGXv1: fetch %.2fx, evict %.2fx (paper: SGXv2 costlier)"
       (float_of_int f2 /. float_of_int f1)
       (float_of_int e2 /. float_of_int e1));
  Harness.Report.note
    "eliding AEX (proposed ISA opt) removes the first two components entirely"
