(* Multi-tenant serving benchmark: the default three-tenant
   mixed-policy scenario served in virtual time, with the EPC arbiter
   rebalancing vEPC between tenant VMs.  Writes BENCH_serve.json
   (schema autarky-serve/1) in the current directory — the committed
   baseline lives at the repository root and is bit-reproducible from
   the fixed seed. *)

let run () =
  print_endline "== serve: multi-tenant serving benchmark ==";
  ignore (Serve.Driver.run ~quick:false ~seed:42 ~out:"BENCH_serve.json" ())
