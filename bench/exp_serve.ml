(* Fleet-scale serving benchmark: 100 tenants on one machine — the
   fixed class mix (kv/clusters open loop, heavy-tailed uthash, diurnal
   late joiners, closed-loop spellcheck, overloaded departers) with
   streaming-sketch latency accounting and a pooled-sketch fleet
   roll-up.  Writes BENCH_serve.json (schema autarky-serve/2) in the
   current directory — the committed baseline lives at the repository
   root and is bit-reproducible from the fixed seed at any --jobs. *)

let run () =
  print_endline "== serve: fleet-scale serving benchmark ==";
  ignore
    (Serve.Driver.run_fleet_scale ~quick:false ~seed:42 ~tenants:100
       ~out:"BENCH_serve.json" ())
