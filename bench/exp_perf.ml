(* Performance-regression harness: crypto microbenchmarks (optimized
   vs boxed reference) plus the fixed-seed workload matrix.  Writes
   BENCH_perf.json (schema autarky-perf/1) in the current directory —
   the committed baseline lives at the repository root. *)

let run () =
  print_endline "== perf: performance-regression harness ==";
  ignore
    (Harness.Perf.run ~quick:false ~seed:42 ~jobs:(Par.get_jobs ())
       ~out:"BENCH_perf.json" ())
