(* The reproduction harness: one entry per table/figure of the paper's
   evaluation (§7).  With no arguments every experiment runs; pass
   experiment ids to run a subset.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig6 fig8     # a subset
*)

let experiments =
  [
    ("arch-overhead", "§7 nbench: per-TLB-fill A/D check (geomean 0.07%)",
     Exp_arch.run);
    ("fig5", "Figure 5: paging latency breakdown, SGXv1 vs SGXv2", Exp_fig5.run);
    ("fig6", "Figure 6: uthash — cluster size vs ORAM", Exp_fig6.run);
    ("fig7", "Figure 7: rate-limited paging, Phoenix/PARSEC", Exp_fig7.run);
    ("table2", "Table 2: libjpeg / Hunspell / FreeType end-to-end", Exp_table2.run);
    ("fig8", "Figure 8: Memcached, four distributions x four schemes", Exp_fig8.run);
    ("attacks", "§7.3 security: published attacks, legacy vs Autarky",
     Exp_attacks.run);
    ("micro", "bechamel microbenchmarks of core primitives", Exp_micro.run);
    ("ablation", "design-choice sweeps (batch size, cache size, check cost, write-back)",
     Exp_ablation.run);
    ("perf", "perf-regression harness: crypto micro + workload matrix \
              (BENCH_perf.json)", Exp_perf.run);
    ("serve", "multi-tenant serving: virtual-time scheduler + EPC arbiter \
               (BENCH_serve.json)", Exp_serve.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-14s %s\n" id descr) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | [] ->
    print_endline "Autarky reproduction bench — all experiments";
    List.iter (fun (_, _, run) -> run ()) experiments
  | ids ->
    (* Validate the whole request before running anything: a typo in the
       last id must not cost the hours of experiments named before it. *)
    let unknown =
      List.filter
        (fun id -> not (List.exists (fun (i, _, _) -> i = id) experiments))
        ids
    in
    (match unknown with
    | [] -> ()
    | _ ->
      List.iter (fun id -> Printf.eprintf "unknown experiment %S\n" id) unknown;
      usage ();
      exit 1);
    List.iter
      (fun id ->
        let _, _, run = List.find (fun (i, _, _) -> i = id) experiments in
        run ())
      ids
