(* The reproduction harness: one entry per table/figure of the paper's
   evaluation (§7).  With no arguments every experiment runs; pass
   experiment ids to run a subset.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig6 fig8     # a subset
     dune exec bench/main.exe -- --jobs 4 fig8 # shard cells over 4 domains
*)

let experiments =
  [
    ("arch-overhead", "§7 nbench: per-TLB-fill A/D check (geomean 0.07%)",
     Exp_arch.run);
    ("fig5", "Figure 5: paging latency breakdown, SGXv1 vs SGXv2", Exp_fig5.run);
    ("fig6", "Figure 6: uthash — cluster size vs ORAM", Exp_fig6.run);
    ("fig7", "Figure 7: rate-limited paging, Phoenix/PARSEC", Exp_fig7.run);
    ("table2", "Table 2: libjpeg / Hunspell / FreeType end-to-end", Exp_table2.run);
    ("fig8", "Figure 8: Memcached, four distributions x four schemes", Exp_fig8.run);
    ("attacks", "§7.3 security: published attacks, legacy vs Autarky",
     Exp_attacks.run);
    ("micro", "bechamel microbenchmarks of core primitives", Exp_micro.run);
    ("ablation", "design-choice sweeps (batch size, cache size, check cost, write-back)",
     Exp_ablation.run);
    ("perf", "perf-regression harness: crypto micro + workload matrix \
              (BENCH_perf.json)", Exp_perf.run);
    ("serve", "fleet-scale serving: 100 tenants, sketch latencies, churn \
               (BENCH_serve.json)", Exp_serve.run);
    ("redteam", "red-team adversary suite: bits-leaked scoreboard across \
                 policies x SGX versions (BENCH_redteam.json)",
     Exp_redteam.run);
    ("defense", "SLO-under-attack: live escalation controller vs scripted \
                 attack waves (BENCH_defense.json)",
     Exp_defense.run);
  ]

let usage () =
  print_endline "usage: main.exe [--jobs N] [experiment ...]";
  print_endline
    "  --jobs N   worker domains for sharded experiment cells (0 = one per \
     core);";
  print_endline
    "             results are identical at any N, only wall clock changes";
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-14s %s\n" id descr) experiments

let bad_jobs s =
  Printf.eprintf "--jobs expects an integer, got %s\n"
    (match s with Some v -> Printf.sprintf "%S" v | None -> "nothing");
  exit 2

(* Strip --jobs/-j from the argument list (setting Par's worker count),
   returning the experiment ids. *)
let rec strip_jobs acc = function
  | [] -> List.rev acc
  | ("--jobs" | "-j") :: rest -> (
    match rest with
    | n :: rest' -> (
      match int_of_string_opt n with
      | Some j -> Par.set_jobs j; strip_jobs acc rest'
      | None -> bad_jobs (Some n))
    | [] -> bad_jobs None)
  | a :: rest when String.starts_with ~prefix:"--jobs=" a -> (
    let v = String.sub a 7 (String.length a - 7) in
    match int_of_string_opt v with
    | Some j -> Par.set_jobs j; strip_jobs acc rest
    | None -> bad_jobs (Some v))
  | a :: rest -> strip_jobs (a :: acc) rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | args -> (
    match strip_jobs [] args with
    | [] ->
      print_endline "Autarky reproduction bench — all experiments";
      List.iter (fun (_, _, run) -> run ()) experiments
    | ids ->
      (* Validate the whole request before running anything: a typo in the
         last id must not cost the hours of experiments named before it —
         and report every unknown id at once, not just the first. *)
      let unknown =
        List.filter
          (fun id -> not (List.exists (fun (i, _, _) -> i = id) experiments))
          ids
      in
      (match unknown with
      | [] -> ()
      | _ ->
        Printf.eprintf "unknown experiment%s: %s\n"
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " (List.map (Printf.sprintf "%S") unknown));
        usage ();
        exit 1);
      List.iter
        (fun id ->
          let _, _, run = List.find (fun (i, _, _) -> i = id) experiments in
          run ())
        ids)
