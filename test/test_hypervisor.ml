(* Tests for the §5.4 virtualization layer: static vEPC partitioning,
   cross-VM ballooning through enlightened guests, and the impossibility
   of transparent hypervisor demand paging over self-paging enclaves. *)

open Sgx

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let page = Types.page_bytes

let boot_guest_enclave hv vm ~self_paging ~epc_limit ~pages =
  let proc =
    Hypervisor.Vmm.create_guest_proc hv vm ~size_pages:pages ~self_paging
      ~epc_limit
  in
  let guest = Hypervisor.Vmm.guest_os vm in
  for i = 0 to pages - 1 do
    Sim_os.Kernel.add_initial_page guest proc
      ~vpage:((Sim_os.Kernel.enclave proc).base_vpage + i)
      ~data:(Page_data.create ()) ~perms:Types.perms_rwx
  done;
  Sim_os.Kernel.finalize guest proc;
  proc

let setup () =
  let m = Helpers.machine ~epc_frames:256 () in
  let hv = Hypervisor.Vmm.create m in
  (m, hv)

let test_partition_accounting () =
  let _m, hv = setup () in
  let vm1 = Hypervisor.Vmm.create_vm hv ~name:"tenant-a" ~epc_frames:128 in
  let _vm2 = Hypervisor.Vmm.create_vm hv ~name:"tenant-b" ~epc_frames:96 in
  checki "free after carving" 32 (Hypervisor.Vmm.free_frames hv);
  checki "partition" 128 (Hypervisor.Vmm.partition_frames vm1);
  checkb "oversubscription rejected" true
    (try ignore (Hypervisor.Vmm.create_vm hv ~name:"c" ~epc_frames:64); false
     with Invalid_argument _ -> true)

let test_guest_proc_limit_enforced () =
  let _m, hv = setup () in
  let vm = Hypervisor.Vmm.create_vm hv ~name:"t" ~epc_frames:100 in
  let _p1 = Hypervisor.Vmm.create_guest_proc hv vm ~size_pages:64 ~self_paging:false ~epc_limit:60 in
  checki "committed" 60 (Hypervisor.Vmm.committed_frames vm);
  checkb "second proc exceeding partition rejected" true
    (try
       ignore
         (Hypervisor.Vmm.create_guest_proc hv vm ~size_pages:64 ~self_paging:false
            ~epc_limit:60);
       false
     with Invalid_argument _ -> true)

let test_static_partitioning_runs_unmodified () =
  (* The §5.4 claim: clouds that statically partition EPC need no
     changes — two tenants page independently inside their slices. *)
  let m, hv = setup () in
  let vm1 = Hypervisor.Vmm.create_vm hv ~name:"a" ~epc_frames:128 in
  let vm2 = Hypervisor.Vmm.create_vm hv ~name:"b" ~epc_frames:96 in
  let p1 = boot_guest_enclave hv vm1 ~self_paging:true ~epc_limit:64 ~pages:96 in
  let p2 = boot_guest_enclave hv vm2 ~self_paging:false ~epc_limit:64 ~pages:96 in
  let cpu2 =
    Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table p2)
      ~enclave:(Sim_os.Kernel.enclave p2)
      ~os:(Sim_os.Kernel.os_callbacks (Hypervisor.Vmm.guest_os vm2)) ()
  in
  for i = 0 to 95 do
    Cpu.read cpu2 (Types.vaddr_of_vpage ((Sim_os.Kernel.enclave p2).base_vpage + i))
  done;
  checkb "b pages within its slice" true (Sim_os.Kernel.resident_pages p2 <= 64);
  checkb "a unaffected" true (Sim_os.Kernel.resident_pages p1 > 0)

let test_cross_vm_ballooning () =
  let m, hv = setup () in
  ignore m;
  let vm1 = Hypervisor.Vmm.create_vm hv ~name:"donor" ~epc_frames:128 in
  let vm2 = Hypervisor.Vmm.create_vm hv ~name:"needy" ~epc_frames:64 in
  (* Fully committed partition: every reclaimed frame must be squeezed
     out of the guest process. *)
  let p1 = boot_guest_enclave hv vm1 ~self_paging:false ~epc_limit:128 ~pages:128 in
  let moved = Hypervisor.Vmm.rebalance hv ~from_vm:vm1 ~to_vm:vm2 ~frames:32 in
  checki "32 frames moved" 32 moved;
  checki "donor shrank" 96 (Hypervisor.Vmm.partition_frames vm1);
  checki "needy grew" 96 (Hypervisor.Vmm.partition_frames vm2);
  checkb "donor proc squeezed" true (Sim_os.Kernel.epc_limit p1 <= 96);
  checkb "donor residency within new limit" true
    (Sim_os.Kernel.resident_pages p1 <= Sim_os.Kernel.epc_limit p1)

let test_rebalance_uncommitted_headroom_first () =
  (* Partition headroom no process is entitled to moves without touching
     the guest: the donor enclave keeps its allowance. *)
  let _m, hv = setup () in
  let vm1 = Hypervisor.Vmm.create_vm hv ~name:"donor" ~epc_frames:128 in
  let vm2 = Hypervisor.Vmm.create_vm hv ~name:"needy" ~epc_frames:64 in
  let p1 = boot_guest_enclave hv vm1 ~self_paging:false ~epc_limit:60 ~pages:64 in
  let resident_before = Sim_os.Kernel.resident_pages p1 in
  let moved = Hypervisor.Vmm.rebalance hv ~from_vm:vm1 ~to_vm:vm2 ~frames:32 in
  checki "32 frames moved" 32 moved;
  checki "donor proc allowance untouched" 60 (Sim_os.Kernel.epc_limit p1);
  checki "donor residency untouched" resident_before
    (Sim_os.Kernel.resident_pages p1);
  (* Asking beyond the headroom squeezes the process for the rest. *)
  let moved2 = Hypervisor.Vmm.rebalance hv ~from_vm:vm1 ~to_vm:vm2 ~frames:48 in
  checkb "second rebalance squeezes" true (moved2 > 0);
  checkb "donor proc shrank this time" true (Sim_os.Kernel.epc_limit p1 < 60)

let test_grow_vm_from_free_pool () =
  let _m, hv = setup () in
  let vm = Hypervisor.Vmm.create_vm hv ~name:"t" ~epc_frames:128 in
  checki "128 unassigned" 128 (Hypervisor.Vmm.free_frames hv);
  checki "full grant" 64 (Hypervisor.Vmm.grow_vm hv vm ~frames:64);
  checki "partition grew" 192 (Hypervisor.Vmm.partition_frames vm);
  (* The pool bounds the grant. *)
  checki "partial grant" 64 (Hypervisor.Vmm.grow_vm hv vm ~frames:96);
  checki "pool empty" 0 (Hypervisor.Vmm.free_frames hv);
  checki "no grant from empty pool" 0 (Hypervisor.Vmm.grow_vm hv vm ~frames:16)

let test_destroy_guest_proc_restores_commitment () =
  let m, hv = setup () in
  let vm = Hypervisor.Vmm.create_vm hv ~name:"t" ~epc_frames:128 in
  let p1 = boot_guest_enclave hv vm ~self_paging:false ~epc_limit:100 ~pages:100 in
  checki "committed" 100 (Hypervisor.Vmm.committed_frames vm);
  checkb "frames resident" true (Sim_os.Kernel.resident_pages p1 > 0);
  Hypervisor.Vmm.destroy_guest_proc hv vm p1;
  checki "commitment restored" 0 (Hypervisor.Vmm.committed_frames vm);
  checki "frames released" 0 (Sim_os.Kernel.resident_pages p1);
  checkb "enclave dead" true
    (match (Sim_os.Kernel.enclave p1).Enclave.state with
    | Enclave.Dead _ -> true
    | _ -> false);
  (* A replacement enclave — the attested restart — fits again. *)
  let p2 = boot_guest_enclave hv vm ~self_paging:false ~epc_limit:100 ~pages:64 in
  checki "replacement committed" 100 (Hypervisor.Vmm.committed_frames vm);
  (* Destroying a process that is not in this VM is rejected. *)
  let vm2 = Hypervisor.Vmm.create_vm hv ~name:"other" ~epc_frames:64 in
  checkb "foreign proc rejected" true
    (try Hypervisor.Vmm.destroy_guest_proc hv vm2 p2; false
     with Invalid_argument _ -> true);
  ignore m

let test_ballooning_respects_enclave_refusal () =
  (* A self-paging enclave under the pinned policy refuses to deflate:
     the hypervisor only gets what OS-managed eviction can provide. *)
  let m, hv = setup () in
  let vm1 = Hypervisor.Vmm.create_vm hv ~name:"donor" ~epc_frames:128 in
  let vm2 = Hypervisor.Vmm.create_vm hv ~name:"needy" ~epc_frames:64 in
  let p1 = boot_guest_enclave hv vm1 ~self_paging:true ~epc_limit:100 ~pages:100 in
  let guest = Hypervisor.Vmm.guest_os vm1 in
  (* The enclave's runtime pins everything (pinned policy, refuses
     balloons) — wire a refusing handler like the Autarky runtime's. *)
  Sim_os.Kernel.set_balloon_handler guest p1 (fun _ -> 0);
  ignore (Sim_os.Kernel.ay_set_enclave_managed guest p1
            (List.init 100 (fun i -> (Sim_os.Kernel.enclave p1).base_vpage + i)));
  let moved = Hypervisor.Vmm.rebalance hv ~from_vm:vm1 ~to_vm:vm2 ~frames:64 in
  checkb "only partial reclaim" true (moved < 64);
  ignore m

let test_transparent_hypervisor_paging_detected () =
  (* §5.4: transparent demand paging by the hypervisor cannot be
     supported — the self-paging enclave detects it like any attack. *)
  let m, hv = setup () in
  let vm = Hypervisor.Vmm.create_vm hv ~name:"t" ~epc_frames:128 in
  let proc = boot_guest_enclave hv vm ~self_paging:true ~epc_limit:64 ~pages:32 in
  let guest = Hypervisor.Vmm.guest_os vm in
  let enclave = Sim_os.Kernel.enclave proc in
  (* Minimal trusted runtime: mark everything managed, detect attacks. *)
  let managed = List.init 32 (fun i -> enclave.base_vpage + i) in
  ignore (Sim_os.Kernel.ay_set_enclave_managed guest proc managed);
  enclave.entry <-
    (fun e ->
      let sf = Stack.top e.Enclave.tcs.ssa in
      ignore sf;
      Enclave.terminate e ~reason:"hypervisor-induced fault detected");
  let cpu =
    Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table proc) ~enclave
      ~os:(Sim_os.Kernel.os_callbacks guest) ()
  in
  Cpu.read cpu (Types.vaddr_of_vpage enclave.base_vpage);
  (* The hypervisor transparently evicts an enclave-managed page... *)
  Hypervisor.Vmm.hypervisor_evict hv vm proc enclave.base_vpage;
  (* ...and the next access is detected. *)
  checkb "detected" true
    (try Cpu.read cpu (Types.vaddr_of_vpage enclave.base_vpage); false
     with Types.Enclave_terminated _ -> true)

let suite =
  [
    ("partition accounting", `Quick, test_partition_accounting);
    ("guest proc limits enforced", `Quick, test_guest_proc_limit_enforced);
    ("static partitioning runs unmodified", `Quick,
     test_static_partitioning_runs_unmodified);
    ("cross-VM ballooning", `Quick, test_cross_vm_ballooning);
    ("rebalance takes uncommitted headroom first", `Quick,
     test_rebalance_uncommitted_headroom_first);
    ("grow_vm from free pool", `Quick, test_grow_vm_from_free_pool);
    ("destroy_guest_proc restores commitment", `Quick,
     test_destroy_guest_proc_restores_commitment);
    ("ballooning respects enclave refusal", `Quick,
     test_ballooning_respects_enclave_refusal);
    ("transparent hypervisor paging detected", `Quick,
     test_transparent_hypervisor_paging_detected);
  ]
