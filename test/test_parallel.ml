(* The domain pool (lib/parallel) and the merge functions the sharded
   drivers rely on: task-order results at any worker count, exception
   capture that never wedges the pool, nested-submit rejection on both
   the serial and parallel paths, seed splitting, and the
   no-shared-state invariant that makes whole simulations safe to run
   in worker domains. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- basic batches ------------------------------------------------------ *)

let test_empty () =
  checkb "run []" true (Parallel.Pool.run ~jobs:4 [] = []);
  checkb "run_exn []" true (Parallel.Pool.run_exn ~jobs:4 [] = []);
  checkb "map []" true (Parallel.Pool.map ~jobs:4 (fun x -> x) [] = [])

let test_order_preserved () =
  List.iter
    (fun jobs ->
      let n = 100 in
      let out =
        Parallel.Pool.map ~jobs (fun i -> (i * 37) mod 101) (List.init n Fun.id)
      in
      checkb
        (Printf.sprintf "task order at jobs=%d" jobs)
        true
        (out = List.init n (fun i -> (i * 37) mod 101)))
    [ 1; 2; 7; 0 ]

let test_more_tasks_than_workers () =
  (* 97 tasks over 3 workers: every task runs exactly once. *)
  let n = 97 in
  let hits = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    hits.(i) <- Atomic.make 0
  done;
  let out =
    Parallel.Pool.map ~jobs:3
      (fun i ->
        Atomic.incr hits.(i);
        i)
      (List.init n Fun.id)
  in
  checkb "results in order" true (out = List.init n Fun.id);
  Array.iteri (fun i h -> checki (Printf.sprintf "task %d once" i) 1 (Atomic.get h)) hits

(* --- exceptions --------------------------------------------------------- *)

exception Boom of int

let test_exception_capture () =
  List.iter
    (fun jobs ->
      let tasks =
        List.init 10 (fun i () -> if i mod 3 = 1 then raise (Boom i) else i * 2)
      in
      match Parallel.Pool.run ~jobs tasks with
      | outcomes ->
        List.iteri
          (fun i o ->
            match o with
            | Ok v when i mod 3 <> 1 -> checki "value" (i * 2) v
            | Error e when i mod 3 = 1 ->
              checki "failing index" i e.Parallel.Pool.index;
              checkb "exn preserved" true (e.Parallel.Pool.exn = Boom i)
            | _ -> Alcotest.failf "wrong outcome kind at %d (jobs=%d)" i jobs)
          outcomes)
    [ 1; 4 ]

let test_task_error_lists_all () =
  match Parallel.Pool.run_exn ~jobs:2 (List.init 6 (fun i () -> raise (Boom i))) with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Parallel.Pool.Task_error errs ->
    checki "all failures" 6 (List.length errs);
    List.iteri
      (fun k e -> checki "ordered by index" k e.Parallel.Pool.index)
      errs

let test_pool_not_wedged_after_failure () =
  (* A failing batch must leave the pool fully reusable. *)
  (try ignore (Parallel.Pool.map ~jobs:3 (fun _ -> failwith "x") [ 1; 2; 3 ])
   with Parallel.Pool.Task_error _ -> ());
  checkb "next batch runs" true
    (Parallel.Pool.map ~jobs:3 (fun i -> i + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

(* --- nested submission -------------------------------------------------- *)

let test_nested_submit_rejected () =
  List.iter
    (fun jobs ->
      let saw_invalid =
        Parallel.Pool.run ~jobs
          [ (fun () ->
              match Parallel.Pool.run ~jobs:1 [ (fun () -> 0) ] with
              | _ -> false
              | exception Invalid_argument _ -> true) ]
      in
      match saw_invalid with
      | [ Ok true ] -> ()
      | _ -> Alcotest.failf "nested submit not rejected at jobs=%d" jobs)
    [ 1; 2 ]

(* --- seed splitting ------------------------------------------------------ *)

let test_shard_seed () =
  let s0 = Parallel.Pool.shard_seed ~root:42 ~shard:0 in
  checki "deterministic" s0 (Parallel.Pool.shard_seed ~root:42 ~shard:0);
  let seeds = List.init 64 (fun i -> Parallel.Pool.shard_seed ~root:42 ~shard:i) in
  checki "distinct across shards" 64
    (List.length (List.sort_uniq compare seeds));
  List.iter (fun s -> checkb "non-negative" true (s >= 0)) seeds;
  checkb "root-sensitive" true
    (Parallel.Pool.shard_seed ~root:1 ~shard:0
    <> Parallel.Pool.shard_seed ~root:2 ~shard:0);
  checkb "rejects negative shard" true
    (match Parallel.Pool.shard_seed ~root:1 ~shard:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- merge functions ----------------------------------------------------- *)

let test_counters_merge () =
  let a = Metrics.Counters.create () and b = Metrics.Counters.create () in
  Metrics.Counters.add a "x" 3;
  Metrics.Counters.add a "y" 1;
  Metrics.Counters.add b "x" 4;
  Metrics.Counters.add b "z" 7;
  let m = Metrics.Counters.merged [ a; b ] in
  checki "x summed" 7 (Metrics.Counters.get m "x");
  checki "y kept" 1 (Metrics.Counters.get m "y");
  checki "z kept" 7 (Metrics.Counters.get m "z");
  (* src unchanged *)
  checki "src intact" 3 (Metrics.Counters.get a "x")

let test_stats_merge_exact () =
  let a = Metrics.Stats.create () and b = Metrics.Stats.create () in
  List.iter (Metrics.Stats.add a) [ 1.0; 9.0; 5.0 ];
  List.iter (Metrics.Stats.add b) [ 2.0; 8.0 ];
  let m = Metrics.Stats.merged [ a; b ] in
  let whole = Metrics.Stats.create () in
  List.iter (Metrics.Stats.add whole) [ 1.0; 9.0; 5.0; 2.0; 8.0 ];
  checkb "summary equals unsharded run" true
    (Metrics.Stats.summary m = Metrics.Stats.summary whole)

let test_merge_summaries () =
  let zero = Metrics.Stats.summary (Metrics.Stats.create ()) in
  checkb "empty list is all-zero" true
    (Metrics.Stats.merge_summaries [] = zero);
  checkb "all-empty is all-zero" true
    (Metrics.Stats.merge_summaries [ zero; zero ] = zero);
  let s samples =
    let t = Metrics.Stats.create () in
    List.iter (Metrics.Stats.add t) samples;
    Metrics.Stats.summary t
  in
  let m = Metrics.Stats.merge_summaries [ s [ 10.0; 20.0 ]; s [ 40.0 ]; zero ] in
  checki "counts summed" 3 m.Metrics.Stats.s_count;
  checkb "count-weighted mean" true (abs_float (m.Metrics.Stats.s_mean -. (70.0 /. 3.0)) < 1e-9);
  checkb "worst max" true (m.Metrics.Stats.s_max = 40.0);
  checkb "worst p99" true (m.Metrics.Stats.s_p99 = 40.0)

(* --- properties ---------------------------------------------------------- *)

(* The invariant the sharded drivers rest on: counting into per-shard
   counter sets and merging equals counting serially into one set —
   for any task split and any worker count. *)
let prop_sharded_counters_equal_serial =
  QCheck.Test.make ~count:60
    ~name:"sharded counter totals = serial run"
    QCheck.(
      pair (small_list (pair (oneofl [ "a"; "b"; "c"; "d" ]) small_nat))
        (int_range 1 5))
    (fun (events, jobs) ->
      (* Serial reference. *)
      let serial = Metrics.Counters.create () in
      List.iter (fun (k, n) -> Metrics.Counters.add serial k n) events;
      (* Shard round-robin into 4 cells, run under the pool, merge. *)
      let shards = Array.make 4 [] in
      List.iteri (fun i e -> shards.(i mod 4) <- e :: shards.(i mod 4)) events;
      let per_shard =
        Parallel.Pool.map ~jobs
          (fun evs ->
            let c = Metrics.Counters.create () in
            List.iter (fun (k, n) -> Metrics.Counters.add c k n) evs;
            c)
          (Array.to_list shards)
      in
      let merged = Metrics.Counters.merged per_shard in
      Metrics.Counters.snapshot merged = Metrics.Counters.snapshot serial)

let prop_pool_map_is_list_map =
  QCheck.Test.make ~count:60 ~name:"pool map = List.map at any jobs"
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (xs, jobs) ->
      Parallel.Pool.map ~jobs (fun x -> (x * 13) + 1) xs
      = List.map (fun x -> (x * 13) + 1) xs)

let suite =
  [
    Alcotest.test_case "empty task list" `Quick test_empty;
    Alcotest.test_case "task-order results" `Quick test_order_preserved;
    Alcotest.test_case "more tasks than workers" `Quick
      test_more_tasks_than_workers;
    Alcotest.test_case "exception capture per index" `Quick
      test_exception_capture;
    Alcotest.test_case "Task_error lists every failure" `Quick
      test_task_error_lists_all;
    Alcotest.test_case "pool reusable after failures" `Quick
      test_pool_not_wedged_after_failure;
    Alcotest.test_case "nested submit rejected" `Quick
      test_nested_submit_rejected;
    Alcotest.test_case "shard_seed" `Quick test_shard_seed;
    Alcotest.test_case "counters merge" `Quick test_counters_merge;
    Alcotest.test_case "stats merge is exact" `Quick test_stats_merge_exact;
    Alcotest.test_case "merge_summaries" `Quick test_merge_summaries;
    QCheck_alcotest.to_alcotest prop_sharded_counters_equal_serial;
    QCheck_alcotest.to_alcotest prop_pool_map_is_list_map;
  ]
