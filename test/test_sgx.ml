(* Tests for the SGX hardware model: EPC/EPCM, page tables, TLB,
   enclave lifecycle, MMU checks (legacy and Autarky semantics), the
   instruction set including SGXv1/v2 paging, and the CPU fault flow. *)

open Sgx

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- EPC / EPCM ------------------------------------------------------- *)

let test_epc_alloc_release () =
  let epc = Epc.create ~frames:4 in
  checki "all free" 4 (Epc.free_frames epc);
  let f1 = Option.get (Epc.alloc epc) in
  let f2 = Option.get (Epc.alloc epc) in
  checkb "distinct" true (f1 <> f2);
  checki "two used" 2 (Epc.free_frames epc);
  Epc.release epc f1;
  checki "released" 3 (Epc.free_frames epc)

let test_epc_exhaustion () =
  let epc = Epc.create ~frames:2 in
  ignore (Epc.alloc epc);
  ignore (Epc.alloc epc);
  checkb "exhausted" true (Epc.alloc epc = None)

let test_epcm_bind_reverse () =
  let epc = Epc.create ~frames:4 in
  let f = Option.get (Epc.alloc epc) in
  Epc.bind epc ~frame:f ~enclave_id:7 ~vpage:0x100 ~perms:Types.perms_rw
    ~ptype:Types.Pt_reg ~pending:false;
  checkb "reverse lookup" true (Epc.frame_of epc ~enclave_id:7 ~vpage:0x100 = Some f);
  checkb "wrong enclave" true (Epc.frame_of epc ~enclave_id:8 ~vpage:0x100 = None);
  Epc.release epc f;
  checkb "reverse cleared" true (Epc.frame_of epc ~enclave_id:7 ~vpage:0x100 = None)

let test_epcm_double_bind_rejected () =
  let epc = Epc.create ~frames:2 in
  let f = Option.get (Epc.alloc epc) in
  Epc.bind epc ~frame:f ~enclave_id:1 ~vpage:1 ~perms:Types.perms_rw
    ~ptype:Types.Pt_reg ~pending:false;
  checkb "double bind raises" true
    (try
       Epc.bind epc ~frame:f ~enclave_id:1 ~vpage:2 ~perms:Types.perms_rw
         ~ptype:Types.Pt_reg ~pending:false;
       false
     with Types.Sgx_error _ -> true)

let test_epc_frames_of_enclave () =
  let epc = Epc.create ~frames:8 in
  for i = 0 to 2 do
    let f = Option.get (Epc.alloc epc) in
    Epc.bind epc ~frame:f ~enclave_id:3 ~vpage:i ~perms:Types.perms_rw
      ~ptype:Types.Pt_reg ~pending:false
  done;
  checki "three frames" 3 (List.length (Epc.frames_of_enclave epc ~enclave_id:3));
  checki "none for other" 0 (List.length (Epc.frames_of_enclave epc ~enclave_id:4))

(* --- Page table ------------------------------------------------------- *)

let test_page_table_map_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:5 ~frame:1 ~perms:Types.perms_rw ();
  checkb "present" true (Page_table.present pt 5);
  let p = Page_table.find_packed pt 5 in
  checkb "pte mapped" true (p >= 0);
  checkb "accessed defaults false" false (Page_table.p_accessed p);
  checkb "dirty defaults false" false (Page_table.p_dirty p);
  Page_table.unmap pt 5;
  checkb "unmapped" false (Page_table.present pt 5)

let test_page_table_ad_bits () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:5 ~frame:1 ~perms:Types.perms_rw ~accessed:true
    ~dirty:true ();
  Page_table.clear_accessed pt 5;
  let p = Page_table.find_packed pt 5 in
  checkb "pte mapped" true (p >= 0);
  checkb "accessed cleared" false (Page_table.p_accessed p);
  checkb "dirty kept" true (Page_table.p_dirty p);
  Page_table.clear_dirty pt 5;
  checkb "dirty cleared" false (Page_table.p_dirty (Page_table.find_packed pt 5))

let test_page_table_perms () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:9 ~frame:2 ~perms:Types.perms_rwx ();
  Page_table.set_perms pt 9 Types.perms_ro;
  checkb "perm update" true
    (Page_table.p_perms (Page_table.find_packed pt 9) = Types.perms_ro);
  Alcotest.check_raises "missing page" Not_found (fun () ->
      Page_table.set_perms pt 10 Types.perms_ro)

(* --- TLB -------------------------------------------------------------- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create () in
  checkb "cold miss" false (Tlb.hit tlb 1 Types.Read);
  Tlb.fill tlb 1 Types.perms_ro;
  checkb "hit read" true (Tlb.hit tlb 1 Types.Read);
  checkb "miss write (ro entry)" false (Tlb.hit tlb 1 Types.Write)

let test_tlb_flush () =
  let tlb = Tlb.create () in
  Tlb.fill tlb 1 Types.perms_rwx;
  Tlb.fill tlb 2 Types.perms_rwx;
  Tlb.flush_page tlb 1;
  checkb "page flushed" false (Tlb.hit tlb 1 Types.Read);
  checkb "other kept" true (Tlb.hit tlb 2 Types.Read);
  Tlb.flush tlb;
  checkb "all flushed" false (Tlb.hit tlb 2 Types.Read)

let test_tlb_capacity_eviction () =
  let tlb = Tlb.create ~capacity:4 () in
  for vp = 1 to 5 do
    Tlb.fill tlb vp Types.perms_rwx
  done;
  checki "capacity respected" 4 (Tlb.size tlb);
  checkb "oldest evicted" false (Tlb.hit tlb 1 Types.Read);
  checkb "newest kept" true (Tlb.hit tlb 5 Types.Read)

(* --- Enclave ---------------------------------------------------------- *)

let test_enclave_ranges () =
  let m = Helpers.machine () in
  let e = Instructions.ecreate m ~size_pages:8 ~self_paging:false in
  checkb "contains base" true (Enclave.contains_vpage e e.base_vpage);
  checkb "contains last" true (Enclave.contains_vpage e (e.base_vpage + 7));
  checkb "excludes end" false (Enclave.contains_vpage e (e.base_vpage + 8));
  checki "end vpage" (e.base_vpage + 8) (Enclave.end_vpage e)

let test_enclave_lifecycle () =
  let m = Helpers.machine () in
  let e = Instructions.ecreate m ~size_pages:4 ~self_paging:false in
  checkb "not runnable before einit" true
    (try Enclave.assert_runnable e; false with Types.Sgx_error _ -> true);
  Instructions.einit m e;
  Enclave.assert_runnable e;
  checkb "terminate raises" true
    (try Enclave.terminate e ~reason:"test"
     with Types.Enclave_terminated { reason = "test"; _ } -> true);
  checkb "dead not runnable" true
    (try Enclave.assert_runnable e; false with Types.Sgx_error _ -> true)

let test_enclave_regions_disjoint () =
  let m = Helpers.machine () in
  let e1 = Instructions.ecreate m ~size_pages:100 ~self_paging:false in
  let e2 = Instructions.ecreate m ~size_pages:100 ~self_paging:false in
  checkb "disjoint regions" false (Enclave.contains_vpage e2 e1.base_vpage)

(* --- MMU: legacy semantics -------------------------------------------- *)

let test_mmu_hit_after_walk () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let va = Helpers.vaddr_of e 0 in
  checkb "first access ok" true (Mmu.translate m pt e va Types.Read = Ok ());
  let misses = Metrics.Counters.get (Machine.counters m) "mmu.tlb_miss" in
  checkb "second access TLB hit" true (Mmu.translate m pt e va Types.Read = Ok ());
  checki "no extra miss" misses
    (Metrics.Counters.get (Machine.counters m) "mmu.tlb_miss")

let test_mmu_legacy_sets_ad_bits () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage in
  ignore (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read);
  let p = Page_table.find_packed pt vp in
  checkb "accessed set" true (Page_table.p_accessed p);
  checkb "dirty not set on read" false (Page_table.p_dirty p);
  ignore (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Write);
  (* write with RO TLB entry forces re-walk and sets dirty *)
  checkb "dirty set on write" true
    (Page_table.p_dirty (Page_table.find_packed pt vp))

let test_mmu_not_present_fault () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  Page_table.unmap pt e.base_vpage;
  checkb "not-present fault" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read
    = Error Types.Not_present)

let test_mmu_permission_fault () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  Page_table.set_perms pt e.base_vpage Types.perms_ro;
  checkb "write to RO faults" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Write
    = Error (Types.Permission Types.Write))

let test_mmu_epcm_mismatch_wrong_frame () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  (* Point page 0's PTE at page 1's frame: EPCM catches it. *)
  let f1 = Option.get (Epc.frame_of m.epc ~enclave_id:e.id ~vpage:(e.base_vpage + 1)) in
  Page_table.set_frame pt e.base_vpage f1;
  checkb "EPCM mismatch" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read
    = Error Types.Epcm_mismatch)

let test_mmu_non_epc_mapping () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  Page_table.set_frame pt e.base_vpage 9999;
  checkb "non-EPC mapping faults" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read
    = Error Types.Non_epc_mapping)

let test_mmu_outside_enclave_rejected () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  checkb "outside region is a simulator bug" true
    (try ignore (Mmu.translate m pt e 0x42 Types.Read); false
     with Types.Sgx_error _ -> true)

(* --- MMU: Autarky semantics ------------------------------------------- *)

let test_mmu_autarky_ad_clear_faults () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages ~self_paging:true m in
  (* Pages mapped with A/D set: access works. *)
  checkb "preset A/D ok" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read = Ok ());
  (* OS clears the accessed bit and flushes: next walk faults. *)
  Page_table.clear_accessed pt e.base_vpage;
  Tlb.flush_page m.tlb e.base_vpage;
  checkb "cleared A faults" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read = Error Types.Ad_clear)

let test_mmu_autarky_dirty_clear_faults () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages ~self_paging:true m in
  Page_table.clear_dirty pt e.base_vpage;
  Tlb.flush_page m.tlb e.base_vpage;
  checkb "cleared D faults even for reads" true
    (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Read = Error Types.Ad_clear)

let test_mmu_autarky_never_writes_ad () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages ~self_paging:true m in
  ignore (Mmu.translate m pt e (Helpers.vaddr_of e 0) Types.Write);
  let p = Page_table.find_packed pt e.base_vpage in
  (* Bits were preset by the OS; the walk must not have needed to write
     them (they stay as installed). *)
  checkb "A stays set" true (Page_table.p_accessed p);
  checkb "D stays set" true (Page_table.p_dirty p)

let test_mmu_fault_masking () =
  let m = Helpers.machine () in
  let legacy = Instructions.ecreate m ~size_pages:4 ~self_paging:false in
  let auta = Instructions.ecreate m ~size_pages:4 ~self_paging:true in
  let va_l = Types.vaddr_of_vpage legacy.base_vpage + 0x123 in
  let va_a = Types.vaddr_of_vpage (auta.base_vpage + 2) + 0x456 in
  let r_l = Mmu.os_report legacy va_l Types.Write in
  checki "legacy: page visible, offset masked"
    (Types.vaddr_of_vpage legacy.base_vpage) r_l.fr_vaddr;
  checkb "legacy: access type visible" true (r_l.fr_access = Types.Write);
  let r_a = Mmu.os_report auta va_a Types.Write in
  checki "autarky: base address only" (Enclave.base_vaddr auta) r_a.fr_vaddr;
  checkb "autarky: access type hidden" true (r_a.fr_access = Types.Read)

(* --- Instructions: entry/exit/fault delivery -------------------------- *)

let test_pending_exception_blocks_eresume () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages ~self_paging:true m in
  let sf = { Types.sf_vaddr = Helpers.vaddr_of e 0; sf_access = Types.Read;
             sf_cause = Types.Not_present } in
  Instructions.aex m e ~reason:(`Fault sf);
  checkb "pending set" true e.tcs.pending_exception;
  checkb "silent resume blocked" true
    (Instructions.eresume m e = Error `Pending_exception);
  (* Re-entering through the handler clears it. *)
  e.entry <- (fun _ -> ());
  Instructions.enter_handler_and_resume m e;
  checkb "pending cleared" false e.tcs.pending_exception;
  checkb "ssa popped" true (Stack.is_empty e.tcs.ssa)

let test_legacy_silent_resume_allowed () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages ~self_paging:false m in
  let sf = { Types.sf_vaddr = Helpers.vaddr_of e 0; sf_access = Types.Read;
             sf_cause = Types.Not_present } in
  Instructions.aex m e ~reason:(`Fault sf);
  checkb "no pending flag for legacy" false e.tcs.pending_exception;
  checkb "silent resume works" true (Instructions.eresume m e = Ok ());
  checkb "ssa popped" true (Stack.is_empty e.tcs.ssa)

let test_interrupt_resume () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages ~self_paging:true m in
  Instructions.aex m e ~reason:`Interrupt;
  checkb "interrupt sets no pending flag" false e.tcs.pending_exception;
  checkb "resume ok" true (Instructions.eresume m e = Ok ())

let test_ssa_overflow_terminates () =
  let m = Helpers.machine () in
  let e = Instructions.ecreate m ~size_pages:4 ~self_paging:true in
  Instructions.einit m e;
  let sf = { Types.sf_vaddr = Enclave.base_vaddr e; sf_access = Types.Read;
             sf_cause = Types.Not_present } in
  checkb "fault storm terminates" true
    (try
       for _ = 1 to 100 do
         Instructions.aex m e ~reason:(`Fault sf)
       done;
       false
     with Types.Enclave_terminated _ -> true)

let test_handler_mode_costs () =
  (* The three transition modes charge strictly decreasing costs. *)
  let cost mode =
    let m = Helpers.machine ~mode () in
    let e, _pt = Helpers.enclave_with_pages ~self_paging:true m in
    e.entry <- (fun _ -> ());
    let sf = { Types.sf_vaddr = Enclave.base_vaddr e; sf_access = Types.Read;
               sf_cause = Types.Not_present } in
    let start = Metrics.Clock.now m.clock in
    (match mode with
    | Machine.No_upcall_no_aex -> Instructions.deliver_fault_in_enclave m e sf
    | _ ->
      Instructions.aex m e ~reason:(`Fault sf);
      Instructions.enter_handler_and_resume m e);
    Metrics.Clock.now m.clock - start
  in
  let full = cost Machine.Full_exits in
  let no_upcall = cost Machine.No_upcall in
  let elided = cost Machine.No_upcall_no_aex in
  checkb "no_upcall cheaper than full" true (no_upcall < full);
  checkb "elided cheaper than no_upcall" true (elided < no_upcall)

let test_eenter_run_charges () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let cm = Machine.model m in
  let start = Metrics.Clock.now m.clock in
  let result = Instructions.eenter_run m e (fun () -> 42) in
  checki "result" 42 result;
  checki "eenter+eexit charged" (cm.eenter + cm.eexit)
    (Metrics.Clock.now m.clock - start)

(* --- Instructions: SGXv1 paging --------------------------------------- *)

let test_ewb_eldu_roundtrip () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage + 3 in
  let sw = Helpers.ewb_protocol m e ~vpage:vp in
  Page_table.unmap pt vp;
  checkb "frame freed" true (Epc.frame_of m.epc ~enclave_id:e.id ~vpage:vp = None);
  (match Instructions.eldu m e sw with
  | Ok frame ->
    checki "content preserved" 1003 (Page_data.read_int (Epc.data m.epc frame))
  | Error _ -> Alcotest.fail "eldu failed")

let test_eldu_rejects_replay () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage + 1 in
  let old = Helpers.ewb_protocol m e ~vpage:vp in
  (* Page comes back in, then is evicted again: old blob is stale. *)
  (match Instructions.eldu m e old with Ok _ -> () | Error _ -> Alcotest.fail "eldu");
  let _fresh = Helpers.ewb_protocol m e ~vpage:vp in
  match Instructions.eldu m e old with
  | Error `Replayed -> ()
  | Ok _ -> Alcotest.fail "replayed blob accepted"
  | Error e -> Alcotest.failf "wrong error %a" Instructions.pp_eldu_error e

let test_eldu_rejects_tamper () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let sw = Helpers.ewb_protocol m e ~vpage:(e.base_vpage + 2) in
  let ct = Bytes.copy sw.sw_sealed.ciphertext in
  Bytes.set ct 0 (Char.chr (Char.code (Bytes.get ct 0) lxor 0x80));
  let tampered = { sw with sw_sealed = { sw.sw_sealed with ciphertext = ct } } in
  match Instructions.eldu m e tampered with
  | Error `Mac_mismatch -> ()
  | Ok _ -> Alcotest.fail "tampered blob accepted"
  | Error _ -> Alcotest.fail "wrong error"

let test_eldu_wrong_enclave () =
  let m = Helpers.machine () in
  let e1, _ = Helpers.enclave_with_pages m in
  let e2, _ = Helpers.enclave_with_pages m in
  let sw = Helpers.ewb_protocol m e1 ~vpage:e1.base_vpage in
  checkb "cross-enclave eldu rejected" true
    (try ignore (Instructions.eldu m e2 sw); false
     with Types.Sgx_error _ -> true)

let test_ewb_epc_accounting () =
  (* 8 data pages + 1 frame left for the VA page. *)
  let m = Helpers.machine ~epc_frames:9 () in
  let e, _pt = Helpers.enclave_with_pages ~pages:8 m in
  checki "one frame free" 1 (Epc.free_frames m.epc);
  ignore (Helpers.ewb_protocol m e ~vpage:e.base_vpage);
  (* The VA page consumed the free frame; the eviction freed one. *)
  checki "frame reclaimed" 1 (Epc.free_frames m.epc)

let test_ewb_protocol_enforced () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage + 5 in
  (* Without EBLOCK. *)
  checkb "unblocked EWB rejected" true
    (try ignore (Instructions.ewb m e ~vpage:vp); false
     with Types.Sgx_error _ -> true);
  (* Blocked but the tracking epoch has not retired. *)
  Instructions.eblock m e ~vpage:vp;
  checkb "untracked EWB rejected" true
    (try ignore (Instructions.ewb m e ~vpage:vp); false
     with Types.Sgx_error _ -> true);
  (* Tracked but no version-array capacity. *)
  Instructions.etrack m e;
  checkb "EWB without VA slot rejected" true
    (try ignore (Instructions.ewb m e ~vpage:vp); false
     with Types.Sgx_error _ -> true);
  (match Instructions.epa m with Ok _ -> () | Error _ -> Alcotest.fail "epa");
  ignore (Instructions.ewb m e ~vpage:vp)

let test_blocked_page_faults () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage + 4 in
  ignore (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read);
  Instructions.eblock m e ~vpage:vp;
  checkb "blocked page faults on next walk" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read
    = Error Types.Not_present)

let test_epa_capacity () =
  let m = Helpers.machine () in
  checki "no slots initially" 0 (Machine.free_va_slots m);
  (match Instructions.epa m with Ok _ -> () | Error _ -> Alcotest.fail "epa");
  checki "512 slots per VA page" 512 (Machine.free_va_slots m);
  let slot = Option.get (Machine.take_va_slot m ~version:7L) in
  checki "slot taken" 511 (Machine.free_va_slots m);
  checkb "readable" true (Machine.read_va_slot m slot = Some 7L);
  Machine.clear_va_slot m slot;
  checki "slot recycled" 512 (Machine.free_va_slots m);
  checkb "cleared" true (Machine.read_va_slot m slot = None)

(* --- Instructions: SGXv2 dynamic memory ------------------------------- *)

let test_eaug_pending_blocks_access () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages ~pages:8 ~mapped:true m in
  let vp = e.base_vpage + 7 in
  (* Remove page 7 and re-add it via EAUG. *)
  ignore (Helpers.ewb_protocol m e ~vpage:vp);
  Page_table.unmap pt vp;
  (match Instructions.eaug m e ~vpage:vp with
  | Ok frame ->
    Page_table.map pt ~vpage:vp ~frame ~perms:Types.perms_rw ~accessed:true
      ~dirty:true ()
  | Error `Epc_full -> Alcotest.fail "epc full");
  checkb "pending page faults" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read
    = Error Types.Epcm_pending);
  let data = Page_data.create () in
  Page_data.fill_int data 777;
  Instructions.eacceptcopy m e ~vpage:vp ~data;
  checkb "accepted page accessible" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read = Ok ())

let test_emodpr_eaccept_flow () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages ~self_paging:false m in
  let vp = e.base_vpage + 1 in
  Instructions.emodpr m e ~vpage:vp ~perms:Types.perms_ro;
  checkb "modified page faults" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read
    = Error Types.Epcm_pending);
  Instructions.eaccept m e ~vpage:vp;
  checkb "read ok after accept" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Read = Ok ());
  Tlb.flush m.tlb;
  checkb "write blocked by EPCM perms" true
    (Mmu.translate m pt e (Types.vaddr_of_vpage vp) Types.Write
    = Error (Types.Permission Types.Write))

let test_emodpr_cannot_extend () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage in
  Instructions.emodpr m e ~vpage:vp ~perms:Types.perms_ro;
  Instructions.eaccept m e ~vpage:vp;
  checkb "extension rejected" true
    (try
       Instructions.emodpr m e ~vpage:vp ~perms:Types.perms_rwx;
       false
     with Types.Sgx_error _ -> true)

let test_trim_remove_flow () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  let vp = e.base_vpage + 2 in
  checkb "remove before trim rejected" true
    (try ignore (Instructions.eremove m e ~vpage:vp); false
     with Types.Sgx_error _ -> true);
  Instructions.emodt m e ~vpage:vp;
  checkb "remove before accept rejected" true
    (try ignore (Instructions.eremove m e ~vpage:vp); false
     with Types.Sgx_error _ -> true);
  Instructions.eaccept m e ~vpage:vp;
  let free = Epc.free_frames m.epc in
  Instructions.eremove m e ~vpage:vp;
  checki "frame freed" (free + 1) (Epc.free_frames m.epc)

let test_eadd_after_einit_rejected () =
  let m = Helpers.machine () in
  let e, _pt = Helpers.enclave_with_pages m in
  checkb "post-init eadd rejected" true
    (try
       ignore
         (Instructions.eadd m e ~vpage:e.base_vpage ~data:(Page_data.create ())
            ~perms:Types.perms_rw ~ptype:Types.Pt_reg);
       false
     with Types.Sgx_error _ -> true)

(* --- CPU flow --------------------------------------------------------- *)

let test_cpu_fault_retry () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  Page_table.unmap pt e.base_vpage;
  let remapped = ref false in
  let os =
    Helpers.os_resuming m e (fun _report ->
        (* OS restores the mapping like a benign pager would. *)
        let frame = Option.get (Epc.frame_of m.epc ~enclave_id:e.id ~vpage:e.base_vpage) in
        Page_table.map pt ~vpage:e.base_vpage ~frame ~perms:Types.perms_rwx ();
        remapped := true)
  in
  let cpu = Cpu.create ~machine:m ~page_table:pt ~enclave:e ~os () in
  Cpu.read cpu (Helpers.vaddr_of e 0);
  checkb "OS was invoked" true !remapped;
  checki "one fault" 1 (Metrics.Counters.get (Machine.counters m) "cpu.page_fault")

let test_cpu_livelock_detected () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  Page_table.unmap pt e.base_vpage;
  (* An OS that resumes without fixing anything. *)
  let os = Helpers.os_resuming m e (fun _ -> ()) in
  let cpu = Cpu.create ~machine:m ~page_table:pt ~enclave:e ~os ~max_fault_retries:3 () in
  checkb "livelock detected" true
    (try Cpu.read cpu (Helpers.vaddr_of e 0); false
     with Types.Sgx_error _ -> true)

let test_cpu_stamps () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let os = Helpers.no_os in
  let cpu = Cpu.create ~machine:m ~page_table:pt ~enclave:e ~os () in
  Cpu.write_stamp cpu (Helpers.vaddr_of e 4) 4242;
  checki "stamp readback" 4242 (Cpu.read_stamp cpu (Helpers.vaddr_of e 4))

let test_cpu_preemption () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let preempts = ref 0 in
  let os =
    { Cpu.handle_enclave_fault = (fun _ -> Alcotest.fail "no faults expected");
      handle_preempt = (fun ~enclave_id:_ -> incr preempts) }
  in
  let cpu = Cpu.create ~machine:m ~page_table:pt ~enclave:e ~os () in
  Cpu.set_preempt_interval cpu (Some 10);
  for _ = 1 to 100 do
    Cpu.read cpu (Helpers.vaddr_of e 0)
  done;
  checki "10 preemptions" 10 !preempts

let test_cpu_dead_enclave_rejected () =
  let m = Helpers.machine () in
  let e, pt = Helpers.enclave_with_pages m in
  let cpu = Cpu.create ~machine:m ~page_table:pt ~enclave:e ~os:Helpers.no_os () in
  (try Enclave.terminate e ~reason:"test" with Types.Enclave_terminated _ -> ());
  checkb "dead enclave cannot run" true
    (try Cpu.read cpu (Helpers.vaddr_of e 0); false
     with Types.Sgx_error _ -> true)

let suite =
  [
    ("epc alloc/release", `Quick, test_epc_alloc_release);
    ("epc exhaustion", `Quick, test_epc_exhaustion);
    ("epcm bind + reverse lookup", `Quick, test_epcm_bind_reverse);
    ("epcm double bind rejected", `Quick, test_epcm_double_bind_rejected);
    ("epc frames of enclave", `Quick, test_epc_frames_of_enclave);
    ("page table map/unmap", `Quick, test_page_table_map_unmap);
    ("page table A/D bits", `Quick, test_page_table_ad_bits);
    ("page table perms", `Quick, test_page_table_perms);
    ("tlb hit/miss", `Quick, test_tlb_hit_miss);
    ("tlb flush", `Quick, test_tlb_flush);
    ("tlb capacity eviction", `Quick, test_tlb_capacity_eviction);
    ("enclave ranges", `Quick, test_enclave_ranges);
    ("enclave lifecycle", `Quick, test_enclave_lifecycle);
    ("enclave regions disjoint", `Quick, test_enclave_regions_disjoint);
    ("mmu tlb hit after walk", `Quick, test_mmu_hit_after_walk);
    ("mmu legacy sets A/D", `Quick, test_mmu_legacy_sets_ad_bits);
    ("mmu not-present fault", `Quick, test_mmu_not_present_fault);
    ("mmu permission fault", `Quick, test_mmu_permission_fault);
    ("mmu EPCM mismatch (wrong frame)", `Quick, test_mmu_epcm_mismatch_wrong_frame);
    ("mmu non-EPC mapping", `Quick, test_mmu_non_epc_mapping);
    ("mmu outside enclave rejected", `Quick, test_mmu_outside_enclave_rejected);
    ("mmu autarky A-clear faults", `Quick, test_mmu_autarky_ad_clear_faults);
    ("mmu autarky D-clear faults", `Quick, test_mmu_autarky_dirty_clear_faults);
    ("mmu autarky never writes A/D", `Quick, test_mmu_autarky_never_writes_ad);
    ("mmu fault masking", `Quick, test_mmu_fault_masking);
    ("pending exception blocks ERESUME", `Quick, test_pending_exception_blocks_eresume);
    ("legacy silent resume allowed", `Quick, test_legacy_silent_resume_allowed);
    ("interrupt resume", `Quick, test_interrupt_resume);
    ("SSA overflow terminates", `Quick, test_ssa_overflow_terminates);
    ("handler mode costs ordered", `Quick, test_handler_mode_costs);
    ("eenter_run charges", `Quick, test_eenter_run_charges);
    ("EWB/ELDU roundtrip", `Quick, test_ewb_eldu_roundtrip);
    ("ELDU rejects replay", `Quick, test_eldu_rejects_replay);
    ("ELDU rejects tamper", `Quick, test_eldu_rejects_tamper);
    ("ELDU wrong enclave", `Quick, test_eldu_wrong_enclave);
    ("EWB EPC accounting", `Quick, test_ewb_epc_accounting);
    ("EBLOCK/ETRACK/EPA protocol enforced", `Quick, test_ewb_protocol_enforced);
    ("blocked page faults", `Quick, test_blocked_page_faults);
    ("EPA capacity", `Quick, test_epa_capacity);
    ("EAUG pending blocks access", `Quick, test_eaug_pending_blocks_access);
    ("EMODPR/EACCEPT flow", `Quick, test_emodpr_eaccept_flow);
    ("EMODPR cannot extend", `Quick, test_emodpr_cannot_extend);
    ("trim+remove flow", `Quick, test_trim_remove_flow);
    ("EADD after EINIT rejected", `Quick, test_eadd_after_einit_rejected);
    ("cpu fault retry", `Quick, test_cpu_fault_retry);
    ("cpu livelock detected", `Quick, test_cpu_livelock_detected);
    ("cpu stamps", `Quick, test_cpu_stamps);
    ("cpu preemption", `Quick, test_cpu_preemption);
    ("cpu dead enclave rejected", `Quick, test_cpu_dead_enclave_rejected);
  ]
