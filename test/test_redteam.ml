(* The red-team adversary suite (lib/redteam): the Leakage edge-case
   guards it leans on, victim determinism under a null adversary, the
   ground-truth behavior of each adversary against the configurations
   where the paper predicts full leakage / full masking, and scoreboard
   determinism across worker counts. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* --- Leakage edge cases ------------------------------------------------- *)

let test_entropy_edge_cases () =
  checkf "empty distribution" 0.0 (Attacks.Leakage.entropy_bits []);
  checkf "single outcome" 0.0 (Attacks.Leakage.entropy_bits [ 1.0 ]);
  checkf "all-zero mass" 0.0 (Attacks.Leakage.entropy_bits [ 0.0; 0.0; 0.0 ]);
  (* Raw counts are normalized by their sum. *)
  checkf "counts normalized" 2.0
    (Attacks.Leakage.entropy_bits [ 3.0; 3.0; 3.0; 3.0 ]);
  checkf "skewed counts" 1.0 (Attacks.Leakage.entropy_bits [ 5.0; 5.0 ]);
  (* Already-normalized input takes the untouched path. *)
  checkf "normalized untouched" 1.0 (Attacks.Leakage.entropy_bits [ 0.5; 0.5 ]);
  let h = Attacks.Leakage.entropy_bits [ 1e-300; 1e-300 ] in
  checkb "tiny mass is finite" true (Float.is_finite h);
  checkf "tiny mass normalizes to uniform" 1.0 h

let test_entropy_rejects_invalid () =
  Alcotest.check_raises "negative probability"
    (Invalid_argument
       "Leakage.entropy_bits: probabilities must be finite and >= 0")
    (fun () -> ignore (Attacks.Leakage.entropy_bits [ 0.5; -0.1 ]));
  Alcotest.check_raises "NaN probability"
    (Invalid_argument
       "Leakage.entropy_bits: probabilities must be finite and >= 0")
    (fun () -> ignore (Attacks.Leakage.entropy_bits [ Float.nan ]));
  Alcotest.check_raises "infinite probability"
    (Invalid_argument
       "Leakage.entropy_bits: probabilities must be finite and >= 0")
    (fun () -> ignore (Attacks.Leakage.entropy_bits [ Float.infinity ]))

let test_leakage_helper_guards () =
  checkf "uniform n=8" 3.0 (Attacks.Leakage.uniform_entropy_bits ~n:8);
  checkb "uniform n=0 rejected" true
    (try
       ignore (Attacks.Leakage.uniform_entropy_bits ~n:0);
       false
     with Invalid_argument _ -> true);
  checkb "negative faults rejected" true
    (try
       ignore (Attacks.Leakage.rate_limit_leak_bound ~faults:(-1) ~managed_pages:4);
       false
     with Invalid_argument _ -> true);
  checkb "zero-size cluster rejected" true
    (try
       ignore
         (Attacks.Leakage.cluster_guess_probability ~item_bytes:256
            ~cluster_pages:0 ~page_bytes:4096);
       false
     with Invalid_argument _ -> true)

(* --- victims ------------------------------------------------------------ *)

let cfg ?(policy = Redteam.Victim.Rate_limit) ?(mech = `Sgx1) ?(seed = 7) () =
  { Redteam.Victim.policy; mech; symbols = 8; alphabet = 8; seed }

let null_run v =
  Redteam.Victim.run v ~before:(fun _ -> ()) ~after:(fun _ -> ())

let test_null_adversary_deterministic () =
  List.iter
    (fun policy ->
      let mk () = Redteam.Victim.create (cfg ~policy ()) in
      let v1 = mk () and v2 = mk () in
      checkb "same secret" true
        (Redteam.Victim.secret v1 = Redteam.Victim.secret v2);
      checkb "run 1 completes" true (null_run v1 = Redteam.Victim.Completed);
      checkb "run 2 completes" true (null_run v2 = Redteam.Victim.Completed);
      checks "identical trace digests" (Redteam.Victim.digest v1)
        (Redteam.Victim.digest v2))
    Redteam.Victim.all_policies

let test_victim_runs_once () =
  let v = Redteam.Victim.create (cfg ~policy:Redteam.Victim.Baseline ()) in
  checkb "first run" true (null_run v = Redteam.Victim.Completed);
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Victim.run: a victim can only be run once") (fun () ->
      ignore (null_run v))

(* --- adversaries: ground truth ------------------------------------------ *)

let run_adv adv c = adv.Redteam.Adversary.run (fun () -> Redteam.Victim.create c)

let test_copycat_owns_baseline () =
  (* Single-stepping against a legacy kernel recovers the exact secret:
     the marker fault lands after secret+1 scratch reads. *)
  let v, r = run_adv Redteam.Copycat.adversary (cfg ~policy:Baseline ()) in
  let secret = Redteam.Victim.secret v in
  checkb "completed" true (r.res_outcome = Redteam.Adversary.Completed);
  checki "one observation per request" (Array.length secret)
    (List.length r.res_observations);
  List.iter
    (fun ob ->
      checkb "exact symbol recovered" true
        (ob.Redteam.Adversary.ob_candidates
        = [ secret.(ob.Redteam.Adversary.ob_request) ]))
    r.res_observations

let test_copycat_detected_by_autarky () =
  List.iter
    (fun mech ->
      let _, r = run_adv Redteam.Copycat.adversary (cfg ~mech ()) in
      checkb "detected" true
        (match r.Redteam.Adversary.res_outcome with
        | Redteam.Adversary.Detected _ -> true
        | Redteam.Adversary.Completed -> false);
      checki "no observations" 0 (List.length r.res_observations);
      checki "one termination" 1 r.res_terminations)
    [ `Sgx1; `Sgx2 ]

let test_branch_shadow_outside_threat_model () =
  (* The branch channel is not a paging channel: it completes — and
     leaks — against every policy, motivating the paper's §3 scoping. *)
  List.iter
    (fun policy ->
      let v, r = run_adv Redteam.Branch_shadow.adversary (cfg ~policy ()) in
      let secret = Redteam.Victim.secret v in
      checkb "completed" true (r.res_outcome = Redteam.Adversary.Completed);
      List.iter
        (fun ob ->
          checkb "truth among candidates" true
            (List.mem
               secret.(ob.Redteam.Adversary.ob_request)
               ob.Redteam.Adversary.ob_candidates))
        r.res_observations;
      checkb "observed something" true (r.res_observations <> []))
    [ Redteam.Victim.Baseline; Redteam.Victim.Rate_limit; Redteam.Victim.Oram ]

let test_pigeonhole_masked_by_oram () =
  List.iter
    (fun mech ->
      let _, r =
        run_adv Redteam.Pigeonhole.adversary (cfg ~policy:Oram ~mech ())
      in
      checkb "completed" true (r.res_outcome = Redteam.Adversary.Completed);
      List.iter
        (fun ob ->
          checkb "no data-page fetch observed" true
            (ob.Redteam.Adversary.ob_candidates = []))
        r.res_observations)
    [ `Sgx1; `Sgx2 ]

let test_kingsguard_ladder () =
  (* Against legacy: the A/D channel completes silently.  Against any
     Autarky policy: all three rungs die, one termination each. *)
  let _, r = run_adv Redteam.Kingsguard.adversary (cfg ~policy:Baseline ()) in
  checkb "legacy survives the ladder" true
    (r.res_outcome = Redteam.Adversary.Completed);
  checki "no terminations under legacy" 0 r.res_terminations;
  let _, r = run_adv Redteam.Kingsguard.adversary (cfg ~policy:Clusters ()) in
  checkb "autarky detects" true
    (match r.Redteam.Adversary.res_outcome with
    | Redteam.Adversary.Detected _ -> true
    | Redteam.Adversary.Completed -> false);
  checki "every rung terminated" 3 r.res_terminations

(* --- scoreboard --------------------------------------------------------- *)

let test_registry () =
  checkb "four adversaries" true
    (List.map (fun a -> a.Redteam.Adversary.id) Redteam.Scoreboard.adversaries
    = [ "copycat"; "branch-shadow"; "pigeonhole"; "kingsguard" ]);
  checkb "lookup hit" true
    (match Redteam.Scoreboard.find_adversary "pigeonhole" with
    | Some a -> a.Redteam.Adversary.id = "pigeonhole"
    | None -> false);
  checkb "lookup miss" true (Redteam.Scoreboard.find_adversary "nsa" = None);
  checki "seven configurations" 7 (List.length Redteam.Scoreboard.configs)

let test_scoreboard_jobs_deterministic () =
  let run jobs =
    Redteam.Scoreboard.run ~quick:true
      ~adversaries:[ Redteam.Copycat.adversary; Redteam.Pigeonhole.adversary ]
      ~policies:[ Redteam.Victim.Baseline; Redteam.Victim.Clusters ]
      ~seed:11 ~jobs ()
  in
  let j1 = run 1 and j4 = run 4 in
  checki "six cells" 6 (List.length j1);
  checks "byte-identical reports"
    (Redteam.Scoreboard.to_json ~quick:true ~seed:11 j1)
    (Redteam.Scoreboard.to_json ~quick:true ~seed:11 j4)

let test_scoreboard_masked_cell () =
  (* The acceptance cell: a policy under which an adversary's take is
     exactly 0.0 bits while the legacy baseline bleeds. *)
  let cells =
    Redteam.Scoreboard.run ~quick:true
      ~adversaries:[ Redteam.Copycat.adversary ]
      ~policies:[ Redteam.Victim.Baseline; Redteam.Victim.Rate_limit ]
      ~mechs:[ `Sgx1 ] ~seed:3 ~jobs:1 ()
  in
  match cells with
  | [ base; rl ] ->
    checkb "baseline leaks everything" true
      (base.Redteam.Scoreboard.c_bits_leaked
      = base.Redteam.Scoreboard.c_bits_ideal);
    checkf "autarky leaks nothing" 0.0 rl.Redteam.Scoreboard.c_bits_leaked;
    checkf "termination channel is one bit" 1.0
      rl.Redteam.Scoreboard.c_termination_bits
  | cells -> Alcotest.failf "expected 2 cells, got %d" (List.length cells)

let suite =
  [
    Alcotest.test_case "leakage: entropy edge cases" `Quick
      test_entropy_edge_cases;
    Alcotest.test_case "leakage: invalid distributions rejected" `Quick
      test_entropy_rejects_invalid;
    Alcotest.test_case "leakage: helper guards" `Quick
      test_leakage_helper_guards;
    Alcotest.test_case "victim: null adversary deterministic" `Quick
      test_null_adversary_deterministic;
    Alcotest.test_case "victim: runs once" `Quick test_victim_runs_once;
    Alcotest.test_case "copycat: recovers secret from legacy" `Quick
      test_copycat_owns_baseline;
    Alcotest.test_case "copycat: detected by autarky" `Quick
      test_copycat_detected_by_autarky;
    Alcotest.test_case "branch-shadow: outside the paging threat model"
      `Quick test_branch_shadow_outside_threat_model;
    Alcotest.test_case "pigeonhole: masked by oram" `Quick
      test_pigeonhole_masked_by_oram;
    Alcotest.test_case "kingsguard: escalation ladder" `Quick
      test_kingsguard_ladder;
    Alcotest.test_case "scoreboard: registry" `Quick test_registry;
    Alcotest.test_case "scoreboard: jobs-independent" `Quick
      test_scoreboard_jobs_deterministic;
    Alcotest.test_case "scoreboard: autarky masks the copycat cell" `Quick
      test_scoreboard_masked_cell;
  ]
