(* Tests for the trace subsystem: recorder ring semantics, sinks,
   canonical JSON, the OS-visible projection, and golden-trace
   determinism (the simulator is deterministic under a fixed seed, so
   two identical runs must produce byte-identical event streams). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let clock () = Metrics.Clock.create Metrics.Cost_model.default

let mark name = Trace.Event.Mark { name }

(* --- recorder ring ------------------------------------------------------ *)

let test_ring_overflow () =
  let tr = Trace.Recorder.create ~capacity:4 ~clock:(clock ()) () in
  let counting, count = Trace.Sink.counting () in
  Trace.Recorder.add_sink tr counting;
  for i = 0 to 9 do
    Trace.Recorder.emit tr ~actor:Trace.Event.Harness
      (mark (string_of_int i))
  done;
  checki "emitted" 10 (Trace.Recorder.emitted tr);
  checki "retained" 4 (Trace.Recorder.retained tr);
  checki "dropped" 6 (Trace.Recorder.dropped tr);
  Alcotest.(check (list int)) "ring keeps the tail" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Trace.Event.seq) (Trace.Recorder.events tr));
  (* Sinks are not bounded by the ring: they saw the full stream. *)
  checki "sink saw everything" 10 (count ())

let test_bad_capacity () =
  checkb "capacity must be positive" true
    (try
       ignore (Trace.Recorder.create ~capacity:0 ~clock:(clock ()) ());
       false
     with Invalid_argument _ -> true)

let test_inactive_recorder () =
  let tr = Trace.Recorder.create ~clock:(clock ()) () in
  Trace.Recorder.set_active tr false;
  Trace.Recorder.emit tr ~actor:Trace.Event.Harness (mark "ignored");
  checki "nothing emitted" 0 (Trace.Recorder.emitted tr);
  Trace.Recorder.set_active tr true;
  Trace.Recorder.emit tr ~actor:Trace.Event.Harness (mark "kept");
  checki "emitted after reactivation" 1 (Trace.Recorder.emitted tr)

(* --- canonical JSON ----------------------------------------------------- *)

let test_json_well_formed () =
  let tr = Trace.Recorder.create ~clock:(clock ()) () in
  let emit k = Trace.Recorder.emit tr ~enclave:1 ~actor:Trace.Event.Hw k in
  emit
    (Trace.Event.Fault
       { vpage = 7; access = Trace.Event.Write; cause = "not-present";
         reported_vpage = 0; reported_access = Trace.Event.Read; masked = true });
  emit (Trace.Event.Fetch { vpages = [ 1; 2; 3 ]; enclave_initiated = true });
  emit (Trace.Event.Syscall { name = "fetch_pages"; pages = 3 });
  (* Escaping: quotes, backslashes and control characters must survive. *)
  emit (mark "quote\" back\\slash \ntab\t");
  List.iter
    (fun e ->
      match Trace.Jsonl.validate (Trace.Event.to_json e) with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "invalid JSON for %s: %s" (Trace.Event.to_json e) msg)
    (Trace.Recorder.events tr)

(* --- a pinned deterministic scenario ------------------------------------ *)

(* Small self-paging system under the rate-limit policy: 128 managed
   data pages against a 96-frame budget, 400 seeded random reads —
   enough to exercise faults, handler entries, policy decisions,
   fetches and evictions. *)
let run_pinned_scenario () =
  let sys =
    Harness.System.create ~trace:true ~epc_frames:256 ~epc_limit:128
      ~enclave_pages:512 ~self_paging:true ~budget:96 ()
  in
  let tr = Harness.System.tracer_exn sys in
  let dsink, dres = Trace.Sink.digest () in
  Trace.Recorder.add_sink tr dsink;
  let rt = Harness.System.runtime_exn sys in
  let rl =
    Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:100_000 ()
  in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  (* Skip the initially-resident prefix (the first [epc_limit] pages are
     populated resident at build time) so every read demand-faults. *)
  let _resident_prefix = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:128 in
  Harness.System.manage sys (List.init 128 (fun i -> b + i));
  let rng = Metrics.Rng.create ~seed:11L in
  let vm = Harness.System.vm sys () in
  Harness.System.mark sys "measurement-start";
  Harness.System.run_in_enclave sys (fun () ->
      for _ = 1 to 400 do
        vm.Workloads.Vm.read
          ((b + Metrics.Rng.int rng 128) * Sgx.Types.page_bytes)
      done);
  Harness.System.mark sys "measurement-end";
  Trace.Recorder.close tr;
  (sys, dres ())

(* Regression anchor: the digest of the pinned scenario above.  A
   change here means event emission, serialization, or simulator
   behavior changed — intentional changes must update the constant. *)
let pinned_digest = "fnv64:c74b94f94e7b75e5"

let test_golden_trace_determinism () =
  let _, d1 = run_pinned_scenario () in
  let _, d2 = run_pinned_scenario () in
  checks "same seed, same digest" d1 d2;
  checks "pinned regression digest" pinned_digest d1

let test_query_digest_matches_streaming () =
  let sys, _ = run_pinned_scenario () in
  let events = Trace.Recorder.events (Harness.System.tracer_exn sys) in
  let sink, result = Trace.Sink.digest () in
  List.iter (fun e -> Trace.Sink.push sink e) events;
  checks "offline digest = streaming digest" (result ())
    (Trace.Query.digest events)

(* --- OS-visible projection ---------------------------------------------- *)

let test_os_projection () =
  let sys, _ = run_pinned_scenario () in
  let events = Trace.Recorder.events (Harness.System.tracer_exn sys) in
  let private_kinds = [ "handler"; "decision"; "mark" ] in
  let count_kinds ks evs =
    List.fold_left (fun n k -> n + List.length (Trace.Query.by_kind k evs)) 0 ks
  in
  (* The full trace contains enclave-private events... *)
  checkb "full trace has private events" true (count_kinds private_kinds events > 0);
  checkb "full trace has faults" true
    (Trace.Query.by_kind "fault" events <> []);
  (* ...and the projection excludes every one of them. *)
  let proj = Trace.Query.os_projection events in
  checki "projection excludes private events" 0 (count_kinds private_kinds proj);
  (* Faults from a self-paging enclave are masked to the report the
     hardware actually gave the OS: enclave base, read access, no
     architectural cause. *)
  let base = (Harness.System.enclave sys).Sgx.Enclave.base_vpage in
  List.iter
    (fun e ->
      match e.Trace.Event.kind with
      | Trace.Event.Fault { vpage; access; cause; masked; _ } ->
        checkb "masked" true masked;
        checki "address masked to enclave base" base vpage;
        checkb "access masked to read" true (access = Trace.Event.Read);
        checks "cause hidden" "" cause
      | _ -> ())
    (Trace.Query.by_kind "fault" proj);
  (* OS-performed activity passes through. *)
  checkb "paging visible to the OS" true
    (Trace.Query.by_kind "fetch" proj <> [])

(* --- Instrument range registry ------------------------------------------ *)

let test_annotate_overlap_rejected () =
  let i = Autarky.Instrument.create ~fallback:(fun _ _ -> ()) in
  Autarky.Instrument.annotate i ~base_vpage:100 ~pages:8 (fun _ _ -> ());
  Autarky.Instrument.annotate i ~base_vpage:200 ~pages:8 (fun _ _ -> ());
  checkb "overlapping range rejected" true
    (try
       Autarky.Instrument.annotate i ~base_vpage:104 ~pages:8 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true);
  checkb "containing range rejected" true
    (try
       Autarky.Instrument.annotate i ~base_vpage:96 ~pages:120 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true);
  checki "registry unchanged by rejections" 2
    (List.length (Autarky.Instrument.ranges i))

let suite =
  [
    ("ring overflow drop accounting", `Quick, test_ring_overflow);
    ("non-positive capacity rejected", `Quick, test_bad_capacity);
    ("inactive recorder is silent", `Quick, test_inactive_recorder);
    ("canonical JSON well-formed", `Quick, test_json_well_formed);
    ("golden trace determinism", `Quick, test_golden_trace_determinism);
    ("query digest = streaming digest", `Quick, test_query_digest_matches_streaming);
    ("OS-visible projection", `Quick, test_os_projection);
    ("overlapping annotate rejected", `Quick, test_annotate_overlap_rejected);
  ]
