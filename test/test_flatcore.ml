(* Differential oracle tests for the flat-array SGX core.

   The hot-path structures (packed-int page table, open-addressing TLB,
   int->int Flat map) each keep their pre-rewrite boxed implementation
   around ([Page_table_ref], [Tlb_ref], plain [Hashtbl]) as an oracle.
   These tests drive identical operation sequences — scripted and
   QCheck-random — through both representations and demand
   observation-for-observation agreement: packed PTEs, hit/miss
   decisions, eviction order, exception behaviour, sizes.  A flat-core
   bug that changes any observable therefore fails here before it can
   silently shift fault sequences or trace digests downstream. *)

open Sgx

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let perms_of_bits b =
  Types.{ r = b land 1 <> 0; w = b land 2 <> 0; x = b land 4 <> 0 }

let kind_of i =
  match i mod 3 with 0 -> Types.Read | 1 -> Types.Write | _ -> Types.Exec

(* --- Packed-PTE encoding -------------------------------------------- *)

(* Exhaustive over perms x accessed x dirty (and a frame sample): the
   packed form must round-trip through every accessor, and the two
   implementations must share one encoding (the MMU walk reads packed
   PTEs straight out of either). *)
let test_pack_roundtrip () =
  List.iter
    (fun frame ->
      for bits = 0 to 7 do
        List.iter
          (fun (accessed, dirty) ->
            let perms = perms_of_bits bits in
            let p = Page_table.pack ~frame ~perms ~accessed ~dirty in
            checkb "present" true (Page_table.p_present p);
            checki "frame" frame (Page_table.p_frame p);
            checki "rwx" bits (Page_table.p_rwx p);
            checkb "accessed" accessed (Page_table.p_accessed p);
            checkb "dirty" dirty (Page_table.p_dirty p);
            checkb "perms" true (Page_table.p_perms p = perms);
            List.iter
              (fun k ->
                checkb "allows" (Types.perms_allow perms k)
                  (Page_table.p_allows p k))
              [ Types.Read; Types.Write; Types.Exec ];
            checki "ref same encoding" p
              (Page_table_ref.pack ~frame ~perms ~accessed ~dirty))
          [ (false, false); (false, true); (true, false); (true, true) ]
      done)
    [ 0; 1; 63; 4095; 1_000_000 ];
  checki "shared sentinel" Page_table.no_pte Page_table_ref.no_pte;
  (* Every packed PTE is non-negative, so the [-1] sentinel can never
     collide with a real entry. *)
  checkb "sentinel negative" true (Page_table.no_pte < 0)

(* --- Page table: flat vs boxed reference ---------------------------- *)

(* One operation applied to both tables; raised exceptions are part of
   the observable behaviour and must agree. *)
let pt_apply flat boxed (op, vp, arg) =
  let frame = arg land 0xFFFF in
  let perms = perms_of_bits arg in
  let attempt name f g =
    let r1 = try f (); None with Not_found -> Some () in
    let r2 = try g (); None with Not_found -> Some () in
    checkb (name ^ " raises alike") true (r1 = r2)
  in
  match op mod 8 with
  | 0 ->
    let accessed = arg land 8 <> 0 and dirty = arg land 16 <> 0 in
    Page_table.map flat ~vpage:vp ~frame ~perms ~accessed ~dirty ();
    Page_table_ref.map boxed ~vpage:vp ~frame ~perms ~accessed ~dirty ()
  | 1 ->
    Page_table.unmap flat vp;
    Page_table_ref.unmap boxed vp
  | 2 ->
    Page_table.set_present flat vp (arg land 1 = 1);
    Page_table_ref.set_present boxed vp (arg land 1 = 1)
  | 3 ->
    Page_table.set_ad flat vp ~write:(arg land 1 = 1);
    Page_table_ref.set_ad boxed vp ~write:(arg land 1 = 1)
  | 4 ->
    Page_table.clear_accessed flat vp;
    Page_table_ref.clear_accessed boxed vp
  | 5 ->
    Page_table.clear_dirty flat vp;
    Page_table_ref.clear_dirty boxed vp
  | 6 ->
    attempt "set_perms"
      (fun () -> Page_table.set_perms flat vp perms)
      (fun () -> Page_table_ref.set_perms boxed vp perms)
  | _ ->
    attempt "set_frame"
      (fun () -> Page_table.set_frame flat vp frame)
      (fun () -> Page_table_ref.set_frame boxed vp frame)

let pt_domain = 64

let pt_agree flat boxed =
  let ok = ref true in
  for vp = 0 to pt_domain - 1 do
    ok :=
      !ok
      && Page_table.find_packed flat vp = Page_table_ref.find_packed boxed vp
      && Page_table.mapped flat vp = Page_table_ref.mapped boxed vp
      && Page_table.present flat vp = Page_table_ref.present boxed vp
  done;
  !ok
  && Page_table.mapped_pages flat = Page_table_ref.mapped_pages boxed
  && Page_table.count_present flat = Page_table_ref.count_present boxed
  && Page_table.count_mapped flat = Page_table_ref.count_mapped boxed

let pt_property ops =
  let flat = Page_table.create () in
  let boxed = Page_table_ref.create () in
  List.for_all
    (fun (op, vp, arg) ->
      pt_apply flat boxed (op, vp mod pt_domain, arg);
      pt_agree flat boxed)
    ops

(* A scripted walk through every operation, including the Not_found
   paths and a remap of an existing PTE, checked op by op. *)
let test_pt_scripted () =
  let flat = Page_table.create () in
  let boxed = Page_table_ref.create () in
  let script =
    [
      (0, 3, 0b10111);    (* map vp3 rw accessed *)
      (0, 7, 0b00101);    (* map vp7 rx *)
      (3, 3, 1);          (* set_ad write *)
      (4, 3, 0);          (* clear_accessed *)
      (2, 7, 0);          (* set_present off *)
      (6, 9, 3);          (* set_perms on unmapped: Not_found both *)
      (7, 9, 12);         (* set_frame on unmapped: Not_found both *)
      (0, 3, 0b00010);    (* remap vp3 w-only, A/D cleared *)
      (5, 3, 0);          (* clear_dirty *)
      (1, 7, 0);          (* unmap vp7 *)
      (1, 7, 0);          (* double unmap is a no-op *)
      (6, 3, 7);          (* set_perms rwx *)
      (7, 3, 77);         (* set_frame *)
    ]
  in
  List.iteri
    (fun i step ->
      pt_apply flat boxed step;
      checkb (Printf.sprintf "agree after op %d" i) true (pt_agree flat boxed))
    script

(* --- TLB: flat vs boxed reference ----------------------------------- *)

(* Tiny capacity so random sequences exercise FIFO eviction and the
   stale-queue-entry skipping constantly. *)
let tlb_capacity = 8
let tlb_domain = 16

let tlb_apply flat boxed (op, vp, bits) =
  let dirty = bits land 8 <> 0 in
  let perms = perms_of_bits bits in
  match op mod 4 with
  | 0 ->
    Tlb.fill ~dirty flat vp perms;
    Tlb_ref.fill ~dirty boxed vp perms
  | 1 ->
    Tlb.fill_bits ~dirty flat vp (bits land 7);
    Tlb_ref.fill_bits ~dirty boxed vp (bits land 7)
  | 2 ->
    Tlb.flush_page flat vp;
    Tlb_ref.flush_page boxed vp
  | _ ->
    Tlb.flush flat;
    Tlb_ref.flush boxed

let tlb_agree flat boxed =
  let ok = ref (Tlb.size flat = Tlb_ref.size boxed) in
  for vp = 0 to tlb_domain - 1 do
    List.iter
      (fun k -> ok := !ok && Tlb.hit flat vp k = Tlb_ref.hit boxed vp k)
      [ Types.Read; Types.Write; Types.Exec ]
  done;
  !ok

let tlb_property ops =
  let flat = Tlb.create ~capacity:tlb_capacity () in
  let boxed = Tlb_ref.create ~capacity:tlb_capacity () in
  List.for_all
    (fun (op, vp, bits) ->
      tlb_apply flat boxed (op, vp mod tlb_domain, bits);
      tlb_agree flat boxed)
    ops

(* The rule the security model leans on: a write through an entry
   filled without dirty tracking must re-walk (miss), on both
   implementations. *)
let test_tlb_dirty_fill_rule () =
  let flat = Tlb.create ~capacity:4 () in
  let boxed = Tlb_ref.create ~capacity:4 () in
  Tlb.fill ~dirty:false flat 1 Types.perms_rw;
  Tlb_ref.fill ~dirty:false boxed 1 Types.perms_rw;
  checkb "flat read hits" true (Tlb.hit flat 1 Types.Read);
  checkb "flat write re-walks" false (Tlb.hit flat 1 Types.Write);
  checkb "agree" true (tlb_agree flat boxed);
  Tlb.fill ~dirty:true flat 1 Types.perms_rw;
  Tlb_ref.fill ~dirty:true boxed 1 Types.perms_rw;
  checkb "flat write hits after dirty fill" true (Tlb.hit flat 1 Types.Write);
  checkb "agree after dirty fill" true (tlb_agree flat boxed)

(* Overfill past capacity, refresh one entry (leaving a stale queue
   slot), then flush a page: the eviction order bookkeeping of the two
   implementations must stay in lockstep. *)
let test_tlb_eviction_scripted () =
  let flat = Tlb.create ~capacity:tlb_capacity () in
  let boxed = Tlb_ref.create ~capacity:tlb_capacity () in
  for vp = 0 to tlb_capacity - 1 do
    tlb_apply flat boxed (0, vp, 0b1011)
  done;
  tlb_apply flat boxed (0, 2, 0b1111);     (* refresh: stale queue entry *)
  checkb "full" true (Tlb.size flat = tlb_capacity && tlb_agree flat boxed);
  for vp = tlb_capacity to tlb_capacity + 3 do
    tlb_apply flat boxed (0, vp, 0b1011);  (* forces evictions *)
    checkb "agree during eviction" true (tlb_agree flat boxed)
  done;
  tlb_apply flat boxed (2, 5, 0);          (* flush_page *)
  checkb "agree after flush_page" true (tlb_agree flat boxed);
  tlb_apply flat boxed (3, 0, 0);          (* full flush *)
  checkb "empty" true (Tlb.size flat = 0 && tlb_agree flat boxed)

(* --- Flat int map vs Hashtbl ---------------------------------------- *)

let flat_domain = 128

let flat_property ops =
  let flat = Flat.create ~size:8 () in    (* small: forces regrowth *)
  let oracle = Hashtbl.create 16 in
  List.for_all
    (fun (op, k, v) ->
      let k = k mod flat_domain and v = v land 0xFFFFF in
      (match op mod 5 with
      | 0 | 1 | 2 ->
        Flat.set flat k v;
        Hashtbl.replace oracle k v
      | 3 ->
        Flat.remove flat k;
        Hashtbl.remove oracle k
      | _ ->
        Flat.clear flat;
        Hashtbl.reset oracle);
      Flat.length flat = Hashtbl.length oracle
      && (let ok = ref true in
          for k = 0 to flat_domain - 1 do
            let expect =
              match Hashtbl.find_opt oracle k with
              | Some v -> v
              | None -> Flat.absent
            in
            ok :=
              !ok
              && Flat.find flat k = expect
              && Flat.mem flat k = Hashtbl.mem oracle k
              && Flat.find_default flat k (-7)
                 = (if expect = Flat.absent then -7 else expect)
          done;
          !ok)
      && Flat.fold (fun _ v acc -> acc + v) flat 0
         = Hashtbl.fold (fun _ v acc -> acc + v) oracle 0)
    ops

let test_flat_negative_key_rejected () =
  let flat = Flat.create () in
  checkb "set rejects negative" true
    (try Flat.set flat (-1) 0; false with Invalid_argument _ -> true)

(* --- QCheck registration -------------------------------------------- *)

let op_list ~ops ~arg_hi =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (triple (int_range 0 (ops - 1)) (int_range 0 255) (int_range 0 arg_hi)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make
        ~name:"page table agrees with boxed oracle on random ops" ~count:300
        (op_list ~ops:8 ~arg_hi:0xFFFF) pt_property;
      QCheck2.Test.make
        ~name:"tlb agrees with boxed oracle on random ops" ~count:300
        (op_list ~ops:4 ~arg_hi:15) tlb_property;
      QCheck2.Test.make
        ~name:"flat map agrees with Hashtbl on random ops" ~count:300
        (op_list ~ops:5 ~arg_hi:0xFFFFF) flat_property;
    ]

let suite =
  [
    ("packed PTE roundtrip, both encodings", `Quick, test_pack_roundtrip);
    ("page table scripted differential", `Quick, test_pt_scripted);
    ("tlb dirty-fill re-walk rule", `Quick, test_tlb_dirty_fill_rule);
    ("tlb eviction order differential", `Quick, test_tlb_eviction_scripted);
    ("flat map negative keys", `Quick, test_flat_negative_key_rejected);
  ]
  @ qcheck_cases
