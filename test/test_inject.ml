(* Tests for the Byzantine-OS fault-injection subsystem: the hardened
   runtime/pager error paths (every OS-triggerable fault must resolve
   into a modeled termination, a bounded retry, or a graceful
   degradation — never a raw simulator exception), and the campaign's
   detect-or-recover verdicts. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Expect a modeled termination whose reason mentions [sub]. *)
let expect_terminated ~sub f =
  match f () with
  | _ -> Alcotest.failf "expected Enclave_terminated mentioning %S" sub
  | exception Sgx.Types.Enclave_terminated { reason; _ } ->
    checkb
      (Printf.sprintf "reason %S mentions %S" reason sub)
      true
      (contains ~sub reason)

(* A self-paging system with a demand-paged data region beyond the EPC
   allowance (so its pages start as sealed blobs in the backing store). *)
let system_with_data ?(mech = `Sgx1) () =
  let sys =
    Harness.System.create ~mech ~epc_frames:256 ~epc_limit:128
      ~enclave_pages:512 ~self_paging:true ~budget:96 ()
  in
  let _prefix = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:64 in
  Harness.System.manage sys (List.init 64 (fun i -> b + i));
  let rt = Harness.System.runtime_exn sys in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  (sys, b)

(* --- satellite 1: a policy that fails to fetch is a modeled
   termination, not an Sgx_error escaping the trusted handler ---------- *)

let test_policy_no_fetch_terminates () =
  let sys, b = system_with_data () in
  let rt = Harness.System.runtime_exn sys in
  Autarky.Runtime.set_policy rt
    {
      Autarky.Runtime.pol_name = "broken";
      pol_on_miss = (fun _ _ -> ());  (* "handles" the miss without fetching *)
      pol_balloon = (fun _ -> 0);
    };
  let cpu = Harness.System.cpu sys in
  expect_terminated ~sub:"did not fetch" (fun () ->
      Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes));
  checkb "counted" true
    (Metrics.Counters.get (Harness.System.counters sys) "rt.policy_no_fetch" > 0)

(* --- satellite 2: the OS deleting a swap blob is a detected attack --- *)

let test_deleted_blob_detected_sgx1 () =
  let sys, b = system_with_data () in
  let swap = Sim_os.Kernel.swap (Harness.System.os sys) (Harness.System.proc sys) in
  checkb "data page starts swapped" true (Sim_os.Swap_store.mem swap b);
  Sim_os.Swap_store.delete swap b;
  let cpu = Harness.System.cpu sys in
  expect_terminated ~sub:"lost the blob" (fun () ->
      Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes));
  checkb "attack counted" true
    (Metrics.Counters.get (Harness.System.counters sys) "rt.attack_detected" > 0)

let test_deleted_blob_detected_sgx2 () =
  (* SGXv2 path: the runtime sealed the page itself; blob_load returning
     nothing for a sealed-out page must terminate, not zero-fill. *)
  let sys, b = system_with_data ~mech:`Sgx2 () in
  let cpu = Harness.System.cpu sys in
  let rt = Harness.System.runtime_exn sys in
  let pager = Autarky.Runtime.pager rt in
  Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes);  (* first touch: zero page *)
  Autarky.Pager.evict pager [ b ];  (* seal + store + remove *)
  let swap = Sim_os.Kernel.swap (Harness.System.os sys) (Harness.System.proc sys) in
  Sim_os.Swap_store.delete swap b;
  expect_terminated ~sub:"lost the runtime-sealed blob" (fun () ->
      Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes))

(* --- satellite 3: the sealer's error path through the kernel --------- *)

let flip_blob swap vp =
  match Sim_os.Swap_store.peek swap vp with
  | Some (Sim_os.Swap_store.V1 sw) ->
    let s = sw.Sgx.Instructions.sw_sealed in
    let ct = Bytes.copy s.Sim_crypto.Sealer.ciphertext in
    Bytes.set ct 0 (Char.chr (Char.code (Bytes.get ct 0) lxor 1));
    Sim_os.Swap_store.replace_raw swap vp
      (Sim_os.Swap_store.V1
         { sw with Sgx.Instructions.sw_sealed = { s with ciphertext = ct } })
  | _ -> Alcotest.fail "expected a V1 blob"

let test_bit_flip_detected () =
  let sys, b = system_with_data () in
  let swap = Sim_os.Kernel.swap (Harness.System.os sys) (Harness.System.proc sys) in
  flip_blob swap b;
  let cpu = Harness.System.cpu sys in
  expect_terminated ~sub:"MAC" (fun () ->
      Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes))

let test_stale_replay_detected () =
  let sys, b = system_with_data () in
  let rt = Harness.System.runtime_exn sys in
  let pager = Autarky.Runtime.pager rt in
  let swap = Sim_os.Kernel.swap (Harness.System.os sys) (Harness.System.proc sys) in
  (* Fetch the page, evict it (blob v1), stash v1, cycle it once more
     (blob v2 carries a fresh anti-replay nonce), then replay v1. *)
  Autarky.Pager.fetch pager [ b ];
  Autarky.Pager.evict pager [ b ];
  let stale =
    match Sim_os.Swap_store.peek swap b with
    | Some blob -> blob
    | None -> Alcotest.fail "no blob after eviction"
  in
  Autarky.Pager.fetch pager [ b ];
  Autarky.Pager.evict pager [ b ];
  Sim_os.Swap_store.replace_raw swap b stale;
  expect_terminated ~sub:"stale" (fun () -> Autarky.Pager.fetch pager [ b ])

(* --- transient EPC-exhaustion bursts are recovered by retry ---------- *)

let test_epc_burst_recovered () =
  let inj =
    Inject.Injector.create ~seed:7L ~scenario:Inject.Fault.Epc_burst ~rate:1.0 ()
  in
  let sys =
    Harness.System.create
      ~wrap_os:(Inject.Injector.wrap_os inj)
      ~epc_frames:256 ~epc_limit:128 ~enclave_pages:512 ~self_paging:true
      ~budget:96 ()
  in
  let _prefix = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:64 in
  Harness.System.manage sys (List.init 64 (fun i -> b + i));
  let rt = Harness.System.runtime_exn sys in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  Inject.Injector.attach inj ~sys ~targets:(List.init 64 (fun i -> b + i));
  Inject.Injector.tick inj;  (* rate 1.0: arms a burst of 1..4 refusals *)
  checki "one injection" 1 (Inject.Injector.injected inj);
  let cpu = Harness.System.cpu sys in
  Sgx.Cpu.read cpu (b * Sgx.Types.page_bytes);  (* must recover via retry *)
  checkb "page resident after retries" true
    (Autarky.Pager.resident (Autarky.Runtime.pager rt) b);
  checkb "retries counted" true
    (Metrics.Counters.get (Harness.System.counters sys) "rt.fetch_retries" > 0)

(* --- sustained pressure degrades the ORAM cache ---------------------- *)

let test_oram_shrink_degrades () =
  let sys =
    Harness.System.create ~epc_frames:256 ~epc_limit:128 ~enclave_pages:512
      ~self_paging:true ~budget:96 ()
  in
  let rt = Harness.System.runtime_exn sys in
  let data_base = Harness.System.reserve sys ~pages:32 in
  let cache_base = Harness.System.reserve sys ~pages:16 in
  let oram =
    Oram.Path_oram.create
      ~clock:(Harness.System.clock sys)
      ~rng:(Metrics.Rng.create ~seed:5L) ~n_blocks:32 ()
  in
  let cache =
    Autarky.Oram_cache.create
      ~machine:(Harness.System.machine sys)
      ~enclave:(Harness.System.enclave sys)
      ~touch:(fun a k -> Sgx.Cpu.access (Harness.System.cpu sys) a k)
      ~oram ~data_base_vpage:data_base ~n_pages:32
      ~cache_base_vpage:cache_base ~capacity_pages:16 ()
  in
  Harness.System.pin sys (List.init 16 (fun i -> cache_base + i));
  let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
  Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol);
  let os = Harness.System.os sys and proc = Harness.System.proc sys in
  (* First upcall: refused (everything is sensitive). *)
  checki "first balloon refused" 0
    (Sim_os.Kernel.request_balloon os proc ~pages:8);
  checki "cache intact" 16 (Autarky.Oram_cache.live_capacity cache);
  (* Sustained pressure: the cache shrinks and the freed pages are
     released to the OS. *)
  let released = Sim_os.Kernel.request_balloon os proc ~pages:8 in
  checkb "second balloon releases" true (released > 0);
  checkb "cache shrank" true (Autarky.Oram_cache.live_capacity cache < 16);
  checkb "degradation counted" true
    (Metrics.Counters.get (Harness.System.counters sys) "rt.policy_degraded" > 0);
  (* The cache still works at reduced capacity. *)
  Autarky.Oram_cache.write_stamp cache (data_base * Sgx.Types.page_bytes) 41;
  checki "cache still serves" 41
    (Autarky.Oram_cache.read_stamp cache (data_base * Sgx.Types.page_bytes))

(* --- satellite 4: termination storm exhausts the restart budget ------ *)

let test_restart_monitor_storm () =
  let s =
    Inject.Campaign.run ~seeds:[ 1; 2; 3; 4 ] ~ops:80
      ~scenarios:[ Inject.Fault.Reentry ]
      ~policies:[ Inject.Campaign.Rate_limit ] ~max_restarts:2 ()
  in
  checkb "all runs safe" true (s.Inject.Campaign.ok);
  let detected =
    List.filter
      (fun (r : Inject.Campaign.run_result) ->
        match r.r_outcome with Inject.Fault.Detected _ -> true | _ -> false)
      s.Inject.Campaign.runs
  in
  checkb "storm produced detections beyond the budget" true
    (List.length detected > 2);
  (match s.Inject.Campaign.monitor with
  | [ m ] ->
    checkb "monitor refuses further restarts" true m.Inject.Campaign.m_refused;
    checkb "leakage bound within the detected-run count" true
      (m.Inject.Campaign.m_leaked <= float_of_int (List.length detected))
  | _ -> Alcotest.fail "expected one monitor row")

(* --- a small campaign end to end ------------------------------------- *)

let test_small_campaign_verdicts () =
  let s =
    Inject.Campaign.run ~seeds:[ 1; 2 ] ~ops:60
      ~scenarios:
        [ Inject.Fault.Bit_flip; Inject.Fault.Drop_blob; Inject.Fault.Epc_burst;
          Inject.Fault.Balloon_storm ]
      ~policies:[ Inject.Campaign.Rate_limit; Inject.Campaign.Clusters ]
      ~verify_determinism:true ()
  in
  checki "no unsafe outcome" 0 s.Inject.Campaign.unsafe;
  checki "deterministic" 0 s.Inject.Campaign.nondeterministic;
  checkb "campaign ok" true s.Inject.Campaign.ok;
  checki "every cell ran" 16 (List.length s.Inject.Campaign.runs);
  (* Blob tampering under these policies must surface as detections. *)
  checkb "tampering detected somewhere" true
    (List.exists
       (fun (r : Inject.Campaign.run_result) ->
         match (r.r_scenario, r.r_outcome) with
         | (Inject.Fault.Bit_flip | Inject.Fault.Drop_blob),
           Inject.Fault.Detected _ -> true
         | _ -> false)
       s.Inject.Campaign.runs);
  (* Balloon storms must surface as graceful degradation. *)
  checkb "sustained pressure degrades" true
    (List.exists
       (fun (r : Inject.Campaign.run_result) ->
         r.r_scenario = Inject.Fault.Balloon_storm
         && r.r_outcome = Inject.Fault.Degraded)
       s.Inject.Campaign.runs)

let suite =
  [
    Alcotest.test_case "policy no-fetch is modeled termination" `Quick
      test_policy_no_fetch_terminates;
    Alcotest.test_case "deleted swap blob detected (SGXv1)" `Quick
      test_deleted_blob_detected_sgx1;
    Alcotest.test_case "deleted sealed blob detected (SGXv2)" `Quick
      test_deleted_blob_detected_sgx2;
    Alcotest.test_case "bit-flipped blob fails MAC and terminates" `Quick
      test_bit_flip_detected;
    Alcotest.test_case "stale blob replay detected" `Quick
      test_stale_replay_detected;
    Alcotest.test_case "EPC burst recovered by bounded retry" `Quick
      test_epc_burst_recovered;
    Alcotest.test_case "sustained pressure shrinks ORAM cache" `Quick
      test_oram_shrink_degrades;
    Alcotest.test_case "restart monitor refuses under termination storm" `Quick
      test_restart_monitor_storm;
    Alcotest.test_case "small campaign: all verdicts safe and deterministic"
      `Quick test_small_campaign_verdicts;
  ]
