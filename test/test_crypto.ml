(* Tests for the crypto substrate: ChaCha20, SipHash, the page sealer
   (confidentiality / integrity / anti-replay), and the oblivious
   primitives. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- ChaCha20 --------------------------------------------------------- *)

let test_chacha_selftest () =
  checkb "RFC 8439 vector" true (Sim_crypto.Chacha20.selftest ())

let key = Sim_crypto.Chacha20.key_of_string "test-key"
let nonce = Bytes.make 12 'n'

let test_chacha_roundtrip () =
  let plaintext = Bytes.of_string "attack at dawn, page 0x1000, version 42" in
  let ct = Sim_crypto.Chacha20.xor_stream ~key ~nonce plaintext in
  checkb "ciphertext differs" false (Bytes.equal ct plaintext);
  let pt = Sim_crypto.Chacha20.xor_stream ~key ~nonce ct in
  checkb "roundtrip" true (Bytes.equal pt plaintext)

let test_chacha_multiblock () =
  let plaintext = Bytes.init 1000 (fun i -> Char.chr (i land 0xFF)) in
  let ct = Sim_crypto.Chacha20.xor_stream ~key ~nonce plaintext in
  let pt = Sim_crypto.Chacha20.xor_stream ~key ~nonce ct in
  checkb "1000-byte roundtrip" true (Bytes.equal pt plaintext)

let test_chacha_nonce_sensitivity () =
  let plaintext = Bytes.make 64 'x' in
  let n2 = Bytes.make 12 'm' in
  let c1 = Sim_crypto.Chacha20.xor_stream ~key ~nonce plaintext in
  let c2 = Sim_crypto.Chacha20.xor_stream ~key ~nonce:n2 plaintext in
  checkb "different nonce, different stream" false (Bytes.equal c1 c2)

let test_chacha_counter_continuation () =
  (* Encrypting with counter=1 equals skipping the first block. *)
  let plaintext = Bytes.make 128 'p' in
  let whole = Sim_crypto.Chacha20.xor_stream ~key ~counter:0l ~nonce plaintext in
  let tail =
    Sim_crypto.Chacha20.xor_stream ~key ~counter:1l ~nonce (Bytes.sub plaintext 64 64)
  in
  checkb "counter continuation" true (Bytes.equal (Bytes.sub whole 64 64) tail)

let test_chacha_key_validation () =
  Alcotest.check_raises "short key rejected"
    (Invalid_argument "Chacha20.block: key must be 32 bytes") (fun () ->
      ignore (Sim_crypto.Chacha20.block ~key:(Bytes.make 16 'k') ~counter:0l ~nonce))

let hex_to_bytes s =
  let s = String.concat "" (String.split_on_char ' ' s) in
  let s = String.concat "" (String.split_on_char '\n' s) in
  Bytes.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let test_chacha_rfc8439_encryption () =
  (* RFC 8439 §2.4.2: full ChaCha20 encryption test vector. *)
  let key = Bytes.init 32 Char.chr in
  let nonce = hex_to_bytes "000000000000004a00000000" in
  let plaintext =
    Bytes.of_string
      "Ladies and Gentlemen of the class of '99: If I could offer you only \
       one tip for the future, sunscreen would be it."
  in
  let expected =
    hex_to_bytes
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
       f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
       07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
       5af90bbf74a35be6b40b8eedf2785e42874d"
  in
  let ct = Sim_crypto.Chacha20.xor_stream ~key ~counter:1l ~nonce plaintext in
  checkb "RFC 8439 §2.4.2 ciphertext" true (Bytes.equal ct expected)

let test_chacha_matches_reference () =
  (* Differential: the unboxed implementation is bit-identical to the
     boxed reference at every length straddling the block boundaries. *)
  let rng = Random.State.make [| 0x5eed |] in
  let k = Bytes.init 32 (fun _ -> Char.chr (Random.State.int rng 256)) in
  for len = 0 to 200 do
    let pt = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    let a = Sim_crypto.Chacha20.xor_stream ~key:k ~counter:7l ~nonce pt in
    let b = Sim_crypto.Chacha20_ref.xor_stream ~key:k ~counter:7l ~nonce pt in
    checkb (Printf.sprintf "xor_stream len %d" len) true (Bytes.equal a b)
  done;
  let blk_a = Sim_crypto.Chacha20.block ~key:k ~counter:0xFFFFFFFFl ~nonce in
  let blk_b = Sim_crypto.Chacha20_ref.block ~key:k ~counter:0xFFFFFFFFl ~nonce in
  checkb "block at counter 2^32-1" true (Bytes.equal blk_a blk_b)

(* --- SipHash ---------------------------------------------------------- *)

let test_siphash_selftest () =
  checkb "reference vectors" true (Sim_crypto.Siphash.selftest ())

let test_siphash_keyed () =
  let k1 = Sim_crypto.Siphash.key_of_bytes (Bytes.make 16 'a') in
  let k2 = Sim_crypto.Siphash.key_of_bytes (Bytes.make 16 'b') in
  let msg = Bytes.of_string "hello" in
  checkb "key matters" false
    (Sim_crypto.Siphash.hash k1 msg = Sim_crypto.Siphash.hash k2 msg)

let test_siphash_message_sensitivity () =
  let k = Sim_crypto.Siphash.key_of_bytes (Bytes.make 16 'k') in
  let h1 = Sim_crypto.Siphash.hash_string k "message one" in
  let h2 = Sim_crypto.Siphash.hash_string k "message two" in
  checkb "message matters" false (h1 = h2)

let test_siphash_lengths () =
  (* Hashing must be well-defined at every residue mod 8. *)
  let k = Sim_crypto.Siphash.key_of_bytes (Bytes.init 16 Char.chr) in
  let seen = Hashtbl.create 64 in
  for len = 0 to 32 do
    let h = Sim_crypto.Siphash.hash k (Bytes.make len 'z') in
    checkb "no collision across lengths" false (Hashtbl.mem seen h);
    Hashtbl.replace seen h ()
  done

let test_siphash_reference_vectors () =
  (* SipHash-2-4 vectors from the reference implementation's test
     program: key = 00..0f, message = 00 01 .. (len-1). *)
  let k = Sim_crypto.Siphash.key_of_bytes (Bytes.init 16 Char.chr) in
  let vectors =
    [
      (0, 0x726fdb47dd0e0e31L);
      (1, 0x74f839c593dc67fdL);
      (2, 0x0d6c8009d9a94f5aL);
      (3, 0x85676696d7fb7e2dL);
      (4, 0xcf2794e0277187b7L);
      (5, 0x18765564cd99a68dL);
      (6, 0xcbc9466e58fee3ceL);
      (7, 0xab0200f58b01d137L);
      (8, 0x93f5f5799a932462L);
      (* The worked example from the SipHash paper (15-byte message). *)
      (15, 0xa129ca6149be45e5L);
    ]
  in
  List.iter
    (fun (len, expected) ->
      let msg = Bytes.init len Char.chr in
      Alcotest.(check int64)
        (Printf.sprintf "vector len %d" len)
        expected
        (Sim_crypto.Siphash.hash k msg))
    vectors

let test_siphash_matches_reference () =
  (* Differential: unboxed halves vs boxed Int64 reference at every
     residue mod 8 and on random keys/data. *)
  let rng = Random.State.make [| 0xcafe |] in
  for _ = 1 to 50 do
    let kb = Bytes.init 16 (fun _ -> Char.chr (Random.State.int rng 256)) in
    let k = Sim_crypto.Siphash.key_of_bytes kb in
    let k_ref = Sim_crypto.Siphash_ref.key_of_bytes kb in
    let len = Random.State.int rng 64 in
    let msg = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    Alcotest.(check int64)
      (Printf.sprintf "hash len %d" len)
      (Sim_crypto.Siphash_ref.hash k_ref msg)
      (Sim_crypto.Siphash.hash k msg)
  done

(* --- Sealer ----------------------------------------------------------- *)

let sealer = Sim_crypto.Sealer.create ~master_key:"unit-test"

let test_sealer_roundtrip () =
  let page = Bytes.of_string (String.init 64 (fun i -> Char.chr (i + 32))) in
  let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:0x1000L ~version:1L page in
  checkb "ciphertext differs" false (Bytes.equal sealed.ciphertext page);
  match Sim_crypto.Sealer.unseal sealer ~vaddr:0x1000L ~expected_version:1L sealed with
  | Ok pt -> checkb "roundtrip" true (Bytes.equal pt page)
  | Error _ -> Alcotest.fail "unseal failed"

let test_sealer_detects_tamper () =
  let page = Bytes.make 64 'd' in
  let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:0x2000L ~version:3L page in
  let flipped = Bytes.copy sealed.ciphertext in
  Bytes.set flipped 10 (Char.chr (Char.code (Bytes.get flipped 10) lxor 1));
  let tampered = { sealed with Sim_crypto.Sealer.ciphertext = flipped } in
  match Sim_crypto.Sealer.unseal sealer ~vaddr:0x2000L ~expected_version:3L tampered with
  | Error Sim_crypto.Sealer.Mac_mismatch -> ()
  | Ok _ -> Alcotest.fail "tampered page accepted"
  | Error Sim_crypto.Sealer.Replayed -> Alcotest.fail "wrong error"

let test_sealer_detects_replay () =
  let v1 = Sim_crypto.Sealer.seal sealer ~vaddr:0x3000L ~version:1L (Bytes.make 64 'a') in
  let _v2 = Sim_crypto.Sealer.seal sealer ~vaddr:0x3000L ~version:2L (Bytes.make 64 'b') in
  (* OS replays the old sealed page when version 2 is expected. *)
  match Sim_crypto.Sealer.unseal sealer ~vaddr:0x3000L ~expected_version:2L v1 with
  | Error Sim_crypto.Sealer.Replayed -> ()
  | Ok _ -> Alcotest.fail "replayed page accepted"
  | Error Sim_crypto.Sealer.Mac_mismatch -> Alcotest.fail "wrong error"

let test_sealer_detects_relocation () =
  (* OS presents a blob sealed for a different address. *)
  let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:0x4000L ~version:1L (Bytes.make 64 'r') in
  match Sim_crypto.Sealer.unseal sealer ~vaddr:0x5000L ~expected_version:1L sealed with
  | Error Sim_crypto.Sealer.Mac_mismatch -> ()
  | Ok _ -> Alcotest.fail "relocated page accepted"
  | Error _ -> Alcotest.fail "wrong error"

let test_sealer_key_separation () =
  let other = Sim_crypto.Sealer.create ~master_key:"other" in
  let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:0x6000L ~version:1L (Bytes.make 64 'k') in
  match Sim_crypto.Sealer.unseal other ~vaddr:0x6000L ~expected_version:1L sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-key unseal succeeded"

let test_sealer_matches_reference () =
  (* Interop: same master key, same inputs — the reference sealer and
     the optimized sealer must produce identical blobs, and each must
     unseal what the other sealed. *)
  let ref_sealer = Sim_crypto.Sealer_ref.create ~master_key:"unit-test" in
  let page = Bytes.init 256 (fun i -> Char.chr ((i * 31) land 0xFF)) in
  let a = Sim_crypto.Sealer.seal sealer ~vaddr:0x8000L ~version:5L page in
  let b = Sim_crypto.Sealer_ref.seal ref_sealer ~vaddr:0x8000L ~version:5L page in
  checkb "identical ciphertext" true (Bytes.equal a.ciphertext b.ciphertext);
  Alcotest.(check int64) "identical MAC" b.mac a.mac;
  (match Sim_crypto.Sealer.unseal sealer ~vaddr:0x8000L ~expected_version:5L b with
  | Ok pt -> checkb "new unseals ref blob" true (Bytes.equal pt page)
  | Error _ -> Alcotest.fail "new sealer rejected reference blob");
  match
    Sim_crypto.Sealer_ref.unseal ref_sealer ~vaddr:0x8000L ~expected_version:5L a
  with
  | Ok pt -> checkb "ref unseals new blob" true (Bytes.equal pt page)
  | Error _ -> Alcotest.fail "reference sealer rejected new blob"

let test_sealer_batch_matches_single () =
  (* Batch seal/unseal round-trips and matches page-at-a-time sealing
     bit for bit. *)
  let items =
    List.init 8 (fun i ->
        ( Int64.of_int (0x9000 + (i * 0x1000)),
          Int64.of_int (100 + i),
          Bytes.init (64 + (8 * i)) (fun j -> Char.chr ((i + j) land 0xFF)) ))
  in
  let batch = Sim_crypto.Sealer.seal_batch sealer items in
  List.iter2
    (fun (vaddr, version, pt) (s : Sim_crypto.Sealer.sealed) ->
      let single = Sim_crypto.Sealer.seal sealer ~vaddr ~version pt in
      checkb "batch ciphertext = single" true
        (Bytes.equal s.ciphertext single.ciphertext);
      Alcotest.(check int64) "batch MAC = single" single.mac s.mac)
    items batch;
  let to_unseal =
    List.map2 (fun (vaddr, version, _) s -> (vaddr, version, s)) items batch
  in
  (match Sim_crypto.Sealer.unseal_batch sealer to_unseal with
  | Ok pts ->
    List.iter2
      (fun (_, _, pt) recovered -> checkb "batch roundtrip" true (Bytes.equal pt recovered))
      items pts
  | Error _ -> Alcotest.fail "unseal_batch failed on honest blobs");
  (* A tampered blob in the middle is pinpointed by vaddr. *)
  let tampered =
    List.mapi
      (fun i ((vaddr, version, s) : int64 * int64 * Sim_crypto.Sealer.sealed) ->
        if i = 3 then
          let ct = Bytes.copy s.ciphertext in
          Bytes.set ct 0 (Char.chr (Char.code (Bytes.get ct 0) lxor 1));
          (vaddr, version, { s with ciphertext = ct })
        else (vaddr, version, s))
      to_unseal
  in
  match Sim_crypto.Sealer.unseal_batch sealer tampered with
  | Ok _ -> Alcotest.fail "tampered batch accepted"
  | Error (vaddr, Sim_crypto.Sealer.Mac_mismatch) ->
    Alcotest.(check int64) "failing vaddr" 0xC000L vaddr
  | Error (_, Sim_crypto.Sealer.Replayed) -> Alcotest.fail "wrong error"

(* --- Oblivious primitives --------------------------------------------- *)

let test_oblivious_select () =
  checki "true branch" 7 (Sim_crypto.Oblivious.select true 7 9);
  checki "false branch" 9 (Sim_crypto.Oblivious.select false 7 9);
  Alcotest.(check int64) "select64 true" 5L (Sim_crypto.Oblivious.select64 true 5L 6L);
  Alcotest.(check int64) "select64 false" 6L (Sim_crypto.Oblivious.select64 false 5L 6L)

let test_oblivious_scan_read () =
  let arr = [| 10; 20; 30; 40 |] in
  checki "scan read" 30 (Sim_crypto.Oblivious.scan_read arr 2);
  Alcotest.check_raises "bounds" (Invalid_argument "Oblivious.scan_read")
    (fun () -> ignore (Sim_crypto.Oblivious.scan_read arr 4))

let test_oblivious_scan_write () =
  let arr = [| 1; 2; 3 |] in
  Sim_crypto.Oblivious.scan_write arr 1 99;
  checkb "written" true (arr = [| 1; 99; 3 |])

let test_oblivious_scan_cost () =
  let m = Metrics.Cost_model.default in
  let c = Sim_crypto.Oblivious.scan_cost m ~entries:100 ~entry_bytes:8 in
  checki "linear in bytes" (int_of_float (m.oblivious_scan_cpb *. 800.0)) c

(* --- QCheck properties ------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"chacha roundtrip on random data" ~count:100
        QCheck2.Gen.(string_size (int_range 0 300))
        (fun s ->
          let pt = Bytes.of_string s in
          let ct = Sim_crypto.Chacha20.xor_stream ~key ~nonce pt in
          Bytes.equal (Sim_crypto.Chacha20.xor_stream ~key ~nonce ct) pt);
      QCheck2.Test.make ~name:"sealer roundtrip on random pages" ~count:100
        QCheck2.Gen.(pair (string_size (int_range 1 200)) (int_range 0 1_000_000))
        (fun (s, v) ->
          let page = Bytes.of_string s in
          let version = Int64.of_int v in
          let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:0x7000L ~version page in
          match
            Sim_crypto.Sealer.unseal sealer ~vaddr:0x7000L ~expected_version:version
              sealed
          with
          | Ok pt -> Bytes.equal pt page
          | Error _ -> false);
      QCheck2.Test.make ~name:"oblivious select equals if-then-else" ~count:500
        QCheck2.Gen.(triple bool int int)
        (fun (c, a, b) -> Sim_crypto.Oblivious.select c a b = if c then a else b);
      QCheck2.Test.make ~name:"scan_read equals direct indexing" ~count:300
        QCheck2.Gen.(list_size (int_range 1 50) int)
        (fun xs ->
          let arr = Array.of_list xs in
          let i = Array.length arr / 2 in
          Sim_crypto.Oblivious.scan_read arr i = arr.(i));
    ]

let suite =
  [
    ("chacha selftest", `Quick, test_chacha_selftest);
    ("chacha roundtrip", `Quick, test_chacha_roundtrip);
    ("chacha multiblock", `Quick, test_chacha_multiblock);
    ("chacha nonce sensitivity", `Quick, test_chacha_nonce_sensitivity);
    ("chacha counter continuation", `Quick, test_chacha_counter_continuation);
    ("chacha key validation", `Quick, test_chacha_key_validation);
    ("chacha RFC 8439 encryption vector", `Quick, test_chacha_rfc8439_encryption);
    ("chacha matches reference", `Quick, test_chacha_matches_reference);
    ("siphash selftest", `Quick, test_siphash_selftest);
    ("siphash reference vectors", `Quick, test_siphash_reference_vectors);
    ("siphash matches reference", `Quick, test_siphash_matches_reference);
    ("siphash keyed", `Quick, test_siphash_keyed);
    ("siphash message sensitivity", `Quick, test_siphash_message_sensitivity);
    ("siphash all lengths", `Quick, test_siphash_lengths);
    ("sealer roundtrip", `Quick, test_sealer_roundtrip);
    ("sealer detects tamper", `Quick, test_sealer_detects_tamper);
    ("sealer detects replay", `Quick, test_sealer_detects_replay);
    ("sealer detects relocation", `Quick, test_sealer_detects_relocation);
    ("sealer key separation", `Quick, test_sealer_key_separation);
    ("sealer matches reference", `Quick, test_sealer_matches_reference);
    ("sealer batch matches single", `Quick, test_sealer_batch_matches_single);
    ("oblivious select", `Quick, test_oblivious_select);
    ("oblivious scan read", `Quick, test_oblivious_scan_read);
    ("oblivious scan write", `Quick, test_oblivious_scan_write);
    ("oblivious scan cost", `Quick, test_oblivious_scan_cost);
  ]
  @ qcheck_cases
