(* The snapshot subsystem: explicit codecs for the flat hot-path
   structures (QCheck round-trips against the boxed oracles, tombstone
   and rehash states included), the sealed image container (tamper,
   forgery, rollback), and whole-world capture/resume equivalence for
   the longrun, inject and serve drivers.

   The determinism contract under test everywhere: run to N, capture,
   restore, continue == straight-through run — same trace digest, same
   counters, same cycles, bit for bit. *)

open Sgx
module Codec = Snapshot.Codec
module Image = Snapshot.Image
module World = Snapshot.World
module Longrun = Snapshot.Longrun

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let temp_path suffix =
  let f = Filename.temp_file "autarky_snap" suffix in
  f

let perms_of_bits b =
  Types.{ r = b land 1 <> 0; w = b land 2 <> 0; x = b land 4 <> 0 }

let kind_of i =
  match i mod 3 with 0 -> Types.Read | 1 -> Types.Write | _ -> Types.Exec

(* --- codec round-trips ------------------------------------------------- *)

(* Encode -> decode and demand *structural* identity of the raw state:
   slot positions, tombstones, generation counters, ring contents.
   Observational equivalence is not enough — a restored table with the
   live entries re-inserted would answer every query correctly yet
   diverge from the straight-through run at the next rehash/eviction,
   which the golden trace digests would catch much later and much less
   legibly. *)

let flat_roundtrip t =
  let b = Buffer.create 256 in
  Codec.write_flat b t;
  Codec.read_flat (Codec.R.of_string (Buffer.contents b))

let flat_domain = 96

(* ops1 builds arbitrary state (removals leave tombstones; enough
   inserts force rehits of the rehash path); the round-tripped copy
   then runs ops2 in lockstep with a Hashtbl oracle. *)
let flat_property (ops1, ops2) =
  let flat = Flat.create ~size:8 () in
  let oracle = Hashtbl.create 16 in
  let apply t (op, k, v) =
    match op mod 3 with
    | 0 | 1 ->
      Flat.set t k v;
      Hashtbl.replace oracle k v
    | _ ->
      Flat.remove t k;
      Hashtbl.remove oracle k
  in
  List.iter (apply flat) ops1;
  let copy = flat_roundtrip flat in
  Flat.export_state copy = Flat.export_state flat
  && List.for_all
       (fun op ->
         apply copy op;
         Flat.length copy = Hashtbl.length oracle
         &&
         let ok = ref true in
         for k = 0 to flat_domain - 1 do
           let expect =
             match Hashtbl.find_opt oracle k with
             | Some v -> v
             | None -> Flat.absent
           in
           ok := !ok && Flat.find copy k = expect
         done;
         !ok)
       ops2

let tlb_roundtrip t =
  let b = Buffer.create 256 in
  Codec.write_tlb b t;
  Codec.read_tlb (Codec.R.of_string (Buffer.contents b))

(* Small capacity so ops1 reliably reaches evictions and stale ring
   entries; after the round-trip, the copy and a Tlb_ref oracle (driven
   with the full sequence) must agree on every hit decision. *)
let tlb_property (ops1, ops2) =
  let tlb = Tlb.create ~capacity:8 () in
  let oracle = Tlb_ref.create ~capacity:8 () in
  let apply t (op, vp, arg) =
    match op mod 5 with
    | 0 | 1 ->
      let dirty = arg land 8 <> 0 in
      Tlb.fill ~dirty t vp (perms_of_bits arg);
      Tlb_ref.fill ~dirty oracle vp (perms_of_bits arg)
    | 2 -> checkb "hit agrees" (Tlb_ref.hit oracle vp (kind_of arg))
             (Tlb.hit t vp (kind_of arg))
    | 3 ->
      Tlb.flush_page t vp;
      Tlb_ref.flush_page oracle vp
    | _ ->
      Tlb.flush t;
      Tlb_ref.flush oracle
  in
  List.iter (apply tlb) ops1;
  let copy = tlb_roundtrip tlb in
  Tlb.export_state copy = Tlb.export_state tlb
  && List.for_all
       (fun op ->
         apply copy op;
         Tlb.size copy = Tlb_ref.size oracle)
       ops2

let pt_roundtrip t =
  let b = Buffer.create 256 in
  Codec.write_page_table b t;
  Codec.read_page_table (Codec.R.of_string (Buffer.contents b))

let pt_domain = 64

let pt_property (ops1, ops2) =
  let pt = Page_table.create () in
  let oracle = Page_table_ref.create () in
  let apply t (op, vp, arg) =
    match op mod 4 with
    | 0 | 1 ->
      let frame = arg land 0xFFFF and perms = perms_of_bits arg in
      let accessed = arg land 8 <> 0 and dirty = arg land 16 <> 0 in
      Page_table.map t ~vpage:vp ~frame ~perms ~accessed ~dirty ();
      Page_table_ref.map oracle ~vpage:vp ~frame ~perms ~accessed ~dirty ()
    | 2 ->
      Page_table.unmap t vp;
      Page_table_ref.unmap oracle vp
    | _ ->
      Page_table.set_ad t vp ~write:(arg land 1 = 1);
      Page_table_ref.set_ad oracle vp ~write:(arg land 1 = 1)
  in
  List.iter (apply pt) ops1;
  let copy = pt_roundtrip pt in
  Page_table.export_state copy = Page_table.export_state pt
  && List.for_all
       (fun op ->
         apply copy op;
         let ok = ref true in
         for vp = 0 to pt_domain - 1 do
           ok :=
             !ok
             && Page_table.find_packed copy vp
                = Page_table_ref.find_packed oracle vp
         done;
         !ok && Page_table.mapped_pages copy = Page_table_ref.mapped_pages oracle)
       ops2

let test_codec_tag_mismatch () =
  let b = Buffer.create 64 in
  Codec.write_flat b (Flat.create ());
  checkb "tlb reader rejects a flat encoding" true
    (try
       ignore (Codec.read_tlb (Codec.R.of_string (Buffer.contents b)));
       false
     with Invalid_argument _ -> true);
  checkb "short input raises Short" true
    (try
       ignore (Codec.R.u32 (Codec.R.of_string "ab"));
       false
     with Codec.Short -> true)

(* --- the sealed image container ----------------------------------------- *)

let seal_one ?(label = "test/label") ?(kind = "test") ?(cycle = 7L)
    ?(payload = Bytes.init 700 (fun i -> Char.chr (i mod 251))) store =
  let path = temp_path ".snap" in
  let counter = Image.save ~store ~kind ~label ~cycle payload ~path in
  (path, counter, payload)

let err_name = function
  | Image.Truncated -> "truncated"
  | Image.Bad_magic -> "bad-magic"
  | Image.Bad_format _ -> "bad-format"
  | Image.Tampered _ -> "tampered"
  | Image.Header_forged -> "header-forged"
  | Image.Stale _ -> "stale"
  | Image.Wrong_kind _ -> "wrong-kind"
  | Image.Incompatible_binary _ -> "incompatible-binary"
  | Image.Probe_mismatch _ -> "probe-mismatch"
  | Image.Unmarshal_failed _ -> "unmarshal-failed"
  | Image.Io_error _ -> "io-error"

let expect_err name = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" name
  | Error e -> checks "typed error" name (err_name e)

let test_image_roundtrip () =
  let store = Image.Store.in_memory () in
  let path, counter, payload = seal_one store in
  checkb "counter starts at 1" true (counter = 1L);
  match Image.load ~store ~expect_kind:"test" ~path () with
  | Error e -> Alcotest.failf "load failed: %s" (Image.error_to_string e)
  | Ok (h, got) ->
    checks "label" "test/label" h.Image.h_label;
    checkb "cycle" true (h.Image.h_cycle = 7L);
    checkb "payload survives" true (Bytes.equal payload got);
    Sys.remove path

let test_image_truncated () =
  let store = Image.Store.in_memory () in
  let path, _, _ = seal_one store in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let out = temp_path ".snap" in
  List.iter
    (fun keep ->
      Out_channel.with_open_bin out (fun oc ->
          Out_channel.output_string oc (String.sub raw 0 keep));
      expect_err "truncated" (Image.load ~store ~path:out ()))
    [ 13; 40; String.length raw / 2; String.length raw - 1 ];
  Sys.remove path;
  Sys.remove out

let test_image_bit_flip () =
  let store = Image.Store.in_memory () in
  let path, _, _ = seal_one store in
  let raw =
    Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
  in
  let out = temp_path ".snap" in
  (* Flip one bit in the middle of the sealed region (well past the
     plaintext header): the chunk MAC must catch it. *)
  let off = Bytes.length raw - 32 in
  Bytes.set raw off (Char.chr (Char.code (Bytes.get raw off) lxor 0x10));
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_bytes oc raw);
  expect_err "tampered" (Image.load ~store ~path:out ());
  Sys.remove path;
  Sys.remove out

let test_image_header_edits () =
  let store = Image.Store.in_memory () in
  let path, _, _ = seal_one store ~label:"forge/victim" in
  let raw =
    Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
  in
  (* The plaintext header begins after magic + u32 hlen; its first field
     is the kind string, then the label.  Flip a label byte: the outer
     header now disagrees with the MAC-protected sealed copy. *)
  let label_off =
    let probe = "forge/victim" in
    let raw_s = Bytes.to_string raw in
    let rec find i =
      if String.sub raw_s i (String.length probe) = probe then i
      else find (i + 1)
    in
    find 0
  in
  let forged = Bytes.copy raw in
  Bytes.set forged label_off 'F';
  let out = temp_path ".snap" in
  Out_channel.with_open_bin out (fun oc -> Out_channel.output_bytes oc forged);
  expect_err "header-forged" (Image.load ~store ~path:out ());
  (* Editing the counter field instead changes the key schedule of every
     chunk, so it dies earlier, at the MAC. *)
  let h =
    match Image.read_header ~path with Ok h -> h | Error _ -> assert false
  in
  ignore h;
  Sys.remove path;
  Sys.remove out

let test_image_rollback () =
  let store = Image.Store.in_memory () in
  let p1, c1, _ = seal_one store ~label:"roll/back" in
  let p2, c2, _ = seal_one store ~label:"roll/back" in
  checkb "counter monotonic" true (c2 = Int64.add c1 1L);
  (* The older image is intact — every MAC verifies — but the counter
     store has moved past it. *)
  expect_err "stale" (Image.load ~store ~path:p1 ());
  (match Image.load ~store ~path:p2 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fresh image rejected: %s" (Image.error_to_string e));
  (* Without a store there is no freshness reference: the old image
     loads (the CLI always passes a store; the API documents this). *)
  checkb "no store, no freshness" true
    (match Image.load ~path:p1 () with Ok _ -> true | Error _ -> false);
  Sys.remove p1;
  Sys.remove p2

let test_image_wrong_kind () =
  let store = Image.Store.in_memory () in
  let path, _, _ = seal_one store ~kind:"longrun" in
  expect_err "wrong-kind" (Image.load ~store ~expect_kind:"serve" ~path ());
  Sys.remove path

let test_image_not_a_snapshot () =
  let out = temp_path ".snap" in
  Out_channel.with_open_bin out (fun oc ->
      Out_channel.output_string oc "definitely not a sealed image, sorry");
  expect_err "bad-magic" (Image.load ~path:out ());
  expect_err "io-error" (Image.load ~path:(out ^ ".does-not-exist") ());
  Sys.remove out

let test_store_persistence () =
  let file = temp_path ".tsv" in
  Sys.remove file;
  let s1 = Image.Store.file file in
  ignore (Image.Store.next s1 "a/b");
  ignore (Image.Store.next s1 "a/b");
  ignore (Image.Store.next s1 "c d");
  (* A fresh handle re-reads the persisted counters. *)
  let s2 = Image.Store.file file in
  checkb "a/b at 2" true (Image.Store.latest s2 "a/b" = 2L);
  checkb "c d at 1" true (Image.Store.latest s2 "c d" = 1L);
  checkb "unseen at 0" true (Image.Store.latest s2 "nope" = 0L);
  checkb "bump continues" true (Image.Store.next s2 "a/b" = 3L);
  Sys.remove file

(* --- whole-world resume equivalence ------------------------------------- *)

let longrun_spec ops =
  {
    Longrun.sp_workload = "ycsb";
    sp_policy = "rate-limit";
    sp_mech = "sgx1";
    sp_seed = 11;
    sp_ops = ops;
  }

(* Straight-through vs capture-at-N + sealed restore + continue: the
   full Marshal + seal + probe path, in one process. *)
let test_longrun_resume_equivalence () =
  let ops = 8 in
  let straight =
    match Longrun.advance (Longrun.build (longrun_spec ops)) with
    | Ok o -> Longrun.outcome_line o
    | Error _ -> assert false
  in
  let dir = Filename.temp_file "autarky_snapdir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let store = Image.Store.in_memory () in
  let path =
    match
      Longrun.advance ~stop_at:3 ~store ~dir (Longrun.build (longrun_spec ops))
    with
    | Error path -> path
    | Ok _ -> Alcotest.fail "expected a pause"
  in
  let resumed =
    match Longrun.resume ~store ~path () with
    | Error e -> Alcotest.failf "resume failed: %s" (Image.error_to_string e)
    | Ok w -> (
      match Longrun.advance ~store ~dir w with
      | Ok o -> Longrun.outcome_line o
      | Error _ -> assert false)
  in
  checks "straight == sliced" straight resumed;
  Sys.remove path;
  Sys.rmdir dir

let test_longrun_probe_mismatch () =
  (* Seal one world but record the probe of a *different* machine: the
     restore-time probe recomputation must refuse the image. *)
  let w1 = Longrun.build (longrun_spec 6) in
  let w2 = Longrun.build { (longrun_spec 6) with Longrun.sp_seed = 12 } in
  ignore (Longrun.step w1);
  let store = Image.Store.in_memory () in
  let path = temp_path ".snap" in
  ignore
    (World.save ~store ~kind:"longrun" ~label:"probe/test"
       ~machine:(Longrun.machine w2) w1 ~path);
  (match
     World.load ~store ~kind:"longrun" ~machine_of:Longrun.machine ~path ()
   with
  | Error (Image.Probe_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Image.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Probe_mismatch");
  Sys.remove path

let test_inject_resume_equivalence () =
  let policy = Inject.Campaign.Rate_limit in
  let scenario = Some Inject.Fault.Bit_flip in
  let straight =
    Inject.Campaign.exec_run ~policy ~seed:1 ~ops:40 ~scenario
      ~cycle_cap:max_int
  in
  let c =
    Inject.Campaign.cell_build ~policy ~seed:1 ~ops:40 ~scenario
      ~cycle_cap:max_int
  in
  for _ = 1 to 10 do
    ignore (Inject.Campaign.cell_step c)
  done;
  (* Capture/restore through the payload layer alone (the sealed
     container is covered above): the restored cell must finish the
     remaining 30 operations onto an identical execution record. *)
  let c' : Inject.Campaign.cell =
    match World.of_payload (World.to_payload c) with
    | Ok c' -> c'
    | Error e -> Alcotest.failf "restore failed: %s" (Image.error_to_string e)
  in
  let resumed = Inject.Campaign.cell_drive c' in
  checks "digest" straight.Inject.Campaign.e_digest
    resumed.Inject.Campaign.e_digest;
  checkb "output" true
    (straight.Inject.Campaign.e_output = resumed.Inject.Campaign.e_output);
  checki "cycles" straight.Inject.Campaign.e_cycles
    resumed.Inject.Campaign.e_cycles;
  checki "injected" straight.Inject.Campaign.e_injected
    resumed.Inject.Campaign.e_injected;
  checkb "raw" true
    (straight.Inject.Campaign.e_raw = resumed.Inject.Campaign.e_raw)

let serve_scenario () = Serve.Driver.default_scenario ~quick:true

let serve_params seed =
  let p = Serve.Engine.default_params ~seed in
  { p with Serve.Engine.p_trace = true }

let serve_fingerprint (r : Serve.Engine.result) =
  Printf.sprintf "%d %s %s" r.Serve.Engine.r_end_cycle
    (Option.value r.Serve.Engine.r_digest ~default:"-")
    (World.counters_fingerprint (Sgx.Machine.counters r.Serve.Engine.r_machine))

let test_serve_resume_equivalence () =
  let straight =
    let st = Serve.Engine.start ~params:(serve_params 5) (serve_scenario ()) in
    while Serve.Engine.step st do () done;
    serve_fingerprint (Serve.Engine.finish st)
  in
  let st = Serve.Engine.start ~params:(serve_params 5) (serve_scenario ()) in
  for _ = 1 to 40 do
    ignore (Serve.Engine.step st)
  done;
  let st' : Serve.Engine.state =
    match World.of_payload (World.to_payload st) with
    | Ok st' -> st'
    | Error e -> Alcotest.failf "restore failed: %s" (Image.error_to_string e)
  in
  while Serve.Engine.step st' do () done;
  checks "straight == sliced" straight
    (serve_fingerprint (Serve.Engine.finish st'))

(* --- registration ------------------------------------------------------- *)

let two_op_lists ~ops ~arg_hi =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 150)
         (triple (int_range 0 (ops - 1)) (int_range 0 (flat_domain - 1))
            (int_range 0 arg_hi)))
      (list_size (int_range 1 60)
         (triple (int_range 0 (ops - 1)) (int_range 0 (flat_domain - 1))
            (int_range 0 arg_hi))))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make
        ~name:"flat codec round-trip preserves raw state and behaviour"
        ~count:200
        (two_op_lists ~ops:3 ~arg_hi:0xFFFF)
        flat_property;
      QCheck2.Test.make
        ~name:"tlb codec round-trip preserves raw state and behaviour"
        ~count:200
        (two_op_lists ~ops:5 ~arg_hi:15)
        tlb_property;
      QCheck2.Test.make
        ~name:"page-table codec round-trip preserves raw state and behaviour"
        ~count:200
        (two_op_lists ~ops:4 ~arg_hi:0xFFFF)
        pt_property;
    ]

let suite =
  [
    ("codec tag/short-input errors", `Quick, test_codec_tag_mismatch);
    ("image seals and loads back", `Quick, test_image_roundtrip);
    ("truncated image detected", `Quick, test_image_truncated);
    ("bit flip fails the MAC", `Quick, test_image_bit_flip);
    ("plaintext header edit detected", `Quick, test_image_header_edits);
    ("rollback rejected by the counter store", `Quick, test_image_rollback);
    ("wrong kind rejected", `Quick, test_image_wrong_kind);
    ("non-image inputs rejected", `Quick, test_image_not_a_snapshot);
    ("counter store persists across handles", `Quick, test_store_persistence);
    ("longrun: straight == capture/seal/resume", `Quick,
     test_longrun_resume_equivalence);
    ("probe mismatch refuses the image", `Quick, test_longrun_probe_mismatch);
    ("inject cell: straight == capture/resume", `Quick,
     test_inject_resume_equivalence);
    ("serve fleet: straight == capture/resume", `Quick,
     test_serve_resume_equivalence);
  ]
  @ qcheck_cases
