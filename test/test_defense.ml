(* Tests for the adaptive-defense subsystem: live policy switching on a
   tenant (working-set preservation, the no-switch-mid-request
   invariant, Heisenberg's capacity refusal), the escalation controller
   against the serving engine, and the SLO-under-attack harness's
   canonical-matrix determinism. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- standalone tenant ------------------------------------------------- *)

(* One tenant on its own machine, driven directly (no engine), mirroring
   the engine's boot sequence. *)
let mk_tenant ?(policy = Serve.Tenant.Rate_limit) ?(heap_pages = 96)
    ?(epc_limit = 192) () =
  let partition = 256 in
  let machine = Sgx.Machine.create ~epc_frames:(partition + 64) () in
  let hv = Hypervisor.Vmm.create machine in
  let vm = Hypervisor.Vmm.create_vm hv ~name:"t0" ~epc_frames:partition in
  let cfg =
    {
      Serve.Tenant.name = "t0";
      workload = Serve.Tenant.Uthash;
      policy;
      partition_frames = partition;
      epc_limit;
      enclave_pages = 512;
      heap_pages;
      generator = Serve.Tenant.Open_loop { load = 0.5 };
      queue_capacity = 16;
      deadline = None;
      requests = 0;
      arrive_after = 0;
      depart_after = None;
    }
  in
  Serve.Tenant.create ~machine ~hv ~vm ~seed_base:4242 cfg

let serve_some tn n =
  for _ = 1 to n do
    Serve.Tenant.request tn ~key:(Serve.Tenant.next_key tn)
  done

let test_set_policy_preserves_working_set () =
  let tn = mk_tenant () in
  let sys = Serve.Tenant.sys tn in
  let machine = Harness.System.machine sys in
  let enclave = Harness.System.enclave sys in
  serve_some tn 6;
  (* Snapshot the ground-truth pages of one key while they are
     resident: their bytes must survive the full ladder round trip. *)
  let key = 3 in
  Serve.Tenant.request tn ~key;
  let pages = Serve.Tenant.probe_pages tn ~key in
  checkb "uthash offers a page oracle" true (pages <> []);
  let snapshot =
    List.filter_map
      (fun vpage ->
        Option.map
          (fun d -> (vpage, Sgx.Page_data.to_bytes d))
          (Sgx.Instructions.page_data machine enclave ~vpage))
      pages
  in
  checkb "some probe pages resident after serving" true (snapshot <> []);
  let expect_switch kind =
    let before = Serve.Tenant.policy_switches tn in
    Serve.Tenant.set_policy tn kind;
    checkb "policy updated" true (Serve.Tenant.active_policy tn = kind);
    checki "switch counted" (before + 1) (Serve.Tenant.policy_switches tn);
    serve_some tn 3
  in
  (* Walk every rung of the Heisenberg ladder live, serving through each
     switch, then come back down to the boot policy. *)
  expect_switch Serve.Tenant.Clusters;
  expect_switch Serve.Tenant.Preload;
  expect_switch Serve.Tenant.Oram;
  checkb "heap lives in the oblivious store under ORAM" true
    (Serve.Tenant.resident_heap_pages tn = []);
  expect_switch Serve.Tenant.Rate_limit;
  (* Refault the key's pages and compare bytes with the snapshot: the
     sealed handoff through ORAM and back must not lose or corrupt the
     working set. *)
  Serve.Tenant.request tn ~key;
  List.iter
    (fun (vpage, before) ->
      match Sgx.Instructions.page_data machine enclave ~vpage with
      | None -> Alcotest.failf "page 0x%x not resident after refault" vpage
      | Some d ->
        checkb
          (Printf.sprintf "page 0x%x bytes preserved" vpage)
          true
          (Bytes.equal before (Sgx.Page_data.to_bytes d)))
    snapshot;
  checki "four committed switches" 4 (Serve.Tenant.policy_switches tn)

let test_set_policy_mid_request_raises () =
  (* Balloon most of the working set away so the next requests must
     demand-fetch; an on_fetch hook firing inside a request is
     mid-request by construction. *)
  let tn = mk_tenant () in
  let os = Harness.System.os (Serve.Tenant.sys tn) in
  serve_some tn 4;
  let released =
    Sim_os.Kernel.request_balloon os (Serve.Tenant.proc tn) ~pages:60
  in
  checkb "balloon evicted part of the working set" true (released > 0);
  let hooks = Sim_os.Kernel.hooks os in
  let saved = hooks.Sim_os.Kernel.on_fetch in
  let fired = ref false in
  hooks.Sim_os.Kernel.on_fetch <-
    (fun _ _ ->
      fired := true;
      Serve.Tenant.set_policy tn Serve.Tenant.Clusters);
  let raised = ref false in
  (try
     for _ = 1 to 50 do
       if not !raised then
         try Serve.Tenant.request tn ~key:(Serve.Tenant.next_key tn)
         with Invalid_argument _ -> raised := true
     done
   with e ->
     hooks.Sim_os.Kernel.on_fetch <- saved;
     raise e);
  hooks.Sim_os.Kernel.on_fetch <- saved;
  checkb "a fetch fired mid-request" true !fired;
  checkb "mid-request switch rejected" true !raised;
  checkb "policy unchanged" true
    (Serve.Tenant.active_policy tn = Serve.Tenant.Rate_limit);
  checki "no switch committed" 0 (Serve.Tenant.policy_switches tn);
  (* The aborted request must not wedge the tenant. *)
  serve_some tn 3

let test_preload_refusal_rolls_back () =
  (* budget = epc_limit - 64 = 56 < 96 heap pages: Heisenberg's capacity
     condition refuses, and the previous policy must be reinstalled. *)
  let tn = mk_tenant ~epc_limit:120 () in
  serve_some tn 4;
  let refused =
    try
      Serve.Tenant.set_policy tn Serve.Tenant.Preload;
      false
    with Invalid_argument _ -> true
  in
  checkb "preload over budget refused" true refused;
  checkb "previous policy reinstalled" true
    (Serve.Tenant.active_policy tn = Serve.Tenant.Rate_limit);
  checki "refusal is not a switch" 0 (Serve.Tenant.policy_switches tn);
  serve_some tn 4

let test_preload_serves_without_faults () =
  let tn = mk_tenant ~policy:Serve.Tenant.Preload () in
  (* The protected set is the allocator's used pages (the workload may
     not consume the whole configured heap region). *)
  let set = List.length (Serve.Tenant.resident_heap_pages tn) in
  checkb "protected set resident at boot" true (set > 0);
  let faults0 = Serve.Tenant.faults tn in
  serve_some tn 12;
  checki "no demand faults while preloaded" faults0 (Serve.Tenant.faults tn);
  checki "set still fully resident" set
    (List.length (Serve.Tenant.resident_heap_pages tn))

(* --- controller -------------------------------------------------------- *)

let test_controller_rejects_empty_ladder () =
  let raised =
    try
      ignore
        (Defense.Controller.create
           { Defense.Controller.default_config with dc_ladder = [] });
      false
    with Invalid_argument _ -> true
  in
  checkb "empty ladder rejected" true raised

let quiet_cfgs () =
  [
    {
      Serve.Tenant.name = "kv";
      workload = Serve.Tenant.Kvstore;
      policy = Serve.Tenant.Rate_limit;
      partition_frames = 192;
      epc_limit = 160;
      enclave_pages = 512;
      heap_pages = 128;
      generator = Serve.Tenant.Open_loop { load = 0.5 };
      queue_capacity = 16;
      deadline = None;
      requests = 60;
      arrive_after = 0;
      depart_after = None;
    };
    {
      Serve.Tenant.name = "hash";
      workload = Serve.Tenant.Uthash;
      policy = Serve.Tenant.Clusters;
      partition_frames = 192;
      epc_limit = 160;
      enclave_pages = 512;
      heap_pages = 128;
      generator = Serve.Tenant.Open_loop { load = 0.5 };
      queue_capacity = 16;
      deadline = None;
      requests = 60;
      arrive_after = 0;
      depart_after = None;
    };
  ]

let test_controller_holds_steady_without_attack () =
  (* Under a calm fleet the controller must neither escalate nor change
     what the tenants serve. *)
  let run hooks =
    let params =
      {
        (Serve.Engine.default_params ~seed:11) with
        Serve.Engine.p_spare_frames = 64;
        p_calibration = 8;
        p_hooks = hooks;
      }
    in
    Serve.Engine.run ~params (quiet_cfgs ())
  in
  let ctl = Defense.Controller.create Defense.Controller.default_config in
  let hooks =
    {
      Serve.Engine.h_period = 10.0;
      h_on_start = Defense.Controller.on_start ctl;
      h_on_tick = Defense.Controller.on_tick ctl;
      h_before_request = (fun _ ~at:_ ~tenant:_ ~key:_ -> ());
      h_after_request = (fun _ ~at:_ ~tenant:_ ~verdict:_ -> ());
    }
  in
  let with_ctl = run (Some hooks) in
  let without = run None in
  checkb "controller ticked" true (Defense.Controller.ticks ctl > 0);
  checki "no escalations" 0 (Defense.Controller.escalations ctl);
  checki "no de-escalations" 0 (Defense.Controller.de_escalations ctl);
  checkb "steady holds not kept as events" true
    (Defense.Controller.events ctl = []);
  Array.iter2
    (fun a b ->
      let n = Serve.Tenant.name a in
      checki (n ^ ": served unchanged") (Serve.Tenant.served b)
        (Serve.Tenant.served a);
      checki (n ^ ": shed unchanged") (Serve.Tenant.shed b)
        (Serve.Tenant.shed a);
      checki (n ^ ": terminations unchanged") (Serve.Tenant.terminations b)
        (Serve.Tenant.terminations a);
      checkb (n ^ ": policy untouched") true
        (Serve.Tenant.active_policy a = Serve.Tenant.active_policy b))
    with_ctl.Serve.Engine.r_tenants without.Serve.Engine.r_tenants

(* --- waves ------------------------------------------------------------- *)

let test_wave_names_round_trip () =
  List.iter
    (fun k ->
      checkb (Defense.Waves.name k) true
        (Defense.Waves.of_name (Defense.Waves.name k) = Some k))
    Defense.Waves.all;
  checkb "unknown name" true (Defense.Waves.of_name "zerg-rush" = None)

let test_wave_rejects_malformed_window () =
  let raised f = try f (); false with Invalid_argument _ -> true in
  checkb "until < from_" true
    (raised (fun () ->
         ignore
           (Defense.Waves.create ~kind:Defense.Waves.Copycat_storm
              ~victim:"v" ~from_:10 ~until:9)));
  checkb "negative from_" true
    (raised (fun () ->
         ignore
           (Defense.Waves.create ~kind:Defense.Waves.Copycat_storm
              ~victim:"v" ~from_:(-1) ~until:10)))

(* --- SLO-under-attack harness ------------------------------------------ *)

let phase_of cell name =
  List.find (fun p -> p.Defense.Defend.pr_phase = name)
    cell.Defense.Defend.dl_phases

let test_defend_cell_escalates_and_recovers () =
  let cells =
    Defense.Defend.run ~quick:true
      ~adversaries:[ Defense.Waves.Kingsguard_churn ]
      ~ladder_filter:[ "standard" ] ~seed:42 ~jobs:1 ()
  in
  checki "one cell" 1 (List.length cells);
  let c = List.hd cells in
  checks "adversary" "kingsguard" c.Defense.Defend.dl_adversary;
  checkb "controller escalated under attack" true
    (c.Defense.Defend.dl_escalations > 0);
  checkb "hysteresis de-escalated after the wave" true
    (c.Defense.Defend.dl_de_escalations > 0);
  checkb "victim survived the wave" true
    (not c.Defense.Defend.dl_victim_refused);
  checkb "controller committed switches on the victim" true
    (c.Defense.Defend.dl_policy_switches > 0);
  checkb "phases in order" true
    (List.map (fun p -> p.Defense.Defend.pr_phase) c.Defense.Defend.dl_phases
    = [ "before"; "during"; "after" ]);
  let before = phase_of c "before" and after = phase_of c "after" in
  checki "calm before the wave" 0 before.Defense.Defend.pr_terminations;
  checki "no terminations after recovery" 0
    after.Defense.Defend.pr_terminations;
  checkb "no bits leak outside the wave" true
    (before.Defense.Defend.pr_bits_observed = 0.
    && after.Defense.Defend.pr_bits_observed = 0.);
  let arrivals =
    List.fold_left
      (fun a p -> a + p.Defense.Defend.pr_arrivals)
      0 c.Defense.Defend.dl_phases
  in
  checki "phases partition the arrivals" c.Defense.Defend.dl_requests arrivals;
  checkb "deterministic digest present" true
    (c.Defense.Defend.dl_digest <> None)

let test_defend_filtered_sweep_reproduces_matrix () =
  (* Shard seeds are keyed to the canonical (unfiltered) matrix index,
     so a filtered sweep must reproduce the full matrix's cells
     bit-for-bit — digests included. *)
  let full = Defense.Defend.run ~quick:true ~seed:7 ~jobs:1 () in
  let filtered =
    Defense.Defend.run ~quick:true
      ~adversaries:[ Defense.Waves.Copycat_storm ]
      ~ladder_filter:[ "heisenberg" ] ~seed:7 ~jobs:1 ()
  in
  checki "one filtered cell" 1 (List.length filtered);
  let f = List.hd filtered in
  let same =
    List.find
      (fun c ->
        c.Defense.Defend.dl_adversary = f.Defense.Defend.dl_adversary
        && c.Defense.Defend.dl_ladder = f.Defense.Defend.dl_ladder)
      full
  in
  checkb "digest matches the canonical cell" true
    (f.Defense.Defend.dl_digest = same.Defense.Defend.dl_digest);
  checkb "phase rows match the canonical cell" true
    (f.Defense.Defend.dl_phases = same.Defense.Defend.dl_phases);
  checki "timeline length matches"
    (List.length same.Defense.Defend.dl_timeline)
    (List.length f.Defense.Defend.dl_timeline)

let suite =
  [
    ("set_policy preserves the working set", `Quick,
     test_set_policy_preserves_working_set);
    ("set_policy mid-request raises", `Quick,
     test_set_policy_mid_request_raises);
    ("preload refusal rolls back", `Quick, test_preload_refusal_rolls_back);
    ("preload serves without faults", `Quick,
     test_preload_serves_without_faults);
    ("controller rejects empty ladder", `Quick,
     test_controller_rejects_empty_ladder);
    ("controller holds steady without attack", `Quick,
     test_controller_holds_steady_without_attack);
    ("wave names round-trip", `Quick, test_wave_names_round_trip);
    ("wave rejects malformed window", `Quick,
     test_wave_rejects_malformed_window);
    ("defend cell escalates and recovers", `Quick,
     test_defend_cell_escalates_and_recovers);
    ("filtered sweep reproduces the matrix", `Quick,
     test_defend_filtered_sweep_reproduces_matrix);
  ]
