(* Tests for the extension features beyond the paper's prototype:
   frequency-based eviction (§5.1.4's suggestion), memory-ballooning
   upcalls (§5.2.1's deferred mechanism), the restart monitor (§3), and
   multi-enclave EPC behaviour. *)

open Sgx

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let page = Types.page_bytes

(* --- Frequency-based eviction ------------------------------------------ *)

let test_frequency_eviction_keeps_hot_pages () =
  let build eviction =
    let sys = Helpers.autarky_system ~budget:32 () in
    let rt = Harness.System.runtime_exn sys in
    let rl = Autarky.Policy_rate_limit.create ~runtime:rt ~evict_batch:8 ~eviction () in
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
    let _burn = Harness.System.reserve sys ~pages:128 in
    let b = Harness.System.reserve sys ~pages:64 in
    Harness.System.manage sys (List.init 64 (fun i -> b + i));
    (sys, rt, b)
  in
  (* Access pattern: page b is touched between every cold sweep, so it
     refaults constantly under FIFO; frequency eviction learns to keep
     the pages that fault most... and evicts low-count ones. *)
  let run eviction =
    let sys, rt, b = build eviction in
    let vm = Harness.System.vm sys () in
    let rng = Metrics.Rng.create ~seed:31L in
    for _ = 1 to 2_000 do
      vm.Workloads.Vm.read ((b + Metrics.Rng.int rng 8) * page);  (* hot octet *)
      vm.Workloads.Vm.read ((b + 8 + Metrics.Rng.int rng 56) * page) (* cold tail *)
    done;
    ignore rt;
    Metrics.Counters.get (Harness.System.counters sys) "cpu.page_fault"
  in
  let fifo_faults = run `Fifo in
  let freq_faults = run `Fault_frequency in
  checkb "frequency eviction reduces faults on skewed access" true
    (freq_faults < fifo_faults)

let test_fault_counts_tracked () =
  let sys = Helpers.autarky_system ~budget:32 () in
  let rt = Harness.System.runtime_exn sys in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  let _burn = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:2 in
  Harness.System.manage sys [ b; b + 1 ];
  let vm = Harness.System.vm sys () in
  vm.Workloads.Vm.read (b * page);
  checki "one fault recorded" 1 (Autarky.Policy_rate_limit.fault_count rl b);
  checki "other page untouched" 0 (Autarky.Policy_rate_limit.fault_count rl (b + 1))

(* --- Ballooning --------------------------------------------------------- *)

let balloon_system () =
  let sys = Helpers.autarky_system ~budget:64 () in
  let rt = Harness.System.runtime_exn sys in
  let _burn = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:48 in
  let pages = List.init 48 (fun i -> b + i) in
  Harness.System.manage sys pages;
  (sys, rt, pages)

let test_balloon_rate_limit_complies () =
  let sys, rt, pages = balloon_system () in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  Autarky.Pager.fetch (Autarky.Runtime.pager rt) pages;
  checki "48 resident" 48 (Autarky.Pager.resident_count (Autarky.Runtime.pager rt));
  let released =
    Sim_os.Kernel.request_balloon (Harness.System.os sys) (Harness.System.proc sys)
      ~pages:20
  in
  checki "released what was asked" 20 released;
  checki "resident shrank" 28 (Autarky.Pager.resident_count (Autarky.Runtime.pager rt))

let test_balloon_pinned_refuses () =
  let sys, rt, pages = balloon_system () in
  (* Default pinned policy: everything is sensitive. *)
  Autarky.Pager.fetch (Autarky.Runtime.pager rt) pages;
  let released =
    Sim_os.Kernel.request_balloon (Harness.System.os sys) (Harness.System.proc sys)
      ~pages:20
  in
  checki "refused" 0 released;
  checki "nothing evicted" 48 (Autarky.Pager.resident_count (Autarky.Runtime.pager rt))

let test_balloon_clusters_whole_clusters () =
  let sys, rt, pages = balloon_system () in
  let clusters = Autarky.Clusters.create () in
  let arr = Array.of_list pages in
  for c = 0 to 5 do
    let id = Autarky.Clusters.new_cluster clusters () in
    for i = 0 to 7 do
      Autarky.Clusters.ay_add_page clusters ~cluster:id arr.((c * 8) + i)
    done
  done;
  let pc = Autarky.Policy_clusters.create ~runtime:rt ~clusters in
  Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
  Autarky.Pager.fetch (Autarky.Runtime.pager rt) pages;
  let released =
    Sim_os.Kernel.request_balloon (Harness.System.os sys) (Harness.System.proc sys)
      ~pages:10
  in
  (* Whole clusters only: 10 requested rounds up to 2 clusters = 16. *)
  checki "rounded to cluster granularity" 16 released;
  let pager = Autarky.Runtime.pager rt in
  checkb "invariant preserved" true
    (Autarky.Clusters.invariant_holds clusters
       ~resident:(Autarky.Pager.resident pager))

let test_balloon_after_release_refetch_works () =
  let sys, rt, pages = balloon_system () in
  let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
  Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
  Autarky.Pager.fetch (Autarky.Runtime.pager rt) pages;
  ignore
    (Sim_os.Kernel.request_balloon (Harness.System.os sys)
       (Harness.System.proc sys) ~pages:20);
  (* Deflated pages fault back in on demand — no termination. *)
  let vm = Harness.System.vm sys () in
  List.iter (fun p -> vm.Workloads.Vm.read (p * page)) pages;
  checki "all back" 48 (Autarky.Pager.resident_count (Autarky.Runtime.pager rt))

(* --- Multi-enclave ------------------------------------------------------- *)

let two_enclaves () =
  let m = Helpers.machine ~epc_frames:128 () in
  let os = Sim_os.Kernel.create m in
  let mk limit =
    let proc = Sim_os.Kernel.create_proc os ~size_pages:64 ~self_paging:false ~epc_limit:limit in
    for i = 0 to 63 do
      Sim_os.Kernel.add_initial_page os proc
        ~vpage:((Sim_os.Kernel.enclave proc).base_vpage + i)
        ~data:(Page_data.create ()) ~perms:Types.perms_rwx
    done;
    Sim_os.Kernel.finalize os proc;
    proc
  in
  (m, os, mk 48, mk 48)

let test_static_partitioning_isolation () =
  let m, os, p1, p2 = two_enclaves () in
  let cpu1 =
    Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table p1)
      ~enclave:(Sim_os.Kernel.enclave p1) ~os:(Sim_os.Kernel.os_callbacks os) ()
  in
  let cpu2 =
    Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table p2)
      ~enclave:(Sim_os.Kernel.enclave p2) ~os:(Sim_os.Kernel.os_callbacks os) ()
  in
  (* Both enclaves page within their own partitions. *)
  for i = 0 to 63 do
    Cpu.read cpu1 (Types.vaddr_of_vpage ((Sim_os.Kernel.enclave p1).base_vpage + i));
    Cpu.read cpu2 (Types.vaddr_of_vpage ((Sim_os.Kernel.enclave p2).base_vpage + i))
  done;
  checkb "p1 within limit" true (Sim_os.Kernel.resident_pages p1 <= 48);
  checkb "p2 within limit" true (Sim_os.Kernel.resident_pages p2 <= 48);
  (* Terminating p1 does not disturb p2. *)
  (try Enclave.terminate (Sim_os.Kernel.enclave p1) ~reason:"attacked"
   with Types.Enclave_terminated _ -> ());
  Cpu.read cpu2 (Types.vaddr_of_vpage (Sim_os.Kernel.enclave p2).base_vpage);
  checkb "p2 unaffected" true true

let test_reclaim_global () =
  let m, os, p1, p2 = two_enclaves () in
  ignore m;
  (* p1 fills its partition; reclaiming for p2 evicts p1's OS pages. *)
  let cpu1 =
    Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table p1)
      ~enclave:(Sim_os.Kernel.enclave p1) ~os:(Sim_os.Kernel.os_callbacks os) ()
  in
  for i = 0 to 63 do
    Cpu.read cpu1 (Types.vaddr_of_vpage ((Sim_os.Kernel.enclave p1).base_vpage + i))
  done;
  let free_before = Epc.free_frames Machine.(m.epc) in
  (match Sim_os.Kernel.reclaim_global os ~needed:(free_before + 8) ~requester:p2 with
  | Ok () -> ()
  | Error `Epc_exhausted -> Alcotest.fail "reclaim failed");
  checkb "frames freed" true (Epc.free_frames m.epc >= free_before + 8)

(* --- Restart monitor ------------------------------------------------------ *)

let monitor () =
  let clock = Metrics.Clock.create Metrics.Cost_model.default in
  (clock, Autarky.Restart_monitor.create ~clock ~window_cycles:1_000 ~max_restarts:3 ())

let test_restart_monitor_allows_normal_lifecycle () =
  let _clock, mon = monitor () in
  checkb "first start allowed" true
    (Autarky.Restart_monitor.record_start mon ~identity:"app" = Autarky.Restart_monitor.Allow);
  checki "no restarts yet" 0 (Autarky.Restart_monitor.restarts_in_window mon ~identity:"app")

let test_restart_monitor_flags_probe_storm () =
  let _clock, mon = monitor () in
  let id = "victim" in
  let rec probe n last =
    if n = 0 then last
    else begin
      let v = Autarky.Restart_monitor.record_start mon ~identity:id in
      Autarky.Restart_monitor.record_termination mon ~identity:id
        ~reason:"controlled-channel attack";
      probe (n - 1) v
    end
  in
  let verdict = probe 6 Autarky.Restart_monitor.Allow in
  checkb "storm refused" true (verdict = Autarky.Restart_monitor.Refuse);
  checkb "identity cut off" true (Autarky.Restart_monitor.refused mon ~identity:id);
  checkb "leak bounded" true
    (Autarky.Restart_monitor.leaked_bits_bound mon ~identity:id <= 6.0);
  checkb "reasons recorded" true
    (List.length (Autarky.Restart_monitor.last_reasons mon ~identity:id) = 6)

let test_restart_monitor_window_slides () =
  let clock, mon = monitor () in
  let id = "slow" in
  for _ = 1 to 10 do
    (* Restarts spread far apart never trip the detector. *)
    checkb "slow restarts allowed" true
      (Autarky.Restart_monitor.record_start mon ~identity:id
      = Autarky.Restart_monitor.Allow);
    Metrics.Clock.charge clock 5_000
  done;
  checkb "never refused" false (Autarky.Restart_monitor.refused mon ~identity:id)

let test_restart_monitor_identities_independent () =
  let _clock, mon = monitor () in
  for _ = 1 to 6 do
    ignore (Autarky.Restart_monitor.record_start mon ~identity:"bad")
  done;
  checkb "bad refused" true (Autarky.Restart_monitor.refused mon ~identity:"bad");
  checkb "good unaffected" true
    (Autarky.Restart_monitor.record_start mon ~identity:"good"
    = Autarky.Restart_monitor.Allow)

let test_restart_monitor_window_edge () =
  (* A start exactly [window_cycles] old is still inside the window;
     it ages out one cycle later. *)
  let clock, mon = monitor () in
  let id = "edge" in
  for _ = 1 to 4 do
    ignore (Autarky.Restart_monitor.record_start mon ~identity:id)
  done;
  Metrics.Clock.charge clock 1_000;
  checkb "start at window edge still counted" true
    (Autarky.Restart_monitor.record_start mon ~identity:id
    = Autarky.Restart_monitor.Refuse);
  let clock2, mon2 = monitor () in
  for _ = 1 to 4 do
    ignore (Autarky.Restart_monitor.record_start mon2 ~identity:id)
  done;
  Metrics.Clock.charge clock2 1_001;
  checkb "start one cycle past the window aged out" true
    (Autarky.Restart_monitor.record_start mon2 ~identity:id
    = Autarky.Restart_monitor.Allow)

let test_restart_monitor_rejects_degenerate_windows () =
  let clock = Metrics.Clock.create Metrics.Cost_model.default in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "zero-width window rejected" true (raises (fun () ->
      Autarky.Restart_monitor.create ~clock ~window_cycles:0 ()));
  checkb "negative window rejected" true (raises (fun () ->
      Autarky.Restart_monitor.create ~clock ~window_cycles:(-5) ()));
  checkb "zero max_restarts rejected" true (raises (fun () ->
      Autarky.Restart_monitor.create ~clock ~window_cycles:1_000
        ~max_restarts:0 ()))

let test_restart_monitor_reasons_capped () =
  let _clock, mon = monitor () in
  let id = "chatty" in
  for i = 1 to Autarky.Restart_monitor.max_reasons + 44 do
    Autarky.Restart_monitor.record_termination mon ~identity:id
      ~reason:(Printf.sprintf "reason-%d" i)
  done;
  let reasons = Autarky.Restart_monitor.last_reasons mon ~identity:id in
  checki "ledger capped" Autarky.Restart_monitor.max_reasons
    (List.length reasons);
  (* Newest first; the counter keeps the true total past the cap. *)
  checkb "newest reason retained" true
    (List.hd reasons
    = Printf.sprintf "reason-%d" (Autarky.Restart_monitor.max_reasons + 44));
  checki "termination counter uncapped"
    (Autarky.Restart_monitor.max_reasons + 44)
    (Autarky.Restart_monitor.total_terminations mon ~identity:id)

let suite =
  [
    ("frequency eviction keeps hot pages", `Quick,
     test_frequency_eviction_keeps_hot_pages);
    ("fault counts tracked", `Quick, test_fault_counts_tracked);
    ("balloon: rate-limit complies", `Quick, test_balloon_rate_limit_complies);
    ("balloon: pinned refuses", `Quick, test_balloon_pinned_refuses);
    ("balloon: clusters whole clusters", `Quick, test_balloon_clusters_whole_clusters);
    ("balloon: refetch after release", `Quick, test_balloon_after_release_refetch_works);
    ("multi-enclave static partitioning", `Quick, test_static_partitioning_isolation);
    ("multi-enclave global reclaim", `Quick, test_reclaim_global);
    ("restart monitor: normal lifecycle", `Quick,
     test_restart_monitor_allows_normal_lifecycle);
    ("restart monitor: probe storm refused", `Quick,
     test_restart_monitor_flags_probe_storm);
    ("restart monitor: window slides", `Quick, test_restart_monitor_window_slides);
    ("restart monitor: identities independent", `Quick,
     test_restart_monitor_identities_independent);
    ("restart monitor: window edge inclusive", `Quick,
     test_restart_monitor_window_edge);
    ("restart monitor: degenerate windows rejected", `Quick,
     test_restart_monitor_rejects_degenerate_windows);
    ("restart monitor: reason ledger capped", `Quick,
     test_restart_monitor_reasons_capped);
  ]
