let () =
  Alcotest.run "autarky"
    [
      ("metrics", Test_metrics.suite);
      ("crypto", Test_crypto.suite);
      ("sgx", Test_sgx.suite);
      ("flatcore", Test_flatcore.suite);
      ("kernel", Test_kernel.suite);
      ("oram", Test_oram.suite);
      ("clusters", Test_clusters.suite);
      ("runtime", Test_runtime.suite);
      ("allocator", Test_allocator.suite);
      ("attacks", Test_attacks.suite);
      ("oram-cache", Test_oram_cache.suite);
      ("workloads", Test_workloads.suite);
      ("integration", Test_integration.suite);
      ("harness", Test_harness.suite);
      ("extensions", Test_extensions.suite);
      ("hypervisor", Test_hypervisor.suite);
      ("serve", Test_serve.suite);
      ("state-machine", Test_statemachine.suite);
      ("instrument", Test_instrument.suite);
      ("trace", Test_trace.suite);
      ("mixed", Test_mixed.suite);
      ("inject", Test_inject.suite);
      ("parallel", Test_parallel.suite);
      ("redteam", Test_redteam.suite);
      ("defense", Test_defense.suite);
      ("snapshot", Test_snapshot.suite);
    ]
