(* Smoke check: every line of an exported trace must be well-formed
   JSON.  Run by the @smoke alias against a tiny kvstore scenario. *)

let () =
  let file = Sys.argv.(1) in
  let ic = open_in file in
  let lines, errors = Trace.Jsonl.validate_channel ic in
  close_in ic;
  match errors with
  | [] ->
    if lines = 0 then begin
      Printf.eprintf "smoke: %s is empty\n" file;
      exit 1
    end;
    Printf.printf "smoke: %s ok (%d JSONL events)\n" file lines
  | errs ->
    List.iter
      (fun (n, msg) -> Printf.eprintf "smoke: %s:%d: %s\n" file n msg)
      errs;
    exit 1
