(* Tests for the workload models: Vm, uthash, YCSB, the KV store,
   jpeg/spellcheck/fontrender, the Phoenix/PARSEC kernels and the nbench
   profiles. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let page = Sgx.Types.page_bytes

(* A simple bump allocator over a fake address space for workload-logic
   tests that need no hardware. *)
let bump_alloc () =
  let next = ref (0x100 * page) in
  fun ~bytes ->
    (* page-align sub-page objects like the real allocator would not;
       just never straddle for small objects *)
    let addr =
      if bytes < page && (!next mod page) + bytes > page then
        (!next / page * page) + page
      else !next
    in
    next := addr + bytes;
    addr

(* --- Vm ---------------------------------------------------------------- *)

let test_vm_recording () =
  let vm, rec_ = Workloads.Vm.recording () in
  vm.Workloads.Vm.read 100;
  vm.Workloads.Vm.write 200;
  vm.Workloads.Vm.exec 300;
  vm.Workloads.Vm.compute 42;
  vm.Workloads.Vm.progress ();
  checkb "events ordered" true
    (Workloads.Vm.events rec_
    = [ Workloads.Vm.Read 100; Workloads.Vm.Write 200; Workloads.Vm.Exec 300 ]);
  checki "progress" 1 (Workloads.Vm.progress_events rec_);
  checki "cycles" 42 (Workloads.Vm.computed_cycles rec_)

let test_vm_object_access_lines () =
  let vm, rec_ = Workloads.Vm.recording () in
  Workloads.Vm.read_object vm ~addr:0 ~bytes:256;
  checki "4 cache lines" 4 (List.length (Workloads.Vm.events rec_));
  let vm, rec_ = Workloads.Vm.recording () in
  Workloads.Vm.write_object vm ~addr:0 ~bytes:65;
  checki "2 lines for 65 bytes" 2 (List.length (Workloads.Vm.events rec_))

let test_vm_pages_touched () =
  let vm, rec_ = Workloads.Vm.recording () in
  vm.Workloads.Vm.read (3 * page);
  vm.Workloads.Vm.read ((3 * page) + 100);
  vm.Workloads.Vm.read (5 * page);
  checkb "distinct pages" true (Workloads.Vm.pages_touched rec_ = [ 3; 5 ])

(* --- Uthash ------------------------------------------------------------ *)

let make_table ?(n_items = 500) ?(target_chain = 5) () =
  let vm, rec_ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:42L in
  let t =
    Workloads.Uthash.create ~vm ~alloc:(bump_alloc ()) ~rng ~n_items
      ~item_bytes:256 ~target_chain
  in
  (t, vm, rec_)

let test_uthash_find_present () =
  let t, _, _ = make_table () in
  for key = 0 to 499 do
    checkb "every inserted key found" true (Workloads.Uthash.find t ~key)
  done

let test_uthash_find_absent () =
  let t, _, _ = make_table () in
  checkb "missing key" false (Workloads.Uthash.find t ~key:10_000)

let test_uthash_geometry () =
  let t, _, _ = make_table ~n_items:500 ~target_chain:5 () in
  checki "buckets" 100 (Workloads.Uthash.n_buckets t);
  checkb "mean chain around target" true (Workloads.Uthash.mean_chain_length t >= 4.0)

let test_uthash_rehash_shortens_chains () =
  let t, _, _ = make_table () in
  let before = Workloads.Uthash.mean_chain_length t in
  Workloads.Uthash.rehash t;
  checki "buckets doubled" 200 (Workloads.Uthash.n_buckets t);
  checkb "chains shorter" true (Workloads.Uthash.mean_chain_length t < before);
  for key = 0 to 499 do
    checkb "keys survive rehash" true (Workloads.Uthash.find t ~key)
  done

let test_uthash_probe_pages_match_traffic () =
  let t, _, rec_ = make_table () in
  let before = List.length (Workloads.Vm.events rec_) in
  ignore before;
  (* Clear recording by replaying onto a fresh recorder is not possible;
     instead compare probe_pages against freshly recorded find pages. *)
  let t2, _vm2, rec2 = make_table () in
  ignore t;
  let evts_before = List.length (Workloads.Vm.events rec2) in
  ignore evts_before;
  let key = 123 in
  let predicted = Workloads.Uthash.probe_pages t2 ~key in
  let trace_before = Workloads.Vm.pages_touched rec2 in
  ignore trace_before;
  let vm3, rec3 = Workloads.Vm.recording () in
  (* Re-create an identical table against a new recorder: same seed,
     same allocator layout -> same addresses. *)
  let rng = Metrics.Rng.create ~seed:42L in
  let t3 =
    Workloads.Uthash.create ~vm:vm3 ~alloc:(bump_alloc ()) ~rng ~n_items:500
      ~item_bytes:256 ~target_chain:5
  in
  let start = List.length (Workloads.Vm.events rec3) in
  ignore start;
  let vm4, rec4 = Workloads.Vm.recording () in
  ignore vm4;
  ignore rec4;
  (* use a wrapper table sharing t3's layout but a fresh recorder is not
     supported; check subset relation instead *)
  ignore (Workloads.Uthash.find t3 ~key);
  let touched = Workloads.Vm.pages_touched rec3 in
  checkb "probe pages ⊆ touched pages" true
    (List.for_all (fun p -> List.mem p touched) predicted)

let test_uthash_item_pages_cover_probes () =
  let t, _, _ = make_table () in
  let all =
    List.sort_uniq compare
      (Workloads.Uthash.item_pages t @ Workloads.Uthash.head_pages t)
  in
  for key = 0 to 99 do
    checkb "probe within table pages" true
      (List.for_all (fun p -> List.mem p all) (Workloads.Uthash.probe_pages t ~key))
  done

(* --- YCSB --------------------------------------------------------------- *)

let test_ycsb_workload_c_all_reads () =
  let rng = Metrics.Rng.create ~seed:1L in
  let dist = Metrics.Dist.uniform ~n:100 in
  let gen = Workloads.Ycsb.workload_c ~dist ~rng in
  for _ = 1 to 1_000 do
    match Workloads.Ycsb.next gen with
    | Workloads.Ycsb.Get k -> checkb "key in range" true (k >= 0 && k < 100)
    | _ -> Alcotest.fail "workload C must be all reads"
  done

let test_ycsb_workload_a_mix () =
  let rng = Metrics.Rng.create ~seed:2L in
  let dist = Metrics.Dist.uniform ~n:100 in
  let gen = Workloads.Ycsb.workload_a ~dist ~rng in
  let reads = ref 0 and updates = ref 0 in
  for _ = 1 to 10_000 do
    match Workloads.Ycsb.next gen with
    | Workloads.Ycsb.Get _ -> incr reads
    | Workloads.Ycsb.Put _ -> incr updates
    | _ -> Alcotest.fail "unexpected op"
  done;
  checkb "roughly 50/50" true (abs (!reads - !updates) < 600)

let test_ycsb_fractions_validated () =
  let rng = Metrics.Rng.create ~seed:3L in
  let dist = Metrics.Dist.uniform ~n:10 in
  checkb "bad fractions rejected" true
    (try
       ignore (Workloads.Ycsb.create ~read_fraction:0.9 ~dist ~rng ());
       false
     with Invalid_argument _ -> true)

(* --- Kvstore ------------------------------------------------------------ *)

let test_kvstore_get_set () =
  let vm, rec_ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:4L in
  let kv =
    Workloads.Kvstore.create ~vm ~alloc:(bump_alloc ()) ~rng ~n_entries:100
      ~value_bytes:1024 ()
  in
  checkb "get hit" true (Workloads.Kvstore.get kv ~key:5);
  checkb "get out of range" false (Workloads.Kvstore.get kv ~key:1_000);
  Workloads.Kvstore.set kv ~key:5;
  checkb "progress per op" true (Workloads.Vm.progress_events rec_ >= 2)

let test_kvstore_value_read_lines () =
  let vm, rec_ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:5L in
  let kv =
    Workloads.Kvstore.create ~vm ~alloc:(bump_alloc ()) ~rng ~n_entries:10
      ~value_bytes:1024 ()
  in
  let before = List.length (Workloads.Vm.events rec_) in
  ignore (Workloads.Kvstore.get kv ~key:3);
  let events = List.length (Workloads.Vm.events rec_) - before in
  (* 1 index read + 16 value lines *)
  checki "access count" 17 events

let test_kvstore_data_region_covers_items () =
  let vm, _ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:6L in
  let kv =
    Workloads.Kvstore.create ~vm ~alloc:(bump_alloc ()) ~rng ~n_entries:200
      ~value_bytes:1024 ()
  in
  let first, count = Workloads.Kvstore.data_region kv in
  List.iter
    (fun p -> checkb "item page in region" true (p >= first && p < first + count))
    (Workloads.Kvstore.item_pages kv)

(* --- Jpeg ---------------------------------------------------------------- *)

let test_jpeg_trace_matches_image () =
  let vm, rec_ = Workloads.Vm.recording () in
  let codec = Workloads.Jpeg.create ~vm ~alloc:(bump_alloc ()) ~blocks_w:8 ~blocks_h:4 in
  let rng = Metrics.Rng.create ~seed:7L in
  let image = Workloads.Jpeg.random_image ~rng ~blocks_w:8 ~blocks_h:4 () in
  Workloads.Jpeg.decode codec ~image ();
  let fast = Workloads.Jpeg.fast_idct_page codec in
  let full = Workloads.Jpeg.full_idct_page codec in
  (* Reconstruct the IDCT path trace from the recorded exec events. *)
  let execs =
    List.filter_map
      (function
        | Workloads.Vm.Exec a ->
          let vp = a / page in
          if vp = fast then Some Workloads.Jpeg.Smooth
          else if vp = full then Some Workloads.Jpeg.Detailed
          else None
        | _ -> None)
      (Workloads.Vm.events rec_)
  in
  checkb "exec trace equals image" true (execs = Array.to_list image)

let test_jpeg_expected_trace_collapses () =
  let vm, _ = Workloads.Vm.recording () in
  let codec = Workloads.Jpeg.create ~vm ~alloc:(bump_alloc ()) ~blocks_w:4 ~blocks_h:1 in
  let image = Workloads.Jpeg.[| Smooth; Smooth; Detailed; Detailed |] in
  checkb "collapsed" true
    (Workloads.Jpeg.expected_trace codec ~image
    = Workloads.Jpeg.[ Smooth; Detailed ])

let test_jpeg_temp_buffer_small () =
  let vm, _ = Workloads.Vm.recording () in
  let codec =
    Workloads.Jpeg.create ~vm ~alloc:(bump_alloc ()) ~blocks_w:256 ~blocks_h:256
  in
  (* Working set independent of image height: input ring (2) + coef (1)
     + the 8-scanline row buffer (256*8*3*8 bytes = 12 pages). *)
  checkb "temp pages bounded" true
    (List.length (Workloads.Jpeg.temp_pages codec) <= 16)

let test_jpeg_output_bytes () =
  let vm, _ = Workloads.Vm.recording () in
  let codec = Workloads.Jpeg.create ~vm ~alloc:(bump_alloc ()) ~blocks_w:10 ~blocks_h:5 in
  checki "output size" (80 * 40 * 3) (Workloads.Jpeg.output_bytes codec)

(* --- Spellcheck ----------------------------------------------------------- *)

let test_spellcheck_check () =
  let vm, _ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:8L in
  let d =
    Workloads.Spellcheck.load_dictionary ~vm ~alloc:(bump_alloc ()) ~rng
      ~name:"en" ~n_words:200 ()
  in
  checkb "correct word" true (Workloads.Spellcheck.check d ~word:42);
  checkb "misspelled word" false (Workloads.Spellcheck.check d ~word:5_000);
  checki "word count" 200 (Workloads.Spellcheck.n_words d)

let test_spellcheck_signatures_discriminate () =
  let vm, _ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:9L in
  let d =
    Workloads.Spellcheck.load_dictionary ~vm ~alloc:(bump_alloc ()) ~rng
      ~name:"en" ~n_words:500 ()
  in
  (* Most word pairs have distinct page signatures — that is the leak. *)
  let distinct = ref 0 in
  for w = 0 to 99 do
    if
      Workloads.Spellcheck.signature d ~word:w
      <> Workloads.Spellcheck.signature d ~word:(w + 100)
    then incr distinct
  done;
  checkb "mostly distinct" true (!distinct > 80)

let test_spellcheck_text_zipf () =
  let rng = Metrics.Rng.create ~seed:10L in
  let text = Workloads.Spellcheck.word_text ~rng ~vocabulary:1_000 ~length:5_000 in
  checki "length" 5_000 (Array.length text);
  Array.iter (fun w -> checkb "in vocab" true (w >= 0 && w < 1_000)) text

(* --- Fontrender ------------------------------------------------------------ *)

let test_fontrender_signatures_deterministic () =
  let vm, _ = Workloads.Vm.recording () in
  let f = Workloads.Fontrender.create ~vm ~alloc:(bump_alloc ()) ~glyphs:64 ~code_pages:12 in
  let vm2, _ = Workloads.Vm.recording () in
  let f2 = Workloads.Fontrender.create ~vm:vm2 ~alloc:(bump_alloc ()) ~glyphs:64 ~code_pages:12 in
  for g = 0 to 63 do
    let rel t s = List.map (fun p -> p - List.hd (Workloads.Fontrender.code_pages t)) s in
    checkb "same signature across instances" true
      (rel f (Workloads.Fontrender.glyph_signature f g)
      = rel f2 (Workloads.Fontrender.glyph_signature f2 g))
  done

let test_fontrender_render_traffic () =
  let vm, rec_ = Workloads.Vm.recording () in
  let f = Workloads.Fontrender.create ~vm ~alloc:(bump_alloc ()) ~glyphs:32 ~code_pages:8 in
  Workloads.Fontrender.render f [| 1; 2; 3 |];
  checki "three progress events" 3 (Workloads.Vm.progress_events rec_);
  let execs =
    List.filter (function Workloads.Vm.Exec _ -> true | _ -> false)
      (Workloads.Vm.events rec_)
  in
  let expected =
    List.length (Workloads.Fontrender.glyph_signature f 1)
    + List.length (Workloads.Fontrender.glyph_signature f 2)
    + List.length (Workloads.Fontrender.glyph_signature f 3)
  in
  checki "exec per signature entry" expected (List.length execs)

(* --- Kernels & nbench -------------------------------------------------------- *)

let test_kernels_suite_complete () =
  checki "14 applications" 14 (List.length Workloads.Kernels.suite);
  let phoenix =
    List.length (List.filter (fun s -> s.Workloads.Kernels.suite = `Phoenix)
                   Workloads.Kernels.suite)
  in
  checki "6 Phoenix apps" 6 phoenix;
  checkb "find works" true ((Workloads.Kernels.find "canneal").ws_pages > 25_600)

let test_kernels_run_traffic () =
  let vm, rec_ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:11L in
  let spec = Workloads.Kernels.find "kmeans" in
  Workloads.Kernels.run spec ~vm ~rng ~units:3 ();
  checki "3 progress units" 3 (Workloads.Vm.progress_events rec_);
  checki "accesses per unit" (3 * spec.accesses_per_unit)
    (List.length (Workloads.Vm.events rec_));
  (* All accesses within the working set. *)
  List.iter
    (fun p -> checkb "within ws" true (p >= 0 && p < spec.ws_pages))
    (Workloads.Vm.pages_touched rec_)

let test_kernels_touch_all () =
  let vm, rec_ = Workloads.Vm.recording () in
  let spec = Workloads.Kernels.find "swap" in
  Workloads.Kernels.touch_all spec ~vm ();
  checki "every ws page" spec.ws_pages
    (List.length (Workloads.Vm.pages_touched rec_))

let test_nbench_profiles () =
  checki "10 applications" 10 (List.length Workloads.Nbench.apps);
  let vm, rec_ = Workloads.Vm.recording () in
  let rng = Metrics.Rng.create ~seed:12L in
  Workloads.Nbench.run (List.hd Workloads.Nbench.apps) ~vm ~rng ~accesses:1_000;
  checki "access count" 1_000 (List.length (Workloads.Vm.events rec_))

let test_nbench_analytic_slowdown () =
  checkb "formula" true
    (abs_float
       (Workloads.Nbench.analytic_slowdown ~check_cycles:10 ~fills:7
          ~base_cycles:100_000
       -. 0.0007)
    < 1e-9);
  checkb "zero base" true
    (Workloads.Nbench.analytic_slowdown ~check_cycles:10 ~fills:7 ~base_cycles:0
    = 0.0)

(* --- serving load generators ------------------------------------------- *)

let test_loadgen_deterministic () =
  let gaps seed =
    let rng = Metrics.Rng.create ~seed in
    List.init 200 (fun i ->
        if i mod 3 = 0 then Workloads.Loadgen.exp_gap rng ~mean:5_000.0
        else if i mod 3 = 1 then
          Workloads.Loadgen.pareto_gap rng ~mean:5_000.0 ~alpha:1.5
        else
          Workloads.Loadgen.diurnal_gap rng ~mean:5_000.0 ~depth:0.5
            ~period:100_000 ~at:(i * 1_000))
  in
  checkb "same seed, same gaps" true (gaps 9L = gaps 9L);
  checkb "different seed differs" true (gaps 9L <> gaps 10L)

let test_loadgen_gaps_positive () =
  let rng = Metrics.Rng.create ~seed:5L in
  for _ = 1 to 1_000 do
    checkb "exp >= 1" true (Workloads.Loadgen.exp_gap rng ~mean:0.01 >= 1);
    checkb "pareto >= 1" true
      (Workloads.Loadgen.pareto_gap rng ~mean:0.01 ~alpha:2.0 >= 1);
    checkb "diurnal >= 1" true
      (Workloads.Loadgen.diurnal_gap rng ~mean:0.01 ~depth:0.8 ~period:100 ~at:25
      >= 1)
  done

let test_pareto_mean_matches_load () =
  (* The scale is derived so E[gap] = mean: the sample mean over many
     draws must land near it (alpha = 2.5 has finite variance). *)
  let rng = Metrics.Rng.create ~seed:17L in
  let n = 60_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Workloads.Loadgen.pareto_gap rng ~mean:10_000.0 ~alpha:2.5
  done;
  let m = float_of_int !sum /. float_of_int n in
  if abs_float (m -. 10_000.0) > 600.0 then
    Alcotest.failf "pareto sample mean %.0f too far from 10000" m

let test_pareto_heavier_tail_than_exp () =
  let max_of f =
    let rng = Metrics.Rng.create ~seed:23L in
    let m = ref 0 in
    for _ = 1 to 20_000 do
      m := max !m (f rng)
    done;
    !m
  in
  let pareto_max = max_of (Workloads.Loadgen.pareto_gap ~mean:1_000.0 ~alpha:1.5) in
  let exp_max = max_of (Workloads.Loadgen.exp_gap ~mean:1_000.0) in
  checkb "pareto tail dominates" true (pareto_max > 2 * exp_max)

let test_pareto_validates_alpha () =
  let rng = Metrics.Rng.create ~seed:1L in
  checkb "alpha <= 1 rejected" true
    (match Workloads.Loadgen.pareto_gap rng ~mean:100.0 ~alpha:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_diurnal_factor_shape () =
  let period = 1_000 in
  let f at = Workloads.Loadgen.diurnal_factor ~depth:0.5 ~period ~at in
  checkb "peak above trough" true (f (period / 4) > f (3 * period / 4));
  checkb "periodic" true (abs_float (f 123 -. f (123 + period)) < 1e-9);
  checkb "bounded above" true (f (period / 4) <= 1.5 +. 1e-9);
  (* Depth near 1 would stall the trough without the clamp. *)
  let g at = Workloads.Loadgen.diurnal_factor ~depth:0.99 ~period ~at in
  checkb "trough clamped" true (g (3 * period / 4) >= 0.1 -. 1e-9);
  checkb "bad period rejected" true
    (match Workloads.Loadgen.diurnal_factor ~depth:0.5 ~period:0 ~at:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad depth rejected" true
    (match Workloads.Loadgen.diurnal_factor ~depth:1.0 ~period ~at:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    ("vm recording", `Quick, test_vm_recording);
    ("vm object access lines", `Quick, test_vm_object_access_lines);
    ("vm pages touched", `Quick, test_vm_pages_touched);
    ("uthash find present", `Quick, test_uthash_find_present);
    ("uthash find absent", `Quick, test_uthash_find_absent);
    ("uthash geometry", `Quick, test_uthash_geometry);
    ("uthash rehash shortens chains", `Quick, test_uthash_rehash_shortens_chains);
    ("uthash probe pages subset", `Quick, test_uthash_probe_pages_match_traffic);
    ("uthash item pages cover probes", `Quick, test_uthash_item_pages_cover_probes);
    ("ycsb workload C all reads", `Quick, test_ycsb_workload_c_all_reads);
    ("ycsb workload A mix", `Quick, test_ycsb_workload_a_mix);
    ("ycsb fractions validated", `Quick, test_ycsb_fractions_validated);
    ("kvstore get/set", `Quick, test_kvstore_get_set);
    ("kvstore value read lines", `Quick, test_kvstore_value_read_lines);
    ("kvstore data region covers items", `Quick, test_kvstore_data_region_covers_items);
    ("jpeg trace matches image", `Quick, test_jpeg_trace_matches_image);
    ("jpeg expected trace collapses", `Quick, test_jpeg_expected_trace_collapses);
    ("jpeg temp buffer small", `Quick, test_jpeg_temp_buffer_small);
    ("jpeg output bytes", `Quick, test_jpeg_output_bytes);
    ("spellcheck check", `Quick, test_spellcheck_check);
    ("spellcheck signatures discriminate", `Quick,
     test_spellcheck_signatures_discriminate);
    ("spellcheck text zipf", `Quick, test_spellcheck_text_zipf);
    ("fontrender deterministic signatures", `Quick,
     test_fontrender_signatures_deterministic);
    ("fontrender render traffic", `Quick, test_fontrender_render_traffic);
    ("kernels suite complete", `Quick, test_kernels_suite_complete);
    ("kernels run traffic", `Quick, test_kernels_run_traffic);
    ("kernels touch all", `Quick, test_kernels_touch_all);
    ("nbench profiles", `Quick, test_nbench_profiles);
    ("nbench analytic slowdown", `Quick, test_nbench_analytic_slowdown);
    ("loadgen deterministic", `Quick, test_loadgen_deterministic);
    ("loadgen gaps positive", `Quick, test_loadgen_gaps_positive);
    ("pareto mean matches load", `Quick, test_pareto_mean_matches_load);
    ("pareto heavier tail than exp", `Quick, test_pareto_heavier_tail_than_exp);
    ("pareto validates alpha", `Quick, test_pareto_validates_alpha);
    ("diurnal factor shape", `Quick, test_diurnal_factor_shape);
  ]
