(* Unit and property tests for the metrics substrate: RNG,
   distributions, statistics, counters, cost model and virtual clock. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Metrics.Rng.create ~seed:1L and b = Metrics.Rng.create ~seed:1L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Metrics.Rng.next_int64 a)
      (Metrics.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Metrics.Rng.create ~seed:1L and b = Metrics.Rng.create ~seed:2L in
  checkb "different streams" false
    (Metrics.Rng.next_int64 a = Metrics.Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Metrics.Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Metrics.Rng.int rng 17 in
    checkb "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Metrics.Rng.create ~seed:4L in
  for _ = 1 to 1_000 do
    let v = Metrics.Rng.int_in rng ~lo:(-5) ~hi:5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let rng = Metrics.Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let f = Metrics.Rng.float rng in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_float_mean () =
  let rng = Metrics.Rng.create ~seed:6L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Metrics.Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_bool_balance () =
  let rng = Metrics.Rng.create ~seed:7L in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Metrics.Rng.bool rng then incr trues
  done;
  checkb "roughly balanced" true (!trues > 4_700 && !trues < 5_300)

let test_rng_split_independent () =
  let a = Metrics.Rng.create ~seed:8L in
  let b = Metrics.Rng.split a in
  checkb "split differs from parent" false
    (Metrics.Rng.next_int64 a = Metrics.Rng.next_int64 b)

let test_rng_copy () =
  let a = Metrics.Rng.create ~seed:9L in
  ignore (Metrics.Rng.next_int64 a);
  let b = Metrics.Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Metrics.Rng.next_int64 a)
    (Metrics.Rng.next_int64 b)

let test_rng_shuffle_permutation () =
  let rng = Metrics.Rng.create ~seed:10L in
  let a = Array.init 100 (fun i -> i) in
  Metrics.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  checkb "is a permutation" true (sorted = Array.init 100 (fun i -> i));
  checkb "actually shuffled" false (a = Array.init 100 (fun i -> i))

let test_rng_bytes () =
  let rng = Metrics.Rng.create ~seed:11L in
  let b = Metrics.Rng.bytes rng 256 in
  checki "length" 256 (Bytes.length b);
  (* Not all bytes equal. *)
  let first = Bytes.get b 0 in
  checkb "not constant" true
    (Bytes.exists (fun c -> c <> first) b)

(* --- Dist ------------------------------------------------------------- *)

let test_dist_uniform_bounds () =
  let rng = Metrics.Rng.create ~seed:20L in
  let d = Metrics.Dist.uniform ~n:100 in
  for _ = 1 to 5_000 do
    let v = Metrics.Dist.sample d rng in
    checkb "in range" true (v >= 0 && v < 100)
  done

let test_dist_uniform_coverage () =
  let rng = Metrics.Rng.create ~seed:21L in
  let d = Metrics.Dist.uniform ~n:10 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    counts.(Metrics.Dist.sample d rng) <- counts.(Metrics.Dist.sample d rng) + 1
  done;
  Array.iter (fun c -> checkb "each bin hit" true (c > 0)) counts

let test_dist_zipf_skew () =
  let rng = Metrics.Rng.create ~seed:22L in
  let d = Metrics.Dist.zipfian ~theta:0.99 ~n:1_000 () in
  let counts = Array.make 1_000 0 in
  for _ = 1 to 100_000 do
    let v = Metrics.Dist.sample d rng in
    counts.(v) <- counts.(v) + 1
  done;
  (* Head items dominate: item 0 far more popular than item 500. *)
  checkb "zipf head heavy" true (counts.(0) > 20 * (counts.(500) + 1));
  (* Top-10 items get a large fraction. *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  checkb "top-10 share > 20%" true (top10 > 20_000)

let test_dist_scrambled_zipf_spread () =
  let rng = Metrics.Rng.create ~seed:23L in
  let d = Metrics.Dist.scrambled_zipfian ~n:1_000 () in
  let counts = Array.make 1_000 0 in
  for _ = 1 to 50_000 do
    let v = Metrics.Dist.sample d rng in
    counts.(v) <- counts.(v) + 1
  done;
  (* Scrambling moves the hottest key away from index 0 (with high
     probability) while keeping skew: some key dominates. *)
  let max_count = Array.fold_left max 0 counts in
  checkb "still skewed" true (max_count > 1_000)

let test_dist_hotspot () =
  let rng = Metrics.Rng.create ~seed:24L in
  let d = Metrics.Dist.hotspot ~n:1_000 ~hot_fraction:0.01 ~hot_probability:0.9 in
  let hot = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Metrics.Dist.sample d rng < 10 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int n in
  checkb "~90% hot" true (abs_float (frac -. 0.9) < 0.02)

let test_dist_describe () =
  check Alcotest.string "uniform label" "uniform"
    (Metrics.Dist.describe (Metrics.Dist.uniform ~n:5));
  checkb "zipf label" true
    (String.length (Metrics.Dist.describe (Metrics.Dist.zipfian ~n:5 ())) > 0)

(* --- Stats ------------------------------------------------------------ *)

let test_stats_mean_stddev () =
  let s = Metrics.Stats.create () in
  List.iter (Metrics.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkb "mean" true (abs_float (Metrics.Stats.mean s -. 5.0) < 1e-9);
  checkb "stddev (sample)" true
    (abs_float (Metrics.Stats.stddev s -. 2.138) < 0.01);
  checki "count" 8 (Metrics.Stats.count s)

let test_stats_empty () =
  let s = Metrics.Stats.create () in
  checkb "mean 0" true (Metrics.Stats.mean s = 0.0);
  checkb "stddev 0" true (Metrics.Stats.stddev s = 0.0)

let test_stats_minmax () =
  let s = Metrics.Stats.create () in
  List.iter (Metrics.Stats.add s) [ 3.0; -1.0; 10.0 ];
  checkb "min" true (Metrics.Stats.min_value s = -1.0);
  checkb "max" true (Metrics.Stats.max_value s = 10.0)

let test_stats_percentile () =
  let s = Metrics.Stats.create () in
  for i = 1 to 100 do
    Metrics.Stats.add s (float_of_int i)
  done;
  checkb "p50" true (Metrics.Stats.percentile s 50.0 = 50.0);
  checkb "p99" true (Metrics.Stats.percentile s 99.0 = 99.0);
  checkb "p100" true (Metrics.Stats.percentile s 100.0 = 100.0)

let test_stats_summary () =
  let s = Metrics.Stats.create () in
  for i = 1 to 100 do
    Metrics.Stats.add s (float_of_int i)
  done;
  let m = Metrics.Stats.summary s in
  checki "count" 100 m.Metrics.Stats.s_count;
  checkb "mean" true (abs_float (m.Metrics.Stats.s_mean -. 50.5) < 1e-9);
  checkb "p50" true (m.Metrics.Stats.s_p50 = 50.0);
  checkb "p95" true (m.Metrics.Stats.s_p95 = 95.0);
  checkb "p99" true (m.Metrics.Stats.s_p99 = 99.0);
  checkb "max" true (m.Metrics.Stats.s_max = 100.0);
  checkb "agrees with percentile" true
    (m.Metrics.Stats.s_p95 = Metrics.Stats.percentile s 95.0)

let test_stats_summary_empty () =
  let m = Metrics.Stats.summary (Metrics.Stats.create ()) in
  checki "count" 0 m.Metrics.Stats.s_count;
  checkb "all zero" true
    (m.Metrics.Stats.s_mean = 0.0 && m.Metrics.Stats.s_p50 = 0.0
    && m.Metrics.Stats.s_p95 = 0.0 && m.Metrics.Stats.s_p99 = 0.0
    && m.Metrics.Stats.s_max = 0.0)

let test_stats_summary_single () =
  let s = Metrics.Stats.create () in
  Metrics.Stats.add s 7.5;
  let m = Metrics.Stats.summary s in
  checki "count" 1 m.Metrics.Stats.s_count;
  checkb "every percentile is the sample" true
    (m.Metrics.Stats.s_mean = 7.5 && m.Metrics.Stats.s_p50 = 7.5
    && m.Metrics.Stats.s_p95 = 7.5 && m.Metrics.Stats.s_p99 = 7.5
    && m.Metrics.Stats.s_max = 7.5)

let test_stats_geomean () =
  checkb "geomean" true
    (abs_float (Metrics.Stats.geomean [ 1.0; 4.0 ] -. 2.0) < 1e-9);
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.geomean: empty")
    (fun () -> ignore (Metrics.Stats.geomean []))

let test_stats_histogram () =
  let h = Metrics.Stats.Histogram.create ~bucket_width:10.0 in
  List.iter (Metrics.Stats.Histogram.add h) [ 1.0; 5.0; 15.0; 25.0; 25.5 ];
  let buckets = Metrics.Stats.Histogram.buckets h in
  checki "bucket count" 3 (List.length buckets);
  checkb "first bucket has 2" true (List.assoc 0.0 buckets = 2);
  checkb "third bucket has 2" true (List.assoc 20.0 buckets = 2)

(* --- Counters & Clock ------------------------------------------------- *)

let test_counters_basic () =
  let c = Metrics.Counters.create () in
  Metrics.Counters.incr c "a";
  Metrics.Counters.incr c "a";
  Metrics.Counters.add c "b" 5;
  checki "a" 2 (Metrics.Counters.get c "a");
  checki "b" 5 (Metrics.Counters.get c "b");
  checki "missing" 0 (Metrics.Counters.get c "zzz")

let test_counters_snapshot_reset () =
  let c = Metrics.Counters.create () in
  Metrics.Counters.add c "x" 3;
  Metrics.Counters.add c "y" 1;
  checki "snapshot size" 2 (List.length (Metrics.Counters.snapshot c));
  Metrics.Counters.reset_one c "x";
  checki "x reset" 0 (Metrics.Counters.get c "x");
  Metrics.Counters.reset c;
  checki "all reset" 0 (List.length (Metrics.Counters.snapshot c))

let test_counters_cell_identity () =
  let c = Metrics.Counters.create () in
  let a1 = Metrics.Counters.cell c "a" in
  let a2 = Metrics.Counters.cell c "a" in
  checkb "same name, same cell" true (a1 == a2);
  check Alcotest.string "cell name" "a" (Metrics.Counters.name a1);
  Metrics.Counters.cell_incr a1;
  Metrics.Counters.incr c "a";
  Metrics.Counters.cell_add a2 3;
  checki "cell and string APIs alias" 5 (Metrics.Counters.get c "a");
  checki "cell_get sees string incr" 5 (Metrics.Counters.cell_get a1)

let test_counters_cells_survive_reset () =
  let c = Metrics.Counters.create () in
  let x = Metrics.Counters.cell c "x" in
  let y = Metrics.Counters.cell c "y" in
  Metrics.Counters.cell_add x 7;
  Metrics.Counters.cell_add y 2;
  Metrics.Counters.reset_one c "x";
  checki "reset_one zeroes the cell" 0 (Metrics.Counters.cell_get x);
  checki "other cell untouched" 2 (Metrics.Counters.cell_get y);
  Metrics.Counters.reset c;
  checki "reset zeroes all cells" 0 (Metrics.Counters.cell_get y);
  (* The handle keeps counting into the same (interned) counter. *)
  Metrics.Counters.cell_incr x;
  checki "handle valid after reset" 1 (Metrics.Counters.get c "x");
  checkb "still the same cell" true (x == Metrics.Counters.cell c "x")

let test_counters_snapshot_sees_cells () =
  let c = Metrics.Counters.create () in
  let m = Metrics.Counters.cell c "m" in
  let _zero = Metrics.Counters.cell c "never-bumped" in
  Metrics.Counters.cell_add m 4;
  Metrics.Counters.incr c "n";
  check
    Alcotest.(list (pair string int))
    "snapshot interleaves cell and string counters"
    [ ("m", 4); ("n", 1) ]
    (Metrics.Counters.snapshot c)

let test_clock_charge () =
  let clock = Metrics.Clock.create Metrics.Cost_model.default in
  Metrics.Clock.charge clock 100;
  Metrics.Clock.charge clock 50;
  checki "elapsed" 150 (Metrics.Clock.now clock);
  let span = Metrics.Clock.start_span clock in
  Metrics.Clock.charge clock 25;
  checki "span" 25 (Metrics.Clock.span_cycles clock span);
  Metrics.Clock.reset clock;
  checki "reset" 0 (Metrics.Clock.now clock)

let test_clock_seconds () =
  let clock = Metrics.Clock.create Metrics.Cost_model.default in
  Metrics.Clock.charge clock 3_900_000_000;
  checkb "one second at 3.9GHz" true
    (abs_float (Metrics.Clock.elapsed_seconds clock -. 1.0) < 1e-9)

let test_cost_model_derived () =
  let m = Metrics.Cost_model.default in
  checki "fault roundtrip" (m.aex + m.eresume + m.eenter + m.eexit)
    (Metrics.Cost_model.fault_roundtrip m);
  checki "hw page crypto" 4096 (Metrics.Cost_model.hw_page_crypto m);
  checkb "sw crypto positive" true (Metrics.Cost_model.sw_page_crypto m > 0)

(* --- quantile sketch --------------------------------------------------- *)

(* The sketch's one-sided guarantee, with a +1 absolute slack for the
   integer rounding at bucket edges:
   exact <= estimate <= exact * (1 + relative_error) + 1. *)
let sketch_bound_ok ~exact ~est =
  est >= exact -. 1e-9
  && est <= (exact *. (1.0 +. Metrics.Sketch.relative_error)) +. 1.0 +. 1e-9

let check_sketch_vs_exact ~what values =
  let sk = Metrics.Sketch.create () in
  let st = Metrics.Stats.create () in
  List.iter
    (fun v ->
      Metrics.Sketch.add_int sk v;
      Metrics.Stats.add st (float_of_int v))
    values;
  List.iter
    (fun p ->
      let exact = Metrics.Stats.percentile st p in
      let est = Metrics.Sketch.quantile sk p in
      if not (sketch_bound_ok ~exact ~est) then
        Alcotest.failf "%s: p%.0f estimate %.0f outside [%.0f, %.2f]" what p
          est exact
          ((exact *. (1.0 +. Metrics.Sketch.relative_error)) +. 1.0))
    [ 50.0; 95.0; 99.0 ]

let test_sketch_uniform () =
  let rng = Metrics.Rng.create ~seed:7L in
  check_sketch_vs_exact ~what:"uniform"
    (List.init 5_000 (fun _ -> Metrics.Rng.int rng 1_000_000))

let test_sketch_heavy_tail () =
  (* Pareto-ish: invert a uniform to get a long tail. *)
  let rng = Metrics.Rng.create ~seed:11L in
  check_sketch_vs_exact ~what:"heavy tail"
    (List.init 5_000 (fun _ ->
         let u = 1.0 -. Metrics.Rng.float rng in
         int_of_float (20.0 *. (u ** (-1.5)))))

let test_sketch_constant () =
  check_sketch_vs_exact ~what:"constant" (List.init 500 (fun _ -> 123_457);)

let test_sketch_small_values_exact () =
  (* 0..63 live in unit buckets: every quantile is exact. *)
  let sk = Metrics.Sketch.create () in
  let st = Metrics.Stats.create () in
  let rng = Metrics.Rng.create ~seed:3L in
  for _ = 1 to 2_000 do
    let v = Metrics.Rng.int rng 64 in
    Metrics.Sketch.add_int sk v;
    Metrics.Stats.add st (float_of_int v)
  done;
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "p%.0f exact below 64" p)
        true
        (Metrics.Sketch.quantile sk p = Metrics.Stats.percentile st p))
    [ 10.0; 50.0; 90.0; 99.0 ]

let test_sketch_side_stats_exact () =
  let sk = Metrics.Sketch.create () in
  let st = Metrics.Stats.create () in
  List.iter
    (fun v ->
      Metrics.Sketch.add_int sk v;
      Metrics.Stats.add st (float_of_int v))
    [ 5; 70_000; 123; 9_999_999; 0; 64 ];
  checki "count" (Metrics.Stats.count st) (Metrics.Sketch.count sk);
  checkb "mean exact" true (Metrics.Sketch.mean sk = Metrics.Stats.mean st);
  checkb "min exact" true
    (Metrics.Sketch.min_value sk = Metrics.Stats.min_value st);
  checkb "max exact" true
    (Metrics.Sketch.max_value sk = Metrics.Stats.max_value st);
  let s = Metrics.Sketch.summary sk in
  checkb "summary max is exact" true
    (s.Metrics.Stats.s_max = Metrics.Stats.max_value st)

let test_sketch_empty () =
  let sk = Metrics.Sketch.create () in
  let s = Metrics.Sketch.summary sk in
  checki "empty count" 0 s.Metrics.Stats.s_count;
  checkb "empty summary zero" true
    (s.Metrics.Stats.s_p99 = 0.0 && s.Metrics.Stats.s_max = 0.0);
  checkb "quantile raises" true
    (match Metrics.Sketch.quantile sk 50.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sketch_merge_is_pooled () =
  (* Merging shard sketches must equal sketching the pooled stream —
     the property Stats.merge_summaries lacks. *)
  let rng = Metrics.Rng.create ~seed:21L in
  let shard1 = List.init 2_000 (fun _ -> Metrics.Rng.int rng 500_000) in
  let shard2 = List.init 700 (fun _ -> 1_000_000 + Metrics.Rng.int rng 500) in
  let sk_of vs =
    let sk = Metrics.Sketch.create () in
    List.iter (Metrics.Sketch.add_int sk) vs;
    sk
  in
  let pooled = sk_of (shard1 @ shard2) in
  let m12 = Metrics.Sketch.merged [ sk_of shard1; sk_of shard2 ] in
  let m21 = Metrics.Sketch.merged [ sk_of shard2; sk_of shard1 ] in
  List.iter
    (fun p ->
      let e = Metrics.Sketch.quantile pooled p in
      checkb "merge = pooled" true (Metrics.Sketch.quantile m12 p = e);
      checkb "merge commutes" true (Metrics.Sketch.quantile m21 p = e))
    [ 25.0; 50.0; 95.0; 99.0; 100.0 ];
  checki "merged count" (Metrics.Sketch.count pooled)
    (Metrics.Sketch.count m12)

(* --- QCheck properties ------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"rng int always in bounds" ~count:500
        QCheck2.Gen.(pair (int_range 1 10_000) int)
        (fun (bound, seed) ->
          let rng = Metrics.Rng.create ~seed:(Int64.of_int seed) in
          let v = Metrics.Rng.int rng bound in
          v >= 0 && v < bound);
      QCheck2.Test.make ~name:"dist samples in range" ~count:200
        QCheck2.Gen.(pair (int_range 2 5_000) int)
        (fun (n, seed) ->
          let rng = Metrics.Rng.create ~seed:(Int64.of_int seed) in
          let d = Metrics.Dist.zipfian ~n () in
          let v = Metrics.Dist.sample d rng in
          v >= 0 && v < n);
      QCheck2.Test.make ~name:"stats mean within [min,max]" ~count:300
        QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
        (fun xs ->
          let s = Metrics.Stats.create () in
          List.iter (Metrics.Stats.add s) xs;
          Metrics.Stats.mean s >= Metrics.Stats.min_value s -. 1e-9
          && Metrics.Stats.mean s <= Metrics.Stats.max_value s +. 1e-9);
      QCheck2.Test.make ~name:"percentile monotone" ~count:200
        QCheck2.Gen.(list_size (int_range 2 80) (float_bound_inclusive 100.0))
        (fun xs ->
          let s = Metrics.Stats.create () in
          List.iter (Metrics.Stats.add s) xs;
          Metrics.Stats.percentile s 25.0 <= Metrics.Stats.percentile s 75.0);
      QCheck2.Test.make
        ~name:"sketch quantiles within stated bound of exact percentiles"
        ~count:200
        QCheck2.Gen.(list_size (int_range 1 400) (int_range 0 50_000_000))
        (fun vs ->
          let sk = Metrics.Sketch.create () in
          let st = Metrics.Stats.create () in
          List.iter
            (fun v ->
              Metrics.Sketch.add_int sk v;
              Metrics.Stats.add st (float_of_int v))
            vs;
          List.for_all
            (fun p ->
              sketch_bound_ok
                ~exact:(Metrics.Stats.percentile st p)
                ~est:(Metrics.Sketch.quantile sk p))
            [ 50.0; 95.0; 99.0 ]);
      QCheck2.Test.make ~name:"sketch merge commutative and pooled"
        ~count:150
        QCheck2.Gen.(
          pair
            (list_size (int_range 1 120) (int_range 0 5_000_000))
            (list_size (int_range 1 120) (int_range 0 5_000_000)))
        (fun (xs, ys) ->
          let sk_of vs =
            let sk = Metrics.Sketch.create () in
            List.iter (Metrics.Sketch.add_int sk) vs;
            sk
          in
          let pooled = sk_of (xs @ ys) in
          let m12 = Metrics.Sketch.merged [ sk_of xs; sk_of ys ] in
          let m21 = Metrics.Sketch.merged [ sk_of ys; sk_of xs ] in
          List.for_all
            (fun p ->
              let e = Metrics.Sketch.quantile pooled p in
              Metrics.Sketch.quantile m12 p = e
              && Metrics.Sketch.quantile m21 p = e)
            [ 50.0; 95.0; 99.0 ]);
    ]

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int_in bounds", `Quick, test_rng_int_in);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("rng bool balance", `Quick, test_rng_bool_balance);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng bytes", `Quick, test_rng_bytes);
    ("dist uniform bounds", `Quick, test_dist_uniform_bounds);
    ("dist uniform coverage", `Quick, test_dist_uniform_coverage);
    ("dist zipf skew", `Quick, test_dist_zipf_skew);
    ("dist scrambled zipf spread", `Quick, test_dist_scrambled_zipf_spread);
    ("dist hotspot", `Quick, test_dist_hotspot);
    ("dist describe", `Quick, test_dist_describe);
    ("stats mean/stddev", `Quick, test_stats_mean_stddev);
    ("stats empty", `Quick, test_stats_empty);
    ("stats min/max", `Quick, test_stats_minmax);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats summary", `Quick, test_stats_summary);
    ("stats summary empty", `Quick, test_stats_summary_empty);
    ("stats summary single sample", `Quick, test_stats_summary_single);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats histogram", `Quick, test_stats_histogram);
    ("counters basic", `Quick, test_counters_basic);
    ("counters snapshot/reset", `Quick, test_counters_snapshot_reset);
    ("counters cell identity", `Quick, test_counters_cell_identity);
    ("counters cells survive reset", `Quick, test_counters_cells_survive_reset);
    ("counters snapshot sees cells", `Quick, test_counters_snapshot_sees_cells);
    ("clock charge/span/reset", `Quick, test_clock_charge);
    ("clock seconds", `Quick, test_clock_seconds);
    ("cost model derived", `Quick, test_cost_model_derived);
    ("sketch vs exact: uniform", `Quick, test_sketch_uniform);
    ("sketch vs exact: heavy tail", `Quick, test_sketch_heavy_tail);
    ("sketch vs exact: constant", `Quick, test_sketch_constant);
    ("sketch exact below 64", `Quick, test_sketch_small_values_exact);
    ("sketch side stats exact", `Quick, test_sketch_side_stats_exact);
    ("sketch empty", `Quick, test_sketch_empty);
    ("sketch merge is pooled", `Quick, test_sketch_merge_is_pooled);
  ]
  @ qcheck_cases
