(* Tests for the harness: system wiring, address-space carving,
   measurement, and the report formatters. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_reserve_carving () =
  let sys = Helpers.autarky_system ~enclave_pages:64 () in
  let a = Harness.System.reserve sys ~pages:10 in
  let b = Harness.System.reserve sys ~pages:10 in
  checki "contiguous" (a + 10) b;
  checkb "within enclave" true
    (Sgx.Enclave.contains_vpage (Harness.System.enclave sys) a);
  checkb "exhaustion detected" true
    (try ignore (Harness.System.reserve sys ~pages:1_000); false
     with Invalid_argument _ -> true)

let test_allocator_region () =
  let sys = Helpers.autarky_system () in
  let heap = Harness.System.allocator sys ~pages:32 ~cluster_pages:4 in
  let p = Autarky.Allocator.alloc_page heap in
  checkb "allocates inside enclave" true
    (Sgx.Enclave.contains_vpage (Harness.System.enclave sys) p);
  checkb "clusters registry shared" true
    (Autarky.Clusters.registered (Harness.System.clusters_of heap) p)

let test_vm_routes_to_cpu () =
  let sys = Helpers.autarky_system () in
  let b = Harness.System.reserve sys ~pages:1 in
  let vm = Harness.System.vm sys () in
  vm.Workloads.Vm.read (b * Sgx.Types.page_bytes);
  checkb "tlb miss recorded" true
    (Metrics.Counters.get (Harness.System.counters sys) "mmu.tlb_miss" > 0)

let test_vm_instrument_override () =
  let sys = Helpers.autarky_system () in
  let hits = ref 0 in
  let vm = Harness.System.vm sys ~instrument:(fun _ _ -> incr hits) () in
  vm.Workloads.Vm.read 0;
  vm.Workloads.Vm.write 0;
  vm.Workloads.Vm.exec 0;
  checki "all three routed" 3 !hits

let test_vm_compute_charges () =
  let sys = Helpers.autarky_system () in
  let vm = Harness.System.vm sys () in
  let before = Metrics.Clock.now (Harness.System.clock sys) in
  vm.Workloads.Vm.compute 12345;
  checki "charged" (before + 12345) (Metrics.Clock.now (Harness.System.clock sys))

let test_pin_makes_resident () =
  let sys = Helpers.autarky_system () in
  let _burn = Harness.System.reserve sys ~pages:128 in
  let b = Harness.System.reserve sys ~pages:8 in
  let pages = List.init 8 (fun i -> b + i) in
  Harness.System.pin sys pages;
  let pager = Autarky.Runtime.pager (Harness.System.runtime_exn sys) in
  checkb "all resident" true (List.for_all (Autarky.Pager.resident pager) pages)

let test_measure_resets_and_counts () =
  let sys = Helpers.autarky_system () in
  let b = Harness.System.reserve sys ~pages:1 in
  let vm = Harness.System.vm sys () in
  (* Pollute the clock, then measure a known phase. *)
  Sgx.Machine.charge (Harness.System.machine sys) 1_000_000;
  let r =
    Harness.Measure.run sys (fun () -> vm.Workloads.Vm.compute 5_000)
  in
  let cm = Metrics.Cost_model.default in
  checki "clock was reset (eenter+eexit+compute)" (cm.eenter + cm.eexit + 5_000)
    r.Harness.Measure.cycles;
  checki "no faults" 0 r.Harness.Measure.page_faults;
  checkb "seconds positive" true (r.Harness.Measure.seconds > 0.0);
  ignore b

let test_measure_throughput_math () =
  let r =
    { Harness.Measure.cycles = 3_900_000_000; seconds = 1.0; page_faults = 50;
      tlb_misses = 0; pages_fetched = 0; pages_evicted = 0; counters = [] }
  in
  checkb "ops/s" true (Harness.Measure.throughput r ~ops:100 = 100.0);
  checkb "faults/s" true (Harness.Measure.fault_rate r = 50.0)

let test_legacy_system_has_no_runtime () =
  let sys = Helpers.legacy_system () in
  checkb "no runtime" true (Harness.System.runtime sys = None);
  checkb "runtime_exn raises" true
    (try ignore (Harness.System.runtime_exn sys); false
     with Invalid_argument _ -> true)

let test_report_formatters () =
  Alcotest.(check string) "pct" "6.30%" (Harness.Report.pct 0.063);
  Alcotest.(check string) "si k" "12.4k" (Harness.Report.si 12_400.0);
  Alcotest.(check string) "si M" "3.50M" (Harness.Report.si 3_500_000.0);
  Alcotest.(check string) "si G" "2.00G" (Harness.Report.si 2e9);
  Alcotest.(check string) "si small" "42.0" (Harness.Report.si 42.0);
  Alcotest.(check string) "f2" "3.14" (Harness.Report.f2 3.14159)

(* --- bench-report schema validation ------------------------------------ *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let mini_fleet2 =
  {|{
  "schema": "autarky-fleet/2",
  "quick": true,
  "root_seed": 7,
  "members": [ {"shard": 0, "seed": 9, "end_cycle": 10, "arbiter_moves": 0} ],
  "tenants": [
    {"name": "kv", "workload": "kvstore", "policy": "clusters",
     "arrivals": 4, "served": 4, "shed": 0, "deadline_missed": 0,
     "throughput_rps": 1.0, "latency_merge": "pooled-sketch",
     "latency_cycles": {"count": 4, "mean": 1.0, "p50": 1.0, "p95": 2.0,
       "p99": 2.0, "max": 2.0}}
  ]
}|}

let test_schema_accepts_valid () =
  match
    Harness.Schema.validate ~ctx:"mini" (Harness.Microjson.of_string mini_fleet2)
  with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es)

let test_schema_rejects_unknown () =
  let doc = {|{"schema": "autarky-mystery/9", "quick": true}|} in
  match Harness.Schema.validate ~ctx:"x" (Harness.Microjson.of_string doc) with
  | Ok () -> Alcotest.fail "unknown schema accepted"
  | Error [ e ] ->
    Alcotest.(check bool) "mentions schema" true
      (contains ~affix:"unknown schema" e)
  | Error es -> Alcotest.failf "expected one error, got %d" (List.length es)

let test_schema_rejects_missing_schema_field () =
  match
    Harness.Schema.validate ~ctx:"x" (Harness.Microjson.of_string {|{"quick": true}|})
  with
  | Ok () -> Alcotest.fail "schemaless document accepted"
  | Error _ -> ()

let test_schema_rejects_missing_row_key () =
  (* Drop a required row key and the validator must name it. *)
  let doc =
    (* Cut the latency_merge key out of the valid document. *)
    let needle = {|"latency_merge": "pooled-sketch",|} in
    let i =
      let n = String.length mini_fleet2 and m = String.length needle in
      let rec go i =
        if i + m > n then -1
        else if String.sub mini_fleet2 i m = needle then i
        else go (i + 1)
      in
      go 0
    in
    String.sub mini_fleet2 0 i
    ^ String.sub mini_fleet2
        (i + String.length needle)
        (String.length mini_fleet2 - i - String.length needle)
  in
  match Harness.Schema.validate ~ctx:"x" (Harness.Microjson.of_string doc) with
  | Ok () -> Alcotest.fail "missing row key accepted"
  | Error es ->
    Alcotest.(check bool) "names the key" true
      (List.exists (fun e -> contains ~affix:"latency_merge" e) es)

let test_schema_rejects_wrong_shape () =
  let doc = {|{"schema": "autarky-fleet/2", "quick": 1, "root_seed": 7,
               "members": [], "tenants": []}|} in
  match Harness.Schema.validate ~ctx:"x" (Harness.Microjson.of_string doc) with
  | Ok () -> Alcotest.fail "bool-typed field accepted as number"
  | Error es ->
    Alcotest.(check bool) "names quick" true
      (List.exists (fun e -> contains ~affix:{|"quick"|} e) es)

let suite =
  [
    ("reserve carving", `Quick, test_reserve_carving);
    ("allocator region", `Quick, test_allocator_region);
    ("vm routes to cpu", `Quick, test_vm_routes_to_cpu);
    ("vm instrument override", `Quick, test_vm_instrument_override);
    ("vm compute charges", `Quick, test_vm_compute_charges);
    ("pin makes resident", `Quick, test_pin_makes_resident);
    ("measure resets and counts", `Quick, test_measure_resets_and_counts);
    ("measure throughput math", `Quick, test_measure_throughput_math);
    ("legacy system has no runtime", `Quick, test_legacy_system_has_no_runtime);
    ("report formatters", `Quick, test_report_formatters);
    ("schema accepts valid report", `Quick, test_schema_accepts_valid);
    ("schema rejects unknown schema", `Quick, test_schema_rejects_unknown);
    ("schema rejects missing schema field", `Quick,
     test_schema_rejects_missing_schema_field);
    ("schema rejects missing row key", `Quick,
     test_schema_rejects_missing_row_key);
    ("schema rejects wrong shape", `Quick, test_schema_rejects_wrong_shape);
  ]
