(* Tests for the untrusted-OS model: enclave setup, demand paging,
   eviction policy, the Autarky system calls, fault handling for legacy
   and self-paging enclaves, and the adversarial manipulation API. *)

open Sgx

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let setup ?(self_paging = false) ?(epc_frames = 64) ?(epc_limit = 32)
    ?(enclave_pages = 48) () =
  let m = Helpers.machine ~epc_frames () in
  let os = Sim_os.Kernel.create m in
  let proc = Sim_os.Kernel.create_proc os ~size_pages:enclave_pages ~self_paging ~epc_limit in
  for i = 0 to enclave_pages - 1 do
    let data = Page_data.create () in
    Page_data.fill_int data (500 + i);
    Sim_os.Kernel.add_initial_page os proc
      ~vpage:((Sim_os.Kernel.enclave proc).base_vpage + i)
      ~data ~perms:Types.perms_rwx
  done;
  Sim_os.Kernel.finalize os proc;
  (m, os, proc)

let cpu_of m os proc =
  Cpu.create ~machine:m ~page_table:(Sim_os.Kernel.page_table proc)
    ~enclave:(Sim_os.Kernel.enclave proc) ~os:(Sim_os.Kernel.os_callbacks os) ()

let vp proc i = (Sim_os.Kernel.enclave proc).Enclave.base_vpage + i
let va proc i = Types.vaddr_of_vpage (vp proc i)

(* --- Setup and residency --------------------------------------------- *)

let test_initial_residency_respects_limit () =
  let _m, os, proc = setup () in
  checki "resident = limit" 32 (Sim_os.Kernel.resident_pages proc);
  checkb "early page resident" true (Sim_os.Kernel.resident os proc (vp proc 0));
  checkb "late page swapped" false (Sim_os.Kernel.resident os proc (vp proc 40));
  checkb "late page has a blob" true
    (Sim_os.Swap_store.mem (Sim_os.Kernel.swap os proc) (vp proc 40))

let test_legacy_demand_paging () =
  let m, os, proc = setup () in
  let cpu = cpu_of m os proc in
  (* Touch a swapped-out page: the OS pages it in transparently. *)
  Cpu.read cpu (va proc 40);
  checkb "page now resident" true (Sim_os.Kernel.resident os proc (vp proc 40));
  checki "content preserved" 540 (Cpu.read_stamp cpu (va proc 40));
  checki "one fault" 1 (Metrics.Counters.get (Machine.counters m) "cpu.page_fault")

let test_legacy_eviction_under_pressure () =
  let m, os, proc = setup () in
  let cpu = cpu_of m os proc in
  (* Touch every page: working set exceeds the 32-frame limit. *)
  for i = 0 to 47 do
    Cpu.read cpu (va proc i)
  done;
  checkb "limit respected" true (Sim_os.Kernel.resident_pages proc <= 32);
  checkb "evictions happened" true
    (Metrics.Counters.get (Machine.counters m) "os.evict" > 0);
  (* Contents survive eviction cycles. *)
  checki "content page 5" 505 (Cpu.read_stamp cpu (va proc 5));
  checki "content page 45" 545 (Cpu.read_stamp cpu (va proc 45))

let test_clock_second_chance () =
  let m, os, proc = setup ~epc_limit:8 ~enclave_pages:16 () in
  let cpu = cpu_of m os proc in
  (* Keep page 0 hot; stream the rest: clock should favour keeping 0. *)
  for i = 1 to 15 do
    Cpu.read cpu (va proc 0);
    Cpu.read cpu (va proc i)
  done;
  checkb "hot page still resident" true (Sim_os.Kernel.resident os proc (vp proc 0));
  ignore m

(* --- Autarky syscalls ------------------------------------------------- *)

let test_set_enclave_managed_reports_residency () =
  let _m, os, proc = setup ~self_paging:true () in
  let statuses =
    Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 0; vp proc 40 ]
  in
  checkb "page 0 resident" true (List.assoc (vp proc 0) statuses);
  checkb "page 40 swapped" false (List.assoc (vp proc 40) statuses)

let test_fetch_evict_pages () =
  let m, os, proc = setup ~self_paging:true () in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 40 ]);
  (match Sim_os.Kernel.ay_fetch_pages os proc [ vp proc 40 ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fetch failed");
  checkb "fetched" true (Sim_os.Kernel.resident os proc (vp proc 40));
  (* PTE must carry preset A/D bits for a self-paging enclave. *)
  (match Sim_os.Kernel.attacker_read_ad os proc (vp proc 40) with
  | Some (a, d) -> checkb "A/D preset" true (a && d)
  | None -> Alcotest.fail "no PTE");
  Sim_os.Kernel.ay_evict_pages os proc [ vp proc 40 ];
  checkb "evicted" false (Sim_os.Kernel.resident os proc (vp proc 40));
  ignore m

let test_enclave_managed_pinned () =
  let _m, os, proc = setup ~self_paging:true ~epc_limit:8 ~enclave_pages:16 () in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 0; vp proc 1 ]);
  (* Force pressure: fetch many other pages as OS-managed. *)
  for i = 8 to 15 do
    match Sim_os.Kernel.page_in_os_managed os proc (vp proc i) with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "page-in failed: %a" Sim_os.Kernel.pp_fetch_error e
  done;
  checkb "pinned page 0 still resident" true
    (Sim_os.Kernel.resident os proc (vp proc 0));
  checkb "pinned page 1 still resident" true
    (Sim_os.Kernel.resident os proc (vp proc 1))

let test_fetch_fails_when_exhausted () =
  let _m, os, proc = setup ~self_paging:true ~epc_limit:8 ~enclave_pages:16 () in
  (* Pin everything resident, leaving no evictable pages. *)
  let all = List.init 8 (fun i -> vp proc i) in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc all);
  match Sim_os.Kernel.ay_fetch_pages os proc [ vp proc 12 ] with
  | Error `Epc_exhausted -> ()
  | Error e ->
    Alcotest.failf "unexpected error: %a" Sim_os.Kernel.pp_fetch_error e
  | Ok () -> Alcotest.fail "fetch should have failed"

let test_aug_remove_pages () =
  let m, os, proc = setup ~self_paging:true () in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 40 ]);
  (match Sim_os.Kernel.ay_aug_pages os proc [ vp proc 40 ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "aug failed");
  checkb "augmented resident" true (Sim_os.Kernel.resident os proc (vp proc 40));
  let enclave = Sim_os.Kernel.enclave proc in
  Instructions.eaccept m enclave ~vpage:(vp proc 40);
  (* Trim + accept, then ask the OS to remove. *)
  Instructions.emodt m enclave ~vpage:(vp proc 40);
  Instructions.eaccept m enclave ~vpage:(vp proc 40);
  Sim_os.Kernel.ay_remove_pages os proc [ vp proc 40 ];
  checkb "removed" false (Sim_os.Kernel.resident os proc (vp proc 40))

let test_blob_store_load () =
  let _m, os, proc = setup ~self_paging:true () in
  let sealer = Sim_crypto.Sealer.create ~master_key:"t" in
  let sealed = Sim_crypto.Sealer.seal sealer ~vaddr:1L ~version:1L (Bytes.make 8 'x') in
  Sim_os.Kernel.blob_store os proc (vp proc 3) sealed;
  (match Sim_os.Kernel.blob_load os proc (vp proc 3) with
  | Some s -> checkb "same blob" true (s.Sim_crypto.Sealer.mac = sealed.mac)
  | None -> Alcotest.fail "blob lost");
  checkb "load consumes" true (Sim_os.Kernel.blob_load os proc (vp proc 3) = None)

let test_syscall_charges () =
  let m, os, proc = setup ~self_paging:true () in
  let before = Metrics.Clock.now Machine.(m.clock) in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 0 ]);
  let cm = Machine.model m in
  checkb "one exitless call charged" true
    (Metrics.Clock.now m.clock - before >= cm.exitless_call)

(* --- Fault handling paths --------------------------------------------- *)

let test_selfpaging_fault_forces_handler () =
  let m, os, proc = setup ~self_paging:true () in
  let enclave = Sim_os.Kernel.enclave proc in
  let handler_ran = ref false in
  enclave.entry <-
    (fun e ->
      handler_ran := true;
      (* Service the miss like a runtime would: fetch the page. *)
      let sf = Stack.top e.Enclave.tcs.ssa in
      let faulted = Types.vpage_of_vaddr sf.Types.sf_vaddr in
      match Sim_os.Kernel.ay_fetch_pages os proc [ faulted ] with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "fetch failed");
  let cpu = cpu_of m os proc in
  Cpu.read cpu (va proc 40);
  checkb "handler ran" true !handler_ran;
  checkb "silent resume was blocked" true
    (Metrics.Counters.get (Machine.counters m) "os.silent_resume_blocked" > 0)

let test_legacy_silent_resume_counter () =
  let m, os, proc = setup () in
  (Sim_os.Kernel.hooks os).on_fault <-
    (fun p report ->
      Sim_os.Kernel.attacker_restore os p
        (Types.vpage_of_vaddr report.Types.fr_vaddr);
      Sim_os.Kernel.Fixed_silently);
  let cpu = cpu_of m os proc in
  Sim_os.Kernel.attacker_unmap os proc (vp proc 3);
  Cpu.read cpu (va proc 3);
  checki "silently resumed" 1
    (Metrics.Counters.get (Machine.counters m) "os.silent_resume")

(* --- Adversarial API --------------------------------------------------- *)

let test_attacker_unmap_restore () =
  let m, os, proc = setup () in
  let cpu = cpu_of m os proc in
  Cpu.read cpu (va proc 2);
  Sim_os.Kernel.attacker_unmap os proc (vp proc 2);
  checkb "pte not present" false
    (Page_table.present (Sim_os.Kernel.page_table proc) (vp proc 2));
  Sim_os.Kernel.attacker_restore os proc (vp proc 2);
  checkb "restored" true
    (Page_table.present (Sim_os.Kernel.page_table proc) (vp proc 2))

let test_attacker_ad_reading () =
  let m, os, proc = setup () in
  let cpu = cpu_of m os proc in
  Sim_os.Kernel.attacker_clear_accessed os proc (vp proc 1);
  Cpu.read cpu (va proc 1);
  (match Sim_os.Kernel.attacker_read_ad os proc (vp proc 1) with
  | Some (a, _) -> checkb "access observed" true a
  | None -> Alcotest.fail "no PTE");
  ignore m

let test_attacker_evict_breaks_contract () =
  let _m, os, proc = setup ~self_paging:true () in
  ignore (Sim_os.Kernel.ay_set_enclave_managed os proc [ vp proc 0 ]);
  Sim_os.Kernel.attacker_evict os proc (vp proc 0);
  checkb "forcibly evicted" false (Sim_os.Kernel.resident os proc (vp proc 0))

let suite =
  [
    ("initial residency respects limit", `Quick, test_initial_residency_respects_limit);
    ("legacy demand paging", `Quick, test_legacy_demand_paging);
    ("legacy eviction under pressure", `Quick, test_legacy_eviction_under_pressure);
    ("clock second chance", `Quick, test_clock_second_chance);
    ("set_enclave_managed reports residency", `Quick,
     test_set_enclave_managed_reports_residency);
    ("ay_fetch/evict pages", `Quick, test_fetch_evict_pages);
    ("enclave-managed pages pinned", `Quick, test_enclave_managed_pinned);
    ("fetch fails when exhausted", `Quick, test_fetch_fails_when_exhausted);
    ("ay_aug/remove pages", `Quick, test_aug_remove_pages);
    ("blob store/load", `Quick, test_blob_store_load);
    ("syscall charges", `Quick, test_syscall_charges);
    ("self-paging fault forces handler", `Quick, test_selfpaging_fault_forces_handler);
    ("legacy silent resume", `Quick, test_legacy_silent_resume_counter);
    ("attacker unmap/restore", `Quick, test_attacker_unmap_restore);
    ("attacker A/D reading", `Quick, test_attacker_ad_reading);
    ("attacker evict breaks contract", `Quick, test_attacker_evict_breaks_contract);
  ]
