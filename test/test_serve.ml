(* Tests for the virtual-time serving subsystem: event ordering,
   fixed-seed determinism, admission accounting, SLO isolation of
   well-behaved tenants from an overloaded neighbour, and the
   restart-monitor cutoff under hypervisor-attack churn. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- event queue ------------------------------------------------------- *)

let test_event_queue_ordering () =
  let q = Serve.Event_queue.create () in
  List.iter (fun at -> Serve.Event_queue.push q ~at at)
    [ 30; 5; 17; 5; 90; 1; 17; 17 ];
  checki "length" 8 (Serve.Event_queue.length q);
  checkb "peek is minimum" true (Serve.Event_queue.peek_time q = Some 1);
  let popped = ref [] in
  let rec drain () =
    if Serve.Event_queue.pop q then begin
      checki "payload equals time"
        (Serve.Event_queue.popped_at q)
        (Serve.Event_queue.popped_payload q);
      popped := Serve.Event_queue.popped_at q :: !popped;
      drain ()
    end
  in
  drain ();
  checkb "sorted" true
    (List.rev !popped = [ 1; 5; 5; 17; 17; 17; 30; 90 ]);
  checkb "empty after drain" true (Serve.Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  (* Simultaneous events pop in push order (the determinism tie-break). *)
  let q = Serve.Event_queue.create () in
  List.iter (fun tag -> Serve.Event_queue.push q ~at:7 tag) [ 10; 11; 12; 13 ];
  let order = ref [] in
  let rec drain () =
    if Serve.Event_queue.pop q then begin
      order := Serve.Event_queue.popped_payload q :: !order;
      drain ()
    end
  in
  drain ();
  checkb "fifo among ties" true (List.rev !order = [ 10; 11; 12; 13 ])

(* --- scenarios --------------------------------------------------------- *)

(* A small two-tenant scenario that runs in well under a second. *)
let small_cfgs ?(hash_load = 2.5) ?(hash_requests = 120)
    ?(hash_deadline = Some 12.0) () =
  [
    {
      Serve.Tenant.name = "kv";
      workload = Serve.Tenant.Kvstore;
      policy = Serve.Tenant.Clusters;
      partition_frames = 192;
      epc_limit = 160;
      enclave_pages = 512;
      heap_pages = 256;
      generator = Serve.Tenant.Open_loop { load = 0.5 };
      queue_capacity = 16;
      deadline = None;
      requests = 80;
      arrive_after = 0;
      depart_after = None;
    };
    {
      Serve.Tenant.name = "hash";
      workload = Serve.Tenant.Uthash;
      policy = Serve.Tenant.Rate_limit;
      partition_frames = 160;
      epc_limit = 96;
      enclave_pages = 512;
      heap_pages = 256;
      generator = Serve.Tenant.Open_loop { load = hash_load };
      queue_capacity = 8;
      deadline = hash_deadline;
      requests = hash_requests;
      arrive_after = 0;
      depart_after = None;
    };
  ]

let params ?(seed = 11) ?arbiter ?attack ?(max_restarts = 3) () =
  let p = Serve.Engine.default_params ~seed in
  {
    p with
    Serve.Engine.p_spare_frames = 64;
    p_calibration = 8;
    p_max_restarts = max_restarts;
    p_arbiter = arbiter;
    p_attack = attack;
  }

let test_fixed_seed_determinism () =
  let run () =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  let r1 = run () and r2 = run () in
  checks "identical reports" (Serve.Driver.to_json r1) (Serve.Driver.to_json r2);
  checkb "digest present" true (r1.Serve.Driver.rp_digest <> None);
  checks "identical trace digests"
    (Option.get r1.Serve.Driver.rp_digest)
    (Option.get r2.Serve.Driver.rp_digest)

let test_admission_accounting () =
  let r =
    Serve.Driver.run_scenario ~quick:true ~params:(params ()) (small_cfgs ())
  in
  List.iter
    (fun t ->
      checki
        (t.Serve.Driver.tr_name ^ ": verdicts partition arrivals")
        t.Serve.Driver.tr_arrivals
        (t.Serve.Driver.tr_served + t.Serve.Driver.tr_shed
       + t.Serve.Driver.tr_missed);
      checki
        (t.Serve.Driver.tr_name ^ ": every arrival generated")
        t.Serve.Driver.tr_arrivals
        (if t.Serve.Driver.tr_name = "kv" then 80 else 120);
      checki
        (t.Serve.Driver.tr_name ^ ": latency samples = served")
        t.Serve.Driver.tr_served
        t.Serve.Driver.tr_latency.Metrics.Stats.s_count)
    r.Serve.Driver.rp_tenants

let test_overload_sheds_neighbour_keeps_slo () =
  (* The overloaded tenant sheds; the well-behaved tenant's p99 stays
     within 2x of what it sees with no overloaded neighbour at all. *)
  let loaded =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  let unloaded =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ~hash_load:0.3 ~hash_requests:40 ())
  in
  let find name r =
    List.find (fun t -> t.Serve.Driver.tr_name = name) r.Serve.Driver.rp_tenants
  in
  let hash = find "hash" loaded in
  checkb "overloaded tenant sheds" true
    (hash.Serve.Driver.tr_shed + hash.Serve.Driver.tr_missed > 0);
  let kv_loaded = find "kv" loaded and kv_unloaded = find "kv" unloaded in
  checki "well-behaved tenant serves everything" kv_loaded.Serve.Driver.tr_arrivals
    kv_loaded.Serve.Driver.tr_served;
  let p99l = kv_loaded.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
  let p99u = kv_unloaded.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
  if p99l > 2.0 *. p99u then
    Alcotest.failf "kv p99 %.0f exceeds 2x unloaded p99 %.0f" p99l p99u

let test_arbiter_moves_frames_toward_pressure () =
  let r =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  checkb "arbiter acted" true (r.Serve.Driver.rp_arbiter_moves > 0);
  let hash =
    List.find (fun t -> t.Serve.Driver.tr_name = "hash") r.Serve.Driver.rp_tenants
  in
  checkb "pressured tenant gained frames" true
    (hash.Serve.Driver.tr_balloon_in_frames > 0);
  checkb "pressured tenant partition grew" true
    (hash.Serve.Driver.tr_partition_end > 160)

(* Satellite: restart churn under serving.  A hypervisor that keeps
   transparently evicting the victim's pages forces repeated detected
   terminations; the restart monitor allows a bounded number of attested
   restarts and then refuses — from that point every arrival sheds, and
   the co-tenant is unaffected. *)
let test_restart_monitor_refuses_churning_tenant () =
  let r =
    Serve.Driver.run_scenario ~quick:true
      ~params:
        (params ~max_restarts:1
           ~attack:{ Serve.Engine.atk_victim = "hash"; atk_every = 3 }
           ())
      (* No deadline: the victim's post-restart backlog must still execute
         (and keep getting attacked) rather than time out untouched. *)
      (small_cfgs ~hash_requests:160 ~hash_deadline:None ())
  in
  let find name =
    List.find (fun t -> t.Serve.Driver.tr_name = name) r.Serve.Driver.rp_tenants
  in
  let hash = find "hash" in
  checkb "victim terminated repeatedly" true
    (hash.Serve.Driver.tr_terminations > 1);
  checkb "restarts bounded by monitor" true (hash.Serve.Driver.tr_restarts <= 1);
  checkb "victim refused re-admission" true hash.Serve.Driver.tr_refused;
  checkb "post-refusal arrivals shed" true
    (hash.Serve.Driver.tr_shed > hash.Serve.Driver.tr_terminations);
  checki "verdicts still partition arrivals" hash.Serve.Driver.tr_arrivals
    (hash.Serve.Driver.tr_served + hash.Serve.Driver.tr_shed
   + hash.Serve.Driver.tr_missed);
  let kv = find "kv" in
  checkb "co-tenant unaffected" true (not kv.Serve.Driver.tr_refused);
  checki "co-tenant serves everything" kv.Serve.Driver.tr_arrivals
    kv.Serve.Driver.tr_served

(* --- admission ring ---------------------------------------------------- *)

let test_ring_fifo () =
  let r = Serve.Ring.create ~capacity:3 in
  checkb "empty" true (Serve.Ring.is_empty r);
  Serve.Ring.push r 10;
  Serve.Ring.push r 20;
  Serve.Ring.push r 30;
  checkb "full" true (Serve.Ring.is_full r);
  checkb "push on full raises" true
    (match Serve.Ring.push r 40 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checki "peek head" 10 (Serve.Ring.peek r);
  checki "pop fifo" 10 (Serve.Ring.pop r);
  Serve.Ring.push r 40;  (* wraps around the fixed slots *)
  checki "order kept across wrap" 20 (Serve.Ring.pop r);
  checki "order kept across wrap 2" 30 (Serve.Ring.pop r);
  checki "order kept across wrap 3" 40 (Serve.Ring.pop r);
  checkb "pop on empty raises" true
    (match Serve.Ring.pop r with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Serve.Ring.push r 1;
  Serve.Ring.clear r;
  checkb "clear empties" true (Serve.Ring.is_empty r);
  checkb "capacity validated" true
    (match Serve.Ring.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- allocation-free hot paths ----------------------------------------- *)

(* Steady-state push/pop on the int-packed structures must not allocate:
   warm the structure past any growth, then measure a long churn. *)
let test_hot_paths_allocation_free () =
  let q = Serve.Event_queue.create () in
  (* Warm the backing array to its steady-state depth first: growth is
     the only allowed allocation. *)
  for i = 1 to 1_024 do Serve.Event_queue.push q ~at:i i done;
  let a0 = Gc.allocated_bytes () in
  for i = 1 to 10_000 do
    ignore (Serve.Event_queue.pop q);
    Serve.Event_queue.push q ~at:(1_024 + i) i
  done;
  while Serve.Event_queue.pop q do () done;
  let a1 = Gc.allocated_bytes () in
  if a1 -. a0 > 128.0 then
    Alcotest.failf "event queue allocated %.0f bytes over 10k ops" (a1 -. a0);
  let r = Serve.Ring.create ~capacity:64 in
  let b0 = Gc.allocated_bytes () in
  for i = 1 to 10_000 do
    Serve.Ring.push r i;
    ignore (Serve.Ring.pop r)
  done;
  let b1 = Gc.allocated_bytes () in
  if b1 -. b0 > 128.0 then
    Alcotest.failf "ring allocated %.0f bytes over 10k ops" (b1 -. b0);
  let sk = Metrics.Sketch.create () in
  Metrics.Sketch.add_int sk 1;
  let c0 = Gc.allocated_bytes () in
  for i = 1 to 10_000 do Metrics.Sketch.add_int sk (i * 97) done;
  let c1 = Gc.allocated_bytes () in
  if c1 -. c0 > 128.0 then
    Alcotest.failf "sketch add_int allocated %.0f bytes over 10k ops" (c1 -. c0)

(* Per-served-request allocation of the whole engine loop, measured
   differentially (two runs of the same scenario, different request
   counts) so boot/calibration/report costs cancel out.  The measured
   value (~9.1 kB/request) is dominated by the simulated enclave
   workload body — kvstore hashing and MMU walks allocate on their own
   account; the serving machinery around it (event queue, admission
   ring, sketch) contributes zero, as the preceding test shows.  The
   bound exists to catch regressions that reintroduce per-event boxing
   in the engine loop on top of that floor. *)
let test_request_path_allocation_bounded () =
  let run requests =
    let cfgs =
      [ { (List.hd (small_cfgs ())) with Serve.Tenant.requests; name = "kv" } ]
    in
    let params =
      { (params ()) with Serve.Engine.p_trace = false; p_sketch = true }
    in
    let a0 = Gc.allocated_bytes () in
    ignore (Serve.Driver.run_scenario ~quick:true ~params cfgs);
    Gc.allocated_bytes () -. a0
  in
  ignore (run 50);  (* warm any lazy initialisation *)
  let small = run 200 in
  let large = run 1_000 in
  let per_request = (large -. small) /. 800.0 in
  if per_request > 12_000.0 then
    Alcotest.failf "served-request path allocates %.0f bytes/request"
      per_request

(* --- sketch-mode accounting -------------------------------------------- *)

let test_sketch_mode_matches_exact_counts () =
  let run sketch =
    Serve.Driver.run_scenario ~quick:true
      ~params:{ (params ()) with Serve.Engine.p_sketch = sketch }
      (small_cfgs ())
  in
  let exact = run false and sk = run true in
  List.iter2
    (fun e s ->
      checki (e.Serve.Driver.tr_name ^ ": arrivals agree")
        e.Serve.Driver.tr_arrivals s.Serve.Driver.tr_arrivals;
      checki (e.Serve.Driver.tr_name ^ ": served agree")
        e.Serve.Driver.tr_served s.Serve.Driver.tr_served;
      checki (e.Serve.Driver.tr_name ^ ": shed agree") e.Serve.Driver.tr_shed
        s.Serve.Driver.tr_shed;
      checks (e.Serve.Driver.tr_name ^ ": methods label backends") "exact"
        e.Serve.Driver.tr_latency_method;
      checks (s.Serve.Driver.tr_name ^ ": methods label backends") "sketch"
        s.Serve.Driver.tr_latency_method;
      checkb (e.Serve.Driver.tr_name ^ ": sketch present") true
        (s.Serve.Driver.tr_sketch <> None);
      let ep = e.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
      let sp = s.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
      checkb (e.Serve.Driver.tr_name ^ ": p99 within sketch bound") true
        (sp >= ep
        && sp <= (ep *. (1.0 +. Metrics.Sketch.relative_error)) +. 1.0))
    exact.Serve.Driver.rp_tenants sk.Serve.Driver.rp_tenants

let test_serve1_json_unchanged_by_flag_default () =
  (* p_sketch defaults to false: the autarky-serve/1 report of the
     default engine must not change shape or values vs an explicit
     exact run. *)
  let r1 =
    Serve.Driver.run_scenario ~quick:true ~params:(params ()) (small_cfgs ())
  in
  let r2 =
    Serve.Driver.run_scenario ~quick:true
      ~params:{ (params ()) with Serve.Engine.p_sketch = false }
      (small_cfgs ())
  in
  checks "identical serve/1 JSON" (Serve.Driver.to_json r1)
    (Serve.Driver.to_json r2)

(* --- new generators in the engine --------------------------------------- *)

let test_heavy_tail_and_diurnal_deterministic () =
  let cfgs =
    [
      { (List.hd (small_cfgs ())) with
        Serve.Tenant.name = "par";
        generator = Serve.Tenant.Heavy_tail { load = 0.8; alpha = 1.5 };
        requests = 120;
      };
      { (List.nth (small_cfgs ()) 1) with
        Serve.Tenant.name = "dirn";
        generator = Serve.Tenant.Diurnal { load = 0.7; depth = 0.6; period = 200.0 };
        requests = 120;
        deadline = None;
      };
    ]
  in
  let run () = Serve.Driver.run_scenario ~quick:true ~params:(params ()) cfgs in
  let r1 = run () and r2 = run () in
  checks "identical reports" (Serve.Driver.to_json r1) (Serve.Driver.to_json r2);
  List.iter
    (fun t ->
      checki
        (t.Serve.Driver.tr_name ^ ": verdicts partition arrivals")
        t.Serve.Driver.tr_arrivals
        (t.Serve.Driver.tr_served + t.Serve.Driver.tr_shed
       + t.Serve.Driver.tr_missed);
      checki (t.Serve.Driver.tr_name ^ ": every arrival generated") 120
        t.Serve.Driver.tr_arrivals)
    r1.Serve.Driver.rp_tenants

(* --- tenant churn ------------------------------------------------------- *)

let churn_cfgs () =
  [
    List.hd (small_cfgs ());
    { (List.nth (small_cfgs ~hash_load:0.8 ~hash_deadline:None ()) 1) with
      Serve.Tenant.name = "late";
      arrive_after = 400_000;
      requests = 60;
    };
    { (List.hd (small_cfgs ())) with
      Serve.Tenant.name = "gone";
      workload = Serve.Tenant.Uthash;
      generator = Serve.Tenant.Open_loop { load = 1.0 };
      requests = 500;
      depart_after = Some 1_000_000;
    };
  ]

let test_churn_join_and_depart () =
  let r =
    Serve.Driver.run_scenario ~quick:true ~params:(params ()) (churn_cfgs ())
  in
  let find name =
    List.find (fun t -> t.Serve.Driver.tr_name = name) r.Serve.Driver.rp_tenants
  in
  let late = find "late" in
  checkb "joiner paid a cold start" true (late.Serve.Driver.tr_boot_cycles > 0);
  checki "joiner generated its full stream" 60 late.Serve.Driver.tr_arrivals;
  checki "joiner accounting conserves" late.Serve.Driver.tr_arrivals
    (late.Serve.Driver.tr_served + late.Serve.Driver.tr_shed
   + late.Serve.Driver.tr_missed);
  checkb "run extends past the join" true
    (r.Serve.Driver.rp_end_cycle
    > late.Serve.Driver.tr_arrive_after + late.Serve.Driver.tr_boot_cycles);
  let gone = find "gone" in
  checkb "departer left" true gone.Serve.Driver.tr_departed;
  checkb "departer arrivals truncated uncounted" true
    (gone.Serve.Driver.tr_arrivals < 500);
  checki "departer accounting conserves" gone.Serve.Driver.tr_arrivals
    (gone.Serve.Driver.tr_served + gone.Serve.Driver.tr_shed
   + gone.Serve.Driver.tr_missed);
  let kv = find "kv" in
  checki "steady tenant unaffected" kv.Serve.Driver.tr_arrivals
    kv.Serve.Driver.tr_served

let test_churn_deterministic () =
  let run () =
    Serve.Driver.run_scenario ~quick:true ~params:(params ()) (churn_cfgs ())
  in
  let r1 = run () and r2 = run () in
  checks "identical churn reports" (Serve.Driver.to_json r1)
    (Serve.Driver.to_json r2)

let test_churn_join_goes_through_monitor () =
  (* A parked tenant's cold start goes through the restart monitor like
     any other attested start: with the budget squeezed to one start
     per tenant while an attack churns the victim, the late joiner
     still books exactly its own join and conserves its arrivals. *)
  let cfgs =
    [
      List.hd (small_cfgs ());
      { (List.nth (small_cfgs ~hash_requests:160 ~hash_deadline:None ()) 1) with
        Serve.Tenant.arrive_after = 0;
      };
      { (List.nth (small_cfgs ~hash_load:0.8 ~hash_deadline:None ()) 1) with
        Serve.Tenant.name = "late";
        arrive_after = 400_000;
        requests = 40;
      };
    ]
  in
  let r =
    Serve.Driver.run_scenario ~quick:true
      ~params:
        (params ~max_restarts:1
           ~attack:{ Serve.Engine.atk_victim = "hash"; atk_every = 3 }
           ())
      cfgs
  in
  let late =
    List.find (fun t -> t.Serve.Driver.tr_name = "late") r.Serve.Driver.rp_tenants
  in
  (* The monitor allowed one start for "late" (its join); its arrivals
     still partition exactly. *)
  checkb "join was attested (cold-start charged)" true
    (late.Serve.Driver.tr_boot_cycles > 0);
  checki "late accounting conserves" late.Serve.Driver.tr_arrivals
    (late.Serve.Driver.tr_served + late.Serve.Driver.tr_shed
   + late.Serve.Driver.tr_missed)

(* --- fleet scale --------------------------------------------------------- *)

let test_fleet_scale_report () =
  let fs =
    Serve.Driver.run_fleet_scale ~quick:true ~seed:5 ~tenants:12 ~jobs:1
      ~print:false ()
  in
  checki "tenant rows" 12 (List.length fs.Serve.Driver.fs_rows);
  checki "conservation" fs.Serve.Driver.fs_arrivals
    (fs.Serve.Driver.fs_served + fs.Serve.Driver.fs_shed
   + fs.Serve.Driver.fs_missed);
  checks "pooled sketch roll-up" "pooled-sketch" fs.Serve.Driver.fs_latency_method;
  checkb "churn happened" true
    (fs.Serve.Driver.fs_joins > 0 && fs.Serve.Driver.fs_departures > 0);
  checkb "cold starts charged" true (fs.Serve.Driver.fs_boot_cycles_total > 0);
  List.iter
    (fun t ->
      checks (t.Serve.Driver.tr_name ^ ": sketch accounting") "sketch"
        t.Serve.Driver.tr_latency_method)
    fs.Serve.Driver.fs_rows;
  (* The roll-up count equals the summed served requests. *)
  checki "fleet latency counts served"
    fs.Serve.Driver.fs_served
    fs.Serve.Driver.fs_fleet_latency.Metrics.Stats.s_count

let test_fleet_scale_jobs_invariant () =
  let run jobs =
    Serve.Driver.fleet_scale_to_json
      (Serve.Driver.run_fleet_scale ~quick:true ~seed:5 ~tenants:12 ~jobs
         ~print:false ())
  in
  checks "byte-identical at jobs 1 vs 3" (run 1) (run 3)

let test_fleet_scale_json_validates () =
  let fs =
    Serve.Driver.run_fleet_scale ~quick:true ~seed:5 ~tenants:6 ~jobs:1
      ~print:false ()
  in
  match
    Harness.Schema.validate ~ctx:"serve2"
      (Harness.Microjson.of_string (Serve.Driver.fleet_scale_to_json fs))
  with
  | Ok () -> ()
  | Error es -> Alcotest.failf "serve/2 JSON invalid: %s" (String.concat "; " es)

let test_check_gate_round_trip () =
  (* A baseline written by the quick fleet-scale run must pass its own
     gate (drift 0), and a corrupted one must fail the exact layer. *)
  let file = Filename.temp_file "serve_check" ".json" in
  let fs =
    Serve.Driver.run_fleet_scale ~quick:true ~seed:5 ~tenants:6 ~jobs:1
      ~out:file ~print:false ()
  in
  ignore fs;
  checkb "self-check passes" true
    (Serve.Driver.check ~baseline:file ~tolerance:0.01 ());
  (* Break conservation in the totals. *)
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let broken =
    Str.global_replace (Str.regexp {|"served": [0-9]+,|}) {|"served": 1,|} s
  in
  let oc = open_out file in
  output_string oc broken;
  close_out oc;
  checkb "corrupt baseline fails" false
    (Serve.Driver.check ~baseline:file ~tolerance:0.01 ());
  Sys.remove file

let suite =
  [
    ("event queue orders by time", `Quick, test_event_queue_ordering);
    ("event queue breaks ties FIFO", `Quick, test_event_queue_fifo_ties);
    ("fixed-seed determinism", `Quick, test_fixed_seed_determinism);
    ("admission accounting", `Quick, test_admission_accounting);
    ("overload sheds, neighbour keeps SLO", `Quick,
     test_overload_sheds_neighbour_keeps_slo);
    ("arbiter moves frames toward pressure", `Quick,
     test_arbiter_moves_frames_toward_pressure);
    ("restart monitor refuses churning tenant", `Quick,
     test_restart_monitor_refuses_churning_tenant);
    ("ring is a bounded fifo", `Quick, test_ring_fifo);
    ("hot paths allocation-free", `Quick, test_hot_paths_allocation_free);
    ("request path allocation bounded", `Quick,
     test_request_path_allocation_bounded);
    ("sketch mode matches exact counts", `Quick,
     test_sketch_mode_matches_exact_counts);
    ("serve/1 json unchanged by flag default", `Quick,
     test_serve1_json_unchanged_by_flag_default);
    ("heavy-tail and diurnal deterministic", `Quick,
     test_heavy_tail_and_diurnal_deterministic);
    ("churn join and depart", `Quick, test_churn_join_and_depart);
    ("churn deterministic", `Quick, test_churn_deterministic);
    ("churn join goes through monitor", `Quick,
     test_churn_join_goes_through_monitor);
    ("fleet-scale report", `Quick, test_fleet_scale_report);
    ("fleet-scale jobs invariant", `Quick, test_fleet_scale_jobs_invariant);
    ("fleet-scale json validates", `Quick, test_fleet_scale_json_validates);
    ("check gate round trip", `Quick, test_check_gate_round_trip);
  ]
