(* Tests for the virtual-time serving subsystem: event ordering,
   fixed-seed determinism, admission accounting, SLO isolation of
   well-behaved tenants from an overloaded neighbour, and the
   restart-monitor cutoff under hypervisor-attack churn. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- event queue ------------------------------------------------------- *)

let test_event_queue_ordering () =
  let q = Serve.Event_queue.create () in
  List.iter (fun at -> Serve.Event_queue.push q ~at at)
    [ 30; 5; 17; 5; 90; 1; 17; 17 ];
  checki "length" 8 (Serve.Event_queue.length q);
  checkb "peek is minimum" true (Serve.Event_queue.peek_time q = Some 1);
  let popped = ref [] in
  let rec drain () =
    match Serve.Event_queue.pop q with
    | None -> ()
    | Some (at, v) ->
      checki "payload equals time" at v;
      popped := at :: !popped;
      drain ()
  in
  drain ();
  checkb "sorted" true
    (List.rev !popped = [ 1; 5; 5; 17; 17; 17; 30; 90 ]);
  checkb "empty after drain" true (Serve.Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  (* Simultaneous events pop in push order (the determinism tie-break). *)
  let q = Serve.Event_queue.create () in
  List.iteri (fun i tag -> ignore i; Serve.Event_queue.push q ~at:7 tag)
    [ "a"; "b"; "c"; "d" ];
  let order = ref [] in
  let rec drain () =
    match Serve.Event_queue.pop q with
    | None -> ()
    | Some (_, v) -> order := v :: !order; drain ()
  in
  drain ();
  checkb "fifo among ties" true (List.rev !order = [ "a"; "b"; "c"; "d" ])

(* --- scenarios --------------------------------------------------------- *)

(* A small two-tenant scenario that runs in well under a second. *)
let small_cfgs ?(hash_load = 2.5) ?(hash_requests = 120)
    ?(hash_deadline = Some 12.0) () =
  [
    {
      Serve.Tenant.name = "kv";
      workload = Serve.Tenant.Kvstore;
      policy = Serve.Tenant.Clusters;
      partition_frames = 192;
      epc_limit = 160;
      enclave_pages = 512;
      heap_pages = 256;
      generator = Serve.Tenant.Open_loop { load = 0.5 };
      queue_capacity = 16;
      deadline = None;
      requests = 80;
    };
    {
      Serve.Tenant.name = "hash";
      workload = Serve.Tenant.Uthash;
      policy = Serve.Tenant.Rate_limit;
      partition_frames = 160;
      epc_limit = 96;
      enclave_pages = 512;
      heap_pages = 256;
      generator = Serve.Tenant.Open_loop { load = hash_load };
      queue_capacity = 8;
      deadline = hash_deadline;
      requests = hash_requests;
    };
  ]

let params ?(seed = 11) ?arbiter ?attack ?(max_restarts = 3) () =
  let p = Serve.Engine.default_params ~seed in
  {
    p with
    Serve.Engine.p_spare_frames = 64;
    p_calibration = 8;
    p_max_restarts = max_restarts;
    p_arbiter = arbiter;
    p_attack = attack;
  }

let test_fixed_seed_determinism () =
  let run () =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  let r1 = run () and r2 = run () in
  checks "identical reports" (Serve.Driver.to_json r1) (Serve.Driver.to_json r2);
  checkb "digest present" true (r1.Serve.Driver.rp_digest <> None);
  checks "identical trace digests"
    (Option.get r1.Serve.Driver.rp_digest)
    (Option.get r2.Serve.Driver.rp_digest)

let test_admission_accounting () =
  let r =
    Serve.Driver.run_scenario ~quick:true ~params:(params ()) (small_cfgs ())
  in
  List.iter
    (fun t ->
      checki
        (t.Serve.Driver.tr_name ^ ": verdicts partition arrivals")
        t.Serve.Driver.tr_arrivals
        (t.Serve.Driver.tr_served + t.Serve.Driver.tr_shed
       + t.Serve.Driver.tr_missed);
      checki
        (t.Serve.Driver.tr_name ^ ": every arrival generated")
        t.Serve.Driver.tr_arrivals
        (if t.Serve.Driver.tr_name = "kv" then 80 else 120);
      checki
        (t.Serve.Driver.tr_name ^ ": latency samples = served")
        t.Serve.Driver.tr_served
        t.Serve.Driver.tr_latency.Metrics.Stats.s_count)
    r.Serve.Driver.rp_tenants

let test_overload_sheds_neighbour_keeps_slo () =
  (* The overloaded tenant sheds; the well-behaved tenant's p99 stays
     within 2x of what it sees with no overloaded neighbour at all. *)
  let loaded =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  let unloaded =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ~hash_load:0.3 ~hash_requests:40 ())
  in
  let find name r =
    List.find (fun t -> t.Serve.Driver.tr_name = name) r.Serve.Driver.rp_tenants
  in
  let hash = find "hash" loaded in
  checkb "overloaded tenant sheds" true
    (hash.Serve.Driver.tr_shed + hash.Serve.Driver.tr_missed > 0);
  let kv_loaded = find "kv" loaded and kv_unloaded = find "kv" unloaded in
  checki "well-behaved tenant serves everything" kv_loaded.Serve.Driver.tr_arrivals
    kv_loaded.Serve.Driver.tr_served;
  let p99l = kv_loaded.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
  let p99u = kv_unloaded.Serve.Driver.tr_latency.Metrics.Stats.s_p99 in
  if p99l > 2.0 *. p99u then
    Alcotest.failf "kv p99 %.0f exceeds 2x unloaded p99 %.0f" p99l p99u

let test_arbiter_moves_frames_toward_pressure () =
  let r =
    Serve.Driver.run_scenario ~quick:true
      ~params:(params ~arbiter:Serve.Engine.default_arbiter ())
      (small_cfgs ())
  in
  checkb "arbiter acted" true (r.Serve.Driver.rp_arbiter_moves > 0);
  let hash =
    List.find (fun t -> t.Serve.Driver.tr_name = "hash") r.Serve.Driver.rp_tenants
  in
  checkb "pressured tenant gained frames" true
    (hash.Serve.Driver.tr_balloon_in_frames > 0);
  checkb "pressured tenant partition grew" true
    (hash.Serve.Driver.tr_partition_end > 160)

(* Satellite: restart churn under serving.  A hypervisor that keeps
   transparently evicting the victim's pages forces repeated detected
   terminations; the restart monitor allows a bounded number of attested
   restarts and then refuses — from that point every arrival sheds, and
   the co-tenant is unaffected. *)
let test_restart_monitor_refuses_churning_tenant () =
  let r =
    Serve.Driver.run_scenario ~quick:true
      ~params:
        (params ~max_restarts:1
           ~attack:{ Serve.Engine.atk_victim = "hash"; atk_every = 3 }
           ())
      (* No deadline: the victim's post-restart backlog must still execute
         (and keep getting attacked) rather than time out untouched. *)
      (small_cfgs ~hash_requests:160 ~hash_deadline:None ())
  in
  let find name =
    List.find (fun t -> t.Serve.Driver.tr_name = name) r.Serve.Driver.rp_tenants
  in
  let hash = find "hash" in
  checkb "victim terminated repeatedly" true
    (hash.Serve.Driver.tr_terminations > 1);
  checkb "restarts bounded by monitor" true (hash.Serve.Driver.tr_restarts <= 1);
  checkb "victim refused re-admission" true hash.Serve.Driver.tr_refused;
  checkb "post-refusal arrivals shed" true
    (hash.Serve.Driver.tr_shed > hash.Serve.Driver.tr_terminations);
  checki "verdicts still partition arrivals" hash.Serve.Driver.tr_arrivals
    (hash.Serve.Driver.tr_served + hash.Serve.Driver.tr_shed
   + hash.Serve.Driver.tr_missed);
  let kv = find "kv" in
  checkb "co-tenant unaffected" true (not kv.Serve.Driver.tr_refused);
  checki "co-tenant serves everything" kv.Serve.Driver.tr_arrivals
    kv.Serve.Driver.tr_served

let suite =
  [
    ("event queue orders by time", `Quick, test_event_queue_ordering);
    ("event queue breaks ties FIFO", `Quick, test_event_queue_fifo_ties);
    ("fixed-seed determinism", `Quick, test_fixed_seed_determinism);
    ("admission accounting", `Quick, test_admission_accounting);
    ("overload sheds, neighbour keeps SLO", `Quick,
     test_overload_sheds_neighbour_keeps_slo);
    ("arbiter moves frames toward pressure", `Quick,
     test_arbiter_moves_frames_toward_pressure);
    ("restart monitor refuses churning tenant", `Quick,
     test_restart_monitor_refuses_churning_tenant);
  ]
