(** Inter-arrival samplers and load-shape modulation for the serving
    generators.

    All samplers draw from the caller's [Metrics.Rng] stream and return
    integer cycle gaps floored at 1 so the virtual-time event loop
    always advances.  Deterministic for a given rng state. *)

val exp_gap : Metrics.Rng.t -> mean:float -> int
(** Exponential inter-arrival gap with the given mean (a Poisson
    arrival process) — the open-loop / think-time sampler the serve
    engine has always used. *)

val pareto_gap : Metrics.Rng.t -> mean:float -> alpha:float -> int
(** Heavy-tailed (Pareto) inter-arrival gap.  [alpha > 1] is the tail
    index (smaller = heavier tail; 1.5 is a typical bursty-service
    choice); the scale is derived so the distribution's mean equals
    [mean], making [Heavy_tail] directly comparable to [Open_loop] at
    the same load factor.  Raises [Invalid_argument] when
    [alpha <= 1]. *)

val diurnal_factor : depth:float -> period:int -> at:int -> float
(** Sinusoidal rate modulation for diurnal load: the factor multiplies
    the instantaneous arrival *rate* at virtual cycle [at], completing
    one full peak/trough cycle every [period] cycles, with
    [1 - depth .. 1 + depth] swing ([0 <= depth < 1]).  The result is
    clamped to at least 0.1 so the trough never stalls the generator.
    Raises [Invalid_argument] on a non-positive [period] or [depth]
    outside [0, 1). *)

val diurnal_gap :
  Metrics.Rng.t -> mean:float -> depth:float -> period:int -> at:int -> int
(** Exponential gap whose rate is modulated by {!diurnal_factor} at the
    moment of scheduling (a piecewise-homogeneous Poisson process:
    cheap, deterministic, and accurate for periods much longer than the
    mean gap, which the serve scenarios guarantee). *)
