type op =
  | Get of int
  | Put of int
  | Insert of int
  | Scan of int * int
  | Read_modify_write of int

type t = {
  read_fraction : float;
  update_fraction : float;
  insert_fraction : float;
  scan_fraction : float;
  rmw_fraction : float;
  dist : Metrics.Dist.t;
  rng : Metrics.Rng.t;
  mutable next_insert : int;
}

let create ?(read_fraction = 1.0) ?(update_fraction = 0.0) ?(insert_fraction = 0.0)
    ?(scan_fraction = 0.0) ?(rmw_fraction = 0.0) ~dist ~rng () =
  let total =
    read_fraction +. update_fraction +. insert_fraction +. scan_fraction
    +. rmw_fraction
  in
  if abs_float (total -. 1.0) > 1e-9 then
    invalid_arg "Ycsb.create: operation fractions must sum to 1";
  {
    read_fraction;
    update_fraction;
    insert_fraction;
    scan_fraction;
    rmw_fraction;
    dist;
    rng;
    next_insert = Metrics.Dist.size dist;
  }

let workload_a ~dist ~rng =
  create ~read_fraction:0.5 ~update_fraction:0.5 ~dist ~rng ()

let workload_b ~dist ~rng =
  create ~read_fraction:0.95 ~update_fraction:0.05 ~dist ~rng ()

let workload_c ~dist ~rng = create ~dist ~rng ()

let workload_f ~dist ~rng =
  create ~read_fraction:0.5 ~rmw_fraction:0.5 ~dist ~rng ()

let next t =
  (* Branches sample inline (no [key] closure: it would capture [t] and
     allocate on every op).  Draw order per branch is unchanged — the
     stream is pinned by committed BENCH files. *)
  let u = Metrics.Rng.float t.rng in
  if u < t.read_fraction then Get (Metrics.Dist.sample t.dist t.rng)
  else if u < t.read_fraction +. t.update_fraction then
    Put (Metrics.Dist.sample t.dist t.rng)
  else if u < t.read_fraction +. t.update_fraction +. t.insert_fraction then begin
    let k = t.next_insert in
    t.next_insert <- k + 1;
    Insert k
  end
  else if
    u < t.read_fraction +. t.update_fraction +. t.insert_fraction +. t.scan_fraction
  then Scan (Metrics.Dist.sample t.dist t.rng, 1 + Metrics.Rng.int t.rng 100)
  else Read_modify_write (Metrics.Dist.sample t.dist t.rng)

let describe t =
  Printf.sprintf "reads=%.0f%% updates=%.0f%% dist=%s" (100. *. t.read_fraction)
    (100. *. t.update_fraction)
    (Metrics.Dist.describe t.dist)
