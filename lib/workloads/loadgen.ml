let exp_gap rng ~mean =
  let u = Metrics.Rng.float rng in
  max 1 (int_of_float (ceil (-.log (1.0 -. u) *. mean)))

(* Pareto with tail index [alpha] and scale xm has mean xm*alpha/(alpha-1)
   (alpha > 1), so xm = mean*(alpha-1)/alpha matches the requested mean.
   Inverse-CDF sampling: xm * u^(-1/alpha). *)
let pareto_gap rng ~mean ~alpha =
  if alpha <= 1.0 then invalid_arg "Loadgen.pareto_gap: alpha <= 1";
  let xm = mean *. (alpha -. 1.0) /. alpha in
  let u = 1.0 -. Metrics.Rng.float rng in
  max 1 (int_of_float (ceil (xm *. (u ** (-1.0 /. alpha)))))

let diurnal_factor ~depth ~period ~at =
  if period <= 0 then invalid_arg "Loadgen.diurnal_factor: period";
  if depth < 0.0 || depth >= 1.0 then
    invalid_arg "Loadgen.diurnal_factor: depth";
  let phase =
    2.0 *. Float.pi *. float_of_int (at mod period) /. float_of_int period
  in
  Float.max 0.1 (1.0 +. (depth *. sin phase))

let diurnal_gap rng ~mean ~depth ~period ~at =
  let f = diurnal_factor ~depth ~period ~at in
  exp_gap rng ~mean:(mean /. f)
