type observation = {
  at_preempt : int;
  accessed : Sgx.Types.vpage list;
  dirtied : Sgx.Types.vpage list;
}

type t = {
  os : Sim_os.Kernel.t;
  proc : Sim_os.Kernel.proc;
  monitored : Sgx.Types.vpage list;
  clear_dirty : bool;
  mutable obs_rev : observation list;
  mutable preempt_count : int;
  saved_on_preempt : Sim_os.Kernel.proc -> unit;
}

let scan t =
  t.preempt_count <- t.preempt_count + 1;
  let accessed = ref [] and dirtied = ref [] in
  List.iter
    (fun vp ->
      match Sim_os.Kernel.attacker_read_ad t.os t.proc vp with
      | Some (a, d) ->
        if a then begin
          accessed := vp :: !accessed;
          Sim_os.Kernel.attacker_clear_accessed t.os t.proc vp
        end;
        if t.clear_dirty && d then begin
          dirtied := vp :: !dirtied;
          Sim_os.Kernel.attacker_clear_dirty t.os t.proc vp
        end
      | None -> ())
    t.monitored;
  if !accessed <> [] || !dirtied <> [] then begin
    let accessed = List.sort compare !accessed in
    (match Sgx.Machine.tracer (Sim_os.Kernel.machine t.os) with
    | None -> ()
    | Some tr ->
      Trace.Recorder.emit tr
        ~enclave:(Sim_os.Kernel.enclave t.proc).Sgx.Enclave.id
        ~actor:Trace.Event.Attacker
        (Trace.Event.Probe { probe = "ad-scan"; vpages = accessed }));
    t.obs_rev <-
      {
        at_preempt = t.preempt_count;
        accessed;
        dirtied = List.sort compare !dirtied;
      }
      :: t.obs_rev
  end

let attach ~os ~proc ~monitored ?(clear_dirty = true) () =
  let hooks = Sim_os.Kernel.hooks os in
  let t =
    {
      os;
      proc;
      monitored;
      clear_dirty;
      obs_rev = [];
      preempt_count = 0;
      saved_on_preempt = hooks.on_preempt;
    }
  in
  hooks.on_preempt <-
    (fun p ->
      if Sgx.Enclave.((Sim_os.Kernel.enclave p).id = (Sim_os.Kernel.enclave proc).id)
      then scan t);
  (* Baseline scan: clear all bits so the first observation is clean. *)
  List.iter
    (fun vp ->
      Sim_os.Kernel.attacker_clear_accessed os proc vp;
      if clear_dirty then Sim_os.Kernel.attacker_clear_dirty os proc vp)
    monitored;
  t

let detach t =
  let hooks = Sim_os.Kernel.hooks t.os in
  hooks.on_preempt <- t.saved_on_preempt

let observations t = List.rev t.obs_rev

let pages_traced t =
  List.concat_map (fun o -> o.accessed) (observations t) |> List.sort_uniq compare

let preemptions t = t.preempt_count
