let cluster_guess_probability ~item_bytes ~cluster_pages ~page_bytes =
  if item_bytes <= 0 || cluster_pages <= 0 || page_bytes <= 0 then
    invalid_arg "Leakage.cluster_guess_probability: sizes must be positive";
  float_of_int item_bytes /. float_of_int (cluster_pages * page_bytes)

type score = { mutable total : float; mutable n : int }

let create_score () = { total = 0.0; n = 0 }

let observe score ~candidates ~accessed_in_set ~total_items =
  let p =
    if accessed_in_set && candidates > 0 then 1.0 /. float_of_int candidates
    else if total_items > 0 then 1.0 /. float_of_int total_items
    else 0.0
  in
  score.total <- score.total +. p;
  score.n <- score.n + 1

let observations score = score.n

let guess_probability score =
  if score.n = 0 then 0.0 else score.total /. float_of_int score.n

(* Entries must be valid probability masses; anything negative or
   non-finite is a caller bug, rejected loudly instead of poisoning the
   sum.  The empty distribution and the all-zero distribution carry no
   information (0 bits), and inputs whose mass does not sum to 1 are
   normalized — so counts can be passed directly — rather than silently
   producing a non-entropy. *)
let entropy_bits probs =
  List.iter
    (fun p ->
      if not (Float.is_finite p) || p < 0.0 then
        invalid_arg
          "Leakage.entropy_bits: probabilities must be finite and >= 0")
    probs;
  let sum = List.fold_left ( +. ) 0.0 probs in
  if sum <= 0.0 then 0.0
  else
    let scale = if Float.abs (sum -. 1.0) > 1e-9 then 1.0 /. sum else 1.0 in
    List.fold_left
      (fun acc p ->
        let p = if scale = 1.0 then p else p *. scale in
        if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
      0.0 probs

let uniform_entropy_bits ~n =
  if n <= 0 then invalid_arg "Leakage.uniform_entropy_bits: n must be positive";
  log (float_of_int n) /. log 2.0

let rate_limit_leak_bound ~faults ~managed_pages =
  if faults < 0 then
    invalid_arg "Leakage.rate_limit_leak_bound: faults must be >= 0";
  float_of_int faults *. uniform_entropy_bits ~n:managed_pages
