type arming =
  | Unmap
  | Reduce_perms of Sgx.Types.perms
  | Wrong_page of Sgx.Types.vpage

type t = {
  os : Sim_os.Kernel.t;
  proc : Sim_os.Kernel.proc;
  monitored : (Sgx.Types.vpage, unit) Hashtbl.t;
  arming : arming;
  mutable repaired : Sgx.Types.vpage option;
  mutable trace_rev : Sgx.Types.vpage list;
  mutable fault_count : int;
  pages_seen : (Sgx.Types.vpage, unit) Hashtbl.t;
  saved_on_fault :
    Sim_os.Kernel.proc -> Sgx.Types.os_fault_report -> Sim_os.Kernel.fault_decision;
}

let emit t k =
  match Sgx.Machine.tracer (Sim_os.Kernel.machine t.os) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Sim_os.Kernel.enclave t.proc).Sgx.Enclave.id
      ~actor:Trace.Event.Attacker (k ())

let arm t vp =
  match t.arming with
  | Unmap -> Sim_os.Kernel.attacker_unmap t.os t.proc vp
  | Reduce_perms perms -> Sim_os.Kernel.attacker_set_perms t.os t.proc vp perms
  | Wrong_page other ->
    Sim_os.Kernel.attacker_map_wrong t.os t.proc ~victim:vp ~other

let on_fault t proc report =
  if Sgx.Enclave.(report.Sgx.Types.fr_enclave_id = (Sim_os.Kernel.enclave proc).id)
  then begin
    t.fault_count <- t.fault_count + 1;
    let vp = Sgx.Types.vpage_of_vaddr report.fr_vaddr in
    Hashtbl.replace t.pages_seen vp ();
    if (Sim_os.Kernel.enclave proc).self_paging then
      (* The address is masked and silent resume will fail: nothing the
         attacker can do but let the kernel re-enter the enclave. *)
      Sim_os.Kernel.Benign
    else if Hashtbl.mem t.monitored vp then begin
      (* A monitored page faulted: the attacker learned one step of the
         victim's access sequence. *)
      emit t (fun () ->
          Trace.Event.Probe { probe = "cc-hit"; vpages = [ vp ] });
      t.trace_rev <- vp :: t.trace_rev;
      Sim_os.Kernel.attacker_restore t.os t.proc vp;
      (match t.repaired with
      | Some prev when prev <> vp -> arm t prev
      | Some _ | None -> ());
      t.repaired <- Some vp;
      Sim_os.Kernel.Fixed_silently
    end
    else Sim_os.Kernel.Benign
  end
  else Sim_os.Kernel.Benign

let attach ~os ~proc ~monitored ?(arming = Unmap) () =
  let hooks = Sim_os.Kernel.hooks os in
  let t =
    {
      os;
      proc;
      monitored = Hashtbl.create 256;
      arming;
      repaired = None;
      trace_rev = [];
      fault_count = 0;
      pages_seen = Hashtbl.create 256;
      saved_on_fault = hooks.on_fault;
    }
  in
  List.iter (fun vp -> Hashtbl.replace t.monitored vp ()) monitored;
  hooks.on_fault <- (fun p r -> on_fault t p r);
  List.iter (fun vp -> arm t vp) monitored;
  t

let detach t =
  let hooks = Sim_os.Kernel.hooks t.os in
  hooks.on_fault <- t.saved_on_fault;
  Hashtbl.iter (fun vp () -> Sim_os.Kernel.attacker_restore t.os t.proc vp) t.monitored

let trace t = List.rev t.trace_rev
let observed_faults t = t.fault_count

let observed_pages t =
  Hashtbl.fold (fun vp () acc -> vp :: acc) t.pages_seen [] |> List.sort compare

let run ~os ~proc ~monitored ?(arming = Unmap) victim =
  let t = attach ~os ~proc ~monitored ~arming () in
  match victim () with
  | result ->
    detach t;
    (`Completed result, t)
  | exception e ->
    detach t;
    raise e
