(** Quantifying the residual leakage of cluster-granularity paging
    (§5.2.3, §5.3).

    Autarky's cluster policy still reveals, through the demand-paging
    side channel (§4 — the OS can always enumerate which pages become
    resident), that *some* page of a fetched cluster set was accessed.
    For a uniformly-accessed table of fixed-size items the paper states
    the attacker's guessing probability as

      [item_size / (cluster_size * page_size)]

    (0.62% for 256-byte items and 10-page clusters).  This module
    implements that formula, the empirical attacker that measures it
    (observe the fetched set, guess uniformly among the items it holds),
    and entropy helpers for expressing observations in bits. *)

val cluster_guess_probability :
  item_bytes:int -> cluster_pages:int -> page_bytes:int -> float
(** The paper's closed form.
    @raise Invalid_argument unless every size is positive. *)

(** The empirical attacker's running score. *)
type score

val create_score : unit -> score

val observe :
  score -> candidates:int -> accessed_in_set:bool -> total_items:int -> unit
(** One request: the fetched set held [candidates] items; [accessed_in_set]
    says whether the truly-accessed item was among them (if not — e.g. no
    fault occurred — the attacker guesses blindly among [total_items]). *)

val observations : score -> int
val guess_probability : score -> float
(** Mean probability that the optimal guess is correct. *)

val entropy_bits : float list -> float
(** Shannon entropy of a distribution.  The empty list and all-zero
    distributions carry no information and yield [0.0]; a distribution
    whose mass does not sum to 1 is normalized by its sum first (so raw
    counts are accepted), leaving already-normalized inputs untouched
    bit-for-bit.  Never returns NaN.
    @raise Invalid_argument on a negative or non-finite entry. *)

val uniform_entropy_bits : n:int -> float
(** Entropy of a uniform choice among [n] items.
    @raise Invalid_argument unless [n > 0]. *)

val rate_limit_leak_bound : faults:int -> managed_pages:int -> float
(** Upper bound (bits) on what the demand-paging side channel conveys
    under the rate-limited policy (§5.2.4): each legitimate fault reveals
    at most which of the managed pages was cold —
    [faults * log2 managed_pages].
    @raise Invalid_argument unless [faults >= 0] and [managed_pages > 0]. *)
