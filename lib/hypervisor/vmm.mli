(** Virtualized EPC management (§5.4).

    In a virtualized deployment both the guest OS and the hypervisor sit
    below the enclave and could mount controlled-channel attacks.  The
    paper's analysis of hypervisor EPC management under Autarky:

    {ul
    {- {b Static partitioning} (what Azure-style clouds deploy): each VM
       receives a fixed vEPC slice; works with no modification, since
       each guest pages only within its slice.}
    {- {b Ballooning}: supported with minor changes — an enlightened
       guest forwards the hypervisor's memory-pressure request to its
       enclaves' self-paging runtimes (the cooperative upcall chain).}
    {- {b Transparent demand paging by the hypervisor}: cannot be
       supported; the hypervisor cannot observe fault addresses of
       self-paging enclaves, and evicting their pages behind their backs
       is detected exactly like a guest-OS attack.}}

    This module implements the first two and demonstrates the third. *)

type t
type vm

val create : Sgx.Machine.t -> t

val free_frames : t -> int
(** EPC frames not yet assigned to any VM partition. *)

val create_vm : t -> name:string -> epc_frames:int -> vm
(** Carve a static vEPC partition and boot a guest kernel inside it.
    Raises [Invalid_argument] if the partition oversubscribes the
    remaining EPC. *)

val name : vm -> string
val partition_frames : vm -> int
val guest_os : vm -> Sim_os.Kernel.t
(** The guest kernel (also the guest-level adversary's vantage point). *)

val create_guest_proc :
  t -> vm -> size_pages:int -> self_paging:bool -> epc_limit:int ->
  Sim_os.Kernel.proc
(** Create an enclave-hosting process inside the VM; the sum of the VM's
    process [epc_limit]s must fit its partition (static partitioning is
    enforced here — no guest can starve another). *)

val committed_frames : vm -> int
(** Sum of the VM's process limits. *)

val destroy_guest_proc : t -> vm -> Sim_os.Kernel.proc -> unit
(** Tear a guest process down (typically after its enclave terminated):
    free its EPC frames via {!Sim_os.Kernel.release_proc} and return its
    commitment to the VM's partition, so a replacement enclave — an
    attested restart — can be created in its place.  Raises
    [Invalid_argument] if the process does not belong to this VM. *)

val grow_vm : t -> vm -> frames:int -> int
(** Grow a VM's partition from the hypervisor's unassigned EPC pool;
    returns the frames actually granted (bounded by {!free_frames}).
    Costs nobody anything — the arbiter's first resort. *)

val rebalance : t -> from_vm:vm -> to_vm:vm -> frames:int -> int
(** Ballooning across VMs: shrink [from_vm]'s partition and grow
    [to_vm] by the frames actually moved.  Uncommitted partition
    headroom moves for free; beyond that the donor guest is squeezed
    (OS-managed evictions first, then cooperative enclave balloons).
    Returns possibly fewer than [frames] if the guest's enclaves refuse
    to deflate (which is their right; §5.2.1). *)

val hypervisor_evict : t -> vm -> Sim_os.Kernel.proc -> Sgx.Types.vpage -> unit
(** Transparent demand paging attempt: the hypervisor evicts an enclave
    page without the enclave's cooperation.  For a self-paging enclave
    the next access is detected as an attack and the enclave terminates
    — the §5.4 impossibility this layer demonstrates. *)
