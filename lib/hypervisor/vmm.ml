type vm = {
  vm_name : string;
  guest : Sim_os.Kernel.t;
  mutable partition : int;
  mutable procs : Sim_os.Kernel.proc list;
}

type t = {
  machine : Sgx.Machine.t;
  mutable vms : vm list;
  mutable assigned : int;
}

let create machine = { machine; vms = []; assigned = 0 }

let free_frames t = Sgx.Epc.total_frames Sgx.Machine.(t.machine.epc) - t.assigned

let create_vm t ~name ~epc_frames =
  if epc_frames <= 0 then invalid_arg "Vmm.create_vm: empty partition";
  if epc_frames > free_frames t then
    invalid_arg
      (Printf.sprintf "Vmm.create_vm: partition of %d oversubscribes (%d free)"
         epc_frames (free_frames t));
  let vm =
    {
      vm_name = name;
      guest = Sim_os.Kernel.create t.machine;
      partition = epc_frames;
      procs = [];
    }
  in
  t.assigned <- t.assigned + epc_frames;
  t.vms <- vm :: t.vms;
  vm

let name vm = vm.vm_name
let partition_frames vm = vm.partition
let guest_os vm = vm.guest

let committed_frames vm =
  List.fold_left (fun acc p -> acc + Sim_os.Kernel.epc_limit p) 0 vm.procs

let create_guest_proc _t vm ~size_pages ~self_paging ~epc_limit =
  if committed_frames vm + epc_limit > vm.partition then
    invalid_arg
      (Printf.sprintf
         "Vmm.create_guest_proc: %d frames would exceed %s's partition of %d"
         epc_limit vm.vm_name vm.partition);
  let proc = Sim_os.Kernel.create_proc vm.guest ~size_pages ~self_paging ~epc_limit in
  vm.procs <- proc :: vm.procs;
  proc

(* Shrink one process's allowance by up to [take] frames: evict its
   OS-managed pages first, then ask the enclave to deflate; the new
   limit reflects only what was actually reclaimed. *)
let destroy_guest_proc _t vm proc =
  let id = (Sim_os.Kernel.enclave proc).Sgx.Enclave.id in
  if
    not
      (List.exists
         (fun p -> (Sim_os.Kernel.enclave p).Sgx.Enclave.id = id)
         vm.procs)
  then invalid_arg "Vmm.destroy_guest_proc: process not in this VM";
  Sim_os.Kernel.release_proc vm.guest proc;
  vm.procs <-
    List.filter
      (fun p -> (Sim_os.Kernel.enclave p).Sgx.Enclave.id <> id)
      vm.procs

let shrink_proc guest proc take =
  let limit = Sim_os.Kernel.epc_limit proc in
  let take = min take (max 0 (limit - 1)) in
  if take = 0 then 0
  else begin
    let target = limit - take in
    Sim_os.Kernel.reclaim_for_shrink guest proc ~target;
    let still_over = Sim_os.Kernel.resident_pages proc - target in
    if still_over > 0 then
      ignore (Sim_os.Kernel.request_balloon guest proc ~pages:still_over);
    let achieved =
      max 0 (limit - max target (Sim_os.Kernel.resident_pages proc))
    in
    Sim_os.Kernel.set_epc_limit proc (limit - achieved);
    achieved
  end

(* Shrink a guest: squeeze its processes in turn until [frames] have
   been reclaimed (or its enclaves refuse to deflate further). *)
let shrink_vm vm frames =
  List.fold_left
    (fun reclaimed proc ->
      if reclaimed >= frames then reclaimed
      else reclaimed + shrink_proc vm.guest proc (frames - reclaimed))
    0 vm.procs

let grow_vm t vm ~frames =
  assert (frames >= 0);
  let granted = min frames (free_frames t) in
  t.assigned <- t.assigned + granted;
  vm.partition <- vm.partition + granted;
  granted

let rebalance _t ~from_vm ~to_vm ~frames =
  assert (frames >= 0);
  (* Partition headroom no process is entitled to moves for free; only
     the remainder needs evictions and balloon upcalls in the donor. *)
  let uncommitted = max 0 (from_vm.partition - committed_frames from_vm) in
  let free_part = min frames uncommitted in
  let squeezed =
    if frames > free_part then shrink_vm from_vm (frames - free_part) else 0
  in
  let moved = free_part + squeezed in
  from_vm.partition <- from_vm.partition - moved;
  to_vm.partition <- to_vm.partition + moved;
  moved

let hypervisor_evict _t vm proc vpage =
  (* The hypervisor bypasses the guest entirely: a forced EWB. *)
  Sim_os.Kernel.attacker_evict vm.guest proc vpage
