(** The deterministic virtual-time serving loop.

    Multi-tenant request serving as a discrete-event simulation: load
    generators (open-loop Poisson or closed-loop clients) put arrivals
    on a pending-event heap; each admitted request executes to
    completion inside its tenant's enclave, its service time measured on
    the shared machine clock and folded back into the event timeline.
    A global EPC arbiter periodically rebalances vEPC frames between
    tenant VMs based on fault pressure ({!Hypervisor.Vmm.rebalance} —
    cooperative ballooning), and an {!Autarky.Restart_monitor} gates
    enclave restarts after terminations.

    Everything is keyed off the scenario seed; no wall-clock input
    reaches the loop, so the same [(configs, params)] always produces
    the same result — including the trace digest. *)

(** Hypervisor-attack injection for churn scenarios: before every
    [atk_every]-th arrival of tenant [atk_victim], evict one resident
    ground-truth page of the key about to be served
    ({!Hypervisor.Vmm.hypervisor_evict}).  A self-paging enclave detects
    the next touch and terminates — driving the restart/refusal path. *)
type attack = { atk_victim : string; atk_every : int }

type arbiter = {
  arb_period : float;
      (** tick every [arb_period] x (largest tenant mean service time) *)
  arb_step : int;  (** frames to move per rebalance *)
  arb_min_partition : int;  (** floor below which a VM never donates *)
  arb_threshold : int;
      (** minimum fault-pressure gap (faults per period) before moving *)
}

val default_arbiter : arbiter

type verdict = Served of int | Shed | Deadline_missed
(** Outcome of one arrival: completed at the given virtual cycle, shed
    by admission control (queue full, refused tenant, or lost to a
    termination), or dropped because its queueing delay exceeded the
    tenant's deadline. *)

(** What a defense controller (or a scripted adversary) sees of the
    running fleet.  [cx_emit] writes a {!Trace.Event.Serve} event with
    actor [Harness] into the shared trace. *)
type hook_ctx = {
  cx_tenants : Tenant.t array;
  cx_machine : Sgx.Machine.t;
  cx_hv : Hypervisor.Vmm.t;
  cx_monitor : Autarky.Restart_monitor.t;
  cx_emit : tenant:string -> action:string -> detail:int -> unit;
}

(** The defense-orchestration seam.  All callbacks run synchronously
    inside the event loop, outside any enclave entry — i.e. at request
    boundaries, where {!Tenant.set_policy} is legal.  [h_on_tick] fires
    on a dedicated [Defense_tick] event scheduled every [h_period]
    multiples of the largest calibrated mean service time;
    [h_before_request]/[h_after_request] bracket every executed request
    ([tenant] is the index into [cx_tenants]).  [h_on_start] runs once,
    after calibration and before any arrival. *)
type hooks = {
  h_period : float;
  h_on_start : hook_ctx -> unit;
  h_on_tick : hook_ctx -> at:int -> unit;
  h_before_request : hook_ctx -> at:int -> tenant:int -> key:int -> unit;
  h_after_request : hook_ctx -> at:int -> tenant:int -> verdict:verdict -> unit;
}

type params = {
  p_seed : int;
  p_spare_frames : int;  (** machine EPC beyond the summed partitions *)
  p_calibration : int;
      (** warmup requests per tenant used to calibrate the mean service
          time (excluded from all statistics) *)
  p_max_restarts : int;  (** restart-monitor cutoff *)
  p_arbiter : arbiter option;  (** [None] disables rebalancing *)
  p_attack : attack option;
  p_trace : bool;  (** record a trace and compute its digest *)
  p_sketch : bool;
      (** latency accounting via {!Metrics.Sketch} (O(1) memory per
          tenant) instead of exact {!Metrics.Stats} — the fleet-scale
          path.  Default [false]: the [autarky-serve/1] report stays
          byte-identical to the pre-sketch engine *)
  p_hooks : hooks option;
      (** [None] (the default) leaves the event loop — and its trace
          digest — bit-for-bit identical to the hook-free engine *)
}

val default_params : seed:int -> params

type result = {
  r_tenants : Tenant.t array;
  r_machine : Sgx.Machine.t;
  r_monitor : Autarky.Restart_monitor.t;
  r_end_cycle : int;  (** virtual cycle of the last completion/event *)
  r_arbiter_moves : int;
  r_digest : string option;  (** trace digest, when [p_trace] *)
}

val run : ?params:params -> Tenant.config list -> result
(** Boot every tenant on one shared machine (one VM per tenant),
    calibrate, generate and serve the configured request streams, and
    return the tenants with their accumulated statistics.  Raises
    [Invalid_argument] on an empty tenant list.  Exactly
    [start] + [step]-until-false + [finish]. *)

(** {1 Stepped execution}

    The same loop, exposed one event at a time so a driver can pause it
    at a quiescent point — between two events no enclave is entered and
    no measurement span is open, which is where {!Snapshot} captures a
    fleet.  [run] is the closed composition; interleaving anything
    stateful between [step] calls voids the bit-for-bit guarantee only
    if it touches the machine. *)

type state
(** A booted fleet mid-run: tenants calibrated, initial arrivals
    scheduled, trace recorder (when [p_trace]) attached. *)

val start : ?params:params -> Tenant.config list -> state
val step : state -> bool
(** Process exactly one pending event; [false] when none remain. *)

val finish : state -> result
(** Emit the per-tenant "done" trace events and close out the result.
    Call once, after the final [step]. *)

val machine_of : state -> Sgx.Machine.t
val end_cycle : state -> int
(** Virtual cycle of the latest event processed so far. *)
