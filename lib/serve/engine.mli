(** The deterministic virtual-time serving loop.

    Multi-tenant request serving as a discrete-event simulation: load
    generators (open-loop Poisson or closed-loop clients) put arrivals
    on a pending-event heap; each admitted request executes to
    completion inside its tenant's enclave, its service time measured on
    the shared machine clock and folded back into the event timeline.
    A global EPC arbiter periodically rebalances vEPC frames between
    tenant VMs based on fault pressure ({!Hypervisor.Vmm.rebalance} —
    cooperative ballooning), and an {!Autarky.Restart_monitor} gates
    enclave restarts after terminations.

    Everything is keyed off the scenario seed; no wall-clock input
    reaches the loop, so the same [(configs, params)] always produces
    the same result — including the trace digest. *)

(** Hypervisor-attack injection for churn scenarios: before every
    [atk_every]-th arrival of tenant [atk_victim], evict one resident
    ground-truth page of the key about to be served
    ({!Hypervisor.Vmm.hypervisor_evict}).  A self-paging enclave detects
    the next touch and terminates — driving the restart/refusal path. *)
type attack = { atk_victim : string; atk_every : int }

type arbiter = {
  arb_period : float;
      (** tick every [arb_period] x (largest tenant mean service time) *)
  arb_step : int;  (** frames to move per rebalance *)
  arb_min_partition : int;  (** floor below which a VM never donates *)
  arb_threshold : int;
      (** minimum fault-pressure gap (faults per period) before moving *)
}

val default_arbiter : arbiter

type params = {
  p_seed : int;
  p_spare_frames : int;  (** machine EPC beyond the summed partitions *)
  p_calibration : int;
      (** warmup requests per tenant used to calibrate the mean service
          time (excluded from all statistics) *)
  p_max_restarts : int;  (** restart-monitor cutoff *)
  p_arbiter : arbiter option;  (** [None] disables rebalancing *)
  p_attack : attack option;
  p_trace : bool;  (** record a trace and compute its digest *)
}

val default_params : seed:int -> params

type verdict = Served of int | Shed | Deadline_missed
(** Outcome of one arrival: completed at the given virtual cycle, shed
    by admission control (queue full, refused tenant, or lost to a
    termination), or dropped because its queueing delay exceeded the
    tenant's deadline. *)

type result = {
  r_tenants : Tenant.t array;
  r_machine : Sgx.Machine.t;
  r_monitor : Autarky.Restart_monitor.t;
  r_end_cycle : int;  (** virtual cycle of the last completion/event *)
  r_arbiter_moves : int;
  r_digest : string option;  (** trace digest, when [p_trace] *)
}

val run : ?params:params -> Tenant.config list -> result
(** Boot every tenant on one shared machine (one VM per tenant),
    calibrate, generate and serve the configured request streams, and
    return the tenants with their accumulated statistics.  Raises
    [Invalid_argument] on an empty tenant list. *)
