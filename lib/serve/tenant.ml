(* One tenant = one VM (static vEPC partition) hosting one self-paging
   enclave that serves keyed requests from a fixed-seed distribution.

   A tenant owns everything below the request: the guest process, the
   Autarky runtime with the tenant's protection policy, the workload
   structure built inside the enclave, and the virtual-time server state
   (busy-until cycle, bounded admission queue, latency statistics).  The
   engine only ever sees [request], [reboot] and the counters.

   Rebuilding after a termination ([reboot]) replays the same build seed,
   so an attested restart produces a byte-identical enclave image — the
   restarted instance is the same program, which is what the restart
   monitor attests. *)

module System = Harness.System
module Vmm = Hypervisor.Vmm

type workload_kind = Kvstore | Spellcheck | Uthash
type policy_kind = Rate_limit | Clusters | Oram

let workload_name = function
  | Kvstore -> "kvstore"
  | Spellcheck -> "spellcheck"
  | Uthash -> "uthash"

let policy_name = function
  | Rate_limit -> "rate-limit"
  | Clusters -> "clusters"
  | Oram -> "oram"

type generator =
  | Open_loop of { load : float }
  | Closed_loop of { clients : int; think : float }

let generator_name = function
  | Open_loop { load } -> Printf.sprintf "open(load=%.2f)" load
  | Closed_loop { clients; think } ->
    Printf.sprintf "closed(n=%d,think=%.1f)" clients think

type config = {
  name : string;
  workload : workload_kind;
  policy : policy_kind;
  partition_frames : int;
  epc_limit : int;
  enclave_pages : int;
  heap_pages : int;
  generator : generator;
  queue_capacity : int;
  deadline : float option;
  requests : int;
}

type slice = {
  sl_sys : System.t;
  sl_proc : Sim_os.Kernel.proc;
  sl_op : int -> unit;
  sl_probe : int -> int list;
}

type state = Active | Refused

type t = {
  cfg : config;
  machine : Sgx.Machine.t;
  hv : Vmm.t;
  vm : Vmm.vm;
  build_seed : int64;
  key_rng : Metrics.Rng.t;
  gen_rng : Metrics.Rng.t;
  calib_rng : Metrics.Rng.t;
  dist : Metrics.Dist.t;
  mutable slice : slice option;
  mutable state : state;
  mutable free_at : int;
  queue : int Queue.t;  (* completion cycles of admitted, unfinished requests *)
  lat : Metrics.Stats.t;
  mutable svc_mean : float;
  mutable arrivals : int;
  mutable served : int;
  mutable shed : int;
  mutable missed : int;
  mutable terminations : int;
  mutable restarts : int;
  mutable faults_acc : int;  (* faults handled by previous incarnations *)
  mutable faults_last_seen : int;  (* arbiter's bookmark *)
  mutable balloon_released_pages : int;
  mutable balloon_in_frames : int;
}

let n_keys cfg =
  match cfg.workload with
  | Kvstore -> cfg.heap_pages * 3
  | Spellcheck -> cfg.heap_pages * 48
  | Uthash -> cfg.heap_pages * 12

let slice_exn t =
  match t.slice with
  | Some s -> s
  | None -> invalid_arg "Serve.Tenant: tenant has no live enclave"

(* Build one incarnation: guest process, platform slice, policy, workload. *)
let build_slice t =
  let cfg = t.cfg in
  let avail = Vmm.partition_frames t.vm - Vmm.committed_frames t.vm in
  let epc_limit = min cfg.epc_limit avail in
  if epc_limit < 48 then
    invalid_arg
      (Printf.sprintf "Serve.Tenant %s: partition too small to (re)boot (%d frames)"
         cfg.name avail);
  let proc =
    Vmm.create_guest_proc t.hv t.vm ~size_pages:cfg.enclave_pages
      ~self_paging:true ~epc_limit
  in
  let os = Vmm.guest_os t.vm in
  let sys = System.attach ~machine:t.machine ~os ~proc () in
  let rt = System.runtime_exn sys in
  (* Re-register the balloon upcall with an accounting wrapper so the
     report can show how many pages each tenant ballooned away. *)
  Sim_os.Kernel.set_balloon_handler os proc (fun pages ->
      let released = Autarky.Runtime.balloon_release rt ~pages in
      t.balloon_released_pages <- t.balloon_released_pages + released;
      released);
  let heap = System.allocator sys ~pages:cfg.heap_pages ~cluster_pages:10 in
  let alloc ~bytes = Autarky.Allocator.alloc heap ~bytes in
  let build_rng = Metrics.Rng.create ~seed:t.build_seed in
  let progress_hook = ref (fun () -> ()) in
  let instrument = ref None in
  let finish = ref (fun () -> ()) in
  (match cfg.policy with
  | Rate_limit ->
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:512 ()
    in
    progress_hook := (fun () -> Autarky.Policy_rate_limit.progress rl);
    finish :=
      fun () ->
        Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | Clusters ->
    finish :=
      fun () ->
        let pc =
          Autarky.Policy_clusters.create ~runtime:rt
            ~clusters:(Autarky.Allocator.clusters heap)
        in
        Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | Oram ->
    let cache_pages = max 32 (epc_limit / 2) in
    let cache_base = System.reserve sys ~pages:cache_pages in
    let oram =
      Oram.Path_oram.create ~clock:(System.clock sys)
        ~rng:(Metrics.Rng.create ~seed:(Int64.add t.build_seed 9L))
        ~n_blocks:cfg.heap_pages ()
    in
    let cache =
      Autarky.Oram_cache.create ~machine:t.machine ~enclave:(System.enclave sys)
        ~touch:(fun a k -> Sgx.Cpu.access (System.cpu sys) a k)
        ~oram
        ~data_base_vpage:(Autarky.Allocator.base_vpage heap)
        ~n_pages:cfg.heap_pages ~cache_base_vpage:cache_base
        ~capacity_pages:cache_pages ()
    in
    System.pin sys (List.init cache_pages (fun i -> cache_base + i));
    let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
    instrument :=
      Some
        (Autarky.Policy_oram.accessor pol ~fallback:(fun a k ->
             Sgx.Cpu.access (System.cpu sys) a k));
    finish :=
      fun () -> Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol));
  let vm =
    match !instrument with
    | Some i ->
      System.vm sys ~instrument:i ~on_progress:(fun () -> !progress_hook ()) ()
    | None -> System.vm sys ~on_progress:(fun () -> !progress_hook ()) ()
  in
  let op, probe =
    match cfg.workload with
    | Kvstore ->
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng:build_rng ~n_entries:(n_keys cfg)
          ~value_bytes:1_024 ()
      in
      ((fun k -> ignore (Workloads.Kvstore.get kv ~key:k)), fun _ -> [])
    | Spellcheck ->
      let d =
        Workloads.Spellcheck.load_dictionary ~vm ~alloc ~rng:build_rng
          ~name:cfg.name ~n_words:(n_keys cfg) ()
      in
      ( (fun k -> ignore (Workloads.Spellcheck.check d ~word:k)),
        fun k -> Workloads.Spellcheck.signature d ~word:k )
    | Uthash ->
      let u =
        Workloads.Uthash.create ~vm ~alloc ~rng:build_rng ~n_items:(n_keys cfg)
          ~item_bytes:256 ~target_chain:10
      in
      (* Uthash emits no progress events of its own; the request is the
         natural progress unit. *)
      ( (fun k ->
          ignore (Workloads.Uthash.find u ~key:k);
          vm.Workloads.Vm.progress ()),
        fun k -> Workloads.Uthash.probe_pages u ~key:k )
  in
  !finish ();
  { sl_sys = sys; sl_proc = proc; sl_op = op; sl_probe = probe }

let create ~machine ~hv ~vm ~seed_base cfg =
  let seed k = Int64.of_int ((seed_base * 31) + k) in
  let t =
    {
      cfg;
      machine;
      hv;
      vm;
      build_seed = seed 0;
      key_rng = Metrics.Rng.create ~seed:(seed 1);
      gen_rng = Metrics.Rng.create ~seed:(seed 2);
      calib_rng = Metrics.Rng.create ~seed:(seed 3);
      dist =
        (match cfg.workload with
        | Kvstore -> Metrics.Dist.scrambled_zipfian ~n:(n_keys cfg) ()
        | Spellcheck -> Metrics.Dist.zipfian ~n:(n_keys cfg) ()
        | Uthash -> Metrics.Dist.uniform ~n:(n_keys cfg));
      slice = None;
      state = Active;
      free_at = 0;
      queue = Queue.create ();
      lat = Metrics.Stats.create ();
      svc_mean = 1.0;
      arrivals = 0;
      served = 0;
      shed = 0;
      missed = 0;
      terminations = 0;
      restarts = 0;
      faults_acc = 0;
      faults_last_seen = 0;
      balloon_released_pages = 0;
      balloon_in_frames = 0;
    }
  in
  t.slice <- Some (build_slice t);
  t

let config t = t.cfg
let name t = t.cfg.name
let sys t = (slice_exn t).sl_sys
let proc t = (slice_exn t).sl_proc
let vm t = t.vm
let dist t = t.dist
let key_rng t = t.key_rng
let gen_rng t = t.gen_rng
let state t = t.state
let set_refused t = t.state <- Refused
let free_at t = t.free_at
let set_free_at t at = t.free_at <- at
let queue t = t.queue
let latencies t = t.lat
let svc_mean t = t.svc_mean
let set_svc_mean t m = t.svc_mean <- m

let incarnation_faults t =
  match t.slice with
  | None -> 0
  | Some s -> (
    match System.runtime s.sl_sys with
    | Some rt -> Autarky.Runtime.faults_handled rt
    | None -> 0)

let faults t = t.faults_acc + incarnation_faults t

let next_key t = Metrics.Dist.sample t.dist t.key_rng

(* Calibration draws uniformly over the key space rather than from the
   serving distribution: a skewed distribution would calibrate on a few
   hot (soon-resident) keys and wildly underestimate the steady-state
   service time, turning a nominally moderate open-loop load into an
   accidental overload.  Uniform draws include the cold tail, so the
   estimate errs conservative. *)
let calib_key t = Metrics.Rng.int t.calib_rng (Metrics.Dist.size t.dist)

let request t ~key =
  let s = slice_exn t in
  System.run_in_enclave s.sl_sys (fun () -> s.sl_op key)

let probe_pages t ~key = (slice_exn t).sl_probe key

let arrivals t = t.arrivals
let served t = t.served
let shed t = t.shed
let missed t = t.missed
let terminations t = t.terminations
let restarts t = t.restarts
let incr_arrivals t = t.arrivals <- t.arrivals + 1
let incr_served t = t.served <- t.served + 1
let incr_shed t = t.shed <- t.shed + 1
let incr_missed t = t.missed <- t.missed + 1
let incr_terminations t = t.terminations <- t.terminations + 1
let balloon_released_pages t = t.balloon_released_pages
let balloon_in_frames t = t.balloon_in_frames
let add_balloon_in t n = t.balloon_in_frames <- t.balloon_in_frames + n
let faults_last_seen t = t.faults_last_seen
let set_faults_last_seen t v = t.faults_last_seen <- v

let reboot t =
  (match t.slice with
  | Some s ->
    t.faults_acc <- t.faults_acc + incarnation_faults t;
    Vmm.destroy_guest_proc t.hv t.vm s.sl_proc;
    t.slice <- None
  | None -> ());
  t.slice <- Some (build_slice t);
  t.restarts <- t.restarts + 1
