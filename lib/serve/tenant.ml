(* One tenant = one VM (static vEPC partition) hosting one self-paging
   enclave that serves keyed requests from a fixed-seed distribution.

   A tenant owns everything below the request: the guest process, the
   Autarky runtime with the tenant's protection policy, the workload
   structure built inside the enclave, and the virtual-time server state
   (busy-until cycle, bounded admission queue, latency statistics).  The
   engine only ever sees [request], [reboot] and the counters.

   Rebuilding after a termination ([reboot]) replays the same build seed,
   so an attested restart produces a byte-identical enclave image — the
   restarted instance is the same program, which is what the restart
   monitor attests.  The *policy* is no longer fixed at boot: the defense
   controller may call [set_policy] at a request boundary, and a reboot
   comes back up under the escalated policy, not the configured one.

   The workload's memory traffic always flows through an indirect
   instrument cell ([sl_iref]): [None] is the plain CPU path (demand
   policies), [Some f] routes the protected region through the ORAM
   cache.  The indirection costs nothing in the model (no charge, no
   trace), which is what makes switching a live tenant onto ORAM — and
   back off it — possible without rebooting. *)

module System = Harness.System
module Vmm = Hypervisor.Vmm

type workload_kind = Kvstore | Spellcheck | Uthash
type policy_kind = Rate_limit | Clusters | Oram | Preload

let workload_name = function
  | Kvstore -> "kvstore"
  | Spellcheck -> "spellcheck"
  | Uthash -> "uthash"

let policy_name = function
  | Rate_limit -> "rate-limit"
  | Clusters -> "clusters"
  | Oram -> "oram"
  | Preload -> "preload"

let policy_of_name = function
  | "rate-limit" -> Some Rate_limit
  | "clusters" -> Some Clusters
  | "oram" -> Some Oram
  | "preload" -> Some Preload
  | _ -> None

type generator =
  | Open_loop of { load : float }
  | Closed_loop of { clients : int; think : float }
  | Heavy_tail of { load : float; alpha : float }
  | Diurnal of { load : float; depth : float; period : float }

let generator_name = function
  | Open_loop { load } -> Printf.sprintf "open(load=%.2f)" load
  | Closed_loop { clients; think } ->
    Printf.sprintf "closed(n=%d,think=%.1f)" clients think
  | Heavy_tail { load; alpha } ->
    Printf.sprintf "pareto(load=%.2f,alpha=%.1f)" load alpha
  | Diurnal { load; depth; period } ->
    Printf.sprintf "diurnal(load=%.2f,depth=%.2f,period=%.0f)" load depth period

type config = {
  name : string;
  workload : workload_kind;
  policy : policy_kind;
  partition_frames : int;
  epc_limit : int;
  enclave_pages : int;
  heap_pages : int;
  generator : generator;
  queue_capacity : int;
  deadline : float option;
  requests : int;
  arrive_after : int;
  depart_after : int option;
}

type oram_parts = {
  op_oram : Oram.Path_oram.t;
  op_cache : Autarky.Oram_cache.t;
  op_pol : Autarky.Policy_oram.t;
  op_cache_pages : Sgx.Types.vpage list;
}

type slice = {
  sl_sys : System.t;
  sl_proc : Sim_os.Kernel.proc;
  mutable sl_op : int -> unit;
  mutable sl_probe : int -> int list;
  sl_heap : Autarky.Allocator.t;
  sl_epc_limit : int;  (* the allowance this incarnation booted with *)
  sl_iref : (Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit) option ref;
  sl_progress : (unit -> unit) ref;
  mutable sl_policy : policy_kind;
  mutable sl_managed : bool;  (* heap pages marked enclave-managed yet? *)
  (* Pre-allocated request thunk: [request] writes the key into the cell
     and passes the same closure to the enclave entry every time, so the
     served-request path allocates no per-call closure. *)
  sl_req_key : int ref;
  mutable sl_req_thunk : unit -> unit;
  (* ORAM machinery survives a de-escalation so a later re-escalation
     reuses the same (deterministically seeded) tree and cache. *)
  mutable sl_oram : oram_parts option;
}

type state = Parked | Active | Refused | Departed

type t = {
  cfg : config;
  machine : Sgx.Machine.t;
  hv : Vmm.t;
  vm : Vmm.vm;
  build_seed : int64;
  key_rng : Metrics.Rng.t;
  gen_rng : Metrics.Rng.t;
  calib_rng : Metrics.Rng.t;
  dist : Metrics.Dist.t;
  mutable slice : slice option;
  mutable active_policy : policy_kind;  (* survives reboots *)
  mutable in_request : bool;
  mutable policy_switches : int;
  mutable state : state;
  mutable free_at : int;
  queue : Ring.t;  (* completion cycles of admitted, unfinished requests *)
  lat : Metrics.Stats.t;
  lat_sketch : Metrics.Sketch.t option;
      (* [Some _] switches latency accounting from the store-every-sample
         [lat] to O(1) sketch state (the fleet-scale path). *)
  mutable boot_cycles : int;  (* cold-start cost of a churn join; 0 otherwise *)
  mutable svc_mean : float;
  mutable arrivals : int;
  mutable served : int;
  mutable shed : int;
  mutable missed : int;
  mutable terminations : int;
  mutable restarts : int;
  mutable faults_acc : int;  (* faults handled by previous incarnations *)
  mutable faults_last_seen : int;  (* arbiter's bookmark *)
  mutable balloon_released_pages : int;
  mutable balloon_in_frames : int;
  mutable balloon_upcalls : int;
}

let n_keys cfg =
  match cfg.workload with
  | Kvstore -> cfg.heap_pages * 3
  | Spellcheck -> cfg.heap_pages * 48
  | Uthash -> cfg.heap_pages * 12

let slice_exn t =
  match t.slice with
  | Some s -> s
  | None -> invalid_arg "Serve.Tenant: tenant has no live enclave"

let ensure_managed sl =
  if not sl.sl_managed then begin
    System.manage sl.sl_sys (Autarky.Allocator.allocated_pages sl.sl_heap);
    sl.sl_managed <- true
  end

(* Build the PathORAM tree, the pinned cache and the policy object.  The
   tree seed derives from the build seed alone, so an escalation after a
   reboot replays the identical structure. *)
let build_oram t sl =
  let sys = sl.sl_sys in
  let cfg = t.cfg in
  let cache_pages = max 32 (sl.sl_epc_limit / 2) in
  let cache_base = System.reserve sys ~pages:cache_pages in
  let oram =
    Oram.Path_oram.create ~clock:(System.clock sys)
      ~rng:(Metrics.Rng.create ~seed:(Int64.add t.build_seed 9L))
      ~n_blocks:cfg.heap_pages ()
  in
  let cache =
    Autarky.Oram_cache.create ~machine:t.machine ~enclave:(System.enclave sys)
      ~touch:(fun a k -> Sgx.Cpu.access (System.cpu sys) a k)
      ~oram
      ~data_base_vpage:(Autarky.Allocator.base_vpage sl.sl_heap)
      ~n_pages:cfg.heap_pages ~cache_base_vpage:cache_base
      ~capacity_pages:cache_pages ()
  in
  System.pin sys (List.init cache_pages (fun i -> cache_base + i));
  let pol =
    Autarky.Policy_oram.create ~runtime:(System.runtime_exn sys) ~cache
  in
  {
    op_oram = oram;
    op_cache = cache;
    op_pol = pol;
    op_cache_pages = List.init cache_pages (fun i -> cache_base + i);
  }

let oram_accessor sys pol =
  Autarky.Policy_oram.accessor pol ~fallback:(fun a k ->
      Sgx.Cpu.access (System.cpu sys) a k)

(* Bring previously evicted (still enclave-managed) cache pages back
   resident — the re-escalation counterpart of {!System.pin}. *)
let refetch_pinned sys pages =
  let pager = Autarky.Runtime.pager (System.runtime_exn sys) in
  let need =
    List.filter (fun p -> not (Autarky.Pager.resident pager p)) pages
  in
  let rec chunks n = function
    | [] -> []
    | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take n [] l in
      c :: chunks n rest
  in
  List.iter
    (fun chunk ->
      Autarky.Pager.make_room pager ~incoming:(List.length chunk)
        ~victims:(fun () -> Autarky.Pager.oldest_residents pager 16);
      Autarky.Pager.fetch pager chunk)
    (chunks 64 need)

(* Per-policy setup that must run *before* the workload is built (the
   rate limiter counts the build's progress events; the ORAM cache must
   intercept nothing during the build but its machinery is created
   up-front, exactly as the fixed-policy boot did).  Returns the finish
   step that runs after the workload exists. *)
let pre_install t sl kind =
  let sys = sl.sl_sys in
  let rt = System.runtime_exn sys in
  match kind with
  | Rate_limit ->
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:512 ()
    in
    sl.sl_progress := (fun () -> Autarky.Policy_rate_limit.progress rl);
    fun () ->
      Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
      ensure_managed sl
  | Clusters ->
    fun () ->
      let pc =
        Autarky.Policy_clusters.create ~runtime:rt
          ~clusters:(Autarky.Allocator.clusters sl.sl_heap)
      in
      Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
      ensure_managed sl
  | Preload ->
    fun () ->
      let pp =
        Autarky.Policy_preload.create ~runtime:rt
          ~pages:(Autarky.Allocator.allocated_pages sl.sl_heap) ()
      in
      Autarky.Runtime.set_policy rt (Autarky.Policy_preload.policy pp);
      ensure_managed sl;
      Autarky.Policy_preload.preload pp
  | Oram ->
    let parts = build_oram t sl in
    sl.sl_oram <- Some parts;
    sl.sl_iref := Some (oram_accessor sys parts.op_pol);
    fun () ->
      Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy parts.op_pol)

(* Live policy switch on an already-serving slice.  The caller
   ([set_policy]) guarantees we are at a request boundary. *)
let switch_policy t sl ~from_ ~to_ =
  let sys = sl.sl_sys in
  let rt = System.runtime_exn sys in
  let pager = Autarky.Runtime.pager rt in
  let install kind =
    match kind with
    | Rate_limit ->
      let rl =
        Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:512 ()
      in
      sl.sl_progress := (fun () -> Autarky.Policy_rate_limit.progress rl);
      Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
      ensure_managed sl
    | Clusters ->
      let pc =
        Autarky.Policy_clusters.create ~runtime:rt
          ~clusters:(Autarky.Allocator.clusters sl.sl_heap)
      in
      Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
      ensure_managed sl
    | Preload ->
      (* May raise Invalid_argument when the set does not fit the
         budget — the caller rolls back to [from_]. *)
      let pp =
        Autarky.Policy_preload.create ~runtime:rt
          ~pages:(Autarky.Allocator.allocated_pages sl.sl_heap) ()
      in
      Autarky.Runtime.set_policy rt (Autarky.Policy_preload.policy pp);
      ensure_managed sl;
      Autarky.Policy_preload.preload pp
    | Oram ->
      (* Sealed state handoff: every resident heap page leaves the EPC
         through the pager's seal-and-evict path, then the working set
         is charged into the oblivious store, block by block.  The
         previous policy may have ballooned the pager budget down toward
         its floor; the escalation rebuilds the memory plan, so restore
         the boot budget first — pinning the cache into a 16-page budget
         would evict the cache's own pages.  Later pressure reaches the
         ORAM policy's own balloon handler, which shrinks the cache. *)
      let boot_budget = max 1 (sl.sl_epc_limit - 64) in
      if Autarky.Pager.budget pager < boot_budget then
        Autarky.Pager.set_budget pager boot_budget;
      let resident_heap =
        List.filter
          (Autarky.Pager.resident pager)
          (Autarky.Allocator.allocated_pages sl.sl_heap)
      in
      Autarky.Pager.evict pager resident_heap;
      let parts =
        match sl.sl_oram with
        | Some p ->
          refetch_pinned sys p.op_cache_pages;
          p
        | None ->
          let p = build_oram t sl in
          sl.sl_oram <- Some p;
          p
      in
      let base = Autarky.Allocator.base_vpage sl.sl_heap in
      List.iter
        (fun vp ->
          Oram.Path_oram.access parts.op_oram ~block:(vp - base) (fun _ -> ()))
        resident_heap;
      sl.sl_iref := Some (oram_accessor sys parts.op_pol);
      Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy parts.op_pol)
  in
  (* Tear the old policy down to a neutral demand-paged state. *)
  (match from_ with
  | Oram -> (
    match sl.sl_oram with
    | Some p ->
      ignore (Autarky.Oram_cache.flush p.op_cache);
      sl.sl_iref := None;
      Autarky.Pager.evict pager
        (List.filter (Autarky.Pager.resident pager) p.op_cache_pages)
    | None -> ())
  | Rate_limit -> sl.sl_progress := (fun () -> ())
  | Clusters | Preload -> ());
  match install to_ with
  | () -> ()
  | exception Invalid_argument msg ->
    (* A refused escalation (preload set over budget) must leave the
       tenant under a working policy: reinstall the previous one.  The
       rollback path cannot itself raise Invalid_argument — RL/Clusters
       never do, and an Oram rollback reuses the surviving parts. *)
    install from_;
    raise (Invalid_argument msg)

(* Build one incarnation: guest process, platform slice, policy, workload. *)
let build_slice t =
  let cfg = t.cfg in
  let avail = Vmm.partition_frames t.vm - Vmm.committed_frames t.vm in
  let epc_limit = min cfg.epc_limit avail in
  if epc_limit < 48 then
    invalid_arg
      (Printf.sprintf "Serve.Tenant %s: partition too small to (re)boot (%d frames)"
         cfg.name avail);
  let proc =
    Vmm.create_guest_proc t.hv t.vm ~size_pages:cfg.enclave_pages
      ~self_paging:true ~epc_limit
  in
  let os = Vmm.guest_os t.vm in
  let sys = System.attach ~machine:t.machine ~os ~proc () in
  let rt = System.runtime_exn sys in
  (* Re-register the balloon upcall with an accounting wrapper so the
     report can show how many pages each tenant ballooned away — and the
     defense controller can read upcall pressure as an attack signal. *)
  Sim_os.Kernel.set_balloon_handler os proc (fun pages ->
      t.balloon_upcalls <- t.balloon_upcalls + 1;
      let released = Autarky.Runtime.balloon_release rt ~pages in
      t.balloon_released_pages <- t.balloon_released_pages + released;
      released);
  let heap = System.allocator sys ~pages:cfg.heap_pages ~cluster_pages:10 in
  let alloc ~bytes = Autarky.Allocator.alloc heap ~bytes in
  let build_rng = Metrics.Rng.create ~seed:t.build_seed in
  let sl =
    {
      sl_sys = sys;
      sl_proc = proc;
      sl_op = (fun _ -> ());
      sl_probe = (fun _ -> []);
      sl_heap = heap;
      sl_epc_limit = epc_limit;
      sl_iref = ref None;
      sl_progress = ref (fun () -> ());
      sl_policy = t.active_policy;
      sl_managed = false;
      sl_req_key = ref 0;
      sl_req_thunk = (fun () -> ());
      sl_oram = None;
    }
  in
  sl.sl_req_thunk <- (fun () -> sl.sl_op !(sl.sl_req_key));
  let finish = pre_install t sl t.active_policy in
  let vm =
    System.vm sys
      ~instrument:(fun a k ->
        match !(sl.sl_iref) with
        | Some f -> f a k
        | None -> Sgx.Cpu.access (System.cpu sys) a k)
      ~on_progress:(fun () -> !(sl.sl_progress) ())
      ()
  in
  let op, probe =
    match cfg.workload with
    | Kvstore ->
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng:build_rng ~n_entries:(n_keys cfg)
          ~value_bytes:1_024 ()
      in
      ((fun k -> ignore (Workloads.Kvstore.get kv ~key:k)), fun _ -> [])
    | Spellcheck ->
      let d =
        Workloads.Spellcheck.load_dictionary ~vm ~alloc ~rng:build_rng
          ~name:cfg.name ~n_words:(n_keys cfg) ()
      in
      ( (fun k -> ignore (Workloads.Spellcheck.check d ~word:k)),
        fun k -> Workloads.Spellcheck.signature d ~word:k )
    | Uthash ->
      let u =
        Workloads.Uthash.create ~vm ~alloc ~rng:build_rng ~n_items:(n_keys cfg)
          ~item_bytes:256 ~target_chain:10
      in
      (* Uthash emits no progress events of its own; the request is the
         natural progress unit. *)
      ( (fun k ->
          ignore (Workloads.Uthash.find u ~key:k);
          vm.Workloads.Vm.progress ()),
        fun k -> Workloads.Uthash.probe_pages u ~key:k )
  in
  sl.sl_op <- op;
  sl.sl_probe <- probe;
  finish ();
  sl

let create ?(sketch = false) ~machine ~hv ~vm ~seed_base cfg =
  let seed k = Int64.of_int ((seed_base * 31) + k) in
  let t =
    {
      cfg;
      machine;
      hv;
      vm;
      build_seed = seed 0;
      key_rng = Metrics.Rng.create ~seed:(seed 1);
      gen_rng = Metrics.Rng.create ~seed:(seed 2);
      calib_rng = Metrics.Rng.create ~seed:(seed 3);
      dist =
        (match cfg.workload with
        | Kvstore -> Metrics.Dist.scrambled_zipfian ~n:(n_keys cfg) ()
        | Spellcheck -> Metrics.Dist.zipfian ~n:(n_keys cfg) ()
        | Uthash -> Metrics.Dist.uniform ~n:(n_keys cfg));
      slice = None;
      active_policy = cfg.policy;
      in_request = false;
      policy_switches = 0;
      state = (if cfg.arrive_after > 0 then Parked else Active);
      free_at = 0;
      queue = Ring.create ~capacity:(max 1 cfg.queue_capacity);
      lat = Metrics.Stats.create ();
      lat_sketch = (if sketch then Some (Metrics.Sketch.create ()) else None);
      boot_cycles = 0;
      svc_mean = 1.0;
      arrivals = 0;
      served = 0;
      shed = 0;
      missed = 0;
      terminations = 0;
      restarts = 0;
      faults_acc = 0;
      faults_last_seen = 0;
      balloon_released_pages = 0;
      balloon_in_frames = 0;
      balloon_upcalls = 0;
    }
  in
  (* A parked tenant (arrive_after > 0) owns its VM partition from the
     start — static vEPC partitioning reserves the slice — but builds no
     enclave until {!boot} at its join event, so the cold-start cost
     lands on the virtual timeline, not in setup. *)
  if t.state <> Parked then t.slice <- Some (build_slice t);
  t

let config t = t.cfg
let name t = t.cfg.name
let sys t = (slice_exn t).sl_sys
let proc t = (slice_exn t).sl_proc
let vm t = t.vm
let dist t = t.dist
let key_rng t = t.key_rng
let gen_rng t = t.gen_rng
let state t = t.state
let set_refused t = t.state <- Refused
let free_at t = t.free_at
let set_free_at t at = t.free_at <- at
let queue t = t.queue
let latencies t = t.lat

let record_latency t ~cycles =
  match t.lat_sketch with
  | Some sk -> Metrics.Sketch.add_int sk cycles
  | None -> Metrics.Stats.add t.lat (float_of_int cycles)

let sketch t = t.lat_sketch

let latency_summary t =
  match t.lat_sketch with
  | Some sk -> Metrics.Sketch.summary sk
  | None -> Metrics.Stats.summary t.lat

let boot_cycles t = t.boot_cycles
let svc_mean t = t.svc_mean
let set_svc_mean t m = t.svc_mean <- m
let active_policy t = t.active_policy
let policy_switches t = t.policy_switches
let balloon_upcalls t = t.balloon_upcalls

let heap_region t =
  let sl = slice_exn t in
  (Autarky.Allocator.base_vpage sl.sl_heap, t.cfg.heap_pages)

let resident_heap_pages t =
  let sl = slice_exn t in
  match System.runtime sl.sl_sys with
  | None -> []
  | Some rt ->
    let pager = Autarky.Runtime.pager rt in
    List.filter
      (Autarky.Pager.resident pager)
      (Autarky.Allocator.allocated_pages sl.sl_heap)

let set_policy t kind =
  if t.in_request then
    invalid_arg
      (Printf.sprintf
         "Serve.Tenant.set_policy %s: cannot switch policies mid-request"
         t.cfg.name);
  let sl = slice_exn t in
  if sl.sl_policy <> kind then begin
    switch_policy t sl ~from_:sl.sl_policy ~to_:kind;
    sl.sl_policy <- kind;
    t.active_policy <- kind;
    t.policy_switches <- t.policy_switches + 1
  end

let incarnation_faults t =
  match t.slice with
  | None -> 0
  | Some s -> (
    match System.runtime s.sl_sys with
    | Some rt -> Autarky.Runtime.faults_handled rt
    | None -> 0)

let faults t = t.faults_acc + incarnation_faults t

let next_key t = Metrics.Dist.sample t.dist t.key_rng

(* Calibration draws uniformly over the key space rather than from the
   serving distribution: a skewed distribution would calibrate on a few
   hot (soon-resident) keys and wildly underestimate the steady-state
   service time, turning a nominally moderate open-loop load into an
   accidental overload.  Uniform draws include the cold tail, so the
   estimate errs conservative. *)
let calib_key t = Metrics.Rng.int t.calib_rng (Metrics.Dist.size t.dist)

(* No [Fun.protect]: the wrapper and its two closures would be the last
   per-request allocations on the served-request hot path.  The thunk is
   built once per incarnation; only the key cell is written here. *)
let request t ~key =
  let s = slice_exn t in
  s.sl_req_key := key;
  t.in_request <- true;
  match System.run_in_enclave s.sl_sys s.sl_req_thunk with
  | () -> t.in_request <- false
  | exception e ->
    t.in_request <- false;
    raise e

let probe_pages t ~key = (slice_exn t).sl_probe key

let arrivals t = t.arrivals
let served t = t.served
let shed t = t.shed
let missed t = t.missed
let terminations t = t.terminations
let restarts t = t.restarts
let incr_arrivals t = t.arrivals <- t.arrivals + 1
let incr_served t = t.served <- t.served + 1
let incr_shed t = t.shed <- t.shed + 1
let incr_missed t = t.missed <- t.missed + 1
let incr_terminations t = t.terminations <- t.terminations + 1
let balloon_released_pages t = t.balloon_released_pages
let balloon_in_frames t = t.balloon_in_frames
let add_balloon_in t n = t.balloon_in_frames <- t.balloon_in_frames + n
let faults_last_seen t = t.faults_last_seen
let set_faults_last_seen t v = t.faults_last_seen <- v

let reboot t =
  (match t.slice with
  | Some s ->
    t.faults_acc <- t.faults_acc + incarnation_faults t;
    Vmm.destroy_guest_proc t.hv t.vm s.sl_proc;
    t.slice <- None
  | None -> ());
  t.in_request <- false;
  t.slice <- Some (build_slice t);
  t.restarts <- t.restarts + 1

(* Churn: a parked tenant joins the fleet.  The caller (the engine's
   Join event) brackets this in a clock span so the build — the
   cold-start attestation cost — lands on the virtual timeline. *)
let boot t =
  if t.state <> Parked then
    invalid_arg (Printf.sprintf "Serve.Tenant.boot %s: not parked" t.cfg.name);
  t.slice <- Some (build_slice t);
  t.state <- Active

let set_boot_cycles t c = t.boot_cycles <- c

let depart t =
  (match t.slice with
  | Some s ->
    t.faults_acc <- t.faults_acc + incarnation_faults t;
    Vmm.destroy_guest_proc t.hv t.vm s.sl_proc;
    t.slice <- None
  | None -> ());
  t.in_request <- false;
  Ring.clear t.queue;
  t.state <- Departed
