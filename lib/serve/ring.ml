type t = {
  slots : int array;
  mutable head : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { slots = Array.make capacity 0; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.slots
let capacity t = Array.length t.slots

let push t v =
  let cap = Array.length t.slots in
  if t.len = cap then invalid_arg "Ring.push: full";
  let tail = t.head + t.len in
  let tail = if tail >= cap then tail - cap else tail in
  t.slots.(tail) <- v;
  t.len <- t.len + 1

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.slots.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let v = t.slots.(t.head) in
  let head = t.head + 1 in
  t.head <- (if head = Array.length t.slots then 0 else head);
  t.len <- t.len - 1;
  v

let clear t =
  t.head <- 0;
  t.len <- 0
