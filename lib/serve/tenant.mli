(** One serving tenant: a VM with a static vEPC partition hosting one
    self-paging enclave, its protection policy, its workload, and its
    virtual-time server state.

    Tenants are deliberately self-contained: the engine drives them only
    through {!request}, {!reboot} and the counters, so the discrete-event
    loop never reaches into policy or workload internals.  The build is
    replayed from a fixed seed on {!reboot}, modelling an attested
    restart of the same enclave image. *)

type workload_kind = Kvstore | Spellcheck | Uthash
type policy_kind = Rate_limit | Clusters | Oram | Preload

val workload_name : workload_kind -> string
val policy_name : policy_kind -> string

val policy_of_name : string -> policy_kind option
(** Inverse of {!policy_name} ("rate-limit", "clusters", "oram",
    "preload"). *)

(** How requests arrive.  [Open_loop] issues Poisson arrivals at
    [load] times the tenant's calibrated service rate (load > 1 is an
    overload); [Closed_loop] models [clients] clients that each wait for
    their response and think for [think] mean service times before the
    next request.  [Heavy_tail] is open-loop with Pareto inter-arrival
    gaps (tail index [alpha > 1], same mean rate as [Open_loop] at equal
    [load] — see {!Workloads.Loadgen.pareto_gap}); [Diurnal] is
    open-loop with the arrival rate sinusoidally modulated by
    [1 ± depth] over a period of [period] calibrated mean service
    times. *)
type generator =
  | Open_loop of { load : float }
  | Closed_loop of { clients : int; think : float }
  | Heavy_tail of { load : float; alpha : float }
  | Diurnal of { load : float; depth : float; period : float }

val generator_name : generator -> string

type config = {
  name : string;
  workload : workload_kind;
  policy : policy_kind;
  partition_frames : int;  (** the VM's static vEPC slice *)
  epc_limit : int;  (** the enclave process's initial EPC allowance *)
  enclave_pages : int;
  heap_pages : int;
  generator : generator;
  queue_capacity : int;  (** admission-queue bound; beyond it requests shed *)
  deadline : float option;
      (** queueing deadline in multiples of the calibrated mean service
          time; requests that would start later are dropped *)
  requests : int;  (** arrivals to generate for this tenant *)
  arrive_after : int;
      (** churn: virtual cycle at which this tenant joins the fleet.
          [0] (the common case) boots it with the scenario; [> 0] parks
          it — the VM partition is reserved up front (static vEPC
          partitioning) but the enclave builds at the join event, on the
          timeline, as cold-start attestation cost *)
  depart_after : int option;
      (** churn: virtual cycle at which the tenant leaves.  Its enclave
          and guest process are destroyed; arrivals already scheduled
          past that point are dropped without being counted *)
}

(** Tenant lifecycle: [Parked] (created but not yet joined — churn),
    [Active], [Refused] (restart monitor refused re-attestation; every
    later request sheds), [Departed] (churn exit). *)
type state = Parked | Active | Refused | Departed

type t

val create :
  ?sketch:bool ->
  machine:Sgx.Machine.t -> hv:Hypervisor.Vmm.t -> vm:Hypervisor.Vmm.vm ->
  seed_base:int -> config -> t
(** Boot the tenant's enclave inside [vm] and build its workload.  All
    randomness (build layout, request keys, arrival processes) derives
    from [seed_base].  [sketch] (default false) switches latency
    accounting from the exact {!Metrics.Stats} accumulator to a
    {!Metrics.Sketch} — O(1) memory per tenant, the fleet-scale path.
    When [config.arrive_after > 0] the tenant is created [Parked]: no
    enclave is built until {!boot}. *)

val config : t -> config
val name : t -> string
val sys : t -> Harness.System.t
val proc : t -> Sim_os.Kernel.proc
val vm : t -> Hypervisor.Vmm.vm
val dist : t -> Metrics.Dist.t
val key_rng : t -> Metrics.Rng.t
val gen_rng : t -> Metrics.Rng.t

val state : t -> state
val set_refused : t -> unit

val free_at : t -> int
val set_free_at : t -> int -> unit
val queue : t -> Ring.t
(** Completion cycles of admitted, not-yet-finished requests (the
    virtual-time admission queue).  Capacity is
    [max 1 config.queue_capacity]; the engine's admission check sheds
    before the ring can overflow. *)

val latencies : t -> Metrics.Stats.t
(** The exact accumulator — empty when the tenant was created with
    [~sketch:true] (use {!latency_summary}, which dispatches). *)

val record_latency : t -> cycles:int -> unit
(** Record one served-request latency into whichever accounting backend
    this tenant uses (sketch or exact stats).  Allocation-free on the
    sketch path. *)

val sketch : t -> Metrics.Sketch.t option
(** The streaming sketch, when this tenant was created with
    [~sketch:true] — the fleet roll-up merges these. *)

val latency_summary : t -> Metrics.Stats.summary
(** Latency summary from the active backend: sketch-derived (within
    {!Metrics.Sketch.relative_error}) or exact. *)

val boot_cycles : t -> int
(** Cold-start cost (build + attestation, modeled cycles) charged at
    this tenant's churn join; 0 for tenants present from the start. *)

val set_boot_cycles : t -> int -> unit

val svc_mean : t -> float
val set_svc_mean : t -> float -> unit

(** {1 Live policy control (defense escalation)} *)

val active_policy : t -> policy_kind
(** The policy currently protecting the tenant.  Starts as
    [config.policy]; {!set_policy} moves it, and a {!reboot} comes back
    up under the escalated policy, not the configured one. *)

val set_policy : t -> policy_kind -> unit
(** Switch the live enclave to a new protection policy.  Must be called
    at a request boundary; state is handed off sealed — a switch onto
    ORAM evicts the resident working set through the pager's
    seal-and-evict path and charges it into the oblivious store, a
    switch off ORAM flushes the cache back to the tree first.  A reboot
    preserves the switched policy.  No-op when [kind] is already
    active.

    @raise Invalid_argument when called mid-request (the no-switch-
    mid-request invariant), or when an escalation to [Preload] does not
    fit the pager budget — in the latter case the previous policy is
    reinstalled before raising, so the tenant keeps serving.  May raise
    {!Sgx.Types.Enclave_terminated} if the handoff itself trips a
    policy or hardware kill. *)

val policy_switches : t -> int
(** Completed {!set_policy} transitions (lifetime, across reboots). *)

val heap_region : t -> Sgx.Types.vpage * int
(** [(base_vpage, heap_pages)] of the protected data region — the
    attack surface adversary waves aim at. *)

val resident_heap_pages : t -> Sgx.Types.vpage list
(** Heap pages currently EPC-resident according to the runtime's pager
    (empty under ORAM, where the heap lives in the oblivious store). *)

val faults : t -> int
(** Page faults handled by the tenant's runtime, cumulative across
    incarnations. *)

val next_key : t -> int
(** Draw the next serving key (fixed-seed stream). *)

val calib_key : t -> int
(** Draw a calibration key (separate stream, so calibration does not
    perturb the serving key sequence). *)

val request : t -> key:int -> unit
(** Execute one request inside the enclave (EENTER/EEXIT round trip).
    Raises {!Sgx.Types.Enclave_terminated} if a policy or the hardware
    kills the enclave mid-request. *)

val probe_pages : t -> key:int -> int list
(** Ground-truth pages [request] would touch for [key] (empty when the
    workload offers no per-key oracle) — used by the hypervisor-attack
    injection in churn tests. *)

val reboot : t -> unit
(** Tear the dead incarnation down ({!Hypervisor.Vmm.destroy_guest_proc})
    and boot a fresh one from the same build seed. *)

val boot : t -> unit
(** Churn join: build the enclave of a [Parked] tenant and mark it
    [Active].  The caller wraps this in a clock span so the build cost
    lands on the virtual timeline (see {!boot_cycles}).
    @raise Invalid_argument when the tenant is not [Parked]. *)

val depart : t -> unit
(** Churn exit: destroy the guest process (if any), clear the admission
    queue and mark the tenant [Departed].  Counters and latency
    accounting survive for the final report.  Idempotent. *)

(** {1 Engine-maintained accounting} *)

val arrivals : t -> int
val served : t -> int
val shed : t -> int
val missed : t -> int
val terminations : t -> int
val restarts : t -> int

val incr_arrivals : t -> unit
val incr_served : t -> unit
val incr_shed : t -> unit
val incr_missed : t -> unit
val incr_terminations : t -> unit

val balloon_released_pages : t -> int
(** Enclave pages this tenant released through balloon upcalls. *)

val balloon_upcalls : t -> int
(** Balloon upcalls delivered to this tenant (lifetime) — memory-
    pressure signal for the defense controller. *)

val balloon_in_frames : t -> int
(** EPC frames the arbiter moved {e to} this tenant. *)

val add_balloon_in : t -> int -> unit

val faults_last_seen : t -> int
val set_faults_last_seen : t -> int -> unit
(** The arbiter's bookmark for computing per-period fault pressure. *)
