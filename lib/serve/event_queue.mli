(** Pending-event heap for the virtual-time serving loop.

    A binary min-heap keyed by [(cycle, sequence)]: events pop in
    non-decreasing virtual time, and simultaneous events pop in push
    order.  Deterministic by construction — no physical time, no
    hashing.

    Payloads are plain ints (the engine bit-packs its event variants)
    and the heap stores them in parallel int arrays, so the serve hot
    path performs zero allocation per push/pop: [pop] deposits the
    popped event into two mutable cells read back via {!popped_at} /
    {!popped_payload} instead of building an option/tuple. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> at:int -> int -> unit
(** Schedule [payload] at virtual cycle [at] (raises [Invalid_argument]
    on a negative time).  Amortised allocation-free: the backing arrays
    double on overflow but are reused across pops. *)

val pop : t -> bool
(** Remove the earliest event, leaving it readable through
    {!popped_at} / {!popped_payload} until the next [pop].  Returns
    [false] (and leaves the cells untouched) when the queue is empty. *)

val popped_at : t -> int
(** Virtual cycle of the last successfully popped event.  Meaningless
    before the first [pop] returning [true]. *)

val popped_payload : t -> int
(** Payload of the last successfully popped event. *)

val peek_time : t -> int option
(** Virtual cycle of the earliest pending event, if any. *)
