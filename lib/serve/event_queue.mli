(** Pending-event heap for the virtual-time serving loop.

    A binary min-heap keyed by [(cycle, sequence)]: events pop in
    non-decreasing virtual time, and simultaneous events pop in push
    order.  Deterministic by construction — no physical time, no
    hashing. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> at:int -> 'a -> unit
(** Schedule [payload] at virtual cycle [at] (raises [Invalid_argument]
    on a negative time). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(at, payload)]. *)

val peek_time : 'a t -> int option
(** Virtual cycle of the earliest pending event, if any. *)
