(* The virtual-time discrete-event serving loop.

   Time is a pure event timeline measured in cycles: arrivals, client
   think times and arbiter ticks live on the {!Event_queue}; service
   durations are measured by running each request to completion on the
   shared machine clock ({!Metrics.Clock.start_span}) and re-projected
   onto the timeline as [completion = max arrival busy_until + cycles].
   Nothing reads wall-clock time, so a (scenario, seed) pair determines
   every number in the result bit-for-bit.

   Admission control per tenant: requests are shed when the bounded
   queue is full (or the tenant was refused restart by the attestation
   monitor), dropped when their queueing delay would exceed the
   deadline, and otherwise executed synchronously.  An
   [Enclave_terminated] escaping a request goes through the restart
   monitor: [Allow] reboots the tenant (the reboot's cycles land in the
   same measurement span, so restart cost shows up as server busy
   time); [Refuse] pins the tenant to [Refused] and every later request
   sheds — the termination channel is closed by admission control.

   Tenant churn rides the same timeline: a config with
   [arrive_after > 0] parks the tenant until a Join event, whose
   handler builds the enclave inside a clock span (cold-start
   attestation cost, charged as busy time through [free_at]) after the
   restart monitor admits the identity; [depart_after] schedules a
   Leave event that destroys the guest process, after which the
   tenant's remaining generated arrivals are dropped uncounted.

   The EPC arbiter is the hypervisor-level half of §5.2.1/§5.4: each
   tick it compares per-tenant fault pressure (faults handled since the
   previous tick) and, when the gap is large enough, moves a batch of
   frames from the calmest VM to the most pressured one via
   [Vmm.rebalance] — which internally evicts the donor's OS-managed
   pages and issues cooperative balloon upcalls — then raises the
   beneficiary's OS allowance and pager budget.

   Events are bit-packed ints on an int-payload heap (tag in the low 3
   bits, tenant index and client id above), and the per-event outcome
   is an int code until a defense hook actually needs the [verdict]
   variant — together with the tenants' reusable request thunks and
   ring queues this keeps the served-request path free of per-event
   allocation (measured by the Gc.allocated_bytes test in
   test/test_serve.ml). *)

module Vmm = Hypervisor.Vmm
module System = Harness.System

type attack = { atk_victim : string; atk_every : int }

type arbiter = {
  arb_period : float;  (* ticks every [period] x (max tenant mean service) *)
  arb_step : int;  (* frames moved per rebalance *)
  arb_min_partition : int;  (* never shrink a VM below this *)
  arb_threshold : int;  (* min fault-pressure gap before acting *)
}

let default_arbiter =
  { arb_period = 40.0; arb_step = 32; arb_min_partition = 96; arb_threshold = 16 }

type verdict = Served of int | Shed | Deadline_missed

(* The defense-orchestration seam: an optional observer/controller that
   the engine calls at well-defined points of the event loop.  [None]
   leaves the loop bit-for-bit identical to the hook-free engine — the
   defense tick is never scheduled and no closure runs. *)
type hook_ctx = {
  cx_tenants : Tenant.t array;
  cx_machine : Sgx.Machine.t;
  cx_hv : Vmm.t;
  cx_monitor : Autarky.Restart_monitor.t;
  cx_emit : tenant:string -> action:string -> detail:int -> unit;
}

type hooks = {
  h_period : float;  (* defense tick every [h_period] x (max mean service) *)
  h_on_start : hook_ctx -> unit;
  h_on_tick : hook_ctx -> at:int -> unit;
  h_before_request : hook_ctx -> at:int -> tenant:int -> key:int -> unit;
  h_after_request : hook_ctx -> at:int -> tenant:int -> verdict:verdict -> unit;
}

type params = {
  p_seed : int;
  p_spare_frames : int;
  p_calibration : int;
  p_max_restarts : int;
  p_arbiter : arbiter option;
  p_attack : attack option;
  p_trace : bool;
  p_sketch : bool;
  p_hooks : hooks option;
}

let default_params ~seed =
  {
    p_seed = seed;
    p_spare_frames = 128;
    p_calibration = 16;
    p_max_restarts = 3;
    p_arbiter = Some default_arbiter;
    p_attack = None;
    p_trace = true;
    p_sketch = false;
    p_hooks = None;
  }

(* Events are ints: tag in bits 0-2, tenant index in bits 3-23 (up to
   2M tenants), client id in bits 24+ for Client events. *)
let tag_arrival = 0
and tag_client = 1
and tag_arbiter = 2
and tag_defense = 3
and tag_join = 4
and tag_leave = 5

let ev_arrival i = i lsl 3
let ev_client ~i ~c = (c lsl 24) lor (i lsl 3) lor tag_client
let ev_join i = (i lsl 3) lor tag_join
let ev_leave i = (i lsl 3) lor tag_leave
let ev_tag e = e land 7
let ev_tenant e = (e asr 3) land 0x1f_ffff
let ev_client_id e = e asr 24

(* Request outcomes stay int-coded on the hot path; the [verdict]
   variant is materialised only when a defense hook is attached. *)
let out_shed = -1
and out_missed = -2

let verdict_of_outcome o =
  if o >= 0 then Served o else if o = out_shed then Shed else Deadline_missed

type result = {
  r_tenants : Tenant.t array;
  r_machine : Sgx.Machine.t;
  r_monitor : Autarky.Restart_monitor.t;
  r_end_cycle : int;  (* virtual end of serving (last completion/event) *)
  r_arbiter_moves : int;
  r_digest : string option;
}

type state = {
  st_params : params;
  st_machine : Sgx.Machine.t;
  st_hv : Vmm.t;
  st_monitor : Autarky.Restart_monitor.t;
  st_tenants : Tenant.t array;
  st_ctx : hook_ctx;
  st_digest : (Trace.Recorder.t * (unit -> string)) option;
  st_q : Event_queue.t;
  (* Pending Arrival/Client/Join/Leave events.  The periodic ticks
     (arbiter, defense) reschedule themselves only while work remains;
     testing queue emptiness instead would let two periodic events keep
     each other alive forever. *)
  mutable st_work : int;
  st_scheduled : int array;  (* arrivals generated so far, per tenant *)
  st_interarrival : float array;  (* open-loop mean interarrival, cycles *)
  st_think : float array;  (* closed-loop mean think time, cycles *)
  st_deadline : int option array;  (* resolved deadline, cycles *)
  st_period : int array;  (* resolved diurnal period, cycles *)
  st_pressure : int array;  (* arbiter scratch, reused across ticks *)
  mutable st_end : int;
  mutable st_moves : int;
}

let emit_on machine ~tenant ~action ~detail =
  match Sgx.Machine.tracer machine with
  | None -> ()
  | Some r ->
    Trace.Recorder.emit r ~actor:Trace.Event.Harness
      (Trace.Event.Serve { tenant; action; detail })

let emit st ~tenant ~action ~detail = emit_on st.st_machine ~tenant ~action ~detail

(* Inter-arrival gap for tenant [i]'s generator at cycle [at].  The
   open-loop exponential is exactly the sampler this engine has always
   used (now shared via {!Workloads.Loadgen}), so pre-existing
   scenarios replay bit-identical rng streams. *)
let gen_gap st i tn ~at =
  match (Tenant.config tn).Tenant.generator with
  | Tenant.Open_loop _ ->
    Workloads.Loadgen.exp_gap (Tenant.gen_rng tn) ~mean:st.st_interarrival.(i)
  | Tenant.Heavy_tail { alpha; _ } ->
    Workloads.Loadgen.pareto_gap (Tenant.gen_rng tn)
      ~mean:st.st_interarrival.(i) ~alpha
  | Tenant.Diurnal { depth; _ } ->
    Workloads.Loadgen.diurnal_gap (Tenant.gen_rng tn)
      ~mean:st.st_interarrival.(i) ~depth ~period:st.st_period.(i) ~at
  | Tenant.Closed_loop _ -> invalid_arg "Serve.Engine.gen_gap: closed loop"

(* Calibrate one tenant: measure its mean service time over uniform
   draws, then resolve the quantities derived from it (deadline cycles,
   diurnal period).  Runs at fleet start for present tenants and at the
   Join event for churn arrivals. *)
let calibrate_one st i tn =
  let clock = st.st_machine.Sgx.Machine.clock in
  let n = max 1 st.st_params.p_calibration in
  let span = Metrics.Clock.start_span clock in
  for _ = 1 to n do
    Tenant.request tn ~key:(Tenant.calib_key tn)
  done;
  let total = Metrics.Clock.span_cycles clock span in
  let mean = max 1.0 (float_of_int total /. float_of_int n) in
  Tenant.set_svc_mean tn mean;
  (* Start the arbiter's pressure bookmark after calibration so the
     warmup faults don't count as serving pressure. *)
  Tenant.set_faults_last_seen tn (Tenant.faults tn);
  let cfg = Tenant.config tn in
  st.st_deadline.(i) <-
    Option.map (fun d -> max 1 (int_of_float (d *. mean))) cfg.Tenant.deadline;
  (match cfg.Tenant.generator with
  | Tenant.Diurnal { period; _ } ->
    st.st_period.(i) <- max 1 (int_of_float (period *. mean))
  | _ -> ());
  emit st ~tenant:(Tenant.name tn) ~action:"calibrate"
    ~detail:(int_of_float mean)

let calibrate st =
  Array.iteri
    (fun i tn ->
      if Tenant.state tn <> Tenant.Parked then calibrate_one st i tn)
    st.st_tenants

(* Schedule tenant [i]'s first arrival(s) from virtual cycle [origin]
   (0 at fleet start, the join cycle for churn arrivals). *)
let schedule_tenant st i tn ~origin =
  let cfg = Tenant.config tn in
  if cfg.Tenant.requests > 0 then
    match cfg.Tenant.generator with
    | Tenant.Open_loop { load } | Tenant.Heavy_tail { load; _ }
    | Tenant.Diurnal { load; _ } ->
      st.st_interarrival.(i) <- Tenant.svc_mean tn /. load;
      st.st_scheduled.(i) <- 1;
      st.st_work <- st.st_work + 1;
      Event_queue.push st.st_q
        ~at:(origin + gen_gap st i tn ~at:origin)
        (ev_arrival i)
    | Tenant.Closed_loop { clients; think } ->
      let mean = think *. Tenant.svc_mean tn in
      st.st_think.(i) <- mean;
      let n = min clients cfg.Tenant.requests in
      for c = 0 to n - 1 do
        st.st_scheduled.(i) <- st.st_scheduled.(i) + 1;
        st.st_work <- st.st_work + 1;
        Event_queue.push st.st_q
          ~at:(origin + Workloads.Loadgen.exp_gap (Tenant.gen_rng tn) ~mean)
          (ev_client ~i ~c)
      done

let tick_base st =
  Array.fold_left (fun m tn -> max m (Tenant.svc_mean tn)) 1.0 st.st_tenants

let schedule_initial st =
  Array.iteri
    (fun i tn ->
      let cfg = Tenant.config tn in
      if Tenant.state tn = Tenant.Parked then begin
        st.st_work <- st.st_work + 1;
        Event_queue.push st.st_q ~at:cfg.Tenant.arrive_after (ev_join i)
      end
      else schedule_tenant st i tn ~origin:0;
      match cfg.Tenant.depart_after with
      | Some d ->
        (* A join at the same cycle pops first (lower time wins; the
           clamp keeps a misconfigured leave from preceding its join). *)
        st.st_work <- st.st_work + 1;
        Event_queue.push st.st_q
          ~at:(max d (cfg.Tenant.arrive_after + 1))
          (ev_leave i)
      | None -> ())
    st.st_tenants;
  (match st.st_params.p_arbiter with
  | None -> ()
  | Some arb ->
    let period = max 1 (int_of_float (arb.arb_period *. tick_base st)) in
    Event_queue.push st.st_q ~at:period tag_arbiter);
  match st.st_params.p_hooks with
  | None -> ()
  | Some h ->
    let period = max 1 (int_of_float (h.h_period *. tick_base st)) in
    Event_queue.push st.st_q ~at:period tag_defense

(* The hypervisor-attack injection (churn scenarios): before the
   victim's request runs, evict a resident ground-truth page of the key
   it is about to touch.  Residency is read through the guest kernel —
   the demand-paging side channel the OS/hypervisor always has. *)
let maybe_attack st tn ~key =
  match st.st_params.p_attack with
  | Some { atk_victim; atk_every }
    when String.equal atk_victim (Tenant.name tn)
         && Tenant.arrivals tn mod atk_every = 0 -> (
    let guest = Vmm.guest_os (Tenant.vm tn) in
    let proc = Tenant.proc tn in
    match
      List.find_opt
        (fun p -> Sim_os.Kernel.resident guest proc p)
        (Tenant.probe_pages tn ~key)
    with
    | Some page ->
      Vmm.hypervisor_evict st.st_hv (Tenant.vm tn) proc page;
      emit st ~tenant:(Tenant.name tn) ~action:"hv-evict" ~detail:page
    | None -> ())
  | _ -> ()

let post_hook st ~at ~i outcome =
  match st.st_params.p_hooks with
  | Some h ->
    h.h_after_request st.st_ctx ~at ~tenant:i
      ~verdict:(verdict_of_outcome outcome)
  | None -> ()

let execute st i tn ~at ~start =
  let key = Tenant.next_key tn in
  (match st.st_params.p_hooks with
  | Some h -> h.h_before_request st.st_ctx ~at ~tenant:i ~key
  | None -> ());
  maybe_attack st tn ~key;
  let clock = st.st_machine.Sgx.Machine.clock in
  let span = Metrics.Clock.start_span clock in
  try
    Tenant.request tn ~key;
    let s = max 1 (Metrics.Clock.span_cycles clock span) in
    let fin = start + s in
    Tenant.set_free_at tn fin;
    Ring.push (Tenant.queue tn) fin;
    Tenant.record_latency tn ~cycles:(fin - at);
    Tenant.incr_served tn;
    st.st_end <- max st.st_end fin;
    post_hook st ~at ~i fin;
    fin
  with Sgx.Types.Enclave_terminated { reason; _ } ->
    Tenant.incr_terminations tn;
    let identity = Tenant.name tn in
    Autarky.Restart_monitor.record_termination st.st_monitor ~identity ~reason;
    emit st ~tenant:identity ~action:"terminated" ~detail:(Tenant.terminations tn);
    (match Autarky.Restart_monitor.record_start st.st_monitor ~identity with
    | Autarky.Restart_monitor.Allow ->
      Tenant.reboot tn;
      (* The reboot ran inside this span: restart cost is busy time. *)
      let s = max 1 (Metrics.Clock.span_cycles clock span) in
      Tenant.set_free_at tn (start + s);
      Ring.clear (Tenant.queue tn);
      emit st ~tenant:identity ~action:"restart" ~detail:(Tenant.restarts tn)
    | Autarky.Restart_monitor.Refuse ->
      Tenant.set_refused tn;
      emit st ~tenant:identity ~action:"refused" ~detail:(Tenant.terminations tn));
    Tenant.incr_shed tn;
    post_hook st ~at ~i out_shed;
    out_shed

let admit st i ~at =
  let tn = st.st_tenants.(i) in
  Tenant.incr_arrivals tn;
  let q = Tenant.queue tn in
  (* Retire requests that completed before this arrival. *)
  while (not (Ring.is_empty q)) && Ring.peek q <= at do
    ignore (Ring.pop q)
  done;
  let cfg = Tenant.config tn in
  if Tenant.state tn = Tenant.Refused then begin
    Tenant.incr_shed tn;
    emit st ~tenant:(Tenant.name tn) ~action:"shed-refused" ~detail:(Tenant.shed tn);
    out_shed
  end
  else if Ring.length q >= cfg.Tenant.queue_capacity then begin
    Tenant.incr_shed tn;
    emit st ~tenant:(Tenant.name tn) ~action:"shed" ~detail:(Tenant.shed tn);
    out_shed
  end
  else begin
    let start = max at (Tenant.free_at tn) in
    match st.st_deadline.(i) with
    | Some d when start - at > d ->
      Tenant.incr_missed tn;
      emit st ~tenant:(Tenant.name tn) ~action:"deadline-missed"
        ~detail:(Tenant.missed tn);
      out_missed
    | _ -> execute st i tn ~at ~start
  end

(* A tenant VM never donates below its floor: refused and departed
   tenants (whose frames are pure waste) can be drained to the global
   minimum, while active — and parked, whose partition the join will
   need — tenants keep at least their configured allowance; pressure
   elsewhere must not starve a well-behaved neighbour. *)
let donor_floor arb tn =
  match Tenant.state tn with
  | Tenant.Refused | Tenant.Departed -> arb.arb_min_partition
  | Tenant.Active | Tenant.Parked ->
    max arb.arb_min_partition (Tenant.config tn).Tenant.epc_limit

let arbiter_tick st ~at arb =
  let n = Array.length st.st_tenants in
  let pressure = st.st_pressure in
  Array.iteri
    (fun i tn ->
      let f = Tenant.faults tn in
      pressure.(i) <- f - Tenant.faults_last_seen tn;
      Tenant.set_faults_last_seen tn f)
    st.st_tenants;
  let needy = ref (-1) in
  for i = 0 to n - 1 do
    if Tenant.state st.st_tenants.(i) = Tenant.Active then
      if !needy < 0 || pressure.(i) > pressure.(!needy) then needy := i
  done;
  if !needy >= 0 && pressure.(!needy) >= arb.arb_threshold then begin
    let ntn = st.st_tenants.(!needy) in
    let moved =
      (* Unassigned EPC first — growing from the free pool costs nobody
         anything.  Only then squeeze the calmest eligible donor VM. *)
      let free = Vmm.free_frames st.st_hv in
      if free > 0 then
        Vmm.grow_vm st.st_hv (Tenant.vm ntn) ~frames:(min arb.arb_step free)
      else begin
        let donor = ref (-1) in
        for i = 0 to n - 1 do
          if i <> !needy && pressure.(i) * 4 <= pressure.(!needy) then begin
            let tn = st.st_tenants.(i) in
            let headroom =
              Vmm.partition_frames (Tenant.vm tn) - donor_floor arb tn
            in
            if headroom > 0 && (!donor < 0 || pressure.(i) < pressure.(!donor))
            then donor := i
          end
        done;
        if !donor < 0 then 0
        else begin
          let dtn = st.st_tenants.(!donor) in
          let headroom =
            Vmm.partition_frames (Tenant.vm dtn) - donor_floor arb dtn
          in
          Vmm.rebalance st.st_hv ~from_vm:(Tenant.vm dtn) ~to_vm:(Tenant.vm ntn)
            ~frames:(min arb.arb_step headroom)
        end
      end
    in
    if moved > 0 then begin
      Tenant.add_balloon_in ntn moved;
      st.st_moves <- st.st_moves + 1;
      (* Grow the beneficiary's OS allowance and its pager budget by the
         frames that actually arrived. *)
      let proc = Tenant.proc ntn in
      Sim_os.Kernel.set_epc_limit proc (Sim_os.Kernel.epc_limit proc + moved);
      (match System.runtime (Tenant.sys ntn) with
      | Some rt ->
        let pager = Autarky.Runtime.pager rt in
        Autarky.Pager.set_budget pager (Autarky.Pager.budget pager + moved)
      | None -> ());
      emit st ~tenant:(Tenant.name ntn) ~action:"arbiter-move" ~detail:moved
    end
  end;
  st.st_end <- max st.st_end at

(* [client] is the closed-loop client id, or -1 for open-loop arrivals
   (int sentinel instead of an option — no per-event allocation). *)
let reschedule_generator st i ~at ~outcome ~client =
  let tn = st.st_tenants.(i) in
  let cfg = Tenant.config tn in
  if st.st_scheduled.(i) < cfg.Tenant.requests then
    match cfg.Tenant.generator with
    | Tenant.Open_loop _ | Tenant.Heavy_tail _ | Tenant.Diurnal _ ->
      st.st_scheduled.(i) <- st.st_scheduled.(i) + 1;
      st.st_work <- st.st_work + 1;
      Event_queue.push st.st_q ~at:(at + gen_gap st i tn ~at) (ev_arrival i)
    | Tenant.Closed_loop _ ->
      if client >= 0 then begin
        let origin = if outcome >= 0 then outcome else at in
        st.st_scheduled.(i) <- st.st_scheduled.(i) + 1;
        st.st_work <- st.st_work + 1;
        Event_queue.push st.st_q
          ~at:
            (origin
            + Workloads.Loadgen.exp_gap (Tenant.gen_rng tn)
                ~mean:st.st_think.(i))
          (ev_client ~i ~c:client)
      end

let start ?params (cfgs : Tenant.config list) =
  if cfgs = [] then invalid_arg "Serve.Engine.run: no tenants";
  let params =
    match params with Some p -> p | None -> default_params ~seed:42
  in
  let total_partition =
    List.fold_left (fun a c -> a + c.Tenant.partition_frames) 0 cfgs
  in
  let machine =
    Sgx.Machine.create ~epc_frames:(total_partition + params.p_spare_frames) ()
  in
  let digest_of =
    if params.p_trace then begin
      let recorder =
        Trace.Recorder.create ~clock:machine.Sgx.Machine.clock ()
      in
      let sink, digest_of = Trace.Sink.digest () in
      Trace.Recorder.add_sink recorder sink;
      Sgx.Machine.set_tracer machine (Some recorder);
      Some (recorder, digest_of)
    end
    else None
  in
  let hv = Vmm.create machine in
  let monitor =
    Autarky.Restart_monitor.create ~clock:machine.Sgx.Machine.clock
      ~max_restarts:params.p_max_restarts ()
  in
  let tenants =
    Array.of_list
      (List.mapi
         (fun i cfg ->
           let vm =
             Vmm.create_vm hv ~name:cfg.Tenant.name
               ~epc_frames:cfg.Tenant.partition_frames
           in
           let tn =
             Tenant.create ~sketch:params.p_sketch ~machine ~hv ~vm
               ~seed_base:((params.p_seed * 1_000) + (i * 17))
               cfg
           in
           (* Parked tenants announce themselves to the restart monitor
              at their Join event — the cold-start attestation. *)
           if Tenant.state tn <> Tenant.Parked then
             ignore
               (Autarky.Restart_monitor.record_start monitor
                  ~identity:cfg.Tenant.name);
           tn)
         cfgs)
  in
  let n = Array.length tenants in
  let ctx =
    {
      cx_tenants = tenants;
      cx_machine = machine;
      cx_hv = hv;
      cx_monitor = monitor;
      cx_emit =
        (fun ~tenant ~action ~detail -> emit_on machine ~tenant ~action ~detail);
    }
  in
  let st =
    {
      st_params = params;
      st_machine = machine;
      st_hv = hv;
      st_monitor = monitor;
      st_tenants = tenants;
      st_ctx = ctx;
      st_digest = digest_of;
      st_q = Event_queue.create ();
      st_work = 0;
      st_scheduled = Array.make n 0;
      st_interarrival = Array.make n 1.0;
      st_think = Array.make n 1.0;
      st_deadline = Array.make n None;
      st_period = Array.make n 1;
      st_pressure = Array.make n 0;
      st_end = 0;
      st_moves = 0;
    }
  in
  calibrate st;
  (match params.p_hooks with
  | Some h -> h.h_on_start ctx
  | None -> ());
  schedule_initial st;
  st

(* Churn join: attest the identity with the restart monitor, build the
   enclave inside a clock span (the cold-start cost occupies the
   server via [free_at]), calibrate, and start the generator. *)
let join st ~at i =
  let tn = st.st_tenants.(i) in
  if Tenant.state tn = Tenant.Parked then begin
    let identity = Tenant.name tn in
    match Autarky.Restart_monitor.record_start st.st_monitor ~identity with
    | Autarky.Restart_monitor.Allow ->
      let clock = st.st_machine.Sgx.Machine.clock in
      let span = Metrics.Clock.start_span clock in
      Tenant.boot tn;
      let boot = max 1 (Metrics.Clock.span_cycles clock span) in
      Tenant.set_boot_cycles tn boot;
      Tenant.set_free_at tn (at + boot);
      st.st_end <- max st.st_end (at + boot);
      calibrate_one st i tn;
      emit st ~tenant:identity ~action:"join" ~detail:boot;
      schedule_tenant st i tn ~origin:at
    | Autarky.Restart_monitor.Refuse ->
      Tenant.set_refused tn;
      emit st ~tenant:identity ~action:"join-refused" ~detail:at
  end

let leave st ~at i =
  let tn = st.st_tenants.(i) in
  if Tenant.state tn <> Tenant.Departed then begin
    Tenant.depart tn;
    emit st ~tenant:(Tenant.name tn) ~action:"depart" ~detail:at
  end

(* Process exactly one pending event; [false] when the timeline is
   exhausted.  This is the snapshot quiescent point: between two [step]
   calls no enclave is entered and no span is open, so the whole state
   graph is capturable. *)
let step st =
  if not (Event_queue.pop st.st_q) then false
  else begin
    let at = Event_queue.popped_at st.st_q in
    let ev = Event_queue.popped_payload st.st_q in
    st.st_end <- max st.st_end at;
    let tag = ev_tag ev in
    if tag = tag_arrival || tag = tag_client then begin
      st.st_work <- st.st_work - 1;
      let i = ev_tenant ev in
      (* Arrivals already on the heap when their tenant departed are
         dropped without being counted — the stream simply ends. *)
      if Tenant.state st.st_tenants.(i) <> Tenant.Departed then begin
        let outcome = admit st i ~at in
        let client = if tag = tag_client then ev_client_id ev else -1 in
        reschedule_generator st i ~at ~outcome ~client
      end
    end
    else if tag = tag_arbiter then begin
      match st.st_params.p_arbiter with
      | Some arb ->
        arbiter_tick st ~at arb;
        if st.st_work > 0 then begin
          let period = max 1 (int_of_float (arb.arb_period *. tick_base st)) in
          Event_queue.push st.st_q ~at:(at + period) tag_arbiter
        end
      | None -> ()
    end
    else if tag = tag_defense then begin
      match st.st_params.p_hooks with
      | Some h ->
        h.h_on_tick st.st_ctx ~at;
        st.st_end <- max st.st_end at;
        if st.st_work > 0 then begin
          let period = max 1 (int_of_float (h.h_period *. tick_base st)) in
          Event_queue.push st.st_q ~at:(at + period) tag_defense
        end
      | None -> ()
    end
    else if tag = tag_join then begin
      st.st_work <- st.st_work - 1;
      join st ~at (ev_tenant ev)
    end
    else begin
      st.st_work <- st.st_work - 1;
      leave st ~at (ev_tenant ev)
    end;
    true
  end

let finish st =
  Array.iter
    (fun tn ->
      emit st ~tenant:(Tenant.name tn) ~action:"done" ~detail:(Tenant.served tn))
    st.st_tenants;
  let digest =
    match st.st_digest with
    | None -> None
    | Some (recorder, digest_of) ->
      Trace.Recorder.close recorder;
      Some (digest_of ())
  in
  {
    r_tenants = st.st_tenants;
    r_machine = st.st_machine;
    r_monitor = st.st_monitor;
    r_end_cycle = st.st_end;
    r_arbiter_moves = st.st_moves;
    r_digest = digest;
  }

let machine_of st = st.st_machine
let end_cycle st = st.st_end

let run ?params cfgs =
  let st = start ?params cfgs in
  while step st do
    ()
  done;
  finish st
