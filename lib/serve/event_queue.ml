(* Binary min-heap of timed int events, ordered by (cycle, sequence).

   The sequence number breaks ties deterministically: two events due at
   the same virtual cycle pop in the order they were pushed, so the
   discrete-event loop is a pure function of its inputs — the property
   the fixed-seed serving benchmark depends on.

   The heap lives in three parallel int arrays (time / sequence /
   payload) rather than an array of entry records: pushes write into
   pre-grown slots and pops read into the two popped_* cells, so the
   steady-state served-request path allocates nothing (see the
   Gc.allocated_bytes test in test/test_serve.ml). *)

type t = {
  mutable ats : int array;
  mutable seqs : int array;
  mutable payloads : int array;
  mutable len : int;
  mutable next_seq : int;
  mutable last_at : int;
  mutable last_payload : int;
}

let create () =
  { ats = Array.make 16 0;
    seqs = Array.make 16 0;
    payloads = Array.make 16 0;
    len = 0;
    next_seq = 0;
    last_at = 0;
    last_payload = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* (at, seq) lexicographic order between slots [i] and [j]. *)
let before t i j =
  t.ats.(i) < t.ats.(j) || (t.ats.(i) = t.ats.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let a = t.ats.(i) in t.ats.(i) <- t.ats.(j); t.ats.(j) <- a;
  let s = t.seqs.(i) in t.seqs.(i) <- t.seqs.(j); t.seqs.(j) <- s;
  let p = t.payloads.(i) in t.payloads.(i) <- t.payloads.(j); t.payloads.(j) <- p

let grow t =
  let cap = 2 * Array.length t.ats in
  let ext old = let a = Array.make cap 0 in Array.blit old 0 a 0 t.len; a in
  t.ats <- ext t.ats;
  t.seqs <- ext t.seqs;
  t.payloads <- ext t.payloads

let push t ~at payload =
  if at < 0 then invalid_arg "Event_queue.push: negative time";
  if t.len = Array.length t.ats then grow t;
  let i = t.len in
  t.ats.(i) <- at;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref i in
  while !i > 0 && before t !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    swap t !i p;
    i := p
  done

let pop t =
  if t.len = 0 then false
  else begin
    t.last_at <- t.ats.(0);
    t.last_payload <- t.payloads.(0);
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.ats.(0) <- t.ats.(t.len);
      t.seqs.(0) <- t.seqs.(t.len);
      t.payloads.(0) <- t.payloads.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t l !smallest then smallest := l;
        if r < t.len && before t r !smallest then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap t !smallest !i;
          i := !smallest
        end
      done
    end;
    true
  end

let popped_at t = t.last_at
let popped_payload t = t.last_payload

let peek_time t = if t.len = 0 then None else Some t.ats.(0)
