(* Binary min-heap of timed events, ordered by (cycle, sequence).

   The sequence number breaks ties deterministically: two events due at
   the same virtual cycle pop in the order they were pushed, so the
   discrete-event loop is a pure function of its inputs — the property
   the fixed-seed serving benchmark depends on. *)

type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let dummy = t.heap.(0) in
  let heap = Array.make cap dummy in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let push t ~at payload =
  if at < 0 then invalid_arg "Event_queue.push: negative time";
  let e = { at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.heap then
    if t.len = 0 then t.heap <- Array.make 16 e else grow t;
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.at, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).at
