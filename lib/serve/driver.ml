(* Scenario front end: the default 3-tenant mixed-policy serving
   scenario, the SLO report, and the BENCH_serve.json writer.

   Every number in the report is virtual (cycles, counts, rates derived
   from the modeled clock), so the JSON is bit-identical across runs of
   the same (scenario, seed) — the property the @serve determinism
   alias locks in.  This module would be called [Serve.Harness] if that
   name did not shadow the [Harness] library inside this one. *)

type tenant_report = {
  tr_name : string;
  tr_workload : string;
  tr_policy : string;
  tr_generator : string;
  tr_arrivals : int;
  tr_served : int;
  tr_shed : int;
  tr_missed : int;
  tr_terminations : int;
  tr_restarts : int;
  tr_refused : bool;
  tr_faults : int;
  tr_balloon_released_pages : int;
  tr_balloon_in_frames : int;
  tr_partition_end : int;
  tr_epc_limit_end : int;
  tr_svc_mean_cycles : float;
  tr_latency : Metrics.Stats.summary;  (* virtual cycles *)
  tr_latency_method : string;  (* "exact" (Stats) or "sketch" *)
  tr_sketch : Metrics.Sketch.t option;  (* the sketch itself, for pooling *)
  tr_throughput_rps : float;  (* requests per virtual second *)
  tr_shed_rate : float;
  tr_departed : bool;
  tr_arrive_after : int;
  tr_depart_after : int;  (* -1 when the tenant never departs *)
  tr_boot_cycles : int;  (* churn cold-start cost; 0 for initial tenants *)
}

type report = {
  rp_seed : int;
  rp_quick : bool;
  rp_tenants : tenant_report list;
  rp_end_cycle : int;
  rp_virtual_seconds : float;
  rp_arbiter_moves : int;
  rp_digest : string option;
}

let tenant_report ~virtual_seconds tn =
  let cfg = Tenant.config tn in
  {
    tr_name = cfg.Tenant.name;
    tr_workload = Tenant.workload_name cfg.Tenant.workload;
    tr_policy = Tenant.policy_name cfg.Tenant.policy;
    tr_generator = Tenant.generator_name cfg.Tenant.generator;
    tr_arrivals = Tenant.arrivals tn;
    tr_served = Tenant.served tn;
    tr_shed = Tenant.shed tn;
    tr_missed = Tenant.missed tn;
    tr_terminations = Tenant.terminations tn;
    tr_restarts = Tenant.restarts tn;
    tr_refused = Tenant.state tn = Tenant.Refused;
    tr_faults = Tenant.faults tn;
    tr_balloon_released_pages = Tenant.balloon_released_pages tn;
    tr_balloon_in_frames = Tenant.balloon_in_frames tn;
    tr_partition_end = Hypervisor.Vmm.partition_frames (Tenant.vm tn);
    tr_epc_limit_end =
      (try Sim_os.Kernel.epc_limit (Tenant.proc tn) with Invalid_argument _ -> 0);
    tr_svc_mean_cycles = Tenant.svc_mean tn;
    tr_latency = Tenant.latency_summary tn;
    tr_latency_method =
      (match Tenant.sketch tn with Some _ -> "sketch" | None -> "exact");
    tr_sketch = Tenant.sketch tn;
    tr_throughput_rps =
      (if virtual_seconds > 0.0 then float_of_int (Tenant.served tn) /. virtual_seconds
       else 0.0);
    tr_shed_rate =
      (let a = Tenant.arrivals tn in
       if a > 0 then float_of_int (Tenant.shed tn + Tenant.missed tn) /. float_of_int a
       else 0.0);
    tr_departed = Tenant.state tn = Tenant.Departed;
    tr_arrive_after = (Tenant.config tn).Tenant.arrive_after;
    tr_depart_after =
      (match (Tenant.config tn).Tenant.depart_after with
      | Some d -> d
      | None -> -1);
    tr_boot_cycles = Tenant.boot_cycles tn;
  }

let report_of_result ~seed ~quick (res : Engine.result) =
  let model = Sgx.Machine.model res.Engine.r_machine in
  let virtual_seconds =
    float_of_int res.Engine.r_end_cycle /. model.Metrics.Cost_model.freq_hz
  in
  {
    rp_seed = seed;
    rp_quick = quick;
    rp_tenants =
      Array.to_list (Array.map (tenant_report ~virtual_seconds) res.Engine.r_tenants);
    rp_end_cycle = res.Engine.r_end_cycle;
    rp_virtual_seconds = virtual_seconds;
    rp_arbiter_moves = res.Engine.r_arbiter_moves;
    rp_digest = res.Engine.r_digest;
  }

(* --- default scenario -------------------------------------------------- *)

(* Three tenants sharing one machine, one per protection policy:

   - [kv]: memcached-style store under page clusters, moderate open-loop
     load — the well-behaved tenant whose p99 the SLO test watches.
   - [spell]: multi-dictionary spell-check server under ORAM, a small
     closed-loop client population.
   - [hash]: uthash table under rate-limiting, open-loop at 2.5x its
     service rate — deliberately overloaded, so its bounded queue sheds
     and its deadline drops requests while the other tenants ride out
     the pressure inside their own partitions. *)
let default_scenario ~quick =
  let r n = if quick then n else 4 * n in
  [
    {
      Tenant.name = "kv";
      workload = Tenant.Kvstore;
      policy = Tenant.Clusters;
      partition_frames = 320;
      epc_limit = 256;
      enclave_pages = 1_024;
      heap_pages = 512;
      generator = Tenant.Open_loop { load = 0.6 };
      queue_capacity = 32;
      deadline = None;
      requests = r 240;
      arrive_after = 0;
      depart_after = None;
    };
    {
      Tenant.name = "spell";
      workload = Tenant.Spellcheck;
      policy = Tenant.Oram;
      partition_frames = 320;
      epc_limit = 256;
      enclave_pages = 1_024;
      heap_pages = 256;
      generator = Tenant.Closed_loop { clients = 4; think = 2.0 };
      queue_capacity = 16;
      deadline = None;
      requests = r 160;
      arrive_after = 0;
      depart_after = None;
    };
    {
      Tenant.name = "hash";
      workload = Tenant.Uthash;
      policy = Tenant.Rate_limit;
      partition_frames = 256;
      epc_limit = 160;
      enclave_pages = 1_024;
      heap_pages = 512;
      generator = Tenant.Open_loop { load = 2.5 };
      queue_capacity = 16;
      deadline = Some 10.0;
      requests = r 480;
      arrive_after = 0;
      depart_after = None;
    };
  ]

(* --- JSON -------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4_096 in
  let f = Printf.sprintf "%.2f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-serve/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" r.rp_quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.rp_seed);
  Buffer.add_string b (Printf.sprintf "  \"end_cycle\": %d,\n" r.rp_end_cycle);
  Buffer.add_string b
    (Printf.sprintf "  \"virtual_seconds\": %s,\n" (f r.rp_virtual_seconds));
  Buffer.add_string b
    (Printf.sprintf "  \"arbiter_moves\": %d,\n" r.rp_arbiter_moves);
  (match r.rp_digest with
  | Some d ->
    Buffer.add_string b (Printf.sprintf "  \"trace_digest\": \"%s\",\n" (json_escape d))
  | None -> ());
  Buffer.add_string b "  \"tenants\": [\n";
  List.iteri
    (fun i t ->
      let s = t.tr_latency in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"workload\": \"%s\", \"policy\": \"%s\", \
            \"generator\": \"%s\", \"arrivals\": %d, \"served\": %d, \
            \"shed\": %d, \"deadline_missed\": %d, \"terminations\": %d, \
            \"restarts\": %d, \"refused\": %b, \"faults\": %d, \
            \"balloon_released_pages\": %d, \"balloon_in_frames\": %d, \
            \"partition_end\": %d, \"epc_limit_end\": %d, \
            \"svc_mean_cycles\": %s, \"throughput_rps\": %s, \
            \"shed_rate\": %s, \"latency_cycles\": {\"count\": %d, \
            \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \
            \"max\": %s}}%s\n"
           (json_escape t.tr_name) (json_escape t.tr_workload)
           (json_escape t.tr_policy) (json_escape t.tr_generator) t.tr_arrivals
           t.tr_served t.tr_shed t.tr_missed t.tr_terminations t.tr_restarts
           t.tr_refused t.tr_faults t.tr_balloon_released_pages
           t.tr_balloon_in_frames t.tr_partition_end t.tr_epc_limit_end
           (f t.tr_svc_mean_cycles) (f t.tr_throughput_rps) (f t.tr_shed_rate)
           s.Metrics.Stats.s_count (f s.Metrics.Stats.s_mean)
           (f s.Metrics.Stats.s_p50) (f s.Metrics.Stats.s_p95)
           (f s.Metrics.Stats.s_p99) (f s.Metrics.Stats.s_max)
           (if i = List.length r.rp_tenants - 1 then "" else ",")))
    r.rp_tenants;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- driver ------------------------------------------------------------ *)

let print_summary r =
  Printf.printf "serve: %d tenants, %d virtual cycles (%.4f s), seed %d%s\n"
    (List.length r.rp_tenants) r.rp_end_cycle r.rp_virtual_seconds r.rp_seed
    (if r.rp_quick then " (quick)" else "");
  (match r.rp_digest with
  | Some d -> Printf.printf "serve: trace digest %s\n" d
  | None -> ());
  if r.rp_arbiter_moves > 0 then
    Printf.printf "serve: arbiter rebalanced %d time(s)\n" r.rp_arbiter_moves;
  Printf.printf "  %-6s %-10s %-11s %8s %7s %6s %7s %10s %10s %10s %7s\n" "tenant"
    "workload" "policy" "arrivals" "served" "shed" "missed" "p50 cyc" "p99 cyc"
    "rps" "shed%";
  List.iter
    (fun t ->
      let s = t.tr_latency in
      Printf.printf "  %-6s %-10s %-11s %8d %7d %6d %7d %10.0f %10.0f %10.1f %6.1f%%%s\n"
        t.tr_name t.tr_workload t.tr_policy t.tr_arrivals t.tr_served t.tr_shed
        t.tr_missed s.Metrics.Stats.s_p50 s.Metrics.Stats.s_p99 t.tr_throughput_rps
        (100.0 *. t.tr_shed_rate)
        (if t.tr_refused then " [refused]"
         else if t.tr_restarts > 0 then Printf.sprintf " [%d restarts]" t.tr_restarts
         else ""))
    r.rp_tenants

let run ?(quick = false) ?(seed = 42) ?(no_arbiter = false) ?out ?(print = true)
    () =
  let params =
    let p = Engine.default_params ~seed in
    if no_arbiter then { p with Engine.p_arbiter = None } else p
  in
  let res = Engine.run ~params (default_scenario ~quick) in
  let r = report_of_result ~seed ~quick res in
  if print then print_summary r;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (to_json r);
    close_out oc;
    if print then Printf.printf "serve: wrote %s\n" file);
  r

let run_scenario ?(quick = false) ~params cfgs =
  let res = Engine.run ~params cfgs in
  report_of_result ~seed:params.Engine.p_seed ~quick res

(* --- fleet ------------------------------------------------------------- *)

(* A fleet is K independent members of the default scenario, each with
   its own machine and a seed split from the root via
   [Parallel.Pool.shard_seed] — so member i's report depends only on
   (root seed, i), never on how many domains ran the fleet.  Members
   shard across a domain pool; the merge (summed counts, merged latency
   summaries, per-member digests in shard order) is serial. *)

type fleet_tenant = {
  ft_name : string;
  ft_workload : string;
  ft_policy : string;
  ft_arrivals : int;
  ft_served : int;
  ft_shed : int;
  ft_missed : int;
  ft_latency : Metrics.Stats.summary;  (* merged across members *)
  ft_latency_method : string;  (* "pooled-sketch" or "worst-of-shards" *)
  ft_throughput_rps : float;  (* mean over members *)
}

type fleet_report = {
  fr_quick : bool;
  fr_root_seed : int;
  fr_members : report list;  (* ordered by shard index *)
  fr_tenants : fleet_tenant list;
}

let fleet_aggregate members =
  match members with
  | [] -> []
  | first :: _ ->
    let all = List.concat_map (fun m -> m.rp_tenants) members in
    List.map
      (fun t0 ->
        let rows = List.filter (fun t -> t.tr_name = t0.tr_name) all in
        let sum f = List.fold_left (fun acc t -> acc + f t) 0 rows in
        let n = float_of_int (List.length rows) in
        (* When every member carries a sketch (the fleet ran with
           [~sketch:true]) the merge is exact bucket addition and the
           percentiles describe the pooled distribution (within
           [Metrics.Sketch.relative_error]).  Otherwise fall back to the
           conservative worst-of-shards summary merge — and say so. *)
        let sketches = List.filter_map (fun t -> t.tr_sketch) rows in
        let latency, meth =
          if List.length sketches = List.length rows then
            ( Metrics.Sketch.summary (Metrics.Sketch.merged sketches),
              "pooled-sketch" )
          else
            ( Metrics.Stats.merge_summaries
                (List.map (fun t -> t.tr_latency) rows),
              "worst-of-shards" )
        in
        {
          ft_name = t0.tr_name;
          ft_workload = t0.tr_workload;
          ft_policy = t0.tr_policy;
          ft_arrivals = sum (fun t -> t.tr_arrivals);
          ft_served = sum (fun t -> t.tr_served);
          ft_shed = sum (fun t -> t.tr_shed);
          ft_missed = sum (fun t -> t.tr_missed);
          ft_latency = latency;
          ft_latency_method = meth;
          ft_throughput_rps =
            List.fold_left (fun acc t -> acc +. t.tr_throughput_rps) 0.0 rows /. n;
        })
      first.rp_tenants

let fleet_to_json fr =
  let b = Buffer.create 4_096 in
  let f = Printf.sprintf "%.2f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-fleet/2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" fr.fr_quick);
  Buffer.add_string b (Printf.sprintf "  \"root_seed\": %d,\n" fr.fr_root_seed);
  Buffer.add_string b "  \"members\": [\n";
  let last_m = List.length fr.fr_members - 1 in
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shard\": %d, \"seed\": %d, \"end_cycle\": %d, \
            \"arbiter_moves\": %d%s}%s\n"
           i m.rp_seed m.rp_end_cycle m.rp_arbiter_moves
           (match m.rp_digest with
           | Some d -> Printf.sprintf ", \"trace_digest\": \"%s\"" (json_escape d)
           | None -> "")
           (if i = last_m then "" else ",")))
    fr.fr_members;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"tenants\": [\n";
  let last_t = List.length fr.fr_tenants - 1 in
  List.iteri
    (fun i t ->
      let s = t.ft_latency in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"workload\": \"%s\", \"policy\": \"%s\", \
            \"arrivals\": %d, \"served\": %d, \"shed\": %d, \
            \"deadline_missed\": %d, \"throughput_rps\": %s, \
            \"latency_merge\": \"%s\", \
            \"latency_cycles\": {\"count\": %d, \"mean\": %s, \"p50\": %s, \
            \"p95\": %s, \"p99\": %s, \"max\": %s}}%s\n"
           (json_escape t.ft_name) (json_escape t.ft_workload)
           (json_escape t.ft_policy) t.ft_arrivals t.ft_served t.ft_shed
           t.ft_missed (f t.ft_throughput_rps)
           (json_escape t.ft_latency_method) s.Metrics.Stats.s_count
           (f s.Metrics.Stats.s_mean) (f s.Metrics.Stats.s_p50)
           (f s.Metrics.Stats.s_p95) (f s.Metrics.Stats.s_p99)
           (f s.Metrics.Stats.s_max)
           (if i = last_t then "" else ",")))
    fr.fr_tenants;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_fleet fr =
  Printf.printf "serve: fleet of %d member(s), root seed %d%s\n"
    (List.length fr.fr_members) fr.fr_root_seed
    (if fr.fr_quick then " (quick)" else "");
  List.iteri
    (fun i m ->
      Printf.printf "  member %d: seed %d, %d virtual cycles%s\n" i m.rp_seed
        m.rp_end_cycle
        (match m.rp_digest with
        | Some d -> Printf.sprintf ", digest %s" d
        | None -> ""))
    fr.fr_members;
  Printf.printf "  %-6s %-10s %-11s %8s %7s %6s %7s %10s %10s %10s\n" "tenant"
    "workload" "policy" "arrivals" "served" "shed" "missed" "p50 cyc" "p99 cyc"
    "rps";
  List.iter
    (fun t ->
      let s = t.ft_latency in
      Printf.printf "  %-6s %-10s %-11s %8d %7d %6d %7d %10.0f %10.0f %10.1f [%s]\n"
        t.ft_name t.ft_workload t.ft_policy t.ft_arrivals t.ft_served t.ft_shed
        t.ft_missed s.Metrics.Stats.s_p50 s.Metrics.Stats.s_p99
        t.ft_throughput_rps t.ft_latency_method)
    fr.fr_tenants

let fleet ?(quick = false) ?(seed = 42) ?(members = 4) ?(jobs = 1)
    ?(no_arbiter = false) ?(sketch = false) ?out ?(print = true) () =
  if members <= 0 then
    invalid_arg "Serve.Driver.fleet: members must be positive";
  let reports =
    Parallel.Pool.map ~jobs
      (fun shard ->
        let mseed = Parallel.Pool.shard_seed ~root:seed ~shard in
        let params =
          let p = Engine.default_params ~seed:mseed in
          let p = if no_arbiter then { p with Engine.p_arbiter = None } else p in
          { p with Engine.p_sketch = sketch }
        in
        let res = Engine.run ~params (default_scenario ~quick) in
        report_of_result ~seed:mseed ~quick res)
      (List.init members (fun i -> i))
  in
  let fr =
    {
      fr_quick = quick;
      fr_root_seed = seed;
      fr_members = reports;
      fr_tenants = fleet_aggregate reports;
    }
  in
  if print then print_fleet fr;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (fleet_to_json fr);
    close_out oc;
    if print then Printf.printf "serve: wrote %s\n" file);
  fr

(* --- fleet scale: one machine, many tenants ----------------------------- *)

(* The fleet-scale scenario packs [tenants] tenants onto one machine in
   a fixed per-index mix (kv/clusters moderate open loop, uthash under
   heavy-tailed Pareto arrivals, diurnal late joiners, a small
   closed-loop spellcheck population, and an overloaded uthash tenant
   that departs mid-run).  Every tenant runs with sketch latency
   accounting (O(1) state), so fleet memory is O(tenants), never
   O(arrivals).

   [span] approximates the quick-mode virtual span of the scenario at
   the default seed; churn times are placed as fractions of it so joins
   land in the opening stretch and departures mid-run in both quick and
   full mode (the full timeline is ~16x the quick one, and so are the
   churn offsets). *)
let fleet_scenario ~tenants ~quick =
  if tenants <= 0 then
    invalid_arg "Serve.Driver.fleet_scenario: tenants must be positive";
  let r n = if quick then n else 16 * n in
  let span = r 10_000_000 in
  List.init tenants (fun i ->
      let base name =
        {
          Tenant.name = Printf.sprintf "%s%03d" name i;
          workload = Tenant.Kvstore;
          policy = Tenant.Clusters;
          partition_frames = 160;
          epc_limit = 128;
          enclave_pages = 512;
          heap_pages = 128;
          generator = Tenant.Open_loop { load = 0.6 };
          queue_capacity = 16;
          deadline = None;
          requests = r 800;
          arrive_after = 0;
          depart_after = None;
        }
      in
      match i mod 10 with
      | 0 | 1 | 2 | 3 -> base "kv"
      | 4 | 5 ->
        {
          (base "ht") with
          Tenant.workload = Tenant.Uthash;
          policy = Tenant.Rate_limit;
          heap_pages = 96;
          generator = Tenant.Heavy_tail { load = 0.8; alpha = 1.5 };
          requests = r 750;
        }
      | 6 | 7 ->
        (* Late joiners: parked until [arrive_after], then pay the
           cold-start build on the timeline and serve a diurnal load. *)
        {
          (base "di") with
          Tenant.workload = Tenant.Uthash;
          policy = Tenant.Preload;
          partition_frames = 224;
          epc_limit = 192;
          heap_pages = 96;
          generator = Tenant.Diurnal { load = 0.7; depth = 0.6; period = 400.0 };
          requests = r 700;
          arrive_after = (span * 4 / 100) + (i * r 1_000);
        }
      | 8 ->
        {
          (base "cl") with
          Tenant.workload = Tenant.Spellcheck;
          policy = Tenant.Oram;
          heap_pages = 96;
          generator = Tenant.Closed_loop { clients = 2; think = 1.0 };
          requests = r 150;
        }
      | _ ->
        (* Overloaded tenant that departs mid-run; arrivals scheduled
           past the departure are dropped uncounted. *)
        {
          (base "ov") with
          Tenant.workload = Tenant.Uthash;
          policy = Tenant.Rate_limit;
          heap_pages = 96;
          generator = Tenant.Open_loop { load = 2.2 };
          queue_capacity = 8;
          deadline = Some 10.0;
          requests = r 1_800;
          depart_after = Some ((span * 55 / 100) + (i * r 2_000));
        })

type fleet_scale_report = {
  fs_quick : bool;
  fs_seed : int;
  fs_tenants_n : int;
  fs_rows : tenant_report list;  (* ordered by tenant index *)
  fs_end_cycle : int;
  fs_virtual_seconds : float;
  fs_arbiter_moves : int;
  fs_arrivals : int;
  fs_served : int;
  fs_shed : int;
  fs_missed : int;
  fs_joins : int;  (* tenants that arrived after cycle 0 *)
  fs_departures : int;
  fs_refused : int;
  fs_boot_cycles_total : int;  (* summed churn cold-start cost *)
  fs_fleet_latency : Metrics.Stats.summary;
  fs_latency_method : string;  (* "pooled-sketch" or "worst-of-shards" *)
}

(* The autarky-serve/2 report: fleet totals, the pooled-sketch roll-up
   (labeled with its merge method and error bound — satellite of the
   [Metrics.Stats.merge_summaries] conservative-tail caveat), and one
   row per tenant including the churn fields.  No worker-count-dependent
   value appears anywhere, so the bytes are identical at any [jobs]. *)
let fleet_scale_to_json fs =
  let b = Buffer.create 65_536 in
  let f = Printf.sprintf "%.2f" in
  let summ s =
    Printf.sprintf
      "{\"count\": %d, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \
       \"max\": %s}"
      s.Metrics.Stats.s_count (f s.Metrics.Stats.s_mean)
      (f s.Metrics.Stats.s_p50) (f s.Metrics.Stats.s_p95)
      (f s.Metrics.Stats.s_p99) (f s.Metrics.Stats.s_max)
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-serve/2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" fs.fs_quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" fs.fs_seed);
  Buffer.add_string b (Printf.sprintf "  \"tenants_n\": %d,\n" fs.fs_tenants_n);
  Buffer.add_string b (Printf.sprintf "  \"end_cycle\": %d,\n" fs.fs_end_cycle);
  Buffer.add_string b
    (Printf.sprintf "  \"virtual_seconds\": %s,\n" (f fs.fs_virtual_seconds));
  Buffer.add_string b
    (Printf.sprintf "  \"arbiter_moves\": %d,\n" fs.fs_arbiter_moves);
  Buffer.add_string b
    (Printf.sprintf
       "  \"totals\": {\"arrivals\": %d, \"served\": %d, \"shed\": %d, \
        \"deadline_missed\": %d, \"joins\": %d, \"departures\": %d, \
        \"refused\": %d, \"boot_cycles_total\": %d},\n"
       fs.fs_arrivals fs.fs_served fs.fs_shed fs.fs_missed fs.fs_joins
       fs.fs_departures fs.fs_refused fs.fs_boot_cycles_total);
  Buffer.add_string b
    (Printf.sprintf
       "  \"fleet_latency\": {\"method\": \"%s\", \"rel_error\": %s, \
        \"count\": %d, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \
        \"max\": %s},\n"
       (json_escape fs.fs_latency_method)
       (Printf.sprintf "%.5f" Metrics.Sketch.relative_error)
       fs.fs_fleet_latency.Metrics.Stats.s_count
       (f fs.fs_fleet_latency.Metrics.Stats.s_mean)
       (f fs.fs_fleet_latency.Metrics.Stats.s_p50)
       (f fs.fs_fleet_latency.Metrics.Stats.s_p95)
       (f fs.fs_fleet_latency.Metrics.Stats.s_p99)
       (f fs.fs_fleet_latency.Metrics.Stats.s_max));
  Buffer.add_string b "  \"tenants\": [\n";
  let last = List.length fs.fs_rows - 1 in
  List.iteri
    (fun i t ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"workload\": \"%s\", \"policy\": \"%s\", \
            \"generator\": \"%s\", \"arrivals\": %d, \"served\": %d, \
            \"shed\": %d, \"deadline_missed\": %d, \"terminations\": %d, \
            \"restarts\": %d, \"refused\": %b, \"departed\": %b, \
            \"arrive_after\": %d, \"depart_after\": %d, \"boot_cycles\": %d, \
            \"faults\": %d, \"svc_mean_cycles\": %s, \"throughput_rps\": %s, \
            \"shed_rate\": %s, \"latency_method\": \"%s\", \
            \"latency_cycles\": %s}%s\n"
           (json_escape t.tr_name) (json_escape t.tr_workload)
           (json_escape t.tr_policy) (json_escape t.tr_generator) t.tr_arrivals
           t.tr_served t.tr_shed t.tr_missed t.tr_terminations t.tr_restarts
           t.tr_refused t.tr_departed t.tr_arrive_after t.tr_depart_after
           t.tr_boot_cycles t.tr_faults (f t.tr_svc_mean_cycles)
           (f t.tr_throughput_rps) (f t.tr_shed_rate)
           (json_escape t.tr_latency_method) (summ t.tr_latency)
           (if i = last then "" else ",")))
    fs.fs_rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_fleet_scale fs =
  Printf.printf
    "serve: fleet-scale %d tenants, %d arrivals, %d virtual cycles (%.4f s), \
     seed %d%s\n"
    fs.fs_tenants_n fs.fs_arrivals fs.fs_end_cycle fs.fs_virtual_seconds
    fs.fs_seed
    (if fs.fs_quick then " (quick)" else "");
  Printf.printf
    "serve: served %d, shed %d, missed %d (shed rate %.1f%%), arbiter moved \
     %d time(s)\n"
    fs.fs_served fs.fs_shed fs.fs_missed
    (if fs.fs_arrivals > 0 then
       100.0 *. float_of_int (fs.fs_shed + fs.fs_missed)
       /. float_of_int fs.fs_arrivals
     else 0.0)
    fs.fs_arbiter_moves;
  Printf.printf
    "serve: churn — %d join(s) (cold-start %d cycles total), %d departure(s), \
     %d refused\n"
    fs.fs_joins fs.fs_boot_cycles_total fs.fs_departures fs.fs_refused;
  let s = fs.fs_fleet_latency in
  Printf.printf
    "serve: fleet latency (%s, rel err <= %.1f%%): p50 %.0f, p95 %.0f, p99 \
     %.0f, max %.0f cycles over %d samples\n"
    fs.fs_latency_method
    (100.0 *. Metrics.Sketch.relative_error)
    s.Metrics.Stats.s_p50 s.Metrics.Stats.s_p95 s.Metrics.Stats.s_p99
    s.Metrics.Stats.s_max s.Metrics.Stats.s_count

let run_fleet_scale ?(quick = false) ?(seed = 42) ?(tenants = 100) ?(jobs = 1)
    ?out ?(print = true) () =
  let cfgs = fleet_scenario ~tenants ~quick in
  let params =
    {
      (Engine.default_params ~seed) with
      Engine.p_trace = false;  (* the trace would be O(arrivals) memory *)
      p_sketch = true;
    }
  in
  let res = Engine.run ~params cfgs in
  let model = Sgx.Machine.model res.Engine.r_machine in
  let virtual_seconds =
    float_of_int res.Engine.r_end_cycle /. model.Metrics.Cost_model.freq_hz
  in
  (* Row extraction shards over the pool; the merge is task-ordered, so
     the report — and its JSON — is byte-identical at any [jobs]. *)
  let rows =
    Parallel.Pool.map ~jobs
      (fun i -> tenant_report ~virtual_seconds res.Engine.r_tenants.(i))
      (List.init (Array.length res.Engine.r_tenants) (fun i -> i))
  in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 rows in
  let sketches = List.filter_map (fun t -> t.tr_sketch) rows in
  let fleet_latency, meth =
    if List.length sketches = List.length rows && sketches <> [] then
      (Metrics.Sketch.summary (Metrics.Sketch.merged sketches), "pooled-sketch")
    else
      ( Metrics.Stats.merge_summaries (List.map (fun t -> t.tr_latency) rows),
        "worst-of-shards" )
  in
  let fs =
    {
      fs_quick = quick;
      fs_seed = seed;
      fs_tenants_n = tenants;
      fs_rows = rows;
      fs_end_cycle = res.Engine.r_end_cycle;
      fs_virtual_seconds = virtual_seconds;
      fs_arbiter_moves = res.Engine.r_arbiter_moves;
      fs_arrivals = sum (fun t -> t.tr_arrivals);
      fs_served = sum (fun t -> t.tr_served);
      fs_shed = sum (fun t -> t.tr_shed);
      fs_missed = sum (fun t -> t.tr_missed);
      fs_joins = sum (fun t -> if t.tr_arrive_after > 0 then 1 else 0);
      fs_departures = sum (fun t -> if t.tr_departed then 1 else 0);
      fs_refused = sum (fun t -> if t.tr_refused then 1 else 0);
      fs_boot_cycles_total = sum (fun t -> t.tr_boot_cycles);
      fs_fleet_latency = fleet_latency;
      fs_latency_method = meth;
    }
  in
  if print then print_fleet_scale fs;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (fleet_scale_to_json fs);
    close_out oc;
    if print then Printf.printf "serve: wrote %s\n" file);
  fs

(* --- regression gate (serve --check) ------------------------------------ *)

(* Relative drift, symmetric-safe for zero baselines (mirrors
   [Harness.Perf.check]). *)
let drift ~base ~cur =
  if base = 0.0 then (if cur = 0.0 then 0.0 else infinity)
  else abs_float (cur -. base) /. abs_float base

(* CI gate against the committed BENCH_serve.json (autarky-serve/2).

   Two layers, like the perf gate:

   - exact checks on the baseline file itself: schema, per-row and
     total conservation (arrivals = served + shed + deadline_missed),
     totals equal to the sum of the rows — corruption or a
     hand-edited baseline fails before anything is re-run;
   - a quick-mode re-run at the baseline's (seed, tenants_n), comparing
     the intensive metrics — fleet p50/p95/p99/mean and the overall
     shed rate — within [tolerance].  Intensive metrics are stable
     between quick and full runs of the same scenario shape; extensive
     counts (arrivals, end_cycle) scale with the run length and are
     deliberately not compared. *)
let check ~baseline ?(tolerance = 0.25) ?(jobs = 1) () =
  let module J = Harness.Microjson in
  let failures = ref [] in
  let fail_cell fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let ctx = baseline in
  (try
     let bj = J.of_file baseline in
     (match J.member "schema" bj with
     | Some (J.Str "autarky-serve/2") -> ()
     | Some (J.Str other) ->
       failwith (Printf.sprintf "schema %s is not autarky-serve/2" other)
     | _ -> failwith "missing schema field");
     let totals = J.mem_exn ~ctx "totals" bj in
     let ti k = J.int_ ~ctx (J.mem_exn ~ctx k totals) in
     let b_arrivals = ti "arrivals" in
     let b_served = ti "served" in
     let b_shed = ti "shed" in
     let b_missed = ti "deadline_missed" in
     if b_arrivals <> b_served + b_shed + b_missed then
       fail_cell "baseline totals: %d arrivals <> %d served + %d shed + %d missed"
         b_arrivals b_served b_shed b_missed;
     let rows = J.arr ~ctx (J.mem_exn ~ctx "tenants" bj) in
     let sums = ref (0, 0, 0, 0) in
     List.iter
       (fun row ->
         let ri k = J.int_ ~ctx (J.mem_exn ~ctx k row) in
         let name = J.str ~ctx (J.mem_exn ~ctx "name" row) in
         let a = ri "arrivals" and s = ri "served" in
         let sh = ri "shed" and m = ri "deadline_missed" in
         if a <> s + sh + m then
           fail_cell "baseline tenant %s: %d arrivals <> %d+%d+%d" name a s sh m;
         let ta, ts, tsh, tm = !sums in
         sums := (ta + a, ts + s, tsh + sh, tm + m))
       rows;
     let ta, ts, tsh, tm = !sums in
     if (ta, ts, tsh, tm) <> (b_arrivals, b_served, b_shed, b_missed) then
       fail_cell "baseline totals disagree with the sum of the tenant rows";
     let seed = J.int_ ~ctx (J.mem_exn ~ctx "seed" bj) in
     let tenants = J.int_ ~ctx (J.mem_exn ~ctx "tenants_n" bj) in
     if List.length rows <> tenants then
       fail_cell "baseline has %d tenant rows, tenants_n says %d"
         (List.length rows) tenants;
     let bl = J.mem_exn ~ctx "fleet_latency" bj in
     let bf k = J.num ~ctx (J.mem_exn ~ctx k bl) in
     (match J.str ~ctx (J.mem_exn ~ctx "method" bl) with
     | "pooled-sketch" | "worst-of-shards" -> ()
     | other -> fail_cell "baseline fleet_latency method %S unknown" other);
     let base_shed_rate =
       if b_arrivals > 0 then
         float_of_int (b_shed + b_missed) /. float_of_int b_arrivals
       else 0.0
     in
     Printf.printf "serve: checking against %s (seed %d, %d tenants, \
                    tolerance %.0f%%)\n"
       baseline seed tenants (100.0 *. tolerance);
     let cur = run_fleet_scale ~quick:true ~seed ~tenants ~jobs ~print:false () in
     if cur.fs_arrivals <> cur.fs_served + cur.fs_shed + cur.fs_missed then
       fail_cell "re-run conservation: %d arrivals <> %d+%d+%d" cur.fs_arrivals
         cur.fs_served cur.fs_shed cur.fs_missed;
     if cur.fs_latency_method <> "pooled-sketch" then
       fail_cell "re-run fleet latency method %S is not pooled-sketch"
         cur.fs_latency_method;
     let s = cur.fs_fleet_latency in
     let cur_shed_rate =
       if cur.fs_arrivals > 0 then
         float_of_int (cur.fs_shed + cur.fs_missed)
         /. float_of_int cur.fs_arrivals
       else 0.0
     in
     let cells =
       [
         ("fleet p50 cycles", bf "p50", s.Metrics.Stats.s_p50);
         ("fleet p95 cycles", bf "p95", s.Metrics.Stats.s_p95);
         ("fleet p99 cycles", bf "p99", s.Metrics.Stats.s_p99);
         ("fleet mean cycles", bf "mean", s.Metrics.Stats.s_mean);
         ("shed rate", base_shed_rate, cur_shed_rate);
       ]
     in
     Printf.printf "  %-18s %14s %14s %8s %s\n" "metric" "baseline" "current"
       "drift" "verdict";
     List.iter
       (fun (name, base, cur) ->
         let d = drift ~base ~cur in
         let ok = d <= tolerance in
         if not ok then fail_cell "%s drifted %.1f%%" name (100.0 *. d);
         Printf.printf "  %-18s %14.2f %14.2f %7.1f%% %s\n" name base cur
           (100.0 *. d)
           (if ok then "ok" else "FAIL"))
       cells
   with
  | Failure m -> fail_cell "%s: %s" baseline m
  | J.Parse_error m -> fail_cell "%s: parse error: %s" baseline m
  | Sys_error m -> fail_cell "%s" m);
  match !failures with
  | [] ->
    Printf.printf "serve: check ok\n";
    true
  | fs ->
    List.iter (fun m -> Printf.printf "serve: CHECK FAILED: %s\n" m) (List.rev fs);
    false
