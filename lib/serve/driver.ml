(* Scenario front end: the default 3-tenant mixed-policy serving
   scenario, the SLO report, and the BENCH_serve.json writer.

   Every number in the report is virtual (cycles, counts, rates derived
   from the modeled clock), so the JSON is bit-identical across runs of
   the same (scenario, seed) — the property the @serve determinism
   alias locks in.  This module would be called [Serve.Harness] if that
   name did not shadow the [Harness] library inside this one. *)

type tenant_report = {
  tr_name : string;
  tr_workload : string;
  tr_policy : string;
  tr_generator : string;
  tr_arrivals : int;
  tr_served : int;
  tr_shed : int;
  tr_missed : int;
  tr_terminations : int;
  tr_restarts : int;
  tr_refused : bool;
  tr_faults : int;
  tr_balloon_released_pages : int;
  tr_balloon_in_frames : int;
  tr_partition_end : int;
  tr_epc_limit_end : int;
  tr_svc_mean_cycles : float;
  tr_latency : Metrics.Stats.summary;  (* virtual cycles *)
  tr_throughput_rps : float;  (* requests per virtual second *)
  tr_shed_rate : float;
}

type report = {
  rp_seed : int;
  rp_quick : bool;
  rp_tenants : tenant_report list;
  rp_end_cycle : int;
  rp_virtual_seconds : float;
  rp_arbiter_moves : int;
  rp_digest : string option;
}

let tenant_report ~virtual_seconds tn =
  let cfg = Tenant.config tn in
  {
    tr_name = cfg.Tenant.name;
    tr_workload = Tenant.workload_name cfg.Tenant.workload;
    tr_policy = Tenant.policy_name cfg.Tenant.policy;
    tr_generator = Tenant.generator_name cfg.Tenant.generator;
    tr_arrivals = Tenant.arrivals tn;
    tr_served = Tenant.served tn;
    tr_shed = Tenant.shed tn;
    tr_missed = Tenant.missed tn;
    tr_terminations = Tenant.terminations tn;
    tr_restarts = Tenant.restarts tn;
    tr_refused = Tenant.state tn = Tenant.Refused;
    tr_faults = Tenant.faults tn;
    tr_balloon_released_pages = Tenant.balloon_released_pages tn;
    tr_balloon_in_frames = Tenant.balloon_in_frames tn;
    tr_partition_end = Hypervisor.Vmm.partition_frames (Tenant.vm tn);
    tr_epc_limit_end =
      (try Sim_os.Kernel.epc_limit (Tenant.proc tn) with Invalid_argument _ -> 0);
    tr_svc_mean_cycles = Tenant.svc_mean tn;
    tr_latency = Metrics.Stats.summary (Tenant.latencies tn);
    tr_throughput_rps =
      (if virtual_seconds > 0.0 then float_of_int (Tenant.served tn) /. virtual_seconds
       else 0.0);
    tr_shed_rate =
      (let a = Tenant.arrivals tn in
       if a > 0 then float_of_int (Tenant.shed tn + Tenant.missed tn) /. float_of_int a
       else 0.0);
  }

let report_of_result ~seed ~quick (res : Engine.result) =
  let model = Sgx.Machine.model res.Engine.r_machine in
  let virtual_seconds =
    float_of_int res.Engine.r_end_cycle /. model.Metrics.Cost_model.freq_hz
  in
  {
    rp_seed = seed;
    rp_quick = quick;
    rp_tenants =
      Array.to_list (Array.map (tenant_report ~virtual_seconds) res.Engine.r_tenants);
    rp_end_cycle = res.Engine.r_end_cycle;
    rp_virtual_seconds = virtual_seconds;
    rp_arbiter_moves = res.Engine.r_arbiter_moves;
    rp_digest = res.Engine.r_digest;
  }

(* --- default scenario -------------------------------------------------- *)

(* Three tenants sharing one machine, one per protection policy:

   - [kv]: memcached-style store under page clusters, moderate open-loop
     load — the well-behaved tenant whose p99 the SLO test watches.
   - [spell]: multi-dictionary spell-check server under ORAM, a small
     closed-loop client population.
   - [hash]: uthash table under rate-limiting, open-loop at 2.5x its
     service rate — deliberately overloaded, so its bounded queue sheds
     and its deadline drops requests while the other tenants ride out
     the pressure inside their own partitions. *)
let default_scenario ~quick =
  let r n = if quick then n else 4 * n in
  [
    {
      Tenant.name = "kv";
      workload = Tenant.Kvstore;
      policy = Tenant.Clusters;
      partition_frames = 320;
      epc_limit = 256;
      enclave_pages = 1_024;
      heap_pages = 512;
      generator = Tenant.Open_loop { load = 0.6 };
      queue_capacity = 32;
      deadline = None;
      requests = r 240;
    };
    {
      Tenant.name = "spell";
      workload = Tenant.Spellcheck;
      policy = Tenant.Oram;
      partition_frames = 320;
      epc_limit = 256;
      enclave_pages = 1_024;
      heap_pages = 256;
      generator = Tenant.Closed_loop { clients = 4; think = 2.0 };
      queue_capacity = 16;
      deadline = None;
      requests = r 160;
    };
    {
      Tenant.name = "hash";
      workload = Tenant.Uthash;
      policy = Tenant.Rate_limit;
      partition_frames = 256;
      epc_limit = 160;
      enclave_pages = 1_024;
      heap_pages = 512;
      generator = Tenant.Open_loop { load = 2.5 };
      queue_capacity = 16;
      deadline = Some 10.0;
      requests = r 480;
    };
  ]

(* --- JSON -------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4_096 in
  let f = Printf.sprintf "%.2f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-serve/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" r.rp_quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.rp_seed);
  Buffer.add_string b (Printf.sprintf "  \"end_cycle\": %d,\n" r.rp_end_cycle);
  Buffer.add_string b
    (Printf.sprintf "  \"virtual_seconds\": %s,\n" (f r.rp_virtual_seconds));
  Buffer.add_string b
    (Printf.sprintf "  \"arbiter_moves\": %d,\n" r.rp_arbiter_moves);
  (match r.rp_digest with
  | Some d ->
    Buffer.add_string b (Printf.sprintf "  \"trace_digest\": \"%s\",\n" (json_escape d))
  | None -> ());
  Buffer.add_string b "  \"tenants\": [\n";
  List.iteri
    (fun i t ->
      let s = t.tr_latency in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"workload\": \"%s\", \"policy\": \"%s\", \
            \"generator\": \"%s\", \"arrivals\": %d, \"served\": %d, \
            \"shed\": %d, \"deadline_missed\": %d, \"terminations\": %d, \
            \"restarts\": %d, \"refused\": %b, \"faults\": %d, \
            \"balloon_released_pages\": %d, \"balloon_in_frames\": %d, \
            \"partition_end\": %d, \"epc_limit_end\": %d, \
            \"svc_mean_cycles\": %s, \"throughput_rps\": %s, \
            \"shed_rate\": %s, \"latency_cycles\": {\"count\": %d, \
            \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \
            \"max\": %s}}%s\n"
           (json_escape t.tr_name) (json_escape t.tr_workload)
           (json_escape t.tr_policy) (json_escape t.tr_generator) t.tr_arrivals
           t.tr_served t.tr_shed t.tr_missed t.tr_terminations t.tr_restarts
           t.tr_refused t.tr_faults t.tr_balloon_released_pages
           t.tr_balloon_in_frames t.tr_partition_end t.tr_epc_limit_end
           (f t.tr_svc_mean_cycles) (f t.tr_throughput_rps) (f t.tr_shed_rate)
           s.Metrics.Stats.s_count (f s.Metrics.Stats.s_mean)
           (f s.Metrics.Stats.s_p50) (f s.Metrics.Stats.s_p95)
           (f s.Metrics.Stats.s_p99) (f s.Metrics.Stats.s_max)
           (if i = List.length r.rp_tenants - 1 then "" else ",")))
    r.rp_tenants;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- driver ------------------------------------------------------------ *)

let print_summary r =
  Printf.printf "serve: %d tenants, %d virtual cycles (%.4f s), seed %d%s\n"
    (List.length r.rp_tenants) r.rp_end_cycle r.rp_virtual_seconds r.rp_seed
    (if r.rp_quick then " (quick)" else "");
  (match r.rp_digest with
  | Some d -> Printf.printf "serve: trace digest %s\n" d
  | None -> ());
  if r.rp_arbiter_moves > 0 then
    Printf.printf "serve: arbiter rebalanced %d time(s)\n" r.rp_arbiter_moves;
  Printf.printf "  %-6s %-10s %-11s %8s %7s %6s %7s %10s %10s %10s %7s\n" "tenant"
    "workload" "policy" "arrivals" "served" "shed" "missed" "p50 cyc" "p99 cyc"
    "rps" "shed%";
  List.iter
    (fun t ->
      let s = t.tr_latency in
      Printf.printf "  %-6s %-10s %-11s %8d %7d %6d %7d %10.0f %10.0f %10.1f %6.1f%%%s\n"
        t.tr_name t.tr_workload t.tr_policy t.tr_arrivals t.tr_served t.tr_shed
        t.tr_missed s.Metrics.Stats.s_p50 s.Metrics.Stats.s_p99 t.tr_throughput_rps
        (100.0 *. t.tr_shed_rate)
        (if t.tr_refused then " [refused]"
         else if t.tr_restarts > 0 then Printf.sprintf " [%d restarts]" t.tr_restarts
         else ""))
    r.rp_tenants

let run ?(quick = false) ?(seed = 42) ?(no_arbiter = false) ?out ?(print = true)
    () =
  let params =
    let p = Engine.default_params ~seed in
    if no_arbiter then { p with Engine.p_arbiter = None } else p
  in
  let res = Engine.run ~params (default_scenario ~quick) in
  let r = report_of_result ~seed ~quick res in
  if print then print_summary r;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (to_json r);
    close_out oc;
    if print then Printf.printf "serve: wrote %s\n" file);
  r

let run_scenario ?(quick = false) ~params cfgs =
  let res = Engine.run ~params cfgs in
  report_of_result ~seed:params.Engine.p_seed ~quick res

(* --- fleet ------------------------------------------------------------- *)

(* A fleet is K independent members of the default scenario, each with
   its own machine and a seed split from the root via
   [Parallel.Pool.shard_seed] — so member i's report depends only on
   (root seed, i), never on how many domains ran the fleet.  Members
   shard across a domain pool; the merge (summed counts, merged latency
   summaries, per-member digests in shard order) is serial. *)

type fleet_tenant = {
  ft_name : string;
  ft_workload : string;
  ft_policy : string;
  ft_arrivals : int;
  ft_served : int;
  ft_shed : int;
  ft_missed : int;
  ft_latency : Metrics.Stats.summary;  (* merged across members *)
  ft_throughput_rps : float;  (* mean over members *)
}

type fleet_report = {
  fr_quick : bool;
  fr_root_seed : int;
  fr_members : report list;  (* ordered by shard index *)
  fr_tenants : fleet_tenant list;
}

let fleet_aggregate members =
  match members with
  | [] -> []
  | first :: _ ->
    let all = List.concat_map (fun m -> m.rp_tenants) members in
    List.map
      (fun t0 ->
        let rows = List.filter (fun t -> t.tr_name = t0.tr_name) all in
        let sum f = List.fold_left (fun acc t -> acc + f t) 0 rows in
        let n = float_of_int (List.length rows) in
        {
          ft_name = t0.tr_name;
          ft_workload = t0.tr_workload;
          ft_policy = t0.tr_policy;
          ft_arrivals = sum (fun t -> t.tr_arrivals);
          ft_served = sum (fun t -> t.tr_served);
          ft_shed = sum (fun t -> t.tr_shed);
          ft_missed = sum (fun t -> t.tr_missed);
          ft_latency =
            Metrics.Stats.merge_summaries (List.map (fun t -> t.tr_latency) rows);
          ft_throughput_rps =
            List.fold_left (fun acc t -> acc +. t.tr_throughput_rps) 0.0 rows /. n;
        })
      first.rp_tenants

let fleet_to_json fr =
  let b = Buffer.create 4_096 in
  let f = Printf.sprintf "%.2f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-fleet/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" fr.fr_quick);
  Buffer.add_string b (Printf.sprintf "  \"root_seed\": %d,\n" fr.fr_root_seed);
  Buffer.add_string b "  \"members\": [\n";
  let last_m = List.length fr.fr_members - 1 in
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shard\": %d, \"seed\": %d, \"end_cycle\": %d, \
            \"arbiter_moves\": %d%s}%s\n"
           i m.rp_seed m.rp_end_cycle m.rp_arbiter_moves
           (match m.rp_digest with
           | Some d -> Printf.sprintf ", \"trace_digest\": \"%s\"" (json_escape d)
           | None -> "")
           (if i = last_m then "" else ",")))
    fr.fr_members;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"tenants\": [\n";
  let last_t = List.length fr.fr_tenants - 1 in
  List.iteri
    (fun i t ->
      let s = t.ft_latency in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"workload\": \"%s\", \"policy\": \"%s\", \
            \"arrivals\": %d, \"served\": %d, \"shed\": %d, \
            \"deadline_missed\": %d, \"throughput_rps\": %s, \
            \"latency_cycles\": {\"count\": %d, \"mean\": %s, \"p50\": %s, \
            \"p95\": %s, \"p99\": %s, \"max\": %s}}%s\n"
           (json_escape t.ft_name) (json_escape t.ft_workload)
           (json_escape t.ft_policy) t.ft_arrivals t.ft_served t.ft_shed
           t.ft_missed (f t.ft_throughput_rps) s.Metrics.Stats.s_count
           (f s.Metrics.Stats.s_mean) (f s.Metrics.Stats.s_p50)
           (f s.Metrics.Stats.s_p95) (f s.Metrics.Stats.s_p99)
           (f s.Metrics.Stats.s_max)
           (if i = last_t then "" else ",")))
    fr.fr_tenants;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_fleet fr =
  Printf.printf "serve: fleet of %d member(s), root seed %d%s\n"
    (List.length fr.fr_members) fr.fr_root_seed
    (if fr.fr_quick then " (quick)" else "");
  List.iteri
    (fun i m ->
      Printf.printf "  member %d: seed %d, %d virtual cycles%s\n" i m.rp_seed
        m.rp_end_cycle
        (match m.rp_digest with
        | Some d -> Printf.sprintf ", digest %s" d
        | None -> ""))
    fr.fr_members;
  Printf.printf "  %-6s %-10s %-11s %8s %7s %6s %7s %10s %10s %10s\n" "tenant"
    "workload" "policy" "arrivals" "served" "shed" "missed" "p50 cyc" "p99 cyc"
    "rps";
  List.iter
    (fun t ->
      let s = t.ft_latency in
      Printf.printf "  %-6s %-10s %-11s %8d %7d %6d %7d %10.0f %10.0f %10.1f\n"
        t.ft_name t.ft_workload t.ft_policy t.ft_arrivals t.ft_served t.ft_shed
        t.ft_missed s.Metrics.Stats.s_p50 s.Metrics.Stats.s_p99
        t.ft_throughput_rps)
    fr.fr_tenants

let fleet ?(quick = false) ?(seed = 42) ?(members = 4) ?(jobs = 1)
    ?(no_arbiter = false) ?out ?(print = true) () =
  if members <= 0 then
    invalid_arg "Serve.Driver.fleet: members must be positive";
  let reports =
    Parallel.Pool.map ~jobs
      (fun shard ->
        let mseed = Parallel.Pool.shard_seed ~root:seed ~shard in
        let params =
          let p = Engine.default_params ~seed:mseed in
          if no_arbiter then { p with Engine.p_arbiter = None } else p
        in
        let res = Engine.run ~params (default_scenario ~quick) in
        report_of_result ~seed:mseed ~quick res)
      (List.init members (fun i -> i))
  in
  let fr =
    {
      fr_quick = quick;
      fr_root_seed = seed;
      fr_members = reports;
      fr_tenants = fleet_aggregate reports;
    }
  in
  if print then print_fleet fr;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (fleet_to_json fr);
    close_out oc;
    if print then Printf.printf "serve: wrote %s\n" file);
  fr
