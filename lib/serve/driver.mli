(** Serving scenarios and the SLO report (BENCH_serve.json).

    The report contains only virtual quantities — modeled cycles,
    request counts, rates over the modeled clock — so the JSON emitted
    for a given (scenario, seed) is byte-identical run to run.  The
    trace digest of the whole run is part of the report, extending the
    golden-trace regression net over the serving layer. *)

type tenant_report = {
  tr_name : string;
  tr_workload : string;
  tr_policy : string;
  tr_generator : string;
  tr_arrivals : int;
  tr_served : int;
  tr_shed : int;
  tr_missed : int;
  tr_terminations : int;
  tr_restarts : int;
  tr_refused : bool;
  tr_faults : int;
  tr_balloon_released_pages : int;
  tr_balloon_in_frames : int;
  tr_partition_end : int;
  tr_epc_limit_end : int;
  tr_svc_mean_cycles : float;
  tr_latency : Metrics.Stats.summary;  (** request latency, virtual cycles *)
  tr_latency_method : string;
      (** ["exact"] (full {!Metrics.Stats} sample set) or ["sketch"]
          ({!Metrics.Sketch}-derived, within
          {!Metrics.Sketch.relative_error}) *)
  tr_sketch : Metrics.Sketch.t option;
      (** the sketch itself when the tenant ran with sketch accounting —
          fleet roll-ups pool these by bucket addition *)
  tr_throughput_rps : float;  (** served requests per virtual second *)
  tr_shed_rate : float;  (** (shed + missed) / arrivals *)
  tr_departed : bool;  (** churn: tenant left before the end of the run *)
  tr_arrive_after : int;  (** churn join cycle; [0] = present from boot *)
  tr_depart_after : int;  (** configured departure cycle; [-1] = never *)
  tr_boot_cycles : int;
      (** cold-start (build + attestation) cycles charged at the churn
          join; [0] for tenants present from the start *)
}

type report = {
  rp_seed : int;
  rp_quick : bool;
  rp_tenants : tenant_report list;
  rp_end_cycle : int;
  rp_virtual_seconds : float;
  rp_arbiter_moves : int;
  rp_digest : string option;
}

val default_scenario : quick:bool -> Tenant.config list
(** The committed benchmark scenario: three tenants on one machine —
    [kv] (kvstore / clusters / moderate open loop), [spell]
    (spellcheck / ORAM / closed loop) and [hash] (uthash / rate-limit /
    overloaded open loop, bounded queue + deadline). *)

val report_of_result : seed:int -> quick:bool -> Engine.result -> report

val to_json : report -> string
(** Stable schema ["autarky-serve/1"]; deterministic for a fixed
    (scenario, seed). *)

val print_summary : report -> unit

val run :
  ?quick:bool -> ?seed:int -> ?no_arbiter:bool -> ?out:string ->
  ?print:bool -> unit -> report
(** Run {!default_scenario} and optionally write the JSON report. *)

val run_scenario : ?quick:bool -> params:Engine.params -> Tenant.config list -> report
(** Run an arbitrary scenario (used by the tests). *)

(** {1 Fleet mode}

    [K] independent members of {!default_scenario}, each on its own
    machine with a seed split from the root via
    {!Parallel.Pool.shard_seed} — member [i]'s report depends only on
    (root seed, [i]), never on the worker count, so the fleet summary
    (and every member digest) is identical at any [jobs]. *)

type fleet_tenant = {
  ft_name : string;
  ft_workload : string;
  ft_policy : string;
  ft_arrivals : int;
  ft_served : int;
  ft_shed : int;
  ft_missed : int;
  ft_latency : Metrics.Stats.summary;
      (** pooled {!Metrics.Sketch} merge when every member ran with
          sketch accounting, else the conservative
          {!Metrics.Stats.merge_summaries} worst-of-shards bound —
          [ft_latency_method] says which *)
  ft_latency_method : string;
      (** ["pooled-sketch"] (percentiles of the pooled distribution,
          within {!Metrics.Sketch.relative_error}) or
          ["worst-of-shards"] (no shard exceeded these percentiles —
          not pooled percentiles) *)
  ft_throughput_rps : float;  (** mean over members *)
}

type fleet_report = {
  fr_quick : bool;
  fr_root_seed : int;
  fr_members : report list;  (** ordered by shard index *)
  fr_tenants : fleet_tenant list;
}

val fleet_to_json : fleet_report -> string
(** Stable schema ["autarky-fleet/2"]; deterministic for a fixed
    (root seed, member count, quick).  Each tenant row labels its
    latency percentiles with the merge method ([latency_merge]). *)

val print_fleet : fleet_report -> unit

val fleet :
  ?quick:bool -> ?seed:int -> ?members:int -> ?jobs:int ->
  ?no_arbiter:bool -> ?sketch:bool -> ?out:string -> ?print:bool -> unit ->
  fleet_report
(** Run the fleet ([members] defaults to 4) over a domain pool
    ([jobs] defaults to 1; [<= 0] means {!Parallel.Pool.default_jobs})
    and merge the reports.  [sketch] (default false) runs every member
    with {!Metrics.Sketch} latency accounting, which upgrades the
    roll-up from worst-of-shards to a pooled-sketch merge.
    @raise Invalid_argument when [members <= 0]. *)

(** {1 Fleet scale}

    Many tenants on {e one} machine — the ISSUE-10 serving path.  All
    latency accounting is sketch-based (O(1) state per tenant), the
    trace recorder is off, and the report carries a pooled-sketch fleet
    roll-up, so memory stays O(tenants) however many arrivals the run
    generates. *)

val fleet_scenario : tenants:int -> quick:bool -> Tenant.config list
(** The committed fleet-scale benchmark scenario: a fixed per-index mix
    of kv/clusters open-loop tenants, heavy-tailed (Pareto) uthash
    tenants, diurnal late joiners (churn arrivals with cold-start
    attestation cost), a closed-loop spellcheck population, and
    overloaded tenants that depart mid-run.  Full mode generates ~16x
    the quick-mode arrivals.
    @raise Invalid_argument when [tenants <= 0]. *)

type fleet_scale_report = {
  fs_quick : bool;
  fs_seed : int;
  fs_tenants_n : int;
  fs_rows : tenant_report list;  (** ordered by tenant index *)
  fs_end_cycle : int;
  fs_virtual_seconds : float;
  fs_arbiter_moves : int;
  fs_arrivals : int;
  fs_served : int;
  fs_shed : int;
  fs_missed : int;
  fs_joins : int;  (** tenants that joined after cycle 0 (churn) *)
  fs_departures : int;
  fs_refused : int;
  fs_boot_cycles_total : int;  (** summed churn cold-start cost *)
  fs_fleet_latency : Metrics.Stats.summary;
      (** pooled-sketch roll-up over every tenant's served requests *)
  fs_latency_method : string;
      (** ["pooled-sketch"], or ["worst-of-shards"] if any tenant lacked
          a sketch *)
}

val fleet_scale_to_json : fleet_scale_report -> string
(** Stable schema ["autarky-serve/2"]: fleet totals (including churn
    counts), the labeled fleet latency roll-up with its error bound,
    and one row per tenant.  No worker-count-dependent value appears,
    so the bytes are identical at any [jobs]. *)

val print_fleet_scale : fleet_scale_report -> unit

val run_fleet_scale :
  ?quick:bool -> ?seed:int -> ?tenants:int -> ?jobs:int -> ?out:string ->
  ?print:bool -> unit -> fleet_scale_report
(** Run {!fleet_scenario} ([tenants] defaults to 100) and optionally
    write the [autarky-serve/2] JSON.  [jobs] shards the report
    extraction; the output is byte-identical at any value. *)

val check : baseline:string -> ?tolerance:float -> ?jobs:int -> unit -> bool
(** The serve regression gate ([autarky_sim serve --check]): validate
    the committed [autarky-serve/2] baseline (schema, exact arrival
    conservation per tenant and in total), then re-run the fleet-scale
    scenario in quick mode at the baseline's (seed, tenants_n) and
    compare the intensive metrics — fleet p50/p95/p99/mean latency and
    the overall shed rate — within [tolerance] (default 0.25) relative
    drift.  Prints a verdict table; [false] on any failure. *)
