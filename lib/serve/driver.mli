(** Serving scenarios and the SLO report (BENCH_serve.json).

    The report contains only virtual quantities — modeled cycles,
    request counts, rates over the modeled clock — so the JSON emitted
    for a given (scenario, seed) is byte-identical run to run.  The
    trace digest of the whole run is part of the report, extending the
    golden-trace regression net over the serving layer. *)

type tenant_report = {
  tr_name : string;
  tr_workload : string;
  tr_policy : string;
  tr_generator : string;
  tr_arrivals : int;
  tr_served : int;
  tr_shed : int;
  tr_missed : int;
  tr_terminations : int;
  tr_restarts : int;
  tr_refused : bool;
  tr_faults : int;
  tr_balloon_released_pages : int;
  tr_balloon_in_frames : int;
  tr_partition_end : int;
  tr_epc_limit_end : int;
  tr_svc_mean_cycles : float;
  tr_latency : Metrics.Stats.summary;  (** request latency, virtual cycles *)
  tr_throughput_rps : float;  (** served requests per virtual second *)
  tr_shed_rate : float;  (** (shed + missed) / arrivals *)
}

type report = {
  rp_seed : int;
  rp_quick : bool;
  rp_tenants : tenant_report list;
  rp_end_cycle : int;
  rp_virtual_seconds : float;
  rp_arbiter_moves : int;
  rp_digest : string option;
}

val default_scenario : quick:bool -> Tenant.config list
(** The committed benchmark scenario: three tenants on one machine —
    [kv] (kvstore / clusters / moderate open loop), [spell]
    (spellcheck / ORAM / closed loop) and [hash] (uthash / rate-limit /
    overloaded open loop, bounded queue + deadline). *)

val report_of_result : seed:int -> quick:bool -> Engine.result -> report

val to_json : report -> string
(** Stable schema ["autarky-serve/1"]; deterministic for a fixed
    (scenario, seed). *)

val print_summary : report -> unit

val run :
  ?quick:bool -> ?seed:int -> ?no_arbiter:bool -> ?out:string ->
  ?print:bool -> unit -> report
(** Run {!default_scenario} and optionally write the JSON report. *)

val run_scenario : ?quick:bool -> params:Engine.params -> Tenant.config list -> report
(** Run an arbitrary scenario (used by the tests). *)

(** {1 Fleet mode}

    [K] independent members of {!default_scenario}, each on its own
    machine with a seed split from the root via
    {!Parallel.Pool.shard_seed} — member [i]'s report depends only on
    (root seed, [i]), never on the worker count, so the fleet summary
    (and every member digest) is identical at any [jobs]. *)

type fleet_tenant = {
  ft_name : string;
  ft_workload : string;
  ft_policy : string;
  ft_arrivals : int;
  ft_served : int;
  ft_shed : int;
  ft_missed : int;
  ft_latency : Metrics.Stats.summary;
      (** {!Metrics.Stats.merge_summaries} over the members *)
  ft_throughput_rps : float;  (** mean over members *)
}

type fleet_report = {
  fr_quick : bool;
  fr_root_seed : int;
  fr_members : report list;  (** ordered by shard index *)
  fr_tenants : fleet_tenant list;
}

val fleet_to_json : fleet_report -> string
(** Stable schema ["autarky-fleet/1"]; deterministic for a fixed
    (root seed, member count, quick). *)

val print_fleet : fleet_report -> unit

val fleet :
  ?quick:bool -> ?seed:int -> ?members:int -> ?jobs:int ->
  ?no_arbiter:bool -> ?out:string -> ?print:bool -> unit -> fleet_report
(** Run the fleet ([members] defaults to 4) over a domain pool
    ([jobs] defaults to 1; [<= 0] means {!Parallel.Pool.default_jobs})
    and merge the reports.
    @raise Invalid_argument when [members <= 0]. *)
