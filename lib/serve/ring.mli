(** Bounded FIFO ring of ints for per-tenant admission queues.

    The tenant hot path pushes a completion cycle on admit and pops it
    on dispatch; [int Queue.t] allocates a cons cell per push, so the
    queue lives in a fixed int array instead.  Capacity is the
    admission bound — [push] on a full ring raises, callers check
    {!is_full} first (the shed decision). *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val capacity : t -> int

val push : t -> int -> unit
(** Append at the tail.  Raises [Invalid_argument] when full. *)

val peek : t -> int
(** Head element without removing it.  Raises [Invalid_argument] when
    empty. *)

val pop : t -> int
(** Remove and return the head.  Raises [Invalid_argument] when
    empty. *)

val clear : t -> unit
