(** Boxed reference TLB (Hashtbl + Queue): the pre-flat implementation,
    kept as a differential oracle for {!Tlb} in the style of
    [Chacha20_ref].  The interface matches {!Tlb}'s so tests can
    functorize over both implementations and compare hit/miss and
    eviction behaviour on random operation sequences. *)

type t

val create : ?capacity:int -> unit -> t
val hit : t -> Types.vpage -> Types.access_kind -> bool
val fill : ?dirty:bool -> t -> Types.vpage -> Types.perms -> unit
val fill_bits : ?dirty:bool -> t -> Types.vpage -> int -> unit
val flush : t -> unit
val flush_page : t -> Types.vpage -> unit
val size : t -> int
val capacity : t -> int
