(* Dense flat-array page table.

   One PTE is one int: bit 0 present, bits 1-3 permissions (r/w/x),
   bit 4 accessed, bit 5 dirty, bits 6+ the frame number.  A missing
   PTE is the sentinel [no_pte] (-1), which is distinguishable from
   every packed PTE because packed values are non-negative.

   The store is a dense array over a contiguous vpage window
   [base, base + Array.length tbl): enclave regions are contiguous, so
   the window stays tight.  The window grows (with slack) when a
   mapping lands outside it. *)

let no_pte = -1

let b_present = 0x1
let b_accessed = 0x10
let b_dirty = 0x20
let frame_shift = 6

(* Packed-PTE accessors; pure functions of the packed int. *)
let p_present p = p land b_present <> 0
let p_accessed p = p land b_accessed <> 0
let p_dirty p = p land b_dirty <> 0
let p_rwx p = (p lsr 1) land 7
let p_frame p = p asr frame_shift
let p_allows p kind = Types.bits_allow (p lsr 1) kind
let p_perms p = Types.perms_of_bits (p_rwx p)

let pack ~frame ~perms ~accessed ~dirty =
  b_present
  lor (Types.perms_bits perms lsl 1)
  lor (if accessed then b_accessed else 0)
  lor (if dirty then b_dirty else 0)
  lor (frame lsl frame_shift)

type t = {
  mutable base : Types.vpage; (* vpage of slot 0 *)
  mutable tbl : int array;    (* packed PTEs; [no_pte] when unmapped *)
  mutable entries : int;      (* slots holding a PTE *)
}

let create () = { base = 0; tbl = [||]; entries = 0 }

let slack = 64

(* Grow the window to cover [vp], at least doubling so repeated
   extensions amortize. *)
let grow t vp =
  let old_len = Array.length t.tbl in
  if old_len = 0 then begin
    t.base <- max 0 (vp - slack);
    t.tbl <- Array.make (2 * slack) no_pte
  end
  else begin
    let lo = min t.base (max 0 (vp - slack)) in
    let hi = max (t.base + old_len) (vp + 1 + slack) in
    let len = max (hi - lo) (2 * old_len) in
    let tbl = Array.make len no_pte in
    Array.blit t.tbl 0 tbl (t.base - lo) old_len;
    t.base <- lo;
    t.tbl <- tbl
  end

let[@inline] find_packed t vp =
  let i = vp - t.base in
  if i >= 0 && i < Array.length t.tbl then Array.unsafe_get t.tbl i else no_pte

let map t ~vpage ~frame ~perms ?(accessed = false) ?(dirty = false) () =
  if vpage < 0 then invalid_arg "Page_table.map: negative vpage";
  if frame < 0 then invalid_arg "Page_table.map: negative frame";
  if vpage - t.base < 0 || vpage - t.base >= Array.length t.tbl then grow t vpage;
  let i = vpage - t.base in
  if t.tbl.(i) = no_pte then t.entries <- t.entries + 1;
  t.tbl.(i) <- pack ~frame ~perms ~accessed ~dirty

let unmap t vpage =
  let i = vpage - t.base in
  if i >= 0 && i < Array.length t.tbl && t.tbl.(i) <> no_pte then begin
    t.tbl.(i) <- no_pte;
    t.entries <- t.entries - 1
  end

let mapped t vpage = find_packed t vpage <> no_pte

let present t vpage =
  let p = find_packed t vpage in
  p >= 0 && p land b_present <> 0

let set_perms t vpage perms =
  let p = find_packed t vpage in
  if p = no_pte then raise Not_found;
  t.tbl.(vpage - t.base) <-
    p land lnot 0b1110 lor (Types.perms_bits perms lsl 1)

let set_present t vpage on =
  let p = find_packed t vpage in
  if p <> no_pte then
    t.tbl.(vpage - t.base) <-
      (if on then p lor b_present else p land lnot b_present)

let set_frame t vpage frame =
  let p = find_packed t vpage in
  if p = no_pte then raise Not_found;
  t.tbl.(vpage - t.base) <-
    p land ((1 lsl frame_shift) - 1) lor (frame lsl frame_shift)

(* The legacy walk's accessed/dirty writeback: one store, no record. *)
let set_ad t vpage ~write =
  let p = find_packed t vpage in
  if p <> no_pte then
    t.tbl.(vpage - t.base) <-
      p lor (b_accessed lor if write then b_dirty else 0)

let clear_accessed t vpage =
  let p = find_packed t vpage in
  if p <> no_pte then t.tbl.(vpage - t.base) <- p land lnot b_accessed

let clear_dirty t vpage =
  let p = find_packed t vpage in
  if p <> no_pte then t.tbl.(vpage - t.base) <- p land lnot b_dirty

(* Ascending window scan: already sorted, no polymorphic compare. *)
let mapped_pages t =
  let acc = ref [] in
  for i = Array.length t.tbl - 1 downto 0 do
    if t.tbl.(i) <> no_pte then acc := (t.base + i) :: !acc
  done;
  !acc

let count_present t =
  let n = ref 0 in
  for i = 0 to Array.length t.tbl - 1 do
    let p = t.tbl.(i) in
    if p <> no_pte && p land b_present <> 0 then Stdlib.incr n
  done;
  !n

let count_mapped t = t.entries

(* Raw snapshot: window base + packed PTE array verbatim.  The window
   geometry (base, slack, length) affects nothing observable except
   when the next [grow] fires, but the probe digest hashes the packed
   array, so it is preserved as-is. *)
type raw = { raw_base : int; raw_tbl : int array; raw_entries : int }

let export_state t =
  { raw_base = t.base; raw_tbl = Array.copy t.tbl; raw_entries = t.entries }

let import_state r =
  if r.raw_base < 0 then invalid_arg "Page_table.import_state: negative base";
  if r.raw_entries < 0 || r.raw_entries > Array.length r.raw_tbl then
    invalid_arg "Page_table.import_state: entry count out of range";
  { base = r.raw_base; tbl = Array.copy r.raw_tbl; entries = r.raw_entries }
