type os_callbacks = {
  handle_enclave_fault : Types.os_fault_report -> unit;
  handle_preempt : enclave_id:int -> unit;
}

type t = {
  machine : Machine.t;
  page_table : Page_table.t;
  enclave : Enclave.t;
  os : os_callbacks;
  max_fault_retries : int;
  mutable access_count : int;
  mutable preempt_interval : int option;
}

let create ~machine ~page_table ~enclave ~os ?(max_fault_retries = 8) () =
  {
    machine;
    page_table;
    enclave;
    os;
    max_fault_retries;
    access_count = 0;
    preempt_interval = None;
  }

let machine t = t.machine
let enclave t = t.enclave
let set_preempt_interval t interval = t.preempt_interval <- interval

let handle_fault t vaddr kind cause =
  let m = t.machine in
  let sf = { Types.sf_vaddr = vaddr; sf_access = kind; sf_cause = cause } in
  Metrics.Counters.cell_incr (Machine.hot m).Machine.c_page_fault;
  if t.enclave.self_paging && m.mode = Machine.No_upcall_no_aex then
    (* Proposed ISA optimization: no AEX, handler runs in-enclave. *)
    Instructions.deliver_fault_in_enclave m t.enclave sf
  else begin
    Instructions.aex m t.enclave ~reason:(`Fault sf);
    t.os.handle_enclave_fault (Mmu.os_report t.enclave vaddr kind);
    if not t.enclave.in_enclave then
      Types.sgx_errorf "OS fault handler returned without resuming enclave %d"
        t.enclave.id
  end

let maybe_preempt t =
  match t.preempt_interval with
  | None -> ()
  | Some n ->
    if t.access_count mod n = 0 then begin
      Instructions.aex t.machine t.enclave ~reason:`Interrupt;
      t.os.handle_preempt ~enclave_id:t.enclave.id;
      match Instructions.eresume t.machine t.enclave with
      | Ok () -> ()
      | Error `Pending_exception ->
        Types.sgx_errorf "ERESUME failed after interrupt on enclave %d" t.enclave.id
    end

(* Top-level so the retry loop is a static call: a local [let rec go]
   would capture [t]/[vaddr]/[kind] and allocate a closure per access. *)
let rec access_retry t vaddr kind retries =
  if retries > t.max_fault_retries then
    Types.sgx_errorf "page fault livelock at 0x%x (%d retries)" vaddr retries;
  match Mmu.translate_code t.machine t.page_table t.enclave vaddr kind with
  | 0 -> ()
  | code ->
    handle_fault t vaddr kind (Mmu.cause_of_code code);
    access_retry t vaddr kind (retries + 1)

let access t vaddr kind =
  Enclave.assert_runnable t.enclave;
  access_retry t vaddr kind 0;
  (* Instruction fetches leave a record in the machine's branch-trace
     ring (LBR/BTB model) — microarchitectural state only, no cost. *)
  if kind = Types.Exec then
    Machine.record_branch t.machine ~enclave_id:t.enclave.id
      ~vpage:(Types.vpage_of_vaddr vaddr);
  t.access_count <- t.access_count + 1;
  maybe_preempt t

let read t vaddr = access t vaddr Types.Read
let write t vaddr = access t vaddr Types.Write
let exec t vaddr = access t vaddr Types.Exec

let with_page t vaddr kind f =
  access t vaddr kind;
  let vpage = Types.vpage_of_vaddr vaddr in
  match Instructions.page_data t.machine t.enclave ~vpage with
  | Some data -> f data
  | None ->
    Types.sgx_errorf "page 0x%x not resident after successful access" vpage

let read_stamp t vaddr = with_page t vaddr Types.Read Page_data.read_int

let write_stamp t vaddr v =
  with_page t vaddr Types.Write (fun data -> Page_data.fill_int data v)

let access_untrusted t _vaddr _kind =
  let cm = Machine.model t.machine in
  Machine.charge t.machine cm.dram_access

let accesses t = t.access_count
