(* Boxed reference TLB: the pre-flat implementation (Hashtbl + Queue),
   kept as a differential oracle for {!Tlb} in the style of
   [Chacha20_ref].  Eviction order, stale-entry handling and the
   dirty-fill re-walk rule are the semantics the flat rewrite must
   reproduce exactly. *)

type entry = { perms : Types.perms; dirty_filled : bool }

type t = {
  entries : (Types.vpage, entry) Hashtbl.t;
  order : Types.vpage Queue.t;
  cap : int;
}

let create ?(capacity = 1536) () =
  assert (capacity > 0);
  { entries = Hashtbl.create (2 * capacity); order = Queue.create (); cap = capacity }

(* A write through an entry that was filled without dirty tracking must
   re-walk (as x86 does to set the PTE dirty bit). *)
let hit t vp kind =
  match Hashtbl.find_opt t.entries vp with
  | Some e ->
    Types.perms_allow e.perms kind
    && (kind <> Types.Write || e.dirty_filled)
  | None -> false

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some vp ->
    (* Skip stale queue entries left by flush_page/replacement. *)
    if Hashtbl.mem t.entries vp then Hashtbl.remove t.entries vp else evict_one t

let fill ?(dirty = false) t vp perms =
  if not (Hashtbl.mem t.entries vp) then begin
    if Hashtbl.length t.entries >= t.cap then evict_one t;
    Queue.push vp t.order
  end;
  Hashtbl.replace t.entries vp { perms; dirty_filled = dirty }

let fill_bits ?dirty t vp bits = fill ?dirty t vp (Types.perms_of_bits bits)

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.order

let flush_page t vp = Hashtbl.remove t.entries vp
let size t = Hashtbl.length t.entries
let capacity t = t.cap
