type swapped = {
  sw_enclave_id : int;
  sw_vpage : Types.vpage;
  sw_perms : Types.perms;
  sw_ptype : Types.page_type;
  sw_va_slot : int;
  sw_sealed : Sim_crypto.Sealer.sealed;
}

type eldu_error = [ `Mac_mismatch | `Replayed | `Epc_full ]

let pp_eldu_error ppf = function
  | `Mac_mismatch -> Format.pp_print_string ppf "MAC mismatch"
  | `Replayed -> Format.pp_print_string ppf "replayed page"
  | `Epc_full -> Format.pp_print_string ppf "EPC full"

let incr cell = Metrics.Counters.cell_incr cell

(* Transition tracing.  Taking the event as a thunk keeps the disabled
   path to a single branch: no payload is built unless a recorder is
   installed. *)
let emit m ~enclave_id k =
  match Machine.tracer m with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:enclave_id ~actor:Trace.Event.Hw (k ())

let ecreate m ~size_pages ~self_paging =
  incr (Machine.hot m).Machine.c_ecreate;
  Machine.register_enclave m ~size_pages ~self_paging

(* Unboxed residency probe: -1 when not resident. *)
let find_frame_packed m (enclave : Enclave.t) ~vpage =
  Epc.frame_of_packed Machine.(m.epc) ~enclave_id:enclave.id ~vpage

let require_frame m enclave ~vpage ~who =
  let frame = find_frame_packed m enclave ~vpage in
  if frame >= 0 then frame
  else Types.sgx_errorf "%s: enclave %d page 0x%x not resident" who enclave.id vpage

let eadd m (enclave : Enclave.t) ~vpage ~data ~perms ~ptype =
  (match enclave.state with
  | Enclave.Created -> ()
  | _ -> Types.sgx_errorf "EADD: enclave %d already initialized" enclave.id);
  if not (Enclave.contains_vpage enclave vpage) then
    Types.sgx_errorf "EADD: page 0x%x outside enclave %d" vpage enclave.id;
  let cm = Machine.model m in
  match Epc.alloc m.epc with
  | None -> Types.sgx_errorf "EADD: EPC exhausted"
  | Some frame ->
    Epc.bind m.epc ~frame ~enclave_id:enclave.id ~vpage ~perms ~ptype ~pending:false;
    Epc.set_data m.epc frame data;
    Machine.charge m cm.eadd;
    incr (Machine.hot m).Machine.c_eadd;
    frame

let einit m (enclave : Enclave.t) =
  (match enclave.state with
  | Enclave.Created -> enclave.state <- Enclave.Initialized
  | _ -> Types.sgx_errorf "EINIT: enclave %d not in created state" enclave.id);
  incr (Machine.hot m).Machine.c_einit

(* --- Entry/exit/fault delivery ------------------------------------- *)

let aex m (enclave : Enclave.t) ~reason =
  let cm = Machine.model m in
  (match reason with
  | `Fault sf ->
    if Stack.length enclave.tcs.ssa >= enclave.tcs.ssa_frames then
      Enclave.terminate enclave ~reason:"SSA stack overflow (fault storm)";
    Stack.push sf enclave.tcs.ssa;
    if enclave.self_paging then enclave.tcs.pending_exception <- true
  | `Interrupt -> ());
  enclave.in_enclave <- false;
  Tlb.flush m.tlb;
  Machine.charge m cm.aex;
  incr (Machine.hot m).Machine.c_aex;
  (* Inline tracer match: the thunk form would capture [reason] and
     allocate a closure on every AEX even with tracing off. *)
  match Machine.tracer m with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:enclave.id ~actor:Trace.Event.Hw
      (Trace.Event.Aex { interrupt = reason = `Interrupt })

let eresume m (enclave : Enclave.t) =
  let cm = Machine.model m in
  Machine.charge m cm.eresume;
  incr (Machine.hot m).Machine.c_eresume;
  if enclave.self_paging && enclave.tcs.pending_exception then begin
    emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eresume { ok = false });
    Error `Pending_exception
  end
  else begin
    Enclave.assert_runnable enclave;
    if not (Stack.is_empty enclave.tcs.ssa) then ignore (Stack.pop enclave.tcs.ssa);
    Tlb.flush m.tlb;
    enclave.in_enclave <- true;
    emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eresume { ok = true });
    Ok ()
  end

let enter_handler_and_resume m (enclave : Enclave.t) =
  let cm = Machine.model m in
  Enclave.assert_runnable enclave;
  (* EENTER: clears the pending-exception flag and runs the trusted
     entry point (the runtime's exception handler). *)
  enclave.tcs.pending_exception <- false;
  enclave.in_enclave <- true;
  Tlb.flush m.tlb;
  Machine.charge m cm.eenter;
  incr (Machine.hot m).Machine.c_eenter;
  emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eenter);
  enclave.entry enclave;
  (match m.mode with
  | Machine.Full_exits ->
    (* EEXIT to the stub, then ERESUME the saved frame. *)
    Machine.charge m cm.eexit;
    incr (Machine.hot m).Machine.c_eexit;
    emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eexit);
    enclave.in_enclave <- false;
    Tlb.flush m.tlb;
    Machine.charge m cm.eresume;
    incr (Machine.hot m).Machine.c_eresume;
    emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eresume { ok = true });
    Tlb.flush m.tlb
  | Machine.No_upcall | Machine.No_upcall_no_aex ->
    (* Proposed in-enclave ERESUME variant: pop the SSA without leaving. *)
    Machine.charge m cm.inenclave_resume;
    incr (Machine.hot m).Machine.c_inenclave_resume;
    emit m ~enclave_id:enclave.id (fun () ->
        Trace.Event.Handler { event = "inenclave-resume" }));
  if not (Stack.is_empty enclave.tcs.ssa) then ignore (Stack.pop enclave.tcs.ssa);
  enclave.in_enclave <- true

let deliver_fault_in_enclave m (enclave : Enclave.t) sf =
  let cm = Machine.model m in
  Enclave.assert_runnable enclave;
  if Stack.length enclave.tcs.ssa >= enclave.tcs.ssa_frames then
    Enclave.terminate enclave ~reason:"SSA stack overflow (fault storm)";
  Stack.push sf enclave.tcs.ssa;
  (* The hardware simulates a nested re-entry to the handler: no AEX, no
     OS involvement, TLB preserved. *)
  Machine.charge m cm.aex_elided_entry;
  incr (Machine.hot m).Machine.c_aex_elided;
  emit m ~enclave_id:enclave.id (fun () ->
      Trace.Event.Handler { event = "aex-elided-entry" });
  enclave.entry enclave;
  Machine.charge m cm.inenclave_resume;
  incr (Machine.hot m).Machine.c_inenclave_resume;
  emit m ~enclave_id:enclave.id (fun () ->
      Trace.Event.Handler { event = "inenclave-resume" });
  if not (Stack.is_empty enclave.tcs.ssa) then ignore (Stack.pop enclave.tcs.ssa)

let eenter_run m (enclave : Enclave.t) f =
  let cm = Machine.model m in
  Enclave.assert_runnable enclave;
  enclave.tcs.pending_exception <- false;
  enclave.in_enclave <- true;
  Tlb.flush m.tlb;
  Machine.charge m cm.eenter;
  incr (Machine.hot m).Machine.c_eenter;
  emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eenter);
  let finish () =
    Machine.charge m cm.eexit;
    incr (Machine.hot m).Machine.c_eexit;
    emit m ~enclave_id:enclave.id (fun () -> Trace.Event.Eexit);
    enclave.in_enclave <- false;
    Tlb.flush m.tlb
  in
  match f () with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e

(* --- SGXv1 paging --------------------------------------------------- *)

let epa m =
  let cm = Machine.model m in
  match Epc.alloc m.epc with
  | None -> Error `Epc_full
  | Some frame ->
    Epc.bind ~track_reverse:false m.epc ~frame ~enclave_id:(-1) ~vpage:(-1)
      ~perms:Types.perms_ro ~ptype:Types.Pt_va ~pending:false;
    Machine.provision_va_page m ~frame;
    Machine.charge m cm.epa;
    incr (Machine.hot m).Machine.c_epa;
    Ok frame

let eblock m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EBLOCK" in
  let entry = Epc.entry m.epc frame in
  if not entry.blocked then begin
    entry.blocked <- true;
    enclave.blocked_since_track <- enclave.blocked_since_track + 1
  end;
  Tlb.flush_page m.tlb vpage;
  Machine.charge m cm.eblock;
  incr (Machine.hot m).Machine.c_eblock

let etrack m (enclave : Enclave.t) =
  let cm = Machine.model m in
  (* On the single simulated core the IPI round retires immediately:
     flush the TLB and charge the shootdown. *)
  Tlb.flush m.tlb;
  enclave.blocked_since_track <- 0;
  Machine.charge m (cm.etrack + cm.tlb_shootdown);
  incr (Machine.hot m).Machine.c_etrack

let ewb m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EWB" in
  let entry = Epc.entry m.epc frame in
  if entry.pending || entry.modified then
    Types.sgx_errorf "EWB: page 0x%x in transient state" vpage;
  if not entry.blocked then
    Types.sgx_errorf "EWB: page 0x%x not blocked (run EBLOCK)" vpage;
  if enclave.blocked_since_track > 0 then
    Types.sgx_errorf "EWB: tracking epoch not retired (run ETRACK)";
  let version = Machine.fresh_va_version m in
  let slot =
    match Machine.take_va_slot m ~version with
    | Some slot -> slot
    | None -> Types.sgx_errorf "EWB: no free version-array slot (run EPA)"
  in
  let plaintext = Page_data.to_bytes (Epc.data m.epc frame) in
  let sealed =
    Sim_crypto.Sealer.seal m.sealer
      ~vaddr:(Int64.of_int (Types.vaddr_of_vpage vpage))
      ~version plaintext
  in
  let sw =
    {
      sw_enclave_id = enclave.id;
      sw_vpage = vpage;
      sw_perms = entry.perms;
      sw_ptype = entry.ptype;
      sw_va_slot = slot;
      sw_sealed = sealed;
    }
  in
  Epc.release m.epc frame;
  Machine.charge m (cm.ewb + Metrics.Cost_model.hw_page_crypto cm);
  incr (Machine.hot m).Machine.c_ewb;
  sw

let eldu m (enclave : Enclave.t) (sw : swapped) =
  let cm = Machine.model m in
  if sw.sw_enclave_id <> enclave.id then
    Types.sgx_errorf "ELDU: page belongs to enclave %d, not %d" sw.sw_enclave_id
      enclave.id;
  Machine.charge m (cm.eldu + Metrics.Cost_model.hw_page_crypto cm);
  incr (Machine.hot m).Machine.c_eldu;
  match Machine.read_va_slot m sw.sw_va_slot with
  | None -> Error `Replayed
  | Some expected -> (
    match
      Sim_crypto.Sealer.unseal m.sealer
        ~vaddr:(Int64.of_int (Types.vaddr_of_vpage sw.sw_vpage))
        ~expected_version:expected sw.sw_sealed
    with
    | Error Sim_crypto.Sealer.Mac_mismatch -> Error `Mac_mismatch
    | Error Sim_crypto.Sealer.Replayed -> Error `Replayed
    | Ok plaintext -> (
      match Epc.alloc m.epc with
      | None -> Error `Epc_full
      | Some frame ->
        Epc.bind m.epc ~frame ~enclave_id:enclave.id ~vpage:sw.sw_vpage
          ~perms:sw.sw_perms ~ptype:sw.sw_ptype ~pending:false;
        Epc.set_data m.epc frame (Page_data.of_bytes plaintext);
        Machine.clear_va_slot m sw.sw_va_slot;
        Ok frame))

let seal_for_swap m (enclave : Enclave.t) ~vpage ~data ~perms ~ptype =
  if not (Enclave.contains_vpage enclave vpage) then
    Types.sgx_errorf "seal_for_swap: page 0x%x outside enclave %d" vpage enclave.id;
  let version = Machine.fresh_va_version m in
  let slot =
    match Machine.take_va_slot m ~version with
    | Some slot -> slot
    | None -> Types.sgx_errorf "seal_for_swap: no free version-array slot (run EPA)"
  in
  let sealed =
    Sim_crypto.Sealer.seal m.sealer
      ~vaddr:(Int64.of_int (Types.vaddr_of_vpage vpage))
      ~version
      (Page_data.to_bytes data)
  in
  { sw_enclave_id = enclave.id; sw_vpage = vpage; sw_perms = perms;
    sw_ptype = ptype; sw_va_slot = slot; sw_sealed = sealed }

(* --- SGXv2 dynamic memory ------------------------------------------- *)

let eaug m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  if not (Enclave.contains_vpage enclave vpage) then
    Types.sgx_errorf "EAUG: page 0x%x outside enclave %d" vpage enclave.id;
  if find_frame_packed m enclave ~vpage >= 0 then
    Types.sgx_errorf "EAUG: page 0x%x already resident" vpage;
  match Epc.alloc m.epc with
  | None -> Error `Epc_full
  | Some frame ->
    Epc.bind m.epc ~frame ~enclave_id:enclave.id ~vpage ~perms:Types.perms_rw
      ~ptype:Types.Pt_reg ~pending:true;
    Machine.charge m cm.eaug;
    incr (Machine.hot m).Machine.c_eaug;
    Ok frame

let eaccept m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EACCEPT" in
  let entry = Epc.entry m.epc frame in
  if not (entry.pending || entry.modified) then
    Types.sgx_errorf "EACCEPT: page 0x%x has nothing to accept" vpage;
  entry.pending <- false;
  entry.modified <- false;
  Machine.charge m cm.eaccept;
  incr (Machine.hot m).Machine.c_eaccept

let eacceptcopy m (enclave : Enclave.t) ~vpage ~data =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EACCEPTCOPY" in
  let entry = Epc.entry m.epc frame in
  if not entry.pending then
    Types.sgx_errorf "EACCEPTCOPY: page 0x%x not pending" vpage;
  entry.pending <- false;
  entry.perms <- Types.perms_rw;
  Epc.set_data m.epc frame data;
  Machine.charge m cm.eacceptcopy;
  incr (Machine.hot m).Machine.c_eacceptcopy

let emodpr m (enclave : Enclave.t) ~vpage ~perms =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EMODPR" in
  let entry = Epc.entry m.epc frame in
  if entry.pending then Types.sgx_errorf "EMODPR: page 0x%x pending" vpage;
  if not (Types.perms_subset perms entry.perms) then
    Types.sgx_errorf "EMODPR: cannot extend permissions of page 0x%x" vpage;
  entry.perms <- perms;
  entry.modified <- true;
  (* OS-side TLB shootdown required for the restriction to take effect. *)
  Tlb.flush_page m.tlb vpage;
  Machine.charge m (cm.emodpr + cm.tlb_shootdown);
  incr (Machine.hot m).Machine.c_emodpr

let emodt m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EMODT" in
  let entry = Epc.entry m.epc frame in
  if entry.pending then Types.sgx_errorf "EMODT: page 0x%x pending" vpage;
  entry.ptype <- Types.Pt_trim;
  entry.modified <- true;
  Tlb.flush_page m.tlb vpage;
  Machine.charge m (cm.emodt + cm.tlb_shootdown);
  incr (Machine.hot m).Machine.c_emodt

let eremove m (enclave : Enclave.t) ~vpage =
  let cm = Machine.model m in
  let frame = require_frame m enclave ~vpage ~who:"EREMOVE" in
  let entry = Epc.entry m.epc frame in
  let enclave_dead = match enclave.state with Enclave.Dead _ -> true | _ -> false in
  if not (enclave_dead || (entry.ptype = Types.Pt_trim && not entry.modified)) then
    Types.sgx_errorf "EREMOVE: page 0x%x not trimmed and accepted" vpage;
  Epc.release m.epc frame;
  Machine.charge m cm.eremove;
  incr (Machine.hot m).Machine.c_eremove

let page_data m (enclave : Enclave.t) ~vpage =
  let frame = find_frame_packed m enclave ~vpage in
  if frame >= 0 then Some (Epc.data m.epc frame) else None
