(* Boxed reference page table: the pre-flat-array implementation
   (Hashtbl of mutable PTE records), kept as a differential oracle for
   {!Page_table} in the style of [Chacha20_ref].  Same interface, same
   observable behaviour; only the representation differs. *)

type pte = {
  mutable frame : Types.frame;
  mutable present : bool;
  mutable perms : Types.perms;
  mutable accessed : bool;
  mutable dirty : bool;
}

type t = (Types.vpage, pte) Hashtbl.t

let no_pte = Page_table.no_pte
let p_present = Page_table.p_present
let p_accessed = Page_table.p_accessed
let p_dirty = Page_table.p_dirty
let p_frame = Page_table.p_frame
let p_rwx = Page_table.p_rwx
let p_allows = Page_table.p_allows
let p_perms = Page_table.p_perms

let pack ~frame ~perms ~accessed ~dirty =
  Page_table.pack ~frame ~perms ~accessed ~dirty

let pack_pte pte =
  let p = pack ~frame:pte.frame ~perms:pte.perms ~accessed:pte.accessed
      ~dirty:pte.dirty
  in
  if pte.present then p else p land lnot 0x1

let create () = Hashtbl.create 1024

let map t ~vpage ~frame ~perms ?(accessed = false) ?(dirty = false) () =
  if vpage < 0 then invalid_arg "Page_table.map: negative vpage";
  if frame < 0 then invalid_arg "Page_table.map: negative frame";
  Hashtbl.replace t vpage { frame; present = true; perms; accessed; dirty }

let unmap t vpage = Hashtbl.remove t vpage
let find t vpage = Hashtbl.find_opt t vpage

let find_packed t vpage =
  match Hashtbl.find_opt t vpage with
  | Some pte -> pack_pte pte
  | None -> no_pte

let mapped t vpage = Hashtbl.mem t vpage

let present t vpage =
  match find t vpage with Some pte -> pte.present | None -> false

let set_perms t vpage perms =
  match find t vpage with
  | Some pte -> pte.perms <- perms
  | None -> raise Not_found

let set_present t vpage on =
  match find t vpage with Some pte -> pte.present <- on | None -> ()

let set_frame t vpage frame =
  match find t vpage with
  | Some pte -> pte.frame <- frame
  | None -> raise Not_found

let set_ad t vpage ~write =
  match find t vpage with
  | Some pte ->
    pte.accessed <- true;
    if write then pte.dirty <- true
  | None -> ()

let clear_accessed t vpage =
  match find t vpage with Some pte -> pte.accessed <- false | None -> ()

let clear_dirty t vpage =
  match find t vpage with Some pte -> pte.dirty <- false | None -> ()

let mapped_pages t =
  Hashtbl.fold (fun vp _ acc -> vp :: acc) t [] |> List.sort Int.compare

let count_present t =
  Hashtbl.fold (fun _ pte acc -> if pte.present then acc + 1 else acc) t 0

let count_mapped t = Hashtbl.length t
