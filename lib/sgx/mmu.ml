(* Fault codes for the unboxed translate path: 0 is success, a fault is
   [-(1 + Types.fault_cause_index cause)].  Packed PTEs are >= 0, so
   [walk_code] can return either a packed PTE or a fault code in one
   int. *)

let code_not_present = -1       (* Not_present *)
let code_perm_base = -2         (* Permission kind: -2 - access_kind_index *)
let code_epcm_mismatch = -5
let code_epcm_pending = -6
let code_ad_clear = -7
let code_non_epc = -8

let cause_of_code code = Types.all_fault_causes.(-code - 1)

(* The SGX + Autarky walk over packed PTEs.  Returns the packed PTE
   (pre-writeback) on success, a fault code on failure.  Allocates
   nothing on any path. *)
let walk_code (m : Machine.t) (pt : Page_table.t) (enclave : Enclave.t) vp kind =
  let p = Page_table.find_packed pt vp in
  if p < 0 || not (Page_table.p_present p) then code_not_present
  else if not (Page_table.p_allows p kind) then
    code_perm_base - Types.access_kind_index kind
  else begin
    let frame = Page_table.p_frame p in
    let epcm = Machine.(m.epc) in
    if frame < 0 || frame >= Epc.total_frames epcm then code_non_epc
    else
      let entry = Epc.entry epcm frame in
      if not entry.valid || entry.enclave_id <> enclave.id || entry.vpage <> vp
      then code_epcm_mismatch
      else if entry.pending || entry.modified then code_epcm_pending
      else if entry.blocked then code_not_present
      else if not (Types.perms_allow entry.perms kind) then
        code_perm_base - Types.access_kind_index kind
      else if enclave.self_paging then begin
        (* Autarky: the fetched PTE's A/D bits must already be set;
           otherwise it is treated as invalid. No writeback occurs. *)
        Machine.charge m (Machine.model m).ad_check;
        if Page_table.p_accessed p && Page_table.p_dirty p then p
        else code_ad_clear
      end
      else begin
        (* Legacy paging: the walk sets accessed (and dirty on write),
           observable by the OS — the stealthy channel. *)
        Page_table.set_ad pt vp ~write:(kind = Types.Write);
        p
      end
  end

let os_report (enclave : Enclave.t) vaddr kind =
  if enclave.self_paging then
    (* §5.1.2: hide the address and access type entirely; report a read
       fault at the enclave base. *)
    {
      Types.fr_enclave_id = enclave.id;
      fr_vaddr = Enclave.base_vaddr enclave;
      fr_access = Types.Read;
    }
  else
    (* Stock SGX: the page offset is masked but the page is visible. *)
    {
      Types.fr_enclave_id = enclave.id;
      fr_vaddr = Types.vaddr_of_vpage (Types.vpage_of_vaddr vaddr);
      fr_access = kind;
    }

(* One enclave-mode access; 0 on success, a fault code otherwise.  The
   TLB-hit and walk-hit paths allocate zero words. *)
let translate_code m pt (enclave : Enclave.t) vaddr kind =
  if not (Enclave.contains_vaddr enclave vaddr) then
    Types.sgx_errorf "MMU: vaddr 0x%x outside enclave %d" vaddr enclave.id;
  let cm = Machine.model m in
  let vp = Types.vpage_of_vaddr vaddr in
  if Tlb.hit m.tlb vp kind then begin
    Machine.charge m cm.mem_access;
    0
  end
  else begin
    Machine.charge m cm.tlb_walk;
    Metrics.Counters.cell_incr (Machine.hot m).Machine.c_tlb_miss;
    let r = walk_code m pt enclave vp kind in
    if r >= 0 then begin
      (* The TLB entry caches the PTE's dirty state: a later write only
         needs a re-walk (x86's dirty-bit assist) while the cached D is
         clear.  Self-paging PTEs always carry set bits.  [r] is the
         pre-writeback PTE, whose dirty bit the legacy walk would have
         set on a write — the [kind = Write] disjunct covers it. *)
      let dirty =
        enclave.self_paging || kind = Types.Write || Page_table.p_dirty r
      in
      Tlb.fill_bits ~dirty m.tlb vp (Page_table.p_rwx r);
      Machine.charge m cm.mem_access;
      0
    end
    else begin
      let idx = -r - 1 in
      Metrics.Counters.cell_incr (Machine.hot m).Machine.c_fault.(idx);
      (match Machine.tracer m with
      | None -> ()
      | Some tr ->
        let report = os_report enclave vaddr kind in
        Trace.Recorder.emit tr ~enclave:enclave.id ~actor:Trace.Event.Hw
          (Trace.Event.Fault
             {
               vpage = vp;
               access = Machine.trace_access kind;
               cause = Types.fault_cause_strings.(idx);
               reported_vpage = Types.vpage_of_vaddr report.fr_vaddr;
               reported_access = Machine.trace_access report.fr_access;
               masked = enclave.self_paging;
             }));
      r
    end
  end

let translate m pt enclave vaddr kind =
  match translate_code m pt enclave vaddr kind with
  | 0 -> Ok ()
  | code -> Error (cause_of_code code)
