let walk_checks (m : Machine.t) (pt : Page_table.t) (enclave : Enclave.t) vp kind =
  let cm = Machine.model m in
  match Page_table.find pt vp with
  | None -> Error Types.Not_present
  | Some pte ->
    if not pte.present then Error Types.Not_present
    else if not (Types.perms_allow pte.perms kind) then Error (Types.Permission kind)
    else begin
      let epcm = Machine.(m.epc) in
      if pte.frame < 0 || pte.frame >= Epc.total_frames epcm then
        Error Types.Non_epc_mapping
      else
        let entry = Epc.entry epcm pte.frame in
        if not entry.valid then Error Types.Epcm_mismatch
        else if entry.enclave_id <> enclave.id || entry.vpage <> vp then
          Error Types.Epcm_mismatch
        else if entry.pending || entry.modified then Error Types.Epcm_pending
        else if entry.blocked then Error Types.Not_present
        else if not (Types.perms_allow entry.perms kind) then
          Error (Types.Permission kind)
        else if enclave.self_paging then begin
          (* Autarky: the fetched PTE's A/D bits must already be set;
             otherwise it is treated as invalid. No writeback occurs. *)
          Machine.charge m cm.ad_check;
          if not (pte.accessed && pte.dirty) then Error Types.Ad_clear
          else Ok pte
        end
        else begin
          (* Legacy paging: the walk sets accessed (and dirty on write),
             observable by the OS — the stealthy channel. *)
          pte.accessed <- true;
          if kind = Types.Write then pte.dirty <- true;
          Ok pte
        end
    end

let os_report (enclave : Enclave.t) vaddr kind =
  if enclave.self_paging then
    (* §5.1.2: hide the address and access type entirely; report a read
       fault at the enclave base. *)
    {
      Types.fr_enclave_id = enclave.id;
      fr_vaddr = Enclave.base_vaddr enclave;
      fr_access = Types.Read;
    }
  else
    (* Stock SGX: the page offset is masked but the page is visible. *)
    {
      Types.fr_enclave_id = enclave.id;
      fr_vaddr = Types.vaddr_of_vpage (Types.vpage_of_vaddr vaddr);
      fr_access = kind;
    }

let translate m pt enclave vaddr kind =
  if not (Enclave.contains_vaddr enclave vaddr) then
    Types.sgx_errorf "MMU: vaddr 0x%x outside enclave %d" vaddr enclave.id;
  let cm = Machine.model m in
  let vp = Types.vpage_of_vaddr vaddr in
  if Tlb.hit m.tlb vp kind then begin
    Machine.charge m cm.mem_access;
    Ok ()
  end
  else begin
    Machine.charge m cm.tlb_walk;
    Metrics.Counters.cell_incr (Machine.hot m).Machine.c_tlb_miss;
    match walk_checks m pt enclave vp kind with
    | Ok pte ->
      (* The TLB entry caches the PTE's dirty state: a later write only
         needs a re-walk (x86's dirty-bit assist) while the cached D is
         clear.  Self-paging PTEs always carry set bits. *)
      let dirty = enclave.self_paging || kind = Types.Write || pte.dirty in
      Tlb.fill ~dirty m.tlb vp pte.perms;
      Machine.charge m cm.mem_access;
      Ok ()
    | Error cause ->
      Metrics.Counters.cell_incr
        (Machine.hot m).Machine.c_fault.(Types.fault_cause_index cause);
      (match Machine.tracer m with
      | None -> ()
      | Some tr ->
        let report = os_report enclave vaddr kind in
        Trace.Recorder.emit tr ~enclave:enclave.id ~actor:Trace.Event.Hw
          (Trace.Event.Fault
             {
               vpage = vp;
               access = Machine.trace_access kind;
               cause = Format.asprintf "%a" Types.pp_fault_cause cause;
               reported_vpage = Types.vpage_of_vaddr report.fr_vaddr;
               reported_access = Machine.trace_access report.fr_access;
               masked = enclave.self_paging;
             }));
      Error cause
  end
