(** Boxed reference page table (Hashtbl of mutable PTE records): the
    pre-flat-array implementation, kept as a differential oracle for
    {!Page_table} in the style of [Chacha20_ref].  The interface is
    identical to {!Page_table}'s so tests can functorize over the two
    implementations and compare behaviour on random operation
    sequences. *)

type t

val create : unit -> t

(** {1 Packed-PTE encoding (shared with {!Page_table})} *)

val no_pte : int
val p_present : int -> bool
val p_accessed : int -> bool
val p_dirty : int -> bool
val p_frame : int -> int
val p_rwx : int -> int
val p_allows : int -> Types.access_kind -> bool
val p_perms : int -> Types.perms

val pack :
  frame:Types.frame -> perms:Types.perms -> accessed:bool -> dirty:bool -> int

(** {1 Operations} *)

val map :
  t -> vpage:Types.vpage -> frame:Types.frame -> perms:Types.perms ->
  ?accessed:bool -> ?dirty:bool -> unit -> unit

val unmap : t -> Types.vpage -> unit
val find_packed : t -> Types.vpage -> int
val mapped : t -> Types.vpage -> bool
val present : t -> Types.vpage -> bool
val set_perms : t -> Types.vpage -> Types.perms -> unit
val set_present : t -> Types.vpage -> bool -> unit
val set_frame : t -> Types.vpage -> Types.frame -> unit
val set_ad : t -> Types.vpage -> write:bool -> unit
val clear_accessed : t -> Types.vpage -> unit
val clear_dirty : t -> Types.vpage -> unit
val mapped_pages : t -> Types.vpage list
val count_present : t -> int
val count_mapped : t -> int
