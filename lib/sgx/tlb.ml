(* Flat TLB: a fixed-capacity open-addressing table (vpage -> packed
   permission bits) plus an int ring buffer carrying FIFO fill order.

   Replaces the Hashtbl + Queue representation with two invariants kept
   bit-compatible with it:

   - [flush] is O(1): a generation counter stamps every slot, so
     bumping it empties the table without touching the arrays.  SGX
     flushes on every enclave transition (4+ flushes per fault), so a
     memset-per-flush would dominate.

   - The ring replicates the old Queue exactly, stale entries
     included: a page removed by [flush_page] and refilled has two ring
     entries and is evicted at its *original* (older) position.
     Compacting stale entries would change eviction order and break
     golden trace digests.

   Value packing: bits 0-2 r/w/x, bit 3 "filled with dirty tracking"
   (a write through a non-dirty-filled entry must re-walk, as x86 does
   to set the PTE dirty bit). *)

type t = {
  cap : int;
  mask : int;               (* table size - 1; size = pow2 >= 4*cap *)
  keys : int array;         (* vpage, [empty] or [tomb] *)
  vals : int array;
  gens : int array;         (* slot is dead unless gens.(s) = gen *)
  mutable gen : int;
  mutable live : int;
  mutable tombs : int;
  scratch_k : int array;    (* rebuild buffers, capacity [cap] *)
  scratch_v : int array;
  mutable ring : int array; (* FIFO of filled vpages, may hold stale entries *)
  mutable head : int;
  mutable tail : int;       (* entries = ring.(head..tail-1 mod len) *)
}

let empty = -1
let tomb = -2

let b_dirty_filled = 8

let rec pow2 n i = if i >= n then i else pow2 n (i * 2)

let create ?(capacity = 1536) () =
  assert (capacity > 0);
  let size = pow2 (4 * capacity) 16 in
  {
    cap = capacity;
    mask = size - 1;
    keys = Array.make size empty;
    vals = Array.make size 0;
    gens = Array.make size (-1);
    gen = 0;
    live = 0;
    tombs = 0;
    scratch_k = Array.make capacity 0;
    scratch_v = Array.make capacity 0;
    ring = Array.make (pow2 (2 * capacity) 16) 0;
    head = 0;
    tail = 0;
  }

let[@inline] hash t k = ((k * 0x2545F4914F6CDD1D) lxor (k lsr 13)) land t.mask

(* Slot of a live entry for [k], or -1. *)
let lookup t k =
  let keys = t.keys and gens = t.gens and mask = t.mask and gen = t.gen in
  let i = ref (hash t k) in
  let res = ref (-2) in
  while !res = -2 do
    let s = !i in
    if Array.unsafe_get gens s <> gen || Array.unsafe_get keys s = empty then
      res := -1
    else if Array.unsafe_get keys s = k then res := s
    else i := (s + 1) land mask
  done;
  !res

let remove_slot t s =
  t.keys.(s) <- tomb;
  t.live <- t.live - 1;
  t.tombs <- t.tombs + 1

(* Reinsert the live entries into a fresh generation, retiring
   tombstones.  Bounded by [cap] entries; the set is order-free so
   reinsertion order cannot matter. *)
let rebuild t =
  let n = ref 0 in
  let keys = t.keys and gens = t.gens and gen = t.gen in
  for s = 0 to t.mask do
    if Array.unsafe_get gens s = gen && Array.unsafe_get keys s >= 0 then begin
      t.scratch_k.(!n) <- keys.(s);
      t.scratch_v.(!n) <- t.vals.(s);
      Stdlib.incr n
    end
  done;
  t.gen <- t.gen + 1;
  t.tombs <- 0;
  let gen' = t.gen and mask = t.mask in
  for j = 0 to !n - 1 do
    let k = t.scratch_k.(j) in
    let i = ref (hash t k) in
    let continue = ref true in
    while !continue do
      let s = !i in
      if t.gens.(s) <> gen' || t.keys.(s) = empty then begin
        t.keys.(s) <- k;
        t.vals.(s) <- t.scratch_v.(j);
        t.gens.(s) <- gen';
        continue := false
      end
      else i := (s + 1) land mask
    done
  done

(* Insert a key known to be absent (live count stays <= cap). *)
let insert t k v =
  if t.tombs > t.cap then rebuild t;
  let keys = t.keys and gens = t.gens and mask = t.mask and gen = t.gen in
  let i = ref (hash t k) in
  let continue = ref true in
  while !continue do
    let s = !i in
    let g = Array.unsafe_get gens s in
    if g <> gen || Array.unsafe_get keys s < 0 then begin
      if g = gen && Array.unsafe_get keys s = tomb then t.tombs <- t.tombs - 1;
      Array.unsafe_set keys s k;
      Array.unsafe_set t.vals s v;
      Array.unsafe_set gens s gen;
      t.live <- t.live + 1;
      continue := false
    end
    else i := (s + 1) land mask
  done

(* --- FIFO ring ------------------------------------------------------ *)

let ring_len t = Array.length t.ring

let ring_grow t =
  let len = ring_len t in
  let ring = Array.make (2 * len) 0 in
  let n = t.tail - t.head in
  for j = 0 to n - 1 do
    ring.(j) <- t.ring.((t.head + j) land (len - 1))
  done;
  t.ring <- ring;
  t.head <- 0;
  t.tail <- n

let ring_push t vp =
  if t.tail - t.head = ring_len t then ring_grow t;
  t.ring.(t.tail land (ring_len t - 1)) <- vp;
  t.tail <- t.tail + 1

let ring_pop t =
  let vp = t.ring.(t.head land (ring_len t - 1)) in
  t.head <- t.head + 1;
  vp

(* --- Public interface ----------------------------------------------- *)

(* A write through an entry that was filled without dirty tracking must
   re-walk (as x86 does to set the PTE dirty bit). *)
let hit t vp kind =
  let s = lookup t vp in
  s >= 0
  &&
  let v = Array.unsafe_get t.vals s in
  v land Types.kind_bit kind <> 0
  && (kind <> Types.Write || v land b_dirty_filled <> 0)

(* Pop ring entries until one still maps to a live table entry; stale
   entries (flush_page, replacement) are skipped, exactly like the old
   Queue-based eviction. *)
let rec evict_one t =
  if t.head <> t.tail then begin
    let vp = ring_pop t in
    let s = lookup t vp in
    if s >= 0 then remove_slot t s else evict_one t
  end

let fill_bits ?(dirty = false) t vp bits =
  let v = bits lor (if dirty then b_dirty_filled else 0) in
  let s = lookup t vp in
  if s >= 0 then t.vals.(s) <- v
  else begin
    if t.live >= t.cap then evict_one t;
    ring_push t vp;
    insert t vp v
  end

let fill ?dirty t vp perms = fill_bits ?dirty t vp (Types.perms_bits perms)

let flush t =
  t.gen <- t.gen + 1;
  t.live <- 0;
  t.tombs <- 0;
  t.head <- 0;
  t.tail <- 0

let flush_page t vp =
  let s = lookup t vp in
  if s >= 0 then remove_slot t s

let size t = t.live
let capacity t = t.cap

(* Raw snapshot.  Everything observable must survive verbatim: the
   generation counter (dead slots from earlier generations stay dead),
   tombstones, and above all the FIFO ring *including stale entries* —
   a refilled page is evicted at its original, older ring position, and
   golden trace digests pin that order.  Normalising any of it on
   export would silently change post-restore eviction behaviour. *)
type raw = {
  raw_cap : int;
  raw_keys : int array;
  raw_vals : int array;
  raw_gens : int array;
  raw_gen : int;
  raw_live : int;
  raw_tombs : int;
  raw_ring : int array;
  raw_head : int;
  raw_tail : int;
}

let export_state t =
  {
    raw_cap = t.cap;
    raw_keys = Array.copy t.keys;
    raw_vals = Array.copy t.vals;
    raw_gens = Array.copy t.gens;
    raw_gen = t.gen;
    raw_live = t.live;
    raw_tombs = t.tombs;
    raw_ring = Array.copy t.ring;
    raw_head = t.head;
    raw_tail = t.tail;
  }

let import_state r =
  let size = Array.length r.raw_keys in
  if size < 16 || size land (size - 1) <> 0 then
    invalid_arg "Tlb.import_state: table size not a power of two";
  if Array.length r.raw_vals <> size || Array.length r.raw_gens <> size then
    invalid_arg "Tlb.import_state: keys/vals/gens length mismatch";
  let rlen = Array.length r.raw_ring in
  if rlen < 16 || rlen land (rlen - 1) <> 0 then
    invalid_arg "Tlb.import_state: ring size not a power of two";
  if r.raw_cap <= 0 then invalid_arg "Tlb.import_state: non-positive capacity";
  {
    cap = r.raw_cap;
    mask = size - 1;
    keys = Array.copy r.raw_keys;
    vals = Array.copy r.raw_vals;
    gens = Array.copy r.raw_gens;
    gen = r.raw_gen;
    live = r.raw_live;
    tombs = r.raw_tombs;
    scratch_k = Array.make r.raw_cap 0;
    scratch_v = Array.make r.raw_cap 0;
    ring = Array.copy r.raw_ring;
    head = r.raw_head;
    tail = r.raw_tail;
  }
