(* Open-addressing int -> int hash map for the simulator's hot paths.

   Keys and values must be non-negative; [find] returns [-1] for an
   absent key so lookups never allocate an [option].  Deletion uses
   tombstones; the table rehashes when live + dead slots would push the
   load factor past 3/4, which also reclaims tombstones.  Linear
   probing over a power-of-two table with a multiplicative hash. *)

type t = {
  mutable keys : int array; (* key, or empty / tombstone below *)
  mutable vals : int array;
  mutable mask : int;       (* Array.length keys - 1 *)
  mutable live : int;
  mutable tombs : int;
}

let empty_slot = -1
let tomb_slot = -2

let absent = -1

(* Fibonacci-style multiplicative mix; OCaml's native ints wrap, which
   is exactly what we want. *)
let[@inline] mix k mask = ((k * 0x2545F4914F6CDD1D) lxor (k lsr 13)) land mask

let rec pow2 n i = if i >= n then i else pow2 n (i * 2)

let create ?(size = 16) () =
  let cap = pow2 (max 8 size) 8 in
  {
    keys = Array.make cap empty_slot;
    vals = Array.make cap 0;
    mask = cap - 1;
    live = 0;
    tombs = 0;
  }

let length t = t.live

(* Slot holding [k], or -1 when absent. *)
let lookup t k =
  let keys = t.keys and mask = t.mask in
  let i = ref (mix k mask) in
  let res = ref (-2) in
  while !res = -2 do
    let s = !i in
    let key = Array.unsafe_get keys s in
    if key = k then res := s
    else if key = empty_slot then res := -1
    else i := (s + 1) land mask
  done;
  !res

let mem t k = lookup t k >= 0

let find t k =
  let s = lookup t k in
  if s >= 0 then Array.unsafe_get t.vals s else absent

let find_default t k d =
  let s = lookup t k in
  if s >= 0 then Array.unsafe_get t.vals s else d

(* Insert a key known to be absent; the caller maintains load factor. *)
let insert_fresh keys vals mask k v =
  let i = ref (mix k mask) in
  let continue = ref true in
  while !continue do
    let s = !i in
    let key = Array.unsafe_get keys s in
    if key = empty_slot || key = tomb_slot then begin
      Array.unsafe_set keys s k;
      Array.unsafe_set vals s v;
      continue := false
    end
    else i := (s + 1) land mask
  done

let resize t cap =
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  let old_keys = t.keys and old_vals = t.vals in
  for s = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys s in
    if k >= 0 then insert_fresh keys vals mask k (Array.unsafe_get old_vals s)
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.tombs <- 0

let maybe_grow t =
  let cap = t.mask + 1 in
  if 4 * (t.live + t.tombs + 1) > 3 * cap then
    resize t (if 4 * (t.live + 1) > 2 * cap then 2 * cap else cap)

let set t k v =
  if k < 0 then invalid_arg "Flat.set: negative key";
  let s = lookup t k in
  if s >= 0 then t.vals.(s) <- v
  else begin
    maybe_grow t;
    (* Reuse the first tombstone on the probe path if there is one. *)
    let keys = t.keys and mask = t.mask in
    let i = ref (mix k mask) in
    let continue = ref true in
    while !continue do
      let sl = !i in
      let key = Array.unsafe_get keys sl in
      if key = empty_slot || key = tomb_slot then begin
        if key = tomb_slot then t.tombs <- t.tombs - 1;
        Array.unsafe_set keys sl k;
        Array.unsafe_set t.vals sl v;
        t.live <- t.live + 1;
        continue := false
      end
      else i := (sl + 1) land mask
    done
  end

let remove t k =
  let s = lookup t k in
  if s >= 0 then begin
    t.keys.(s) <- tomb_slot;
    t.live <- t.live - 1;
    t.tombs <- t.tombs + 1
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_slot;
  t.live <- 0;
  t.tombs <- 0

(* Raw snapshot of the physical table.  The layout — slot positions,
   tombstones, capacity — is part of the state: re-inserting live
   bindings into a fresh table would change future probe sequences and
   rehash points, which is invisible to [find]/[set] but visible to
   anything hashing the arrays (snapshot probe digests). *)
type raw = {
  raw_keys : int array;
  raw_vals : int array;
  raw_live : int;
  raw_tombs : int;
}

let export_state t =
  {
    raw_keys = Array.copy t.keys;
    raw_vals = Array.copy t.vals;
    raw_live = t.live;
    raw_tombs = t.tombs;
  }

let import_state r =
  let cap = Array.length r.raw_keys in
  if cap < 8 || cap land (cap - 1) <> 0 then
    invalid_arg "Flat.import_state: capacity not a power of two";
  if Array.length r.raw_vals <> cap then
    invalid_arg "Flat.import_state: keys/vals length mismatch";
  {
    keys = Array.copy r.raw_keys;
    vals = Array.copy r.raw_vals;
    mask = cap - 1;
    live = r.raw_live;
    tombs = r.raw_tombs;
  }

let iter f t =
  let keys = t.keys and vals = t.vals in
  for s = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys s in
    if k >= 0 then f k (Array.unsafe_get vals s)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
