type transition_mode = Full_exits | No_upcall | No_upcall_no_aex

let pp_transition_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Full_exits -> "as-measured"
    | No_upcall -> "no-upcall"
    | No_upcall_no_aex -> "no-upcall/AEX")

(* Pre-resolved counter cells for the per-access and per-transition hot
   paths: no string hashing on a TLB miss, fault, or SGX instruction.
   [c_fault] is indexed by [Types.fault_cause_index]. *)
type hot_counters = {
  c_tlb_miss : Metrics.Counters.cell;
  c_page_fault : Metrics.Counters.cell;
  c_fault : Metrics.Counters.cell array;
  c_ecreate : Metrics.Counters.cell;
  c_eadd : Metrics.Counters.cell;
  c_einit : Metrics.Counters.cell;
  c_aex : Metrics.Counters.cell;
  c_eresume : Metrics.Counters.cell;
  c_eenter : Metrics.Counters.cell;
  c_eexit : Metrics.Counters.cell;
  c_aex_elided : Metrics.Counters.cell;
  c_inenclave_resume : Metrics.Counters.cell;
  c_epa : Metrics.Counters.cell;
  c_eblock : Metrics.Counters.cell;
  c_etrack : Metrics.Counters.cell;
  c_ewb : Metrics.Counters.cell;
  c_eldu : Metrics.Counters.cell;
  c_eaug : Metrics.Counters.cell;
  c_eaccept : Metrics.Counters.cell;
  c_eacceptcopy : Metrics.Counters.cell;
  c_emodpr : Metrics.Counters.cell;
  c_emodt : Metrics.Counters.cell;
  c_eremove : Metrics.Counters.cell;
}

type t = {
  clock : Metrics.Clock.t;
  hot : hot_counters;
  epc : Epc.t;
  tlb : Tlb.t;
  sealer : Sim_crypto.Sealer.t;
  va_slots : Flat.t;
  va_free : int Queue.t;
  mutable va_next_slot : int;
  mutable va_frames : Types.frame list;
  mutable va_counter : int64;
  mutable enclaves : Enclave.t list;
  mutable next_enclave_id : int;
  mutable next_base_vpage : Types.vpage;
  mutable mode : transition_mode;
  mutable tracer : Trace.Recorder.t option;
  (* Branch-trace store (LBR/BTB model): the last [branch_ring_capacity]
     enclave-mode control transfers as (enclave_id, vpage) records.  SGX
     does not flush it on AEX — the Branch Shadowing channel. *)
  branch_ring : (int * int) array;
  mutable branch_cursor : int;
}

let branch_ring_capacity = 32

let hot_counters_of counters =
  let cell = Metrics.Counters.cell counters in
  {
    c_tlb_miss = cell "mmu.tlb_miss";
    c_page_fault = cell "cpu.page_fault";
    c_fault =
      Array.map
        (fun cause ->
          cell (Format.asprintf "mmu.fault.%a" Types.pp_fault_cause cause))
        Types.all_fault_causes;
    c_ecreate = cell "sgx.ecreate";
    c_eadd = cell "sgx.eadd";
    c_einit = cell "sgx.einit";
    c_aex = cell "sgx.aex";
    c_eresume = cell "sgx.eresume";
    c_eenter = cell "sgx.eenter";
    c_eexit = cell "sgx.eexit";
    c_aex_elided = cell "sgx.aex_elided";
    c_inenclave_resume = cell "sgx.inenclave_resume";
    c_epa = cell "sgx.epa";
    c_eblock = cell "sgx.eblock";
    c_etrack = cell "sgx.etrack";
    c_ewb = cell "sgx.ewb";
    c_eldu = cell "sgx.eldu";
    c_eaug = cell "sgx.eaug";
    c_eaccept = cell "sgx.eaccept";
    c_eacceptcopy = cell "sgx.eacceptcopy";
    c_emodpr = cell "sgx.emodpr";
    c_emodt = cell "sgx.emodt";
    c_eremove = cell "sgx.eremove";
  }

let create ?(model = Metrics.Cost_model.default) ?(mode = Full_exits) ~epc_frames () =
  let clock = Metrics.Clock.create model in
  {
    clock;
    hot = hot_counters_of (Metrics.Clock.counters clock);
    epc = Epc.create ~frames:epc_frames;
    tlb = Tlb.create ();
    sealer = Sim_crypto.Sealer.create ~master_key:"sgx-epc-paging-key";
    va_slots = Flat.create ~size:4096 ();
    va_free = Queue.create ();
    va_next_slot = 0;
    va_frames = [];
    va_counter = 0L;
    enclaves = [];
    next_enclave_id = 1;
    (* Leave page 0 unused so a 0 vaddr is never a valid enclave address. *)
    next_base_vpage = 0x10000;
    mode;
    tracer = None;
    branch_ring = Array.make branch_ring_capacity (-1, -1);
    branch_cursor = 0;
  }

let model t = Metrics.Clock.model t.clock
let charge t n = Metrics.Clock.charge t.clock n
let counters t = Metrics.Clock.counters t.clock
let hot t = t.hot

let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr

let record_branch t ~enclave_id ~vpage =
  t.branch_ring.(t.branch_cursor mod branch_ring_capacity) <- (enclave_id, vpage);
  t.branch_cursor <- t.branch_cursor + 1

let drain_branches t ~enclave_id =
  let n = min t.branch_cursor branch_ring_capacity in
  let start = t.branch_cursor - n in
  let acc = ref [] in
  for i = start + n - 1 downto start do
    let eid, vp = t.branch_ring.(i mod branch_ring_capacity) in
    if eid = enclave_id then acc := vp :: !acc
  done;
  Array.fill t.branch_ring 0 branch_ring_capacity (-1, -1);
  t.branch_cursor <- 0;
  !acc

let trace_access : Types.access_kind -> Trace.Event.access = function
  | Types.Read -> Trace.Event.Read
  | Types.Write -> Trace.Event.Write
  | Types.Exec -> Trace.Event.Exec

let register_enclave t ~size_pages ~self_paging =
  let id = t.next_enclave_id in
  t.next_enclave_id <- id + 1;
  let base_vpage = t.next_base_vpage in
  (* Pad regions apart so out-of-range accesses are obvious bugs. *)
  t.next_base_vpage <- base_vpage + size_pages + 0x1000;
  let enclave = Enclave.create ~id ~base_vpage ~size_pages ~self_paging () in
  t.enclaves <- enclave :: t.enclaves;
  enclave

let enclave_by_id t id = List.find_opt (fun (e : Enclave.t) -> e.id = id) t.enclaves

let fresh_va_version t =
  t.va_counter <- Int64.add t.va_counter 1L;
  t.va_counter

let slots_per_va_page = 512

let free_va_slots t = Queue.length t.va_free

let provision_va_page t ~frame =
  t.va_frames <- frame :: t.va_frames;
  for _ = 1 to slots_per_va_page do
    Queue.push t.va_next_slot t.va_free;
    t.va_next_slot <- t.va_next_slot + 1
  done

let take_va_slot t ~version =
  match Queue.take_opt t.va_free with
  | None -> None
  | Some slot ->
    (* Versions are a monotonically increasing counter from 1: they fit
       a native int, so the slot store can be a flat int map. *)
    Flat.set t.va_slots slot (Int64.to_int version);
    Some slot

let read_va_slot t slot =
  let v = Flat.find t.va_slots slot in
  if v >= 0 then Some (Int64.of_int v) else None

let clear_va_slot t slot =
  if Flat.mem t.va_slots slot then begin
    Flat.remove t.va_slots slot;
    Queue.push slot t.va_free
  end
