(** Translation lookaside buffer of the (single) simulated logical core.

    The TLB matters to the security model: accessed/dirty bits are only
    read and updated on a TLB *fill*, so an attacker monitoring them must
    first force the TLB to be flushed.  SGX flushes enclave translations
    on every enclave entry and exit, which the enclave-transition code
    does through {!flush}.

    Capacity is finite (default 1536 entries, an Ice Lake-class L2 TLB);
    fills beyond capacity evict FIFO.  Fill frequency drives the cost of
    Autarky's per-fill accessed/dirty check (the nbench experiment).

    The representation is flat: a fixed-size open-addressing int table
    with generation-counter flushes (O(1), no memset on the 4+ flushes
    per fault) and an int ring buffer for FIFO order.  {!hit}, {!fill}
    and {!flush} allocate nothing.  {!Tlb_ref} is the boxed reference
    implementation kept as a differential oracle. *)

type t

val create : ?capacity:int -> unit -> t

val hit : t -> Types.vpage -> Types.access_kind -> bool
(** [hit t vp kind] is true when the translation is cached with
    sufficient rights for [kind].  Never allocates. *)

val fill : ?dirty:bool -> t -> Types.vpage -> Types.perms -> unit
(** Install a translation after a successful walk, evicting the oldest
    entry if full.  [dirty] records whether the fill performed dirty
    tracking: a later write through a non-dirty entry re-walks, exactly
    as x86 does to set the PTE dirty bit. *)

val fill_bits : ?dirty:bool -> t -> Types.vpage -> int -> unit
(** {!fill} taking the permission mask of {!Types.perms_bits} directly,
    for callers already holding packed permissions (the MMU walk). *)

val flush : t -> unit
val flush_page : t -> Types.vpage -> unit
val size : t -> int
val capacity : t -> int

(** {1 Raw state (snapshot/restore)}

    Verbatim copies of the physical arrays — generation counter,
    tombstones, and the FIFO ring including stale entries.  Eviction
    order after a restore must match the un-snapshotted run exactly
    (golden digests pin it), so nothing is normalised on export. *)

type raw = {
  raw_cap : int;
  raw_keys : int array;
  raw_vals : int array;
  raw_gens : int array;
  raw_gen : int;
  raw_live : int;
  raw_tombs : int;
  raw_ring : int array;
  raw_head : int;
  raw_tail : int;
}

val export_state : t -> raw
val import_state : raw -> t
(** Raises [Invalid_argument] on structurally invalid raw state (sizes
    not powers of two, mismatched array lengths). *)
