(** The simulated platform: one CPU package with its EPC, TLB, paging
    keys and anti-replay version store, shared clock, and the registry of
    enclaves it hosts. *)

(** How fault delivery transitions are performed — the three
    configurations of the paper's Table 2 and §5.1.3:
    {ul
    {- [Full_exits]: the measured prototype — AEX to the OS, EENTER the
       handler, EEXIT, ERESUME.}
    {- [No_upcall]: proposed in-enclave ERESUME variant — the handler
       resumes directly, eliding EEXIT+ERESUME.}
    {- [No_upcall_no_aex]: additionally elide the AEX — the fault is
       delivered straight to the in-enclave handler, the OS never runs.}} *)
type transition_mode = Full_exits | No_upcall | No_upcall_no_aex

val pp_transition_mode : Format.formatter -> transition_mode -> unit

(** Counter cells pre-resolved at machine construction so the
    per-access and per-transition paths never hash a counter name.
    [c_fault] is indexed by {!Types.fault_cause_index}. *)
type hot_counters = {
  c_tlb_miss : Metrics.Counters.cell;
  c_page_fault : Metrics.Counters.cell;
  c_fault : Metrics.Counters.cell array;
  c_ecreate : Metrics.Counters.cell;
  c_eadd : Metrics.Counters.cell;
  c_einit : Metrics.Counters.cell;
  c_aex : Metrics.Counters.cell;
  c_eresume : Metrics.Counters.cell;
  c_eenter : Metrics.Counters.cell;
  c_eexit : Metrics.Counters.cell;
  c_aex_elided : Metrics.Counters.cell;
  c_inenclave_resume : Metrics.Counters.cell;
  c_epa : Metrics.Counters.cell;
  c_eblock : Metrics.Counters.cell;
  c_etrack : Metrics.Counters.cell;
  c_ewb : Metrics.Counters.cell;
  c_eldu : Metrics.Counters.cell;
  c_eaug : Metrics.Counters.cell;
  c_eaccept : Metrics.Counters.cell;
  c_eacceptcopy : Metrics.Counters.cell;
  c_emodpr : Metrics.Counters.cell;
  c_emodt : Metrics.Counters.cell;
  c_eremove : Metrics.Counters.cell;
}

type t = {
  clock : Metrics.Clock.t;
  hot : hot_counters;
  epc : Epc.t;
  tlb : Tlb.t;
  sealer : Sim_crypto.Sealer.t;  (** hardware paging keys (EWB/ELDU) *)
  (* Version arrays: EPC pages of 512 anti-replay slots, provisioned by
     the OS with EPA.  A slot holds the version of one swapped-out page
     and is consumed by the ELDU that reloads it. *)
  va_slots : Flat.t;  (** occupied slot -> version (as a native int) *)
  va_free : int Queue.t;
  mutable va_next_slot : int;
  mutable va_frames : Types.frame list;
  mutable va_counter : int64;
  mutable enclaves : Enclave.t list;
  mutable next_enclave_id : int;
  mutable next_base_vpage : Types.vpage;
  mutable mode : transition_mode;
  mutable tracer : Trace.Recorder.t option;
      (** event recorder shared by every layer of this platform; [None]
          (the default) disables tracing at the cost of one branch per
          potential emit site *)
  branch_ring : (int * int) array;
      (** branch-trace store (LBR/BTB model): the most recent
          enclave-mode control transfers as [(enclave_id, vpage)]
          records.  SGX leaves it intact across AEX — the substrate of
          Lee et al.'s Branch Shadowing channel, which Autarky's paging
          ISA does not (and does not claim to) close. *)
  mutable branch_cursor : int;  (** total branches ever recorded *)
}

val branch_ring_capacity : int

val record_branch : t -> enclave_id:int -> vpage:Types.vpage -> unit
(** Record one enclave-mode control transfer (an exec access) in the
    branch-trace ring.  Pure microarchitectural state: no cycles are
    charged, no counters or trace events fire. *)

val drain_branches : t -> enclave_id:int -> Types.vpage list
(** Read out and clear the branch-trace ring, keeping only records of
    the given enclave (oldest first).  Models a privileged LBR read-out:
    destructive, bounded by {!branch_ring_capacity}. *)

val create :
  ?model:Metrics.Cost_model.t -> ?mode:transition_mode -> epc_frames:int ->
  unit -> t

val model : t -> Metrics.Cost_model.t
val charge : t -> int -> unit
val counters : t -> Metrics.Counters.t
val hot : t -> hot_counters

val tracer : t -> Trace.Recorder.t option
val set_tracer : t -> Trace.Recorder.t option -> unit

val trace_access : Types.access_kind -> Trace.Event.access

val register_enclave : t -> size_pages:int -> self_paging:bool -> Enclave.t
(** Allocate a fresh virtual region and enclave id (used by ECREATE). *)

val enclave_by_id : t -> int -> Enclave.t option
val fresh_va_version : t -> int64

(** {1 Version-array slots} *)

val free_va_slots : t -> int
val provision_va_page : t -> frame:Types.frame -> unit
(** Register 512 fresh slots backed by [frame] (EPA's effect). *)

val take_va_slot : t -> version:int64 -> int option
(** Occupy a free slot with a version; [None] when no VA capacity. *)

val read_va_slot : t -> int -> int64 option
val clear_va_slot : t -> int -> unit
(** Release the slot for reuse (the reload consumed its version). *)
