(** The OS-controlled page table of one enclave host process.

    This structure belongs to the *untrusted* OS: an adversarial kernel
    may read and modify every PTE (that is the controlled channel).  The
    hardware (MMU + EPCM) only checks it.

    PTEs are bit-packed ints over a dense vpage-window array so the MMU
    walk path allocates nothing: bit 0 present, bits 1-3 r/w/x, bit 4
    accessed, bit 5 dirty, bits 6+ frame.  {!find_packed} returns
    {!no_pte} ([-1]) for a missing PTE; every real PTE packs to a
    non-negative int.  {!Page_table_ref} is the boxed reference
    implementation with the same interface, kept as a differential
    oracle. *)

type t

val create : unit -> t

(** {1 Packed-PTE encoding} *)

val no_pte : int
(** Sentinel ([-1]) for "no PTE". *)

val p_present : int -> bool
val p_accessed : int -> bool
val p_dirty : int -> bool
val p_frame : int -> int

val p_rwx : int -> int
(** Permission bits (r=1, w=2, x=4) of a packed PTE. *)

val p_allows : int -> Types.access_kind -> bool
val p_perms : int -> Types.perms

val pack :
  frame:Types.frame -> perms:Types.perms -> accessed:bool -> dirty:bool -> int
(** The packed form of a present PTE. *)

(** {1 Operations} *)

val map :
  t -> vpage:Types.vpage -> frame:Types.frame -> perms:Types.perms ->
  ?accessed:bool -> ?dirty:bool -> unit -> unit
(** Install or replace a PTE. [accessed]/[dirty] default to [false]
    (legacy OS behaviour); an Autarky-aware OS installs PTEs for
    self-paging enclaves with both set. *)

val unmap : t -> Types.vpage -> unit

val find_packed : t -> Types.vpage -> int
(** The packed PTE, or {!no_pte}.  Never allocates. *)

val mapped : t -> Types.vpage -> bool
(** A PTE exists (present or not). *)

val present : t -> Types.vpage -> bool

val set_perms : t -> Types.vpage -> Types.perms -> unit
(** Raises [Not_found] if the page has no PTE. *)

val set_present : t -> Types.vpage -> bool -> unit
(** Toggle the present bit; no-op if the page has no PTE. *)

val set_frame : t -> Types.vpage -> Types.frame -> unit
(** Repoint an existing PTE (the attacker's remap primitive).  Raises
    [Not_found] if the page has no PTE. *)

val set_ad : t -> Types.vpage -> write:bool -> unit
(** The legacy walk's writeback: set accessed, and dirty when [write].
    No-op if the page has no PTE. *)

val clear_accessed : t -> Types.vpage -> unit
val clear_dirty : t -> Types.vpage -> unit

val mapped_pages : t -> Types.vpage list
(** Every vpage with a PTE, ascending (monomorphic enumeration). *)

val count_present : t -> int
val count_mapped : t -> int

(** {1 Raw state (snapshot/restore)}

    The dense window verbatim: base vpage, packed PTE array (including
    unmapped [no_pte] slack slots) and entry count. *)

type raw = { raw_base : int; raw_tbl : int array; raw_entries : int }

val export_state : t -> raw
val import_state : raw -> t
(** Raises [Invalid_argument] on negative base or an entry count that
    exceeds the window. *)
