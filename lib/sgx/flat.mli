(** Open-addressing int -> int map with allocation-free lookups.

    Keys must be non-negative; values should be too, because {!find}
    returns {!absent} ([-1]) for a missing key instead of an [option].
    Used on the simulator hot paths (EPCM reverse index, residence
    sets, fault counters) where [Hashtbl.find_opt]'s [Some] box per
    probe is measurable. *)

type t

val absent : int
(** [-1]; the sentinel {!find} returns for a missing key. *)

val create : ?size:int -> unit -> t
(** [size] is an initial capacity hint (rounded up to a power of 2). *)

val length : t -> int
val mem : t -> int -> bool

val find : t -> int -> int
(** The value bound to the key, or {!absent}.  Never allocates. *)

val find_default : t -> int -> int -> int
(** [find_default t k d] is the value bound to [k], or [d]. *)

val set : t -> int -> int -> unit
(** Bind (or rebind) a key.  Raises [Invalid_argument] on a negative
    key. *)

val remove : t -> int -> unit
(** Unbind a key; absent keys are ignored. *)

val clear : t -> unit
(** Remove every binding, keeping the current capacity. *)

val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Raw state (snapshot/restore)}

    The physical table verbatim — slot positions, tombstones and
    capacity included.  Re-inserting the live bindings into a fresh
    table would be observationally equivalent to [find]/[set] but would
    change probe sequences and the next rehash point, so checkpointing
    goes through these instead. *)

type raw = {
  raw_keys : int array;  (** slot array: key, [-1] empty, [-2] tombstone *)
  raw_vals : int array;
  raw_live : int;
  raw_tombs : int;
}

val export_state : t -> raw
(** A deep copy of the physical table. *)

val import_state : raw -> t
(** Rebuild a map bit-identical to the exported one.  Raises
    [Invalid_argument] when the arrays are not a power-of-two pair. *)
