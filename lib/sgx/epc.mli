(** Enclave page cache (EPC) and its trusted metadata (EPCM).

    The EPCM is the hardware's ground truth: for every EPC frame it
    records which enclave page the frame holds, with what rights and
    type, and whether a dynamic-memory operation is pending enclave
    confirmation.  Software (even the OS) can never write it directly;
    only SGX instructions update it. *)

type epcm_entry = {
  mutable valid : bool;
  mutable enclave_id : int;
  mutable vpage : Types.vpage;
  mutable perms : Types.perms;
  mutable ptype : Types.page_type;
  mutable pending : bool;   (** EAUG'd, awaiting EACCEPT(COPY) *)
  mutable modified : bool;  (** EMODT/EMODPR'd, awaiting EACCEPT *)
  mutable blocked : bool;   (** EBLOCK'd, may be evicted by EWB *)
}

type t

val create : frames:int -> t
(** An EPC with [frames] 4 KiB frames. *)

val total_frames : t -> int
val free_frames : t -> int

val alloc : t -> Types.frame option
(** Take a free frame, or [None] when the EPC is exhausted. *)

val release : t -> Types.frame -> unit
(** Invalidate the EPCM entry and return the frame to the free pool. *)

val entry : t -> Types.frame -> epcm_entry
val data : t -> Types.frame -> Page_data.t
val set_data : t -> Types.frame -> Page_data.t -> unit

val frame_of : t -> enclave_id:int -> vpage:Types.vpage -> Types.frame option
(** Reverse lookup: the frame currently holding a given enclave page. *)

val frame_of_packed : t -> enclave_id:int -> vpage:Types.vpage -> int
(** {!frame_of} without the [option]: [-1] when the page is not
    resident.  The hot-path form (never allocates). *)

val frames_of_enclave : t -> enclave_id:int -> Types.frame list

val bind :
  ?track_reverse:bool ->
  t -> frame:Types.frame -> enclave_id:int -> vpage:Types.vpage ->
  perms:Types.perms -> ptype:Types.page_type -> pending:bool -> unit
(** Record an EPCM entry for [frame] (used by EADD/EAUG/ELDU/EPA).
    [track_reverse:false] skips the enclave-page reverse index (VA pages
    belong to no enclave). *)
