(** Shared vocabulary of the SGX hardware model.

    Virtual addresses are byte addresses ([vaddr]); most of the model
    works on virtual page numbers ([vpage] = vaddr / page size).  Physical
    EPC pages are identified by frame index. *)

type vaddr = int
type vpage = int
type frame = int

let page_shift = 12
let page_bytes = 1 lsl page_shift
let vpage_of_vaddr (a : vaddr) : vpage = a lsr page_shift
let vaddr_of_vpage (p : vpage) : vaddr = p lsl page_shift

(** Kind of memory access, as seen by the MMU. *)
type access_kind = Read | Write | Exec

let pp_access_kind ppf k =
  Format.pp_print_string ppf
    (match k with Read -> "read" | Write -> "write" | Exec -> "exec")

(** Page permissions recorded in PTEs and the EPCM. *)
type perms = { r : bool; w : bool; x : bool }

let perms_rw = { r = true; w = true; x = false }
let perms_rx = { r = true; w = false; x = true }
let perms_ro = { r = true; w = false; x = false }
let perms_rwx = { r = true; w = true; x = true }

let perms_allow perms = function
  | Read -> perms.r
  | Write -> perms.w
  | Exec -> perms.x

(* Dense index for access kinds (decision tables, packed encodings). *)
let access_kind_index = function Read -> 0 | Write -> 1 | Exec -> 2

(** {2 Bit-packed permissions}

    The flat page table and TLB store permissions as a 3-bit mask
    (r=1, w=2, x=4) inside a packed int; these helpers keep the
    encoding in one place. *)

let perms_bits p =
  (if p.r then 1 else 0) lor (if p.w then 2 else 0) lor (if p.x then 4 else 0)

let kind_bit = function Read -> 1 | Write -> 2 | Exec -> 4
let bits_allow bits kind = bits land kind_bit kind <> 0

let perms_of_bits b =
  { r = b land 1 <> 0; w = b land 2 <> 0; x = b land 4 <> 0 }

(* [perms_subset a b]: every right in [a] is also in [b]. *)
let perms_subset a b = ((not a.r) || b.r) && ((not a.w) || b.w) && ((not a.x) || b.x)

let pp_perms ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.r then 'r' else '-')
    (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

(** EPCM page types (SGX PT_REG / PT_TCS / PT_TRIM / PT_VA). *)
type page_type = Pt_reg | Pt_tcs | Pt_trim | Pt_va

let pp_page_type ppf t =
  Format.pp_print_string ppf
    (match t with
    | Pt_reg -> "REG" | Pt_tcs -> "TCS" | Pt_trim -> "TRIM" | Pt_va -> "VA")

(** Architectural cause of a page fault inside the enclave region. *)
type fault_cause =
  | Not_present        (** PTE present bit clear or no PTE *)
  | Permission of access_kind  (** PTE lacks the required right *)
  | Epcm_mismatch      (** PTE maps the wrong frame / wrong enclave page *)
  | Epcm_pending       (** page added by EAUG but not yet EACCEPTed *)
  | Ad_clear           (** Autarky check: accessed/dirty bit was clear *)
  | Non_epc_mapping    (** enclave address mapped to non-EPC memory *)

(* Dense index for per-cause counter arrays; keep in sync with
   [all_fault_causes]. *)
let fault_cause_index = function
  | Not_present -> 0
  | Permission Read -> 1
  | Permission Write -> 2
  | Permission Exec -> 3
  | Epcm_mismatch -> 4
  | Epcm_pending -> 5
  | Ad_clear -> 6
  | Non_epc_mapping -> 7

let all_fault_causes =
  [| Not_present; Permission Read; Permission Write; Permission Exec;
     Epcm_mismatch; Epcm_pending; Ad_clear; Non_epc_mapping |]

(* Precomputed cause strings, indexed by [fault_cause_index]: the MMU
   fault-trace path must not run [Format.asprintf] per fault. *)
let fault_cause_strings =
  [| "not-present"; "perm-read"; "perm-write"; "perm-exec"; "epcm-mismatch";
     "epcm-pending"; "ad-clear"; "non-epc-mapping" |]

let pp_fault_cause ppf c =
  Format.pp_print_string ppf fault_cause_strings.(fault_cause_index c)

(** What the hardware reports to the untrusted OS after an enclave fault.
    For legacy enclaves the address is page-aligned (offset masked); for
    self-paging (Autarky) enclaves the whole address and access type are
    hidden: the fault is reported as a read at the enclave base. *)
type os_fault_report = {
  fr_enclave_id : int;
  fr_vaddr : vaddr;
  fr_access : access_kind;
}

(** Full fault information saved in the SSA frame, visible only to
    trusted in-enclave code. *)
type ssa_fault = {
  sf_vaddr : vaddr;
  sf_access : access_kind;
  sf_cause : fault_cause;
}

exception Enclave_terminated of { enclave_id : int; reason : string }
(** Raised when trusted enclave software decides to terminate (e.g. the
    self-paging runtime detected an OS-induced fault). *)

exception Sgx_error of string
(** An SGX instruction was used against its architectural preconditions;
    indicates a simulator-usage bug, not an attack outcome. *)

let sgx_errorf fmt = Format.kasprintf (fun s -> raise (Sgx_error s)) fmt
