type epcm_entry = {
  mutable valid : bool;
  mutable enclave_id : int;
  mutable vpage : Types.vpage;
  mutable perms : Types.perms;
  mutable ptype : Types.page_type;
  mutable pending : bool;
  mutable modified : bool;
  mutable blocked : bool;
}

(* The reverse index (enclave page -> frame) keys a {!Flat} int map
   with enclave id and vpage packed into one int; the free pool is an
   int-array stack.  Both preserve the old structures' observable
   order: the stack pops frames 0, 1, 2, ... initially and is LIFO on
   release, exactly like the old cons-list free list. *)

type t = {
  entries : epcm_entry array;
  contents : Page_data.t array;
  free : int array;           (* free frames; top of stack at free_count-1 *)
  mutable free_count : int;
  reverse : Flat.t;
}

let reverse_key ~enclave_id ~vpage = (enclave_id lsl 40) lor vpage

let empty_entry () =
  {
    valid = false;
    enclave_id = -1;
    vpage = -1;
    perms = Types.perms_ro;
    ptype = Types.Pt_reg;
    pending = false;
    modified = false;
    blocked = false;
  }

let create ~frames =
  assert (frames > 0);
  {
    entries = Array.init frames (fun _ -> empty_entry ());
    contents = Array.init frames (fun _ -> Page_data.create ());
    (* Arranged so the first pops yield frames 0, 1, 2, ... *)
    free = Array.init frames (fun i -> frames - 1 - i);
    free_count = frames;
    reverse = Flat.create ~size:(2 * frames) ();
  }

let total_frames t = Array.length t.entries
let free_frames t = t.free_count

let alloc t =
  if t.free_count = 0 then None
  else begin
    let f = t.free.(t.free_count - 1) in
    t.free_count <- t.free_count - 1;
    Some f
  end

let entry t frame = t.entries.(frame)
let data t frame = t.contents.(frame)
let set_data t frame d = t.contents.(frame) <- d

let release t frame =
  let e = t.entries.(frame) in
  (* VA pages are bound with [track_reverse:false] and a negative
     enclave id; they have no reverse entry to drop. *)
  if e.valid && e.enclave_id >= 0 then
    Flat.remove t.reverse (reverse_key ~enclave_id:e.enclave_id ~vpage:e.vpage);
  e.valid <- false;
  e.pending <- false;
  e.modified <- false;
  e.blocked <- false;
  e.enclave_id <- -1;
  e.vpage <- -1;
  t.contents.(frame) <- Page_data.create ();
  t.free.(t.free_count) <- frame;
  t.free_count <- t.free_count + 1

let frame_of_packed t ~enclave_id ~vpage =
  if enclave_id < 0 || vpage < 0 then -1
  else Flat.find t.reverse (reverse_key ~enclave_id ~vpage)

let frame_of t ~enclave_id ~vpage =
  let f = frame_of_packed t ~enclave_id ~vpage in
  if f >= 0 then Some f else None

let frames_of_enclave t ~enclave_id =
  let acc = ref [] in
  Array.iteri
    (fun f e -> if e.valid && e.enclave_id = enclave_id then acc := f :: !acc)
    t.entries;
  List.rev !acc

let bind ?(track_reverse = true) t ~frame ~enclave_id ~vpage ~perms ~ptype ~pending =
  let e = t.entries.(frame) in
  if e.valid then Types.sgx_errorf "EPCM: frame %d already bound" frame;
  e.valid <- true;
  e.enclave_id <- enclave_id;
  e.vpage <- vpage;
  e.perms <- perms;
  e.ptype <- ptype;
  e.pending <- pending;
  e.modified <- false;
  e.blocked <- false;
  if track_reverse then Flat.set t.reverse (reverse_key ~enclave_id ~vpage) frame
