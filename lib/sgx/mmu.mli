(** The MMU access path for enclave-mode accesses, including the
    SGX-specific checks and the Autarky extensions (§2.1, §5.1.4).

    On a TLB hit only the cache access cost is charged.  On a miss, the
    page table is walked; a valid walk is then subjected to the SGX
    checks (the mapping must point at an EPC frame whose EPCM entry
    matches this enclave page) and, for self-paging enclaves, the Autarky
    accessed/dirty validity check.  Any failed check is a page fault.

    Legacy enclaves update PTE accessed/dirty bits on a fill exactly like
    normal paging — this is the leak exploited by the stealthy
    controlled-channel variants.  Self-paging enclaves never write the
    bits; they must already be set or the PTE is treated as invalid. *)

val translate_code :
  Machine.t -> Page_table.t -> Enclave.t -> Types.vaddr ->
  Types.access_kind -> int
(** Perform one enclave-mode access to an address inside the enclave
    region.  Returns [0] on success, and [-(1 + fault_cause_index c)]
    for a fault with cause [c] (recover it with {!cause_of_code}).
    Charges cycle costs as a side effect; on success the TLB is filled.
    The TLB-hit and walk-hit paths allocate zero words.  Raises
    {!Types.Sgx_error} if [vaddr] lies outside the enclave. *)

val cause_of_code : int -> Types.fault_cause
(** The fault cause behind a negative {!translate_code} result. *)

val translate :
  Machine.t -> Page_table.t -> Enclave.t -> Types.vaddr ->
  Types.access_kind -> (unit, Types.fault_cause) result
(** {!translate_code} as a [result] — the boxed convenience form for
    tests and benchmarks off the hot path. *)

val os_report :
  Enclave.t -> Types.vaddr -> Types.access_kind -> Types.os_fault_report
(** The fault information delivered to the untrusted OS: page-aligned
    address and access type for legacy enclaves; the enclave base address
    and a read access for self-paging enclaves (full masking). *)
