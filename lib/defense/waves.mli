(** Scripted attack waves against the live serving fleet.

    A wave adapts one of the repo's adversaries (red-team CopyCat /
    KingsGuard / Pigeonhole, or the inject suite's balloon-storm
    campaign) to the multi-tenant engine: it rides the engine's request
    hooks and attacks one tenant through the guest-kernel [attacker_*]
    surface, armed only while the victim's request index lies in
    [[from_, until)).  That window gives every run a before / during /
    after phase structure. *)

type kind = Copycat_storm | Kingsguard_churn | Pigeonhole_spy | Balloon_storm

val all : kind list
val name : kind -> string
val of_name : string -> kind option
val description : kind -> string

type t

val create : kind:kind -> victim:string -> from_:int -> until:int -> t
(** Attack the victim's requests executed while its {e arrival} counter
    lies in [[from_, until)).  The window is keyed to arrivals rather
    than executed requests so a victim the attack slows to a crawl
    cannot freeze the wave's clock — the generator keeps arriving and
    the wave always ends.
    @raise Invalid_argument when the window is malformed. *)

val kind : t -> kind
val victim : t -> string
val window : t -> int * int
val seen : t -> int
(** Victim requests executed so far. *)

val probes : t -> int
(** Active attacker operations performed. *)

val bits : t -> float
(** Observation bits recovered by the wave's channel (candidate-set
    scoring; termination bits are accounted separately at one per
    restart). *)

type phase = Before | During | After

val phase_name : phase -> string

val phase : t -> phase
(** Phase at the wave's own clock (the victim's arrival counter as of
    its last executed request). *)

val phase_at : t -> clock:int -> phase
(** Phase for an explicit arrival count — lets a harness advance its
    phase accounting from the live counter (or on a defense tick, when
    shed arrivals produce no executed request to update the wave). *)

(** Engine hook adapters — compose these into {!Serve.Engine.hooks}
    alongside the controller's. *)

val on_start : t -> Serve.Engine.hook_ctx -> unit
val before_request : t -> Serve.Engine.hook_ctx -> tenant:int -> key:int -> unit

val after_request :
  t -> Serve.Engine.hook_ctx -> tenant:int -> verdict:Serve.Engine.verdict ->
  unit
