(* The per-tenant escalation controller.

   Policy ladder: each tenant starts at the rung matching its configured
   policy and the controller walks it up under attack pressure and back
   down when the pressure stops.  One [Defense_tick] evaluates every
   active tenant's signal window ({!Signals.delta}) against the hot and
   calm thresholds:

   - hot (any of: termination, preempt storm, fault storm, balloon
     storm) => try the next rung.  A refused escalation (the Heisenberg
     preload set does not fit the pager budget; the tenant keeps its old
     policy) is retried with exponential backoff, and after
     [dc_max_retries] failures the rung is skipped for good.  A switch
     that itself trips a kill goes through the restart monitor exactly
     like a request-path termination.
   - calm for [dc_hysteresis] consecutive ticks above the base rung =>
     step one rung down (hysteresis keeps a single quiet tick from
     flapping the policy).
   - otherwise => hold.

   Every tick's verdict for every tenant is emitted as a typed
   {!Trace.Event.Defense} event (escalated / de-escalated / held), so
   the decision stream is part of the deterministic trace digest. *)

module Tenant = Serve.Tenant
module Engine = Serve.Engine

type config = {
  dc_ladder : Tenant.policy_kind list;
  dc_period : float;
  dc_hysteresis : int;
  dc_max_retries : int;
  dc_backoff_base : int;
  dc_hot_faults : int;
  dc_hot_preempts : int;
  dc_hot_balloons : int;
  dc_hot_terminations : int;
  dc_calm_faults : int;
  dc_calm_preempts : int;
}

let standard_ladder = [ Tenant.Rate_limit; Tenant.Clusters; Tenant.Oram ]

let heisenberg_ladder =
  [ Tenant.Rate_limit; Tenant.Clusters; Tenant.Preload; Tenant.Oram ]

let default_config =
  {
    dc_ladder = standard_ladder;
    dc_period = 20.0;
    dc_hysteresis = 3;
    dc_max_retries = 3;
    dc_backoff_base = 1;
    dc_hot_faults = 256;
    dc_hot_preempts = 128;
    dc_hot_balloons = 2;
    dc_hot_terminations = 1;
    dc_calm_faults = 64;
    dc_calm_preempts = 32;
  }

type verdict_kind = Escalated | De_escalated | Held

let verdict_name = function
  | Escalated -> "escalated"
  | De_escalated -> "de-escalated"
  | Held -> "held"

type event = {
  ev_at : int;
  ev_tenant : string;
  ev_verdict : verdict_kind;
  ev_from : Tenant.policy_kind;
  ev_to : Tenant.policy_kind;
  ev_rung : int;
  ev_note : string;
}

type tstate = {
  ts_tenant : Tenant.t;
  ts_tap : Signals.tap;
  ts_base : int;
  mutable ts_rung : int;
  mutable ts_calm : int;
  mutable ts_retries : int;
  mutable ts_backoff : int;
  ts_skip : bool array;
}

type t = {
  cfg : config;
  ladder : Tenant.policy_kind array;
  mutable states : tstate array;
  mutable events : event list;  (* newest first *)
  mutable ticks : int;
  mutable escalations : int;
  mutable de_escalations : int;
  mutable failed_switches : int;
}

let create cfg =
  if cfg.dc_ladder = [] then
    invalid_arg "Defense.Controller.create: empty policy ladder";
  {
    cfg;
    ladder = Array.of_list cfg.dc_ladder;
    states = [||];
    events = [];
    ticks = 0;
    escalations = 0;
    de_escalations = 0;
    failed_switches = 0;
  }

let rung_of t kind =
  let r = ref (-1) in
  Array.iteri (fun i k -> if k = kind && !r < 0 then r := i) t.ladder;
  !r

let emit_verdict (ctx : Engine.hook_ctx) ~tenant ~verdict ~policy ~detail =
  match Sgx.Machine.tracer ctx.Engine.cx_machine with
  | None -> ()
  | Some r ->
    Trace.Recorder.emit r ~actor:Trace.Event.Harness
      (Trace.Event.Defense
         { tenant; verdict = verdict_name verdict; policy; detail })

let record t ctx ts ~at ~verdict ~from_ ~to_ ~note =
  emit_verdict ctx ~tenant:(Tenant.name ts.ts_tenant) ~verdict
    ~policy:(Tenant.policy_name to_) ~detail:ts.ts_rung;
  if verdict <> Held || note <> "steady" then
    t.events <-
      {
        ev_at = at;
        ev_tenant = Tenant.name ts.ts_tenant;
        ev_verdict = verdict;
        ev_from = from_;
        ev_to = to_;
        ev_rung = ts.ts_rung;
        ev_note = note;
      }
      :: t.events

let on_start t (ctx : Engine.hook_ctx) =
  t.states <-
    Array.map
      (fun tn ->
        let base = max 0 (rung_of t (Tenant.active_policy tn)) in
        {
          ts_tenant = tn;
          ts_tap = Signals.install tn;
          ts_base = base;
          ts_rung = base;
          ts_calm = 0;
          ts_retries = 0;
          ts_backoff = 0;
          ts_skip = Array.make (Array.length t.ladder) false;
        })
      ctx.Engine.cx_tenants

(* A policy switch can itself trip a detection (the sealed handoff
   faults, the preload refill starves).  Route it through the restart
   monitor exactly like the engine's request path: the reboot comes back
   under the tenant's previous policy, because [set_policy] only commits
   on success. *)
let switch_terminated ctx ts ~reason =
  let tn = ts.ts_tenant in
  let identity = Tenant.name tn in
  let monitor = ctx.Engine.cx_monitor in
  Tenant.incr_terminations tn;
  Autarky.Restart_monitor.record_termination monitor ~identity ~reason;
  match Autarky.Restart_monitor.record_start monitor ~identity with
  | Autarky.Restart_monitor.Allow ->
    Tenant.reboot tn;
    ctx.Engine.cx_emit ~tenant:identity ~action:"restart"
      ~detail:(Tenant.restarts tn)
  | Autarky.Restart_monitor.Refuse ->
    Tenant.set_refused tn;
    ctx.Engine.cx_emit ~tenant:identity ~action:"refused"
      ~detail:(Tenant.terminations tn)

let backoff_of t ts = min 8 (t.cfg.dc_backoff_base lsl min 6 ts.ts_retries)

let try_escalate t ctx ts ~at ~note =
  let n = Array.length t.ladder in
  let target = ref (ts.ts_rung + 1) in
  while !target < n && ts.ts_skip.(!target) do incr target done;
  let from_ = t.ladder.(ts.ts_rung) in
  if !target >= n then record t ctx ts ~at ~verdict:Held ~from_ ~to_:from_ ~note:"at-top"
  else begin
    let to_ = t.ladder.(!target) in
    match Tenant.set_policy ts.ts_tenant to_ with
    | () ->
      ts.ts_rung <- !target;
      ts.ts_calm <- 0;
      ts.ts_retries <- 0;
      t.escalations <- t.escalations + 1;
      record t ctx ts ~at ~verdict:Escalated ~from_ ~to_ ~note
    | exception Invalid_argument _ ->
      t.failed_switches <- t.failed_switches + 1;
      ts.ts_retries <- ts.ts_retries + 1;
      if ts.ts_retries > t.cfg.dc_max_retries then begin
        ts.ts_skip.(!target) <- true;
        ts.ts_retries <- 0;
        record t ctx ts ~at ~verdict:Held ~from_ ~to_ ~note:"skip-rung"
      end
      else begin
        ts.ts_backoff <- backoff_of t ts;
        record t ctx ts ~at ~verdict:Held ~from_ ~to_ ~note:"escalate-failed"
      end
    | exception Sgx.Types.Enclave_terminated { reason; _ } ->
      t.failed_switches <- t.failed_switches + 1;
      ts.ts_retries <- ts.ts_retries + 1;
      ts.ts_backoff <- backoff_of t ts;
      switch_terminated ctx ts ~reason;
      record t ctx ts ~at ~verdict:Held ~from_ ~to_ ~note:"switch-terminated"
  end

let de_escalate t ctx ts ~at =
  let target = ref (ts.ts_rung - 1) in
  while !target > ts.ts_base && ts.ts_skip.(!target) do decr target done;
  let from_ = t.ladder.(ts.ts_rung) in
  let to_ = t.ladder.(!target) in
  match Tenant.set_policy ts.ts_tenant to_ with
  | () ->
    ts.ts_rung <- !target;
    ts.ts_calm <- 0;
    t.de_escalations <- t.de_escalations + 1;
    record t ctx ts ~at ~verdict:De_escalated ~from_ ~to_ ~note:"hysteresis"
  | exception Invalid_argument _ ->
    (* The lower rung no longer fits (preload after the arbiter moved
       frames away): keep the stronger policy and stop trying it. *)
    t.failed_switches <- t.failed_switches + 1;
    ts.ts_skip.(!target) <- true;
    ts.ts_calm <- 0;
    record t ctx ts ~at ~verdict:Held ~from_ ~to_ ~note:"de-escalate-failed"
  | exception Sgx.Types.Enclave_terminated { reason; _ } ->
    t.failed_switches <- t.failed_switches + 1;
    ts.ts_calm <- 0;
    switch_terminated ctx ts ~reason;
    record t ctx ts ~at ~verdict:Held ~from_ ~to_ ~note:"switch-terminated"

let describe_hot w =
  if w.Signals.w_ad_terms > 0 then "hot:ad-churn"
  else if w.Signals.w_rate_terms > 0 then "hot:fault-storm"
  else if w.Signals.w_terminations > 0 then "hot:termination"
  else if w.Signals.w_preempts > 0 then "hot:preempt-storm"
  else if w.Signals.w_balloons > 0 then "hot:balloon-storm"
  else "hot:fault-pressure"

let tick_tenant t ctx ts ~at =
  let cfg = t.cfg in
  let w = Signals.delta ctx.Engine.cx_monitor ts.ts_tap in
  let hot =
    w.Signals.w_terminations >= cfg.dc_hot_terminations
    || w.Signals.w_preempts >= cfg.dc_hot_preempts
    || w.Signals.w_faults >= cfg.dc_hot_faults
    || w.Signals.w_balloons >= cfg.dc_hot_balloons
  in
  let calm =
    w.Signals.w_terminations = 0
    && w.Signals.w_preempts <= cfg.dc_calm_preempts
    && w.Signals.w_faults <= cfg.dc_calm_faults
    && w.Signals.w_balloons = 0
  in
  let here = t.ladder.(ts.ts_rung) in
  if Tenant.state ts.ts_tenant = Tenant.Refused then ()
  else if ts.ts_backoff > 0 then begin
    ts.ts_backoff <- ts.ts_backoff - 1;
    record t ctx ts ~at ~verdict:Held ~from_:here ~to_:here ~note:"backoff"
  end
  else if hot then try_escalate t ctx ts ~at ~note:(describe_hot w)
  else if calm && ts.ts_rung > ts.ts_base then begin
    ts.ts_calm <- ts.ts_calm + 1;
    if ts.ts_calm >= cfg.dc_hysteresis then de_escalate t ctx ts ~at
    else record t ctx ts ~at ~verdict:Held ~from_:here ~to_:here ~note:"cooling"
  end
  else begin
    if not calm then ts.ts_calm <- 0;
    record t ctx ts ~at ~verdict:Held ~from_:here ~to_:here ~note:"steady"
  end

let on_tick t ctx ~at =
  t.ticks <- t.ticks + 1;
  Array.iter (fun ts -> tick_tenant t ctx ts ~at) t.states

let events t = List.rev t.events
let ticks t = t.ticks
let escalations t = t.escalations
let de_escalations t = t.de_escalations
let failed_switches t = t.failed_switches

let rung t ~tenant =
  let r = ref None in
  Array.iter
    (fun ts -> if Tenant.name ts.ts_tenant = tenant then r := Some ts.ts_rung)
    t.states;
  !r
