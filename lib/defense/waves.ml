(* Scripted attack waves against the live serving fleet.

   Each wave adapts one of the repo's adversaries — the red-team
   single-steppers and A/D churners, and the inject suite's
   balloon-storm campaign — to the multi-tenant engine: instead of
   owning a dedicated victim enclave, the wave rides the engine's
   request hooks and attacks one tenant of the running fleet through
   the same guest-kernel [attacker_*] surface the standalone drivers
   use.  The wave is armed for a window of the victim's request stream
   ([from_, until)), so every cell has a clean before / during / after
   phase structure on the virtual-time event queue.

   Leakage scoring follows the scoreboard's rule (§5.2.3): a candidate
   set of k pages that contains a ground-truth page of the in-flight
   request is worth log2(alphabet) - log2(k) bits; terminations are
   scored separately by the harness at one bit per restart (§5.3). *)

module Tenant = Serve.Tenant
module Engine = Serve.Engine
module Vmm = Hypervisor.Vmm
module System = Harness.System

type kind = Copycat_storm | Kingsguard_churn | Pigeonhole_spy | Balloon_storm

let all = [ Copycat_storm; Kingsguard_churn; Pigeonhole_spy; Balloon_storm ]

let name = function
  | Copycat_storm -> "copycat"
  | Kingsguard_churn -> "kingsguard"
  | Pigeonhole_spy -> "pigeonhole"
  | Balloon_storm -> Inject.Fault.name Inject.Fault.Balloon_storm

let of_name s = List.find_opt (fun k -> name k = s) all

let description = function
  | Copycat_storm ->
    "single-step interrupt storm plus periodic unmap of a page the \
     request is about to touch (CopyCat against the fleet)"
  | Kingsguard_churn ->
    "A/D-bit clear-and-readback churn with periodic forced evictions \
     (KingsGuard against the fleet)"
  | Pigeonhole_spy ->
    "passive demand-fetch pattern spy with periodic balloon pressure \
     (Pigeonhole against the fleet)"
  | Balloon_storm ->
    "sustained cooperative-ballooning pressure storm (the inject \
     suite's balloon-storm campaign aimed at a live tenant)"

type t = {
  wv_kind : kind;
  wv_victim : string;
  wv_from : int;
  wv_until : int;
  mutable wv_seen : int;  (* victim requests executed so far *)
  mutable wv_clock : int;  (* victim arrivals at the last execution *)
  mutable wv_steps : int;  (* attacked victim requests so far *)
  mutable wv_active : bool;  (* the in-flight victim request is attacked *)
  mutable wv_probes : int;
  mutable wv_bits : float;
  mutable wv_truth : int list;  (* ground truth of the in-flight request *)
  mutable wv_singles : int list;  (* singleton fetches seen while in flight *)
  mutable wv_in_flight : bool;
}

let create ~kind ~victim ~from_ ~until =
  if from_ < 0 || until < from_ then
    invalid_arg "Defense.Waves.create: bad attack window";
  {
    wv_kind = kind;
    wv_victim = victim;
    wv_from = from_;
    wv_until = until;
    wv_seen = 0;
    wv_clock = 0;
    wv_steps = 0;
    wv_active = false;
    wv_probes = 0;
    wv_bits = 0.0;
    wv_truth = [];
    wv_singles = [];
    wv_in_flight = false;
  }

let kind t = t.wv_kind
let victim t = t.wv_victim
let window t = (t.wv_from, t.wv_until)
let seen t = t.wv_seen
let probes t = t.wv_probes
let bits t = t.wv_bits

type phase = Before | During | After

let phase_name = function
  | Before -> "before"
  | During -> "during"
  | After -> "after"

(* The wave's clock is the victim's *arrival* counter, not its executed-
   request count: when the attack slows the victim down and arrivals
   shed, an executed-request clock would freeze inside the window and
   the wave would never end.  Arrivals advance on the generator's
   schedule regardless of victim health, so every run reaches After. *)
let phase_at t ~clock =
  if clock < t.wv_from then Before
  else if clock < t.wv_until then During
  else After

let phase t = phase_at t ~clock:t.wv_clock

let log2 x = log x /. log 2.0

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let victim_index t (ctx : Engine.hook_ctx) =
  let r = ref None in
  Array.iteri
    (fun i tn -> if Tenant.name tn = t.wv_victim then r := Some i)
    ctx.Engine.cx_tenants;
  !r

(* Install the passive fetch spy: every singleton demand fetch observed
   while an attacked victim request is in flight is a candidate page.
   Chained through, like every other consumer of the guest hooks. *)
let on_start t (ctx : Engine.hook_ctx) =
  match victim_index t ctx with
  | None -> ()
  | Some i ->
    if t.wv_kind = Pigeonhole_spy then begin
      let tn = ctx.Engine.cx_tenants.(i) in
      let hooks = Sim_os.Kernel.hooks (Vmm.guest_os (Tenant.vm tn)) in
      let saved = hooks.Sim_os.Kernel.on_fetch in
      hooks.Sim_os.Kernel.on_fetch <-
        (fun p pages ->
          (match pages with
          | [ pg ] when t.wv_active && t.wv_in_flight ->
            t.wv_singles <- pg :: t.wv_singles
          | _ -> ());
          saved p pages)
    end

let resident_target tn ~key =
  let os = Vmm.guest_os (Tenant.vm tn) in
  let proc = Tenant.proc tn in
  match
    List.find_opt
      (fun p -> Sim_os.Kernel.resident os proc p)
      (Tenant.probe_pages tn ~key)
  with
  | Some p -> Some p
  | None -> (
    match Tenant.resident_heap_pages tn with p :: _ -> Some p | [] -> None)

let act t tn ~key =
  let os = Vmm.guest_os (Tenant.vm tn) in
  let proc = Tenant.proc tn in
  let step = t.wv_steps in
  match t.wv_kind with
  | Copycat_storm ->
    (* Interrupt storm on the victim's CPU; every third attacked
       request additionally unmaps a page the request is about to
       touch — the classic probe, which Autarky detects on contact. *)
    Sgx.Cpu.set_preempt_interval (System.cpu (Tenant.sys tn)) (Some 1);
    if step mod 3 = 0 then
      Option.iter
        (fun p ->
          t.wv_probes <- t.wv_probes + 1;
          Sim_os.Kernel.attacker_unmap os proc p)
        (resident_target tn ~key)
  | Kingsguard_churn ->
    let targets =
      take 8
        (match Tenant.probe_pages tn ~key with
        | [] -> Tenant.resident_heap_pages tn
        | ps -> ps)
    in
    List.iter
      (fun p ->
        if Sim_os.Kernel.resident os proc p then begin
          Sim_os.Kernel.attacker_clear_accessed os proc p;
          ignore (Sim_os.Kernel.attacker_read_ad os proc p);
          t.wv_probes <- t.wv_probes + 2
        end)
      targets;
    if step mod 4 = 0 then
      Option.iter
        (fun p ->
          t.wv_probes <- t.wv_probes + 1;
          Sim_os.Kernel.attacker_evict os proc p)
        (resident_target tn ~key)
  | Pigeonhole_spy ->
    t.wv_truth <- Tenant.probe_pages tn ~key;
    t.wv_singles <- [];
    if step mod 2 = 0 then begin
      t.wv_probes <- t.wv_probes + 1;
      ignore (Sim_os.Kernel.request_balloon os proc ~pages:8)
    end
  | Balloon_storm ->
    t.wv_probes <- t.wv_probes + 1;
    ignore (Sim_os.Kernel.request_balloon os proc ~pages:16)

let before_request t (ctx : Engine.hook_ctx) ~tenant ~key =
  let tn = ctx.Engine.cx_tenants.(tenant) in
  if Tenant.name tn = t.wv_victim then begin
    t.wv_clock <- Tenant.arrivals tn;
    t.wv_active <- t.wv_clock >= t.wv_from && t.wv_clock < t.wv_until;
    t.wv_in_flight <- true;
    t.wv_truth <- [];
    t.wv_singles <- [];
    if t.wv_active then begin
      act t tn ~key;
      t.wv_steps <- t.wv_steps + 1
    end
  end

let after_request t (ctx : Engine.hook_ctx) ~tenant ~verdict:_ =
  let tn = ctx.Engine.cx_tenants.(tenant) in
  if Tenant.name tn = t.wv_victim then begin
    (match t.wv_kind with
    | Copycat_storm when t.wv_active ->
      Sgx.Cpu.set_preempt_interval (System.cpu (Tenant.sys tn)) None
    | _ -> ());
    (if t.wv_kind = Pigeonhole_spy && t.wv_active && t.wv_truth <> [] then
       let cands = List.sort_uniq compare t.wv_singles in
       let k = List.length cands in
       let hit = List.exists (fun p -> List.mem p cands) t.wv_truth in
       if hit && k > 0 then begin
         let alphabet =
           max 2 (Tenant.config tn).Tenant.heap_pages
         in
         t.wv_bits <-
           t.wv_bits +. (log2 (float_of_int alphabet) -. log2 (float_of_int k))
       end);
    t.wv_in_flight <- false;
    t.wv_truth <- [];
    t.wv_singles <- [];
    t.wv_seen <- t.wv_seen + 1
  end
