(** The SLO-under-attack harness.

    Runs the adversary-wave x policy-ladder matrix against a fixed
    two-tenant fleet (spellcheck victim booting on the ladder's bottom
    rung, kvstore bystander) with the escalation controller live, and
    reports the victim's service quality — p99, shed rate, terminations,
    bits leaked — split into the wave's before / during / after phases,
    plus the controller's escalation timeline.

    Cells are sharded over the domain pool with canonical-matrix shard
    seeds ({!Parallel.Pool.shard_seed} over the unfiltered wave x ladder
    matrix), so results — including the JSON — are byte-identical at any
    [~jobs] and filtered sweeps reproduce the unfiltered cells. *)

val ladder_names : string list
(** ["standard"; "heisenberg"] — the comparable ladders. *)

val find_ladder : string -> Serve.Tenant.policy_kind list option
val victim_name : string

type phase_row = {
  pr_phase : string;  (** "before" / "during" / "after" *)
  pr_arrivals : int;
  pr_served : int;
  pr_shed : int;
  pr_missed : int;
  pr_terminations : int;
  pr_restarts : int;
  pr_samples : int;  (** served-latency samples in this phase *)
  pr_mean : float;  (** mean served latency, cycles (0 when empty) *)
  pr_p99 : float;  (** p99 served latency, cycles (0 when empty) *)
  pr_bits_observed : float;  (** channel bits the wave scored *)
  pr_bits_terminations : float;  (** one bit per termination (§5.3) *)
}

type cell = {
  dl_adversary : string;
  dl_ladder : string;
  dl_victim : string;
  dl_requests : int;  (** victim arrivals generated *)
  dl_window : int * int;  (** attacked victim-request indices *)
  dl_phases : phase_row list;  (** before / during / after, in order *)
  dl_timeline : Controller.event list;
  dl_ticks : int;
  dl_escalations : int;
  dl_de_escalations : int;
  dl_failed_switches : int;
  dl_policy_switches : int;  (** committed switches on the victim *)
  dl_final_policy : string;  (** victim policy at end of run *)
  dl_victim_refused : bool;
  dl_bits_observed : float;
  dl_bits_terminations : float;
  dl_probes : int;
  dl_digest : string option;  (** deterministic trace digest *)
}

val run_cell :
  quick:bool -> wave_kind:Waves.kind -> ladder_name:string ->
  dc_ladder:Serve.Tenant.policy_kind list -> seed:int -> cell

val run :
  ?quick:bool -> ?adversaries:Waves.kind list -> ?ladder_filter:string list ->
  seed:int -> jobs:int -> unit -> cell list

val to_json : ?wall:int * float -> quick:bool -> seed:int -> cell list -> string
(** Schema ["autarky-defense/1"].  [wall] is [(jobs, matrix_seconds)] —
    informational metadata, never part of any gated comparison. *)

val print_table : cell list -> unit
