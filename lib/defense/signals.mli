(** Per-tenant attack-signal taps for the defense controller.

    A tap chains itself onto the tenant VM's guest-kernel hooks — the
    attacker's own observation points — and counts interrupt preempts
    and demand-fetch traffic (batches, singleton fetches, pages), while
    {!delta} folds in the tenant's fault, balloon-upcall and restart
    counters plus the restart monitor's fresh termination reasons,
    classified by attack signature. *)

type tap

type window = {
  w_faults : int;  (** runtime faults handled this window *)
  w_preempts : int;  (** interrupt preemptions (storm signal) *)
  w_fetch_batches : int;
  w_fetch_singletons : int;
      (** single-page demand fetches — the precise-probe signature *)
  w_balloons : int;  (** balloon upcalls (memory-pressure storms) *)
  w_terminations : int;
  w_restarts : int;
  w_ad_terms : int;  (** terminations blaming A/D-bit churn *)
  w_rate_terms : int;  (** rate-limit (fault-storm) terminations *)
  w_chan_terms : int;  (** other controlled-channel detections *)
}

val install : Serve.Tenant.t -> tap
(** Chain counting hooks onto the tenant's guest kernel (the previous
    hooks are always called through).  Bookmarks start at the tenant's
    current counters, so the first {!delta} window covers only what
    happened after installation. *)

val delta : Autarky.Restart_monitor.t -> tap -> window
(** The window since the previous [delta] (or since {!install});
    advances the bookmarks. *)

val preempts : tap -> int
val fetch_batches : tap -> int
val fetch_singletons : tap -> int
