(** The per-tenant defense escalation controller.

    Consumes the attack-signal windows of {!Signals} on every engine
    [Defense_tick] and walks each tenant up a policy ladder under
    pressure (rate-limit → clusters → [→ preload] → ORAM) and back down
    after [dc_hysteresis] consecutive calm ticks.  Escalations that the
    target policy refuses (Heisenberg's capacity condition) are retried
    with bounded exponential backoff, then the rung is skipped.  Every
    verdict — [Escalated], [De_escalated], [Held] — is emitted as a
    typed {!Trace.Event.Defense} event, making the decision stream part
    of the deterministic trace digest. *)

type config = {
  dc_ladder : Serve.Tenant.policy_kind list;  (** bottom rung first *)
  dc_period : float;
      (** defense-tick period, in multiples of the largest calibrated
          mean service time (feed to {!Serve.Engine.hooks.h_period}) *)
  dc_hysteresis : int;  (** calm ticks required before de-escalating *)
  dc_max_retries : int;  (** refused-escalation retries before skipping *)
  dc_backoff_base : int;  (** ticks; doubles per retry, capped at 8 *)
  dc_hot_faults : int;
  dc_hot_preempts : int;
  dc_hot_balloons : int;
  dc_hot_terminations : int;
  dc_calm_faults : int;
  dc_calm_preempts : int;
}

val standard_ladder : Serve.Tenant.policy_kind list
(** rate-limit → clusters → oram *)

val heisenberg_ladder : Serve.Tenant.policy_kind list
(** rate-limit → clusters → preload → oram *)

val default_config : config

type verdict_kind = Escalated | De_escalated | Held

val verdict_name : verdict_kind -> string

type event = {
  ev_at : int;  (** virtual cycle of the tick *)
  ev_tenant : string;
  ev_verdict : verdict_kind;
  ev_from : Serve.Tenant.policy_kind;
  ev_to : Serve.Tenant.policy_kind;
  ev_rung : int;  (** rung in force {e after} the verdict *)
  ev_note : string;  (** why: ["hot:ad-churn"], ["hysteresis"], ... *)
}

type t

val create : config -> t
(** @raise Invalid_argument on an empty ladder. *)

val on_start : t -> Serve.Engine.hook_ctx -> unit
(** Install the signal taps; each tenant starts at the ladder rung of
    its active policy (rung 0 if the policy is off-ladder). *)

val on_tick : t -> Serve.Engine.hook_ctx -> at:int -> unit

val events : t -> event list
(** Escalations, de-escalations and notable holds (backoff, cooling,
    failures), oldest first.  Steady holds are traced but not kept. *)

val ticks : t -> int
val escalations : t -> int
val de_escalations : t -> int
val failed_switches : t -> int

val rung : t -> tenant:string -> int option
