(* Per-tenant attack-signal taps.

   The defense controller needs to see what the *attacker* can do — so
   it listens at exactly the same vantage points the attack drivers use:
   the guest kernel's preempt and fetch hooks (interrupt storms,
   demand-fetch patterns), the balloon upcall counter (memory-pressure
   storms) and the restart monitor's termination ledger (what the
   runtime already killed, and why).  Each tenant has its own VM and
   therefore its own guest kernel, so a tap chained onto that kernel's
   hooks observes one tenant only; the saved previous hook is always
   called through, so taps compose with scripted adversaries installed
   on the same kernel.

   All counters are cumulative; [delta] turns them into a per-tick
   window and reclassifies the window's fresh termination reasons into
   A/D-churn, rate-limit and generic controlled-channel detections by
   matching the runtime's reason strings. *)

module Tenant = Serve.Tenant
module Vmm = Hypervisor.Vmm

type tap = {
  tp_tenant : Tenant.t;
  mutable tp_preempts : int;
  mutable tp_fetch_batches : int;
  mutable tp_fetch_singletons : int;
  mutable tp_fetch_pages : int;
  (* bookmarks: value at the previous [delta] call *)
  mutable bk_faults : int;
  mutable bk_preempts : int;
  mutable bk_fetch_batches : int;
  mutable bk_fetch_singletons : int;
  mutable bk_balloons : int;
  mutable bk_terminations : int;
  mutable bk_restarts : int;
}

type window = {
  w_faults : int;
  w_preempts : int;
  w_fetch_batches : int;
  w_fetch_singletons : int;
  w_balloons : int;
  w_terminations : int;
  w_restarts : int;
  w_ad_terms : int;
  w_rate_terms : int;
  w_chan_terms : int;
}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let install tn =
  let os = Vmm.guest_os (Tenant.vm tn) in
  let hooks = Sim_os.Kernel.hooks os in
  let tap =
    {
      tp_tenant = tn;
      tp_preempts = 0;
      tp_fetch_batches = 0;
      tp_fetch_singletons = 0;
      tp_fetch_pages = 0;
      bk_faults = Tenant.faults tn;
      bk_preempts = 0;
      bk_fetch_batches = 0;
      bk_fetch_singletons = 0;
      bk_balloons = Tenant.balloon_upcalls tn;
      bk_terminations = 0;
      bk_restarts = Tenant.restarts tn;
    }
  in
  let saved_preempt = hooks.Sim_os.Kernel.on_preempt in
  hooks.Sim_os.Kernel.on_preempt <-
    (fun p ->
      tap.tp_preempts <- tap.tp_preempts + 1;
      saved_preempt p);
  let saved_fetch = hooks.Sim_os.Kernel.on_fetch in
  hooks.Sim_os.Kernel.on_fetch <-
    (fun p pages ->
      tap.tp_fetch_batches <- tap.tp_fetch_batches + 1;
      tap.tp_fetch_pages <- tap.tp_fetch_pages + List.length pages;
      (match pages with
      | [ _ ] -> tap.tp_fetch_singletons <- tap.tp_fetch_singletons + 1
      | _ -> ());
      saved_fetch p pages);
  tap

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let delta monitor tap =
  let tn = tap.tp_tenant in
  let identity = Tenant.name tn in
  let faults = Tenant.faults tn in
  let balloons = Tenant.balloon_upcalls tn in
  let restarts = Tenant.restarts tn in
  let terminations =
    Autarky.Restart_monitor.total_terminations monitor ~identity
  in
  let fresh_terms = max 0 (terminations - tap.bk_terminations) in
  (* [last_reasons] is newest-first and capped; the window's reasons are
     its first [fresh_terms] entries (storms past the ledger cap still
     count through [terminations], just unclassified). *)
  let reasons =
    take fresh_terms (Autarky.Restart_monitor.last_reasons monitor ~identity)
  in
  let ad = ref 0 and rate = ref 0 and chan = ref 0 in
  List.iter
    (fun r ->
      if contains r "ad-clear" then incr ad
      else if contains r "rate limit" then incr rate
      else if contains r "controlled-channel" then incr chan)
    reasons;
  let w =
    {
      w_faults = max 0 (faults - tap.bk_faults);
      w_preempts = tap.tp_preempts - tap.bk_preempts;
      w_fetch_batches = tap.tp_fetch_batches - tap.bk_fetch_batches;
      w_fetch_singletons = tap.tp_fetch_singletons - tap.bk_fetch_singletons;
      w_balloons = balloons - tap.bk_balloons;
      w_terminations = fresh_terms;
      w_restarts = restarts - tap.bk_restarts;
      w_ad_terms = !ad;
      w_rate_terms = !rate;
      w_chan_terms = !chan;
    }
  in
  tap.bk_faults <- faults;
  tap.bk_preempts <- tap.tp_preempts;
  tap.bk_fetch_batches <- tap.tp_fetch_batches;
  tap.bk_fetch_singletons <- tap.tp_fetch_singletons;
  tap.bk_balloons <- balloons;
  tap.bk_terminations <- terminations;
  tap.bk_restarts <- restarts;
  w

let preempts tap = tap.tp_preempts
let fetch_batches tap = tap.tp_fetch_batches
let fetch_singletons tap = tap.tp_fetch_singletons
