(* The SLO-under-attack harness.

   One cell = one adversary wave x one policy ladder, run against a
   fixed two-tenant fleet (a spellcheck victim that boots on the
   ladder's bottom rung, and a kvstore bystander on clusters).  The
   wave is armed for the middle of the victim's request stream, the
   controller watches every tenant, and the harness splits the victim's
   service metrics into the wave's before / during / after phases —
   p99, shed rate, terminations, restarts and bits leaked per phase,
   plus the controller's escalation timeline.

   Everything is virtual-time deterministic: cells are sharded over the
   domain pool with canonical-matrix shard seeds, so a filtered sweep
   reproduces exactly the cells of an unfiltered one and the JSON is
   byte-identical at any worker count. *)

module Tenant = Serve.Tenant
module Engine = Serve.Engine

let ladders =
  [
    ("standard", Controller.standard_ladder);
    ("heisenberg", Controller.heisenberg_ladder);
  ]

let ladder_names = List.map fst ladders
let find_ladder name = List.assoc_opt name ladders
let victim_name = "spell"

let scenario ~quick =
  let vr = if quick then 120 else 280 in
  let br = if quick then 80 else 200 in
  [
    {
      Tenant.name = victim_name;
      workload = Tenant.Spellcheck;
      policy = Tenant.Rate_limit;
      partition_frames = 320;
      epc_limit = 256;
      enclave_pages = 1_024;
      heap_pages = 144;
      generator = Tenant.Open_loop { load = 0.5 };
      queue_capacity = 32;
      deadline = None;
      requests = vr;
      arrive_after = 0;
      depart_after = None;
    };
    {
      Tenant.name = "kv";
      workload = Tenant.Kvstore;
      policy = Tenant.Clusters;
      partition_frames = 256;
      epc_limit = 160;
      enclave_pages = 1_024;
      heap_pages = 128;
      generator = Tenant.Open_loop { load = 0.5 };
      queue_capacity = 32;
      deadline = None;
      requests = br;
      arrive_after = 0;
      depart_after = None;
    };
  ]

type phase_row = {
  pr_phase : string;
  pr_arrivals : int;
  pr_served : int;
  pr_shed : int;
  pr_missed : int;
  pr_terminations : int;
  pr_restarts : int;
  pr_samples : int;
  pr_mean : float;
  pr_p99 : float;
  pr_bits_observed : float;
  pr_bits_terminations : float;
}

type cell = {
  dl_adversary : string;
  dl_ladder : string;
  dl_victim : string;
  dl_requests : int;
  dl_window : int * int;
  dl_phases : phase_row list;
  dl_timeline : Controller.event list;
  dl_ticks : int;
  dl_escalations : int;
  dl_de_escalations : int;
  dl_failed_switches : int;
  dl_policy_switches : int;
  dl_final_policy : string;
  dl_victim_refused : bool;
  dl_bits_observed : float;
  dl_bits_terminations : float;
  dl_probes : int;
  dl_digest : string option;
}

(* Victim counters at a phase boundary. *)
type snap = {
  sn_arrivals : int;
  sn_served : int;
  sn_shed : int;
  sn_missed : int;
  sn_terminations : int;
  sn_restarts : int;
  sn_bits : float;
}

let snap_of tn wave =
  {
    sn_arrivals = Tenant.arrivals tn;
    sn_served = Tenant.served tn;
    sn_shed = Tenant.shed tn;
    sn_missed = Tenant.missed tn;
    sn_terminations = Tenant.terminations tn;
    sn_restarts = Tenant.restarts tn;
    sn_bits = Waves.bits wave;
  }

let row_of ~phase ~start ~stop ~stats =
  let n = Metrics.Stats.count stats in
  {
    pr_phase = Waves.phase_name phase;
    pr_arrivals = stop.sn_arrivals - start.sn_arrivals;
    pr_served = stop.sn_served - start.sn_served;
    pr_shed = stop.sn_shed - start.sn_shed;
    pr_missed = stop.sn_missed - start.sn_missed;
    pr_terminations = stop.sn_terminations - start.sn_terminations;
    pr_restarts = stop.sn_restarts - start.sn_restarts;
    pr_samples = n;
    pr_mean = (if n = 0 then 0.0 else Metrics.Stats.mean stats);
    pr_p99 = (if n = 0 then 0.0 else Metrics.Stats.percentile stats 99.0);
    pr_bits_observed = stop.sn_bits -. start.sn_bits;
    (* §5.3: each termination the attack provokes is worth at most one
       bit, exactly the restart monitor's leakage bound. *)
    pr_bits_terminations =
      float_of_int (stop.sn_terminations - start.sn_terminations);
  }

let phases_in_order = [ Waves.Before; Waves.During; Waves.After ]

let run_cell ~quick ~wave_kind ~ladder_name ~dc_ladder ~seed =
  let cfgs = scenario ~quick in
  let requests = (List.hd cfgs).Tenant.requests in
  let from_ = requests / 4 and until = requests * 5 / 8 in
  (* A tick every ~3 requests (6 x svc_mean at load 0.5): the fast
     kill-chain adversaries (KingsGuard terminates the victim on nearly
     every attacked request) must be out-escalated before the restart
     monitor's cutoff, so the controller gets both quicker looks and a
     deeper restart budget than the plain serving scenario. *)
  let ctl_cfg =
    {
      Controller.default_config with
      Controller.dc_ladder;
      dc_period = 6.0;
      (* With ticks this fast, three calm ticks span ~9 requests — well
         inside a shed-induced lull mid-wave.  Six ticks (~18 requests)
         keeps the policy up through the wave and still de-escalates
         promptly once it is over. *)
      dc_hysteresis = 6;
    }
  in
  let ctl = Controller.create ctl_cfg in
  let wave = Waves.create ~kind:wave_kind ~victim:victim_name ~from_ ~until in
  (* Phase collector: transitions are detected before a victim request
     runs, so each latency sample lands in the phase its request
     belongs to; the remaining phases are closed after the run. *)
  let vic = ref None in
  let cur = ref Waves.Before in
  let cur_start = ref None in
  let stats =
    List.map (fun p -> (p, Metrics.Stats.create ())) phases_in_order
  in
  let rows = ref [] in
  let close_phase stop =
    match !cur_start with
    | None -> ()
    | Some start ->
      rows :=
        row_of ~phase:!cur ~start ~stop ~stats:(List.assq !cur stats) :: !rows;
      cur_start := Some stop
  in
  let advance_to ph tn =
    if ph <> !cur then begin
      close_phase (snap_of tn wave);
      cur := ph
    end
  in
  let hooks =
    {
      Engine.h_period = ctl_cfg.Controller.dc_period;
      h_on_start =
        (fun ctx ->
          Controller.on_start ctl ctx;
          Waves.on_start wave ctx;
          Array.iter
            (fun tn -> if Tenant.name tn = victim_name then vic := Some tn)
            ctx.Engine.cx_tenants;
          Option.iter (fun tn -> cur_start := Some (snap_of tn wave)) !vic);
      h_on_tick =
        (fun ctx ~at ->
          (* Ticks fire on the event queue regardless of victim health,
             so the During -> After boundary is detected even when every
             post-window arrival sheds without executing. *)
          Option.iter
            (fun tn ->
              advance_to (Waves.phase_at wave ~clock:(Tenant.arrivals tn)) tn)
            !vic;
          Controller.on_tick ctl ctx ~at);
      h_before_request =
        (fun ctx ~at:_ ~tenant ~key ->
          let tn = ctx.Engine.cx_tenants.(tenant) in
          if Tenant.name tn = victim_name then
            advance_to (Waves.phase_at wave ~clock:(Tenant.arrivals tn)) tn;
          Waves.before_request wave ctx ~tenant ~key);
      h_after_request =
        (fun ctx ~at ~tenant ~verdict ->
          Waves.after_request wave ctx ~tenant ~verdict;
          let tn = ctx.Engine.cx_tenants.(tenant) in
          if Tenant.name tn = victim_name then
            match verdict with
            | Engine.Served fin ->
              Metrics.Stats.add (List.assq !cur stats)
                (float_of_int (fin - at))
            | Engine.Shed | Engine.Deadline_missed -> ());
    }
  in
  let params =
    {
      (Engine.default_params ~seed) with
      Engine.p_max_restarts = 16;
      p_hooks = Some hooks;
    }
  in
  let res = Engine.run ~params cfgs in
  let vic_tn =
    match !vic with
    | Some tn -> tn
    | None -> invalid_arg "Defense.Defend: victim tenant not found"
  in
  (* Close the current phase, then any phases the run never reached. *)
  close_phase (snap_of vic_tn wave);
  List.iter
    (fun ph ->
      if
        List.exists (fun p -> p = ph) phases_in_order
        && not (List.exists (fun r -> r.pr_phase = Waves.phase_name ph) !rows)
      then begin
        cur := ph;
        close_phase (snap_of vic_tn wave)
      end)
    phases_in_order;
  let order r =
    match r.pr_phase with "before" -> 0 | "during" -> 1 | _ -> 2
  in
  let phases = List.sort (fun a b -> compare (order a) (order b)) !rows in
  {
    dl_adversary = Waves.name wave_kind;
    dl_ladder = ladder_name;
    dl_victim = victim_name;
    dl_requests = requests;
    dl_window = (from_, until);
    dl_phases = phases;
    dl_timeline = Controller.events ctl;
    dl_ticks = Controller.ticks ctl;
    dl_escalations = Controller.escalations ctl;
    dl_de_escalations = Controller.de_escalations ctl;
    dl_failed_switches = Controller.failed_switches ctl;
    dl_policy_switches = Tenant.policy_switches vic_tn;
    dl_final_policy = Tenant.policy_name (Tenant.active_policy vic_tn);
    dl_victim_refused = Tenant.state vic_tn = Tenant.Refused;
    dl_bits_observed = Waves.bits wave;
    dl_bits_terminations = float_of_int (Tenant.terminations vic_tn);
    dl_probes = Waves.probes wave;
    dl_digest = res.Engine.r_digest;
  }

let run ?(quick = false) ?(adversaries = Waves.all) ?(ladder_filter = ladder_names)
    ~seed ~jobs () =
  (* Shard seeds index into the canonical *full* matrix, so a filtered
     sweep reproduces exactly the cells of an unfiltered one. *)
  let tasks =
    List.concat_map (fun w -> List.map (fun l -> (w, l)) ladders) Waves.all
    |> List.mapi (fun idx (w, (ln, ld)) -> (idx, w, ln, ld))
    |> List.filter (fun (_, w, ln, _) ->
           List.mem w adversaries && List.mem ln ladder_filter)
  in
  Parallel.Pool.map ~jobs
    (fun (idx, wave_kind, ladder_name, dc_ladder) ->
      run_cell ~quick ~wave_kind ~ladder_name ~dc_ladder
        ~seed:(Parallel.Pool.shard_seed ~root:seed ~shard:idx))
    tasks

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?wall ~quick ~seed cells =
  let b = Buffer.create 16_384 in
  let f = Printf.sprintf "%.6f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-defense/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" seed);
  (match wall with
  | Some (jobs, secs) ->
    Buffer.add_string b
      (Printf.sprintf "  \"wall\": {\"jobs\": %d, \"matrix_s\": %.2f},\n" jobs
         secs)
  | None -> ());
  Buffer.add_string b "  \"cells\": [\n";
  let last = List.length cells - 1 in
  List.iteri
    (fun i c ->
      let from_, until = c.dl_window in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"adversary\": \"%s\", \"ladder\": \"%s\", \"victim\": \
            \"%s\", \"requests\": %d, \"wave_from\": %d, \"wave_until\": %d, \
            \"ticks\": %d, \"escalations\": %d, \"de_escalations\": %d, \
            \"failed_switches\": %d, \"policy_switches\": %d, \
            \"final_policy\": \"%s\", \"victim_refused\": %b, \
            \"bits_observed\": %s, \"bits_terminations\": %s, \"probes\": \
            %d, \"digest\": \"%s\",\n"
           (json_escape c.dl_adversary)
           (json_escape c.dl_ladder)
           (json_escape c.dl_victim)
           c.dl_requests from_ until c.dl_ticks c.dl_escalations
           c.dl_de_escalations c.dl_failed_switches c.dl_policy_switches
           (json_escape c.dl_final_policy)
           c.dl_victim_refused
           (f c.dl_bits_observed)
           (f c.dl_bits_terminations)
           c.dl_probes
           (json_escape (Option.value c.dl_digest ~default:"")));
      Buffer.add_string b "     \"phases\": [";
      let plast = List.length c.dl_phases - 1 in
      List.iteri
        (fun j p ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"phase\": \"%s\", \"arrivals\": %d, \"served\": %d, \
                \"shed\": %d, \"missed\": %d, \"terminations\": %d, \
                \"restarts\": %d, \"samples\": %d, \"mean_cycles\": %s, \
                \"p99_cycles\": %s, \"bits_observed\": %s, \
                \"bits_terminations\": %s}%s"
               p.pr_phase p.pr_arrivals p.pr_served p.pr_shed p.pr_missed
               p.pr_terminations p.pr_restarts p.pr_samples (f p.pr_mean)
               (f p.pr_p99) (f p.pr_bits_observed)
               (f p.pr_bits_terminations)
               (if j = plast then "" else ", ")))
        c.dl_phases;
      Buffer.add_string b "],\n";
      Buffer.add_string b "     \"timeline\": [";
      let tlast = List.length c.dl_timeline - 1 in
      List.iteri
        (fun j (e : Controller.event) ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"at\": %d, \"tenant\": \"%s\", \"verdict\": \"%s\", \
                \"from\": \"%s\", \"to\": \"%s\", \"rung\": %d, \"note\": \
                \"%s\"}%s"
               e.Controller.ev_at
               (json_escape e.Controller.ev_tenant)
               (Controller.verdict_name e.Controller.ev_verdict)
               (Tenant.policy_name e.Controller.ev_from)
               (Tenant.policy_name e.Controller.ev_to)
               e.Controller.ev_rung
               (json_escape e.Controller.ev_note)
               (if j = tlast then "" else ", ")))
        c.dl_timeline;
      Buffer.add_string b "]}";
      Buffer.add_string b (if i = last then "\n" else ",\n"))
    cells;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_table cells =
  Printf.printf "  %-13s %-10s %4s %5s %5s %-10s %11s %11s %6s\n" "adversary"
    "ladder" "esc" "deesc" "fail" "final" "p99(during)" "p99(after)" "bits";
  List.iter
    (fun c ->
      let p99 ph =
        match
          List.find_opt (fun p -> p.pr_phase = ph) c.dl_phases
        with
        | Some p -> p.pr_p99
        | None -> 0.0
      in
      Printf.printf "  %-13s %-10s %4d %5d %5d %-10s %11.0f %11.0f %6.2f\n"
        c.dl_adversary c.dl_ladder c.dl_escalations c.dl_de_escalations
        c.dl_failed_switches c.dl_final_policy (p99 "during") (p99 "after")
        (c.dl_bits_observed +. c.dl_bits_terminations))
    cells
