(** Deterministic pseudo-random number generation for reproducible
    simulations.

    All experiment randomness flows through an explicit [t] seeded by the
    caller, so every run of the harness is bit-for-bit reproducible.  The
    core generator is splitmix64, which is fast, has a full 2^64 period per
    stream, and splits cleanly into independent streams. *)

type t
(** A splitmix64 generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Distinct seeds yield
    statistically independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it,
    suitable for decorrelated sub-streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val fnv_hash64 : int64 -> int64
(** FNV-1a style 64-bit mixing hash used by the scrambled-Zipfian
    generator (exposed for tests). *)

val fnv_hash_masked : int -> int
(** [fnv_hash_masked v] is [fnv_hash64 (Int64.of_int v)] masked to 62
    bits and converted to int, computed without boxing.  The samplers'
    hot path; [v] must be non-negative. *)
