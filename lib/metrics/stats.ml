type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { samples = []; n = 0; sum = 0.0; sum_sq = 0.0;
    min_v = infinity; max_v = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let var = (t.sum_sq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var < 0.0 then 0.0 else sqrt var

let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad p";
  let sorted = List.sort compare t.samples in
  let arr = Array.of_list sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
  let idx = max 0 (min (t.n - 1) (rank - 1)) in
  arr.(idx)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_max : float;
}

let summary t =
  if t.n = 0 then
    { s_count = 0; s_mean = 0.0; s_p50 = 0.0; s_p95 = 0.0; s_p99 = 0.0;
      s_max = 0.0 }
  else begin
    (* One sort serves all three percentiles (nearest-rank, like
       {!percentile}). *)
    let arr = Array.of_list t.samples in
    Array.sort compare arr;
    let pct p =
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      arr.(max 0 (min (t.n - 1) (rank - 1)))
    in
    { s_count = t.n; s_mean = mean t; s_p50 = pct 50.0; s_p95 = pct 95.0;
      s_p99 = pct 99.0; s_max = t.max_v }
  end

(* Exact accumulator merge: [t] keeps every sample, so merging is
   concatenation plus moment sums — summary-of-merge equals
   summary-of-concatenated-samples (the QCheck property in
   test/test_parallel.ml). *)
let merge_into ~into src =
  into.samples <- List.rev_append src.samples into.samples;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  into.sum_sq <- into.sum_sq +. src.sum_sq;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let merged ts =
  let out = create () in
  List.iter (fun t -> merge_into ~into:out t) ts;
  out

(* Summary-level merge for shards whose raw samples are gone (e.g. the
   serve fleet, which only keeps per-member SLO summaries).  Exact for
   count/mean/max; percentiles cannot be reconstructed from summaries,
   so we take the component-wise worst (max) across members — "no
   member's p99 exceeded X", the conservative SLO read.  Empty input
   and zero-count members yield/contribute zeros. *)
let merge_summaries ss =
  let total = List.fold_left (fun n s -> n + s.s_count) 0 ss in
  if total = 0 then
    { s_count = 0; s_mean = 0.0; s_p50 = 0.0; s_p95 = 0.0; s_p99 = 0.0;
      s_max = 0.0 }
  else
    let wmean =
      List.fold_left (fun a s -> a +. (s.s_mean *. float_of_int s.s_count)) 0.0 ss
      /. float_of_int total
    in
    let worst f = List.fold_left (fun a s -> Float.max a (f s)) 0.0 ss in
    { s_count = total; s_mean = wmean; s_p50 = worst (fun s -> s.s_p50);
      s_p95 = worst (fun s -> s.s_p95); s_p99 = worst (fun s -> s.s_p99);
      s_max = worst (fun s -> s.s_max) }

let geomean values =
  match values with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
    let log_sum =
      List.fold_left
        (fun acc v ->
          if v <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log v)
        0.0 values
    in
    exp (log_sum /. float_of_int (List.length values))

module Histogram = struct
  type h = { bucket_width : float; table : (int, int) Hashtbl.t }

  let create ~bucket_width =
    assert (bucket_width > 0.0);
    { bucket_width; table = Hashtbl.create 64 }

  let add h x =
    let bucket = int_of_float (floor (x /. h.bucket_width)) in
    let cur = Option.value ~default:0 (Hashtbl.find_opt h.table bucket) in
    Hashtbl.replace h.table bucket (cur + 1)

  let buckets h =
    Hashtbl.fold
      (fun b c acc -> (float_of_int b *. h.bucket_width, c) :: acc)
      h.table []
    |> List.sort compare
end
