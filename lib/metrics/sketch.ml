(* Log-bucketed streaming quantile sketch.  See sketch.mli for the
   design rationale (mergeability is why this is not literal p²).

   Bucket map for a rounded non-negative sample [v]:
   - v in 0..63: exact unit bucket [v].
   - v >= 64: octave e = floor(log2 v) in 6..61, split into 32 linear
     sub-buckets of width 2^(e-5); index = 32 + (e-6)*32 + (v >> (e-5)).
   Highest index: 64 + 55*32 + 31 = 1855 (covers v up to max_int). *)

let n_buckets = 1856

(* Exact side-channel sums live in a flat float array so the hot-path
   writes stay unboxed: [0] = sum, [1] = min, [2] = max. *)
type t = {
  buckets : int array;
  mutable n : int;
  fsums : float array;
}

let relative_error = 1.0 /. 32.0

let create () =
  { buckets = Array.make n_buckets 0;
    n = 0;
    fsums = [| 0.0; infinity; neg_infinity |] }

let index v =
  if v < 64 then v
  else begin
    let e = ref 6 in
    while v asr (!e + 1) <> 0 do incr e done;
    32 + ((!e - 6) * 32) + (v asr (!e - 5))
  end

(* Upper bound of bucket [idx] — the largest integer that maps to it.
   Reporting the bound makes quantile estimates one-sided (>= exact). *)
let repr idx =
  if idx < 64 then idx
  else begin
    let k = idx - 64 in
    let e = 6 + (k / 32) and sub = k mod 32 in
    let w = 1 lsl (e - 5) in
    (1 lsl e) + ((sub + 1) * w) - 1
  end

let add_int t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.n <- t.n + 1;
  let f = float_of_int v in
  t.fsums.(0) <- t.fsums.(0) +. f;
  if f < t.fsums.(1) then t.fsums.(1) <- f;
  if f > t.fsums.(2) then t.fsums.(2) <- f

let add t x =
  let v = if x <= 0.0 then 0 else int_of_float (Float.round x) in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.n <- t.n + 1;
  let x = if x < 0.0 then 0.0 else x in
  t.fsums.(0) <- t.fsums.(0) +. x;
  if x < t.fsums.(1) then t.fsums.(1) <- x;
  if x > t.fsums.(2) then t.fsums.(2) <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.fsums.(0) /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.fsums.(1)
let max_value t = if t.n = 0 then 0.0 else t.fsums.(2)

let quantile t p =
  if t.n = 0 then invalid_arg "Sketch.quantile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Sketch.quantile: bad p";
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
  let rank = max 1 rank in
  let cum = ref 0 and idx = ref 0 in
  (try
     for i = 0 to n_buckets - 1 do
       cum := !cum + t.buckets.(i);
       if !cum >= rank then begin idx := i; raise Exit end
     done;
     (* Unreachable: bucket counts sum to t.n >= rank. *)
     idx := n_buckets - 1
   with Exit -> ());
  float_of_int (repr !idx)

let summary t : Stats.summary =
  if t.n = 0 then
    { s_count = 0; s_mean = 0.0; s_p50 = 0.0; s_p95 = 0.0; s_p99 = 0.0;
      s_max = 0.0 }
  else
    { s_count = t.n; s_mean = mean t; s_p50 = quantile t 50.0;
      s_p95 = quantile t 95.0; s_p99 = quantile t 99.0;
      s_max = max_value t }

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.n <- into.n + src.n;
  into.fsums.(0) <- into.fsums.(0) +. src.fsums.(0);
  if src.fsums.(1) < into.fsums.(1) then into.fsums.(1) <- src.fsums.(1);
  if src.fsums.(2) > into.fsums.(2) then into.fsums.(2) <- src.fsums.(2)

let merged ts =
  let out = create () in
  List.iter (fun t -> merge_into ~into:out t) ts;
  out
