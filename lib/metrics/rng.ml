(* The state lives in an 8-byte buffer rather than a [mutable int64]
   field: without flambda every store to an int64 field boxes the new
   state, which puts an allocation on every sample of every workload.
   [Bytes.get_int64_le]/[set_int64_le] compile to unboxed 64-bit
   load/store primitives, and the let-bound mix chain below stays
   unboxed inside a single function, so the samplers that matter
   ([int], [float], [bool]) allocate nothing beyond their result.

   The mix chain is written out in each sampler instead of calling
   [next_int64]: a function boundary would box the state and the
   result.  Any edit must be mirrored in all copies — the stream is
   pinned by golden traces and committed BENCH files. *)
type t = { state : bytes }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 seed;
  { state = b }

let copy t = { state = Bytes.copy t.state }

(* splitmix64 output function: xor-shift multiply avalanche of the
   advanced state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  let s = Int64.add (Bytes.get_int64_le t.state 0) golden_gamma in
  Bytes.set_int64_le t.state 0 s;
  mix s

let split t =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (next_int64 t);
  { state = b }

let int t bound =
  assert (bound > 0);
  let s = Int64.add (Bytes.get_int64_le t.state 0) golden_gamma in
  Bytes.set_int64_le t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* Mask to 62 bits so the conversion to int is non-negative, then
     reduce. The modulo bias is negligible for simulation bounds. *)
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL) mod bound

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits mapped to [0,1). *)
  let s = Int64.add (Bytes.get_int64_le t.state 0) golden_gamma in
  Bytes.set_int64_le t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  float_of_int (Int64.to_int (Int64.shift_right_logical z 11)) /. 9007199254740992.0

let bool t =
  let s = Int64.add (Bytes.get_int64_le t.state 0) golden_gamma in
  Bytes.set_int64_le t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 1L) = 1

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let fnv_offset_basis = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

(* Unrolled: an int64 ref in a loop boxes the accumulator on every
   iteration; shadowed lets stay unboxed. *)
let fnv_hash64 v =
  let h = fnv_offset_basis in
  let h = Int64.mul (Int64.logxor h (Int64.logand v 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 8) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 16) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 24) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 32) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 40) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 48) 0xFFL)) fnv_prime in
  Int64.mul (Int64.logxor h (Int64.shift_right_logical v 56)) fnv_prime

let fnv_hash_masked v =
  let v = Int64.of_int v in
  let h = fnv_offset_basis in
  let h = Int64.mul (Int64.logxor h (Int64.logand v 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 8) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 16) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 24) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 32) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 40) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 48) 0xFFL)) fnv_prime in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical v 56)) fnv_prime in
  Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL)
