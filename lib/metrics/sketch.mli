(** Streaming quantile sketch with fixed O(1) state and an exactly
    mergeable summary.

    The fleet-scale serve path cannot afford [Stats]' store-every-sample
    accumulator (O(requests) memory) — this sketch keeps a fixed array
    of counters per tenant instead, in the spirit of the p²/HDR family
    of streaming estimators.  We use a log-bucketed histogram rather
    than literal p² markers because bucket counts add: merging two
    sketches is plain bucket-wise addition, which is commutative and
    associative — exactly what the fleet roll-up and the `--jobs`
    determinism gates need (p² marker state does not merge exactly).

    Layout: non-negative values are rounded to integers; 0..63 land in
    exact unit buckets, and every power-of-two octave above that is
    split into 32 linear sub-buckets.  A quantile query walks the
    bucket counts (nearest-rank, like {!Stats.percentile}) and reports
    the bucket's upper bound, so estimates are one-sided:

      exact <= sketch <= exact * (1 + {!relative_error})

    with [relative_error = 1/32] (3.125%).  Count, mean, min and max
    are tracked exactly on the side.  State is ~1.9k int counters plus
    three floats (~15 KiB) regardless of how many samples stream in. *)

type t

val create : unit -> t

val relative_error : float
(** Worst-case one-sided relative error of {!quantile} for values
    outside the exact 0..63 range: [1/32]. *)

val add : t -> float -> unit
(** Record a sample.  Negative values clamp to 0; the value is rounded
    to the nearest integer for bucketing (count/mean/min/max use the
    value as given). *)

val add_int : t -> int -> unit
(** Allocation-free hot-path variant of {!add} for integer cycle
    counts ([v >= 0]). *)

val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
(** Exact; 0 when the sketch is empty, matching {!Stats}. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [\[0,100\]], nearest-rank over the bucket
    counts.  Raises [Invalid_argument] when empty or [p] is out of
    range, like {!Stats.percentile}. *)

val summary : t -> Stats.summary
(** Sketch-derived count/mean/p50/p95/p99/max in {!Stats.summary} form
    (all zero when empty).  [s_max] is the exact maximum, not a bucket
    bound. *)

val merge_into : into:t -> t -> unit
(** Bucket-wise addition: after the call [into] summarises the pooled
    sample stream of both inputs.  Commutative and associative, so a
    fleet roll-up is independent of shard order — pooled-sketch
    percentiles carry the same [1/32] bound as a single sketch, unlike
    {!Stats.merge_summaries}' worst-of-shards tail.  [src] is
    unchanged. *)

val merged : t list -> t
(** Fresh sketch over the pooled streams of all inputs. *)
