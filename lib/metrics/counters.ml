(* Named event counters with interned cells.

   The string-keyed API ([incr]/[add]/[get]) hashes the name on every
   call, which is fine for cold paths but shows up on the simulator's
   per-access paths (TLB miss, fault accounting, fetch/evict).  Hot
   paths intern a [cell] handle once at construction time and bump it
   with a single mutable-field write.

   Cell handles stay valid forever: [reset] zeroes every cell in place
   instead of dropping the table, so a handle resolved before a
   [Clock.reset] (e.g. by [Harness.Measure.run]) keeps counting into
   the same cell afterwards. *)

type cell = { cell_name : string; mutable count : int }
type t = (string, cell) Hashtbl.t

let create () = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some c -> c
  | None ->
    let c = { cell_name = name; count = 0 } in
    Hashtbl.add t name c;
    c

let name c = c.cell_name
let cell_incr c = c.count <- c.count + 1
let cell_add c n = c.count <- c.count + n
let cell_get c = c.count

let incr t name = cell_incr (cell t name)
let add t name n = cell_add (cell t name) n
let get t name = match Hashtbl.find_opt t name with Some c -> c.count | None -> 0

(* Interned handles must survive a reset; zero in place. *)
let reset t = Hashtbl.iter (fun _ c -> c.count <- 0) t
let reset_one t name =
  match Hashtbl.find_opt t name with Some c -> c.count <- 0 | None -> ()

(* Shard merge: fold another table's counts into [into] by name.  Used
   by the parallel drivers after a sharded run; cheap (cold path), and
   deliberately name-based so the two tables need not share cells. *)
let merge_into ~into src =
  Hashtbl.iter (fun k c -> if c.count <> 0 then cell_add (cell into k) c.count) src

let merged ts =
  let out = create () in
  List.iter (fun t -> merge_into ~into:out t) ts;
  out

let snapshot t =
  Hashtbl.fold (fun k c acc -> if c.count <> 0 then (k, c.count) :: acc else acc) t []
  |> List.sort compare

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@." k v) (snapshot t)
