type kind =
  | Uniform
  | Zipf of { theta : float; alpha : float; zetan : float; eta : float }
  | Scrambled_zipf of { theta : float; alpha : float; zetan : float; eta : float }
  | Hotspot of { hot_items : int; hot_probability : float }

type t = { n : int; kind : kind }

let zeta ~n ~theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let zipf_params ~n ~theta =
  let zetan = zeta ~n ~theta in
  let zeta2 = zeta ~n:2 ~theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  (alpha, zetan, eta)

let uniform ~n =
  assert (n > 0);
  { n; kind = Uniform }

let zipfian ?(theta = 0.99) ~n () =
  assert (n > 1);
  let alpha, zetan, eta = zipf_params ~n ~theta in
  { n; kind = Zipf { theta; alpha; zetan; eta } }

let scrambled_zipfian ?(theta = 0.99) ~n () =
  assert (n > 1);
  let alpha, zetan, eta = zipf_params ~n ~theta in
  { n; kind = Scrambled_zipf { theta; alpha; zetan; eta } }

let hotspot ~n ~hot_fraction ~hot_probability =
  assert (n > 0 && hot_fraction > 0.0 && hot_fraction <= 1.0);
  assert (hot_probability >= 0.0 && hot_probability <= 1.0);
  let hot_items = max 1 (int_of_float (hot_fraction *. float_of_int n)) in
  { n; kind = Hotspot { hot_items; hot_probability } }

(* The YCSB Zipfian sampler of Gray et al.: constant-time inverse-CDF
   approximation using precomputed zeta values. *)
let sample_zipf ~n ~theta ~alpha ~zetan ~eta rng =
  let u = Rng.float rng in
  let uz = u *. zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** theta) then 1
  else
    let rank = float_of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha) in
    min (n - 1) (int_of_float rank)

let sample t rng =
  match t.kind with
  | Uniform -> Rng.int rng t.n
  | Zipf { theta; alpha; zetan; eta } ->
    sample_zipf ~n:t.n ~theta ~alpha ~zetan ~eta rng
  | Scrambled_zipf { theta; alpha; zetan; eta } ->
    let rank = sample_zipf ~n:t.n ~theta ~alpha ~zetan ~eta rng in
    Rng.fnv_hash_masked rank mod t.n
  | Hotspot { hot_items; hot_probability } ->
    if Rng.float rng < hot_probability then Rng.int rng hot_items
    else if hot_items >= t.n then Rng.int rng t.n
    else hot_items + Rng.int rng (t.n - hot_items)

let size t = t.n

let describe t =
  match t.kind with
  | Uniform -> "uniform"
  | Zipf { theta; _ } -> Printf.sprintf "zipf(%.2f)" theta
  | Scrambled_zipf { theta; _ } -> Printf.sprintf "scrambled-zipf(%.2f)" theta
  | Hotspot { hot_items; hot_probability } ->
    Printf.sprintf "hotspot(%d items, p=%.2f)" hot_items hot_probability
