(** Summary statistics for experiment measurements. *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation (Bessel-corrected); 0 for fewer than two
    samples. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by nearest-rank on the sorted
    samples. Raises [Invalid_argument] when empty. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_max : float;
}
(** The fixed percentile set SLO reports are built from. *)

val summary : t -> summary
(** [summary t] computes count/mean/p50/p95/p99/max in one pass (one
    sort).  All fields are 0 when the accumulator is empty; with a
    single sample every percentile equals that sample. *)

val merge_into : into:t -> t -> unit
(** Exact shard merge: after [merge_into ~into src], [into] holds the
    union of both sample sets (every sample is retained, so percentiles
    of the merge are exact, not approximated).  [src] is unchanged. *)

val merged : t list -> t
(** Fresh accumulator over the union of all inputs' samples. *)

val merge_summaries : summary list -> summary
(** Merge per-shard summaries when the raw samples are no longer
    available: counts are summed, the mean is count-weighted, and each
    percentile/max is the component-wise worst (maximum) across inputs
    — a conservative tail bound ("no shard's p99 exceeded the merged
    p99"), not the percentile of the pooled samples.  Empty list (or
    all-empty summaries) yields the all-zero summary.

    Reports built from this merge must label the percentiles as
    worst-of-shards, not pooled — a shard with 10 slow requests can
    dominate the "merged p50" of a million fast ones.  When the shards
    still hold their sample streams, prefer {!Sketch.merge_into}: a
    pooled-sketch merge is exact bucket addition and its percentiles
    describe the pooled distribution (within {!Sketch.relative_error}).
    [Serve.Driver] does exactly that for fleet roll-ups. *)

val geomean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on an
    empty list or non-positive values. *)

module Histogram : sig
  type h

  val create : bucket_width:float -> h
  val add : h -> float -> unit
  val buckets : h -> (float * int) list
  (** [(lower_bound, count)] pairs for non-empty buckets, sorted. *)
end
