(** Summary statistics for experiment measurements. *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation (Bessel-corrected); 0 for fewer than two
    samples. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by nearest-rank on the sorted
    samples. Raises [Invalid_argument] when empty. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_max : float;
}
(** The fixed percentile set SLO reports are built from. *)

val summary : t -> summary
(** [summary t] computes count/mean/p50/p95/p99/max in one pass (one
    sort).  All fields are 0 when the accumulator is empty; with a
    single sample every percentile equals that sample. *)

val geomean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on an
    empty list or non-positive values. *)

module Histogram : sig
  type h

  val create : bucket_width:float -> h
  val add : h -> float -> unit
  val buckets : h -> (float * int) list
  (** [(lower_bound, count)] pairs for non-empty buckets, sorted. *)
end
