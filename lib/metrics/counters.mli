(** Named event counters.

    Every component of the simulator (MMU, OS pager, runtime, policies)
    records events into a shared counter set, which the experiment harness
    snapshots to report fault counts, eviction counts, etc.

    No-shared-state invariant: a counter set belongs to exactly one
    simulated platform ([Harness.System] creates one per instance) and
    there is no global or module-level counter table anywhere in the
    tree.  Two platforms therefore never alias a counter, which is what
    makes whole simulations safe to shard across domains
    ({!Parallel.Pool}) with no locking: each shard counts into its own
    [t], and the driver folds the shards together afterwards with
    {!merge_into} / {!merged}.  The invariant is regression-tested in
    [test/test_parallel.ml]. *)

type t

type cell
(** Interned handle to one named counter.  Resolving a name with [cell]
    costs one hash lookup; bumping the returned handle afterwards is a
    single mutable-field write.  Hot paths (TLB miss, fault accounting,
    fetch/evict) resolve their cells once at construction time. *)

val create : unit -> t

val cell : t -> string -> cell
(** Intern [name], creating the counter at zero if needed.  The same
    name always yields the same cell, and handles remain valid (and
    aliased to the name) across [reset]/[reset_one]. *)

val name : cell -> string
val cell_incr : cell -> unit
val cell_add : cell -> int -> unit
val cell_get : cell -> int

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when the counter was never touched. *)

val reset : t -> unit
(** Zero every counter in place.  Interned cells are preserved, not
    dropped: handles resolved before the reset keep counting into the
    same (now zeroed) cells. *)

val reset_one : t -> string -> unit

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every non-zero count of [src] into the
    counter of the same name in [into] (interning it if needed).  [src]
    is unchanged.  Merging shards in any order yields the same totals
    (addition commutes); the deterministic drivers merge in shard
    order anyway. *)

val merged : t list -> t
(** Fresh table holding the name-wise sum of all inputs. *)

val snapshot : t -> (string * int) list
(** All non-zero counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
