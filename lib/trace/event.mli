(** Structured trace events.

    One event = one architecturally meaningful occurrence in the
    simulated system: a page fault, an enclave transition, a paging
    action, an Autarky system call, a policy decision, an attacker
    probe.  Events carry a monotonic sequence number, the virtual cycle
    at which they occurred, the enclave they concern ([-1] when none)
    and the acting component.

    Events have a canonical single-line JSON form ({!to_json}) with a
    fixed field order, which is both the JSONL export format and the
    input to the streaming trace digest — two identical runs produce
    byte-identical serialized streams. *)

type actor =
  | Hw        (** the CPU/MMU/SGX hardware model *)
  | Os        (** the untrusted kernel *)
  | Runtime   (** the in-enclave Autarky runtime *)
  | Policy of string  (** a self-paging policy, by name *)
  | Attacker  (** adversarial OS behaviour *)
  | Harness   (** experiment scaffolding (phase markers) *)

type access = Read | Write | Exec

type kind =
  | Fault of {
      vpage : int;          (** true faulting page (enclave-private) *)
      access : access;      (** true access kind (enclave-private) *)
      cause : string;       (** architectural cause (enclave-private) *)
      reported_vpage : int; (** page in the hardware's report to the OS *)
      reported_access : access;
      masked : bool;        (** self-paging: address/type hidden *)
    }
  | Aex of { interrupt : bool }
  | Eenter
  | Eexit
  | Eresume of { ok : bool }
  | Handler of { event : string }
      (** enclave-private handler/transition step (AEX-elided entry,
          in-enclave resume, exception-handler invocation) *)
  | Fetch of { vpages : int list; enclave_initiated : bool }
  | Evict of { vpages : int list; enclave_initiated : bool }
  | Syscall of { name : string; pages : int }
  | Decision of { policy : string; action : string; vpages : int list }
      (** enclave-private policy decision *)
  | Probe of { probe : string; vpages : int list }
      (** attacker page-table manipulation or A/D-bit read *)
  | Observe of { channel : string; count : int; vpages : int list }
      (** attacker read-out of a microarchitectural side channel (e.g. a
          branch-history/LBR sample): the channel name, how many raw
          records the sample held, and the pages it implicates *)
  | Balloon of { requested : int; released : int }
  | Inject of { scenario : string; detail : string; vpages : int list }
      (** Byzantine-OS fault injection (the attacker tampering with the
          kernel/runtime boundary); OS-visible — the adversary is the OS *)
  | Serve of { tenant : string; action : string; detail : int }
      (** multi-tenant serving-layer event (admission, shedding,
          dispatch, EPC arbitration); the serving layer runs in the
          untrusted host, so these are OS-visible *)
  | Defense of {
      tenant : string;
      verdict : string;  (** "escalated" | "de-escalated" | "held" *)
      policy : string;  (** the policy in force after the verdict *)
      detail : int;  (** verdict-specific (ladder rung, retry count) *)
    }
      (** per-tenant defense-controller verdict (management plane, so
          OS-visible like {!Serve}) *)
  | Terminate of { reason : string }
  | Mark of { name : string }  (** harness phase marker *)

type t = { seq : int; cycle : int; enclave : int; actor : actor; kind : kind }

val actor_name : actor -> string
val access_name : access -> string
val kind_name : kind -> string

val os_view : t -> t option
(** The event as the untrusted OS could observe it: [None] for
    enclave-private events ([Handler], [Decision], [Mark]); faults
    reduced to the hardware's report (cause hidden, and for self-paging
    enclaves address and access type replaced by the masked report);
    termination reasons hidden.  Everything the OS itself performs
    (syscalls, paging, probes, transitions) passes through unchanged. *)

val os_visible : t -> bool

val to_json : t -> string
(** Canonical one-line JSON (fixed field order, no whitespace). *)

val to_buffer : Buffer.t -> t -> unit
val pp : Format.formatter -> t -> unit
