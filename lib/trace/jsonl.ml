(* A minimal recursive-descent JSON syntax checker: enough to validate
   that exported trace lines are well-formed without pulling a JSON
   dependency into the tree. *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at %d, found %C" ch c.pos x
  | None -> fail "expected %C at %d, found end of input" ch c.pos

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let parse_string c =
  expect c '"';
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
        advance c;
        go ()
      | Some 'u' ->
        advance c;
        for _ = 1 to 4 do
          match peek c with
          | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance c
          | _ -> fail "bad \\u escape at %d" c.pos
        done;
        go ()
      | _ -> fail "bad escape at %d" c.pos)
    | Some ch when Char.code ch < 0x20 -> fail "raw control char at %d" c.pos
    | Some _ ->
      advance c;
      go ()
  in
  go ()

let parse_digits c =
  let any = ref false in
  let rec go () =
    match peek c with
    | Some '0' .. '9' ->
      any := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if not !any then fail "expected digits at %d" c.pos

let parse_number c =
  (match peek c with Some '-' -> advance c | _ -> ());
  parse_digits c;
  (match peek c with
  | Some '.' ->
    advance c;
    parse_digits c
  | _ -> ());
  match peek c with
  | Some ('e' | 'E') ->
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    parse_digits c
  | _ -> ()

let parse_literal c lit =
  String.iter (fun ch -> expect c ch) lit

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> parse_string c
  | Some '{' -> parse_object c
  | Some '[' -> parse_array c
  | Some 't' -> parse_literal c "true"
  | Some 'f' -> parse_literal c "false"
  | Some 'n' -> parse_literal c "null"
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected %C at %d" ch c.pos
  | None -> fail "unexpected end of input at %d" c.pos

and parse_object c =
  expect c '{';
  skip_ws c;
  match peek c with
  | Some '}' -> advance c
  | _ ->
    let rec members () =
      skip_ws c;
      parse_string c;
      skip_ws c;
      expect c ':';
      parse_value c;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        members ()
      | _ -> expect c '}'
    in
    members ()

and parse_array c =
  expect c '[';
  skip_ws c;
  match peek c with
  | Some ']' -> advance c
  | _ ->
    let rec elements () =
      parse_value c;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        elements ()
      | _ -> expect c ']'
    in
    elements ()

let validate line =
  let c = { s = line; pos = 0 } in
  match
    skip_ws c;
    (match peek c with
    | Some '{' -> parse_object c
    | _ -> fail "trace line must be a JSON object");
    skip_ws c
  with
  | () ->
    if c.pos <> String.length line then
      Error (Printf.sprintf "trailing garbage at %d" c.pos)
    else Ok ()
  | exception Bad msg -> Error msg

let validate_channel ic =
  let line_no = ref 0 in
  let errors = ref [] in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then
         match validate line with
         | Ok () -> ()
         | Error msg -> errors := (!line_no, msg) :: !errors
     done
   with End_of_file -> ());
  (!line_no, List.rev !errors)
