type t = int64

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let empty = offset_basis

let feed_char h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let feed_string h s =
  let h = ref h in
  String.iter (fun c -> h := feed_char !h c) s;
  !h

let to_hex h = Printf.sprintf "fnv64:%016Lx" h
