let by_actor actor evs =
  List.filter (fun (ev : Event.t) -> ev.actor = actor) evs

let by_kind name evs =
  List.filter (fun (ev : Event.t) -> Event.kind_name ev.kind = name) evs

let by_enclave id evs =
  List.filter (fun (ev : Event.t) -> ev.enclave = id) evs

let between ~first ~last evs =
  List.filter (fun (ev : Event.t) -> ev.cycle >= first && ev.cycle <= last) evs

let os_projection evs = List.filter_map Event.os_view evs

let count_by_kind evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Event.t) ->
      let k = Event.kind_name ev.kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let count_by_actor evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Event.t) ->
      let a = Event.actor_name ev.actor in
      Hashtbl.replace tbl a (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a)))
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Windowed rates: bucket events into fixed cycle windows.  Only
   non-empty windows are reported, ascending. *)
let windowed_counts ~window evs =
  if window <= 0 then invalid_arg "Trace.Query.windowed_counts: window must be > 0";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (ev : Event.t) ->
      let w = ev.cycle / window in
      Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    evs;
  Hashtbl.fold (fun w n acc -> (w * window, n) :: acc) tbl [] |> List.sort compare

let peak_rate ~window evs =
  List.fold_left (fun acc (_, n) -> max acc n) 0 (windowed_counts ~window evs)

let touched_pages evs =
  List.concat_map
    (fun (ev : Event.t) ->
      match ev.kind with
      | Event.Fault f -> [ f.vpage ]
      | Event.Fetch f -> f.vpages
      | Event.Evict e -> e.vpages
      | Event.Decision d -> d.vpages
      | Event.Probe p -> p.vpages
      | _ -> [])
    evs
  |> List.sort_uniq compare

let digest evs =
  List.fold_left
    (fun h ev -> Fnv.feed_char (Fnv.feed_string h (Event.to_json ev)) '\n')
    Fnv.empty evs
  |> Fnv.to_hex

let pp_summary ppf evs =
  Format.fprintf ppf "%d events" (List.length evs);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "@.  %-10s %6d" k n)
    (count_by_kind evs)
