(** Minimal JSON syntax validation for exported trace lines (no JSON
    dependency in the tree).  Used by the smoke check and tests to
    assert that every exported line is well-formed. *)

val validate : string -> (unit, string) result
(** Check that [line] is exactly one well-formed JSON object. *)

val validate_channel : in_channel -> int * (int * string) list
(** Validate every non-blank line; returns [(lines_read, errors)] where
    each error is [(line_number, message)]. *)
