(** Streaming FNV-1a (64-bit) — the trace digest.

    Cheap, dependency-free and stable across platforms; adequate for
    regression anchoring (golden traces), not for adversarial
    collision resistance. *)

type t = int64

val empty : t
val feed_char : t -> char -> t
val feed_string : t -> string -> t

val to_hex : t -> string
(** ["fnv64:<16 hex digits>"]. *)
