type actor = Hw | Os | Runtime | Policy of string | Attacker | Harness

type access = Read | Write | Exec

type kind =
  | Fault of {
      vpage : int;
      access : access;
      cause : string;
      reported_vpage : int;
      reported_access : access;
      masked : bool;
    }
  | Aex of { interrupt : bool }
  | Eenter
  | Eexit
  | Eresume of { ok : bool }
  | Handler of { event : string }
  | Fetch of { vpages : int list; enclave_initiated : bool }
  | Evict of { vpages : int list; enclave_initiated : bool }
  | Syscall of { name : string; pages : int }
  | Decision of { policy : string; action : string; vpages : int list }
  | Probe of { probe : string; vpages : int list }
  | Observe of { channel : string; count : int; vpages : int list }
  | Balloon of { requested : int; released : int }
  | Inject of { scenario : string; detail : string; vpages : int list }
  | Serve of { tenant : string; action : string; detail : int }
  | Defense of {
      tenant : string;
      verdict : string;
      policy : string;
      detail : int;
    }
  | Terminate of { reason : string }
  | Mark of { name : string }

type t = { seq : int; cycle : int; enclave : int; actor : actor; kind : kind }

let actor_name = function
  | Hw -> "hw"
  | Os -> "os"
  | Runtime -> "runtime"
  | Policy p -> "policy:" ^ p
  | Attacker -> "attacker"
  | Harness -> "harness"

let access_name = function Read -> "read" | Write -> "write" | Exec -> "exec"

let kind_name = function
  | Fault _ -> "fault"
  | Aex _ -> "aex"
  | Eenter -> "eenter"
  | Eexit -> "eexit"
  | Eresume _ -> "eresume"
  | Handler _ -> "handler"
  | Fetch _ -> "fetch"
  | Evict _ -> "evict"
  | Syscall _ -> "syscall"
  | Decision _ -> "decision"
  | Probe _ -> "probe"
  | Observe _ -> "observe"
  | Balloon _ -> "balloon"
  | Inject _ -> "inject"
  | Serve _ -> "serve"
  | Defense _ -> "defense"
  | Terminate _ -> "terminate"
  | Mark _ -> "mark"

(* --- OS-visible projection ------------------------------------------- *)

let os_view ev =
  match ev.kind with
  | Fault f ->
    (* The OS sees only the hardware fault report: for self-paging
       enclaves a read at the enclave base, for legacy enclaves the
       page-aligned address and access type.  The architectural cause
       stays inside the SSA either way. *)
    Some
      { ev with
        kind =
          Fault
            {
              vpage = f.reported_vpage;
              access = f.reported_access;
              cause = "";
              reported_vpage = f.reported_vpage;
              reported_access = f.reported_access;
              masked = f.masked;
            } }
  | Aex _ | Eenter | Eexit | Eresume _ -> Some ev
  | Fetch _ | Evict _ | Syscall _ | Balloon _ -> Some ev
  (* Observation samples are microarchitectural state the attacker (the
     OS) read out itself — visible by construction, like probes. *)
  | Probe _ | Observe _ | Inject _ -> Some ev
  (* Serving-layer scheduling happens in the untrusted host: admission,
     shedding and arbitration are all OS-visible by construction.  The
     defense controller's verdicts likewise live in the management
     plane, outside the enclave. *)
  | Serve _ | Defense _ -> Some ev
  | Terminate _ ->
    (* The OS observes the enclave dying, not why. *)
    Some { ev with kind = Terminate { reason = "" } }
  | Handler _ | Decision _ | Mark _ -> None

let os_visible ev = os_view ev <> None

(* --- Canonical JSON --------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_string_field buf name v =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":\"";
  escape buf v;
  Buffer.add_char buf '"'

let add_int_field buf name v =
  Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" name v)

let add_bool_field buf name v =
  Buffer.add_string buf
    (Printf.sprintf ",\"%s\":%s" name (if v then "true" else "false"))

let add_vpages_field buf name vps =
  Buffer.add_string buf (Printf.sprintf ",\"%s\":[" name);
  List.iteri
    (fun i vp ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int vp))
    vps;
  Buffer.add_char buf ']'

let to_buffer buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"cycle\":%d,\"enclave\":%d,\"actor\":\"%s\""
       ev.seq ev.cycle ev.enclave (actor_name ev.actor));
  Buffer.add_string buf ",\"kind\":\"";
  Buffer.add_string buf (kind_name ev.kind);
  Buffer.add_char buf '"';
  (match ev.kind with
  | Fault f ->
    add_int_field buf "vpage" f.vpage;
    add_string_field buf "access" (access_name f.access);
    add_string_field buf "cause" f.cause;
    add_int_field buf "reported_vpage" f.reported_vpage;
    add_string_field buf "reported_access" (access_name f.reported_access);
    add_bool_field buf "masked" f.masked
  | Aex a -> add_bool_field buf "interrupt" a.interrupt
  | Eenter | Eexit -> ()
  | Eresume r -> add_bool_field buf "ok" r.ok
  | Handler h -> add_string_field buf "event" h.event
  | Fetch f ->
    add_bool_field buf "enclave_initiated" f.enclave_initiated;
    add_vpages_field buf "vpages" f.vpages
  | Evict e ->
    add_bool_field buf "enclave_initiated" e.enclave_initiated;
    add_vpages_field buf "vpages" e.vpages
  | Syscall s ->
    add_string_field buf "name" s.name;
    add_int_field buf "pages" s.pages
  | Decision d ->
    add_string_field buf "policy" d.policy;
    add_string_field buf "action" d.action;
    add_vpages_field buf "vpages" d.vpages
  | Probe p ->
    add_string_field buf "probe" p.probe;
    add_vpages_field buf "vpages" p.vpages
  | Observe o ->
    add_string_field buf "channel" o.channel;
    add_int_field buf "count" o.count;
    add_vpages_field buf "vpages" o.vpages
  | Balloon b ->
    add_int_field buf "requested" b.requested;
    add_int_field buf "released" b.released
  | Inject i ->
    add_string_field buf "scenario" i.scenario;
    add_string_field buf "detail" i.detail;
    add_vpages_field buf "vpages" i.vpages
  | Serve s ->
    add_string_field buf "tenant" s.tenant;
    add_string_field buf "action" s.action;
    add_int_field buf "detail" s.detail
  | Defense d ->
    add_string_field buf "tenant" d.tenant;
    add_string_field buf "verdict" d.verdict;
    add_string_field buf "policy" d.policy;
    add_int_field buf "detail" d.detail
  | Terminate t -> add_string_field buf "reason" t.reason
  | Mark m -> add_string_field buf "name" m.name);
  Buffer.add_char buf '}'

let to_json ev =
  let buf = Buffer.create 128 in
  to_buffer buf ev;
  Buffer.contents buf

let pp ppf ev = Format.pp_print_string ppf (to_json ev)
