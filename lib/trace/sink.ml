type t = {
  sink_name : string;
  push : Event.t -> unit;
  close : unit -> unit;
}

let name t = t.sink_name
let push t ev = t.push ev
let close t = t.close ()

let memory () =
  let acc = ref [] in
  let sink =
    {
      sink_name = "memory";
      push = (fun ev -> acc := ev :: !acc);
      close = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !acc)

let counting () =
  let n = ref 0 in
  let sink =
    {
      sink_name = "counting";
      push = (fun _ -> incr n);
      close = (fun () -> ());
    }
  in
  (sink, fun () -> !n)

let jsonl_channel oc =
  let buf = Buffer.create 256 in
  {
    sink_name = "jsonl";
    push =
      (fun ev ->
        Buffer.clear buf;
        Event.to_buffer buf ev;
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf);
    close = (fun () -> flush oc);
  }

let jsonl_buffer out =
  {
    sink_name = "jsonl-buffer";
    push =
      (fun ev ->
        Event.to_buffer out ev;
        Buffer.add_char out '\n');
    close = (fun () -> ());
  }

let digest () =
  let h = ref Fnv.empty in
  let sink =
    {
      sink_name = "digest";
      push =
        (fun ev ->
          h := Fnv.feed_string !h (Event.to_json ev);
          h := Fnv.feed_char !h '\n');
      close = (fun () -> ());
    }
  in
  (sink, fun () -> Fnv.to_hex !h)

let filtered ~keep inner =
  {
    sink_name = inner.sink_name ^ "/filtered";
    push = (fun ev -> if keep ev then inner.push ev);
    close = inner.close;
  }

let os_view inner =
  {
    sink_name = inner.sink_name ^ "/os-view";
    push =
      (fun ev ->
        match Event.os_view ev with
        | Some masked -> inner.push masked
        | None -> ());
    close = inner.close;
  }
