(** The per-system event recorder.

    One recorder is shared by every layer of a simulated platform
    (hardware, OS, runtime, policies, attacks, harness); it stamps each
    event with a monotonic sequence number and the current virtual
    cycle from the shared {!Metrics.Clock}.

    Recording is designed to be free when disabled: components hold a
    [Recorder.t option] and pay a single branch per potential event
    when tracing is off.  Emission never charges the clock or touches
    the counters, so enabling tracing does not perturb measured cycle
    or counter totals.

    Retention is a bounded ring ({!events} returns the tail, oldest
    first); overflow drops the oldest event and is accounted in
    {!dropped}.  Attached {!Sink}s observe the complete stream
    regardless of ring capacity. *)

type t

val create : ?capacity:int -> clock:Metrics.Clock.t -> unit -> t
(** Default capacity: 65536 events.  @raise Invalid_argument on a
    non-positive capacity. *)

val emit : t -> ?enclave:int -> actor:Event.actor -> Event.kind -> unit
(** Stamp and record an event ([enclave] defaults to [-1] = none).
    No-op when the recorder is inactive. *)

val add_sink : t -> Sink.t -> unit
(** Sinks receive events in attachment order. *)

val events : t -> Event.t list
(** The retained tail, in emission order. *)

val retained : t -> int
val capacity : t -> int

val emitted : t -> int
(** Total events emitted (including ones the ring has dropped). *)

val dropped : t -> int
(** Events evicted from the ring by overflow. *)

val active : t -> bool
val set_active : t -> bool -> unit

val clear : t -> unit
(** Empty the ring (does not reset [emitted]/[dropped] or sinks). *)

val close : t -> unit
(** Close all sinks and deactivate the recorder. *)
