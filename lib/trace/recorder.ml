type t = {
  clock : Metrics.Clock.t;
  capacity : int;
  ring : Event.t option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable seq : int;
  mutable dropped : int;
  mutable sinks : Sink.t list;
  mutable active : bool;
}

let create ?(capacity = 65_536) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.Recorder.create: capacity must be > 0";
  {
    clock;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    seq = 0;
    dropped = 0;
    sinks = [];
    active = true;
  }

let capacity t = t.capacity
let emitted t = t.seq
let dropped t = t.dropped
let active t = t.active
let set_active t b = t.active <- b

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let emit t ?(enclave = -1) ~actor kind =
  if t.active then begin
    let ev =
      { Event.seq = t.seq; cycle = Metrics.Clock.now t.clock; enclave; actor; kind }
    in
    t.seq <- t.seq + 1;
    (* Bounded ring: overwrite the oldest retained event and account the
       drop.  Sinks still see the full stream. *)
    if t.len = t.capacity then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
    t.ring.(t.head) <- Some ev;
    t.head <- (t.head + 1) mod t.capacity;
    List.iter (fun s -> Sink.push s ev) t.sinks
  end

let events t =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let retained t = t.len

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.len <- 0

let close t =
  List.iter Sink.close t.sinks;
  t.active <- false
