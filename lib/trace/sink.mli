(** Pluggable trace consumers.

    A sink receives every event as it is emitted (independently of the
    recorder's bounded ring, which only retains the tail).  Sinks
    compose: {!os_view} and {!filtered} wrap an inner sink so it sees a
    projected or restricted stream. *)

type t

val name : t -> string
val push : t -> Event.t -> unit
val close : t -> unit

val memory : unit -> t * (unit -> Event.t list)
(** Collect every event; the closure returns them in emission order.
    Unbounded — for tests and offline analysis. *)

val counting : unit -> t * (unit -> int)
(** Count events without retaining them. *)

val jsonl_channel : out_channel -> t
(** Write one canonical JSON line per event.  [close] flushes but does
    not close the channel (the caller owns it). *)

val jsonl_buffer : Buffer.t -> t

val digest : unit -> t * (unit -> string)
(** Streaming FNV-1a digest over the canonical JSONL stream; the
    closure returns the current digest ["fnv64:..."]. *)

val filtered : keep:(Event.t -> bool) -> t -> t

val os_view : t -> t
(** Restrict the inner sink to the OS-visible projection
    ({!Event.os_view}): enclave-private events are suppressed, faults
    and terminations are masked to what the OS actually observes. *)
