(** Offline analysis over recorded event lists.

    All functions are pure; feed them {!Recorder.events}, a memory
    sink's contents, or any event list. *)

val by_actor : Event.actor -> Event.t list -> Event.t list
val by_kind : string -> Event.t list -> Event.t list
(** Filter by {!Event.kind_name} (e.g. ["fault"], ["fetch"]). *)

val by_enclave : int -> Event.t list -> Event.t list
val between : first:int -> last:int -> Event.t list -> Event.t list
(** Events with [first <= cycle <= last]. *)

val os_projection : Event.t list -> Event.t list
(** What the untrusted OS could observe of this trace — the leakage
    auditing surface.  See {!Event.os_view}. *)

val count_by_kind : Event.t list -> (string * int) list
val count_by_actor : Event.t list -> (string * int) list

val windowed_counts : window:int -> Event.t list -> (int * int) list
(** Bucket events into fixed cycle windows; returns
    [(window_start_cycle, count)] for non-empty windows, ascending.
    @raise Invalid_argument on a non-positive window. *)

val peak_rate : window:int -> Event.t list -> int
(** Maximum events in any single window (fault-burst detection). *)

val touched_pages : Event.t list -> int list
(** Every vpage named by a fault/fetch/evict/decision/probe event,
    deduplicated and ascending. *)

val digest : Event.t list -> string
(** FNV-1a digest of the canonical JSONL serialization — equals the
    streaming {!Sink.digest} of the same events. *)

val pp_summary : Format.formatter -> Event.t list -> unit
