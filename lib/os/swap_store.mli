(** Untrusted backing store for evicted enclave pages.

    Holds sealed blobs in (simulated) regular memory.  Being untrusted,
    the store exposes raw replace/steal operations that attack drivers
    use to attempt tampering and replay — which ELDU / the runtime's
    unsealing must catch. *)

type blob =
  | V1 of Sgx.Instructions.swapped
      (** evicted by the privileged EWB instruction *)
  | V2 of Sim_crypto.Sealer.sealed
      (** sealed by the in-enclave runtime (SGXv2 path) *)

type t

val create : unit -> t
val put : t -> Sgx.Types.vpage -> blob -> unit
val take : t -> Sgx.Types.vpage -> blob option
(** Remove and return the blob for a page. *)

val peek : t -> Sgx.Types.vpage -> blob option
val mem : t -> Sgx.Types.vpage -> bool
val size : t -> int

val replace_raw : t -> Sgx.Types.vpage -> blob -> unit
(** Adversarial: overwrite a stored blob without any checks. *)

val delete : t -> Sgx.Types.vpage -> unit
(** Adversarial: drop a stored blob (the OS "loses" an evicted page). *)

