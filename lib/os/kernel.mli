(** The untrusted operating system.

    The kernel owns every enclave's page table and backing store, services
    page faults, runs demand paging for OS-managed pages, and implements
    the four Autarky system calls through which a self-paging runtime
    manages its own pages (§5.2.1).  It is also the adversary's vantage
    point: attack drivers observe faults through the {!hooks} and
    manipulate page tables through the [attacker_*] functions.

    EPC accounting: each process has an [epc_limit] — the maximum number
    of EPC frames the OS grants it.  Resident *enclave-managed* pages are
    pinned (the OS honours the Autarky contract unless an attack driver
    says otherwise); OS-managed pages are evicted by a clock algorithm
    for legacy enclaves and FIFO for self-paging enclaves (whose
    accessed bits the OS can no longer use). *)

type proc
(** One enclave-hosting process. *)

(** What the attacker's fault hook tells the kernel to do next (relevant
    to legacy enclaves only; self-paging enclaves force re-entry through
    the trusted handler regardless). *)
type fault_decision =
  | Benign
      (** run the normal demand-paging service, then resume *)
  | Fixed_silently
      (** the hook already repaired the mapping; resume without any
          in-enclave visibility — the controlled channel's key step *)

type hooks = {
  mutable on_fault : proc -> Sgx.Types.os_fault_report -> fault_decision;
  mutable on_preempt : proc -> unit;
  mutable on_fetch : proc -> Sgx.Types.vpage list -> unit;
      (** Fired whenever pages of the process become EPC-resident (ELDU
          on the SGXv1 path, EAUG on the SGXv2 path) — the demand-paging
          side channel of §4, which the OS can always observe.  Default
          is a no-op; passive attack drivers (Pigeonhole-style
          fault-pattern adversaries) install themselves here. *)
}

type t

val create : Sgx.Machine.t -> t
val machine : t -> Sgx.Machine.t
val hooks : t -> hooks

val create_proc :
  t -> size_pages:int -> self_paging:bool -> epc_limit:int -> proc
(** ECREATE an enclave of [size_pages] pages, hosted by a fresh process
    allowed to hold at most [epc_limit] EPC frames at a time. *)

val enclave : proc -> Sgx.Enclave.t
val page_table : proc -> Sgx.Page_table.t
val resident_pages : proc -> int
val epc_limit : proc -> int
val set_epc_limit : proc -> int -> unit

val add_initial_page :
  t -> proc -> vpage:Sgx.Types.vpage -> data:Sgx.Page_data.t ->
  perms:Sgx.Types.perms -> unit
(** Populate one page of the initial enclave image.  While the process
    has EPC headroom the page is EADDed and mapped; once the image
    exceeds the limit, remaining pages are placed directly in the backing
    store (as if added and evicted during initialization, which the
    paper's methodology excludes from measurement). *)

val finalize : t -> proc -> unit
(** EINIT: no further initial pages may be added. *)

val os_callbacks : t -> Sgx.Cpu.os_callbacks
(** The fault/preempt entry points wired into the CPU model. *)

(** {1 Autarky system calls (§5.2.1)}

    All syscalls are exitless host calls (the prototype's configuration);
    each call charges one host-call round trip regardless of batch
    size — the reason the ABI takes page lists. *)

(** Why the kernel failed to produce a requested page.  [`Epc_exhausted]
    is (possibly transiently) benign; the [`Blob_*] cases are Byzantine
    faults on the backing store — deleted, tampered or replayed blobs —
    that a self-paging runtime must detect. *)
type fetch_error =
  [ `Epc_exhausted
  | `Blob_missing of Sgx.Types.vpage
  | `Blob_mac_mismatch of Sgx.Types.vpage
  | `Blob_replayed of Sgx.Types.vpage ]

val pp_fetch_error : Format.formatter -> fetch_error -> unit

val ay_set_enclave_managed :
  t -> proc -> Sgx.Types.vpage list -> (Sgx.Types.vpage * bool) list
(** Claim pages for enclave management; returns each page's current
    residence so the runtime can initialize its tracking. *)

val ay_set_os_managed : t -> proc -> Sgx.Types.vpage list -> unit
(** Yield pages back to OS management (they become evictable). *)

val ay_fetch_pages :
  t -> proc -> Sgx.Types.vpage list -> (unit, fetch_error) result
(** SGXv1 path: ELDU each page from the backing store and map it.
    Fails without partial effect if EPC headroom cannot be made; fails
    at the offending page if its blob is missing, tampered or stale
    (pages before it in the batch stay fetched). *)

val ay_fetch_page :
  t -> proc -> Sgx.Types.vpage -> (unit, fetch_error) result
(** Single-page [ay_fetch_pages] — identical counters, charges and
    trace events to a one-element batch, without the list plumbing.
    The demand-fetch fast path the fault handler runs on every miss. *)

val ay_evict_pages : t -> proc -> Sgx.Types.vpage list -> unit
(** SGXv1 path: EWB each resident page to the backing store and unmap. *)

(** {1 SGXv2 support calls (used by the runtime's in-enclave pager)} *)

val ay_aug_pages :
  t -> proc -> Sgx.Types.vpage list -> (unit, [ `Epc_exhausted ]) result
(** EAUG + map each page (pending until the enclave EACCEPTCOPYs). *)

val ay_aug_page :
  t -> proc -> Sgx.Types.vpage -> (unit, [ `Epc_exhausted ]) result
(** Single-page [ay_aug_pages] — the SGXv2 demand-fetch fast path. *)

val ay_remove_pages : t -> proc -> Sgx.Types.vpage list -> unit
(** EREMOVE + unmap each page (after the enclave trimmed and accepted). *)

val blob_store : t -> proc -> Sgx.Types.vpage -> Sim_crypto.Sealer.sealed -> unit
(** Enclave writes a runtime-sealed page to untrusted memory (no host
    call needed — direct store). *)

val blob_load : t -> proc -> Sgx.Types.vpage -> Sim_crypto.Sealer.sealed option

val page_in_os_managed :
  t -> proc -> Sgx.Types.vpage -> (unit, fetch_error) result
(** Demand-paging service for a fault the runtime forwarded because it
    hit an OS-managed page. *)

val epc_headroom : t -> proc -> int
(** Frames the process could still obtain (counting evictable OS-managed
    pages). *)

(** {1 Memory ballooning (§5.2.1's deferred upcall mechanism)} *)

val set_balloon_handler : t -> proc -> (int -> int) -> unit
(** Register the enclave's memory-pressure upcall (wired to
    {!Autarky.Runtime.balloon_release} by the harness). *)

val request_balloon : t -> proc -> pages:int -> int
(** Upcall into the enclave asking it to release [pages] enclave-managed
    pages.  The enclave applies its policy (whole clusters, FIFO batches,
    or refusal) and the call returns the number actually released.
    Charges an enclave entry/exit round trip. *)

val release_proc : t -> proc -> unit
(** Tear a process down (typically after its enclave terminated): free
    every EPC frame the enclave still holds — a dead enclave cannot
    release them itself — mark the enclave [Dead] if it was not
    already, and unregister the process from the kernel.  The freed
    frames return to the machine-wide pool, so a replacement enclave
    (an attested restart) can be created in its place. *)

val reclaim_for_shrink : t -> proc -> target:int -> unit
(** Evict the process's OS-managed pages until its residency is at most
    [target] or no evictable page remains (used when a hypervisor shrinks
    the guest's partition). *)

val reclaim_global :
  t -> needed:int -> requester:proc -> (unit, [ `Epc_exhausted ]) result
(** Multi-enclave memory pressure: free EPC frames for [requester] by
    evicting other processes' OS-managed pages and, failing that,
    ballooning their enclaves.  Static partitioning (disjoint
    [epc_limit]s) never needs this; it implements the cooperative
    balancing §5.2.1 sketches. *)

(** {1 Adversarial page-table manipulation} *)

val attacker_unmap : t -> proc -> Sgx.Types.vpage -> unit
val attacker_restore : t -> proc -> Sgx.Types.vpage -> unit
(** Undo an [attacker_unmap] / permission change: restore the intended
    mapping if the frame is still resident. *)

val attacker_set_perms : t -> proc -> Sgx.Types.vpage -> Sgx.Types.perms -> unit
val attacker_clear_accessed : t -> proc -> Sgx.Types.vpage -> unit
val attacker_clear_dirty : t -> proc -> Sgx.Types.vpage -> unit

val attacker_read_ad : t -> proc -> Sgx.Types.vpage -> (bool * bool) option
(** Current (accessed, dirty) bits, if the page has a PTE. *)

val attacker_map_wrong : t -> proc -> victim:Sgx.Types.vpage -> other:Sgx.Types.vpage -> unit
(** Point [victim]'s PTE at the frame backing [other]. *)

val attacker_evict : t -> proc -> Sgx.Types.vpage -> unit
(** Forcibly EWB a page regardless of the enclave-managed contract. *)

val attacker_sample_branches : t -> proc -> Sgx.Types.vpage list
(** Read out (and clear) the machine's branch-trace ring, keeping the
    records of this process's enclave — the Branch Shadowing channel
    (Lee et al.): code pages the enclave executed since the last sample,
    oldest first.  Emits an [Observe] event; outside Autarky's paging
    threat model, so it works against every policy. *)

val swap : t -> proc -> Swap_store.t
(** Raw access to the (untrusted) backing store, for replay attacks. *)

val resident : t -> proc -> Sgx.Types.vpage -> bool
(** Whether the page currently occupies an EPC frame (the OS can always
    tell — the demand-paging side channel of §4). *)
