open Sgx

type fault_decision = Benign | Fixed_silently

type proc = {
  enclave : Enclave.t;
  pt : Page_table.t;
  proc_swap : Swap_store.t;
  enclave_managed : Flat.t;
  intended_perms : Flat.t; (* vpage -> Types.perms_bits *)
  (* Victim queue of (page, seq) as a pair of int rings: only a page's
     latest seq is live, so a page that cycles out and back in queues
     at the back again. *)
  mutable orq_vp : int array;
  mutable orq_seq : int array;
  mutable orq_head : int;
  mutable orq_tail : int;
  queue_seq : Flat.t;
  mutable seq_counter : int;
  mutable resident_count : int;
  mutable epc_limit : int;
  mutable balloon_handler : (int -> int) option;
}

type hooks = {
  mutable on_fault : proc -> Types.os_fault_report -> fault_decision;
  mutable on_preempt : proc -> unit;
  mutable on_fetch : proc -> Types.vpage list -> unit;
}

(* Counter cells interned at kernel construction: the fault/fetch/evict
   and host-call paths run on every simulated paging event and must not
   hash counter names. *)
type cells = {
  k_fault : Metrics.Counters.cell;
  k_evict : Metrics.Counters.cell;
  k_fetch : Metrics.Counters.cell;
  k_remap : Metrics.Counters.cell;
  k_preempt : Metrics.Counters.cell;
  k_silent_resume : Metrics.Counters.cell;
  k_silent_resume_blocked : Metrics.Counters.cell;
  k_balloon_requests : Metrics.Counters.cell;
  k_balloon_released : Metrics.Counters.cell;
  k_sys_set_enclave_managed : Metrics.Counters.cell;
  k_sys_set_os_managed : Metrics.Counters.cell;
  k_sys_fetch_pages : Metrics.Counters.cell;
  k_sys_evict_pages : Metrics.Counters.cell;
  k_sys_aug_pages : Metrics.Counters.cell;
  k_sys_remove_pages : Metrics.Counters.cell;
  k_sys_page_in : Metrics.Counters.cell;
  k_sys_headroom : Metrics.Counters.cell;
}

type t = {
  machine : Machine.t;
  procs : (int, proc) Hashtbl.t;
  kernel_hooks : hooks;
  cells : cells;
}

type fetch_error =
  [ `Epc_exhausted
  | `Blob_missing of Types.vpage
  | `Blob_mac_mismatch of Types.vpage
  | `Blob_replayed of Types.vpage ]

let pp_fetch_error ppf = function
  | `Epc_exhausted -> Format.pp_print_string ppf "EPC exhausted"
  | `Blob_missing vp -> Format.fprintf ppf "backing-store blob for 0x%x missing" vp
  | `Blob_mac_mismatch vp ->
    Format.fprintf ppf "blob for 0x%x failed MAC verification" vp
  | `Blob_replayed vp -> Format.fprintf ppf "stale blob replayed for 0x%x" vp

let create machine =
  let cell = Metrics.Counters.cell (Machine.counters machine) in
  {
    machine;
    procs = Hashtbl.create 8;
    kernel_hooks =
      {
        on_fault = (fun _ _ -> Benign);
        on_preempt = (fun _ -> ());
        on_fetch = (fun _ _ -> ());
      };
    cells =
      {
        k_fault = cell "os.fault";
        k_evict = cell "os.evict";
        k_fetch = cell "os.fetch";
        k_remap = cell "os.remap";
        k_preempt = cell "os.preempt";
        k_silent_resume = cell "os.silent_resume";
        k_silent_resume_blocked = cell "os.silent_resume_blocked";
        k_balloon_requests = cell "os.balloon_requests";
        k_balloon_released = cell "os.balloon_released";
        k_sys_set_enclave_managed = cell "os.sys.set_enclave_managed";
        k_sys_set_os_managed = cell "os.sys.set_os_managed";
        k_sys_fetch_pages = cell "os.sys.fetch_pages";
        k_sys_evict_pages = cell "os.sys.evict_pages";
        k_sys_aug_pages = cell "os.sys.aug_pages";
        k_sys_remove_pages = cell "os.sys.remove_pages";
        k_sys_page_in = cell "os.sys.page_in";
        k_sys_headroom = cell "os.sys.headroom";
      };
  }

let machine t = t.machine
let hooks t = t.kernel_hooks

let charge t n = Machine.charge t.machine n
let cmodel t = Machine.model t.machine
let incr _t cell = Metrics.Counters.cell_incr cell

(* Kernel-side tracing: one branch when no recorder is installed. *)
let emit t proc ~actor k =
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:proc.enclave.id ~actor (k ())

let create_proc t ~size_pages ~self_paging ~epc_limit =
  let enclave = Instructions.ecreate t.machine ~size_pages ~self_paging in
  let proc =
    {
      enclave;
      pt = Page_table.create ();
      proc_swap = Swap_store.create ();
      enclave_managed = Flat.create ~size:1024 ();
      intended_perms = Flat.create ~size:1024 ();
      orq_vp = Array.make 1024 0;
      orq_seq = Array.make 1024 0;
      orq_head = 0;
      orq_tail = 0;
      queue_seq = Flat.create ~size:1024 ();
      seq_counter = 0;
      resident_count = 0;
      epc_limit;
      balloon_handler = None;
    }
  in
  Hashtbl.replace t.procs enclave.id proc;
  proc

let enclave proc = proc.enclave
let page_table proc = proc.pt
let resident_pages proc = proc.resident_count
let epc_limit proc = proc.epc_limit
let set_epc_limit proc n = proc.epc_limit <- n

let is_enclave_managed proc vp = Flat.mem proc.enclave_managed vp

(* Victim-queue ring: a power-of-two circular buffer of (vp, seq)
   pairs, grown by doubling.  Semantically identical to the old
   [Queue.t] of tuples, without a cons per push. *)
let orq_grow proc =
  let len = Array.length proc.orq_vp in
  let vp = Array.make (2 * len) 0 and seq = Array.make (2 * len) 0 in
  let n = proc.orq_tail - proc.orq_head in
  for j = 0 to n - 1 do
    let s = (proc.orq_head + j) land (len - 1) in
    vp.(j) <- proc.orq_vp.(s);
    seq.(j) <- proc.orq_seq.(s)
  done;
  proc.orq_vp <- vp;
  proc.orq_seq <- seq;
  proc.orq_head <- 0;
  proc.orq_tail <- n

let orq_length proc = proc.orq_tail - proc.orq_head
let orq_is_empty proc = proc.orq_head = proc.orq_tail

let orq_push proc vp seq =
  if orq_length proc = Array.length proc.orq_vp then orq_grow proc;
  let s = proc.orq_tail land (Array.length proc.orq_vp - 1) in
  proc.orq_vp.(s) <- vp;
  proc.orq_seq.(s) <- seq;
  proc.orq_tail <- proc.orq_tail + 1

(* Pop the head (vp, seq) pair; the caller checks emptiness. *)
let orq_pop proc =
  let s = proc.orq_head land (Array.length proc.orq_vp - 1) in
  proc.orq_head <- proc.orq_head + 1;
  (proc.orq_vp.(s), proc.orq_seq.(s))

let enqueue_os_resident proc vp =
  proc.seq_counter <- proc.seq_counter + 1;
  Flat.set proc.queue_seq vp proc.seq_counter;
  orq_push proc vp proc.seq_counter

let queue_entry_live proc vp seq = Flat.find proc.queue_seq vp = seq

let resident t proc vp =
  Epc.frame_of_packed t.machine.epc ~enclave_id:proc.enclave.id ~vpage:vp >= 0

let intended_perms_of proc vp =
  let bits = Flat.find proc.intended_perms vp in
  if bits >= 0 then Types.perms_of_bits bits else Types.perms_rw

(* Install a PTE honouring the Autarky contract: for self-paging
   enclaves the OS must pre-set accessed and dirty, since the hardware
   will treat clear bits as an invalid PTE. *)
let map_page proc ~vpage ~frame ~perms =
  Flat.set proc.intended_perms vpage (Types.perms_bits perms);
  let preset = proc.enclave.self_paging in
  Page_table.map proc.pt ~vpage ~frame ~perms ~accessed:preset ~dirty:preset ()

let add_initial_page t proc ~vpage ~data ~perms =
  (match proc.enclave.state with
  | Enclave.Created -> ()
  | _ -> Types.sgx_errorf "add_initial_page: enclave %d already initialized"
           proc.enclave.id);
  Flat.set proc.intended_perms vpage (Types.perms_bits perms);
  let headroom =
    Epc.free_frames t.machine.epc > 0 && proc.resident_count < proc.epc_limit
  in
  if headroom then begin
    let frame =
      Instructions.eadd t.machine proc.enclave ~vpage ~data ~perms
        ~ptype:Types.Pt_reg
    in
    map_page proc ~vpage ~frame ~perms;
    proc.resident_count <- proc.resident_count + 1;
    enqueue_os_resident proc vpage
  end
  else begin
    (* Image exceeds the process's EPC allowance: place the page directly
       in the backing store (added-and-evicted during initialization). *)
    (if Machine.free_va_slots t.machine < 1 then
       match Instructions.epa t.machine with
       | Ok _ -> ()
       | Error `Epc_full ->
         Types.sgx_errorf "cannot provision a version-array page: EPC full");
    let sw =
      Instructions.seal_for_swap t.machine proc.enclave ~vpage ~data ~perms
        ~ptype:Types.Pt_reg
    in
    Swap_store.put proc.proc_swap vpage (Swap_store.V1 sw)
  end

let finalize t proc = Instructions.einit t.machine proc.enclave

(* --- Eviction -------------------------------------------------------- *)

(* Keep anti-replay capacity available: provision a version-array page
   whenever the free-slot pool runs dry (and a frame can be found). *)
let ensure_va_slots t ~needed =
  while Machine.free_va_slots t.machine < needed do
    match Instructions.epa t.machine with
    | Ok _ -> ()
    | Error `Epc_full ->
      Types.sgx_errorf "cannot provision a version-array page: EPC full"
  done

(* The architectural eviction protocol, batched the way the SGX driver
   does it: EBLOCK every victim, one ETRACK (TLB shootdown), then EWB
   each page out. *)
let do_evict_batch ?(os_initiated = true) t proc vps =
  match vps with
  | [] -> ()
  | _ ->
    ensure_va_slots t ~needed:(List.length vps);
    List.iter (fun vp -> Instructions.eblock t.machine proc.enclave ~vpage:vp) vps;
    Instructions.etrack t.machine proc.enclave;
    List.iter
      (fun vp ->
        let sw = Instructions.ewb t.machine proc.enclave ~vpage:vp in
        Swap_store.put proc.proc_swap vp (Swap_store.V1 sw);
        Page_table.unmap proc.pt vp;
        proc.resident_count <- proc.resident_count - 1;
        if os_initiated then incr t t.cells.k_evict)
      vps;
    (* Inline tracer match: a thunk here would capture [vps] and
       allocate per eviction batch even with tracing off. *)
    match Machine.tracer t.machine with
    | None -> ()
    | Some tr ->
      Trace.Recorder.emit tr ~enclave:proc.enclave.id ~actor:Trace.Event.Os
        (Trace.Event.Evict { vpages = vps; enclave_initiated = not os_initiated })

let do_evict ?(os_initiated = true) t proc vp =
  do_evict_batch ~os_initiated t proc [ vp ]

(* Victim selection among resident OS-managed pages: clock (second
   chance via accessed bits) for legacy enclaves, FIFO for self-paging
   enclaves whose accessed bits the OS can no longer read usefully. *)
let choose_victim t proc =
  let budget = ref ((2 * orq_length proc) + 1) in
  let result = ref (-1) in
  while !result < 0 && (not (orq_is_empty proc)) && !budget > 0 do
    decr budget;
    let vp, seq = orq_pop proc in
    if
      queue_entry_live proc vp seq
      && resident t proc vp
      && not (is_enclave_managed proc vp)
    then
      if not proc.enclave.self_paging then begin
        let p = Page_table.find_packed proc.pt vp in
        if p >= 0 && Page_table.p_accessed p && !budget > 0 then begin
          Page_table.clear_accessed proc.pt vp;
          enqueue_os_resident proc vp
        end
        else result := vp
      end
      else result := vp
  done;
  if !result >= 0 then Some !result else None

(* Headroom check and deficit as plain functions: the old let-bound
   [ok]/[deficit] thunks and the [progress]/[victims] refs allocated on
   every fetch even when headroom already existed — and every
   demand-fetch passes through here. *)
let headroom_ok t proc ~extra =
  Epc.free_frames t.machine.epc >= extra
  && proc.resident_count + extra <= proc.epc_limit

let headroom_deficit t proc ~extra =
  max
    (extra - Epc.free_frames t.machine.epc)
    (proc.resident_count + extra - proc.epc_limit)

(* Gather up to [n] victims; the latest choice ends at the head, the
   order the old ref-accumulating loop produced. *)
let rec collect_victims t proc n acc =
  if n <= 0 then acc
  else
    match choose_victim t proc with
    | Some vp -> collect_victims t proc (n - 1) (vp :: acc)
    | None -> acc

(* Collect the whole deficit per round so eviction pays for one ETRACK. *)
let rec ensure_headroom t proc ~extra =
  if headroom_ok t proc ~extra then Ok ()
  else
    match collect_victims t proc (headroom_deficit t proc ~extra) [] with
    | [] -> Error `Epc_exhausted
    | victims ->
      do_evict_batch t proc victims;
      ensure_headroom t proc ~extra

(* --- Fetch ----------------------------------------------------------- *)

let do_fetch t proc vp ~pinned : (unit, fetch_error) result =
  match Swap_store.take proc.proc_swap vp with
  | Some (Swap_store.V1 sw) -> (
    match Instructions.eldu t.machine proc.enclave sw with
    | Ok frame ->
      map_page proc ~vpage:vp ~frame ~perms:sw.sw_perms;
      proc.resident_count <- proc.resident_count + 1;
      if not pinned then enqueue_os_resident proc vp;
      if not pinned then incr t t.cells.k_fetch;
      (match Machine.tracer t.machine with
      | None -> ()
      | Some tr ->
        Trace.Recorder.emit tr ~enclave:proc.enclave.id ~actor:Trace.Event.Os
          (Trace.Event.Fetch { vpages = [ vp ]; enclave_initiated = pinned }));
      (* The page just became resident: the demand-paging side channel
         (§4) — an observing OS always sees this. *)
      t.kernel_hooks.on_fetch proc [ vp ];
      Ok ()
    | Error `Mac_mismatch -> Error (`Blob_mac_mismatch vp)
    | Error `Replayed -> Error (`Blob_replayed vp)
    | Error `Epc_full ->
      (* The caller ensured headroom; running out here is a simulator
         bug, not OS behaviour. *)
      Types.sgx_errorf "ELDU: EPC full after headroom check for page 0x%x" vp)
  | Some (Swap_store.V2 _) ->
    Types.sgx_errorf "OS fetch of runtime-sealed (SGXv2) page 0x%x" vp
  | None -> (
    (* No blob: either the page is resident but was unmapped or had its
       permissions restricted — restore the intended mapping — or the
       OS deleted the blob of a swapped-out page (a Byzantine fault the
       runtime must detect). *)
    match Epc.frame_of t.machine.epc ~enclave_id:proc.enclave.id ~vpage:vp with
    | Some frame ->
      map_page proc ~vpage:vp ~frame ~perms:(intended_perms_of proc vp);
      incr t t.cells.k_remap;
      Ok ()
    | None -> Error (`Blob_missing vp))

(* --- Fault handling -------------------------------------------------- *)

(* Legacy enclaves have no trusted layer to turn OS misbehaviour into a
   modeled termination, so failures here stay simulator errors. *)
let service_legacy_fault t proc vp =
  let fetched =
    if not (Swap_store.mem proc.proc_swap vp) then do_fetch t proc vp ~pinned:false
    else
      match ensure_headroom t proc ~extra:1 with
      | Ok () -> do_fetch t proc vp ~pinned:false
      | Error `Epc_exhausted ->
        Types.sgx_errorf "OS cannot make EPC headroom for page 0x%x" vp
  in
  match fetched with
  | Ok () -> ()
  | Error e ->
    Types.sgx_errorf "legacy demand paging failed for page 0x%x: %s" vp
      (Format.asprintf "%a" pp_fetch_error e)

let handle_fault t (report : Types.os_fault_report) =
  let proc =
    match Hashtbl.find_opt t.procs report.fr_enclave_id with
    | Some p -> p
    | None -> Types.sgx_errorf "fault for unknown enclave %d" report.fr_enclave_id
  in
  charge t (cmodel t).os_fault_handler;
  incr t t.cells.k_fault;
  let decision = t.kernel_hooks.on_fault proc report in
  if proc.enclave.self_paging then
    (* The OS knows only that some fault occurred.  Attempting to resume
       silently fails (pending-exception flag); the only way forward is
       re-entering the enclave through its trusted handler. *)
    match Instructions.eresume t.machine proc.enclave with
    | Ok () -> ()
    | Error `Pending_exception ->
      incr t t.cells.k_silent_resume_blocked;
      Instructions.enter_handler_and_resume t.machine proc.enclave
  else begin
    (match decision with
    | Fixed_silently -> incr t t.cells.k_silent_resume
    | Benign ->
      service_legacy_fault t proc (Types.vpage_of_vaddr report.fr_vaddr));
    match Instructions.eresume t.machine proc.enclave with
    | Ok () -> ()
    | Error `Pending_exception ->
      Types.sgx_errorf "legacy enclave %d has a pending exception" proc.enclave.id
  end

let handle_preempt t ~enclave_id =
  match Hashtbl.find_opt t.procs enclave_id with
  | None -> ()
  | Some proc ->
    charge t (cmodel t).syscall;
    incr t t.cells.k_preempt;
    t.kernel_hooks.on_preempt proc

let os_callbacks t =
  {
    Cpu.handle_enclave_fault = (fun report -> handle_fault t report);
    handle_preempt = (fun ~enclave_id -> handle_preempt t ~enclave_id);
  }

(* --- Autarky system calls -------------------------------------------- *)

let charge_hostcall t proc cell ~pages =
  charge t (cmodel t).exitless_call;
  incr t cell;
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:proc.enclave.id ~actor:Trace.Event.Os
      (Trace.Event.Syscall { name = Metrics.Counters.name cell; pages })

let ay_set_enclave_managed t proc pages =
  charge_hostcall t proc t.cells.k_sys_set_enclave_managed ~pages:(List.length pages);
  List.map
    (fun vp ->
      Flat.set proc.enclave_managed vp 1;
      (vp, resident t proc vp))
    pages

let ay_set_os_managed t proc pages =
  charge_hostcall t proc t.cells.k_sys_set_os_managed ~pages:(List.length pages);
  List.iter
    (fun vp ->
      Flat.remove proc.enclave_managed vp;
      if resident t proc vp then enqueue_os_resident proc vp)
    pages

(* Stop at the first blob fault: the error names the offending page so
   the runtime can report exactly what the OS broke.  Top-level so the
   batch call builds no closure. *)
let rec fetch_all t proc = function
  | [] -> Ok ()
  | vp :: rest -> (
    match do_fetch t proc vp ~pinned:true with
    | Ok () -> fetch_all t proc rest
    | Error _ as e -> e)

let ay_fetch_pages t proc pages =
  charge_hostcall t proc t.cells.k_sys_fetch_pages ~pages:(List.length pages);
  let needed = List.filter (fun vp -> not (resident t proc vp)) pages in
  match ensure_headroom t proc ~extra:(List.length needed) with
  | Error `Epc_exhausted -> Error `Epc_exhausted
  | Ok () -> fetch_all t proc needed

(* Single-page variant of [ay_fetch_pages]: the demand-fetch path runs
   once per fault, so it skips the list filtering and length plumbing.
   Counters, charges, trace events and failure behaviour are those of
   [ay_fetch_pages t proc [vp]] exactly. *)
let ay_fetch_page t proc vp =
  charge_hostcall t proc t.cells.k_sys_fetch_pages ~pages:1;
  let extra = if resident t proc vp then 0 else 1 in
  match ensure_headroom t proc ~extra with
  | Error `Epc_exhausted -> Error `Epc_exhausted
  | Ok () -> if extra = 0 then Ok () else do_fetch t proc vp ~pinned:true

let ay_evict_pages t proc pages =
  charge_hostcall t proc t.cells.k_sys_evict_pages ~pages:(List.length pages);
  do_evict_batch ~os_initiated:false t proc
    (List.filter (resident t proc) pages)

let ay_aug_pages t proc pages =
  charge_hostcall t proc t.cells.k_sys_aug_pages ~pages:(List.length pages);
  let needed = List.filter (fun vp -> not (resident t proc vp)) pages in
  match ensure_headroom t proc ~extra:(List.length needed) with
  | Error `Epc_exhausted -> Error `Epc_exhausted
  | Ok () ->
    List.iter
      (fun vp ->
        match Instructions.eaug t.machine proc.enclave ~vpage:vp with
        | Ok frame ->
          map_page proc ~vpage:vp ~frame ~perms:Types.perms_rw;
          proc.resident_count <- proc.resident_count + 1
        | Error `Epc_full -> Types.sgx_errorf "EAUG: EPC full after headroom check")
      needed;
    (* The EAUG path bypasses [do_fetch]; residency is equally visible. *)
    if needed <> [] then t.kernel_hooks.on_fetch proc needed;
    Ok ()

(* Single-page variant of [ay_aug_pages], mirroring
   [ay_aug_pages t proc [vp]] event-for-event (the SGXv2 fault path
   augments one page per miss). *)
let ay_aug_page t proc vp =
  charge_hostcall t proc t.cells.k_sys_aug_pages ~pages:1;
  let extra = if resident t proc vp then 0 else 1 in
  match ensure_headroom t proc ~extra with
  | Error `Epc_exhausted -> Error `Epc_exhausted
  | Ok () ->
    if extra = 1 then begin
      (match Instructions.eaug t.machine proc.enclave ~vpage:vp with
      | Ok frame ->
        map_page proc ~vpage:vp ~frame ~perms:Types.perms_rw;
        proc.resident_count <- proc.resident_count + 1
      | Error `Epc_full -> Types.sgx_errorf "EAUG: EPC full after headroom check");
      t.kernel_hooks.on_fetch proc [ vp ]
    end;
    Ok ()

let ay_remove_pages t proc pages =
  charge_hostcall t proc t.cells.k_sys_remove_pages ~pages:(List.length pages);
  List.iter
    (fun vp ->
      if resident t proc vp then begin
        Instructions.eremove t.machine proc.enclave ~vpage:vp;
        Page_table.unmap proc.pt vp;
        proc.resident_count <- proc.resident_count - 1
      end)
    pages

let blob_store t proc vp sealed =
  charge t (cmodel t).dram_access;
  Swap_store.put proc.proc_swap vp (Swap_store.V2 sealed)

let blob_load t proc vp =
  charge t (cmodel t).dram_access;
  match Swap_store.take proc.proc_swap vp with
  | Some (Swap_store.V2 sealed) -> Some sealed
  | Some (Swap_store.V1 _) as blob ->
    (* Not a runtime-sealed page; put it back. *)
    (match blob with
    | Some b -> Swap_store.put proc.proc_swap vp b
    | None -> ());
    None
  | None -> None

let page_in_os_managed t proc vp : (unit, fetch_error) result =
  charge_hostcall t proc t.cells.k_sys_page_in ~pages:1;
  if not (resident t proc vp) && Swap_store.mem proc.proc_swap vp then
    match ensure_headroom t proc ~extra:1 with
    | Ok () -> do_fetch t proc vp ~pinned:false
    | Error `Epc_exhausted -> Error `Epc_exhausted
  else do_fetch t proc vp ~pinned:false

let epc_headroom t proc =
  charge_hostcall t proc t.cells.k_sys_headroom ~pages:0;
  max 0 (proc.epc_limit - proc.resident_count)

(* --- Memory ballooning ------------------------------------------------ *)

let set_balloon_handler _t proc handler = proc.balloon_handler <- Some handler

let request_balloon t proc ~pages =
  match proc.balloon_handler with
  | None -> 0
  | Some handler ->
    let cm = cmodel t in
    (* The upcall enters the enclave and returns: one EENTER/EEXIT pair
       on top of whatever eviction work the policy performs. *)
    charge t (cm.eenter + cm.eexit);
    incr t t.cells.k_balloon_requests;
    (* The handler evicts through the normal ay_evict_pages path, which
       keeps the resident accounting straight. *)
    let released = handler pages in
    Metrics.Counters.cell_add t.cells.k_balloon_released released;
    emit t proc ~actor:Trace.Event.Os (fun () ->
        Trace.Event.Balloon { requested = pages; released });
    released

let release_proc t proc =
  let id = proc.enclave.Enclave.id in
  (* EREMOVE-equivalent teardown of every frame the enclave still holds
     (including frames a dead enclave can no longer release itself). *)
  let frames = Epc.frames_of_enclave t.machine.epc ~enclave_id:id in
  List.iter
    (fun frame ->
      charge t (cmodel t).eremove;
      Epc.release t.machine.epc frame)
    frames;
  (match proc.enclave.Enclave.state with
  | Enclave.Dead _ -> ()
  | _ -> proc.enclave.Enclave.state <- Enclave.Dead "released by OS");
  proc.resident_count <- 0;
  proc.balloon_handler <- None;
  Hashtbl.remove t.procs id

let reclaim_for_shrink t proc ~target =
  let progress = ref true in
  while proc.resident_count > target && !progress do
    match choose_victim t proc with
    | Some vp -> do_evict t proc vp
    | None -> progress := false
  done

let reclaim_global t ~needed ~requester =
  let requester_id = (enclave requester).Enclave.id in
  let others =
    Hashtbl.fold
      (fun id p acc -> if id <> requester_id then p :: acc else acc)
      t.procs []
  in
  let free () = Epc.free_frames t.machine.epc in
  (* First take other processes' OS-managed pages... *)
  List.iter
    (fun p ->
      let progress = ref true in
      while free () < needed && !progress do
        match choose_victim t p with
        | Some vp -> do_evict t p vp
        | None -> progress := false
      done)
    others;
  (* ...then ask their enclaves to deflate. *)
  List.iter
    (fun p ->
      if free () < needed then
        ignore (request_balloon t p ~pages:(needed - free ())))
    others;
  if free () >= needed then Ok () else Error `Epc_exhausted

(* --- Adversarial manipulation ---------------------------------------- *)

let probe t proc name vp =
  (* Attacker probes are cold-path and open-vocabulary; keep the string
     API here. *)
  Metrics.Counters.incr (Machine.counters t.machine) ("attacker." ^ name);
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:proc.enclave.id ~actor:Trace.Event.Attacker
      (Trace.Event.Probe { probe = name; vpages = [ vp ] })

let attacker_unmap t proc vp =
  Page_table.set_present proc.pt vp false;
  Tlb.flush_page t.machine.tlb vp;
  probe t proc "unmap" vp

let attacker_restore t proc vp =
  let frame = Epc.frame_of_packed t.machine.epc ~enclave_id:proc.enclave.id ~vpage:vp in
  if frame >= 0 then
    map_page proc ~vpage:vp ~frame ~perms:(intended_perms_of proc vp);
  probe t proc "restore" vp

let attacker_set_perms t proc vp perms =
  (try Page_table.set_perms proc.pt vp perms with Not_found -> ());
  Tlb.flush_page t.machine.tlb vp;
  probe t proc "set_perms" vp

let attacker_clear_accessed t proc vp =
  Page_table.clear_accessed proc.pt vp;
  Tlb.flush_page t.machine.tlb vp;
  probe t proc "clear_accessed" vp

let attacker_clear_dirty t proc vp =
  Page_table.clear_dirty proc.pt vp;
  Tlb.flush_page t.machine.tlb vp;
  probe t proc "clear_dirty" vp

let attacker_read_ad t proc vp =
  emit t proc ~actor:Trace.Event.Attacker (fun () ->
      Trace.Event.Probe { probe = "read_ad"; vpages = [ vp ] });
  let p = Page_table.find_packed proc.pt vp in
  if p >= 0 then Some (Page_table.p_accessed p, Page_table.p_dirty p) else None

let attacker_map_wrong t proc ~victim ~other =
  let frame = Epc.frame_of_packed t.machine.epc ~enclave_id:proc.enclave.id ~vpage:other in
  if frame < 0 then
    Types.sgx_errorf "attacker_map_wrong: page 0x%x not resident" other;
  if Page_table.mapped proc.pt victim then Page_table.set_frame proc.pt victim frame
  else
    Page_table.map proc.pt ~vpage:victim ~frame ~perms:Types.perms_rw
      ~accessed:true ~dirty:true ();
  Tlb.flush_page t.machine.tlb victim;
  probe t proc "map_wrong" victim

let attacker_evict t proc vp =
  if resident t proc vp then do_evict t proc vp;
  probe t proc "evict" vp

let attacker_sample_branches t proc =
  let vps =
    Machine.drain_branches t.machine ~enclave_id:proc.enclave.Enclave.id
  in
  Metrics.Counters.incr (Machine.counters t.machine) "attacker.lbr_sample";
  emit t proc ~actor:Trace.Event.Attacker (fun () ->
      Trace.Event.Observe
        { channel = "lbr"; count = List.length vps; vpages = vps });
  vps

let swap _t proc = proc.proc_swap
