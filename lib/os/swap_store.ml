type blob = V1 of Sgx.Instructions.swapped | V2 of Sim_crypto.Sealer.sealed

type t = (Sgx.Types.vpage, blob) Hashtbl.t

let create () = Hashtbl.create 4096
let put t vp blob = Hashtbl.replace t vp blob

let take t vp =
  match Hashtbl.find_opt t vp with
  | Some blob ->
    Hashtbl.remove t vp;
    Some blob
  | None -> None

let peek t vp = Hashtbl.find_opt t vp
let mem t vp = Hashtbl.mem t vp
let size t = Hashtbl.length t
let replace_raw t vp blob = Hashtbl.replace t vp blob
let delete t vp = Hashtbl.remove t vp
