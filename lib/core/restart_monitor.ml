type verdict = Allow | Refuse

(* Forensics ledger bound: an attacker restarting a victim in a tight
   loop must not grow the monitor's memory without bound, so only the
   newest [max_reasons] termination reasons are retained per identity
   (the starts list is already bounded by the cut-off logic). *)
let max_reasons = 256

type record = {
  mutable starts : int list;  (* virtual timestamps, newest first *)
  mutable total : int;
  mutable terminations : int;
  mutable reasons : string list;
  mutable n_reasons : int;
  mutable cut_off : bool;
}

type t = {
  clock : Metrics.Clock.t;
  window : int;
  max_restarts : int;
  table : (string, record) Hashtbl.t;
}

(* Saturating increment: lifetime totals must never wrap negative on a
   long-horizon run, they stick at [max_int] instead. *)
let sat_incr n = if n = max_int then max_int else n + 1

let create ~clock ?window_cycles ?(max_restarts = 3) () =
  let window =
    match window_cycles with
    | Some w -> w
    | None -> int_of_float (Metrics.Clock.model clock).freq_hz
  in
  if window <= 0 then
    invalid_arg
      (Printf.sprintf "Restart_monitor.create: window must be positive (got %d)"
         window);
  if max_restarts <= 0 then
    invalid_arg
      (Printf.sprintf
         "Restart_monitor.create: max_restarts must be positive (got %d)"
         max_restarts);
  { clock; window; max_restarts; table = Hashtbl.create 16 }

let record_of t identity =
  match Hashtbl.find_opt t.table identity with
  | Some r -> r
  | None ->
    let r =
      {
        starts = [];
        total = 0;
        terminations = 0;
        reasons = [];
        n_reasons = 0;
        cut_off = false;
      }
    in
    Hashtbl.add t.table identity r;
    r

(* Window boundary: a start exactly [window] cycles old is still inside
   the window ([now - ts <= window]); it ages out one cycle later.  The
   boundary test in the suite pins this down. *)
let prune t r =
  let now = Metrics.Clock.now t.clock in
  r.starts <- List.filter (fun ts -> now - ts <= t.window) r.starts

let restarts_in_window t ~identity =
  let r = record_of t identity in
  prune t r;
  (* The first start is a start, not a re-start. *)
  max 0 (List.length r.starts - 1)

let record_start t ~identity =
  let r = record_of t identity in
  if r.cut_off then Refuse
  else begin
    prune t r;
    r.starts <- Metrics.Clock.now t.clock :: r.starts;
    r.total <- sat_incr r.total;
    if List.length r.starts - 1 > t.max_restarts then begin
      r.cut_off <- true;
      Refuse
    end
    else Allow
  end

let record_termination t ~identity ~reason =
  let r = record_of t identity in
  r.terminations <- sat_incr r.terminations;
  if r.n_reasons >= max_reasons then begin
    (* Drop the oldest retained reason (last in the newest-first list). *)
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: drop_last rest
    in
    r.reasons <- reason :: drop_last r.reasons
  end
  else begin
    r.reasons <- reason :: r.reasons;
    r.n_reasons <- r.n_reasons + 1
  end

let total_restarts t ~identity = max 0 ((record_of t identity).total - 1)
let total_terminations t ~identity = (record_of t identity).terminations
let refused t ~identity = (record_of t identity).cut_off
let last_reasons t ~identity = (record_of t identity).reasons
let leaked_bits_bound t ~identity = float_of_int (total_restarts t ~identity)
