type vpage = Sgx.Types.vpage

type fetch_error =
  [ `Epc_exhausted
  | `Blob_missing of vpage
  | `Blob_mac_mismatch of vpage
  | `Blob_replayed of vpage ]

let pp_fetch_error ppf = function
  | `Epc_exhausted -> Format.pp_print_string ppf "EPC exhausted"
  | `Blob_missing vp -> Format.fprintf ppf "backing-store blob for 0x%x missing" vp
  | `Blob_mac_mismatch vp ->
    Format.fprintf ppf "blob for 0x%x failed MAC verification" vp
  | `Blob_replayed vp -> Format.fprintf ppf "stale blob replayed for 0x%x" vp

type t = {
  set_enclave_managed : vpage list -> (vpage * bool) list;
  set_os_managed : vpage list -> unit;
  fetch_pages : vpage list -> (unit, fetch_error) result;
  (* Single-page twin of [fetch_pages]: the per-fault fast path.  Must
     behave exactly as [fetch_pages [vp]] (counters, charges, trace
     events, refusal handling) — interposing layers wrap both. *)
  fetch_page : vpage -> (unit, fetch_error) result;
  evict_pages : vpage list -> unit;
  aug_pages : vpage list -> (unit, [ `Epc_exhausted ]) result;
  (* Single-page twin of [aug_pages] (SGXv2 per-fault fast path). *)
  aug_page : vpage -> (unit, [ `Epc_exhausted ]) result;
  remove_pages : vpage list -> unit;
  blob_store : vpage -> Sim_crypto.Sealer.sealed -> unit;
  blob_load : vpage -> Sim_crypto.Sealer.sealed option;
  page_in_os_managed : vpage -> (unit, fetch_error) result;
  epc_headroom : unit -> int;
}
