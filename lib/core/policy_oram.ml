type t = {
  runtime : Runtime.t;
  oram_cache : Oram_cache.t;
  mutable balloon_calls : int;
  c_degraded : Metrics.Counters.cell;
}

let create ~runtime ~cache =
  {
    runtime;
    oram_cache = cache;
    balloon_calls = 0;
    c_degraded =
      Metrics.Counters.cell
        (Sgx.Machine.counters (Runtime.machine runtime))
        "rt.policy_degraded";
  }
let cache t = t.oram_cache

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "oram") (k ())

(* Ballooning: the cache and metadata are all sensitive, so a single
   memory-pressure upcall is refused outright.  Under *sustained*
   pressure refusal just invites forced eviction (which would look like
   an attack and kill the enclave), so the policy degrades instead:
   shrink the ORAM cache — dirty slots are written back through the
   oblivious protocol, leaking nothing — and hand the freed cache pages
   back to the OS. *)
let balloon t n =
  t.balloon_calls <- t.balloon_calls + 1;
  if t.balloon_calls < 2 then 0
  else
    match Oram_cache.shrink t.oram_cache ~pages:n with
    | [] -> 0
    | vs ->
      Metrics.Counters.cell_incr t.c_degraded;
      emit t (fun () ->
          Trace.Event.Decision
            { policy = "oram"; action = "degrade-shrink-cache"; vpages = vs });
      Pager.evict (Runtime.pager t.runtime) vs;
      List.length vs

let policy t =
  {
    Runtime.pol_name = "oram";
    pol_balloon = (fun n -> balloon t n);
    pol_on_miss =
      (fun vp _sf ->
        let reason =
          Printf.sprintf
            "fault on pinned page 0x%x under ORAM policy (attack or \
             misconfiguration)"
            vp
        in
        emit t (fun () -> Trace.Event.Terminate { reason });
        Sgx.Enclave.terminate (Runtime.enclave t.runtime) ~reason);
  }

let accessor t ~fallback vaddr kind =
  if Oram_cache.in_data_region t.oram_cache vaddr then
    Oram_cache.access t.oram_cache vaddr kind
  else fallback vaddr kind

let uncached_accessor ~oram ~data_base_vpage ~n_pages ~fallback vaddr kind =
  let vp = Sgx.Types.vpage_of_vaddr vaddr in
  if vp >= data_base_vpage && vp < data_base_vpage + n_pages then begin
    let block = vp - data_base_vpage in
    Oram.Path_oram.access oram ~block (fun _data -> ());
    ignore kind
  end
  else fallback vaddr kind
