type t = { runtime : Runtime.t; oram_cache : Oram_cache.t }

let create ~runtime ~cache = { runtime; oram_cache = cache }
let cache t = t.oram_cache

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "oram") (k ())

let policy t =
  {
    Runtime.pol_name = "oram";
    (* The cache and metadata are all sensitive: refuse to deflate. *)
    pol_balloon = (fun _ -> 0);
    pol_on_miss =
      (fun vp _sf ->
        let reason =
          Printf.sprintf
            "fault on pinned page 0x%x under ORAM policy (attack or \
             misconfiguration)"
            vp
        in
        emit t (fun () -> Trace.Event.Terminate { reason });
        Sgx.Enclave.terminate (Runtime.enclave t.runtime) ~reason);
  }

let accessor t ~fallback vaddr kind =
  if Oram_cache.in_data_region t.oram_cache vaddr then
    Oram_cache.access t.oram_cache vaddr kind
  else fallback vaddr kind

let uncached_accessor ~oram ~data_base_vpage ~n_pages ~fallback vaddr kind =
  let vp = Sgx.Types.vpage_of_vaddr vaddr in
  if vp >= data_base_vpage && vp < data_base_vpage + n_pages then begin
    let block = vp - data_base_vpage in
    Oram.Path_oram.access oram ~block (fun _data -> ());
    ignore kind
  end
  else fallback vaddr kind
