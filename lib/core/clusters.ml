type cluster_id = int
type vpage = Sgx.Types.vpage

type cluster = { mutable members : vpage list; mutable capacity : int }

type t = {
  clusters : (cluster_id, cluster) Hashtbl.t;
  page_index : (vpage, cluster_id list ref) Hashtbl.t;
  mutable next_id : cluster_id;
  (* Fault-time decision tables: fetch/evict sets memoized per page and
     invalidated wholesale by bumping [gen] on any membership change.
     The BFS behind [fetch_set] is linear in the reachable subgraph and
     dominated repeat faults on stable cluster layouts. *)
  mutable gen : int;
  fetch_cache : (vpage, int * vpage list) Hashtbl.t;
  evict_cache : (vpage, int * vpage list) Hashtbl.t;
}

let create () =
  {
    clusters = Hashtbl.create 256;
    page_index = Hashtbl.create 4096;
    next_id = 0;
    gen = 0;
    fetch_cache = Hashtbl.create 4096;
    evict_cache = Hashtbl.create 4096;
  }

let invalidate t = t.gen <- t.gen + 1

let new_cluster t ?(size = 0) () =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.clusters id { members = []; capacity = size };
  id

let ay_init_clusters t ~n ~size =
  assert (n > 0 && size > 0);
  List.init n (fun _ -> new_cluster t ~size ())

let ay_release_clusters t =
  Hashtbl.reset t.clusters;
  Hashtbl.reset t.page_index;
  Hashtbl.reset t.fetch_cache;
  Hashtbl.reset t.evict_cache;
  invalidate t;
  t.next_id <- 0

let find_cluster t id =
  match Hashtbl.find_opt t.clusters id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Clusters: unknown cluster %d" id)

let ay_add_page t ~cluster vpage =
  let c = find_cluster t cluster in
  if not (List.mem vpage c.members) then begin
    c.members <- vpage :: c.members;
    invalidate t;
    match Hashtbl.find_opt t.page_index vpage with
    | Some ids -> if not (List.mem cluster !ids) then ids := cluster :: !ids
    | None -> Hashtbl.replace t.page_index vpage (ref [ cluster ])
  end

let ay_remove_page t ~cluster vpage =
  let c = find_cluster t cluster in
  c.members <- List.filter (fun p -> p <> vpage) c.members;
  invalidate t;
  match Hashtbl.find_opt t.page_index vpage with
  | Some ids ->
    ids := List.filter (fun id -> id <> cluster) !ids;
    if !ids = [] then Hashtbl.remove t.page_index vpage
  | None -> ()

let ay_get_cluster_ids t vpage =
  match Hashtbl.find_opt t.page_index vpage with
  | Some ids -> !ids
  | None -> []

let detach t vpage =
  List.iter
    (fun id -> ay_remove_page t ~cluster:id vpage)
    (ay_get_cluster_ids t vpage)

let pages_of t id = (find_cluster t id).members
let size_of t id = List.length (find_cluster t id).members
let capacity_of t id = (find_cluster t id).capacity
let cluster_count t = Hashtbl.length t.clusters
let registered t vpage = Hashtbl.mem t.page_index vpage

let registered_pages t =
  Hashtbl.fold (fun vp _ acc -> vp :: acc) t.page_index [] |> List.sort Int.compare

let merge t ~into ~from =
  if into <> from then begin
    let pages = pages_of t from in
    List.iter
      (fun p ->
        ay_remove_page t ~cluster:from p;
        ay_add_page t ~cluster:into p)
      pages;
    Hashtbl.remove t.clusters from
  end

(* BFS over the cluster-sharing graph: clusters are nodes, an edge exists
   when two clusters share a page.  Required for fetch correctness: if we
   fetched only the directly-faulting cluster, previously-shared fetches
   could leave a cluster with a single non-resident page whose later
   fault would be uniquely identifying (§5.2.3). *)
let reachable_clusters t vpage =
  let seen_clusters = Hashtbl.create 16 in
  let seen_pages = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun id -> Queue.push id queue) (ay_get_cluster_ids t vpage);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if not (Hashtbl.mem seen_clusters id) then begin
      Hashtbl.replace seen_clusters id ();
      List.iter
        (fun p ->
          if not (Hashtbl.mem seen_pages p) then begin
            Hashtbl.replace seen_pages p ();
            List.iter
              (fun id' -> if not (Hashtbl.mem seen_clusters id') then Queue.push id' queue)
              (ay_get_cluster_ids t p)
          end)
        (pages_of t id)
    end
  done;
  (seen_clusters, seen_pages)

let fetch_set t vpage =
  match Hashtbl.find_opt t.fetch_cache vpage with
  | Some (g, set) when g = t.gen -> set
  | _ ->
    let set =
      if not (registered t vpage) then [ vpage ]
      else
        let _, pages = reachable_clusters t vpage in
        Hashtbl.fold (fun p () acc -> p :: acc) pages [] |> List.sort Int.compare
    in
    Hashtbl.replace t.fetch_cache vpage (t.gen, set);
    set

let evict_set t vpage =
  match Hashtbl.find_opt t.evict_cache vpage with
  | Some (g, set) when g = t.gen -> set
  | _ ->
    let set =
      match ay_get_cluster_ids t vpage with
      | [] -> [ vpage ]
      | id :: _ -> List.sort Int.compare (pages_of t id)
    in
    Hashtbl.replace t.evict_cache vpage (t.gen, set);
    set

let invariant_holds t ~resident =
  List.for_all
    (fun vp ->
      resident vp
      || List.exists
           (fun id -> List.for_all (fun p -> not (resident p)) (pages_of t id))
           (ay_get_cluster_ids t vp))
    (registered_pages t)
