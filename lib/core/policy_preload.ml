(* Heisenberg-style proactive preloading: keep the whole protected
   working set EPC-resident so the page-fault channel never opens.

   Where the demand policies obscure *which* page a fault asked for,
   preloading removes the fault itself: every page of the preload set is
   fetched eagerly, so steady-state execution takes no paging fault at
   all and the OS observes one constant fetch batch whose composition
   depends only on the set (never on the access that triggered it).

   A miss can still happen legitimately — the OS reclaimed frames
   through ballooning, or a page outside the original set was touched.
   The response re-fetches the *entire* non-resident part of the set in
   one batch, so the faulting page is hidden inside a refill whose
   contents are a function of (set, residency) only.

   The guarantee is conditional on capacity: the set must fit in the
   pager budget alongside whatever else is resident.  [create] refuses
   (Invalid_argument) when it does not — the defense controller treats
   that as a failed escalation and backs off, mirroring Heisenberg's
   own EPC-capacity limitation. *)

type t = {
  runtime : Runtime.t;
  set : (Sgx.Types.vpage, unit) Hashtbl.t;
  order : Sgx.Types.vpage Queue.t;  (* FIFO over set members *)
  mutable capacity : int;  (* max set size; shrinks under pressure *)
  mutable min_capacity : int;
  mutable preloads : int;  (* batch refills performed *)
  mutable balloon_calls : int;
  c_degraded : Metrics.Counters.cell;
}

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "preload") (k ())

let set_size t = Hashtbl.length t.set
let capacity t = t.capacity
let preloads t = t.preloads
let in_set t vp = Hashtbl.mem t.set vp

let add_member t vp =
  if not (Hashtbl.mem t.set vp) then begin
    Hashtbl.replace t.set vp ();
    Queue.push vp t.order
  end

(* Evict the oldest set member (membership and residence) to make room
   for a page joining a full set. *)
let retire_oldest t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some old ->
    Hashtbl.remove t.set old;
    let pager = Runtime.pager t.runtime in
    if Pager.resident pager old then Pager.evict pager [ old ]

(* Non-set resident pages in FIFO order — the only legitimate victims;
   evicting a set member to admit a set member would defeat pinning. *)
let victims t pager () =
  List.filter (fun vp -> not (in_set t vp)) (Pager.oldest_residents pager 64)

(* Fetch every non-resident set member in one batch. *)
let preload t =
  let pager = Runtime.pager t.runtime in
  let need =
    Queue.fold
      (fun acc vp -> if Pager.resident pager vp then acc else vp :: acc)
      [] t.order
    |> List.rev
  in
  if need <> [] then begin
    emit t (fun () ->
        Trace.Event.Decision
          { policy = "preload"; action = "preload-refill"; vpages = need });
    Pager.make_room pager ~incoming:(List.length need) ~victims:(victims t pager);
    Pager.fetch pager need;
    t.preloads <- t.preloads + 1
  end

let create ~runtime ?(min_capacity = 16) ~pages () =
  if min_capacity <= 0 then
    invalid_arg "Policy_preload.create: min_capacity must be positive";
  let pager = Runtime.pager runtime in
  let distinct = List.sort_uniq compare pages in
  let n = List.length distinct in
  (* Residency already held by pages outside the set (pinned code, ORAM
     cache, runtime metadata) stays resident and counts against the
     budget; the set must fit in what remains. *)
  let resident_outside =
    Pager.resident_count pager
    - List.length (List.filter (Pager.resident pager) distinct)
  in
  if n + resident_outside > Pager.budget pager then
    invalid_arg
      (Printf.sprintf
         "Policy_preload.create: preload set of %d pages (+%d resident \
          outside it) exceeds the pager budget of %d"
         n resident_outside (Pager.budget pager));
  let t =
    {
      runtime;
      set = Hashtbl.create (2 * max 16 n);
      order = Queue.create ();
      capacity = max min_capacity n;
      min_capacity;
      preloads = 0;
      balloon_calls = 0;
      c_degraded =
        Metrics.Counters.cell
          (Sgx.Machine.counters (Runtime.machine runtime))
          "rt.policy_degraded";
    }
  in
  List.iter (add_member t) distinct;
  t

let on_miss t vp _sf =
  (* A miss on a set member means the OS legitimately reclaimed it
     (ballooning); a miss outside the set is a page joining the working
     set.  Either way the answer is the same constant-shape refill. *)
  if not (in_set t vp) then begin
    if set_size t >= t.capacity then retire_oldest t;
    add_member t vp
  end;
  preload t

(* Ballooning: a single upcall is refused — every set member is
   sensitive, and Heisenberg's guarantee is exactly their residence.
   Under sustained pressure refusal invites forced eviction (which
   looks like an attack and kills the enclave), so the policy degrades:
   retire the oldest members (FIFO batch, content-independent) and
   shrink the capacity so the set does not immediately regrow. *)
let balloon t n =
  t.balloon_calls <- t.balloon_calls + 1;
  if t.balloon_calls < 2 then 0
  else begin
    let released = ref 0 in
    let releasable () = set_size t > t.min_capacity in
    while !released < n && releasable () do
      retire_oldest t;
      incr released
    done;
    if !released > 0 then begin
      t.capacity <- max t.min_capacity (t.capacity - !released);
      Metrics.Counters.cell_incr t.c_degraded;
      emit t (fun () ->
          Trace.Event.Decision
            { policy = "preload"; action = "degrade-retire-members";
              vpages = [] })
    end;
    !released
  end

let policy t =
  {
    Runtime.pol_name = "preload";
    pol_on_miss = (fun vp sf -> on_miss t vp sf);
    pol_balloon = (fun n -> balloon t n);
  }
