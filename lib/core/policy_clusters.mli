(** Cluster-granularity self-paging (§5.2.3).

    On a legitimate miss, the policy fetches the full transitive sharing
    set of the faulting page's clusters (see {!Clusters.fetch_set}), so
    the OS learns only that *some* page of the set was touched.  Eviction
    picks the FIFO-oldest resident page and evicts one whole cluster
    containing it — single-cluster eviction preserves the residence
    invariant; clusters overlapping the incoming fetch set are skipped as
    victims. *)

type t

val create : runtime:Runtime.t -> clusters:Clusters.t -> t

val set_min_budget : t -> int -> unit
(** The floor (default 32) the pager budget degrades toward under
    sustained memory-pressure upcalls: the first balloon call only
    evicts whole clusters; the second and further ones also shrink the
    budget, counted in ["rt.policy_degraded"].  Keep it larger than the
    biggest cluster fetch set. *)

val policy : t -> Runtime.policy
val clusters : t -> Clusters.t
val cluster_fetches : t -> int
(** Number of cluster-granularity fetch operations performed. *)
