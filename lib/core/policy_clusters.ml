type t = {
  runtime : Runtime.t;
  cl : Clusters.t;
  mutable min_budget : int;
  mutable fetches : int;
  mutable balloon_calls : int;
  in_fetch : Sgx.Flat.t;  (* scratch: pages of the current fetch set *)
  c_degraded : Metrics.Counters.cell;
}

let create ~runtime ~clusters =
  {
    runtime;
    cl = clusters;
    min_budget = 32;
    fetches = 0;
    balloon_calls = 0;
    in_fetch = Sgx.Flat.create ~size:256 ();
    c_degraded =
      Metrics.Counters.cell
        (Sgx.Machine.counters (Runtime.machine runtime))
        "rt.policy_degraded";
  }

let set_min_budget t n =
  assert (n > 0);
  t.min_budget <- n
let clusters t = t.cl
let cluster_fetches t = t.fetches

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "page-clusters") (k ())

(* A victim cluster must not overlap the incoming fetch set: evicting
   pages we are about to fetch would both waste work and break the
   residence invariant for partially-evicted clusters. *)
let choose_victims t ~fetching () =
  let pager = Runtime.pager t.runtime in
  Sgx.Flat.clear t.in_fetch;
  List.iter (fun vp -> Sgx.Flat.set t.in_fetch vp 1) fetching;
  let candidates = Pager.oldest_residents pager 64 in
  let rec pick = function
    | [] -> []
    | vp :: rest ->
      let set = Clusters.evict_set t.cl vp in
      if List.exists (Sgx.Flat.mem t.in_fetch) set then pick rest
      else List.filter (Pager.resident pager) set
  in
  pick candidates

let on_miss t vp _sf =
  let pager = Runtime.pager t.runtime in
  let fetch_set = Clusters.fetch_set t.cl vp in
  let need = List.filter (fun p -> not (Pager.resident pager p)) fetch_set in
  if List.length need > Pager.budget pager then
    Sgx.Types.sgx_errorf
      "cluster fetch set of %d pages exceeds the runtime budget of %d"
      (List.length need) (Pager.budget pager);
  (* Inlined emit: the thunk form would capture [need] and allocate a
     closure per miss even with tracing off. *)
  (match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "page-clusters")
      (Trace.Event.Decision
         { policy = "page-clusters"; action = "cluster-fetch"; vpages = need }));
  Pager.make_room pager ~incoming:(List.length need)
    ~victims:(choose_victims t ~fetching:need);
  Pager.fetch pager need;
  t.fetches <- t.fetches + 1

(* Ballooning: release whole clusters only — single-cluster eviction
   preserves the residence invariant.  Sustained pressure (a second and
   further upcalls) also shrinks the pager budget toward [min_budget]
   (which must stay above the largest cluster fetch set): degraded
   cluster churn instead of a starvation termination. *)
let balloon t n =
  t.balloon_calls <- t.balloon_calls + 1;
  let pager = Runtime.pager t.runtime in
  let released = ref 0 in
  let stuck = ref false in
  while !released < n && not !stuck do
    match choose_victims t ~fetching:[] () with
    | [] -> stuck := true
    | vs ->
      Pager.evict pager vs;
      released := !released + List.length vs
  done;
  if t.balloon_calls >= 2 then begin
    let shrunk = max t.min_budget (Pager.budget pager - n) in
    if shrunk < Pager.budget pager then begin
      Pager.set_budget pager shrunk;
      Metrics.Counters.cell_incr t.c_degraded;
      emit t (fun () ->
          Trace.Event.Decision
            { policy = "page-clusters"; action = "degrade-shrink-budget";
              vpages = [] })
    end
  end;
  !released

let policy t =
  { Runtime.pol_name = "page-clusters";
    pol_on_miss = (fun vp sf -> on_miss t vp sf);
    pol_balloon = (fun n -> balloon t n) }
