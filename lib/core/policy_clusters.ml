type t = {
  runtime : Runtime.t;
  cl : Clusters.t;
  mutable fetches : int;
}

let create ~runtime ~clusters = { runtime; cl = clusters; fetches = 0 }
let clusters t = t.cl
let cluster_fetches t = t.fetches

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "page-clusters") (k ())

(* A victim cluster must not overlap the incoming fetch set: evicting
   pages we are about to fetch would both waste work and break the
   residence invariant for partially-evicted clusters. *)
let choose_victims t ~fetching () =
  let pager = Runtime.pager t.runtime in
  let in_fetch = Hashtbl.create 64 in
  List.iter (fun vp -> Hashtbl.replace in_fetch vp ()) fetching;
  let candidates = Pager.oldest_residents pager 64 in
  let rec pick = function
    | [] -> []
    | vp :: rest ->
      let set = Clusters.evict_set t.cl vp in
      if List.exists (Hashtbl.mem in_fetch) set then pick rest
      else List.filter (Pager.resident pager) set
  in
  pick candidates

let on_miss t vp _sf =
  let pager = Runtime.pager t.runtime in
  let fetch_set = Clusters.fetch_set t.cl vp in
  let need = List.filter (fun p -> not (Pager.resident pager p)) fetch_set in
  if List.length need > Pager.budget pager then
    Sgx.Types.sgx_errorf
      "cluster fetch set of %d pages exceeds the runtime budget of %d"
      (List.length need) (Pager.budget pager);
  emit t (fun () ->
      Trace.Event.Decision
        { policy = "page-clusters"; action = "cluster-fetch"; vpages = need });
  Pager.make_room pager ~incoming:(List.length need)
    ~victims:(choose_victims t ~fetching:need);
  Pager.fetch pager need;
  t.fetches <- t.fetches + 1

(* Ballooning: release whole clusters only — single-cluster eviction
   preserves the residence invariant. *)
let balloon t n =
  let pager = Runtime.pager t.runtime in
  let released = ref 0 in
  let stuck = ref false in
  while !released < n && not !stuck do
    match choose_victims t ~fetching:[] () with
    | [] -> stuck := true
    | vs ->
      Pager.evict pager vs;
      released := !released + List.length vs
  done;
  !released

let policy t =
  { Runtime.pol_name = "page-clusters";
    pol_on_miss = (fun vp sf -> on_miss t vp sf);
    pol_balloon = (fun n -> balloon t n) }
