type writeback = [ `Always | `Dirty_only ]

type t = {
  machine : Sgx.Machine.t;
  enclave : Sgx.Enclave.t;
  touch : Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit;
  oram : Oram.Path_oram.t;
  writeback : writeback;
  data_base : Sgx.Types.vpage;
  n_pages : int;
  cache_base : Sgx.Types.vpage;
  capacity : int;
  (* Slots [0, live) are in use; slots [live, capacity) have been
     released under memory pressure ({!shrink}) and are never touched
     again.  [live] only decreases. *)
  mutable live : int;
  slots : int array;
  slot_of : int array;  (* block -> occupying slot, -1 when uncached *)
  dirty : bool array;
  mutable hand : int;
  mutable hit_count : int;
  mutable miss_count : int;
  c_miss : Metrics.Counters.cell;
}

let create ?(writeback = `Dirty_only) ~machine ~enclave ~touch ~oram
    ~data_base_vpage ~n_pages ~cache_base_vpage ~capacity_pages () =
  assert (n_pages > 0 && capacity_pages > 0);
  assert (n_pages <= Oram.Path_oram.n_blocks oram);
  {
    machine;
    enclave;
    touch;
    oram;
    writeback;
    data_base = data_base_vpage;
    n_pages;
    cache_base = cache_base_vpage;
    capacity = capacity_pages;
    live = capacity_pages;
    slots = Array.make capacity_pages (-1);
    (* Blocks are dense in [0, n_pages): a flat block -> slot table
       makes the hit path a single array read. *)
    slot_of = Array.make n_pages (-1);
    dirty = Array.make capacity_pages false;
    hand = 0;
    hit_count = 0;
    miss_count = 0;
    c_miss = Metrics.Counters.cell (Sgx.Machine.counters machine) "oram_cache.miss";
  }

let in_data_region t vaddr =
  let vp = Sgx.Types.vpage_of_vaddr vaddr in
  vp >= t.data_base && vp < t.data_base + t.n_pages

let data_region t = (t.data_base, t.n_pages)
let hits t = t.hit_count
let misses t = t.miss_count
let live_capacity t = t.live

let cache_page_data t slot =
  match
    Sgx.Instructions.page_data t.machine t.enclave ~vpage:(t.cache_base + slot)
  with
  | Some d -> d
  | None ->
    Sgx.Types.sgx_errorf "ORAM cache page %d (0x%x) is not resident" slot
      (t.cache_base + slot)

let oblivious_copy_cost t =
  let m = Sgx.Machine.model t.machine in
  Sim_crypto.Oblivious.scan_cost m ~entries:1 ~entry_bytes:m.page_bytes

let blit_page ~src ~dst =
  let s = Sgx.Page_data.to_bytes src and d = Sgx.Page_data.to_bytes dst in
  let n = min (Bytes.length s) (Bytes.length d) in
  Bytes.blit s 0 d 0 n

(* Swap a block into a cache slot: write the previous occupant back to
   the ORAM, then fetch the new block.  Each direction is an oblivious
   page copy.  Under [`Dirty_only] (CoSMIX's policy, the default) clean
   pages are dropped without an ORAM write — cheaper, but the write-back
   pattern then reveals page dirtiness; [`Always] hides it. *)
let fill_slot t slot block =
  let cache_data = cache_page_data t slot in
  let old_block = t.slots.(slot) in
  if old_block >= 0 then begin
    if t.writeback = `Always || t.dirty.(slot) then begin
      Sgx.Machine.charge t.machine (oblivious_copy_cost t);
      Oram.Path_oram.access t.oram ~block:old_block (fun oram_data ->
          blit_page ~src:cache_data ~dst:oram_data)
    end;
    t.slot_of.(old_block) <- -1
  end;
  Sgx.Machine.charge t.machine (oblivious_copy_cost t);
  Oram.Path_oram.access t.oram ~block (fun oram_data ->
      blit_page ~src:oram_data ~dst:cache_data);
  t.slots.(slot) <- block;
  t.dirty.(slot) <- false;
  t.slot_of.(block) <- slot

let slot_for t vaddr kind =
  let m = Sgx.Machine.model t.machine in
  (* Instrumentation overhead of the cache lookup itself. *)
  Sgx.Machine.charge t.machine (3 * m.mem_access);
  if not (in_data_region t vaddr) then
    invalid_arg "Oram_cache.access: address outside the protected region";
  let block = Sgx.Types.vpage_of_vaddr vaddr - t.data_base in
  match t.slot_of.(block) with
  | slot when slot >= 0 ->
    t.hit_count <- t.hit_count + 1;
    slot
  | _ ->
    t.miss_count <- t.miss_count + 1;
    Metrics.Counters.cell_incr t.c_miss;
    let slot = t.hand in
    t.hand <- (t.hand + 1) mod t.live;
    fill_slot t slot block;
    ignore kind;
    slot

(* Graceful degradation under memory pressure: give up the top cache
   slots (writing dirty occupants back to the ORAM first) and return the
   released cache vpages so the caller can hand their frames back to the
   OS.  The cache keeps at least a quarter of its original capacity —
   shrinking to nothing would turn every access into a full ORAM round
   trip *and* leave the round-robin hand nowhere to point. *)
let shrink t ~pages =
  let min_live = max 1 (t.capacity / 4) in
  let target = max min_live (t.live - pages) in
  let released = ref [] in
  while t.live > target do
    let slot = t.live - 1 in
    let block = t.slots.(slot) in
    if block >= 0 then begin
      if t.writeback = `Always || t.dirty.(slot) then begin
        Sgx.Machine.charge t.machine (oblivious_copy_cost t);
        Oram.Path_oram.access t.oram ~block (fun oram_data ->
            blit_page ~src:(cache_page_data t slot) ~dst:oram_data)
      end;
      t.slot_of.(block) <- -1;
      t.slots.(slot) <- -1;
      t.dirty.(slot) <- false
    end;
    t.live <- slot;
    released := (t.cache_base + slot) :: !released
  done;
  if t.hand >= t.live then t.hand <- 0;
  !released

(* Policy-switch handoff: push every live occupant back to the ORAM
   (dirty ones — or all of them under [`Always] — through the oblivious
   protocol) and empty the cache, so the oblivious store is the single
   authoritative copy.  The cache stays usable afterwards; callers that
   are tearing the ORAM policy down evict the cache pages next. *)
let flush t =
  let written = ref 0 in
  for slot = 0 to t.live - 1 do
    let block = t.slots.(slot) in
    if block >= 0 then begin
      if t.writeback = `Always || t.dirty.(slot) then begin
        Sgx.Machine.charge t.machine (oblivious_copy_cost t);
        Oram.Path_oram.access t.oram ~block (fun oram_data ->
            blit_page ~src:(cache_page_data t slot) ~dst:oram_data);
        incr written
      end;
      t.slot_of.(block) <- -1;
      t.slots.(slot) <- -1;
      t.dirty.(slot) <- false
    end
  done;
  t.hand <- 0;
  !written

let access t vaddr kind =
  let slot = slot_for t vaddr kind in
  let offset = vaddr land (Sgx.Types.page_bytes - 1) in
  t.touch (Sgx.Types.vaddr_of_vpage (t.cache_base + slot) + offset) kind;
  if kind = Sgx.Types.Write then t.dirty.(slot) <- true

let read_stamp t vaddr =
  let slot = slot_for t vaddr Sgx.Types.Read in
  t.touch (Sgx.Types.vaddr_of_vpage (t.cache_base + slot)) Sgx.Types.Read;
  Sgx.Page_data.read_int (cache_page_data t slot)

let write_stamp t vaddr v =
  let slot = slot_for t vaddr Sgx.Types.Write in
  t.touch (Sgx.Types.vaddr_of_vpage (t.cache_base + slot)) Sgx.Types.Write;
  t.dirty.(slot) <- true;
  Sgx.Page_data.fill_int (cache_page_data t slot) v
