type eviction = [ `Fifo | `Fault_frequency ]

type t = {
  runtime : Runtime.t;
  max_faults_per_unit : int;
  evict_batch : int;
  eviction : eviction;
  min_budget : int;
  fault_counts : Sgx.Flat.t;  (* vpage -> faults observed on it *)
  mutable window : int;
  mutable total : int;
  mutable balloon_calls : int;
  (* Built once at construction so the miss path passes a preallocated
     victim generator to [Pager.make_room] instead of closing over the
     pager on every fault. *)
  mutable victims_fn : unit -> Sgx.Types.vpage list;
  c_degraded : Metrics.Counters.cell;
}

let emit t k =
  match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "rate-limit") (k ())

let progress t = t.window <- 0
let faults_in_window t = t.window
let total_faults t = t.total

let fault_count t vp = Sgx.Flat.find_default t.fault_counts vp 0

let victims t pager () =
  match t.eviction with
  | `Fifo -> Pager.oldest_residents pager t.evict_batch
  | `Fault_frequency ->
    (* Consider a wider window of old pages and keep the frequently
       faulting (hot) ones resident: evict the least-faulted. *)
    let candidates = Pager.oldest_residents pager (4 * t.evict_batch) in
    let ranked =
      List.stable_sort
        (fun a b -> Int.compare (fault_count t a) (fault_count t b))
        candidates
    in
    List.filteri (fun i _ -> i < t.evict_batch) ranked

let create ~runtime ?(max_faults_per_unit = max_int) ?(evict_batch = 16)
    ?(eviction = `Fifo) ?(min_budget = 16) () =
  assert (max_faults_per_unit > 0 && evict_batch > 0 && min_budget > 0);
  let t =
    {
      runtime;
      max_faults_per_unit;
      evict_batch;
      eviction;
      min_budget;
      fault_counts = Sgx.Flat.create ~size:4096 ();
      window = 0;
      total = 0;
      balloon_calls = 0;
      victims_fn = (fun () -> []);
      c_degraded =
        Metrics.Counters.cell
          (Sgx.Machine.counters (Runtime.machine runtime))
          "rt.policy_degraded";
    }
  in
  t.victims_fn <- victims t (Runtime.pager runtime);
  t

let on_miss t vp _sf =
  t.window <- t.window + 1;
  t.total <- t.total + 1;
  Sgx.Flat.set t.fault_counts vp (fault_count t vp + 1);
  if t.window > t.max_faults_per_unit then begin
    let reason =
      Printf.sprintf
        "page-fault rate limit exceeded (%d faults without progress): \
         suspected controlled-channel attack"
        t.window
    in
    emit t (fun () -> Trace.Event.Terminate { reason });
    Sgx.Enclave.terminate (Runtime.enclave t.runtime) ~reason
  end;
  (* Inlined emit: the thunk form would capture [vp] and allocate a
     closure per miss even with tracing off. *)
  (match Sgx.Machine.tracer (Runtime.machine t.runtime) with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(Runtime.enclave t.runtime).Sgx.Enclave.id
      ~actor:(Trace.Event.Policy "rate-limit")
      (Trace.Event.Decision
         { policy = "rate-limit"; action = "demand-fetch"; vpages = [ vp ] }));
  let pager = Runtime.pager t.runtime in
  Pager.make_room pager ~incoming:1 ~victims:t.victims_fn;
  Pager.fetch_one pager vp

(* Ballooning: FIFO/frequency batch eviction leaks no more than the
   policy's normal eviction traffic.  Under sustained pressure (a
   second and further upcalls) the policy also shrinks the pager budget
   toward [min_budget] so subsequent paging stays inside what the OS
   can actually provide — degraded throughput instead of a starvation
   termination. *)
let balloon t n =
  t.balloon_calls <- t.balloon_calls + 1;
  let pager = Runtime.pager t.runtime in
  let released = ref 0 in
  let stuck = ref false in
  while !released < n && not !stuck do
    match t.victims_fn () with
    | [] -> stuck := true
    | vs ->
      let take = List.filteri (fun i _ -> i < n - !released) vs in
      Pager.evict pager take;
      released := !released + List.length take
  done;
  if t.balloon_calls >= 2 then begin
    let shrunk = max t.min_budget (Pager.budget pager - n) in
    if shrunk < Pager.budget pager then begin
      Pager.set_budget pager shrunk;
      Metrics.Counters.cell_incr t.c_degraded;
      emit t (fun () ->
          Trace.Event.Decision
            { policy = "rate-limit"; action = "degrade-shrink-budget";
              vpages = [] })
    end
  end;
  !released

let policy t =
  { Runtime.pol_name = "rate-limit";
    pol_on_miss = (fun vp sf -> on_miss t vp sf);
    pol_balloon = (fun n -> balloon t n) }
