(** Rate-limited demand paging for unmodified binaries (§5.2.4).

    The weakest (but zero-change) policy: enclave-managed data pages use
    ordinary demand paging inside the enclave — each legitimate fault
    fetches exactly the faulting page — so cold-page accesses leak
    through the demand-paging side channel.  To bound what an active
    attacker can extract, the policy enforces an application-specific cap
    on faults per unit of forward progress (I/O calls, allocations,
    requests — whatever the libOS can observe, since the enclave has no
    trusted clock); exceeding the cap terminates the enclave.

    Eviction happens in batches (mirroring the SGX driver's 16-page
    batches) under one of two victim policies.  Accessed bits are not
    available to a self-paging enclave, so §5.1.4 suggests learning from
    fault frequency instead:
    {ul
    {- [`Fifo] — evict the oldest resident pages (the default).}
    {- [`Fault_frequency] — among the oldest candidates prefer the pages
       that have faulted least: frequently-refetched ("hot") pages stay
       resident, like Linux's NUMA page-migration heuristic.}} *)

type eviction = [ `Fifo | `Fault_frequency ]

type t

val create :
  runtime:Runtime.t -> ?max_faults_per_unit:int -> ?evict_batch:int ->
  ?eviction:eviction -> ?min_budget:int -> unit -> t
(** [max_faults_per_unit] defaults to [max_int] (no limit — pure demand
    paging); [evict_batch] defaults to 16; [eviction] to [`Fifo].
    [min_budget] (default 16) is the floor the pager budget degrades
    toward under sustained memory-pressure upcalls: the first balloon
    call only evicts, the second and further ones also shrink the
    budget (counted in ["rt.policy_degraded"]). *)

val policy : t -> Runtime.policy
(** Install with {!Runtime.set_policy}. *)

val progress : t -> unit
(** Record one unit of application progress (resets the fault window).
    Wired to the workload's progress events by the harness. *)

val faults_in_window : t -> int
val total_faults : t -> int

val fault_count : t -> Sgx.Types.vpage -> int
(** How often a page has faulted (drives [`Fault_frequency]). *)
