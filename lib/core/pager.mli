(** The runtime's trusted paging engine for enclave-managed pages.

    Tracks the residence of every enclave-managed page (the ground truth
    the fault handler compares OS behaviour against), enforces the
    runtime's EPC budget, and implements both paging mechanisms the
    prototype supports (§6):

    {ul
    {- [`Sgx1]: the privileged EWB/ELDU instructions, driven by the OS
       through the batched [ay_fetch_pages]/[ay_evict_pages] calls.}
    {- [`Sgx2]: in-enclave paging with the dynamic-memory instructions —
       eviction is EMODPR+EACCEPT, seal-and-store to untrusted memory,
       EMODT+EACCEPT, then a batched EREMOVE host call; fetching is a
       batched EAUG host call followed by unseal + EACCEPTCOPY.  The
       runtime's own ChaCha20+SipHash sealer with per-page version
       counters provides confidentiality, integrity and freshness.}} *)

type mech = [ `Sgx1 | `Sgx2 ]
type vpage = Sgx.Types.vpage

type t

val create :
  machine:Sgx.Machine.t -> enclave:Sgx.Enclave.t -> os:Os_iface.t ->
  mech:mech -> budget:int -> t
(** [budget] is the maximum number of enclave-managed pages kept resident
    at once. *)

val mech : t -> mech
val budget : t -> int
val set_budget : t -> int -> unit
val resident : t -> vpage -> bool
val resident_count : t -> int
val note_initial_residence : t -> (vpage * bool) list -> unit
(** Seed the tracker from [ay_set_enclave_managed]'s reply. *)

val oldest_resident : t -> vpage option
(** FIFO victim candidate (the runtime cannot use accessed bits). *)

val oldest_residents : t -> int -> vpage list
(** Up to [n] distinct resident pages in FIFO order. *)

val fetch : t -> vpage list -> unit
(** Bring the given non-resident pages in (already-resident pages are
    skipped).  The caller must have made room within the budget.
    Transient [`Epc_exhausted] refusals are retried with exponential
    backoff (bounded; counted in ["rt.fetch_retries"]); a persistent
    refusal terminates the enclave (the OS broke the pinning contract
    or is starving us — §5.2.1), and a missing, tampered or replayed
    backing-store blob terminates immediately as a detected attack. *)

val fetch_one : t -> vpage -> unit
(** [fetch t [vp]] without the batch plumbing: the allocation-free fast
    path the fault handler runs on every miss.  Identical counters,
    charges, trace events and failure behaviour. *)

val evict : t -> vpage list -> unit
(** Write the given resident pages out (non-resident ones are skipped). *)

val make_room : t -> incoming:int -> victims:(unit -> vpage list) -> unit
(** Evict batches returned by [victims] until [incoming] more pages fit
    in the budget.  [victims] must return a non-empty list of resident
    pages; the enclave terminates if it cannot. *)
