(** The runtime's view of the untrusted OS: the Autarky system calls of
    §5.2.1 plus the SGXv2 support calls.

    The runtime never trusts these functions for anything but liveness:
    every security-relevant outcome (page contents, residence) is
    re-checked in-enclave by hardware (EPCM, MAC/versions) or by the
    runtime's own tracking.  The record is wired to the simulated kernel
    by the harness; keeping it a record of closures keeps the trusted
    runtime free of any dependency on OS internals.

    Every liveness-relevant call returns a [result] so a Byzantine OS
    (or the fault-injection layer interposed by the harness) cannot
    crash the runtime with an unexpected exception: transient refusals
    ([`Epc_exhausted]) are retried with backoff, while blob faults —
    deleted, tampered or replayed backing-store pages — are *detected*
    attacks that terminate the enclave. *)

type vpage = Sgx.Types.vpage

(** Why the OS failed to produce a requested page. *)
type fetch_error =
  [ `Epc_exhausted        (** no EPC headroom (possibly transient) *)
  | `Blob_missing of vpage
        (** backing store has no blob and the page is not resident: the
            OS deleted or withheld it *)
  | `Blob_mac_mismatch of vpage  (** blob tampered (ELDU MAC failure) *)
  | `Blob_replayed of vpage      (** stale blob (anti-replay failure) *)
  ]

val pp_fetch_error : Format.formatter -> fetch_error -> unit

type t = {
  set_enclave_managed : vpage list -> (vpage * bool) list;
      (** claim pages for self-paging; returns current residence *)
  set_os_managed : vpage list -> unit;
  fetch_pages : vpage list -> (unit, fetch_error) result;
      (** SGXv1: ELDU + map (batched) *)
  fetch_page : vpage -> (unit, fetch_error) result;
      (** single-page twin of [fetch_pages]: the per-fault fast path;
          must behave exactly as [fetch_pages [vp]] — interposing
          layers wrap both *)
  evict_pages : vpage list -> unit;
      (** SGXv1: EWB + unmap (batched) *)
  aug_pages : vpage list -> (unit, [ `Epc_exhausted ]) result;
      (** SGXv2: EAUG + map (batched) *)
  aug_page : vpage -> (unit, [ `Epc_exhausted ]) result;
      (** single-page twin of [aug_pages] (SGXv2 per-fault fast path) *)
  remove_pages : vpage list -> unit;
      (** SGXv2: EREMOVE + unmap trimmed pages (batched) *)
  blob_store : vpage -> Sim_crypto.Sealer.sealed -> unit;
      (** direct store of a runtime-sealed page to untrusted memory *)
  blob_load : vpage -> Sim_crypto.Sealer.sealed option;
  page_in_os_managed : vpage -> (unit, fetch_error) result;
      (** forward a fault on an OS-managed page to the OS pager *)
  epc_headroom : unit -> int;
}
