(** ORAM-backed secure paging (§5.2.2).

    Under this policy the protected data region never demand-pages:
    every access to it is instrumented to go through the enclave-managed
    {!Oram_cache}.  All remaining enclave-managed pages (code, stack,
    cache, ORAM metadata) are pinned, so the runtime-level policy is the
    pinned one — any fault on them is an attack.  There is no leak: the
    OS sees only the oblivious PathORAM traffic.

    A single memory-pressure upcall is refused (everything is
    sensitive); sustained pressure (a second and further upcalls)
    degrades gracefully instead of risking forced eviction: the ORAM
    cache shrinks — down to a quarter of its capacity — and the freed,
    obliviously written-back cache pages are released to the OS
    (counted in ["rt.policy_degraded"]). *)

type t

val create : runtime:Runtime.t -> cache:Oram_cache.t -> t
val policy : t -> Runtime.policy
val cache : t -> Oram_cache.t

val accessor :
  t ->
  fallback:(Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit) ->
  Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit
(** The instrumented memory accessor: data-region accesses go through
    the cache, everything else to [fallback] (the plain CPU path). *)

val uncached_accessor :
  oram:Oram.Path_oram.t -> data_base_vpage:Sgx.Types.vpage -> n_pages:int ->
  fallback:(Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit) ->
  Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit
(** The no-Autarky baseline (CoSMIX as published): every data-region
    access runs the full ORAM protocol — create the ORAM with
    [`Oblivious_scan] metadata to also charge the CMOV metadata scans.
    Usable without any Autarky runtime. *)
