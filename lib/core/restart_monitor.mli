(** Restart-attack detection (§3).

    Autarky turns controlled-channel probes into enclave terminations;
    the residual channel is the *termination attack*: restart the victim
    and probe again, one bit per run.  The paper's defence is that "users
    or trusted services could detect unusually frequent restarts" through
    attestation at startup (or a parent enclave managing its children's
    lifecycle, as in Graphene-SGX's multi-process mode).

    This module is that trusted service: each (attested) enclave start
    and each termination is recorded against the virtual clock; when the
    restart rate inside the sliding window exceeds the configured budget
    the monitor flags the identity, and a deployment would refuse further
    attestations — capping the total leakage of the termination channel
    at [max_restarts] bits per window. *)

type t

type verdict = Allow | Refuse
(** What the attestation service answers at enclave start. *)

val create :
  clock:Metrics.Clock.t -> ?window_cycles:int -> ?max_restarts:int -> unit -> t
(** Defaults: a 1-second window at the model frequency, 3 restarts.

    Window boundary semantics: a start exactly [window_cycles] old still
    counts ([now - ts <= window]); it ages out one cycle later.

    @raise Invalid_argument when [window_cycles <= 0] (a zero-width
    window would make every restart storm invisible) or
    [max_restarts <= 0]. *)

val record_start : t -> identity:string -> verdict
(** An enclave with the given (attested) measurement asks to start. *)

val record_termination : t -> identity:string -> reason:string -> unit

val restarts_in_window : t -> identity:string -> int

val total_restarts : t -> identity:string -> int
(** Lifetime restarts; saturates at [max_int] instead of wrapping. *)

val total_terminations : t -> identity:string -> int
(** Lifetime terminations recorded for this identity (saturating).
    Unlike {!last_reasons} this count keeps growing after the forensics
    ledger is full, so per-window deltas stay meaningful. *)

val refused : t -> identity:string -> bool
(** Whether this identity has been cut off. *)

val max_reasons : int
(** Retention bound of the forensics ledger: only the newest
    [max_reasons] termination reasons are kept per identity. *)

val last_reasons : t -> identity:string -> string list
(** Most recent termination reasons, newest first (forensics; at most
    {!max_reasons} entries — older reasons are dropped, the
    {!total_terminations} counter is not). *)

val leaked_bits_bound : t -> identity:string -> float
(** Upper bound on what the termination channel can have conveyed:
    one bit per completed probe, i.e. per restart (§5.3). *)
