type mech = [ `Sgx1 | `Sgx2 ]
type vpage = Sgx.Types.vpage

type t = {
  machine : Sgx.Machine.t;
  enclave : Sgx.Enclave.t;
  os : Os_iface.t;
  pager_mech : mech;
  mutable budget : int;
  resident_set : Sgx.Flat.t;  (* vpage -> 1 when resident *)
  (* FIFO of (page, seq) as a power-of-two int ring: only the entry
     carrying a page's latest seq is live, so a page refetched after
     eviction takes a fresh position at the back instead of inheriting
     its ancient slot. *)
  mutable fq_vp : int array;
  mutable fq_seq : int array;
  mutable fq_head : int;  (* absolute pop index *)
  mutable fq_tail : int;  (* absolute push index *)
  seq_of : Sgx.Flat.t;  (* vpage -> latest seq (>= 1) *)
  mutable seq_counter : int;
  sealer : Sim_crypto.Sealer.t;  (* runtime paging keys (SGXv2 path) *)
  versions : Sgx.Flat.t;  (* vpage -> version; monotonic from 1, fits an int *)
  mutable version_counter : int;
  (* Scratch for the SGXv2 eviction batch: vpages and plaintext
     snapshots between the prepare and seal phases, reused across
     batches so eviction builds no intermediate lists. *)
  mutable ev_pages : int array;
  mutable ev_plain : bytes array;
  (* Counter cells interned at construction: fetch/evict run on every
     policy decision and must not hash counter names. *)
  c_pages_fetched : Metrics.Counters.cell;
  c_pages_evicted : Metrics.Counters.cell;
  c_fetch_batches : Metrics.Counters.cell;
  c_evict_batches : Metrics.Counters.cell;
  c_fetch_retries : Metrics.Counters.cell;
  c_attack_detected : Metrics.Counters.cell;
}

let create ~machine ~enclave ~os ~mech ~budget =
  assert (budget > 0);
  let cell = Metrics.Counters.cell (Sgx.Machine.counters machine) in
  {
    machine;
    enclave;
    os;
    pager_mech = mech;
    budget;
    resident_set = Sgx.Flat.create ~size:4096 ();
    fq_vp = Array.make 1024 0;
    fq_seq = Array.make 1024 0;
    fq_head = 0;
    fq_tail = 0;
    seq_of = Sgx.Flat.create ~size:4096 ();
    seq_counter = 0;
    sealer = Sim_crypto.Sealer.create ~master_key:"autarky-runtime-paging-key";
    versions = Sgx.Flat.create ~size:4096 ();
    version_counter = 0;
    ev_pages = Array.make 64 0;
    ev_plain = Array.make 64 Bytes.empty;
    c_pages_fetched = cell "rt.pages_fetched";
    c_pages_evicted = cell "rt.pages_evicted";
    c_fetch_batches = cell "rt.fetch_batches";
    c_evict_batches = cell "rt.evict_batches";
    c_fetch_retries = cell "rt.fetch_retries";
    c_attack_detected = cell "rt.attack_detected";
  }

let mech t = t.pager_mech
let budget t = t.budget
let set_budget t n = t.budget <- n
let resident t vp = Sgx.Flat.mem t.resident_set vp
let resident_count t = Sgx.Flat.length t.resident_set
let incr _t cell = Metrics.Counters.cell_incr cell
let charge t n = Sgx.Machine.charge t.machine n

(* --- FIFO ring -------------------------------------------------------- *)

let fq_grow t =
  let old_cap = Array.length t.fq_vp in
  let mask = old_cap - 1 in
  let n = t.fq_tail - t.fq_head in
  let vp = Array.make (old_cap * 2) 0 in
  let sq = Array.make (old_cap * 2) 0 in
  for i = 0 to n - 1 do
    vp.(i) <- t.fq_vp.((t.fq_head + i) land mask);
    sq.(i) <- t.fq_seq.((t.fq_head + i) land mask)
  done;
  t.fq_vp <- vp;
  t.fq_seq <- sq;
  t.fq_head <- 0;
  t.fq_tail <- n

let fq_push t vp seq =
  if t.fq_tail - t.fq_head = Array.length t.fq_vp then fq_grow t;
  let mask = Array.length t.fq_vp - 1 in
  t.fq_vp.(t.fq_tail land mask) <- vp;
  t.fq_seq.(t.fq_tail land mask) <- seq;
  t.fq_tail <- t.fq_tail + 1

let mark_resident t vp =
  if not (Sgx.Flat.mem t.resident_set vp) then begin
    Sgx.Flat.set t.resident_set vp 1;
    t.seq_counter <- t.seq_counter + 1;
    Sgx.Flat.set t.seq_of vp t.seq_counter;
    fq_push t vp t.seq_counter
  end

(* Seqs start at 1 and [Flat.find] returns -1 when absent, so the seq
   comparison alone never matches a page the tracker forgot. *)
let live_entry t vp seq =
  Sgx.Flat.mem t.resident_set vp && Sgx.Flat.find t.seq_of vp = seq

let mark_evicted t vp = Sgx.Flat.remove t.resident_set vp

let note_initial_residence t statuses =
  List.iter (fun (vp, is_resident) -> if is_resident then mark_resident t vp) statuses

(* Drop dead ring entries (evicted pages, superseded positions) from the
   front; they concentrate there under FIFO eviction, and dropping them
   as they are met keeps repeated scans linear in the live set. *)
let drop_dead t =
  let mask = Array.length t.fq_vp - 1 in
  let continue = ref true in
  while !continue && t.fq_head <> t.fq_tail do
    let s = t.fq_head land mask in
    if live_entry t t.fq_vp.(s) t.fq_seq.(s) then continue := false
    else t.fq_head <- t.fq_head + 1
  done

let oldest_resident t =
  drop_dead t;
  if t.fq_head = t.fq_tail then None
  else Some t.fq_vp.(t.fq_head land (Array.length t.fq_vp - 1))

let oldest_residents t n =
  drop_dead t;
  let mask = Array.length t.fq_vp - 1 in
  let acc = ref [] in
  let count = ref 0 in
  let i = ref t.fq_head in
  while !count < n && !i <> t.fq_tail do
    let s = !i land mask in
    if live_entry t t.fq_vp.(s) t.fq_seq.(s) then begin
      acc := t.fq_vp.(s) :: !acc;
      Stdlib.incr count
    end;
    Stdlib.incr i
  done;
  List.rev !acc

let fresh_version t =
  t.version_counter <- t.version_counter + 1;
  t.version_counter

(* --- SGXv2 in-enclave paging ---------------------------------------- *)

(* SGXv2 eviction is split in two around a batched seal: first make
   every page read-only and snapshot it, then stream the whole run
   through [Sealer.seal_batch_into] (which reuses the sealer's scratch
   buffers across pages), publishing and trimming each page as its blob
   is produced.  Bit-identical to sealing one page at a time — only the
   instruction interleave across pages changes, and the seal itself
   charges no cycles and emits no events, so the clock at every
   instruction boundary is unchanged too. *)
let sgx2_evict_prepare t i vp =
  let cm = Sgx.Machine.model t.machine in
  (* Make the page read-only so sealing is race-free. *)
  Sgx.Instructions.emodpr t.machine t.enclave ~vpage:vp ~perms:Sgx.Types.perms_ro;
  Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp;
  (match Sgx.Instructions.page_data t.machine t.enclave ~vpage:vp with
  | Some d ->
    (* No defensive copy: the page is read-only until its EREMOVE, and
       every seal completes before the batched remove host call. *)
    t.ev_plain.(i) <- Sgx.Page_data.to_bytes d
  | None -> Sgx.Enclave.terminate t.enclave ~reason:"evicting a non-resident page");
  charge t (Metrics.Cost_model.sw_page_crypto cm);
  let version = fresh_version t in
  Sgx.Flat.set t.versions vp version;
  t.ev_pages.(i) <- vp

let sgx2_evict_finish t vp sealed =
  t.os.blob_store vp sealed;
  Sgx.Instructions.emodt t.machine t.enclave ~vpage:vp;
  Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp

let sgx2_evict t pages =
  let n = List.length pages in
  if Array.length t.ev_pages < n then begin
    let cap = max n (2 * Array.length t.ev_pages) in
    t.ev_pages <- Array.make cap 0;
    t.ev_plain <- Array.make cap Bytes.empty
  end;
  let i = ref 0 in
  List.iter
    (fun vp ->
      sgx2_evict_prepare t !i vp;
      Stdlib.incr i)
    pages;
  Sim_crypto.Sealer.seal_batch_into t.sealer ~n
    ~vaddr:(fun i -> Int64.of_int (Sgx.Types.vaddr_of_vpage t.ev_pages.(i)))
    ~version:(fun i -> Int64.of_int (Sgx.Flat.find t.versions t.ev_pages.(i)))
    ~plaintext:(fun i -> t.ev_plain.(i))
    ~sink:(fun i sealed -> sgx2_evict_finish t t.ev_pages.(i) sealed);
  (* Drop the plaintext refs so the scratch array does not pin pages. *)
  Array.fill t.ev_plain 0 n Bytes.empty

let sgx2_fetch_one t vp =
  let cm = Sgx.Machine.model t.machine in
  match t.os.blob_load vp with
  | Some sealed -> (
    match Sgx.Flat.find t.versions vp with
    | -1 ->
      Sgx.Enclave.terminate t.enclave
        ~reason:"OS supplied a page blob the runtime never sealed"
    | expected -> (
      (* Decryption overlaps the EAUG (temporary buffer, §6); we charge
         the software crypto once. *)
      charge t (Metrics.Cost_model.sw_page_crypto cm);
      match
        Sim_crypto.Sealer.unseal t.sealer
          ~vaddr:(Int64.of_int (Sgx.Types.vaddr_of_vpage vp))
          ~expected_version:(Int64.of_int expected) sealed
      with
      | Error err ->
        Sgx.Enclave.terminate t.enclave
          ~reason:
            (Format.asprintf "page integrity violation on 0x%x: %a" vp
               Sim_crypto.Sealer.pp_error err)
      | Ok plaintext ->
        Sgx.Instructions.eacceptcopy t.machine t.enclave ~vpage:vp
          ~data:(Sgx.Page_data.of_bytes plaintext)))
  | None ->
    if Sgx.Flat.mem t.versions vp then begin
      (* The runtime sealed this page out; the OS "losing" its blob is
         not a first touch but a detected attack on the backing store. *)
      incr t t.c_attack_detected;
      Sgx.Enclave.terminate t.enclave
        ~reason:
          (Printf.sprintf
             "backing store lost the runtime-sealed blob for page 0x%x (OS \
              deleted or withheld it): detected attack"
             vp)
    end
    else
      (* First touch: accept the zero-filled EAUGed page. *)
      Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp

(* --- Public fetch/evict --------------------------------------------- *)

let evict t pages =
  let pages = List.filter (resident t) pages in
  if pages <> [] then begin
    (match t.pager_mech with
    | `Sgx1 -> t.os.evict_pages pages
    | `Sgx2 ->
      sgx2_evict t pages;
      t.os.remove_pages pages);
    List.iter (mark_evicted t) pages;
    Metrics.Counters.cell_add t.c_pages_evicted (List.length pages);
    incr t t.c_evict_batches
  end

(* Bounded retry with exponential backoff for transient EPC exhaustion
   (an OS under memory pressure, or a Byzantine OS injecting refusal
   bursts).  Each retry charges a host-call round trip scaled by the
   attempt number; a persistent refusal still terminates — the OS broke
   the pinning contract — but a transient burst is *recovered* without
   giving the OS a termination to observe. *)
let max_fetch_attempts = 6

let retry_epc_exhausted t op =
  let cm = Sgx.Machine.model t.machine in
  let rec go attempt =
    match op () with
    | Error `Epc_exhausted when attempt < max_fetch_attempts ->
      incr t t.c_fetch_retries;
      charge t (cm.exitless_call * (1 lsl attempt));
      go (attempt + 1)
    | r -> r
  in
  go 0

let terminate_on_fetch_error t (e : Os_iface.fetch_error) : 'a =
  let reason =
    match e with
    | `Epc_exhausted ->
      "OS refused to provide EPC frames (pinning contract broken)"
    | `Blob_missing vp ->
      Printf.sprintf
        "backing store lost the blob for page 0x%x (OS deleted or withheld \
         it): detected attack"
        vp
    | `Blob_mac_mismatch vp ->
      Printf.sprintf
        "page integrity violation on 0x%x: blob failed MAC verification \
         (tampering detected)"
        vp
    | `Blob_replayed vp ->
      Printf.sprintf
        "page freshness violation on 0x%x: stale blob replayed (anti-replay \
         detected)"
        vp
  in
  incr t t.c_attack_detected;
  Sgx.Enclave.terminate t.enclave ~reason

let fetch t pages =
  let pages = List.filter (fun vp -> not (resident t vp)) pages in
  if pages <> [] then begin
    if resident_count t + List.length pages > t.budget then
      Sgx.Types.sgx_errorf
        "runtime pager: fetch of %d pages exceeds budget (%d resident, budget %d)"
        (List.length pages) (resident_count t) t.budget;
    (match t.pager_mech with
    | `Sgx1 -> (
      (* The kernel call skips already-resident pages, so a retried
         batch keeps whatever partial progress the refused attempt
         made. *)
      match retry_epc_exhausted t (fun () -> t.os.fetch_pages pages) with
      | Ok () -> ()
      | Error e -> terminate_on_fetch_error t e)
    | `Sgx2 -> (
      match
        retry_epc_exhausted t (fun () ->
            (t.os.aug_pages pages
              :> (unit, Os_iface.fetch_error) result))
      with
      | Ok () -> List.iter (sgx2_fetch_one t) pages
      | Error e -> terminate_on_fetch_error t e));
    List.iter (mark_resident t) pages;
    Metrics.Counters.cell_add t.c_pages_fetched (List.length pages);
    incr t t.c_fetch_batches
  end

(* Single-page fetch: what the fault handler runs on every miss.
   Equivalent to [fetch t [vp]] — same counters, charges, trace events
   and failure behaviour — minus the list filtering and the retry
   closures.  The retry loops live at top level so each attempt is a
   static call, not a closure built per fault. *)
let rec fetch_one_sgx1 t vp attempt =
  match t.os.fetch_page vp with
  | Ok () -> ()
  | Error `Epc_exhausted when attempt < max_fetch_attempts ->
    incr t t.c_fetch_retries;
    charge t ((Sgx.Machine.model t.machine).exitless_call * (1 lsl attempt));
    fetch_one_sgx1 t vp (attempt + 1)
  | Error e -> terminate_on_fetch_error t e

let rec aug_one_sgx2 t vp attempt =
  match t.os.aug_page vp with
  | Ok () -> sgx2_fetch_one t vp
  | Error `Epc_exhausted when attempt < max_fetch_attempts ->
    incr t t.c_fetch_retries;
    charge t ((Sgx.Machine.model t.machine).exitless_call * (1 lsl attempt));
    aug_one_sgx2 t vp (attempt + 1)
  | Error `Epc_exhausted -> terminate_on_fetch_error t `Epc_exhausted

let fetch_one t vp =
  if not (resident t vp) then begin
    if resident_count t + 1 > t.budget then
      Sgx.Types.sgx_errorf
        "runtime pager: fetch of %d pages exceeds budget (%d resident, budget %d)"
        1 (resident_count t) t.budget;
    (match t.pager_mech with
    | `Sgx1 -> fetch_one_sgx1 t vp 0
    | `Sgx2 -> aug_one_sgx2 t vp 0);
    mark_resident t vp;
    Metrics.Counters.cell_add t.c_pages_fetched 1;
    incr t t.c_fetch_batches
  end

let make_room t ~incoming ~victims =
  (* Guard against victim functions that stop making progress (e.g. keep
     returning already-evicted pages); each useful round evicts >= 1. *)
  let max_rounds = resident_count t + incoming + 8 in
  let guard = ref 0 in
  while resident_count t + incoming > t.budget do
    Stdlib.incr guard;
    if !guard > max_rounds then
      Sgx.Types.sgx_errorf "runtime pager: cannot make room for %d pages" incoming;
    match victims () with
    | [] ->
      Sgx.Enclave.terminate t.enclave
        ~reason:"self-paging policy produced no eviction victims"
    | vs -> evict t vs
  done
