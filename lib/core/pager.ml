type mech = [ `Sgx1 | `Sgx2 ]
type vpage = Sgx.Types.vpage

type t = {
  machine : Sgx.Machine.t;
  enclave : Sgx.Enclave.t;
  os : Os_iface.t;
  pager_mech : mech;
  mutable budget : int;
  resident_set : (vpage, unit) Hashtbl.t;
  (* FIFO of (page, seq): only the entry carrying a page's latest seq is
     live, so a page refetched after eviction takes a fresh position at
     the back instead of inheriting its ancient slot. *)
  fifo : (vpage * int) Queue.t;
  seq_of : (vpage, int) Hashtbl.t;
  mutable seq_counter : int;
  sealer : Sim_crypto.Sealer.t;  (* runtime paging keys (SGXv2 path) *)
  versions : (vpage, int64) Hashtbl.t;
  mutable version_counter : int64;
  (* Counter cells interned at construction: fetch/evict run on every
     policy decision and must not hash counter names. *)
  c_pages_fetched : Metrics.Counters.cell;
  c_pages_evicted : Metrics.Counters.cell;
  c_fetch_batches : Metrics.Counters.cell;
  c_evict_batches : Metrics.Counters.cell;
  c_fetch_retries : Metrics.Counters.cell;
  c_attack_detected : Metrics.Counters.cell;
}

let create ~machine ~enclave ~os ~mech ~budget =
  assert (budget > 0);
  let cell = Metrics.Counters.cell (Sgx.Machine.counters machine) in
  {
    machine;
    enclave;
    os;
    pager_mech = mech;
    budget;
    resident_set = Hashtbl.create 4096;
    fifo = Queue.create ();
    seq_of = Hashtbl.create 4096;
    seq_counter = 0;
    sealer = Sim_crypto.Sealer.create ~master_key:"autarky-runtime-paging-key";
    versions = Hashtbl.create 4096;
    version_counter = 0L;
    c_pages_fetched = cell "rt.pages_fetched";
    c_pages_evicted = cell "rt.pages_evicted";
    c_fetch_batches = cell "rt.fetch_batches";
    c_evict_batches = cell "rt.evict_batches";
    c_fetch_retries = cell "rt.fetch_retries";
    c_attack_detected = cell "rt.attack_detected";
  }

let mech t = t.pager_mech
let budget t = t.budget
let set_budget t n = t.budget <- n
let resident t vp = Hashtbl.mem t.resident_set vp
let resident_count t = Hashtbl.length t.resident_set
let incr _t cell = Metrics.Counters.cell_incr cell
let charge t n = Sgx.Machine.charge t.machine n

let mark_resident t vp =
  if not (Hashtbl.mem t.resident_set vp) then begin
    Hashtbl.replace t.resident_set vp ();
    t.seq_counter <- t.seq_counter + 1;
    Hashtbl.replace t.seq_of vp t.seq_counter;
    Queue.push (vp, t.seq_counter) t.fifo
  end

let live_entry t (vp, seq) =
  Hashtbl.mem t.resident_set vp && Hashtbl.find_opt t.seq_of vp = Some seq

let mark_evicted t vp = Hashtbl.remove t.resident_set vp

let note_initial_residence t statuses =
  List.iter (fun (vp, is_resident) -> if is_resident then mark_resident t vp) statuses

let oldest_resident t =
  (* Drop dead queue entries (evicted pages, superseded positions). *)
  let rec loop () =
    match Queue.peek_opt t.fifo with
    | None -> None
    | Some ((vp, _) as entry) ->
      if live_entry t entry then Some vp
      else begin
        ignore (Queue.pop t.fifo);
        loop ()
      end
  in
  loop ()

let oldest_residents t n =
  (* Dead entries (evicted pages, superseded positions) concentrate at
     the queue front under FIFO eviction; drop them as they are met or
     repeated scans become quadratic in the eviction history. *)
  let rec drop_dead () =
    match Queue.peek_opt t.fifo with
    | Some entry when not (live_entry t entry) ->
      ignore (Queue.pop t.fifo);
      drop_dead ()
    | _ -> ()
  in
  drop_dead ();
  let acc = ref [] in
  let count = ref 0 in
  (try
     Queue.iter
       (fun ((vp, _) as entry) ->
         if !count >= n then raise Exit;
         if live_entry t entry then begin
           acc := vp :: !acc;
           Stdlib.incr count
         end)
       t.fifo
   with Exit -> ());
  List.rev !acc

let fresh_version t =
  t.version_counter <- Int64.add t.version_counter 1L;
  t.version_counter

(* --- SGXv2 in-enclave paging ---------------------------------------- *)

(* SGXv2 eviction is split in two around a batched seal: first make
   every page read-only and snapshot it, then seal the whole run
   through the sealer (which reuses its scratch buffers across pages),
   then publish the blobs and trim.  Bit-identical to sealing one page
   at a time — only the instruction interleave across pages changes. *)
let sgx2_evict_prepare t vp =
  let cm = Sgx.Machine.model t.machine in
  (* Make the page read-only so sealing is race-free. *)
  Sgx.Instructions.emodpr t.machine t.enclave ~vpage:vp ~perms:Sgx.Types.perms_ro;
  Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp;
  let data =
    match Sgx.Instructions.page_data t.machine t.enclave ~vpage:vp with
    | Some d -> Sgx.Page_data.copy d
    | None -> Sgx.Enclave.terminate t.enclave ~reason:"evicting a non-resident page"
  in
  charge t (Metrics.Cost_model.sw_page_crypto cm);
  let version = fresh_version t in
  Hashtbl.replace t.versions vp version;
  (Int64.of_int (Sgx.Types.vaddr_of_vpage vp), version, Sgx.Page_data.to_bytes data)

let sgx2_evict_finish t vp sealed =
  t.os.blob_store vp sealed;
  Sgx.Instructions.emodt t.machine t.enclave ~vpage:vp;
  Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp

let sgx2_evict t pages =
  let items = List.map (sgx2_evict_prepare t) pages in
  let sealed = Sim_crypto.Sealer.seal_batch t.sealer items in
  List.iter2 (sgx2_evict_finish t) pages sealed

let sgx2_fetch_one t vp =
  let cm = Sgx.Machine.model t.machine in
  match t.os.blob_load vp with
  | Some sealed -> (
    match Hashtbl.find_opt t.versions vp with
    | None ->
      Sgx.Enclave.terminate t.enclave
        ~reason:"OS supplied a page blob the runtime never sealed"
    | Some expected -> (
      (* Decryption overlaps the EAUG (temporary buffer, §6); we charge
         the software crypto once. *)
      charge t (Metrics.Cost_model.sw_page_crypto cm);
      match
        Sim_crypto.Sealer.unseal t.sealer
          ~vaddr:(Int64.of_int (Sgx.Types.vaddr_of_vpage vp))
          ~expected_version:expected sealed
      with
      | Error err ->
        Sgx.Enclave.terminate t.enclave
          ~reason:
            (Format.asprintf "page integrity violation on 0x%x: %a" vp
               Sim_crypto.Sealer.pp_error err)
      | Ok plaintext ->
        Sgx.Instructions.eacceptcopy t.machine t.enclave ~vpage:vp
          ~data:(Sgx.Page_data.of_bytes plaintext)))
  | None ->
    if Hashtbl.mem t.versions vp then begin
      (* The runtime sealed this page out; the OS "losing" its blob is
         not a first touch but a detected attack on the backing store. *)
      incr t t.c_attack_detected;
      Sgx.Enclave.terminate t.enclave
        ~reason:
          (Printf.sprintf
             "backing store lost the runtime-sealed blob for page 0x%x (OS \
              deleted or withheld it): detected attack"
             vp)
    end
    else
      (* First touch: accept the zero-filled EAUGed page. *)
      Sgx.Instructions.eaccept t.machine t.enclave ~vpage:vp

(* --- Public fetch/evict --------------------------------------------- *)

let evict t pages =
  let pages = List.filter (resident t) pages in
  if pages <> [] then begin
    (match t.pager_mech with
    | `Sgx1 -> t.os.evict_pages pages
    | `Sgx2 ->
      sgx2_evict t pages;
      t.os.remove_pages pages);
    List.iter (mark_evicted t) pages;
    Metrics.Counters.cell_add t.c_pages_evicted (List.length pages);
    incr t t.c_evict_batches
  end

(* Bounded retry with exponential backoff for transient EPC exhaustion
   (an OS under memory pressure, or a Byzantine OS injecting refusal
   bursts).  Each retry charges a host-call round trip scaled by the
   attempt number; a persistent refusal still terminates — the OS broke
   the pinning contract — but a transient burst is *recovered* without
   giving the OS a termination to observe. *)
let max_fetch_attempts = 6

let retry_epc_exhausted t op =
  let cm = Sgx.Machine.model t.machine in
  let rec go attempt =
    match op () with
    | Error `Epc_exhausted when attempt < max_fetch_attempts ->
      incr t t.c_fetch_retries;
      charge t (cm.exitless_call * (1 lsl attempt));
      go (attempt + 1)
    | r -> r
  in
  go 0

let terminate_on_fetch_error t (e : Os_iface.fetch_error) : 'a =
  let reason =
    match e with
    | `Epc_exhausted ->
      "OS refused to provide EPC frames (pinning contract broken)"
    | `Blob_missing vp ->
      Printf.sprintf
        "backing store lost the blob for page 0x%x (OS deleted or withheld \
         it): detected attack"
        vp
    | `Blob_mac_mismatch vp ->
      Printf.sprintf
        "page integrity violation on 0x%x: blob failed MAC verification \
         (tampering detected)"
        vp
    | `Blob_replayed vp ->
      Printf.sprintf
        "page freshness violation on 0x%x: stale blob replayed (anti-replay \
         detected)"
        vp
  in
  incr t t.c_attack_detected;
  Sgx.Enclave.terminate t.enclave ~reason

let fetch t pages =
  let pages = List.filter (fun vp -> not (resident t vp)) pages in
  if pages <> [] then begin
    if resident_count t + List.length pages > t.budget then
      Sgx.Types.sgx_errorf
        "runtime pager: fetch of %d pages exceeds budget (%d resident, budget %d)"
        (List.length pages) (resident_count t) t.budget;
    (match t.pager_mech with
    | `Sgx1 -> (
      (* The kernel call skips already-resident pages, so a retried
         batch keeps whatever partial progress the refused attempt
         made. *)
      match retry_epc_exhausted t (fun () -> t.os.fetch_pages pages) with
      | Ok () -> ()
      | Error e -> terminate_on_fetch_error t e)
    | `Sgx2 -> (
      match
        retry_epc_exhausted t (fun () ->
            (t.os.aug_pages pages
              :> (unit, Os_iface.fetch_error) result))
      with
      | Ok () -> List.iter (sgx2_fetch_one t) pages
      | Error e -> terminate_on_fetch_error t e));
    List.iter (mark_resident t) pages;
    Metrics.Counters.cell_add t.c_pages_fetched (List.length pages);
    incr t t.c_fetch_batches
  end

let make_room t ~incoming ~victims =
  (* Guard against victim functions that stop making progress (e.g. keep
     returning already-evicted pages); each useful round evicts >= 1. *)
  let max_rounds = resident_count t + incoming + 8 in
  let guard = ref 0 in
  while resident_count t + incoming > t.budget do
    Stdlib.incr guard;
    if !guard > max_rounds then
      Sgx.Types.sgx_errorf "runtime pager: cannot make room for %d pages" incoming;
    match victims () with
    | [] ->
      Sgx.Enclave.terminate t.enclave
        ~reason:"self-paging policy produced no eviction victims"
    | vs -> evict t vs
  done
