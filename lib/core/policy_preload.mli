(** Heisenberg-style proactive preloading (PAPERS.md): the fourth
    comparable protection policy.

    The policy keeps its whole protected set EPC-resident, fetched
    eagerly at install time ({!preload}), so steady-state execution
    faults on none of it — the page-fault channel never opens.  A miss
    (after cooperative ballooning, or on a page joining the working
    set) is answered by re-fetching the {e entire} non-resident part of
    the set in one batch: the refill's composition depends only on
    (set, residency), never on which page faulted.

    The guarantee is conditional on EPC capacity — exactly Heisenberg's
    limitation — so {!create} refuses sets that do not fit the pager
    budget, and the defense controller treats that as a failed
    escalation to retry or route around. *)

type t

val create :
  runtime:Runtime.t -> ?min_capacity:int -> pages:Sgx.Types.vpage list ->
  unit -> t
(** Build the policy over the given preload set (duplicates ignored).

    @raise Invalid_argument when the set plus the pages already resident
    outside it exceeds the runtime's pager budget, or when
    [min_capacity <= 0].  Nothing is fetched until {!preload} (or the
    first miss). *)

val preload : t -> unit
(** Fetch every non-resident set member in one batch (install-time
    warmup; also the miss response). *)

val policy : t -> Runtime.policy

val set_size : t -> int
val capacity : t -> int
(** Maximum set size; shrinks under sustained balloon pressure, never
    below [min_capacity]. *)

val preloads : t -> int
(** Batch refills performed (install + misses). *)

val in_set : t -> Sgx.Types.vpage -> bool
