type vpage = Sgx.Types.vpage

type policy = {
  pol_name : string;
  pol_on_miss : vpage -> Sgx.Types.ssa_fault -> unit;
  pol_balloon : int -> int;
}

type t = {
  rt_machine : Sgx.Machine.t;
  rt_enclave : Sgx.Enclave.t;
  rt_os : Os_iface.t;
  rt_pager : Pager.t;
  enclave_managed : Sgx.Flat.t;  (* vpage -> 1 when enclave-managed *)
  mutable rt_policy : policy;
  mutable faults : int;
  (* Interned at construction: the fault handler runs on every miss. *)
  c_handler_invocations : Metrics.Counters.cell;
  c_attack_detected : Metrics.Counters.cell;
  c_legitimate_miss : Metrics.Counters.cell;
  c_policy_no_fetch : Metrics.Counters.cell;
  c_forwarded_to_os : Metrics.Counters.cell;
  c_fetch_retries : Metrics.Counters.cell;
  c_balloon_upcalls : Metrics.Counters.cell;
  c_balloon_released : Metrics.Counters.cell;
}

let machine t = t.rt_machine
let enclave t = t.rt_enclave
let os t = t.rt_os
let pager t = t.rt_pager
let policy t = t.rt_policy
let set_policy t p = t.rt_policy <- p
let is_enclave_managed t vp = Sgx.Flat.mem t.enclave_managed vp
let faults_handled t = t.faults

let incr _t cell = Metrics.Counters.cell_incr cell

(* In-enclave tracing: these events never leave the enclave and are
   excluded from the OS-visible projection. *)
let emit t ~actor k =
  match Sgx.Machine.tracer t.rt_machine with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr ~enclave:t.rt_enclave.Sgx.Enclave.id ~actor (k ())

let terminate t ~reason =
  emit t ~actor:Trace.Event.Runtime (fun () -> Trace.Event.Terminate { reason });
  Sgx.Enclave.terminate t.rt_enclave ~reason

let pinned_policy t =
  {
    pol_name = "pinned";
    pol_on_miss =
      (fun vp _sf ->
        terminate t
          ~reason:
            (Printf.sprintf
               "fault on pinned enclave-managed page 0x%x (attack or misconfiguration)"
               vp));
    (* Every pinned page is sensitive: refuse to deflate. *)
    pol_balloon = (fun _ -> 0);
  }

(* The trusted exception handler, invoked (by hardware guarantee) on
   every page fault.  See the module documentation for the cases. *)
let handle_exception t (enclave : Sgx.Enclave.t) =
  let cm = Sgx.Machine.model t.rt_machine in
  Sgx.Machine.charge t.rt_machine cm.runtime_handler;
  incr t t.c_handler_invocations;
  emit t ~actor:Trace.Event.Runtime (fun () ->
      Trace.Event.Handler { event = "exception-handler" });
  match Stack.top enclave.tcs.ssa with
  | exception Stack.Empty ->
    (* §5.3: the handler can only legitimately run with fault information
       in the SSA; spurious entry is an attack. *)
    terminate t
      ~reason:"exception handler entered with empty SSA (re-entrancy attack)"
  | sf ->
    t.faults <- t.faults + 1;
    let vp = Sgx.Types.vpage_of_vaddr sf.sf_vaddr in
    if is_enclave_managed t vp then
      if Pager.resident t.rt_pager vp then begin
        incr t t.c_attack_detected;
        emit t ~actor:Trace.Event.Runtime (fun () ->
            Trace.Event.Decision
              { policy = t.rt_policy.pol_name; action = "attack-detected";
                vpages = [ vp ] });
        terminate t
          ~reason:
            (Format.asprintf
               "OS-induced fault (%a) on resident enclave-managed page 0x%x: \
                controlled-channel attack"
               Sgx.Types.pp_fault_cause sf.sf_cause vp)
      end
      else begin
        incr t t.c_legitimate_miss;
        t.rt_policy.pol_on_miss vp sf;
        if not (Pager.resident t.rt_pager vp) then begin
          (* An OS-triggerable condition (a policy starved of frames, or
             an OS lying about what it fetched) must stay a modeled
             termination, never an OCaml exception escaping the trusted
             fault handler. *)
          incr t t.c_policy_no_fetch;
          terminate t
            ~reason:
              (Printf.sprintf
                 "policy %s did not fetch faulting page 0x%x (OS starvation \
                  or broken contract)"
                 t.rt_policy.pol_name vp)
        end
      end
    else begin
      (* OS-managed page: forward to the OS pager (ordinary demand
         paging on insensitive pages).  Transient EPC exhaustion is
         retried with backoff; blob faults are detected attacks. *)
      incr t t.c_forwarded_to_os;
      (* Inlined emit: the thunk form would capture [vp] and allocate a
         closure per forwarded fault even with tracing off. *)
      (match Sgx.Machine.tracer t.rt_machine with
      | None -> ()
      | Some tr ->
        Trace.Recorder.emit tr ~enclave:t.rt_enclave.Sgx.Enclave.id
          ~actor:Trace.Event.Runtime
          (Trace.Event.Decision
             { policy = "runtime"; action = "forward-to-os"; vpages = [ vp ] }));
      let max_attempts = 6 in
      let rec forward attempt =
        match t.rt_os.page_in_os_managed vp with
        | Ok () -> ()
        | Error `Epc_exhausted when attempt < max_attempts ->
          incr t t.c_fetch_retries;
          Sgx.Machine.charge t.rt_machine (cm.exitless_call * (1 lsl attempt));
          forward (attempt + 1)
        | Error e ->
          incr t t.c_attack_detected;
          terminate t
            ~reason:
              (Format.asprintf
                 "OS failed to page in OS-managed page 0x%x: %a" vp
                 Os_iface.pp_fetch_error e)
      in
      forward 0
    end

let create ~machine ~enclave ~os ~mech ~budget =
  let cell = Metrics.Counters.cell (Sgx.Machine.counters machine) in
  let t =
    {
      rt_machine = machine;
      rt_enclave = enclave;
      rt_os = os;
      rt_pager = Pager.create ~machine ~enclave ~os ~mech ~budget;
      enclave_managed = Sgx.Flat.create ~size:4096 ();
      rt_policy =
        { pol_name = "uninitialized"; pol_on_miss = (fun _ _ -> ());
          pol_balloon = (fun _ -> 0) };
      faults = 0;
      c_handler_invocations = cell "rt.handler_invocations";
      c_attack_detected = cell "rt.attack_detected";
      c_legitimate_miss = cell "rt.legitimate_miss";
      c_policy_no_fetch = cell "rt.policy_no_fetch";
      c_forwarded_to_os = cell "rt.forwarded_to_os";
      c_fetch_retries = cell "rt.fetch_retries";
      c_balloon_upcalls = cell "rt.balloon_upcalls";
      c_balloon_released = cell "rt.balloon_released";
    }
  in
  t.rt_policy <- pinned_policy t;
  enclave.entry <- handle_exception t;
  t

let balloon_release t ~pages =
  let cm = Sgx.Machine.model t.rt_machine in
  Sgx.Machine.charge t.rt_machine cm.runtime_handler;
  incr t t.c_balloon_upcalls;
  let released = t.rt_policy.pol_balloon pages in
  Metrics.Counters.cell_add t.c_balloon_released released;
  emit t ~actor:Trace.Event.Runtime (fun () ->
      Trace.Event.Decision
        { policy = t.rt_policy.pol_name; action = "balloon-release"; vpages = [] });
  released

let mark_enclave_managed t pages =
  List.iter (fun vp -> Sgx.Flat.set t.enclave_managed vp 1) pages;
  let statuses = t.rt_os.set_enclave_managed pages in
  Pager.note_initial_residence t.rt_pager statuses

let mark_os_managed t pages =
  List.iter (fun vp -> Sgx.Flat.remove t.enclave_managed vp) pages;
  t.rt_os.set_os_managed pages
