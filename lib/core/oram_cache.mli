(** The enclave-managed ORAM page cache (§5.2.2, §6).

    CoSMIX-style instrumentation routes every access to the protected
    data region through this cache.  Hits touch a pinned cache page
    directly — safe under Autarky because accesses to resident
    enclave-managed pages are invisible to the OS.  Misses run the full
    PathORAM protocol to swap the page between the cache and the
    oblivious store (an oblivious copy in each direction), evicting a
    cache slot round-robin.  The write-back policy is configurable:
    [`Dirty_only] (CoSMIX's behaviour, the default) skips the ORAM write
    for clean pages, while [`Always] writes every evicted page back so
    the eviction traffic carries no dirtiness signal.

    Without Autarky this cache would itself leak (the OS could observe
    which cache pages are touched); the uncached baseline in
    {!Policy_oram.uncached_accessor} shows what that costs. *)

type t

type writeback = [ `Always | `Dirty_only ]

val create :
  ?writeback:writeback ->
  machine:Sgx.Machine.t -> enclave:Sgx.Enclave.t ->
  touch:(Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit) ->
  oram:Oram.Path_oram.t -> data_base_vpage:Sgx.Types.vpage -> n_pages:int ->
  cache_base_vpage:Sgx.Types.vpage -> capacity_pages:int -> unit -> t
(** [touch] performs a hardware access to a cache page (wired to the CPU
    model by the harness); the cache pages
    [cache_base_vpage .. +capacity_pages) must be enclave-managed and
    resident. *)

val in_data_region : t -> Sgx.Types.vaddr -> bool

val data_region : t -> Sgx.Types.vpage * int
(** [(base_vpage, n_pages)] of the protected region. *)

val access : t -> Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit
(** One instrumented access to the protected region. *)

val read_stamp : t -> Sgx.Types.vaddr -> int
(** Read the integer stamp of the page holding [vaddr] through the cache
    (correctness checks in tests). *)

val write_stamp : t -> Sgx.Types.vaddr -> int -> unit

val hits : t -> int
val misses : t -> int

val live_capacity : t -> int
(** Cache slots currently in use (equals the creation capacity until
    {!shrink} is called). *)

val flush : t -> int
(** Policy-switch handoff: write every live occupant back to the ORAM
    (dirty slots under [`Dirty_only]; all slots under [`Always]) and
    empty the cache, making the oblivious store the single
    authoritative copy.  Returns the number of ORAM write-backs.  The
    cache remains usable (capacity unchanged). *)

val shrink : t -> pages:int -> Sgx.Types.vpage list
(** Degrade under memory pressure: release up to [pages] cache slots
    (dirty occupants are written back to the ORAM first) and return the
    released cache vpages, which the caller must stop using and may
    evict.  The cache never shrinks below a quarter of its original
    capacity; the returned list may therefore be shorter than [pages]
    (empty when already at the floor). *)
