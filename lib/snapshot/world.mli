(** Whole-system checkpoint/restore.

    {!to_payload} serializes an entire simulated world — machine, OS,
    runtime + policies, workload closures, trace digest state — as one
    Marshal graph (closures included, sharing and cycles preserved);
    {!save}/{!load} wrap that payload in the sealed {!Image} container
    with the machine's {!probe} digest as a restore-time cross-check.

    Determinism contract: capture at a quiescent point (between
    operations/events), restore in a fresh process of the same binary,
    continue — and every subsequent trace event, counter and digest is
    bit-identical to the straight-through run.  The digest sink's FNV
    accumulator rides the image, so the *final* digest of a resumed run
    equals the straight-through digest. *)

type error = Image.error

val to_payload : 'w -> bytes
(** [Marshal] (with closures) of the world graph.  The world must be
    quiescent and must not reach channels, sockets or mutexes. *)

val of_payload : bytes -> ('w, error) result
(** Unmarshal; failures (wrong binary, corrupt bytes) come back as
    [Unmarshal_failed].  The ['w] is whatever was captured — callers
    dispatch on the image's kind string before choosing the type. *)

val probe : Sgx.Machine.t -> int64
(** FNV digest of the machine's hot state through the explicit
    {!Codec}s (EPCM + page contents, raw TLB, raw VA map, branch ring,
    clock, counters) — deliberately Marshal-free, so it cross-checks
    the Marshal round-trip. *)

val save :
  store:Image.Store.t -> kind:string -> label:string ->
  ?machine:Sgx.Machine.t -> 'w -> path:string -> int64
(** Capture [w] into a sealed image.  When [machine] is given, its
    {!probe} digest and clock cycle are recorded in the header.
    Returns the image's monotonic counter. *)

val load :
  ?store:Image.Store.t -> kind:string ->
  ?machine_of:('w -> Sgx.Machine.t) -> path:string -> unit ->
  (Image.header * 'w, error) result
(** Verified load: seal checks ({!Image.load}), then unmarshal, then —
    when [machine_of] is given and a probe was recorded — recompute the
    probe on the restored machine and compare. *)

val counters_fingerprint : Metrics.Counters.t -> string
(** FNV hex over the sorted non-zero counters: the "counter equality"
    half of the resume-equivalence check as one comparable line. *)
