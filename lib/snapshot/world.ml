(* Whole-world capture/restore.

   The serialization engine is [Marshal] with [Closures]: a simulated
   platform is one big object graph — machine, OS, runtime, policies,
   workload closures, digest sinks — full of sharing (one clock
   referenced everywhere) and cycles (runtime <-> policy), and Marshal
   is the only engine that preserves both without a hand-written
   walker per module.  Closure marshaling pins the image to the
   producing executable (code-fragment digests), which {!Image} turns
   into a typed [Incompatible_binary] error via the binary digest in
   the header rather than a Failure mid-restore.

   Two rules make a world marshal-safe, and every snapshot-capable
   driver in the tree follows them:

   - capture only at quiescent points (between operations/events): the
     OCaml runtime cannot capture a continuation, so nothing may be
     mid-enclave-entry or mid-measurement-span;
   - no OS resources in the graph: channels, sockets and mutexes must
     be attached *after* restore (e.g. {!Inject.Campaign.cell_add_sink}
     for a replay JSONL dump), never reachable before capture.

   The trace digest deserves a note: {!Trace.Sink.digest}'s closure
   carries its FNV accumulator (a plain [int64 ref]), so the digest
   state itself rides the image, and the digest printed after a
   restored run equals the straight-through one — that is what turns
   "resume equivalence" into a one-line string comparison. *)

type error = Image.error

let to_payload w = Marshal.to_bytes w [ Marshal.Closures ]

let of_payload (b : bytes) =
  match Marshal.from_bytes b 0 with
  | w -> Ok w
  | exception Failure msg -> Error (Image.Unmarshal_failed msg)
  | exception e -> Error (Image.Unmarshal_failed (Printexc.to_string e))

(* --- the machine probe ------------------------------------------------- *)

let ptype_code = function
  | Sgx.Types.Pt_reg -> 0
  | Sgx.Types.Pt_tcs -> 1
  | Sgx.Types.Pt_trim -> 2
  | Sgx.Types.Pt_va -> 3

let mode_code = function
  | Sgx.Machine.Full_exits -> 0
  | Sgx.Machine.No_upcall -> 1
  | Sgx.Machine.No_upcall_no_aex -> 2

(* Digest of the machine's hot state through the *explicit* codecs (not
   Marshal): clock, counters, EPCM + page contents, raw TLB, raw VA
   map, branch ring.  Recorded at capture, recomputed after restore —
   a cross-check that the Marshal round-trip reproduced the physical
   structures bit-for-bit, by a path that shares no code with it. *)
let probe (m : Sgx.Machine.t) =
  let b = Buffer.create 65_536 in
  Codec.W.int_ b (Metrics.Clock.now m.Sgx.Machine.clock);
  Codec.W.u8 b (mode_code m.Sgx.Machine.mode);
  List.iter
    (fun (name, v) ->
      Codec.W.str b name;
      Codec.W.int_ b v)
    (Metrics.Counters.snapshot (Sgx.Machine.counters m));
  let epc = m.Sgx.Machine.epc in
  let frames = Sgx.Epc.total_frames epc in
  Codec.W.u32 b frames;
  Codec.W.u32 b (Sgx.Epc.free_frames epc);
  for f = 0 to frames - 1 do
    let e = Sgx.Epc.entry epc f in
    let flags =
      (if e.Sgx.Epc.valid then 1 else 0)
      lor (if e.Sgx.Epc.pending then 2 else 0)
      lor (if e.Sgx.Epc.modified then 4 else 0)
      lor (if e.Sgx.Epc.blocked then 8 else 0)
      lor (Sgx.Types.perms_bits e.Sgx.Epc.perms lsl 4)
      lor (ptype_code e.Sgx.Epc.ptype lsl 8)
    in
    Codec.W.u32 b flags;
    Codec.W.int_ b e.Sgx.Epc.enclave_id;
    Codec.W.int_ b e.Sgx.Epc.vpage;
    Buffer.add_bytes b (Sgx.Page_data.to_bytes (Sgx.Epc.data epc f))
  done;
  Codec.write_tlb b m.Sgx.Machine.tlb;
  Codec.write_flat b m.Sgx.Machine.va_slots;
  Codec.W.int_ b m.Sgx.Machine.va_next_slot;
  Codec.W.i64 b m.Sgx.Machine.va_counter;
  Codec.W.u32 b (Queue.length m.Sgx.Machine.va_free);
  Queue.iter (fun s -> Codec.W.int_ b s) m.Sgx.Machine.va_free;
  Codec.W.int_ b m.Sgx.Machine.branch_cursor;
  Array.iter
    (fun (eid, vp) ->
      Codec.W.int_ b eid;
      Codec.W.int_ b vp)
    m.Sgx.Machine.branch_ring;
  Trace.Fnv.feed_string Trace.Fnv.empty (Buffer.contents b)

(* --- sealed save/load -------------------------------------------------- *)

let save ~store ~kind ~label ?machine w ~path =
  let probe_v, cycle =
    match machine with
    | None -> (0L, 0L)
    | Some m ->
      (probe m, Int64.of_int (Metrics.Clock.now m.Sgx.Machine.clock))
  in
  Image.save ~store ~kind ~label ~cycle ~probe:probe_v (to_payload w) ~path

let ( let* ) = Result.bind

let load ?store ~kind ?machine_of ~path () =
  let* h, payload = Image.load ?store ~expect_kind:kind ~path () in
  let* w = of_payload payload in
  let* () =
    match machine_of with
    | Some f when h.Image.h_probe <> 0L ->
      let got = probe (f w) in
      if got <> h.Image.h_probe then
        Error (Image.Probe_mismatch { expected = h.Image.h_probe; got })
      else Ok ()
    | _ -> Ok ()
  in
  Ok (h, w)

let counters_fingerprint counters =
  let h =
    List.fold_left
      (fun h (name, v) ->
        Trace.Fnv.feed_string h (Printf.sprintf "%s=%d;" name v))
      Trace.Fnv.empty
      (Metrics.Counters.snapshot counters)
  in
  Trace.Fnv.to_hex h
