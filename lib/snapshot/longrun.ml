(* Resumable long-horizon workload runner: the perf-matrix cell shape
   (workload x policy x mechanism, fixed geometry), rebuilt as a
   stepped world so a horizon can be cut into time slices — run to
   operation N, seal, resume (same or different process), continue —
   with the determinism contract checked by trace digest + counter
   fingerprint equality against the straight-through run.

   Differences from [Harness.Perf.run_cell], all deliberate:
   - tracing is on, with a digest sink attached at build time, so
     every run yields a comparable digest;
   - each operation is its own enclave entry (the quiescent point);
   - no wall-clock, no [Gc] sampling, no clock reset: the virtual
     clock runs monotonically from build so "cycle at capture" means
     something across slices. *)

module System = Harness.System

type spec = {
  sp_workload : string;  (* ycsb | uthash | kvstore *)
  sp_policy : string;  (* rate-limit | clusters | oram *)
  sp_mech : string;  (* sgx1 | sgx2 *)
  sp_seed : int;
  sp_ops : int;
}

let spec_label s =
  Printf.sprintf "longrun/%s/%s/%s/seed%d/ops%d" s.sp_workload s.sp_policy
    s.sp_mech s.sp_seed s.sp_ops

let cell_of_string str =
  match String.split_on_char ':' str with
  | [ w; p; m ] -> Ok (w, p, m)
  | _ -> Error (Printf.sprintf "bad cell %S (want workload:policy:mech)" str)

type world = {
  w_spec : spec;
  w_sys : System.t;
  w_op : int -> unit;
  w_digest : unit -> string;
  mutable w_done : int;
}

let kind = "longrun"

(* The perf-cell geometry: 4 MiB EPC against a 16 MiB heap. *)
let epc_limit = 1_024

let build spec =
  let mech =
    match spec.sp_mech with
    | "sgx1" -> `Sgx1
    | "sgx2" -> `Sgx2
    | other -> invalid_arg (Printf.sprintf "Longrun.build: unknown mech %S" other)
  in
  let enclave_pages = 8 * epc_limit in
  let rng = Metrics.Rng.create ~seed:(Int64.of_int spec.sp_seed) in
  let sys =
    System.create ~mech ~trace:true ~epc_frames:(epc_limit + 1_024) ~epc_limit
      ~enclave_pages ~self_paging:true
      ~budget:(max 64 (epc_limit - 256))
      ()
  in
  let dsink, dres = Trace.Sink.digest () in
  Trace.Recorder.add_sink (System.tracer_exn sys) dsink;
  let heap_pages = 4 * epc_limit in
  let heap = System.allocator sys ~pages:heap_pages ~cluster_pages:10 in
  let alloc ~bytes = Autarky.Allocator.alloc heap ~bytes in
  let rt = System.runtime_exn sys in
  let progress_hook = ref (fun () -> ()) in
  let instrument = ref None in
  let finish = ref (fun () -> ()) in
  (match spec.sp_policy with
  | "rate-limit" ->
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:512 ()
    in
    progress_hook := (fun () -> Autarky.Policy_rate_limit.progress rl);
    finish :=
      fun () ->
        Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | "clusters" ->
    finish :=
      fun () ->
        let pc =
          Autarky.Policy_clusters.create ~runtime:rt
            ~clusters:(Autarky.Allocator.clusters heap)
        in
        Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | "oram" ->
    let cache_pages = max 64 (epc_limit * 2 / 3) in
    let cache_base = System.reserve sys ~pages:cache_pages in
    let oram =
      Oram.Path_oram.create ~clock:(System.clock sys)
        ~rng:(Metrics.Rng.create ~seed:9L) ~n_blocks:heap_pages ()
    in
    let cache =
      Autarky.Oram_cache.create ~machine:(System.machine sys)
        ~enclave:(System.enclave sys)
        ~touch:(fun a k -> Sgx.Cpu.access (System.cpu sys) a k)
        ~oram
        ~data_base_vpage:(Autarky.Allocator.base_vpage heap)
        ~n_pages:heap_pages ~cache_base_vpage:cache_base
        ~capacity_pages:cache_pages ()
    in
    System.pin sys (List.init cache_pages (fun i -> cache_base + i));
    let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
    instrument :=
      Some
        (Autarky.Policy_oram.accessor pol ~fallback:(fun a k ->
             Sgx.Cpu.access (System.cpu sys) a k));
    finish :=
      fun () -> Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol)
  | other ->
    invalid_arg (Printf.sprintf "Longrun.build: unknown policy %S" other));
  let vm =
    match !instrument with
    | Some i ->
      System.vm sys ~instrument:i ~on_progress:(fun () -> !progress_hook ()) ()
    | None -> System.vm sys ~on_progress:(fun () -> !progress_hook ()) ()
  in
  let op =
    match spec.sp_workload with
    | "ycsb" ->
      let n_entries = heap_pages * 3 in
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng ~n_entries ~value_bytes:1_024 ()
      in
      let dist = Metrics.Dist.scrambled_zipfian ~n:n_entries () in
      let gen = Workloads.Ycsb.workload_c ~dist ~rng in
      fun _ ->
        (match Workloads.Ycsb.next gen with
        | Workloads.Ycsb.Get k -> ignore (Workloads.Kvstore.get kv ~key:k)
        | _ -> ())
    | "uthash" ->
      let t =
        Workloads.Uthash.create ~vm ~alloc ~rng ~n_items:(heap_pages * 12)
          ~item_bytes:256 ~target_chain:10
      in
      let n = Workloads.Uthash.n_items t in
      fun i ->
        ignore (Workloads.Uthash.find t ~key:(i * 7919 mod n));
        vm.Workloads.Vm.progress ()
    | "kvstore" ->
      let n_entries = heap_pages * 3 in
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng ~n_entries ~value_bytes:1_024 ()
      in
      let dist = Metrics.Dist.uniform ~n:n_entries in
      fun _ ->
        ignore (Workloads.Kvstore.get kv ~key:(Metrics.Dist.sample dist rng))
    | other ->
      invalid_arg (Printf.sprintf "Longrun.build: unknown workload %S" other)
  in
  !finish ();
  {
    w_spec = spec;
    w_sys = sys;
    w_op = (fun i -> System.run_in_enclave sys (fun () -> op i));
    w_digest = dres;
    w_done = 0;
  }

let step w =
  if w.w_done >= w.w_spec.sp_ops then false
  else begin
    w.w_op (w.w_done + 1);
    w.w_done <- w.w_done + 1;
    true
  end

let machine w = System.machine w.w_sys

(* One comparable line per completed horizon: the whole
   resume-equivalence check is a string equality over this. *)
type outcome = {
  o_spec : spec;
  o_done : int;
  o_cycles : int;
  o_faults : int;
  o_digest : string;
  o_counters : string;
}

let outcome w =
  {
    o_spec = w.w_spec;
    o_done = w.w_done;
    o_cycles = Metrics.Clock.now (System.clock w.w_sys);
    o_faults = Metrics.Counters.get (System.counters w.w_sys) "cpu.page_fault";
    o_digest = w.w_digest ();
    o_counters = World.counters_fingerprint (System.counters w.w_sys);
  }

let outcome_line o =
  Printf.sprintf
    "longrun %s:%s:%s seed %d ops %d/%d cycles %d faults %d digest %s counters %s"
    o.o_spec.sp_workload o.o_spec.sp_policy o.o_spec.sp_mech o.o_spec.sp_seed
    o.o_done o.o_spec.sp_ops o.o_cycles o.o_faults o.o_digest o.o_counters

(* --- sliced execution -------------------------------------------------- *)

let sanitize s = String.map (function '/' -> '_' | c -> c) s

let image_path ~dir spec =
  Filename.concat dir (sanitize (spec_label spec) ^ ".snap")

(* Run a built (or restored) world forward.  [stop_at] pauses the world
   at that operation count and seals it; [snapshot_every] additionally
   seals every K operations along the way (each save bumps the
   monotonic counter, so the newest image is always the freshest).
   Returns [Ok outcome] when the horizon completed, [Error path] when
   the world was paused into [path]. *)
let advance ?stop_at ?snapshot_every ?store ?dir w =
  let store =
    match store with
    | Some s -> s
    | None -> Image.Store.in_memory ()
  in
  let path () =
    match dir with
    | Some d -> image_path ~dir:d w.w_spec
    | None -> invalid_arg "Longrun.advance: snapshotting requires ~dir"
  in
  let seal () =
    let p = path () in
    ignore
      (World.save ~store ~kind ~label:(spec_label w.w_spec)
         ~machine:(machine w) w ~path:p);
    p
  in
  let stop = Option.value stop_at ~default:max_int in
  let rec go () =
    if w.w_done >= stop && w.w_done < w.w_spec.sp_ops then Error (seal ())
    else if not (step w) then Ok (outcome w)
    else begin
      (match snapshot_every with
      | Some k when k > 0 && w.w_done mod k = 0 && w.w_done < w.w_spec.sp_ops ->
        ignore (seal ())
      | _ -> ());
      go ()
    end
  in
  go ()

let resume ?store ~path () =
  World.load ?store ~kind ~machine_of:machine ~path ()
  |> Result.map (fun (_h, w) -> w)
