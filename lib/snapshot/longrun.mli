(** Resumable long-horizon workload runner.

    The perf-matrix cell shape (workload x policy x mechanism) rebuilt
    as a stepped world: tracing always on with a digest sink, one
    enclave entry per operation (the quiescent point), no clock reset.
    A horizon can be cut into time slices — run to N, seal with
    {!World.save}, resume in another process, continue — and the
    completed run's {!outcome_line} is byte-identical to the
    straight-through run's. *)

type spec = {
  sp_workload : string;  (** ycsb | uthash | kvstore *)
  sp_policy : string;  (** rate-limit | clusters | oram *)
  sp_mech : string;  (** sgx1 | sgx2 *)
  sp_seed : int;
  sp_ops : int;  (** the horizon *)
}

val spec_label : spec -> string
(** The lineage label keying the freshness counter. *)

val cell_of_string : string -> (string * string * string, string) result
(** Parse a ["workload:policy:mech"] cell spec. *)

type world

val kind : string
(** The image-kind string, ["longrun"]. *)

val build : spec -> world
(** Fresh platform at operation 0.  Raises [Invalid_argument] on an
    unknown workload/policy/mech name. *)

val step : world -> bool
(** Perform one operation (one enclave entry); [false] once the horizon
    is reached. *)

val machine : world -> Sgx.Machine.t

type outcome = {
  o_spec : spec;
  o_done : int;
  o_cycles : int;
  o_faults : int;
  o_digest : string;  (** trace digest (resumable across images) *)
  o_counters : string;  (** counter fingerprint *)
}

val outcome : world -> outcome
val outcome_line : outcome -> string
(** The canonical one-line form the CI gates compare. *)

val image_path : dir:string -> spec -> string
(** Where {!advance} seals this spec's image inside [dir]. *)

val advance :
  ?stop_at:int -> ?snapshot_every:int -> ?store:Image.Store.t ->
  ?dir:string -> world -> (outcome, string) result
(** Drive a (possibly restored) world forward.  [Ok outcome] when the
    horizon completed; [Error path] when [stop_at] paused the world
    into a sealed image at [path].  [snapshot_every] additionally seals
    every K operations (each save bumps the label's monotonic counter).
    Snapshotting requires [dir]; [store] defaults to a fresh in-memory
    store (pass a file-backed one to get cross-process freshness). *)

val resume :
  ?store:Image.Store.t -> path:string -> unit -> (world, World.error) result
(** Verified load (seal + binary + freshness + probe checks) of a
    paused world. *)
