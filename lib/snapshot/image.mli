(** The sealed, versioned, length-prefixed snapshot container.

    An image is the full serialized system state wrapped in the same
    authenticated sealing the EPC paging path uses
    ({!Sim_crypto.Sealer}: ChaCha20 + SipHash encrypt-then-MAC, version
    bound into the MAC), chunked and sealed with [vaddr = chunk index]
    and [version = the image's monotonic counter].  A per-label counter
    {!Store} provides the paper's freshness argument at whole-system
    granularity: bit flips and edited metadata fail the MAC
    ([Tampered]/[Header_forged]); a verbatim replay of an older image
    carries valid MACs but an older counter and is rejected as
    [Stale]. *)

type error =
  | Truncated  (** file shorter than its structure claims *)
  | Bad_magic
  | Bad_format of int
  | Tampered of { chunk : int }  (** MAC mismatch — bit flip or edit *)
  | Header_forged
      (** plaintext header differs from the MAC-protected sealed copy *)
  | Stale of { label : string; counter : int64; latest : int64 }
      (** rollback: an older image replayed against the counter store *)
  | Wrong_kind of { expected : string; got : string }
  | Incompatible_binary of { expected : string; got : string }
      (** closures only restore into the binary that captured them *)
  | Probe_mismatch of { expected : int64; got : int64 }
      (** restored hot state disagrees with the capture-time digest *)
  | Unmarshal_failed of string
  | Io_error of string

exception Snapshot_error of error
(** Never raised by this module's [result]-returning API; provided for
    callers that prefer to escalate a typed error. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type header = {
  h_kind : string;  (** world type: ["longrun"] / ["inject"] / ["serve"] *)
  h_label : string;  (** lineage identity keying the freshness counter *)
  h_counter : int64;  (** monotonic snapshot counter (per label) *)
  h_cycle : int64;  (** virtual-clock cycle at capture *)
  h_probe : int64;  (** machine probe digest; [0L] when not recorded *)
  h_binary : string;  (** MD5 of the producing executable *)
  h_payload : int;  (** payload bytes inside the seal *)
}

(** The trusted monotonic counter store (one counter per lineage
    label).  {!next} is called by {!save}; {!load} rejects any image
    whose counter is below the recorded latest. *)
module Store : sig
  type t

  val in_memory : unit -> t
  val file : string -> t
  (** Backed by one ["label\tcounter"] line per label; loaded eagerly,
      rewritten atomically on every {!next}.  Thread-safe. *)

  val latest : t -> string -> int64
  (** [0L] for an unseen label. *)

  val next : t -> string -> int64
  (** Bump and persist the label's counter; returns the new value. *)
end

val save :
  store:Store.t -> kind:string -> label:string -> cycle:int64 ->
  ?probe:int64 -> bytes -> path:string -> int64
(** Seal [payload] into [path] (written atomically via a temp file) and
    return the monotonic counter the image was bound to. *)

val read_header : path:string -> (header, error) result
(** Parse the plaintext header only — no unsealing, no freshness check.
    For dispatch/listing; everything it returns is attacker-writable
    until {!load} verifies it against the sealed copy. *)

val load :
  ?store:Store.t -> ?expect_kind:string -> path:string -> unit ->
  (header * bytes, error) result
(** Read, verify every MAC, check the sealed header against the
    plaintext one, the binary digest against the running executable,
    and (when [store] is given) the counter against the label's latest.
    Returns the verified header and payload. *)
