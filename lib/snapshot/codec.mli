(** Little-endian binary writer/reader plus the explicit codecs for the
    flat SGX hot structures.

    The whole-world capture is Marshal-based ({!Snapshot}); these
    codecs exist so the structures whose physical layout is
    load-bearing (tombstones, generation stamps, the TLB FIFO ring)
    have a Marshal-independent round-trip that the QCheck suite and the
    probe digest can check. *)

exception Short
(** A reader ran off the end of its input. *)

module W : sig
  val u8 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int64 -> unit
  val int_ : Buffer.t -> int -> unit
  (** Native int as a little-endian 64-bit value. *)

  val str : Buffer.t -> string -> unit
  (** Length-prefixed (u32) string. *)

  val bytes_ : Buffer.t -> bytes -> unit
  val int_array : Buffer.t -> int array -> unit
end

module R : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_ : t -> int
  val str : t -> string
  val bytes_ : t -> bytes
  val int_array : t -> int array

  val take : t -> int -> string
  (** The next [n] raw bytes. *)

  val skip : t -> int -> unit
  (** All readers raise {!Short} when the input is exhausted. *)
end

(** {1 Structure codecs}

    Verbatim physical state (see the [export_state]/[import_state]
    pairs in [Sgx]); each value leads with a one-byte tag, and the
    readers raise [Invalid_argument] on a tag mismatch. *)

val write_flat : Buffer.t -> Sgx.Flat.t -> unit
val read_flat : R.t -> Sgx.Flat.t

val write_tlb : Buffer.t -> Sgx.Tlb.t -> unit
val read_tlb : R.t -> Sgx.Tlb.t

val write_page_table : Buffer.t -> Sgx.Page_table.t -> unit
val read_page_table : R.t -> Sgx.Page_table.t
