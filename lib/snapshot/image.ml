(* The sealed on-disk snapshot container.

   Layout (all integers little-endian):

     magic           "AUTARKYSNAP1"            (12 bytes)
     u32 hlen        plaintext header length
     header          kind, label, counter, cycle, probe, binary digest,
                     payload length, chunk count, chunk size
     chunks          u32 clen | ciphertext | i64 mac     (x chunk count)

   The sealed plaintext is [encoded header ++ payload]: the header is
   re-encoded *inside* the seal, so every field an attacker could edit
   in the plaintext copy (kind, label, cycle, probe, binary) is bound
   by the MACs — on load the inner copy must equal the outer one.

   Chunk [i] is sealed with [vaddr = i] and [version = counter] through
   the same {!Sim_crypto.Sealer} the EPC paging path uses
   (ChaCha20 + SipHash encrypt-then-MAC, version bound into the MAC).
   That gives the paper's freshness argument for whole-system images:

   - a flipped bit anywhere (ciphertext, chunk order, the counter
     field) fails the MAC -> [Tampered];
   - a *whole old image* replayed verbatim carries a valid MAC but an
     older monotonic counter, which the counter store rejects ->
     [Stale].  The store is the trusted-counter stand-in: one counter
     per lineage label, bumped on every save. *)

type error =
  | Truncated
  | Bad_magic
  | Bad_format of int
  | Tampered of { chunk : int }
  | Header_forged
  | Stale of { label : string; counter : int64; latest : int64 }
  | Wrong_kind of { expected : string; got : string }
  | Incompatible_binary of { expected : string; got : string }
  | Probe_mismatch of { expected : int64; got : int64 }
  | Unmarshal_failed of string
  | Io_error of string

exception Snapshot_error of error

let error_to_string = function
  | Truncated -> "truncated image"
  | Bad_magic -> "bad magic (not a snapshot image)"
  | Bad_format v -> Printf.sprintf "unsupported format version %d" v
  | Tampered { chunk } -> Printf.sprintf "MAC mismatch on chunk %d" chunk
  | Header_forged -> "plaintext header disagrees with the sealed copy"
  | Stale { label; counter; latest } ->
    Printf.sprintf "stale image for %S: counter %Ld < latest %Ld" label counter
      latest
  | Wrong_kind { expected; got } ->
    Printf.sprintf "wrong image kind: expected %S, got %S" expected got
  | Incompatible_binary { expected; got } ->
    Printf.sprintf "image from a different binary (%s, this is %s)" expected got
  | Probe_mismatch { expected; got } ->
    Printf.sprintf "probe digest mismatch: captured %016Lx, restored %016Lx"
      expected got
  | Unmarshal_failed msg -> "unmarshal failed: " ^ msg
  | Io_error msg -> "i/o error: " ^ msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let magic = "AUTARKYSNAP1"
let chunk_size = 65_536
let master_key = "autarky-snapshot-seal-key"

type header = {
  h_kind : string;  (* "longrun" | "inject" | "serve" | ... *)
  h_label : string;  (* lineage identity for the freshness counter *)
  h_counter : int64;
  h_cycle : int64;
  h_probe : int64;  (* machine probe digest; 0L when absent *)
  h_binary : string;  (* MD5 of the producing executable *)
  h_payload : int;  (* payload bytes inside the seal *)
}

(* Closures restore only into the same code image, so the executable's
   digest rides in the header and gates the load with a typed error
   instead of a Marshal failure mid-parse.  Cached in an atomic, not a
   [lazy]: saves and loads run on pool domains, and concurrently forcing
   one lazy from two domains raises — a duplicated first computation is
   harmless. *)
let self_binary_cache = Atomic.make None

let self_binary () =
  match Atomic.get self_binary_cache with
  | Some d -> d
  | None ->
    let d =
      try Digest.to_hex (Digest.file Sys.executable_name)
      with _ -> "unknown"
    in
    Atomic.set self_binary_cache (Some d);
    d

let encode_header h =
  let b = Buffer.create 128 in
  Codec.W.str b h.h_kind;
  Codec.W.str b h.h_label;
  Codec.W.i64 b h.h_counter;
  Codec.W.i64 b h.h_cycle;
  Codec.W.i64 b h.h_probe;
  Codec.W.str b h.h_binary;
  Codec.W.u32 b h.h_payload;
  Buffer.contents b

let decode_header r =
  let h_kind = Codec.R.str r in
  let h_label = Codec.R.str r in
  let h_counter = Codec.R.i64 r in
  let h_cycle = Codec.R.i64 r in
  let h_probe = Codec.R.i64 r in
  let h_binary = Codec.R.str r in
  let h_payload = Codec.R.u32 r in
  { h_kind; h_label; h_counter; h_cycle; h_probe; h_binary; h_payload }

(* --- the freshness counter store --------------------------------------- *)

module Store = struct
  (* label -> latest counter, optionally persisted as one "label\tN"
     line per label.  The file is the trusted monotonic counter of the
     paper's freshness argument: rolled back alongside the images it
     protects, it would defeat the check, exactly as a rolled-back
     hardware counter would — the simulation keeps it in one place so
     experiments can also model that. *)
  type t = {
    path : string option;
    tbl : (string, int64) Hashtbl.t;
    lock : Mutex.t;
  }

  let in_memory () =
    { path = None; tbl = Hashtbl.create 8; lock = Mutex.create () }

  let load_file path tbl =
    match open_in path with
    | exception Sys_error _ -> ()
    | ic ->
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line '\t' with
           | Some i ->
             let label = String.sub line 0 i in
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             (match Int64.of_string_opt v with
             | Some c -> Hashtbl.replace tbl label c
             | None -> ())
           | None -> ()
         done
       with End_of_file -> ());
      close_in ic

  let file path =
    let tbl = Hashtbl.create 8 in
    load_file path tbl;
    { path = Some path; tbl; lock = Mutex.create () }

  let persist t =
    match t.path with
    | None -> ()
    | Some path ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      Hashtbl.iter (fun label c -> Printf.fprintf oc "%s\t%Ld\n" label c) t.tbl;
      close_out oc;
      Sys.rename tmp path

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let latest t label =
    with_lock t (fun () ->
        Option.value (Hashtbl.find_opt t.tbl label) ~default:0L)

  let next t label =
    with_lock t (fun () ->
        let c =
          Int64.add (Option.value (Hashtbl.find_opt t.tbl label) ~default:0L) 1L
        in
        Hashtbl.replace t.tbl label c;
        persist t;
        c)
end

(* --- save -------------------------------------------------------------- *)

let sealer () = Sim_crypto.Sealer.create ~master_key

let save ~store ~kind ~label ~cycle ?(probe = 0L) payload ~path =
  let counter = Store.next store label in
  let h =
    {
      h_kind = kind;
      h_label = label;
      h_counter = counter;
      h_cycle = cycle;
      h_probe = probe;
      h_binary = self_binary ();
      h_payload = Bytes.length payload;
    }
  in
  let hdr = encode_header h in
  let plain = Bytes.cat (Bytes.of_string hdr) payload in
  let total = Bytes.length plain in
  let nchunks = (total + chunk_size - 1) / chunk_size in
  let sl = sealer () in
  let b = Buffer.create (total + 256) in
  Buffer.add_string b magic;
  Codec.W.u32 b (String.length hdr);
  Buffer.add_string b hdr;
  Codec.W.u32 b nchunks;
  for i = 0 to nchunks - 1 do
    let off = i * chunk_size in
    let len = min chunk_size (total - off) in
    let s =
      Sim_crypto.Sealer.seal sl ~vaddr:(Int64.of_int i) ~version:counter
        (Bytes.sub plain off len)
    in
    Codec.W.u32 b (Bytes.length s.Sim_crypto.Sealer.ciphertext);
    Buffer.add_bytes b s.Sim_crypto.Sealer.ciphertext;
    Codec.W.i64 b s.Sim_crypto.Sealer.mac
  done;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc b;
  close_out oc;
  Sys.rename tmp path;
  counter

(* --- load -------------------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s

let ( let* ) = Result.bind

(* Structured parse of the outer container; every short read maps to
   [Truncated]. *)
let parse raw =
  let mlen = String.length magic in
  if String.length raw < mlen then Error Truncated
  else if not (String.equal (String.sub raw 0 mlen) magic) then Error Bad_magic
  else
    try
      let r = Codec.R.of_string raw in
      Codec.R.skip r mlen;
      let hlen = Codec.R.u32 r in
      let hdr_str = Codec.R.take r hlen in
      let h = decode_header (Codec.R.of_string hdr_str) in
      let nchunks = Codec.R.u32 r in
      let chunks =
        List.init nchunks (fun _ ->
            let clen = Codec.R.u32 r in
            let ciphertext = Bytes.of_string (Codec.R.take r clen) in
            let mac = Codec.R.i64 r in
            (ciphertext, mac))
      in
      Ok (h, hdr_str, chunks)
    with Codec.Short -> Error Truncated

let read_header ~path =
  let* raw = read_file path in
  let* h, _, _ = parse raw in
  Ok h

let unseal_chunks ~counter chunks =
  let sl = sealer () in
  let b = Buffer.create (chunk_size * List.length chunks) in
  let rec go i = function
    | [] -> Ok (Buffer.contents b)
    | (ciphertext, mac) :: rest -> (
      let s =
        {
          Sim_crypto.Sealer.ciphertext;
          mac;
          vaddr = Int64.of_int i;
          version = counter;
        }
      in
      match
        Sim_crypto.Sealer.unseal sl ~vaddr:(Int64.of_int i)
          ~expected_version:counter s
      with
      | Ok plain ->
        Buffer.add_bytes b plain;
        go (i + 1) rest
      | Error _ -> Error (Tampered { chunk = i }))
  in
  go 0 chunks

let load ?store ?expect_kind ~path () =
  let* raw = read_file path in
  let* h, outer_hdr, chunks = parse raw in
  (* The MACs bind the counter, so an edited counter field dies here;
     a verbatim old image survives to the freshness check below. *)
  let* plain = unseal_chunks ~counter:h.h_counter chunks in
  let hlen = String.length outer_hdr in
  let* () =
    if String.length plain < hlen then Error Truncated
    else if not (String.equal (String.sub plain 0 hlen) outer_hdr) then
      Error Header_forged
    else Ok ()
  in
  let* () =
    if String.length plain - hlen <> h.h_payload then Error Truncated else Ok ()
  in
  let* () =
    match expect_kind with
    | Some k when k <> h.h_kind ->
      Error (Wrong_kind { expected = k; got = h.h_kind })
    | _ -> Ok ()
  in
  let* () =
    let self = self_binary () in
    if h.h_binary <> self then
      Error (Incompatible_binary { expected = h.h_binary; got = self })
    else Ok ()
  in
  let* () =
    match store with
    | None -> Ok ()
    | Some st ->
      let latest = Store.latest st h.h_label in
      if h.h_counter < latest then
        Error (Stale { label = h.h_label; counter = h.h_counter; latest })
      else Ok ()
  in
  let payload =
    Bytes.of_string (String.sub plain hlen (String.length plain - hlen))
  in
  Ok (h, payload)
