(* Little-endian binary writer/reader for the snapshot container and
   the explicit structure codecs.

   Two serialization engines coexist in this library on purpose.  The
   whole-world capture goes through [Marshal] (closures included; see
   {!Snapshot}), which preserves sharing and cycles but is opaque.
   The *hot* flat structures — [Sgx.Flat], [Sgx.Tlb], [Sgx.Page_table]
   — additionally get these explicit, versioned codecs: they are the
   subject of the QCheck round-trip suite and the input of the probe
   digest that cross-checks a restore against the capture-time state,
   so a Marshal regression (or an unintended representation change)
   is caught by something that does not itself use Marshal. *)

exception Short
(** A reader ran off the end of its input. *)

module W = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let i64 = Buffer.add_int64_le

  let int_ b v = i64 b (Int64.of_int v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let bytes_ b s =
    u32 b (Bytes.length s);
    Buffer.add_bytes b s

  let int_array b a =
    u32 b (Array.length a);
    Array.iter (fun v -> int_ b v) a
end

module R = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }
  let pos t = t.pos
  let remaining t = String.length t.src - t.pos

  let need t n = if remaining t < n then raise Short

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) in
    t.pos <- t.pos + 4;
    v land 0xFFFFFFFF

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int_ t = Int64.to_int (i64 t)

  let take t n =
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let skip t n =
    need t n;
    t.pos <- t.pos + n

  let str t = take t (u32 t)

  let bytes_ t = Bytes.of_string (str t)

  let int_array t =
    let n = u32 t in
    (* 8 bytes per element: bound the allocation before trusting n. *)
    need t (8 * n);
    Array.init n (fun _ -> int_ t)
end

(* --- structure codecs ------------------------------------------------- *)

(* Each structure codec leads with a one-byte tag so a reader pointed at
   the wrong section fails loudly instead of reinterpreting arrays. *)
let tag_flat = 0xF1
let tag_tlb = 0xF2
let tag_page_table = 0xF3

let check_tag r expected name =
  let t = R.u8 r in
  if t <> expected then
    invalid_arg (Printf.sprintf "Codec.%s: bad tag 0x%02X" name t)

let write_flat b t =
  let r = Sgx.Flat.export_state t in
  W.u8 b tag_flat;
  W.int_array b r.Sgx.Flat.raw_keys;
  W.int_array b r.Sgx.Flat.raw_vals;
  W.int_ b r.Sgx.Flat.raw_live;
  W.int_ b r.Sgx.Flat.raw_tombs

let read_flat r =
  check_tag r tag_flat "read_flat";
  let raw_keys = R.int_array r in
  let raw_vals = R.int_array r in
  let raw_live = R.int_ r in
  let raw_tombs = R.int_ r in
  Sgx.Flat.import_state { Sgx.Flat.raw_keys; raw_vals; raw_live; raw_tombs }

let write_tlb b t =
  let r = Sgx.Tlb.export_state t in
  W.u8 b tag_tlb;
  W.int_ b r.Sgx.Tlb.raw_cap;
  W.int_array b r.Sgx.Tlb.raw_keys;
  W.int_array b r.Sgx.Tlb.raw_vals;
  W.int_array b r.Sgx.Tlb.raw_gens;
  W.int_ b r.Sgx.Tlb.raw_gen;
  W.int_ b r.Sgx.Tlb.raw_live;
  W.int_ b r.Sgx.Tlb.raw_tombs;
  W.int_array b r.Sgx.Tlb.raw_ring;
  W.int_ b r.Sgx.Tlb.raw_head;
  W.int_ b r.Sgx.Tlb.raw_tail

let read_tlb r =
  check_tag r tag_tlb "read_tlb";
  let raw_cap = R.int_ r in
  let raw_keys = R.int_array r in
  let raw_vals = R.int_array r in
  let raw_gens = R.int_array r in
  let raw_gen = R.int_ r in
  let raw_live = R.int_ r in
  let raw_tombs = R.int_ r in
  let raw_ring = R.int_array r in
  let raw_head = R.int_ r in
  let raw_tail = R.int_ r in
  Sgx.Tlb.import_state
    {
      Sgx.Tlb.raw_cap;
      raw_keys;
      raw_vals;
      raw_gens;
      raw_gen;
      raw_live;
      raw_tombs;
      raw_ring;
      raw_head;
      raw_tail;
    }

let write_page_table b t =
  let r = Sgx.Page_table.export_state t in
  W.u8 b tag_page_table;
  W.int_ b r.Sgx.Page_table.raw_base;
  W.int_array b r.Sgx.Page_table.raw_tbl;
  W.int_ b r.Sgx.Page_table.raw_entries

let read_page_table r =
  check_tag r tag_page_table "read_page_table";
  let raw_base = R.int_ r in
  let raw_tbl = R.int_array r in
  let raw_entries = R.int_ r in
  Sgx.Page_table.import_state { Sgx.Page_table.raw_base; raw_tbl; raw_entries }
