(** CopyCat-style single-stepping (Moghimi et al.): interrupt the
    enclave after every instruction and count completed accesses up to
    an attacker-induced fault on the marker page — the count is the
    secret symbol.  Against a legacy enclave the marker mapping is
    repaired silently; against Autarky the first fault on the resident
    enclave-managed marker is detected and the enclave terminates. *)

val adversary : Adversary.t
