(** The pluggable adversary interface of the red-team suite.

    An adversary receives a victim {e factory} — calling it builds a
    fresh, identically-configured {!Victim.t} — because some attacks
    (KingsGuard's escalation ladder) burn through several enclaves:
    each Autarky detection terminates one, and the attacker simply
    starts over against the restarted service.  The adversary returns
    the primary victim it observed (for ground truth and the trace
    digest) plus its per-request observations, which the scoreboard
    turns into bits via {!Attacks.Leakage}. *)

(** How the attack ended: the victim completed every request, or at
    least one victim instance was terminated by an Autarky detection. *)
type outcome = Completed | Detected of string

type observation = {
  ob_request : int;  (** which request this observation is about *)
  ob_candidates : int list;
      (** the symbols the channel narrowed the request down to (sorted,
          duplicate-free); [[]] means the channel said nothing — a
          blind guess among the whole alphabet *)
}

type result = {
  res_outcome : outcome;
  res_observations : observation list;
      (** ascending by [ob_request]; at most one entry per request, and
          none for requests cut short by a termination *)
  res_probes : int;  (** active attacker operations performed *)
  res_terminations : int;
      (** victim instances terminated by a detection — each one is a
          §5.3 termination-channel event worth at most one bit *)
}

type t = {
  id : string;
  description : string;
  run : (unit -> Victim.t) -> Victim.t * result;
}

val of_victim_outcome : Victim.outcome -> outcome * int
(** Map a victim run's end state to an adversary outcome and its
    termination count (0 or 1). *)
