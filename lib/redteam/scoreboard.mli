(** The bits-leaked scoreboard: every registered adversary against
    every (policy x SGX version) victim configuration, scored with the
    §5.2.3 leakage accounting of {!Attacks.Leakage}.

    Scoring: each request carries [log2 alphabet] bits.  An observation
    that narrows the request to [k] candidate symbols {e including the
    true one} recovers [log2 alphabet - log2 k] bits; an observation
    that misses the truth (or says nothing) recovers none.  Enclave
    terminations are §5.3 termination-channel events, scored separately
    at one bit each — the paper's point is precisely that Autarky
    converts unbounded paging leakage into such one-bit detections.

    Cells are sharded over domains with {!Parallel.Pool}; seeds derive
    from the cell's position in the canonical full matrix, so results
    (including trace digests) are bit-identical at any [--jobs]. *)

val adversaries : Adversary.t list
(** The registry, canonical order: copycat, branch-shadow, pigeonhole,
    kingsguard. *)

val find_adversary : string -> Adversary.t option

val configs : (Victim.policy * Autarky.Pager.mech) list
(** Canonical victim configurations: the legacy baseline (SGXv1 only)
    followed by the three Autarky policies on SGXv1 and SGXv2. *)

type cell = {
  c_adversary : string;
  c_policy : Victim.policy;
  c_mech : Autarky.Pager.mech;
  c_outcome : Adversary.outcome;
  c_requests : int;
  c_alphabet : int;
  c_observations : int;  (** requests with a non-empty candidate set *)
  c_bits_leaked : float;
  c_bits_ideal : float;  (** [requests * log2 alphabet] *)
  c_guess_probability : float;
      (** mean per-request probability of guessing the symbol *)
  c_blind_guess : float;  (** [1 / alphabet] *)
  c_probes : int;
  c_terminations : int;
  c_termination_bits : float;
  c_digest : string;  (** primary victim's trace digest *)
}

val sizes : quick:bool -> int * int
(** [(symbols, alphabet)]: 16 x 16 quick, 48 x 32 full. *)

val run :
  ?quick:bool ->
  ?adversaries:Adversary.t list ->
  ?policies:Victim.policy list ->
  ?mechs:Autarky.Pager.mech list ->
  seed:int ->
  jobs:int ->
  unit ->
  cell list
(** Run the (optionally filtered) matrix.  Filters select cells out of
    the canonical full matrix without renumbering the survivors, so a
    filtered cell's seed — and therefore its result — matches the same
    cell in a full run.  A mech filter never drops the baseline (which
    only exists on SGXv1). *)

val to_json : quick:bool -> seed:int -> cell list -> string
(** The [autarky-redteam/1] document.  Contains no wall-clock or
    worker-count fields: byte-identical output at any [jobs]. *)

val print_table : cell list -> unit
(** Human-readable matrix on stdout. *)
