let run mk =
  let v = mk () in
  let os = Victim.os v in
  let proc = Victim.proc v in
  let probes = ref 0 in
  let obs = ref [] in
  let outcome =
    Victim.run v
      ~before:(fun _ ->
        (* Drain residue from setup or the previous request so the
           post-request sample isolates this request's branches. *)
        incr probes;
        ignore (Sim_os.Kernel.attacker_sample_branches os proc))
      ~after:(fun r ->
        incr probes;
        let vps = Sim_os.Kernel.attacker_sample_branches os proc in
        let cands =
          List.sort_uniq compare
            (List.filter_map (Victim.symbol_of_code_vpage v) vps)
        in
        obs := { Adversary.ob_request = r; ob_candidates = cands } :: !obs)
  in
  let res_outcome, res_terminations = Adversary.of_victim_outcome outcome in
  ( v,
    {
      Adversary.res_outcome;
      res_observations = List.rev !obs;
      res_probes = !probes;
      res_terminations;
    } )

let adversary =
  {
    Adversary.id = "branch-shadow";
    description =
      "per-request branch-trace ring read-out of secret-indexed code pages \
       (Branch Shadowing, Lee et al.; outside the paging threat model)";
    run;
  }
