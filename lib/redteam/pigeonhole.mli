(** Pigeonhole-style fault-pattern spying (Shinde et al.): a purely
    passive adversary that watches which pages become EPC-resident
    (the demand-paging side channel of §4 — always visible to the OS)
    and intersects each request's fetches with the secret-indexed data
    region.  Cluster-granularity fetching dilutes the candidate set;
    the ORAM policy never demand-pages the data region at all, so this
    adversary measures exactly 0.0 bits against it. *)

val adversary : Adversary.t
