(** The red-team suite's common victim: a secret-dependent workload
    whose per-request symbol is exposed through every controlled
    channel the simulator models at once.

    Each request [r] processes one secret symbol [s = secret.(r)] of an
    [alphabet]-sized alphabet and touches memory so that:

    - the number of scratch-page accesses before the marker-page access
      equals [s + 1] (the access-count channel CopyCat-style
      single-stepping reads, Moghimi et al.);
    - code page [code_base + s] is executed (the branch-trace channel
      of Branch Shadowing, Lee et al.);
    - data page [data_page v s] is read (the demand-paging / fault
      channel of Pigeonhole-style attacks, Shinde et al.).

    Every request performs the same total number of accesses regardless
    of [s], so nothing is leaked through lengths — only through the
    channels above.  The victim is built on {!Harness.System} under one
    of the paper's three policies (or as a legacy baseline enclave) and
    either SGX paging mechanism, with a streaming trace digest for
    determinism checks. *)

(** Which defense the enclave runs.  [Baseline] is a legacy (non
    self-paging) enclave; the other three are Autarky self-paging
    enclaves under the §5.2 policies. *)
type policy = Baseline | Rate_limit | Clusters | Oram

val policy_name : policy -> string
val policy_of_name : string -> policy option
val all_policies : policy list
(** [Baseline; Rate_limit; Clusters; Oram] — canonical order. *)

val mech_name : Autarky.Pager.mech -> string
val mech_of_name : string -> Autarky.Pager.mech option

type config = {
  policy : policy;
  mech : Autarky.Pager.mech;  (** ignored for [Baseline] (always SGXv1) *)
  symbols : int;  (** number of requests, each processing one symbol *)
  alphabet : int;  (** symbol alphabet size [N >= 2] *)
  seed : int;  (** seeds the secret and every other RNG *)
}

type t

val create : config -> t
(** Build the full platform (machine, kernel, enclave, policy wiring)
    and derive the secret.  Deterministic in [config].
    @raise Invalid_argument on non-positive [symbols] or [alphabet < 2]. *)

(** How a full run ended: every request completed, or the enclave was
    terminated (an Autarky detection) with the runtime's reason. *)
type outcome = Completed | Terminated of string

val run : t -> before:(int -> unit) -> after:(int -> unit) -> outcome
(** Process every request in order.  [before r] / [after r] run outside
    the enclave around request [r] — the adversary's foothold.  [after]
    is not called for a request cut short by termination.  A victim can
    only be run once. *)

(** {1 Topology (what the adversary is assumed to know)} *)

val config : t -> config
val alphabet : t -> int
val symbols : t -> int
val policy : t -> policy
val scratch : t -> Sgx.Types.vpage
val marker : t -> Sgx.Types.vpage
val code_base : t -> Sgx.Types.vpage
(** [alphabet] consecutive code pages; page [code_base + s] is executed
    by a request processing symbol [s]. *)

val data_page : t -> int -> Sgx.Types.vpage
(** The data page read by a request processing symbol [s]. *)

val symbol_of_data_vpage : t -> Sgx.Types.vpage -> int option
val symbol_of_code_vpage : t -> Sgx.Types.vpage -> int option

(** {1 Platform access (the adversary is the OS)} *)

val sys : t -> Harness.System.t
val os : t -> Sim_os.Kernel.t
val proc : t -> Sim_os.Kernel.proc
val cpu : t -> Sgx.Cpu.t

(** {1 Ground truth and determinism} *)

val secret : t -> int array
(** The secret symbol sequence (a copy) — ground truth for scoring an
    adversary's guesses, never readable through the simulated platform. *)

val digest : t -> string
(** Streaming FNV-1a digest of the victim's full trace so far
    (["fnv64:..."]) — the determinism witness for jobs-invariance
    tests. *)
