let run mk =
  let v = mk () in
  let os = Victim.os v in
  let proc = Victim.proc v in
  let cpu = Victim.cpu v in
  let marker = Victim.marker v in
  let n = Victim.alphabet v in
  let hooks = Sim_os.Kernel.hooks os in
  let saved_fault = hooks.Sim_os.Kernel.on_fault in
  let saved_preempt = hooks.Sim_os.Kernel.on_preempt in
  let steps = ref 0 in
  let fault_step = ref None in
  let probes = ref 0 in
  let obs = ref [] in
  hooks.Sim_os.Kernel.on_preempt <- (fun _ -> incr steps);
  hooks.Sim_os.Kernel.on_fault <-
    (fun p report ->
      let vp = Sgx.Types.vpage_of_vaddr report.Sgx.Types.fr_vaddr in
      (* Against Autarky the report is masked to the enclave base, so
         this never matches the marker — and the induced fault already
         terminated the enclave before any silent repair could help. *)
      if vp = marker && !fault_step = None then begin
        fault_step := Some !steps;
        if Sim_os.Kernel.resident os p marker then begin
          incr probes;
          Sim_os.Kernel.attacker_restore os p marker;
          Sim_os.Kernel.Fixed_silently
        end
        else Sim_os.Kernel.Benign
      end
      else saved_fault p report);
  Sgx.Cpu.set_preempt_interval cpu (Some 1);
  let outcome =
    Victim.run v
      ~before:(fun _ ->
        steps := 0;
        fault_step := None;
        incr probes;
        Sim_os.Kernel.attacker_unmap os proc marker)
      ~after:(fun r ->
        (* [fault_step] holds the completed-access count at the marker
           fault; the request prefix performs exactly [s + 1] scratch
           reads first, so the symbol is the count minus one. *)
        let cands =
          match !fault_step with
          | Some c when c >= 1 && c - 1 < n -> [ c - 1 ]
          | Some _ | None -> []
        in
        obs := { Adversary.ob_request = r; ob_candidates = cands } :: !obs)
  in
  Sgx.Cpu.set_preempt_interval cpu None;
  hooks.Sim_os.Kernel.on_fault <- saved_fault;
  hooks.Sim_os.Kernel.on_preempt <- saved_preempt;
  let res_outcome, res_terminations = Adversary.of_victim_outcome outcome in
  ( v,
    {
      Adversary.res_outcome;
      res_observations = List.rev !obs;
      res_probes = !probes;
      res_terminations;
    } )

let adversary =
  {
    Adversary.id = "copycat";
    description =
      "single-step interrupt counting against an unmapped marker page \
       (CopyCat, Moghimi et al.)";
    run;
  }
