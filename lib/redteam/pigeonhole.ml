let run mk =
  let v = mk () in
  let os = Victim.os v in
  let hooks = Sim_os.Kernel.hooks os in
  let saved_fetch = hooks.Sim_os.Kernel.on_fetch in
  let bucket = ref [] in
  hooks.Sim_os.Kernel.on_fetch <- (fun _ vps -> bucket := vps @ !bucket);
  let obs = ref [] in
  let outcome =
    Victim.run v
      ~before:(fun _ -> bucket := [])
      ~after:(fun r ->
        let cands =
          List.sort_uniq compare
            (List.filter_map (Victim.symbol_of_data_vpage v) !bucket)
        in
        obs := { Adversary.ob_request = r; ob_candidates = cands } :: !obs)
  in
  hooks.Sim_os.Kernel.on_fetch <- saved_fetch;
  let res_outcome, res_terminations = Adversary.of_victim_outcome outcome in
  ( v,
    {
      Adversary.res_outcome;
      res_observations = List.rev !obs;
      res_probes = 0;
      res_terminations;
    } )

let adversary =
  {
    Adversary.id = "pigeonhole";
    description =
      "passive demand-fetch pattern spying on the secret-indexed data \
       region (Pigeonhole, Shinde et al.)";
    run;
  }
