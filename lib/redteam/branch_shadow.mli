(** Branch Shadowing (Lee et al.): read the machine's branch-trace ring
    (an LBR/BTB model that is not flushed on enclave exit) after every
    request and recover which secret-indexed code page ran.  The
    channel is microarchitectural, not paging — outside Autarky's §3
    threat model — so it leaks against every policy alike.  The suite
    includes it to show the scoreboard reports honest non-zero rows for
    channels self-paging cannot close. *)

val adversary : Adversary.t
