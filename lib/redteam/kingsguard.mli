(** A real-world attack ladder modeled on the published SGX paging
    vulnerabilities (§2): the adversary escalates through the three
    tamper classes an actual malicious OS has used, restarting the
    service (a fresh victim) after each Autarky detection kills one.

    - A/D-bit monitoring (Wang et al.): clear accessed bits before each
      request, read them back after — the stealthy variant of the
      controlled channel, and the primary observation run.
    - Page-table tamper: unmap a pinned page mid-run (the classic
      page-fault channel's arming step).
    - Residence-contract tamper: secretly EWB a pinned page out of the
      EPC and delete its sealed blob, a Byzantine swap device (blob
      deletion is skipped against the legacy baseline, where a lost
      blob is a simulator-level crash rather than a modeled detection).

    Each terminated victim is one §5.3 termination-channel event,
    reported separately from the paging-channel bits. *)

val adversary : Adversary.t
