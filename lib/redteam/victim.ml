type policy = Baseline | Rate_limit | Clusters | Oram

let all_policies = [ Baseline; Rate_limit; Clusters; Oram ]

let policy_name = function
  | Baseline -> "baseline"
  | Rate_limit -> "rate-limit"
  | Clusters -> "clusters"
  | Oram -> "oram"

let policy_of_name = function
  | "baseline" -> Some Baseline
  | "rate-limit" -> Some Rate_limit
  | "clusters" -> Some Clusters
  | "oram" -> Some Oram
  | _ -> None

let mech_name = function `Sgx1 -> "sgx1" | `Sgx2 -> "sgx2"

let mech_of_name = function
  | "sgx1" -> Some `Sgx1
  | "sgx2" -> Some `Sgx2
  | _ -> None

type config = {
  policy : policy;
  mech : Autarky.Pager.mech;
  symbols : int;
  alphabet : int;
  seed : int;
}

type outcome = Completed | Terminated of string

type t = {
  cfg : config;
  sys : Harness.System.t;
  secret : int array;
  vic_scratch : Sgx.Types.vpage;
  vic_marker : Sgx.Types.vpage;
  vic_code_base : Sgx.Types.vpage;
  data_pages : Sgx.Types.vpage array;
  symbol_of_data : (Sgx.Types.vpage, int) Hashtbl.t;
  vm : Workloads.Vm.t;
  vic_digest : unit -> string;
  mutable ran : bool;
}

(* Address-space layout (in reserve order): the first [epc_limit] image
   pages are initially EPC-resident, so the pad region is sized to put
   the data region exactly at the residence boundary — no data page
   starts resident (its first touch is an observable demand fetch), and
   the pad pages stay OS-managed to give the kernel evictable working
   room. *)
let pad_pages = 16

let create cfg =
  if cfg.symbols <= 0 then invalid_arg "Victim.create: symbols must be positive";
  if cfg.alphabet < 2 then invalid_arg "Victim.create: alphabet must be >= 2";
  let n = cfg.alphabet in
  let self_paging = cfg.policy <> Baseline in
  let mech = if self_paging then cfg.mech else `Sgx1 in
  let cache_pages = if cfg.policy = Oram then 2 * n else 0 in
  (* The budget holds the whole working set — pinned pages plus every
     data page — so the pager never evicts on its own.  FIFO eviction
     would reach the pinned pages first (they are the oldest residents),
     and an SGXv2 refetch maps pages RW (EACCEPTCOPY), which would cost
     a refetched code page its exec permission.  Self-inflicted churn is
     not a channel under study; attackers that want eviction force it. *)
  let budget = 2 + n + cache_pages + n + 8 in
  let epc_limit = if self_paging then budget + 8 else 2 + n + pad_pages in
  let enclave_pages = epc_limit + n in
  let sys =
    Harness.System.create ~mech ~trace:true ~epc_frames:(epc_limit + 64)
      ~epc_limit ~enclave_pages ~self_paging
      ?budget:(if self_paging then Some budget else None)
      ()
  in
  let sink, digest = Trace.Sink.digest () in
  Trace.Recorder.add_sink (Harness.System.tracer_exn sys) sink;
  let scratch = Harness.System.reserve sys ~pages:1 in
  let marker = Harness.System.reserve sys ~pages:1 in
  let code_base = Harness.System.reserve sys ~pages:n in
  let cache_base =
    if cache_pages > 0 then Harness.System.reserve sys ~pages:cache_pages
    else 0
  in
  let pad = epc_limit - (2 + n + cache_pages) in
  let (_ : Sgx.Types.vpage) = Harness.System.reserve sys ~pages:pad in
  let cluster_pages = match cfg.policy with Clusters -> 4 | _ -> 1 in
  let heap = Harness.System.allocator sys ~pages:n ~cluster_pages in
  let base = (Harness.System.enclave sys).Sgx.Enclave.base_vpage in
  assert (Autarky.Allocator.base_vpage heap = base + epc_limit);
  let data_pages = Array.init n (fun _ -> Autarky.Allocator.alloc_page heap) in
  let symbol_of_data = Hashtbl.create n in
  Array.iteri (fun i vp -> Hashtbl.replace symbol_of_data vp i) data_pages;
  let rng = Metrics.Rng.create ~seed:(Int64.of_int cfg.seed) in
  let secret = Array.init cfg.symbols (fun _ -> Metrics.Rng.int rng n) in
  let progress_hook = ref (fun () -> ()) in
  let instrument = ref None in
  let pinned = scratch :: marker :: List.init n (fun i -> code_base + i) in
  (match cfg.policy with
  | Baseline -> ()
  | Rate_limit ->
    let rt = Harness.System.runtime_exn sys in
    Harness.System.pin sys pinned;
    (* Worst-case legitimate faults per request: one data fetch plus
       refetches of thrashed pinned pages — far below 64. *)
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:64 ()
    in
    progress_hook := (fun () -> Autarky.Policy_rate_limit.progress rl);
    Harness.System.manage sys (Array.to_list data_pages);
    Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl)
  | Clusters ->
    let rt = Harness.System.runtime_exn sys in
    Harness.System.pin sys pinned;
    let pc =
      Autarky.Policy_clusters.create ~runtime:rt
        ~clusters:(Autarky.Allocator.clusters heap)
    in
    Harness.System.manage sys (Array.to_list data_pages);
    Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc)
  | Oram ->
    let rt = Harness.System.runtime_exn sys in
    Harness.System.pin sys pinned;
    let oram =
      Oram.Path_oram.create ~clock:(Harness.System.clock sys)
        ~rng:(Metrics.Rng.create ~seed:(Int64.of_int (cfg.seed + 977)))
        ~n_blocks:n ()
    in
    let cache =
      Autarky.Oram_cache.create ~machine:(Harness.System.machine sys)
        ~enclave:(Harness.System.enclave sys)
        ~touch:(fun a k -> Sgx.Cpu.access (Harness.System.cpu sys) a k)
        ~oram
        ~data_base_vpage:(Autarky.Allocator.base_vpage heap)
        ~n_pages:n ~cache_base_vpage:cache_base ~capacity_pages:cache_pages ()
    in
    Harness.System.pin sys (List.init cache_pages (fun i -> cache_base + i));
    let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
    instrument :=
      Some
        (Autarky.Policy_oram.accessor pol ~fallback:(fun a k ->
             Sgx.Cpu.access (Harness.System.cpu sys) a k));
    Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol));
  let vm =
    match !instrument with
    | Some i ->
      Harness.System.vm sys ~instrument:i
        ~on_progress:(fun () -> !progress_hook ())
        ()
    | None ->
      Harness.System.vm sys ~on_progress:(fun () -> !progress_hook ()) ()
  in
  {
    cfg;
    sys;
    secret;
    vic_scratch = scratch;
    vic_marker = marker;
    vic_code_base = code_base;
    data_pages;
    symbol_of_data;
    vm;
    vic_digest = digest;
    ran = false;
  }

(* One request: [s + 1] scratch reads, the marker read, then scratch
   reads up to a constant total, the symbol's code page, the symbol's
   data page.  Total accesses are [alphabet + 4] for every symbol —
   only the *position* of the marker access, the code page and the data
   page depend on the secret. *)
let request t r =
  let n = t.cfg.alphabet in
  let s = t.secret.(r) in
  let scratch_a = Sgx.Types.vaddr_of_vpage t.vic_scratch in
  for _ = 0 to s do
    t.vm.Workloads.Vm.read scratch_a
  done;
  t.vm.Workloads.Vm.read (Sgx.Types.vaddr_of_vpage t.vic_marker);
  for _ = 1 to n - s do
    t.vm.Workloads.Vm.read scratch_a
  done;
  t.vm.Workloads.Vm.exec (Sgx.Types.vaddr_of_vpage (t.vic_code_base + s));
  t.vm.Workloads.Vm.read (Sgx.Types.vaddr_of_vpage t.data_pages.(s));
  t.vm.Workloads.Vm.progress ()

let run t ~before ~after =
  if t.ran then invalid_arg "Victim.run: a victim can only be run once";
  t.ran <- true;
  try
    for r = 0 to t.cfg.symbols - 1 do
      before r;
      Harness.System.run_in_enclave t.sys (fun () -> request t r);
      after r
    done;
    Completed
  with Sgx.Types.Enclave_terminated { reason; _ } -> Terminated reason

let config t = t.cfg
let alphabet t = t.cfg.alphabet
let symbols t = t.cfg.symbols
let policy t = t.cfg.policy
let scratch t = t.vic_scratch
let marker t = t.vic_marker
let code_base t = t.vic_code_base

let data_page t s =
  if s < 0 || s >= t.cfg.alphabet then invalid_arg "Victim.data_page";
  t.data_pages.(s)

let symbol_of_data_vpage t vp = Hashtbl.find_opt t.symbol_of_data vp

let symbol_of_code_vpage t vp =
  if vp >= t.vic_code_base && vp < t.vic_code_base + t.cfg.alphabet then
    Some (vp - t.vic_code_base)
  else None

let sys t = t.sys
let os t = Harness.System.os t.sys
let proc t = Harness.System.proc t.sys
let cpu t = Harness.System.cpu t.sys
let secret t = Array.copy t.secret
let digest t = t.vic_digest ()
