let adversaries =
  [
    Copycat.adversary;
    Branch_shadow.adversary;
    Pigeonhole.adversary;
    Kingsguard.adversary;
  ]

let all_adversaries = adversaries

let find_adversary id =
  List.find_opt (fun a -> a.Adversary.id = id) adversaries

let configs =
  (Victim.Baseline, `Sgx1)
  :: List.concat_map
       (fun p -> [ (p, `Sgx1); (p, `Sgx2) ])
       [ Victim.Rate_limit; Victim.Clusters; Victim.Oram ]

type cell = {
  c_adversary : string;
  c_policy : Victim.policy;
  c_mech : Autarky.Pager.mech;
  c_outcome : Adversary.outcome;
  c_requests : int;
  c_alphabet : int;
  c_observations : int;
  c_bits_leaked : float;
  c_bits_ideal : float;
  c_guess_probability : float;
  c_blind_guess : float;
  c_probes : int;
  c_terminations : int;
  c_termination_bits : float;
  c_digest : string;
}

let sizes ~quick = if quick then (16, 16) else (48, 32)

let log2 x = log x /. log 2.0

let run_cell ~adversary ~policy ~mech ~symbols ~alphabet ~seed =
  let cfg = { Victim.policy; mech; symbols; alphabet; seed } in
  let v, r = adversary.Adversary.run (fun () -> Victim.create cfg) in
  let secret = Victim.secret v in
  let by_request = Hashtbl.create symbols in
  List.iter
    (fun ob ->
      Hashtbl.replace by_request ob.Adversary.ob_request
        ob.Adversary.ob_candidates)
    r.Adversary.res_observations;
  let score = Attacks.Leakage.create_score () in
  let bits = ref 0.0 in
  let nonempty = ref 0 in
  for req = 0 to symbols - 1 do
    let cands =
      Option.value (Hashtbl.find_opt by_request req) ~default:[]
    in
    let k = List.length cands in
    let hit = List.mem secret.(req) cands in
    if k > 0 then incr nonempty;
    Attacks.Leakage.observe score ~candidates:k ~accessed_in_set:hit
      ~total_items:alphabet;
    (* A candidate set holding the truth narrows log2 N down to
       log2 k; a miss (or silence) recovers nothing. *)
    if hit && k > 0 then
      bits := !bits +. (log2 (float_of_int alphabet) -. log2 (float_of_int k))
  done;
  {
    c_adversary = adversary.Adversary.id;
    c_policy = policy;
    c_mech = mech;
    c_outcome = r.Adversary.res_outcome;
    c_requests = symbols;
    c_alphabet = alphabet;
    c_observations = !nonempty;
    c_bits_leaked = !bits;
    c_bits_ideal = float_of_int symbols *. log2 (float_of_int alphabet);
    c_guess_probability = Attacks.Leakage.guess_probability score;
    c_blind_guess = 1.0 /. float_of_int alphabet;
    c_probes = r.Adversary.res_probes;
    c_terminations = r.Adversary.res_terminations;
    (* §5.3: each termination the OS provokes tells it at most one bit. *)
    c_termination_bits = float_of_int r.Adversary.res_terminations;
    c_digest = Victim.digest v;
  }

let run ?(quick = false) ?(adversaries = adversaries) ?(policies = Victim.all_policies)
    ?(mechs = [ `Sgx1; `Sgx2 ]) ~seed ~jobs () =
  let symbols, alphabet = sizes ~quick in
  let wanted_adv a = List.exists (fun a' -> a'.Adversary.id = a.Adversary.id) adversaries in
  let wanted_cfg (p, m) =
    List.mem p policies && (List.mem m mechs || p = Victim.Baseline)
  in
  (* Shard seeds index into the canonical *full* matrix, so a filtered
     sweep reproduces exactly the cells of an unfiltered one. *)
  let tasks =
    List.concat_map
      (fun a -> List.map (fun c -> (a, c)) configs)
      all_adversaries
    |> List.mapi (fun idx (a, c) -> (idx, a, c))
    |> List.filter (fun (_, a, c) -> wanted_adv a && wanted_cfg c)
  in
  Parallel.Pool.map ~jobs
    (fun (idx, adversary, (policy, mech)) ->
      run_cell ~adversary ~policy ~mech ~symbols ~alphabet
        ~seed:(Parallel.Pool.shard_seed ~root:seed ~shard:idx))
    tasks

let outcome_strings = function
  | Adversary.Completed -> ("completed", "")
  | Adversary.Detected reason -> ("detected", reason)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ~quick ~seed cells =
  let b = Buffer.create 8_192 in
  let f = Printf.sprintf "%.6f" in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"autarky-redteam/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string b "  \"cells\": [\n";
  let last = List.length cells - 1 in
  List.iteri
    (fun i c ->
      let outcome, reason = outcome_strings c.c_outcome in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"adversary\": \"%s\", \"policy\": \"%s\", \"mech\": \
            \"%s\", \"outcome\": \"%s\", \"reason\": \"%s\", \"requests\": \
            %d, \"alphabet\": %d, \"observations\": %d, \"bits_leaked\": %s, \
            \"bits_ideal\": %s, \"guess_probability\": %s, \
            \"blind_guess_probability\": %s, \"probes\": %d, \
            \"terminations\": %d, \"termination_bits\": %s, \"digest\": \
            \"%s\"}%s\n"
           (json_escape c.c_adversary)
           (Victim.policy_name c.c_policy)
           (Victim.mech_name c.c_mech)
           outcome (json_escape reason) c.c_requests c.c_alphabet
           c.c_observations (f c.c_bits_leaked) (f c.c_bits_ideal)
           (f c.c_guess_probability) (f c.c_blind_guess) c.c_probes
           c.c_terminations
           (f c.c_termination_bits)
           (json_escape c.c_digest)
           (if i = last then "" else ",")))
    cells;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_table cells =
  Printf.printf "  %-14s %-11s %-5s %-9s %12s %11s %6s %6s\n" "adversary"
    "policy" "mech" "outcome" "bits_leaked" "bits_ideal" "obs" "kills";
  List.iter
    (fun c ->
      let outcome, _ = outcome_strings c.c_outcome in
      Printf.printf "  %-14s %-11s %-5s %-9s %12.2f %11.2f %6d %6d\n"
        c.c_adversary
        (Victim.policy_name c.c_policy)
        (Victim.mech_name c.c_mech)
        outcome c.c_bits_leaked c.c_bits_ideal c.c_observations
        c.c_terminations)
    cells
