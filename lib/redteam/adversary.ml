type outcome = Completed | Detected of string

type observation = { ob_request : int; ob_candidates : int list }

type result = {
  res_outcome : outcome;
  res_observations : observation list;
  res_probes : int;
  res_terminations : int;
}

type t = {
  id : string;
  description : string;
  run : (unit -> Victim.t) -> Victim.t * result;
}

let of_victim_outcome = function
  | Victim.Completed -> (Completed, 0)
  | Victim.Terminated reason -> (Detected reason, 1)
