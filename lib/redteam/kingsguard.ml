(* Candidate symbols for one request: data pages whose accessed bit the
   walk set back after the attacker cleared it. *)
let ad_candidates os proc v =
  let n = Victim.alphabet v in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match Sim_os.Kernel.attacker_read_ad os proc (Victim.data_page v i) with
    | Some (true, _) -> acc := i :: !acc
    | Some (false, _) | None -> ()
  done;
  !acc

let run mk =
  let probes = ref 0 in
  (* Stage 1 — A/D-bit monitoring, the observation run.  Against
     Autarky, clearing the accessed bit of the (pinned, every-request)
     marker page makes the very next walk fault with the A/D-clear
     cause: detection on request 0. *)
  let v = mk () in
  let os = Victim.os v in
  let proc = Victim.proc v in
  let n = Victim.alphabet v in
  let obs = ref [] in
  let o1 =
    Victim.run v
      ~before:(fun _ ->
        incr probes;
        Sim_os.Kernel.attacker_clear_accessed os proc (Victim.marker v);
        for i = 0 to n - 1 do
          incr probes;
          Sim_os.Kernel.attacker_clear_accessed os proc (Victim.data_page v i)
        done)
      ~after:(fun r ->
        probes := !probes + n;
        obs :=
          { Adversary.ob_request = r; ob_candidates = ad_candidates os proc v }
          :: !obs)
  in
  (* Stage 2 — page-table tamper on a restarted service: unmap the
     pinned marker mid-run.  Legacy kernels silently repair resident
     mappings; Autarky terminates on the induced fault. *)
  let v2 = mk () in
  let os2 = Victim.os v2 in
  let proc2 = Victim.proc v2 in
  let half = Victim.symbols v2 / 2 in
  let o2 =
    Victim.run v2
      ~before:(fun r ->
        if r = half then begin
          incr probes;
          Sim_os.Kernel.attacker_unmap os2 proc2 (Victim.marker v2)
        end)
      ~after:(fun _ -> ())
  in
  (* Stage 3 — residence-contract and backing-store tamper: mid-run,
     secretly EWB the pinned marker page out of the EPC and delete its
     sealed blob.  A self-paging runtime still believes the page is
     resident, so the very next touch is a detected attack; a legacy
     kernel just pages it back in, so the blob survives there (deleting
     it under legacy would crash the simulated swap device rather than
     model a detection). *)
  let o3 =
    let v3 = mk () in
    let os3 = Victim.os v3 in
    let proc3 = Victim.proc v3 in
    let half3 = Victim.symbols v3 / 2 in
    let baseline = Victim.policy v3 = Victim.Baseline in
    Victim.run v3
      ~before:(fun r ->
        if r = half3 then begin
          incr probes;
          Sim_os.Kernel.attacker_evict os3 proc3 (Victim.marker v3);
          if not baseline then begin
            incr probes;
            Sim_os.Swap_store.delete
              (Sim_os.Kernel.swap os3 proc3)
              (Victim.marker v3)
          end
        end)
      ~after:(fun _ -> ())
  in
  let oc1, t1 = Adversary.of_victim_outcome o1 in
  let oc2, t2 = Adversary.of_victim_outcome o2 in
  let oc3, t3 = Adversary.of_victim_outcome o3 in
  let res_outcome =
    match (oc1, oc2, oc3) with
    | (Adversary.Detected _ as d), _, _
    | _, (Adversary.Detected _ as d), _
    | _, _, (Adversary.Detected _ as d) ->
      d
    | _ -> Adversary.Completed
  in
  ( v,
    {
      Adversary.res_outcome;
      res_observations = List.rev !obs;
      res_probes = !probes;
      res_terminations = t1 + t2 + t3;
    } )

let adversary =
  {
    Adversary.id = "kingsguard";
    description =
      "escalation ladder over published OS tampering: A/D-bit monitoring, \
       page-table unmap, sealed-blob deletion (restarts after each \
       detection)";
    run;
  }
