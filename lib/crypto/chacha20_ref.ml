(* Reference ChaCha20 on boxed [Int32] arithmetic — the original
   implementation, kept verbatim as the differential-testing and
   benchmarking baseline for the unboxed {!Chacha20}.  Do not optimize
   this module; its value is being obviously correct and slow. *)

type key = bytes
type nonce = bytes

let key_of_string s =
  if String.length s = 0 then invalid_arg "Chacha20_ref.key_of_string: empty";
  Bytes.init 32 (fun i -> s.[i mod String.length s])

let rotl32 x n =
  Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter_round st a b c d =
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl32 (Int32.logxor st.(d) st.(a)) 16;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl32 (Int32.logxor st.(b) st.(c)) 12;
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl32 (Int32.logxor st.(d) st.(a)) 8;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl32 (Int32.logxor st.(b) st.(c)) 7

let le32 b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let store_le32 b off v =
  Bytes.set b off (Char.chr (Int32.to_int (Int32.logand v 0xFFl)));
  Bytes.set b (off + 1)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)));
  Bytes.set b (off + 2)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl)));
  Bytes.set b (off + 3)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl)))

let block ~key ~counter ~nonce =
  if Bytes.length key <> 32 then
    invalid_arg "Chacha20_ref.block: key must be 32 bytes";
  if Bytes.length nonce <> 12 then
    invalid_arg "Chacha20_ref.block: nonce must be 12 bytes";
  let init = Array.make 16 0l in
  init.(0) <- 0x61707865l;
  init.(1) <- 0x3320646el;
  init.(2) <- 0x79622d32l;
  init.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    init.(4 + i) <- le32 key (4 * i)
  done;
  init.(12) <- counter;
  for i = 0 to 2 do
    init.(13 + i) <- le32 nonce (4 * i)
  done;
  let st = Array.copy init in
  for _round = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    store_le32 out (4 * i) (Int32.add st.(i) init.(i))
  done;
  out

let xor_stream ~key ?(counter = 0l) ~nonce data =
  let n = Bytes.length data in
  let out = Bytes.create n in
  let nblocks = (n + 63) / 64 in
  for blk = 0 to nblocks - 1 do
    let ks = block ~key ~counter:(Int32.add counter (Int32.of_int blk)) ~nonce in
    let base = blk * 64 in
    let len = min 64 (n - base) in
    for i = 0 to len - 1 do
      Bytes.set out (base + i)
        (Char.chr
           (Char.code (Bytes.get data (base + i))
           lxor Char.code (Bytes.get ks i)))
    done
  done;
  out
