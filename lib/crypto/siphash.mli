(** SipHash-2-4: a fast keyed 64-bit MAC (Aumasson & Bernstein).

    Used by the page sealer to authenticate swapped-out page contents,
    standing in for the GCM/integrity-tree MACs of real SGX.

    Implemented on unboxed native-int arithmetic (32-bit lane halves);
    bit-identical to the boxed reference in {!Siphash_ref}. *)

type key
(** Expanded 128-bit key.  Abstract: the internal representation is a
    pair of 64-bit lanes split into native-int halves. *)

val key_of_bytes : bytes -> key
(** First 16 bytes of the argument, little-endian. Raises
    [Invalid_argument] if shorter than 16 bytes. *)

val hash : key -> bytes -> int64
(** MAC of the full byte string. *)

val hash_string : key -> string -> int64

val selftest : unit -> bool
(** Checks the reference test vector from the SipHash paper. *)
