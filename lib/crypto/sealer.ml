type t = {
  enc_key : Chacha20.key;
  mac_key : Siphash.key;
  (* Scratch reused across seal/unseal calls so the per-page paths
     (EWB/ELDU, the SGXv2 evict/fetch loops) only allocate the
     ciphertext/plaintext they hand back. *)
  nonce_buf : bytes;
  mutable mac_buf : bytes;
}

type sealed = {
  ciphertext : bytes;
  mac : int64;
  vaddr : int64;
  version : int64;
}

type error = Mac_mismatch | Replayed

let pp_error ppf = function
  | Mac_mismatch -> Format.pp_print_string ppf "MAC mismatch"
  | Replayed -> Format.pp_print_string ppf "replayed version"

let create ~master_key =
  let enc_key = Chacha20.key_of_string ("enc:" ^ master_key) in
  let mac_material = Chacha20.key_of_string ("mac:" ^ master_key) in
  {
    enc_key;
    mac_key = Siphash.key_of_bytes mac_material;
    nonce_buf = Bytes.create 12;
    mac_buf = Bytes.create 0;
  }

(* Nonce: LE64(vaddr XOR version<<17) followed by the 4 low bytes of
   the version — written into the reused [nonce_buf]. *)
let set_nonce t ~vaddr ~version =
  Bytes.set_int64_le t.nonce_buf 0
    (Int64.logxor vaddr (Int64.shift_left version 17));
  Bytes.set_int32_le t.nonce_buf 8 (Int64.to_int32 version)

(* MAC over ciphertext ‖ LE64(vaddr) ‖ LE64(version).  [mac_buf] is
   sized exactly (SipHash covers the whole buffer) and reused while the
   page size stays constant — the steady state. *)
let mac_of t ~vaddr ~version ciphertext =
  let n = Bytes.length ciphertext in
  if Bytes.length t.mac_buf <> n + 16 then t.mac_buf <- Bytes.create (n + 16);
  let buf = t.mac_buf in
  Bytes.blit ciphertext 0 buf 0 n;
  Bytes.set_int64_le buf n vaddr;
  Bytes.set_int64_le buf (n + 8) version;
  Siphash.hash t.mac_key buf

let seal t ~vaddr ~version plaintext =
  set_nonce t ~vaddr ~version;
  let ciphertext = Chacha20.xor_stream ~key:t.enc_key ~nonce:t.nonce_buf plaintext in
  let mac = mac_of t ~vaddr ~version ciphertext in
  { ciphertext; mac; vaddr; version }

let unseal t ~vaddr ~expected_version sealed =
  if sealed.version <> expected_version then Error Replayed
  else
    let mac = mac_of t ~vaddr:sealed.vaddr ~version:sealed.version sealed.ciphertext in
    if mac <> sealed.mac || sealed.vaddr <> vaddr then Error Mac_mismatch
    else begin
      set_nonce t ~vaddr:sealed.vaddr ~version:sealed.version;
      Ok (Chacha20.xor_stream ~key:t.enc_key ~nonce:t.nonce_buf sealed.ciphertext)
    end

let seal_batch t items =
  List.map (fun (vaddr, version, plaintext) -> seal t ~vaddr ~version plaintext) items

let seal_batch_into t ~n ~vaddr ~version ~plaintext ~sink =
  for i = 0 to n - 1 do
    sink i (seal t ~vaddr:(vaddr i) ~version:(version i) (plaintext i))
  done

let unseal_batch t items =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (vaddr, expected_version, sealed) :: rest -> (
      match unseal t ~vaddr ~expected_version sealed with
      | Ok plaintext -> go (plaintext :: acc) rest
      | Error e -> Error (vaddr, e))
  in
  go [] items
