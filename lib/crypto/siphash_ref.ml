(* Reference SipHash-2-4 on boxed [Int64] arithmetic — the original
   implementation, kept verbatim as the differential-testing and
   benchmarking baseline for the unboxed {!Siphash}. *)

type key = { k0 : int64; k1 : int64 }

let le64 b off =
  let byte i = Int64.of_int (Char.code (Bytes.get b (off + i))) in
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
  done;
  !acc

let key_of_bytes b =
  if Bytes.length b < 16 then invalid_arg "Siphash_ref.key_of_bytes: need 16 bytes";
  { k0 = le64 b 0; k1 = le64 b 8 }

let rotl x n =
  Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

type state = {
  mutable v0 : int64;
  mutable v1 : int64;
  mutable v2 : int64;
  mutable v3 : int64;
}

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let hash key data =
  let n = Bytes.length data in
  let s =
    {
      v0 = Int64.logxor key.k0 0x736f6d6570736575L;
      v1 = Int64.logxor key.k1 0x646f72616e646f6dL;
      v2 = Int64.logxor key.k0 0x6c7967656e657261L;
      v3 = Int64.logxor key.k1 0x7465646279746573L;
    }
  in
  let compress m =
    s.v3 <- Int64.logxor s.v3 m;
    sipround s;
    sipround s;
    s.v0 <- Int64.logxor s.v0 m
  in
  let full_words = n / 8 in
  for w = 0 to full_words - 1 do
    compress (le64 data (8 * w))
  done;
  (* Final word: remaining bytes plus length in the top byte. *)
  let last = ref (Int64.shift_left (Int64.of_int (n land 0xFF)) 56) in
  for i = n - 1 downto full_words * 8 do
    last :=
      Int64.logor
        (Int64.shift_left (Int64.of_int (Char.code (Bytes.get data i))) (8 * (i mod 8)))
        !last
  done;
  compress !last;
  s.v2 <- Int64.logxor s.v2 0xFFL;
  sipround s;
  sipround s;
  sipround s;
  sipround s;
  Int64.logxor (Int64.logxor s.v0 s.v1) (Int64.logxor s.v2 s.v3)

let hash_string key s = hash key (Bytes.of_string s)
