(* ChaCha20 on unboxed native-int arithmetic.

   OCaml boxes [Int32] values, so the reference implementation
   ({!Chacha20_ref}) allocates on essentially every state operation —
   hundreds of short-lived boxes per 64-byte block.  Here every state
   word is a native [int] kept in [0, 2^32) by masking with [mask32]
   after each add/rotate (safe in 63-bit immediates), block input and
   working state live in two preallocated 16-word arrays, the keystream
   in a preallocated 64-byte buffer, and full blocks are XORed eight
   bytes at a time through [Bytes.get_int64_le] (whose boxed
   intermediates the compiler eliminates in straight-line chains).
   Output is bit-identical to the reference; see test/test_crypto.ml
   for the differential and RFC 8439 vector checks. *)

type key = bytes
type nonce = bytes

let key_of_string s =
  if String.length s = 0 then invalid_arg "Chacha20.key_of_string: empty";
  Bytes.init 32 (fun i -> s.[i mod String.length s])

let mask32 = 0xFFFF_FFFF

let[@inline] rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* Unchecked little-endian word access.  Every offset below is derived
   from a length validated on entry (key/nonce sizes, [n]-bounded block
   loop), so the per-access bounds checks of the safe accessors are
   pure overhead in the block loop.  The primitives are native-endian;
   big-endian hosts take the safe byte-swapping accessors instead. *)
external unsafe_get_32 : bytes -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : bytes -> int -> int32 -> unit = "%caml_bytes_set32u"

let be = Sys.big_endian

let[@inline] get32 b off =
  if be then Bytes.get_int32_le b off else unsafe_get_32 b off

let[@inline] set32 b off v =
  if be then Bytes.set_int32_le b off v else unsafe_set_32 b off v

(* Scratch reused across calls, one copy per domain ([Domain.DLS]): the
   parallel harness (lib/parallel) runs whole simulations on worker
   domains, and module-level scratch shared between them would race.
   One DLS lookup per [block]/[xor_stream] call is amortized over the
   whole stream; the hot block loop sees the fetched record only.

   [input] holds the block input (key/counter/nonce words), [ks] one
   keystream block.  [xoff] selects where the keystream block goes:
   [xoff < 0] stores into [ks] (the [block] entry point and partial
   tail blocks); [xoff >= 0] XORs the keystream straight into [xdst]
   against [xsrc] at that byte offset — full blocks in [xor_stream]
   never materialize the keystream. *)
type scratch = {
  input : int array;
  ks : bytes;
  mutable xsrc : bytes;
  mutable xdst : bytes;
  mutable xoff : int;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { input = Array.make 16 0; ks = Bytes.create 64; xsrc = Bytes.empty;
        xdst = Bytes.empty; xoff = -1 })

let[@inline] word b off = Int32.to_int (get32 b off) land mask32

let load_input sc ~key ~counter ~nonce =
  if Bytes.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if Bytes.length nonce <> 12 then
    invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let input = sc.input in
  input.(0) <- 0x61707865;
  input.(1) <- 0x3320646e;
  input.(2) <- 0x79622d32;
  input.(3) <- 0x6b206574;
  for i = 0 to 7 do
    input.(4 + i) <- word key (4 * i)
  done;
  input.(12) <- counter land mask32;
  for i = 0 to 2 do
    input.(13 + i) <- word nonce (4 * i)
  done

(* Ten double rounds with the sixteen state words threaded as
   parameters of a recursive function: without flambda that is the only
   way to keep them in registers — any array or record state costs a
   memory round-trip per step, and an out-of-line quarter-round costs
   80 calls per block.  At [n = 0] the feed-forward add against [input]
   and the keystream store (or fused XOR) happen in one pass. *)
let rec rounds sc n x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15 =
  if n = 0 then begin
    let input = sc.input in
    let off = sc.xoff in
    if off < 0 then begin
      let ks = sc.ks in
      let st i x =
        set32 ks (4 * i)
          (Int32.of_int ((x + Array.unsafe_get input i) land mask32))
      in
      st 0 x0; st 1 x1; st 2 x2; st 3 x3;
      st 4 x4; st 5 x5; st 6 x6; st 7 x7;
      st 8 x8; st 9 x9; st 10 x10; st 11 x11;
      st 12 x12; st 13 x13; st 14 x14; st 15 x15
    end
    else begin
      (* Written out (not a local [st] helper): a closure over
         [src]/[dst]/[off] would heap-allocate once per block. *)
      let src = sc.xsrc and dst = sc.xdst in
      set32 dst off
        (Int32.logxor (get32 src off) (Int32.of_int ((x0 + Array.unsafe_get input 0) land mask32)));
      set32 dst (off + 4)
        (Int32.logxor (get32 src (off + 4))
           (Int32.of_int ((x1 + Array.unsafe_get input 1) land mask32)));
      set32 dst (off + 8)
        (Int32.logxor (get32 src (off + 8))
           (Int32.of_int ((x2 + Array.unsafe_get input 2) land mask32)));
      set32 dst (off + 12)
        (Int32.logxor (get32 src (off + 12))
           (Int32.of_int ((x3 + Array.unsafe_get input 3) land mask32)));
      set32 dst (off + 16)
        (Int32.logxor (get32 src (off + 16))
           (Int32.of_int ((x4 + Array.unsafe_get input 4) land mask32)));
      set32 dst (off + 20)
        (Int32.logxor (get32 src (off + 20))
           (Int32.of_int ((x5 + Array.unsafe_get input 5) land mask32)));
      set32 dst (off + 24)
        (Int32.logxor (get32 src (off + 24))
           (Int32.of_int ((x6 + Array.unsafe_get input 6) land mask32)));
      set32 dst (off + 28)
        (Int32.logxor (get32 src (off + 28))
           (Int32.of_int ((x7 + Array.unsafe_get input 7) land mask32)));
      set32 dst (off + 32)
        (Int32.logxor (get32 src (off + 32))
           (Int32.of_int ((x8 + Array.unsafe_get input 8) land mask32)));
      set32 dst (off + 36)
        (Int32.logxor (get32 src (off + 36))
           (Int32.of_int ((x9 + Array.unsafe_get input 9) land mask32)));
      set32 dst (off + 40)
        (Int32.logxor (get32 src (off + 40))
           (Int32.of_int ((x10 + Array.unsafe_get input 10) land mask32)));
      set32 dst (off + 44)
        (Int32.logxor (get32 src (off + 44))
           (Int32.of_int ((x11 + Array.unsafe_get input 11) land mask32)));
      set32 dst (off + 48)
        (Int32.logxor (get32 src (off + 48))
           (Int32.of_int ((x12 + Array.unsafe_get input 12) land mask32)));
      set32 dst (off + 52)
        (Int32.logxor (get32 src (off + 52))
           (Int32.of_int ((x13 + Array.unsafe_get input 13) land mask32)));
      set32 dst (off + 56)
        (Int32.logxor (get32 src (off + 56))
           (Int32.of_int ((x14 + Array.unsafe_get input 14) land mask32)));
      set32 dst (off + 60)
        (Int32.logxor (get32 src (off + 60))
           (Int32.of_int ((x15 + Array.unsafe_get input 15) land mask32)))
    end
  end
  else begin
    (* column round: QR(0,4,8,12) QR(1,5,9,13) QR(2,6,10,14) QR(3,7,11,15) *)
    let x0 = (x0 + x4) land mask32 in
    let x12 = rotl32 (x12 lxor x0) 16 in
    let x8 = (x8 + x12) land mask32 in
    let x4 = rotl32 (x4 lxor x8) 12 in
    let x0 = (x0 + x4) land mask32 in
    let x12 = rotl32 (x12 lxor x0) 8 in
    let x8 = (x8 + x12) land mask32 in
    let x4 = rotl32 (x4 lxor x8) 7 in
    let x1 = (x1 + x5) land mask32 in
    let x13 = rotl32 (x13 lxor x1) 16 in
    let x9 = (x9 + x13) land mask32 in
    let x5 = rotl32 (x5 lxor x9) 12 in
    let x1 = (x1 + x5) land mask32 in
    let x13 = rotl32 (x13 lxor x1) 8 in
    let x9 = (x9 + x13) land mask32 in
    let x5 = rotl32 (x5 lxor x9) 7 in
    let x2 = (x2 + x6) land mask32 in
    let x14 = rotl32 (x14 lxor x2) 16 in
    let x10 = (x10 + x14) land mask32 in
    let x6 = rotl32 (x6 lxor x10) 12 in
    let x2 = (x2 + x6) land mask32 in
    let x14 = rotl32 (x14 lxor x2) 8 in
    let x10 = (x10 + x14) land mask32 in
    let x6 = rotl32 (x6 lxor x10) 7 in
    let x3 = (x3 + x7) land mask32 in
    let x15 = rotl32 (x15 lxor x3) 16 in
    let x11 = (x11 + x15) land mask32 in
    let x7 = rotl32 (x7 lxor x11) 12 in
    let x3 = (x3 + x7) land mask32 in
    let x15 = rotl32 (x15 lxor x3) 8 in
    let x11 = (x11 + x15) land mask32 in
    let x7 = rotl32 (x7 lxor x11) 7 in
    (* diagonal round: QR(0,5,10,15) QR(1,6,11,12) QR(2,7,8,13) QR(3,4,9,14) *)
    let x0 = (x0 + x5) land mask32 in
    let x15 = rotl32 (x15 lxor x0) 16 in
    let x10 = (x10 + x15) land mask32 in
    let x5 = rotl32 (x5 lxor x10) 12 in
    let x0 = (x0 + x5) land mask32 in
    let x15 = rotl32 (x15 lxor x0) 8 in
    let x10 = (x10 + x15) land mask32 in
    let x5 = rotl32 (x5 lxor x10) 7 in
    let x1 = (x1 + x6) land mask32 in
    let x12 = rotl32 (x12 lxor x1) 16 in
    let x11 = (x11 + x12) land mask32 in
    let x6 = rotl32 (x6 lxor x11) 12 in
    let x1 = (x1 + x6) land mask32 in
    let x12 = rotl32 (x12 lxor x1) 8 in
    let x11 = (x11 + x12) land mask32 in
    let x6 = rotl32 (x6 lxor x11) 7 in
    let x2 = (x2 + x7) land mask32 in
    let x13 = rotl32 (x13 lxor x2) 16 in
    let x8 = (x8 + x13) land mask32 in
    let x7 = rotl32 (x7 lxor x8) 12 in
    let x2 = (x2 + x7) land mask32 in
    let x13 = rotl32 (x13 lxor x2) 8 in
    let x8 = (x8 + x13) land mask32 in
    let x7 = rotl32 (x7 lxor x8) 7 in
    let x3 = (x3 + x4) land mask32 in
    let x14 = rotl32 (x14 lxor x3) 16 in
    let x9 = (x9 + x14) land mask32 in
    let x4 = rotl32 (x4 lxor x9) 12 in
    let x3 = (x3 + x4) land mask32 in
    let x14 = rotl32 (x14 lxor x3) 8 in
    let x9 = (x9 + x14) land mask32 in
    let x4 = rotl32 (x4 lxor x9) 7 in
    rounds sc (n - 1) x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15
  end

(* Permute [sc.input] and emit the keystream block per [sc.xoff]. *)
let block_into sc =
  let g i = Array.unsafe_get sc.input i in
  rounds sc 10 (g 0) (g 1) (g 2) (g 3) (g 4) (g 5) (g 6) (g 7) (g 8) (g 9) (g 10)
    (g 11) (g 12) (g 13) (g 14) (g 15)

let block ~key ~counter ~nonce =
  let sc = Domain.DLS.get scratch_key in
  load_input sc ~key ~counter:(Int32.to_int counter land mask32) ~nonce;
  sc.xoff <- -1;
  block_into sc;
  Bytes.sub sc.ks 0 64

let xor_stream ~key ?(counter = 0l) ~nonce data =
  let sc = Domain.DLS.get scratch_key in
  let n = Bytes.length data in
  let out = Bytes.create n in
  let c0 = Int32.to_int counter land mask32 in
  load_input sc ~key ~counter:c0 ~nonce;
  sc.xsrc <- data;
  sc.xdst <- out;
  let nblocks = (n + 63) / 64 in
  for blk = 0 to nblocks - 1 do
    sc.input.(12) <- (c0 + blk) land mask32;
    let base = blk * 64 in
    if n - base >= 64 then begin
      (* Full block: the feed-forward store XORs straight into [out]. *)
      sc.xoff <- base;
      block_into sc
    end
    else begin
      sc.xoff <- -1;
      block_into sc;
      let ks = sc.ks in
      for i = 0 to n - base - 1 do
        Bytes.set out (base + i)
          (Char.chr
             (Char.code (Bytes.get data (base + i)) lxor Char.code (Bytes.get ks i)))
      done
    end
  done;
  (* Drop the buffer references so scratch state never retains caller
     data across calls. *)
  sc.xsrc <- Bytes.empty;
  sc.xdst <- Bytes.empty;
  sc.xoff <- -1;
  out

let selftest () =
  (* RFC 8439 §2.3.2 block-function test vector. *)
  let key = Bytes.init 32 Char.chr in
  let nonce = Bytes.make 12 '\000' in
  Bytes.set nonce 3 '\009';
  Bytes.set nonce 7 '\074';
  let out = block ~key ~counter:1l ~nonce in
  let expected_prefix =
    [ 0x10; 0xf1; 0xe7; 0xe4; 0xd1; 0x3b; 0x59; 0x15;
      0x50; 0x0f; 0xdd; 0x1f; 0xa3; 0x20; 0x71; 0xc4 ]
  in
  List.for_all2
    (fun i expected -> Char.code (Bytes.get out i) = expected)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
    expected_prefix
