(** Reference ChaCha20 implementation (boxed [Int32] arithmetic).

    The original, deliberately straightforward implementation, preserved
    as the baseline the optimized {!Chacha20} is differentially tested
    and benchmarked against.  Identical bit-for-bit output, roughly an
    order of magnitude slower. *)

type key = bytes
type nonce = bytes

val key_of_string : string -> key
val block : key:key -> counter:int32 -> nonce:nonce -> bytes
val xor_stream : key:key -> ?counter:int32 -> nonce:nonce -> bytes -> bytes
