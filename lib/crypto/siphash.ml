(* SipHash-2-4 on unboxed native-int arithmetic.

   OCaml boxes [Int64] values, so the reference implementation
   ({!Siphash_ref}) allocates a box for nearly every rotate/add/xor.
   Here each 64-bit lane is split into two native-int 32-bit halves
   (always kept in [0, 2^32)):

   - add: add both halves, propagate the low half's carry ([lo lsr 32]);
   - xor: halfwise;
   - rotl n, n < 32: each half takes its own top bits shifted up and the
     other half's top bits shifted down;
   - rotl 32: swap the halves.

   The eight state halves are threaded as parameters of the recursive
   compression loop: without flambda that is the only way to keep them
   in registers rather than paying a memory round-trip per step.  The
   SipRound body is therefore expanded textually (twice in [comp] for
   the c-rounds, once in [drounds] for the d-rounds).  The only [Int64]
   value touched is the final digest recombination.  Output is
   bit-identical to the reference; see test/test_crypto.ml for the
   differential and reference-vector checks. *)

type key = { k0h : int; k0l : int; k1h : int; k1l : int }

let mask32 = 0xFFFF_FFFF

(* Unchecked little-endian word load for the compression loop: the
   offsets are bounded by the word count computed from the length, so
   the safe accessor's bounds check is pure overhead.  Big-endian hosts
   take the safe byte-swapping accessor instead. *)
external unsafe_get_32 : bytes -> int -> int32 = "%caml_bytes_get32u"

let be = Sys.big_endian

let[@inline] half b off =
  Int32.to_int (if be then Bytes.get_int32_le b off else unsafe_get_32 b off)
  land mask32

let key_of_bytes b =
  if Bytes.length b < 16 then invalid_arg "Siphash.key_of_bytes: need 16 bytes";
  { k0l = half b 0; k0h = half b 4; k1l = half b 8; k1h = half b 12 }

(* Low / high half of the final message word: the last [rem] bytes of
   [data] (little-endian, [rem] < 8) with the length byte already in
   [acc] for the high half. *)
let rec tail_lo data base i acc =
  if i < 0 then acc
  else
    tail_lo data base (i - 1)
      (acc lor (Char.code (Bytes.get data (base + i)) lsl (8 * i)))

let rec tail_hi data base i acc =
  if i < 4 then acc
  else
    tail_hi data base (i - 1)
      (acc lor (Char.code (Bytes.get data (base + i)) lsl (8 * (i - 4))))

(* [k] finalization SipRounds, then the v0^v1^v2^v3 digest. *)
let rec drounds k v0h v0l v1h v1l v2h v2l v3h v3l =
  if k = 0 then
    let h = v0h lxor v1h lxor v2h lxor v3h in
    let l = v0l lxor v1l lxor v2l lxor v3l in
    Int64.logor (Int64.shift_left (Int64.of_int h) 32) (Int64.of_int l)
  else
    (* v0 += v1 *)
    let lo = v0l + v1l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v1h + (lo lsr 32)) land mask32 in
    (* v1 = rotl(v1, 13); v1 ^= v0 *)
    let th = ((v1h lsl 13) lor (v1l lsr 19)) land mask32 lxor v0h in
    let v1l = ((v1l lsl 13) lor (v1h lsr 19)) land mask32 lxor v0l in
    let v1h = th in
    (* v0 = rotl(v0, 32) *)
    let t = v0h in
    let v0h = v0l in
    let v0l = t in
    (* v2 += v3 *)
    let lo = v2l + v3l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v3h + (lo lsr 32)) land mask32 in
    (* v3 = rotl(v3, 16); v3 ^= v2 *)
    let th = ((v3h lsl 16) lor (v3l lsr 16)) land mask32 lxor v2h in
    let v3l = ((v3l lsl 16) lor (v3h lsr 16)) land mask32 lxor v2l in
    let v3h = th in
    (* v0 += v3 *)
    let lo = v0l + v3l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v3h + (lo lsr 32)) land mask32 in
    (* v3 = rotl(v3, 21); v3 ^= v0 *)
    let th = ((v3h lsl 21) lor (v3l lsr 11)) land mask32 lxor v0h in
    let v3l = ((v3l lsl 21) lor (v3h lsr 11)) land mask32 lxor v0l in
    let v3h = th in
    (* v2 += v1 *)
    let lo = v2l + v1l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v1h + (lo lsr 32)) land mask32 in
    (* v1 = rotl(v1, 17); v1 ^= v2 *)
    let th = ((v1h lsl 17) lor (v1l lsr 15)) land mask32 lxor v2h in
    let v1l = ((v1l lsl 17) lor (v1h lsr 15)) land mask32 lxor v2l in
    let v1h = th in
    (* v2 = rotl(v2, 32) *)
    let t = v2h in
    let v2h = v2l in
    let v2l = t in
    drounds (k - 1) v0h v0l v1h v1l v2h v2l v3h v3l

(* Compress word [w] (the final length-carrying word when [w = nwords])
   with two SipRounds, then recurse; past the final word, xor the 0xFF
   finalization constant into v2 and hand off to [drounds]. *)
let rec comp data nwords n w v0h v0l v1h v1l v2h v2l v3h v3l =
  if w > nwords then
    drounds 4 v0h v0l v1h v1l v2h (v2l lxor 0xFF) v3h v3l
  else
    let base = 8 * w in
    let last = w = nwords in
    let ml =
      if last then tail_lo data base (min 3 (n - base - 1)) 0
      else half data base
    in
    let mh =
      if last then tail_hi data base (n - base - 1) ((n land 0xFF) lsl 24)
      else half data (base + 4)
    in
    (* v3 ^= m *)
    let v3h = v3h lxor mh in
    let v3l = v3l lxor ml in
    (* SipRound 1 *)
    let lo = v0l + v1l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v1h + (lo lsr 32)) land mask32 in
    let th = ((v1h lsl 13) lor (v1l lsr 19)) land mask32 lxor v0h in
    let v1l = ((v1l lsl 13) lor (v1h lsr 19)) land mask32 lxor v0l in
    let v1h = th in
    let t = v0h in
    let v0h = v0l in
    let v0l = t in
    let lo = v2l + v3l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v3h + (lo lsr 32)) land mask32 in
    let th = ((v3h lsl 16) lor (v3l lsr 16)) land mask32 lxor v2h in
    let v3l = ((v3l lsl 16) lor (v3h lsr 16)) land mask32 lxor v2l in
    let v3h = th in
    let lo = v0l + v3l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v3h + (lo lsr 32)) land mask32 in
    let th = ((v3h lsl 21) lor (v3l lsr 11)) land mask32 lxor v0h in
    let v3l = ((v3l lsl 21) lor (v3h lsr 11)) land mask32 lxor v0l in
    let v3h = th in
    let lo = v2l + v1l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v1h + (lo lsr 32)) land mask32 in
    let th = ((v1h lsl 17) lor (v1l lsr 15)) land mask32 lxor v2h in
    let v1l = ((v1l lsl 17) lor (v1h lsr 15)) land mask32 lxor v2l in
    let v1h = th in
    let t = v2h in
    let v2h = v2l in
    let v2l = t in
    (* SipRound 2 *)
    let lo = v0l + v1l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v1h + (lo lsr 32)) land mask32 in
    let th = ((v1h lsl 13) lor (v1l lsr 19)) land mask32 lxor v0h in
    let v1l = ((v1l lsl 13) lor (v1h lsr 19)) land mask32 lxor v0l in
    let v1h = th in
    let t = v0h in
    let v0h = v0l in
    let v0l = t in
    let lo = v2l + v3l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v3h + (lo lsr 32)) land mask32 in
    let th = ((v3h lsl 16) lor (v3l lsr 16)) land mask32 lxor v2h in
    let v3l = ((v3l lsl 16) lor (v3h lsr 16)) land mask32 lxor v2l in
    let v3h = th in
    let lo = v0l + v3l in
    let v0l = lo land mask32 in
    let v0h = (v0h + v3h + (lo lsr 32)) land mask32 in
    let th = ((v3h lsl 21) lor (v3l lsr 11)) land mask32 lxor v0h in
    let v3l = ((v3l lsl 21) lor (v3h lsr 11)) land mask32 lxor v0l in
    let v3h = th in
    let lo = v2l + v1l in
    let v2l = lo land mask32 in
    let v2h = (v2h + v1h + (lo lsr 32)) land mask32 in
    let th = ((v1h lsl 17) lor (v1l lsr 15)) land mask32 lxor v2h in
    let v1l = ((v1l lsl 17) lor (v1h lsr 15)) land mask32 lxor v2l in
    let v1h = th in
    let t = v2h in
    let v2h = v2l in
    let v2l = t in
    (* v0 ^= m *)
    let v0h = v0h lxor mh in
    let v0l = v0l lxor ml in
    comp data nwords n (w + 1) v0h v0l v1h v1l v2h v2l v3h v3l

let hash key data =
  let n = Bytes.length data in
  comp data (n / 8) n 0
    (key.k0h lxor 0x736f6d65)
    (key.k0l lxor 0x70736575)
    (key.k1h lxor 0x646f7261)
    (key.k1l lxor 0x6e646f6d)
    (key.k0h lxor 0x6c796765)
    (key.k0l lxor 0x6e657261)
    (key.k1h lxor 0x74656462)
    (key.k1l lxor 0x79746573)

let hash_string key str = hash key (Bytes.unsafe_of_string str)

let selftest () =
  (* Reference vectors from the SipHash paper's test program. *)
  let key = key_of_bytes (Bytes.init 16 Char.chr) in
  hash key Bytes.empty = 0x726fdb47dd0e0e31L
  && hash key (Bytes.make 1 '\000') = 0x74f839c593dc67fdL
