(** Reference sealer built on the boxed reference primitives.

    Same construction as {!Sealer} (same key derivation, nonce layout
    and MAC coverage), produced and consumed with the slow reference
    ChaCha20/SipHash.  Shares {!Sealer.sealed} and {!Sealer.error}, so
    blobs interoperate across the two implementations — the property
    the differential tests and the sealing microbenchmark rely on. *)

type t

type sealed = Sealer.sealed = {
  ciphertext : bytes;
  mac : int64;
  vaddr : int64;
  version : int64;
}

val create : master_key:string -> t
val seal : t -> vaddr:int64 -> version:int64 -> bytes -> sealed

val unseal :
  t -> vaddr:int64 -> expected_version:int64 -> sealed ->
  (bytes, Sealer.error) result
