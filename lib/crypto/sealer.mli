(** Authenticated, replay-protected sealing of page contents.

    Models the guarantees SGX's [EWB]/[ELDU] give to evicted EPC pages
    (confidentiality, integrity, freshness via version counters), and the
    custom in-enclave encryption the paper's SGXv2 path uses
    (ChaCha20 + SipHash encrypt-then-MAC, version bound into the MAC).

    A sealing context owns reused nonce and MAC scratch buffers, so the
    hot eviction/reload paths allocate only the ciphertext or plaintext
    they return. *)

type t
(** Sealing context holding the encryption and MAC keys plus reused
    scratch buffers. *)

type sealed = {
  ciphertext : bytes;
  mac : int64;
  vaddr : int64;   (** virtual page address bound into the seal *)
  version : int64; (** anti-replay version bound into the seal *)
}

type error =
  | Mac_mismatch    (** ciphertext or metadata tampered with *)
  | Replayed        (** version is not the expected (latest) one *)

val pp_error : Format.formatter -> error -> unit

val create : master_key:string -> t
(** Derive encryption and MAC keys from [master_key]. *)

val seal : t -> vaddr:int64 -> version:int64 -> bytes -> sealed

val unseal :
  t -> vaddr:int64 -> expected_version:int64 -> sealed -> (bytes, error) result
(** Verify the MAC and the version, then decrypt.  A stale [sealed] value
    replayed by the untrusted OS fails with [Replayed]; any bit flip in
    the ciphertext or metadata fails with [Mac_mismatch]. *)

(** {1 Batch operations}

    Seal or unseal a run of pages through one context, reusing its
    scratch buffers across pages.  Results are in input order and
    bit-identical to sealing each page individually. *)

val seal_batch : t -> (int64 * int64 * bytes) list -> sealed list
(** Each item is [(vaddr, version, plaintext)]. *)

val seal_batch_into :
  t -> n:int -> vaddr:(int -> int64) -> version:(int -> int64) ->
  plaintext:(int -> bytes) -> sink:(int -> sealed -> unit) -> unit
(** Index-driven form of {!seal_batch}: seals items [0..n-1], reading
    each through the accessor callbacks and handing each result to
    [sink] as soon as it is produced — no intermediate lists.  Seal [i]
    is bit-identical to [seal t ~vaddr:(vaddr i) ~version:(version i)
    (plaintext i)]. *)

val unseal_batch :
  t -> (int64 * int64 * sealed) list -> (bytes list, int64 * error) result
(** Each item is [(vaddr, expected_version, sealed)].  Stops at the
    first failure, identifying the offending [vaddr]. *)
