(** ChaCha20 stream cipher (RFC 8439 core).

    Stands in for the AES-NI / MEE encryption the paper's prototype uses
    for swapped-out page contents.  Pure OCaml, constant-shape (no
    data-dependent branches on key or plaintext).

    Implemented on unboxed native-int arithmetic with preallocated
    state and keystream scratch; bit-identical to the boxed reference
    in {!Chacha20_ref}. *)

type key = bytes
(** 32-byte key. *)

type nonce = bytes
(** 12-byte nonce. *)

val key_of_string : string -> key
(** [key_of_string s] derives a 32-byte key by cycling/truncating [s];
    convenient for tests. Raises [Invalid_argument] on the empty string. *)

val block : key:key -> counter:int32 -> nonce:nonce -> bytes
(** One 64-byte keystream block. *)

val xor_stream : key:key -> ?counter:int32 -> nonce:nonce -> bytes -> bytes
(** Encrypt/decrypt: XOR the input with the keystream starting at
    [counter] (default 0). Encryption and decryption are the same
    operation. *)

val selftest : unit -> bool
(** Checks the RFC 8439 §2.3.2 test vector. *)
