(* Reference sealer on the boxed reference primitives — the original
   implementation, kept as the interoperability baseline: a blob sealed
   here must unseal under {!Sealer} with the same master key (and vice
   versa), with identical ciphertext and MAC. *)

type t = { enc_key : Chacha20_ref.key; mac_key : Siphash_ref.key }

type sealed = Sealer.sealed = {
  ciphertext : bytes;
  mac : int64;
  vaddr : int64;
  version : int64;
}

let create ~master_key =
  let enc_key = Chacha20_ref.key_of_string ("enc:" ^ master_key) in
  let mac_material = Chacha20_ref.key_of_string ("mac:" ^ master_key) in
  { enc_key; mac_key = Siphash_ref.key_of_bytes mac_material }

let store_le64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let nonce_of ~vaddr ~version =
  let nonce = Bytes.create 12 in
  store_le64 nonce 0 (Int64.logxor vaddr (Int64.shift_left version 17));
  Bytes.set nonce 8 (Char.chr (Int64.to_int (Int64.logand version 0xFFL)));
  Bytes.set nonce 9
    (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical version 8) 0xFFL)));
  Bytes.set nonce 10
    (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical version 16) 0xFFL)));
  Bytes.set nonce 11
    (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical version 24) 0xFFL)));
  nonce

let mac_of t ~vaddr ~version ciphertext =
  let n = Bytes.length ciphertext in
  let buf = Bytes.create (n + 16) in
  Bytes.blit ciphertext 0 buf 0 n;
  store_le64 buf n vaddr;
  store_le64 buf (n + 8) version;
  Siphash_ref.hash t.mac_key buf

let seal t ~vaddr ~version plaintext =
  let nonce = nonce_of ~vaddr ~version in
  let ciphertext = Chacha20_ref.xor_stream ~key:t.enc_key ~nonce plaintext in
  let mac = mac_of t ~vaddr ~version ciphertext in
  { ciphertext; mac; vaddr; version }

let unseal t ~vaddr ~expected_version sealed =
  if sealed.version <> expected_version then Error Sealer.Replayed
  else
    let mac = mac_of t ~vaddr:sealed.vaddr ~version:sealed.version sealed.ciphertext in
    if mac <> sealed.mac || sealed.vaddr <> vaddr then Error Sealer.Mac_mismatch
    else
      let nonce = nonce_of ~vaddr:sealed.vaddr ~version:sealed.version in
      Ok (Chacha20_ref.xor_stream ~key:t.enc_key ~nonce sealed.ciphertext)
