(** Reference SipHash-2-4 implementation (boxed [Int64] arithmetic).

    The original, deliberately straightforward implementation, preserved
    as the baseline the optimized {!Siphash} is differentially tested
    and benchmarked against.  Identical output for every input. *)

type key = { k0 : int64; k1 : int64 }

val key_of_bytes : bytes -> key
val hash : key -> bytes -> int64
val hash_string : key -> string -> int64
