type metadata = [ `Direct | `Oblivious_scan ]

type slot = { mutable blk : int; mutable data : Sgx.Page_data.t option }

type t = {
  clock : Metrics.Clock.t;
  rng : Metrics.Rng.t;
  z : int;
  metadata : metadata;
  n_blocks : int;
  leaves : int;
  levels : int;
  buckets : slot array array;
  posmap : int array;
  stash : (int, Sgx.Page_data.t) Hashtbl.t;
  stash_capacity : int;
  mutable tracing : bool;
  mutable trace : int list;
  c_access : Metrics.Counters.cell;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ~clock ~rng ?(z = 4) ?(metadata = `Direct) ~n_blocks () =
  assert (n_blocks > 0 && z > 0);
  let leaves = pow2_at_least (max 2 n_blocks) 1 in
  let levels =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 leaves + 1
  in
  let bucket_count = (2 * leaves) - 1 in
  let buckets =
    Array.init bucket_count (fun _ ->
        Array.init z (fun _ -> { blk = -1; data = None }))
  in
  let posmap = Array.init n_blocks (fun _ -> Metrics.Rng.int rng leaves) in
  {
    clock;
    rng;
    z;
    metadata;
    n_blocks;
    leaves;
    levels;
    buckets;
    posmap;
    stash = Hashtbl.create 256;
    stash_capacity = 128;
    tracing = false;
    trace = [];
    c_access = Metrics.Counters.cell (Metrics.Clock.counters clock) "oram.access";
  }

let n_blocks t = t.n_blocks
let levels t = t.levels
let leaves t = t.leaves
let stash_size t = Hashtbl.length t.stash
let set_tracing t b = t.tracing <- b
let trace t = t.trace

(* Bucket index (heap layout) of the level-[v] node on the path to
   [leaf]; level 0 is the root, level [levels-1] the leaf bucket. *)
let bucket_at t ~leaf ~level =
  let node = ref (t.leaves - 1 + leaf) in
  for _ = 1 to t.levels - 1 - level do
    node := (!node - 1) / 2
  done;
  !node

let model t = Metrics.Clock.model t.clock

let slot_move_cost t =
  let m = model t in
  m.dram_access + Metrics.Cost_model.sw_page_crypto m

let metadata_cost t =
  let m = model t in
  match t.metadata with
  | `Direct ->
    (* Position map and stash are directly addressable: they live in
       enclave-managed pinned pages whose accesses Autarky hides. *)
    2 * m.mem_access
  | `Oblivious_scan ->
    (* CMOV linear scans of the position map (4 B/entry) and the stash
       (page-sized blocks), once each per access. *)
    Sim_crypto.Oblivious.scan_cost m ~entries:t.n_blocks ~entry_bytes:4
    + Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
        ~entry_bytes:m.page_bytes

let access_cost t =
  let eviction_scans =
    match t.metadata with
    | `Direct -> 0
    | `Oblivious_scan ->
      let m = model t in
      t.levels
      * Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
          ~entry_bytes:m.page_bytes
  in
  (2 * t.levels * t.z * slot_move_cost t) + metadata_cost t + eviction_scans

let read_path t leaf =
  let cost = t.levels * t.z * slot_move_cost t in
  Metrics.Clock.charge t.clock cost;
  for level = 0 to t.levels - 1 do
    let bucket = t.buckets.(bucket_at t ~leaf ~level) in
    Array.iter
      (fun slot ->
        if slot.blk >= 0 then begin
          (match slot.data with
          | Some d -> Hashtbl.replace t.stash slot.blk d
          | None -> Hashtbl.replace t.stash slot.blk (Sgx.Page_data.create ()));
          slot.blk <- -1;
          slot.data <- None
        end)
      bucket
  done

let write_path t leaf =
  let cost = t.levels * t.z * slot_move_cost t in
  Metrics.Clock.charge t.clock cost;
  (* Without directly-addressable metadata, the greedy eviction must
     select blocks with one oblivious stash scan per bucket — the
     dominant cost of CMOV-based ORAM implementations. *)
  (match t.metadata with
  | `Direct -> ()
  | `Oblivious_scan ->
    let m = model t in
    Metrics.Clock.charge t.clock
      (t.levels
      * Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
          ~entry_bytes:m.page_bytes));
  for level = t.levels - 1 downto 0 do
    let bucket_idx = bucket_at t ~leaf ~level in
    let bucket = t.buckets.(bucket_idx) in
    (* Greedily place stash blocks whose assigned leaf shares this
       bucket, deepest level first. *)
    let placed = ref [] in
    (try
       Hashtbl.iter
         (fun blk _ ->
           if List.length !placed >= t.z then raise Exit;
           let blk_leaf = t.posmap.(blk) in
           if bucket_at t ~leaf:blk_leaf ~level = bucket_idx then
             placed := blk :: !placed)
         t.stash
     with Exit -> ());
    List.iteri
      (fun i blk ->
        let data = Hashtbl.find t.stash blk in
        Hashtbl.remove t.stash blk;
        bucket.(i).blk <- blk;
        bucket.(i).data <- Some data)
      !placed
  done

let access t ~block f =
  if block < 0 || block >= t.n_blocks then
    invalid_arg (Printf.sprintf "Path_oram.access: block %d of %d" block t.n_blocks);
  Metrics.Clock.charge t.clock (metadata_cost t);
  let leaf = t.posmap.(block) in
  if t.tracing then t.trace <- leaf :: t.trace;
  t.posmap.(block) <- Metrics.Rng.int t.rng t.leaves;
  read_path t leaf;
  let data =
    match Hashtbl.find_opt t.stash block with
    | Some d -> d
    | None ->
      (* First access to this block: materialize a zero page. *)
      let d = Sgx.Page_data.create () in
      Hashtbl.replace t.stash block d;
      d
  in
  f data;
  write_path t leaf;
  Metrics.Counters.cell_incr t.c_access

let read t ~block =
  let out = ref (Sgx.Page_data.create ()) in
  access t ~block (fun d -> out := Sgx.Page_data.copy d);
  !out

let write t ~block data =
  access t ~block (fun d ->
      let src = Sgx.Page_data.to_bytes data in
      let dst = Sgx.Page_data.to_bytes d in
      let n = min (Bytes.length src) (Bytes.length dst) in
      Bytes.blit src 0 dst 0 n)
