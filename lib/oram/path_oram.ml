type metadata = [ `Direct | `Oblivious_scan ]

(* Bucket slots and the stash hold payloads directly (a shared [dummy]
   page stands in for "empty"): the option wrapper and the stash
   hashtable of the original implementation allocated on every slot
   move, which put the ORAM cells' allocation rate in the kilobytes per
   access.  The stash is a dense pair of arrays plus a block -> index
   map, so adds and removes are array stores. *)
type slot = { mutable blk : int; mutable data : Sgx.Page_data.t }

type t = {
  clock : Metrics.Clock.t;
  rng : Metrics.Rng.t;
  z : int;
  metadata : metadata;
  n_blocks : int;
  leaves : int;
  levels : int;
  buckets : slot array array;
  posmap : int array;
  dummy : Sgx.Page_data.t;
  (* Stash: entries [0, st_n) of [st_blk]/[st_data] are live;
     [in_stash.(blk)] is the entry index or -1. *)
  mutable st_blk : int array;
  mutable st_data : Sgx.Page_data.t array;
  mutable st_n : int;
  in_stash : int array;
  stash_capacity : int;
  mutable tracing : bool;
  mutable trace : int list;
  c_access : Metrics.Counters.cell;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ~clock ~rng ?(z = 4) ?(metadata = `Direct) ~n_blocks () =
  assert (n_blocks > 0 && z > 0);
  let leaves = pow2_at_least (max 2 n_blocks) 1 in
  let levels =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 leaves + 1
  in
  let bucket_count = (2 * leaves) - 1 in
  let dummy = Sgx.Page_data.create () in
  let buckets =
    Array.init bucket_count (fun _ ->
        Array.init z (fun _ -> { blk = -1; data = dummy }))
  in
  let posmap = Array.init n_blocks (fun _ -> Metrics.Rng.int rng leaves) in
  {
    clock;
    rng;
    z;
    metadata;
    n_blocks;
    leaves;
    levels;
    buckets;
    posmap;
    dummy;
    st_blk = Array.make 256 (-1);
    st_data = Array.make 256 dummy;
    st_n = 0;
    in_stash = Array.make n_blocks (-1);
    stash_capacity = 128;
    tracing = false;
    trace = [];
    c_access = Metrics.Counters.cell (Metrics.Clock.counters clock) "oram.access";
  }

let n_blocks t = t.n_blocks
let levels t = t.levels
let leaves t = t.leaves
let stash_size t = t.st_n
let set_tracing t b = t.tracing <- b
let trace t = t.trace

(* --- Stash ----------------------------------------------------------- *)

let stash_grow t =
  let cap = 2 * Array.length t.st_blk in
  let blk = Array.make cap (-1) and data = Array.make cap t.dummy in
  Array.blit t.st_blk 0 blk 0 t.st_n;
  Array.blit t.st_data 0 data 0 t.st_n;
  t.st_blk <- blk;
  t.st_data <- data

let stash_add t blk d =
  match t.in_stash.(blk) with
  | i when i >= 0 -> t.st_data.(i) <- d
  | _ ->
    if t.st_n = Array.length t.st_blk then stash_grow t;
    t.st_blk.(t.st_n) <- blk;
    t.st_data.(t.st_n) <- d;
    t.in_stash.(blk) <- t.st_n;
    t.st_n <- t.st_n + 1

(* Swap-with-last removal: the caller scanning forward must re-examine
   index [i] afterwards. *)
let stash_remove_at t i =
  let last = t.st_n - 1 in
  t.in_stash.(t.st_blk.(i)) <- -1;
  if i < last then begin
    t.st_blk.(i) <- t.st_blk.(last);
    t.st_data.(i) <- t.st_data.(last);
    t.in_stash.(t.st_blk.(i)) <- i
  end;
  t.st_blk.(last) <- -1;
  t.st_data.(last) <- t.dummy;
  t.st_n <- last

(* --- Tree geometry --------------------------------------------------- *)

(* Bucket index (heap layout) of the level-[v] node on the path to
   [leaf]; level 0 is the root, level [levels-1] the leaf bucket.
   Top-level recursion rather than a local ref: the walk runs once per
   level per access and must not allocate. *)
let rec bucket_up node steps =
  if steps = 0 then node else bucket_up ((node - 1) / 2) (steps - 1)

let bucket_at t ~leaf ~level = bucket_up (t.leaves - 1 + leaf) (t.levels - 1 - level)

let model t = Metrics.Clock.model t.clock

let slot_move_cost t =
  let m = model t in
  m.dram_access + Metrics.Cost_model.sw_page_crypto m

let metadata_cost t =
  let m = model t in
  match t.metadata with
  | `Direct ->
    (* Position map and stash are directly addressable: they live in
       enclave-managed pinned pages whose accesses Autarky hides. *)
    2 * m.mem_access
  | `Oblivious_scan ->
    (* CMOV linear scans of the position map (4 B/entry) and the stash
       (page-sized blocks), once each per access. *)
    Sim_crypto.Oblivious.scan_cost m ~entries:t.n_blocks ~entry_bytes:4
    + Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
        ~entry_bytes:m.page_bytes

let access_cost t =
  let eviction_scans =
    match t.metadata with
    | `Direct -> 0
    | `Oblivious_scan ->
      let m = model t in
      t.levels
      * Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
          ~entry_bytes:m.page_bytes
  in
  (2 * t.levels * t.z * slot_move_cost t) + metadata_cost t + eviction_scans

let read_path t leaf =
  let cost = t.levels * t.z * slot_move_cost t in
  Metrics.Clock.charge t.clock cost;
  for level = 0 to t.levels - 1 do
    let bucket = t.buckets.(bucket_at t ~leaf ~level) in
    for s = 0 to Array.length bucket - 1 do
      let slot = bucket.(s) in
      if slot.blk >= 0 then begin
        stash_add t slot.blk slot.data;
        slot.blk <- -1;
        slot.data <- t.dummy
      end
    done
  done

(* Greedily place stash blocks whose assigned leaf shares this bucket,
   filling slots [0, z).  [i] re-examines its index after a removal
   (swap-with-last).  Stash scan order replaces the old hashtable
   iteration order; placement choice is unobservable (costs, traces and
   retrievability do not depend on it). *)
let rec place_level t bucket bucket_idx level placed i =
  if placed < t.z && i < t.st_n then begin
    let blk = t.st_blk.(i) in
    if bucket_at t ~leaf:t.posmap.(blk) ~level = bucket_idx then begin
      let s = bucket.(placed) in
      s.blk <- blk;
      s.data <- t.st_data.(i);
      stash_remove_at t i;
      place_level t bucket bucket_idx level (placed + 1) i
    end
    else place_level t bucket bucket_idx level placed (i + 1)
  end

let write_path t leaf =
  let cost = t.levels * t.z * slot_move_cost t in
  Metrics.Clock.charge t.clock cost;
  (* Without directly-addressable metadata, the greedy eviction must
     select blocks with one oblivious stash scan per bucket — the
     dominant cost of CMOV-based ORAM implementations. *)
  (match t.metadata with
  | `Direct -> ()
  | `Oblivious_scan ->
    let m = model t in
    Metrics.Clock.charge t.clock
      (t.levels
      * Sim_crypto.Oblivious.scan_cost m ~entries:t.stash_capacity
          ~entry_bytes:m.page_bytes));
  for level = t.levels - 1 downto 0 do
    let bucket_idx = bucket_at t ~leaf ~level in
    place_level t t.buckets.(bucket_idx) bucket_idx level 0 0
  done

let access t ~block f =
  if block < 0 || block >= t.n_blocks then
    invalid_arg (Printf.sprintf "Path_oram.access: block %d of %d" block t.n_blocks);
  Metrics.Clock.charge t.clock (metadata_cost t);
  let leaf = t.posmap.(block) in
  if t.tracing then t.trace <- leaf :: t.trace;
  t.posmap.(block) <- Metrics.Rng.int t.rng t.leaves;
  read_path t leaf;
  let data =
    match t.in_stash.(block) with
    | i when i >= 0 -> t.st_data.(i)
    | _ ->
      (* First access to this block: materialize a zero page. *)
      let d = Sgx.Page_data.create () in
      stash_add t block d;
      d
  in
  f data;
  write_path t leaf;
  Metrics.Counters.cell_incr t.c_access

let read t ~block =
  let out = ref (Sgx.Page_data.create ()) in
  access t ~block (fun d -> out := Sgx.Page_data.copy d);
  !out

let write t ~block data =
  access t ~block (fun d ->
      let src = Sgx.Page_data.to_bytes data in
      let dst = Sgx.Page_data.to_bytes d in
      let n = min (Bytes.length src) (Bytes.length dst) in
      Bytes.blit src 0 dst 0 n)
