(** Shape validation for the repo's committed benchmark reports
    ([BENCH_*.json]).

    Every report writer in the tree stamps a ["schema"] field
    (["autarky-perf/2"], ["autarky-serve/2"], ...).  This module holds
    the registry of known schemas — which top-level fields each must
    carry, with what JSON shape, and which keys every row of its array
    fields must have — and validates a parsed document against it.

    The CI [bench-validate] step runs {!validate_file} over every
    committed baseline: a writer that drifts from its declared schema
    (renamed field, missing row key, unregistered schema string) fails
    the gate before any consumer trips over the file.  Validation is
    shape-only; semantic invariants (arrival conservation, drift
    tolerances) belong to the [--check] gates. *)

(** Expected shape of a required field.  [Rows keys] is an array of
    objects, each of which must contain every key in [keys] (extra keys
    are allowed — adding a column is not a schema break; removing one
    is). *)
type field_kind = Bool | Num | Str | Obj | Rows of string list

type spec = { required : (string * field_kind) list }

val known : (string * spec) list
(** The registry, keyed by the exact ["schema"] string. *)

val validate : ctx:string -> Microjson.t -> (unit, string list) result
(** Check one parsed document: the ["schema"] field must name a
    registered schema and every required field must be present with the
    declared shape.  [ctx] prefixes the error messages (normally the
    file name).  [Error] collects every violation, not just the
    first. *)

val validate_file : string -> (unit, string list) result
(** {!validate} after {!Microjson.of_file}; parse and I/O errors are
    reported as a single-element [Error] rather than raised. *)
