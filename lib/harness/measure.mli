(** Measurement of workload phases on the virtual clock. *)

type result = {
  cycles : int;
  seconds : float;
  page_faults : int;
  tlb_misses : int;
  pages_fetched : int;
  pages_evicted : int;
  counters : (string * int) list;
      (** per-counter deltas over the measured phase, non-zero entries
          only, sorted by name — like the named fields, relative to the
          pre-phase baseline *)
}

val run : System.t -> ?reset:bool -> (unit -> unit) -> result
(** Reset the clock and counters (unless [reset:false]), run the phase
    inside one enclave entry, and collect the deltas.  Every field of
    the result, including [counters], is a delta against the same
    baseline taken just before the phase ran. *)

val throughput : result -> ops:int -> float
(** Operations per (virtual) second. *)

val fault_rate : result -> float
(** Page faults per (virtual) second. *)

val pp : Format.formatter -> result -> unit
