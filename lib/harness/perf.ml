(* Performance-regression harness (BENCH_perf.json).

   Two sections:

   - [micro]: wall-clock and allocation rates of the crypto hot paths,
     measured for both the optimized implementations and the preserved
     boxed references ({!Sim_crypto.Chacha20_ref} & co.), so the
     speedup of the unboxed rewrite is itself a regression-tested
     number.

   - [matrix]: a fixed-seed workload matrix (ycsb / uthash / kvstore x
     rate-limit / clusters / oram x SGXv1 / SGXv2) reporting real wall
     nanoseconds per access, allocated bytes per access
     ([Gc.allocated_bytes]) and modeled cycles per access.

   Wall-clock numbers vary run to run; the JSON schema
   ("autarky-perf/1") is stable so downstream tooling can diff fields
   across commits. *)

type micro_row = {
  mi_name : string;
  mi_iters : int;
  mi_new_ns : float;  (* wall ns per op, optimized implementation *)
  mi_new_alloc : float;  (* allocated bytes per op *)
  mi_ref_ns : float;  (* wall ns per op, boxed reference *)
  mi_ref_alloc : float;
}

let speedup r = if r.mi_new_ns > 0.0 then r.mi_ref_ns /. r.mi_new_ns else 0.0

type matrix_row = {
  mx_workload : string;
  mx_policy : string;
  mx_mech : string;
  mx_ops : int;
  mx_accesses : int;  (* VM accesses the ops performed (deterministic) *)
  mx_wall_ns : float;  (* wall ns per access *)
  mx_alloc : float;  (* allocated bytes per access *)
  mx_cycles : float;  (* modeled cycles per access *)
  mx_faults : int;
}

type report = {
  r_quick : bool;
  r_seed : int;
  r_jobs : int;  (* domains the matrix ran on (wall metadata only) *)
  r_matrix_wall_s : float;  (* wall clock of the whole matrix section *)
  r_micro : micro_row list;
  r_matrix : matrix_row list;
}

(* --- measurement ------------------------------------------------------ *)

(* Best-of-[reps] minimum for both wall time and allocation rate: the
   minimum filters scheduler noise from the former and occasional GC
   accounting jitter from the latter (the per-op allocation itself is
   deterministic). *)
let time_alloc ?(reps = 5) ~iters f =
  f ();
  (* warmup: fault in code paths and scratch buffers *)
  let n = float_of_int iters in
  let best = ref infinity in
  let alloc = ref infinity in
  for _ = 1 to reps do
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let t1 = Unix.gettimeofday () in
    let a1 = Gc.allocated_bytes () in
    let ns = (t1 -. t0) *. 1e9 /. n in
    if ns < !best then best := ns;
    let a = (a1 -. a0) /. n in
    if a < !alloc then alloc := a
  done;
  (!best, !alloc)

(* --- micro section ---------------------------------------------------- *)

let page_bytes = Sgx.Types.page_bytes

let micro_section ~quick =
  let iters = if quick then 300 else 3_000 in
  let page = Bytes.init page_bytes (fun i -> Char.chr (i land 0xFF)) in
  let key = Sim_crypto.Chacha20.key_of_string "perf-bench-key" in
  let nonce = Bytes.make 12 'n' in
  let sip_key = Bytes.init 16 Char.chr in
  let sip_new = Sim_crypto.Siphash.key_of_bytes sip_key in
  let sip_ref = Sim_crypto.Siphash_ref.key_of_bytes sip_key in
  let sealer_new = Sim_crypto.Sealer.create ~master_key:"perf" in
  let sealer_ref = Sim_crypto.Sealer_ref.create ~master_key:"perf" in
  let cases =
    [
      ( "chacha20.xor_stream/page",
        (fun () -> ignore (Sim_crypto.Chacha20.xor_stream ~key ~nonce page)),
        fun () -> ignore (Sim_crypto.Chacha20_ref.xor_stream ~key ~nonce page) );
      ( "siphash.hash/page",
        (fun () -> ignore (Sim_crypto.Siphash.hash sip_new page)),
        fun () -> ignore (Sim_crypto.Siphash_ref.hash sip_ref page) );
      ( "sealer.seal+unseal/page",
        (fun () ->
          let s =
            Sim_crypto.Sealer.seal sealer_new ~vaddr:0x1000L ~version:1L page
          in
          match
            Sim_crypto.Sealer.unseal sealer_new ~vaddr:0x1000L
              ~expected_version:1L s
          with
          | Ok _ -> ()
          | Error _ -> assert false),
        fun () ->
          let s =
            Sim_crypto.Sealer_ref.seal sealer_ref ~vaddr:0x1000L ~version:1L page
          in
          match
            Sim_crypto.Sealer_ref.unseal sealer_ref ~vaddr:0x1000L
              ~expected_version:1L s
          with
          | Ok _ -> ()
          | Error _ -> assert false );
    ]
  in
  List.map
    (fun (name, new_op, ref_op) ->
      let new_ns, new_alloc = time_alloc ~iters new_op in
      let ref_ns, ref_alloc = time_alloc ~iters ref_op in
      {
        mi_name = name;
        mi_iters = iters;
        mi_new_ns = new_ns;
        mi_new_alloc = new_alloc;
        mi_ref_ns = ref_ns;
        mi_ref_alloc = ref_alloc;
      })
    cases

(* --- matrix section --------------------------------------------------- *)

(* One cell = one fresh platform: a self-paging enclave under the given
   policy and paging mechanism, driven by a fixed-seed workload. *)
let run_cell ~workload ~policy ~mech ~seed ~ops =
  (* 4 MiB EPC: small enough that the 16 MiB heap pages heavily, large
     enough that the pinned ORAM cache (2/3 of EPC) fits the paging
     budget (EPC - 256). *)
  let epc_limit = 1_024 in
  let enclave_pages = 8 * epc_limit in
  let rng = Metrics.Rng.create ~seed:(Int64.of_int seed) in
  let sys =
    System.create ~mech ~epc_frames:(epc_limit + 1_024) ~epc_limit
      ~enclave_pages ~self_paging:true
      ~budget:(max 64 (epc_limit - 256))
      ()
  in
  let heap_pages = 4 * epc_limit in
  let heap = System.allocator sys ~pages:heap_pages ~cluster_pages:10 in
  let alloc ~bytes = Autarky.Allocator.alloc heap ~bytes in
  let rt = System.runtime_exn sys in
  let progress_hook = ref (fun () -> ()) in
  let instrument = ref None in
  let finish = ref (fun () -> ()) in
  (match policy with
  | "rate-limit" ->
    let rl =
      Autarky.Policy_rate_limit.create ~runtime:rt ~max_faults_per_unit:512 ()
    in
    progress_hook := (fun () -> Autarky.Policy_rate_limit.progress rl);
    finish :=
      fun () ->
        Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | "clusters" ->
    finish :=
      fun () ->
        let pc =
          Autarky.Policy_clusters.create ~runtime:rt
            ~clusters:(Autarky.Allocator.clusters heap)
        in
        Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
        System.manage sys (Autarky.Allocator.allocated_pages heap)
  | "oram" ->
    let cache_pages = max 64 (epc_limit * 2 / 3) in
    let cache_base = System.reserve sys ~pages:cache_pages in
    let oram =
      Oram.Path_oram.create ~clock:(System.clock sys)
        ~rng:(Metrics.Rng.create ~seed:9L) ~n_blocks:heap_pages ()
    in
    let cache =
      Autarky.Oram_cache.create ~machine:(System.machine sys)
        ~enclave:(System.enclave sys)
        ~touch:(fun a k -> Sgx.Cpu.access (System.cpu sys) a k)
        ~oram
        ~data_base_vpage:(Autarky.Allocator.base_vpage heap)
        ~n_pages:heap_pages ~cache_base_vpage:cache_base
        ~capacity_pages:cache_pages ()
    in
    System.pin sys (List.init cache_pages (fun i -> cache_base + i));
    let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
    instrument :=
      Some
        (Autarky.Policy_oram.accessor pol ~fallback:(fun a k ->
             Sgx.Cpu.access (System.cpu sys) a k));
    finish := fun () -> Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol)
  | other -> invalid_arg (Printf.sprintf "Perf.run_cell: unknown policy %S" other));
  let vm =
    match !instrument with
    | Some i ->
      System.vm sys ~instrument:i ~on_progress:(fun () -> !progress_hook ()) ()
    | None -> System.vm sys ~on_progress:(fun () -> !progress_hook ()) ()
  in
  let op =
    match workload with
    | "ycsb" ->
      let n_entries = heap_pages * 3 in
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng ~n_entries ~value_bytes:1_024 ()
      in
      let dist = Metrics.Dist.scrambled_zipfian ~n:n_entries () in
      let gen = Workloads.Ycsb.workload_c ~dist ~rng in
      fun _ ->
        (match Workloads.Ycsb.next gen with
        | Workloads.Ycsb.Get k -> ignore (Workloads.Kvstore.get kv ~key:k)
        | _ -> ())
    | "uthash" ->
      let t =
        Workloads.Uthash.create ~vm ~alloc ~rng ~n_items:(heap_pages * 12)
          ~item_bytes:256 ~target_chain:10
      in
      let n = Workloads.Uthash.n_items t in
      (* Uthash emits no progress events of its own; the request is the
         natural progress unit (cf. bench/exp_fig7.ml). *)
      fun i ->
        ignore (Workloads.Uthash.find t ~key:(i * 7919 mod n));
        vm.Workloads.Vm.progress ()
    | "kvstore" ->
      let n_entries = heap_pages * 3 in
      let kv =
        Workloads.Kvstore.create ~vm ~alloc ~rng ~n_entries ~value_bytes:1_024 ()
      in
      let dist = Metrics.Dist.uniform ~n:n_entries in
      fun _ ->
        ignore (Workloads.Kvstore.get kv ~key:(Metrics.Dist.sample dist rng))
    | other ->
      invalid_arg (Printf.sprintf "Perf.run_cell: unknown workload %S" other)
  in
  !finish ();
  let acc0 = Sgx.Cpu.accesses (System.cpu sys) in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r =
    Measure.run sys (fun () ->
        for i = 1 to ops do
          op i
        done)
  in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  (* Per-access figures divide by the VM accesses the ops actually
     performed (one kvstore get is ~17 accesses), not by ops — the
     original report divided by ops under a *_per_access name, inflating
     every figure by the accesses-per-op factor. *)
  let accesses = Sgx.Cpu.accesses (System.cpu sys) - acc0 in
  let n = float_of_int (max 1 accesses) in
  {
    mx_workload = workload;
    mx_policy = policy;
    mx_mech = (match mech with `Sgx1 -> "sgx1" | `Sgx2 -> "sgx2");
    mx_ops = ops;
    mx_accesses = accesses;
    mx_wall_ns = wall_ns /. n;
    mx_alloc = alloc_bytes /. n;
    mx_cycles = float_of_int r.Measure.cycles /. n;
    mx_faults = r.Measure.page_faults;
  }

(* The matrix is embarrassingly parallel: every cell builds a fresh
   platform (own counters, clock, trace-free) and the simulator keeps
   no cross-platform state, so cells shard across domains with results
   merged back in cell order — modeled cycles, faults and allocation
   are bit-identical at any [jobs]; only the wall fields move. *)
let matrix_cells ~quick =
  let workloads = if quick then [ "ycsb" ] else [ "ycsb"; "uthash"; "kvstore" ] in
  let policies = [ "rate-limit"; "clusters"; "oram" ] in
  let mechs = [ `Sgx1; `Sgx2 ] in
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun policy -> List.map (fun mech -> (workload, policy, mech)) mechs)
        policies)
    workloads

let matrix_section ~quick ~seed ~jobs =
  let ops = if quick then 1_000 else 8_000 in
  Parallel.Pool.map ~jobs
    (fun (workload, policy, mech) -> run_cell ~workload ~policy ~mech ~seed ~ops)
    (matrix_cells ~quick)

(* --- JSON ------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4_096 in
  let f = Printf.sprintf "%.2f" in
  Buffer.add_string b "{\n";
  (* /2: per-access figures divide by true VM accesses (an "accesses"
     field records the divisor); /1 divided by ops under the same
     field names. *)
  Buffer.add_string b "  \"schema\": \"autarky-perf/2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" r.r_quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.r_seed);
  Buffer.add_string b (Printf.sprintf "  \"page_bytes\": %d,\n" page_bytes);
  (* Wall metadata lives in one clearly-named object: everything under
     "wall" (plus the *wall* per-row fields) is machine-dependent and
     excluded from determinism/regression comparison. *)
  Buffer.add_string b
    (Printf.sprintf "  \"wall\": {\"jobs\": %d, \"matrix_s\": %s},\n" r.r_jobs
       (f r.r_matrix_wall_s));
  Buffer.add_string b "  \"micro\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"iters\": %d, \"new_wall_ns_per_op\": %s, \
            \"new_alloc_bytes_per_op\": %s, \"ref_wall_ns_per_op\": %s, \
            \"ref_alloc_bytes_per_op\": %s, \"speedup_wall\": %s}%s\n"
           (json_escape m.mi_name) m.mi_iters (f m.mi_new_ns) (f m.mi_new_alloc)
           (f m.mi_ref_ns) (f m.mi_ref_alloc)
           (f (speedup m))
           (if i = List.length r.r_micro - 1 then "" else ",")))
    r.r_micro;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"matrix\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"policy\": \"%s\", \"mech\": \"%s\", \
            \"ops\": %d, \"accesses\": %d, \"wall_ns_per_access\": %s, \
            \"alloc_bytes_per_access\": %s, \"modeled_cycles_per_access\": %s, \
            \"page_faults\": %d}%s\n"
           (json_escape m.mx_workload) (json_escape m.mx_policy)
           (json_escape m.mx_mech) m.mx_ops m.mx_accesses (f m.mx_wall_ns)
           (f m.mx_alloc) (f m.mx_cycles) m.mx_faults
           (if i = List.length r.r_matrix - 1 then "" else ",")))
    r.r_matrix;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- driver ----------------------------------------------------------- *)

let print_summary r =
  Printf.printf "perf: crypto microbenchmarks (%s mode)\n"
    (if r.r_quick then "quick" else "full");
  Printf.printf "  %-26s %12s %12s %10s %14s\n" "op" "new ns/op" "ref ns/op"
    "speedup" "new alloc B/op";
  List.iter
    (fun m ->
      Printf.printf "  %-26s %12.0f %12.0f %9.1fx %14.0f\n" m.mi_name m.mi_new_ns
        m.mi_ref_ns (speedup m) m.mi_new_alloc)
    r.r_micro;
  Printf.printf "perf: workload matrix (seed %d)\n" r.r_seed;
  Printf.printf "  %-9s %-11s %-5s %12s %12s %14s %8s\n" "workload" "policy"
    "mech" "wall ns/acc" "alloc B/acc" "cycles/acc" "faults";
  List.iter
    (fun m ->
      Printf.printf "  %-9s %-11s %-5s %12.0f %12.1f %14.0f %8d\n" m.mx_workload
        m.mx_policy m.mx_mech m.mx_wall_ns m.mx_alloc m.mx_cycles m.mx_faults)
    r.r_matrix

let run ?(quick = false) ?(seed = 42) ?(jobs = 1) ?out () =
  let micro = micro_section ~quick in
  let t0 = Unix.gettimeofday () in
  let matrix = matrix_section ~quick ~seed ~jobs in
  let matrix_wall_s = Unix.gettimeofday () -. t0 in
  let r =
    {
      r_quick = quick;
      r_seed = seed;
      r_jobs = (if jobs <= 0 then Parallel.Pool.default_jobs () else jobs);
      r_matrix_wall_s = matrix_wall_s;
      r_micro = micro;
      r_matrix = matrix;
    }
  in
  print_summary r;
  Printf.printf "perf: matrix wall %.2f s at %d job(s)\n" r.r_matrix_wall_s
    r.r_jobs;
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (to_json r);
    close_out oc;
    Printf.printf "perf: wrote %s\n" file);
  r

(* --- regression gate --------------------------------------------------- *)

(* A matrix cell as the gate sees it: identity (workload/policy/mech),
   the deterministic measurements (ops, modeled cycles, faults) that
   are compared, and the informational wall figure. *)
type gate_cell = {
  g_key : string * string * string;
  g_ops : int;
  g_accesses : int;
  g_cycles : float;
  g_faults : int;
  g_wall_ns : float;
  g_alloc : float;
}

let gate_cells_of_json ~ctx j =
  let open Microjson in
  mem_exn ~ctx "matrix" j |> arr ~ctx
  |> List.map (fun cell ->
         let field k = mem_exn ~ctx:(ctx ^ ".matrix") k cell in
         let s k = str ~ctx (field k) in
         {
           g_key = (s "workload", s "policy", s "mech");
           g_ops = int_ ~ctx (field "ops");
           g_accesses = int_ ~ctx (field "accesses");
           g_cycles = num ~ctx (field "modeled_cycles_per_access");
           g_faults = int_ ~ctx (field "page_faults");
           g_wall_ns = num ~ctx (field "wall_ns_per_access");
           g_alloc = num ~ctx (field "alloc_bytes_per_access");
         })

let gate_cells_of_rows rows =
  List.map
    (fun m ->
      {
        g_key = (m.mx_workload, m.mx_policy, m.mx_mech);
        g_ops = m.mx_ops;
        g_accesses = m.mx_accesses;
        g_cycles = m.mx_cycles;
        g_faults = m.mx_faults;
        g_wall_ns = m.mx_wall_ns;
        g_alloc = m.mx_alloc;
      })
    rows

let key_name (w, p, m) = Printf.sprintf "%s/%s/%s" w p m

(* Relative drift, symmetric-safe for zero baselines. *)
let drift ~base ~cur =
  if base = 0.0 then (if cur = 0.0 then 0.0 else infinity)
  else Float.abs (cur -. base) /. Float.abs base

let check ~baseline ?against ?(tolerance = 0.25) ?wall_ceiling_ns ?alloc_ceiling
    ?(jobs = 1) () =
  let load path =
    let j = Microjson.of_file path in
    (match Microjson.(member "schema" j) with
    | Some (Microjson.Str "autarky-perf/2") -> ()
    | _ -> failwith (path ^ ": not an autarky-perf/2 report"));
    j
  in
  let bj = load baseline in
  let base = gate_cells_of_json ~ctx:baseline bj in
  let cur, cur_label =
    match against with
    | Some path -> (gate_cells_of_json ~ctx:path (load path), path)
    | None ->
      (* Re-run the matrix at the baseline's own shape and seed so the
         comparison is cell-for-cell.  The micro section is skipped:
         the gate is about modeled cycles; wall-clock micro numbers
         cannot gate anything on a shared CI runner. *)
      let quick = Microjson.(bool_ ~ctx:baseline (mem_exn ~ctx:baseline "quick" bj)) in
      let seed = Microjson.(int_ ~ctx:baseline (mem_exn ~ctx:baseline "seed" bj)) in
      Printf.printf "perf: re-running the %s matrix (seed %d) against %s\n%!"
        (if quick then "quick" else "full")
        seed baseline;
      (gate_cells_of_rows (matrix_section ~quick ~seed ~jobs), "this run")
  in
  let assoc cells = List.map (fun c -> (c.g_key, c)) cells in
  let base_a = assoc base and cur_a = assoc cur in
  let failures = ref [] in
  let fail_cell fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k cur_a) then
        fail_cell "cell %s missing from %s" (key_name k) cur_label)
    base_a;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k base_a) then
        fail_cell "cell %s not in baseline" (key_name k))
    cur_a;
  Printf.printf "  %-22s %14s %14s %8s %9s  %s\n" "cell" "base cyc/acc"
    "cur cyc/acc" "drift" "faults" "verdict";
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k cur_a with
      | None -> ()
      | Some c ->
        let d = drift ~base:b.g_cycles ~cur:c.g_cycles in
        let fd =
          drift ~base:(float_of_int b.g_faults) ~cur:(float_of_int c.g_faults)
        in
        let bad = ref [] in
        if c.g_ops <> b.g_ops then
          bad := Printf.sprintf "ops %d vs %d" b.g_ops c.g_ops :: !bad;
        if c.g_accesses <> b.g_accesses then
          bad :=
            Printf.sprintf "accesses %d vs %d" b.g_accesses c.g_accesses :: !bad;
        if d > tolerance then bad := Printf.sprintf "cycles drift %.1f%%" (100. *. d) :: !bad;
        if fd > tolerance then bad := Printf.sprintf "faults drift %.1f%%" (100. *. fd) :: !bad;
        Printf.printf "  %-22s %14.0f %14.0f %7.1f%% %4d/%-4d  %s\n" (key_name k)
          b.g_cycles c.g_cycles (100.0 *. d) b.g_faults c.g_faults
          (if !bad = [] then "ok" else "REGRESSION");
        if !bad <> [] then
          fail_cell "cell %s: %s" (key_name k) (String.concat ", " !bad))
    base_a;
  (* Absolute ceilings locking in the flat-core speedup.  The wall
     ceiling applies to the current run's rate-limit cells (the cells
     the rewrite targets; wall time is machine-dependent, so the bound
     is generous).  The alloc ceiling bounds the matrix-median
     allocation per access, which is deterministic. *)
  (match wall_ceiling_ns with
  | None -> ()
  | Some ceiling ->
    List.iter
      (fun c ->
        let _, policy, _ = c.g_key in
        if policy = "rate-limit" && c.g_wall_ns > ceiling then
          fail_cell "cell %s: wall %.0f ns/access exceeds ceiling %.0f"
            (key_name c.g_key) c.g_wall_ns ceiling)
      cur);
  (match alloc_ceiling with
  | None -> ()
  | Some ceiling ->
    let sorted = List.sort Float.compare (List.map (fun c -> c.g_alloc) cur) in
    let n = List.length sorted in
    if n > 0 then begin
      let median =
        if n mod 2 = 1 then List.nth sorted (n / 2)
        else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0
      in
      Printf.printf "perf: matrix median alloc %.1f B/access (ceiling %.0f)\n"
        median ceiling;
      if median > ceiling then
        fail_cell "matrix median alloc %.1f B/access exceeds ceiling %.0f" median
          ceiling
    end);
  let ok = !failures = [] in
  if ok then
    Printf.printf "perf: %d cells within %.0f%% of %s (%s)\n"
      (List.length base_a) (100.0 *. tolerance) baseline
      (if wall_ceiling_ns <> None || alloc_ceiling <> None then
         "wall/alloc ceilings enforced"
       else "wall/alloc informational only")
  else begin
    Printf.printf "perf: regression gate FAILED against %s:\n" baseline;
    List.iter (fun m -> Printf.printf "  - %s\n" m) (List.rev !failures)
  end;
  ok
