(** Wiring: one simulated platform = hardware + untrusted OS + enclave
    (+ the Autarky runtime for self-paging enclaves), with helpers to
    carve the enclave's address space and route workload memory traffic.

    Typical experiment shape:
    {[
      let sys = System.create ~epc_frames ~epc_limit ~enclave_pages
                  ~self_paging:true ~budget () in
      let heap = System.allocator sys ~pages ~cluster_pages:10 in
      (* build the workload via [System.vm sys ()] and [heap] ... *)
      System.pin sys code_pages;          (* pinned enclave-managed *)
      System.manage sys data_pages;       (* demand-paged enclave-managed *)
      Runtime.set_policy (System.runtime_exn sys) policy;
      Measure.run sys (fun () -> ...)
    ]} *)

type t

val create :
  ?model:Metrics.Cost_model.t ->
  ?mode:Sgx.Machine.transition_mode ->
  ?mech:Autarky.Pager.mech ->
  ?budget:int ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?wrap_os:(Autarky.Os_iface.t -> Autarky.Os_iface.t) ->
  epc_frames:int -> epc_limit:int -> enclave_pages:int -> self_paging:bool ->
  unit -> t
(** Build the platform, create and populate the enclave (all pages
    zero-initialized; pages beyond [epc_limit] start in the backing
    store), EINIT it, and — for a self-paging enclave — install the
    Autarky runtime with the given paging [mech] (default [`Sgx1]) and
    EPC [budget] (default [epc_limit - 64], leaving the OS working
    room).

    [trace] (default [false]) installs a {!Trace.Recorder} on the
    machine before the enclave is built, so every layer's events —
    including enclave construction and initial paging — are recorded;
    [trace_capacity] bounds the recorder's ring (sinks attached via
    {!tracer} still see the complete stream).

    [wrap_os] interposes on the {!Autarky.Os_iface.t} record before it
    is handed to the runtime — the hook through which the Byzantine-OS
    fault-injection layer ([Inject.Injector.wrap_os]) intercepts the
    kernel/runtime boundary.  Only meaningful for self-paging
    enclaves. *)

val attach :
  ?mech:Autarky.Pager.mech ->
  ?budget:int ->
  ?wrap_os:(Autarky.Os_iface.t -> Autarky.Os_iface.t) ->
  machine:Sgx.Machine.t -> os:Sim_os.Kernel.t -> proc:Sim_os.Kernel.proc ->
  unit -> t
(** Bring an already-ECREATEd (empty, un-EINITed) process up into a
    full platform slice on an existing machine and kernel: populate the
    initial image, install the Autarky runtime when the enclave carries
    the self-paging attribute, EINIT, and wire a CPU.  [create] is
    [attach] over a freshly built machine and kernel; multi-tenant
    drivers use [attach] directly to host several enclaves — e.g.
    hypervisor guest processes from {!Hypervisor.Vmm.create_guest_proc}
    — on one shared machine.  Any recorder already installed on
    [machine] is picked up as this system's tracer. *)

val machine : t -> Sgx.Machine.t
val os : t -> Sim_os.Kernel.t
val proc : t -> Sim_os.Kernel.proc
val enclave : t -> Sgx.Enclave.t
val cpu : t -> Sgx.Cpu.t
val runtime : t -> Autarky.Runtime.t option
val runtime_exn : t -> Autarky.Runtime.t
val clock : t -> Metrics.Clock.t
val counters : t -> Metrics.Counters.t

val tracer : t -> Trace.Recorder.t option
val tracer_exn : t -> Trace.Recorder.t
(** @raise Invalid_argument when the system was built without [~trace:true]. *)

val mark : t -> string -> unit
(** Emit a harness phase marker into the trace (no-op when tracing is
    off) — lets offline analysis segment setup from measurement. *)

val reserve : t -> pages:int -> Sgx.Types.vpage
(** Carve a fresh region of the enclave's address space. *)

val allocator : t -> pages:int -> cluster_pages:int -> Autarky.Allocator.t
(** Reserve a region and wrap it in the auto-clustering allocator. *)

val clusters_of : Autarky.Allocator.t -> Autarky.Clusters.t

val vm :
  t ->
  ?instrument:(Sgx.Types.vaddr -> Sgx.Types.access_kind -> unit) ->
  ?on_progress:(unit -> unit) ->
  unit -> Workloads.Vm.t
(** The workload-facing memory interface.  [instrument] replaces the
    plain CPU path (ORAM instrumentation); [on_progress] receives the
    workload's progress events (rate-limit wiring). *)

val pin : t -> Sgx.Types.vpage list -> unit
(** Mark pages enclave-managed and fetch them resident (code, stack,
    runtime metadata, ORAM cache). *)

val manage : t -> Sgx.Types.vpage list -> unit
(** Mark pages enclave-managed without prefetching (demand-paged data). *)

val run_in_enclave : t -> (unit -> 'a) -> 'a
(** EENTER, run, EEXIT — one enclave entry around a workload phase. *)
