(** Minimal JSON reader for the repo's own report files
    (["autarky-perf/1"], ["autarky-serve/1"]).

    The pinned dependency set (autarky.opam) carries no JSON library;
    this covers exactly the grammar our writers emit.  Not a general
    parser — no surrogate pairs, no tolerance for malformed input. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
val of_file : string -> t
(** @raise Parse_error on malformed input; [Sys_error] on I/O failure. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val mem_exn : ctx:string -> string -> t -> t
(** @raise Parse_error (mentioning [ctx]) when the field is absent. *)

val str : ctx:string -> t -> string
val num : ctx:string -> t -> float
val int_ : ctx:string -> t -> int
val bool_ : ctx:string -> t -> bool
val arr : ctx:string -> t -> t list
(** Typed projections; @raise Parse_error (mentioning [ctx]) on shape
    mismatch. *)
