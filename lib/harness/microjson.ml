(* Minimal recursive-descent JSON reader — just enough to load the
   reports this repo itself emits (BENCH_perf.json, BENCH_serve.json:
   objects, arrays, strings with the escapes our writers produce,
   numbers, booleans, null).  Exists because the toolchain is pinned
   (autarky.opam) and none of the pinned deps parse JSON; do not grow
   it into a general parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected %C at offset %d, got %C" ch c.pos x
  | None -> fail "expected %C at offset %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.s then fail "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if c.pos >= String.length c.s then fail "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.s then fail "bad \\u escape";
         let code = int_of_string ("0x" ^ String.sub c.s c.pos 4) in
         c.pos <- c.pos + 4;
         (* Our writers only emit \u00xx control escapes; decode the
            BMP code point as UTF-8 for robustness. *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
       | e -> fail "bad escape \\%C" e);
      loop ()
    | ch ->
      Buffer.add_char b ch;
      loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail "bad number %S at offset %d" tok start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then (expect c '}'; Obj [])
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> expect c ','; members ((key, v) :: acc)
        | Some '}' -> expect c '}'; Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      members []
    end
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then (expect c ']'; Arr [])
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> expect c ','; elements (v :: acc)
        | Some ']' -> expect c ']'; Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      elements []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c
  | None -> fail "unexpected end of input"

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at offset %d" c.pos;
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- typed accessors --------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let mem_exn ~ctx key j =
  match member key j with
  | Some v -> v
  | None -> fail "%s: missing field %S" ctx key

let str ~ctx = function Str s -> s | _ -> fail "%s: expected string" ctx
let num ~ctx = function Num f -> f | _ -> fail "%s: expected number" ctx
let int_ ~ctx j = int_of_float (num ~ctx j)
let bool_ ~ctx = function Bool b -> b | _ -> fail "%s: expected bool" ctx
let arr ~ctx = function Arr l -> l | _ -> fail "%s: expected array" ctx
