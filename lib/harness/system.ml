type t = {
  sys_machine : Sgx.Machine.t;
  sys_os : Sim_os.Kernel.t;
  sys_proc : Sim_os.Kernel.proc;
  sys_cpu : Sgx.Cpu.t;
  sys_runtime : Autarky.Runtime.t option;
  sys_tracer : Trace.Recorder.t option;
  mutable next_region : Sgx.Types.vpage;
  region_end : Sgx.Types.vpage;
}

let os_iface os proc : Autarky.Os_iface.t =
  {
    set_enclave_managed = Sim_os.Kernel.ay_set_enclave_managed os proc;
    set_os_managed = Sim_os.Kernel.ay_set_os_managed os proc;
    fetch_pages = Sim_os.Kernel.ay_fetch_pages os proc;
    fetch_page = Sim_os.Kernel.ay_fetch_page os proc;
    evict_pages = Sim_os.Kernel.ay_evict_pages os proc;
    aug_pages = Sim_os.Kernel.ay_aug_pages os proc;
    aug_page = Sim_os.Kernel.ay_aug_page os proc;
    remove_pages = Sim_os.Kernel.ay_remove_pages os proc;
    blob_store = Sim_os.Kernel.blob_store os proc;
    blob_load = Sim_os.Kernel.blob_load os proc;
    page_in_os_managed = Sim_os.Kernel.page_in_os_managed os proc;
    epc_headroom = (fun () -> Sim_os.Kernel.epc_headroom os proc);
  }

(* Bring an ECREATEd (but still empty) process up into a runnable
   platform slice: populate the initial image, install the Autarky
   runtime when the enclave is self-paging, EINIT, and wire a CPU.
   Shared by [create] (which builds the machine and OS itself) and by
   multi-tenant drivers that carve many enclaves out of one machine
   (hypervisor guests — see [Serve.Tenant]). *)
let attach ?(mech = `Sgx1) ?budget ?wrap_os ~machine ~os ~proc () =
  let enclave = Sim_os.Kernel.enclave proc in
  let enclave_pages = enclave.Sgx.Enclave.size_pages in
  let epc_limit = Sim_os.Kernel.epc_limit proc in
  (* Populate the whole initial image (zero pages); pages beyond the EPC
     allowance land pre-sealed in the backing store. *)
  for i = 0 to enclave_pages - 1 do
    Sim_os.Kernel.add_initial_page os proc ~vpage:(enclave.base_vpage + i)
      ~data:(Sgx.Page_data.create ()) ~perms:Sgx.Types.perms_rwx
  done;
  let runtime =
    if enclave.Sgx.Enclave.self_paging then begin
      let budget = Option.value budget ~default:(max 1 (epc_limit - 64)) in
      (* [wrap_os] interposes on the kernel/runtime boundary — the
         fault-injection layer's hook. *)
      let iface =
        match wrap_os with
        | None -> os_iface os proc
        | Some w -> w (os_iface os proc)
      in
      let rt = Autarky.Runtime.create ~machine ~enclave ~os:iface ~mech ~budget in
      (* Cooperative ballooning: the OS's memory-pressure upcall lands in
         the runtime, which applies the active policy's deflation rules. *)
      Sim_os.Kernel.set_balloon_handler os proc (fun pages ->
          Autarky.Runtime.balloon_release rt ~pages);
      Some rt
    end
    else None
  in
  Sim_os.Kernel.finalize os proc;
  let cpu =
    Sgx.Cpu.create ~machine ~page_table:(Sim_os.Kernel.page_table proc) ~enclave
      ~os:(Sim_os.Kernel.os_callbacks os) ()
  in
  {
    sys_machine = machine;
    sys_os = os;
    sys_proc = proc;
    sys_cpu = cpu;
    sys_runtime = runtime;
    sys_tracer = Sgx.Machine.tracer machine;
    next_region = enclave.base_vpage;
    region_end = enclave.base_vpage + enclave_pages;
  }

let create ?model ?(mode = Sgx.Machine.Full_exits) ?(mech = `Sgx1) ?budget
    ?(trace = false) ?trace_capacity ?wrap_os ~epc_frames ~epc_limit
    ~enclave_pages ~self_paging () =
  assert (epc_frames > 0 && epc_limit > 0 && enclave_pages > 0);
  let machine =
    match model with
    | Some m -> Sgx.Machine.create ~model:m ~mode ~epc_frames ()
    | None -> Sgx.Machine.create ~mode ~epc_frames ()
  in
  (* Install the recorder before the OS and enclave exist so enclave
     construction and initial paging are part of the trace. *)
  if trace then begin
    let tr =
      Trace.Recorder.create ?capacity:trace_capacity
        ~clock:Sgx.Machine.(machine.clock) ()
    in
    Sgx.Machine.set_tracer machine (Some tr)
  end;
  let os = Sim_os.Kernel.create machine in
  let proc =
    Sim_os.Kernel.create_proc os ~size_pages:enclave_pages ~self_paging
      ~epc_limit
  in
  attach ~mech ?budget ?wrap_os ~machine ~os ~proc ()

let machine t = t.sys_machine
let os t = t.sys_os
let proc t = t.sys_proc
let enclave t = Sim_os.Kernel.enclave t.sys_proc
let cpu t = t.sys_cpu
let runtime t = t.sys_runtime

let runtime_exn t =
  match t.sys_runtime with
  | Some rt -> rt
  | None -> invalid_arg "System.runtime_exn: not a self-paging enclave"

let clock t = Sgx.Machine.(t.sys_machine.clock)
let counters t = Sgx.Machine.counters t.sys_machine
let tracer t = t.sys_tracer

let tracer_exn t =
  match t.sys_tracer with
  | Some tr -> tr
  | None -> invalid_arg "System.tracer_exn: tracing not enabled (pass ~trace:true)"

let mark t name =
  match t.sys_tracer with
  | None -> ()
  | Some tr ->
    Trace.Recorder.emit tr
      ~enclave:(enclave t).Sgx.Enclave.id ~actor:Trace.Event.Harness
      (Trace.Event.Mark { name })

let reserve t ~pages =
  assert (pages > 0);
  if t.next_region + pages > t.region_end then
    invalid_arg
      (Printf.sprintf "System.reserve: enclave address space exhausted (%d > %d)"
         (t.next_region + pages) t.region_end);
  let base = t.next_region in
  t.next_region <- base + pages;
  base

let allocator t ~pages ~cluster_pages =
  let base = reserve t ~pages in
  let clusters = Autarky.Clusters.create () in
  Autarky.Allocator.create ~clusters ~base_vpage:base ~pages ~cluster_pages

let clusters_of alloc = Autarky.Allocator.clusters alloc

let vm t ?instrument ?(on_progress = fun () -> ()) () =
  let plain vaddr kind = Sgx.Cpu.access t.sys_cpu vaddr kind in
  let touch = Option.value instrument ~default:plain in
  {
    Workloads.Vm.read = (fun a -> touch a Sgx.Types.Read);
    write = (fun a -> touch a Sgx.Types.Write);
    exec = (fun a -> touch a Sgx.Types.Exec);
    compute = (fun c -> Sgx.Machine.charge t.sys_machine c);
    progress = on_progress;
  }

let chunks n lst =
  let rec go acc cur count = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if count = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (count + 1) rest
  in
  go [] [] 0 lst

let pin t pages =
  let rt = runtime_exn t in
  Autarky.Runtime.mark_enclave_managed rt pages;
  let pager = Autarky.Runtime.pager rt in
  let need = List.filter (fun p -> not (Autarky.Pager.resident pager p)) pages in
  List.iter
    (fun chunk ->
      Autarky.Pager.make_room pager ~incoming:(List.length chunk)
        ~victims:(fun () -> Autarky.Pager.oldest_residents pager 16);
      Autarky.Pager.fetch pager chunk)
    (chunks 64 need)

let manage t pages =
  let rt = runtime_exn t in
  Autarky.Runtime.mark_enclave_managed rt pages

let run_in_enclave t f =
  Sgx.Instructions.eenter_run t.sys_machine (enclave t) f
