(** Performance-regression harness behind [autarky_sim perf] and the
    bench "perf" experiment.

    Measures real wall-clock time ([Unix.gettimeofday]) and allocation
    rates ([Gc.allocated_bytes]) — not the simulator's virtual clock —
    for (a) the crypto hot paths against their preserved boxed
    reference implementations, and (b) a fixed-seed workload matrix
    across policies and paging mechanisms.  Writes the stable
    ["autarky-perf/2"] JSON schema (see DESIGN.md §11): per-access
    figures divide by the true VM access count (recorded per cell in
    ["accesses"]); the retired /1 schema divided by ops under the same
    field names. *)

type micro_row = {
  mi_name : string;
  mi_iters : int;
  mi_new_ns : float;     (** wall ns per op, optimized implementation *)
  mi_new_alloc : float;  (** allocated bytes per op *)
  mi_ref_ns : float;     (** wall ns per op, boxed reference *)
  mi_ref_alloc : float;
}

val speedup : micro_row -> float
(** Reference wall time over optimized wall time. *)

type matrix_row = {
  mx_workload : string;
  mx_policy : string;
  mx_mech : string;      (** "sgx1" or "sgx2" *)
  mx_ops : int;
  mx_accesses : int;     (** VM accesses performed (deterministic) *)
  mx_wall_ns : float;    (** wall ns per access *)
  mx_alloc : float;      (** allocated bytes per access *)
  mx_cycles : float;     (** modeled cycles per access *)
  mx_faults : int;
}

type report = {
  r_quick : bool;
  r_seed : int;
  r_jobs : int;       (** domains the matrix ran on (wall metadata only) *)
  r_matrix_wall_s : float;  (** wall clock of the whole matrix section *)
  r_micro : micro_row list;
  r_matrix : matrix_row list;
}

val to_json : report -> string
(** Render the stable ["autarky-perf/2"] schema.  Determinism contract:
    everything except the ["wall"] metadata object and the per-row
    wall/alloc fields is a pure function of (quick, seed) — independent
    of [jobs], the machine, and the run.  (Matrix alloc rates are
    per-domain measurements and pick up one-time per-domain
    initialisation, so they shift with the sharding; modeled cycles,
    fault counts and ops never do.) *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> ?out:string -> unit -> report
(** Run the microbenchmarks and the workload matrix, print a summary
    table, and — when [out] is given — write the JSON report there.
    [quick] (default false) shrinks iteration counts and the matrix to
    a CI-friendly smoke run.  [jobs] (default 1; [<= 0] means
    {!Parallel.Pool.default_jobs}) shards the matrix cells across
    domains; the micro section always runs serially, first, so its
    wall numbers are never measured under self-inflicted contention. *)

val check :
  baseline:string -> ?against:string -> ?tolerance:float ->
  ?wall_ceiling_ns:float -> ?alloc_ceiling:float -> ?jobs:int ->
  unit -> bool
(** The CI regression gate ([autarky_sim perf --check]).  Loads the
    ["autarky-perf/2"] [baseline] file and compares matrix cells
    against [against] (another report file) — or, when [against] is
    omitted, against a fresh run of the matrix at the baseline's own
    (quick, seed), sharded over [jobs] domains.  A cell fails when its
    identity (ops, accesses) disagrees or when modeled cycles or fault
    counts drift more than [tolerance] (default 0.25, relative; 0
    demands exact equality).  Wall-clock and allocation figures are
    informational by default; [wall_ceiling_ns] additionally fails any
    current rate-limit cell whose wall ns/access exceeds it (a generous
    absolute bound locking in the flat-core speedup), and
    [alloc_ceiling] fails the run when the current matrix's *median*
    allocated bytes/access exceeds it.  Prints a verdict table; returns
    whether every cell passed.
    @raise Failure / {!Microjson.Parse_error} on unreadable input. *)
