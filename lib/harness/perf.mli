(** Performance-regression harness behind [autarky_sim perf] and the
    bench "perf" experiment.

    Measures real wall-clock time ([Unix.gettimeofday]) and allocation
    rates ([Gc.allocated_bytes]) — not the simulator's virtual clock —
    for (a) the crypto hot paths against their preserved boxed
    reference implementations, and (b) a fixed-seed workload matrix
    across policies and paging mechanisms.  Writes the stable
    ["autarky-perf/1"] JSON schema (see DESIGN.md §11). *)

type micro_row = {
  mi_name : string;
  mi_iters : int;
  mi_new_ns : float;     (** wall ns per op, optimized implementation *)
  mi_new_alloc : float;  (** allocated bytes per op *)
  mi_ref_ns : float;     (** wall ns per op, boxed reference *)
  mi_ref_alloc : float;
}

val speedup : micro_row -> float
(** Reference wall time over optimized wall time. *)

type matrix_row = {
  mx_workload : string;
  mx_policy : string;
  mx_mech : string;      (** "sgx1" or "sgx2" *)
  mx_ops : int;
  mx_wall_ns : float;    (** wall ns per access *)
  mx_alloc : float;      (** allocated bytes per access *)
  mx_cycles : float;     (** modeled cycles per access *)
  mx_faults : int;
}

type report = {
  r_quick : bool;
  r_seed : int;
  r_micro : micro_row list;
  r_matrix : matrix_row list;
}

val to_json : report -> string
(** Render the stable ["autarky-perf/1"] schema. *)

val run : ?quick:bool -> ?seed:int -> ?out:string -> unit -> report
(** Run the microbenchmarks and the workload matrix, print a summary
    table, and — when [out] is given — write the JSON report there.
    [quick] (default false) shrinks iteration counts and the matrix to
    a CI-friendly smoke run. *)
