type result = {
  cycles : int;
  seconds : float;
  page_faults : int;
  tlb_misses : int;
  pages_fetched : int;
  pages_evicted : int;
  counters : (string * int) list;
}

let run sys ?(reset = true) f =
  let clock = System.clock sys in
  if reset then Metrics.Clock.reset clock;
  let start = Metrics.Clock.start_span clock in
  let counters = System.counters sys in
  let base name = Metrics.Counters.get counters name in
  let f0 = base "cpu.page_fault" in
  let t0 = base "mmu.tlb_miss" in
  let pf0 = base "rt.pages_fetched" + base "os.fetch" in
  let pe0 = base "rt.pages_evicted" + base "os.evict" in
  let baseline = Metrics.Counters.snapshot counters in
  System.run_in_enclave sys f;
  let cycles = Metrics.Clock.span_cycles clock start in
  (* [counters] is delta-based against the same pre-phase baseline as
     the named fields: counters already non-zero before the phase are
     reported net of their starting value. *)
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let d =
          match List.assoc_opt name baseline with Some b -> v - b | None -> v
        in
        if d <> 0 then Some (name, d) else None)
      (Metrics.Counters.snapshot counters)
  in
  {
    cycles;
    seconds = Metrics.Cost_model.seconds (Metrics.Clock.model clock) cycles;
    page_faults = base "cpu.page_fault" - f0;
    tlb_misses = base "mmu.tlb_miss" - t0;
    pages_fetched = base "rt.pages_fetched" + base "os.fetch" - pf0;
    pages_evicted = base "rt.pages_evicted" + base "os.evict" - pe0;
    counters = deltas;
  }

let throughput r ~ops =
  if r.seconds <= 0.0 then 0.0 else float_of_int ops /. r.seconds

let fault_rate r =
  if r.seconds <= 0.0 then 0.0 else float_of_int r.page_faults /. r.seconds

let pp ppf r =
  Format.fprintf ppf
    "cycles=%d (%.4f s)  faults=%d  tlb_misses=%d  fetched=%d  evicted=%d"
    r.cycles r.seconds r.page_faults r.tlb_misses r.pages_fetched r.pages_evicted
