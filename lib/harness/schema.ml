(* The benchmark-report schema registry and shape validator.

   One entry per schema string a writer in this tree emits.  When a
   writer grows a field, add it here in the same change — the CI
   bench-validate step diffs committed baselines against this registry,
   so a silent rename shows up as a red gate, not as a stale baseline
   that Perf.check or Serve.Driver.check misreads. *)

type field_kind = Bool | Num | Str | Obj | Rows of string list
type spec = { required : (string * field_kind) list }

let summary_keys = [ "count"; "mean"; "p50"; "p95"; "p99"; "max" ]

let known =
  [
    ( "autarky-perf/2",
      {
        required =
          [
            ("quick", Bool);
            ("seed", Num);
            ("page_bytes", Num);
            ("wall", Obj);
            ( "micro",
              Rows
                [
                  "name"; "iters"; "new_wall_ns_per_op";
                  "new_alloc_bytes_per_op"; "ref_wall_ns_per_op";
                  "ref_alloc_bytes_per_op"; "speedup_wall";
                ] );
            ( "matrix",
              Rows
                [
                  "workload"; "policy"; "mech"; "ops"; "accesses";
                  "wall_ns_per_access"; "alloc_bytes_per_access";
                  "modeled_cycles_per_access"; "page_faults";
                ] );
          ];
      } );
    ( "autarky-serve/1",
      {
        required =
          [
            ("quick", Bool);
            ("seed", Num);
            ("end_cycle", Num);
            ("virtual_seconds", Num);
            ("arbiter_moves", Num);
            ( "tenants",
              Rows
                [
                  "name"; "workload"; "policy"; "generator"; "arrivals";
                  "served"; "shed"; "deadline_missed"; "terminations";
                  "restarts"; "refused"; "faults"; "svc_mean_cycles";
                  "throughput_rps"; "shed_rate"; "latency_cycles";
                ] );
          ];
      } );
    ( "autarky-serve/2",
      {
        required =
          [
            ("quick", Bool);
            ("seed", Num);
            ("tenants_n", Num);
            ("end_cycle", Num);
            ("virtual_seconds", Num);
            ("arbiter_moves", Num);
            ("totals", Obj);
            ("fleet_latency", Obj);
            ( "tenants",
              Rows
                [
                  "name"; "workload"; "policy"; "generator"; "arrivals";
                  "served"; "shed"; "deadline_missed"; "terminations";
                  "restarts"; "refused"; "departed"; "arrive_after";
                  "depart_after"; "boot_cycles"; "faults"; "svc_mean_cycles";
                  "throughput_rps"; "shed_rate"; "latency_method";
                  "latency_cycles";
                ] );
          ];
      } );
    ( "autarky-fleet/2",
      {
        required =
          [
            ("quick", Bool);
            ("root_seed", Num);
            ("members", Rows [ "shard"; "seed"; "end_cycle"; "arbiter_moves" ]);
            ( "tenants",
              Rows
                [
                  "name"; "workload"; "policy"; "arrivals"; "served"; "shed";
                  "deadline_missed"; "throughput_rps"; "latency_merge";
                  "latency_cycles";
                ] );
          ];
      } );
    ( "autarky-redteam/1",
      {
        required =
          [
            ("quick", Bool);
            ("seed", Num);
            ( "cells",
              Rows
                [
                  "adversary"; "policy"; "mech"; "outcome"; "reason";
                  "requests"; "alphabet"; "observations"; "bits_leaked";
                  "bits_ideal"; "guess_probability"; "blind_guess_probability";
                  "probes"; "terminations"; "termination_bits"; "digest";
                ] );
          ];
      } );
    ( "autarky-defense/1",
      {
        required =
          [
            ("quick", Bool);
            ("seed", Num);
            ("wall", Obj);
            ( "cells",
              Rows
                [
                  "adversary"; "ladder"; "victim"; "requests"; "ticks";
                  "escalations"; "de_escalations"; "failed_switches";
                  "policy_switches"; "final_policy"; "victim_refused";
                  "bits_observed"; "bits_terminations"; "probes"; "digest";
                ] );
          ];
      } );
  ]

let kind_name = function
  | Bool -> "bool"
  | Num -> "number"
  | Str -> "string"
  | Obj -> "object"
  | Rows _ -> "array of objects"

let shape_ok kind (v : Microjson.t) =
  match (kind, v) with
  | Bool, Microjson.Bool _ -> true
  | Num, Microjson.Num _ -> true
  | Str, Microjson.Str _ -> true
  | Obj, Microjson.Obj _ -> true
  | Rows _, Microjson.Arr _ -> true
  | _ -> false

(* The fixed latency summary object every serve-family row embeds. *)
let check_summary ~ctx ~where errs v =
  match v with
  | Microjson.Obj _ ->
    List.iter
      (fun k ->
        if Microjson.member k v = None then
          errs := Printf.sprintf "%s: %s.latency_cycles missing %S" ctx where k
                  :: !errs)
      summary_keys
  | _ -> errs := Printf.sprintf "%s: %s.latency_cycles not an object" ctx where :: !errs

let validate ~ctx j =
  let errs = ref [] in
  (match Microjson.member "schema" j with
  | None -> errs := Printf.sprintf "%s: missing \"schema\" field" ctx :: !errs
  | Some (Microjson.Str s) -> (
    match List.assoc_opt s known with
    | None -> errs := Printf.sprintf "%s: unknown schema %S" ctx s :: !errs
    | Some spec ->
      List.iter
        (fun (field, kind) ->
          match Microjson.member field j with
          | None ->
            errs := Printf.sprintf "%s: missing field %S" ctx field :: !errs
          | Some v when not (shape_ok kind v) ->
            errs :=
              Printf.sprintf "%s: field %S is not a %s" ctx field
                (kind_name kind)
              :: !errs
          | Some v -> (
            match kind with
            | Rows keys ->
              let rows = match v with Microjson.Arr l -> l | _ -> [] in
              List.iteri
                (fun i row ->
                  match row with
                  | Microjson.Obj _ ->
                    List.iter
                      (fun k ->
                        match Microjson.member k row with
                        | None ->
                          errs :=
                            Printf.sprintf "%s: %s[%d] missing key %S" ctx
                              field i k
                            :: !errs
                        | Some inner ->
                          if k = "latency_cycles" then
                            check_summary ~ctx
                              ~where:(Printf.sprintf "%s[%d]" field i)
                              errs inner)
                      keys
                  | _ ->
                    errs :=
                      Printf.sprintf "%s: %s[%d] is not an object" ctx field i
                      :: !errs)
                rows
            | _ -> ()))
        spec.required)
  | Some _ -> errs := Printf.sprintf "%s: \"schema\" is not a string" ctx :: !errs);
  match List.rev !errs with [] -> Ok () | es -> Error es

let validate_file path =
  match Microjson.of_file path with
  | j -> validate ~ctx:path j
  | exception Microjson.Parse_error m ->
    Error [ Printf.sprintf "%s: parse error: %s" path m ]
  | exception Sys_error m -> Error [ m ]
