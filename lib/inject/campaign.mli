(** Fault-injection campaigns: N seeds x M scenarios per policy, each
    run differentially checked against an uninjected golden run of the
    same (policy, seed) cell.

    Each cell builds a fresh self-paging platform (fixed geometry, see
    the implementation), wires a fresh {!Injector} into the OS
    interface, and drives a seeded mixed workload over a policy-protected
    data region and an OS-managed side region, ticking the injector
    between operations.  The run resolves into a {!Fault.outcome}:

    {ul
    {- completed with output identical to the golden run —
       [Recovered], or [Degraded] when a policy shrank its budget/cache
       under pressure (["rt.policy_degraded"]);}
    {- modeled enclave termination — [Detected], recorded against the
       campaign's {!Autarky.Restart_monitor} (whose clock never
       advances, so the whole campaign is one worst-case window for the
       termination channel);}
    {- anything else — [Silent_corruption] / [Hang] / [Crash], which
       count as subsystem failures and clear {!summary.ok}.}}

    Determinism contract: the same seed yields the same injection
    schedule, verdict and trace digest; [verify_determinism] re-executes
    every injected cell and compares all three. *)

type policy_kind = Rate_limit | Clusters | Oram

val all_policies : policy_kind list
val policy_name : policy_kind -> string
val policy_of_name : string -> policy_kind option

(** {1 Stepped cells}

    One campaign platform exposed operation-at-a-time.  Between two
    {!cell_step} calls the cell is quiescent (no enclave entered, no
    injector mid-tick), which is where {!Snapshot} captures it: the
    whole record — system, injector, workload RNG, shadow model, digest
    closure — marshals as one graph and resumes in a fresh process of
    the same binary. *)

type cell

(** How one drive of a cell resolved (the raw, pre-classification
    view; {!run} folds this against the golden run into an outcome). *)
type exec = {
  e_raw : [ `Completed | `Terminated of string | `Hang | `Crash of string ];
  e_output : int64;  (** FNV over the values the workload read *)
  e_mismatch : bool;  (** a read disagreed with the shadow model *)
  e_cycles : int;
  e_degraded : bool;
  e_injected : int;
  e_digest : string;  (** trace digest, injections included *)
}

val cell_build :
  policy:policy_kind -> seed:int -> ops:int ->
  scenario:Fault.scenario option -> cycle_cap:int -> cell
(** Fresh platform + injector + workload cursor at operation 0.
    [scenario = None] builds the uninjected golden configuration;
    [cycle_cap] is the hang watchdog (use [max_int] to disable). *)

val cell_step : cell -> bool
(** Perform one workload operation (and one injector tick); [false]
    once the configured operation count is exhausted.  Lets the
    workload's exceptions ([Enclave_terminated], the watchdog) escape —
    callers that want the classified view use {!cell_drive}. *)

exception Paused
(** Never raised by this module itself: a [checkpoint] hook raises it
    to abort {!cell_drive} at the quiescent point it fires at (e.g.
    after sealing a pause image).  It escapes {!cell_drive} without
    being classified as a crash, leaving the cell resumable. *)

val cell_drive :
  ?checkpoint:(cell -> unit) ->
  ?on_detected:(cell -> reason:string -> unit) -> cell -> exec
(** Drive a (possibly restored mid-run) cell to resolution.
    [checkpoint] runs before every operation; [on_detected] fires when
    an operation resolves into a modeled termination, at which point
    the last [checkpoint] state is the system just before the Detected
    verdict — the image worth persisting for replay-with-tracing. *)

val exec_run :
  policy:policy_kind -> seed:int -> ops:int ->
  scenario:Fault.scenario option -> cycle_cap:int -> exec
(** [cell_drive (cell_build ...)]: one closed run. *)

val classify : golden:exec -> exec -> Fault.outcome
(** Fold a raw execution against its uninjected golden run — the
    campaign's verdict rule, exposed so snapshot replays reclassify
    with the same semantics. *)

val cell_policy : cell -> policy_kind
val cell_seed : cell -> int
val cell_scenario : cell -> Fault.scenario option
val cell_ops : cell -> int
val cell_done : cell -> int
(** Operations completed so far (the resume cursor). *)

val cell_machine : cell -> Sgx.Machine.t
(** The cell's simulated machine (for snapshot probe digests). *)

val cell_add_sink : cell -> Trace.Sink.t -> unit
(** Attach an extra trace sink (e.g. a JSONL dump for replay) to the
    cell's recorder.  Sinks hold channels, so this is done {e after} a
    restore, never before a capture. *)

type run_result = {
  r_policy : policy_kind;
  r_scenario : Fault.scenario;
  r_seed : int;
  r_outcome : Fault.outcome;
  r_injected : int;  (** injections actually performed *)
  r_digest : string;  (** trace digest of the injected run *)
}

type monitor_row = {
  m_identity : string;
  m_refused : bool;
      (** the restart monitor cut this identity off (budget exhausted) *)
  m_leaked : float;  (** upper bound on termination-channel leakage, bits *)
}

type summary = {
  runs : run_result list;
  unsafe : int;  (** runs that resolved into a non-safe outcome *)
  nondeterministic : int;  (** cells whose re-execution diverged *)
  monitor : monitor_row list;
  ok : bool;  (** [unsafe = 0 && nondeterministic = 0] *)
}

val run :
  ?seeds:int list ->
  ?ops:int ->
  ?scenarios:Fault.scenario list ->
  ?policies:policy_kind list ->
  ?verify_determinism:bool ->
  ?max_restarts:int ->
  ?jobs:int ->
  ?checkpoint:(cell -> unit) ->
  ?on_detected:(cell -> reason:string -> unit) ->
  unit -> summary
(** Defaults: seeds [1..5], 120 operations per run, every scenario,
    every policy, no determinism re-execution, restart budget 3,
    [jobs = 1].  [jobs] (with [<= 0] meaning
    {!Parallel.Pool.default_jobs}) shards the (policy, scenario, seed)
    cells — and the golden runs they diff against — across domains;
    each cell owns its platform, injector and trace recorder, and the
    restart monitor is folded serially in campaign order afterwards,
    so verdicts, injection counts and digests are identical at any
    [jobs].
    @raise Failure when an uninjected golden run fails to complete. *)
