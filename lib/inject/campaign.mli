(** Fault-injection campaigns: N seeds x M scenarios per policy, each
    run differentially checked against an uninjected golden run of the
    same (policy, seed) cell.

    Each cell builds a fresh self-paging platform (fixed geometry, see
    the implementation), wires a fresh {!Injector} into the OS
    interface, and drives a seeded mixed workload over a policy-protected
    data region and an OS-managed side region, ticking the injector
    between operations.  The run resolves into a {!Fault.outcome}:

    {ul
    {- completed with output identical to the golden run —
       [Recovered], or [Degraded] when a policy shrank its budget/cache
       under pressure (["rt.policy_degraded"]);}
    {- modeled enclave termination — [Detected], recorded against the
       campaign's {!Autarky.Restart_monitor} (whose clock never
       advances, so the whole campaign is one worst-case window for the
       termination channel);}
    {- anything else — [Silent_corruption] / [Hang] / [Crash], which
       count as subsystem failures and clear {!summary.ok}.}}

    Determinism contract: the same seed yields the same injection
    schedule, verdict and trace digest; [verify_determinism] re-executes
    every injected cell and compares all three. *)

type policy_kind = Rate_limit | Clusters | Oram

val all_policies : policy_kind list
val policy_name : policy_kind -> string
val policy_of_name : string -> policy_kind option

type run_result = {
  r_policy : policy_kind;
  r_scenario : Fault.scenario;
  r_seed : int;
  r_outcome : Fault.outcome;
  r_injected : int;  (** injections actually performed *)
  r_digest : string;  (** trace digest of the injected run *)
}

type monitor_row = {
  m_identity : string;
  m_refused : bool;
      (** the restart monitor cut this identity off (budget exhausted) *)
  m_leaked : float;  (** upper bound on termination-channel leakage, bits *)
}

type summary = {
  runs : run_result list;
  unsafe : int;  (** runs that resolved into a non-safe outcome *)
  nondeterministic : int;  (** cells whose re-execution diverged *)
  monitor : monitor_row list;
  ok : bool;  (** [unsafe = 0 && nondeterministic = 0] *)
}

val run :
  ?seeds:int list ->
  ?ops:int ->
  ?scenarios:Fault.scenario list ->
  ?policies:policy_kind list ->
  ?verify_determinism:bool ->
  ?max_restarts:int ->
  ?jobs:int ->
  unit -> summary
(** Defaults: seeds [1..5], 120 operations per run, every scenario,
    every policy, no determinism re-execution, restart budget 3,
    [jobs = 1].  [jobs] (with [<= 0] meaning
    {!Parallel.Pool.default_jobs}) shards the (policy, scenario, seed)
    cells — and the golden runs they diff against — across domains;
    each cell owns its platform, injector and trace recorder, and the
    restart monitor is folded serially in campaign order afterwards,
    so verdicts, injection counts and digests are identical at any
    [jobs].
    @raise Failure when an uninjected golden run fails to complete. *)
