type scenario =
  | Bit_flip
  | Replay
  | Drop_blob
  | Epc_burst
  | Limit_shrink
  | Balloon_storm
  | Reentry

let all =
  [ Bit_flip; Replay; Drop_blob; Epc_burst; Limit_shrink; Balloon_storm;
    Reentry ]

let name = function
  | Bit_flip -> "bit-flip"
  | Replay -> "replay"
  | Drop_blob -> "drop-blob"
  | Epc_burst -> "epc-burst"
  | Limit_shrink -> "limit-shrink"
  | Balloon_storm -> "balloon-storm"
  | Reentry -> "reentry"

let of_name s =
  List.find_opt (fun sc -> name sc = s) all

let pp_scenario ppf sc = Format.pp_print_string ppf (name sc)

type outcome =
  | Recovered
  | Degraded
  | Detected of string
  | Silent_corruption of string
  | Hang of string
  | Crash of string

let is_safe = function
  | Recovered | Degraded | Detected _ -> true
  | Silent_corruption _ | Hang _ | Crash _ -> false

let outcome_name = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Detected _ -> "detected"
  | Silent_corruption _ -> "silent-corruption"
  | Hang _ -> "hang"
  | Crash _ -> "crash"

let pp_outcome ppf = function
  | Recovered -> Format.pp_print_string ppf "recovered"
  | Degraded -> Format.pp_print_string ppf "degraded"
  | Detected r -> Format.fprintf ppf "detected (%s)" r
  | Silent_corruption r -> Format.fprintf ppf "SILENT CORRUPTION (%s)" r
  | Hang r -> Format.fprintf ppf "HANG (%s)" r
  | Crash r -> Format.fprintf ppf "CRASH (%s)" r
