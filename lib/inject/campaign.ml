type policy_kind = Rate_limit | Clusters | Oram

let all_policies = [ Rate_limit; Clusters; Oram ]

let policy_name = function
  | Rate_limit -> "rate-limit"
  | Clusters -> "clusters"
  | Oram -> "oram"

let policy_of_name s =
  List.find_opt (fun p -> policy_name p = s) all_policies

exception Hang_detected

let page = Sgx.Types.page_bytes

(* Campaign platform geometry: a 320-page enclave against a 96-frame
   allowance and a 48-page runtime budget.  The initially-resident
   96-page prefix stays OS-managed (evictable kernel working room); the
   64-page data region is protected by the policy under test; the
   32-page side region stays OS-managed so the forwarded demand-paging
   path is exercised too.  Both protected regions start beyond the EPC
   allowance, i.e. as sealed blobs in the backing store — tampering
   targets from the first operation on. *)
let epc_frames = 192
let epc_limit = 96
let enclave_pages = 320
let budget = 48
let prefix_pages = 96
let data_pages = 64
let side_pages = 32
let oram_cache_pages = 16

type exec = {
  e_raw : [ `Completed | `Terminated of string | `Hang | `Crash of string ];
  e_output : int64;  (* FNV over the values the workload read *)
  e_mismatch : bool;  (* a read disagreed with the shadow model *)
  e_cycles : int;
  e_degraded : bool;
  e_injected : int;
  e_digest : string;  (* trace digest, injections included *)
}

(* A cell mid-run: one platform with its injector, workload cursor and
   trace digest.  [cl_op] performs exactly one workload operation
   (watchdog check, one enclave entry, one injector tick); between two
   calls the cell is quiescent — no enclave entered, no span open — so
   the whole record (closures included) is capturable by [Snapshot]. *)
type cell = {
  cl_policy : policy_kind;
  cl_seed : int;
  cl_ops : int;
  cl_scenario : Fault.scenario option;
  cl_sys : Harness.System.t;
  cl_tr : Trace.Recorder.t;
  cl_digest : unit -> string;
  cl_inj : Injector.t option;
  cl_op : unit -> unit;
  cl_output : Trace.Fnv.t ref;
  cl_mismatch : bool ref;
  mutable cl_done : int;
}

(* Build one campaign platform (optionally with an injector wired into
   the OS interface) and the closure driving its seeded mixed
   read/write workload over the data and side regions. *)
let cell_build ~policy ~seed ~ops ~scenario ~cycle_cap =
  let inj =
    Option.map
      (fun sc ->
        Injector.create
          ~seed:(Int64.of_int ((seed * 7919) + 17))
          ~scenario:sc ())
      scenario
  in
  let wrap_os = Option.map (fun i os -> Injector.wrap_os i os) inj in
  let sys =
    Harness.System.create ?wrap_os ~trace:true ~mech:`Sgx1 ~epc_frames
      ~epc_limit ~enclave_pages ~self_paging:true ~budget ()
  in
  let tr = Harness.System.tracer_exn sys in
  let dsink, dres = Trace.Sink.digest () in
  Trace.Recorder.add_sink tr dsink;
  let rt = Harness.System.runtime_exn sys in
  let cpu = Harness.System.cpu sys in
  let _prefix = Harness.System.reserve sys ~pages:prefix_pages in
  (* Data region + policy wiring; [read_v]/[write_v] are the workload's
     value accessors for the protected region. *)
  let data_base, read_v, write_v =
    match policy with
    | Rate_limit ->
      let base = Harness.System.reserve sys ~pages:data_pages in
      let rl = Autarky.Policy_rate_limit.create ~runtime:rt () in
      Autarky.Runtime.set_policy rt (Autarky.Policy_rate_limit.policy rl);
      Harness.System.manage sys (List.init data_pages (fun i -> base + i));
      ( base,
        (fun a -> Sgx.Cpu.read_stamp cpu a),
        fun a v -> Sgx.Cpu.write_stamp cpu a v )
    | Clusters ->
      let heap =
        Harness.System.allocator sys ~pages:data_pages ~cluster_pages:4
      in
      for _ = 1 to data_pages do
        ignore (Autarky.Allocator.alloc_page heap)
      done;
      let pc =
        Autarky.Policy_clusters.create ~runtime:rt
          ~clusters:(Autarky.Allocator.clusters heap)
      in
      Autarky.Policy_clusters.set_min_budget pc 16;
      Autarky.Runtime.set_policy rt (Autarky.Policy_clusters.policy pc);
      Harness.System.manage sys (Autarky.Allocator.allocated_pages heap);
      ( Autarky.Allocator.base_vpage heap,
        (fun a -> Sgx.Cpu.read_stamp cpu a),
        fun a v -> Sgx.Cpu.write_stamp cpu a v )
    | Oram ->
      let base = Harness.System.reserve sys ~pages:data_pages in
      let cache_base = Harness.System.reserve sys ~pages:oram_cache_pages in
      let oram =
        Oram.Path_oram.create
          ~clock:(Harness.System.clock sys)
          ~rng:(Metrics.Rng.create ~seed:(Int64.of_int (9_000 + seed)))
          ~n_blocks:data_pages ()
      in
      let cache =
        Autarky.Oram_cache.create
          ~machine:(Harness.System.machine sys)
          ~enclave:(Harness.System.enclave sys)
          ~touch:(fun a k -> Sgx.Cpu.access cpu a k)
          ~oram ~data_base_vpage:base ~n_pages:data_pages
          ~cache_base_vpage:cache_base ~capacity_pages:oram_cache_pages ()
      in
      Harness.System.pin sys
        (List.init oram_cache_pages (fun i -> cache_base + i));
      let pol = Autarky.Policy_oram.create ~runtime:rt ~cache in
      Autarky.Runtime.set_policy rt (Autarky.Policy_oram.policy pol);
      ( base,
        (fun a -> Autarky.Oram_cache.read_stamp cache a),
        fun a v -> Autarky.Oram_cache.write_stamp cache a v )
  in
  let side_base = Harness.System.reserve sys ~pages:side_pages in
  Option.iter
    (fun i ->
      let targets =
        List.init data_pages (fun j -> data_base + j)
        @ List.init side_pages (fun j -> side_base + j)
      in
      Injector.attach i ~sys ~targets)
    inj;
  (* The workload proper: seeded mix of side-region touches (25%) and
     data-region writes (~22%) / reads, with a shadow model checked on
     every read and folded into the output digest. *)
  let rng = Metrics.Rng.create ~seed:(Int64.of_int seed) in
  let shadow = Array.make data_pages 0 in
  let output = ref Trace.Fnv.empty in
  let mismatch = ref false in
  let clock = Harness.System.clock sys in
  let op () =
    if Metrics.Clock.now clock > cycle_cap then raise Hang_detected;
    Harness.System.run_in_enclave sys (fun () ->
        if Metrics.Rng.float rng < 0.25 then
          Sgx.Cpu.read cpu ((side_base + Metrics.Rng.int rng side_pages) * page)
        else begin
          let i = Metrics.Rng.int rng data_pages in
          let a = (data_base + i) * page in
          if Metrics.Rng.float rng < 0.3 then begin
            let v = 1 + Metrics.Rng.int rng 1_000_000 in
            shadow.(i) <- v;
            write_v a v
          end
          else begin
            let v = read_v a in
            if v <> shadow.(i) then mismatch := true;
            output := Trace.Fnv.feed_string !output (Printf.sprintf "%d:%d;" i v)
          end
        end);
    Option.iter Injector.tick inj
  in
  {
    cl_policy = policy;
    cl_seed = seed;
    cl_ops = ops;
    cl_scenario = scenario;
    cl_sys = sys;
    cl_tr = tr;
    cl_digest = dres;
    cl_inj = inj;
    cl_op = op;
    cl_output = output;
    cl_mismatch = mismatch;
    cl_done = 0;
  }

let cell_step c =
  if c.cl_done >= c.cl_ops then false
  else begin
    c.cl_op ();
    c.cl_done <- c.cl_done + 1;
    true
  end

let cell_finish c raw =
  Trace.Recorder.close c.cl_tr;
  {
    e_raw = raw;
    e_output = !(c.cl_output);
    e_mismatch = !(c.cl_mismatch);
    e_cycles = Metrics.Clock.now (Harness.System.clock c.cl_sys);
    e_degraded =
      Metrics.Counters.get (Harness.System.counters c.cl_sys)
        "rt.policy_degraded"
      > 0;
    e_injected = (match c.cl_inj with None -> 0 | Some i -> Injector.injected i);
    e_digest = c.cl_digest ();
  }

exception Paused

(* Drive a cell from wherever its cursor stands to resolution.
   [checkpoint] runs before every operation (the rolling pre-op capture
   of the snapshot hook); [on_detected] runs when an operation resolves
   into a modeled termination — at that point the last [checkpoint]
   state is "just before the Detected verdict", which is exactly the
   image worth persisting for replay-with-tracing.  A checkpoint that
   raises [Paused] aborts the drive with the cell untouched (it fires
   at a quiescent point, before the next operation) — the trace
   recorder stays open, so a restored copy can keep feeding it. *)
let cell_drive ?checkpoint ?on_detected c =
  let raw =
    try
      let continue = ref true in
      while !continue do
        (match checkpoint with Some f when c.cl_done < c.cl_ops -> f c | _ -> ());
        continue := cell_step c
      done;
      `Completed
    with
    | Paused as p -> raise p
    | Sgx.Types.Enclave_terminated { reason; _ } ->
      (match on_detected with Some f -> f c ~reason | None -> ());
      `Terminated reason
    | Hang_detected -> `Hang
    | e -> `Crash (Printexc.to_string e)
  in
  cell_finish c raw

(* One run: build, drive, resolve. *)
let exec_run ~policy ~seed ~ops ~scenario ~cycle_cap =
  cell_drive (cell_build ~policy ~seed ~ops ~scenario ~cycle_cap)

let cell_policy c = c.cl_policy
let cell_seed c = c.cl_seed
let cell_scenario c = c.cl_scenario
let cell_ops c = c.cl_ops
let cell_done c = c.cl_done
let cell_machine c = Harness.System.machine c.cl_sys

let cell_add_sink c sink =
  Trace.Recorder.add_sink c.cl_tr sink

let classify ~golden x =
  match x.e_raw with
  | `Crash msg -> Fault.Crash msg
  | `Hang -> Fault.Hang "exceeded the cycle watchdog (32x the golden run)"
  | `Terminated reason -> Fault.Detected reason
  | `Completed ->
    if x.e_mismatch then
      Fault.Silent_corruption "a read disagreed with the shadow model"
    else if x.e_output <> golden.e_output then
      Fault.Silent_corruption "output diverged from the uninjected golden run"
    else if x.e_degraded then Fault.Degraded
    else Fault.Recovered

(* --- the campaign ------------------------------------------------------ *)

type run_result = {
  r_policy : policy_kind;
  r_scenario : Fault.scenario;
  r_seed : int;
  r_outcome : Fault.outcome;
  r_injected : int;
  r_digest : string;
}

type monitor_row = { m_identity : string; m_refused : bool; m_leaked : float }

type summary = {
  runs : run_result list;
  unsafe : int;
  nondeterministic : int;
  monitor : monitor_row list;
  ok : bool;
}

(* Pool runs whose only expected task exception is the golden-run
   [Failure]; unwrap it so callers keep seeing the documented
   exception rather than a [Task_error] envelope. *)
let pool_map ~jobs f xs =
  try Parallel.Pool.map ~jobs f xs
  with Parallel.Pool.Task_error (e :: _) -> raise e.Parallel.Pool.exn

let run ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(ops = 120) ?(scenarios = Fault.all)
    ?(policies = all_policies) ?(verify_determinism = false)
    ?(max_restarts = 3) ?(jobs = 1) ?checkpoint ?on_detected () =
  (* Every cell (golden and injected) builds its own platform, trace
     recorder and counters, so the (policy, scenario, seed) grid shards
     across domains; results come back in the campaign's canonical
     order and all cross-run state — the restart monitor, the
     non-determinism tally — is folded serially afterwards.  Verdicts,
     injection counts and digests are therefore identical at any
     [jobs] (the CI determinism gate diffs exactly this). *)
  let golden_keys =
    if scenarios = [] then []
    else List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) policies
  in
  let goldens =
    pool_map ~jobs
      (fun (policy, seed) ->
        let g = exec_run ~policy ~seed ~ops ~scenario:None ~cycle_cap:max_int in
        (match g.e_raw with
        | `Completed when not g.e_mismatch -> ()
        | _ ->
          failwith
            (Printf.sprintf "golden run failed (policy %s, seed %d)"
               (policy_name policy) seed));
        ((policy, seed), g))
      golden_keys
  in
  let golden_for policy seed = List.assoc (policy, seed) goldens in
  let cells =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun sc -> List.map (fun seed -> (policy, sc, seed)) seeds)
          scenarios)
      policies
  in
  let outcomes =
    pool_map ~jobs
      (fun (policy, sc, seed) ->
        let g = golden_for policy seed in
        let cap = (g.e_cycles * 32) + 50_000_000 in
        let x =
          cell_drive ?checkpoint ?on_detected
            (cell_build ~policy ~seed ~ops ~scenario:(Some sc) ~cycle_cap:cap)
        in
        let outcome = classify ~golden:g x in
        let diverged =
          verify_determinism
          &&
          let x2 =
            exec_run ~policy ~seed ~ops ~scenario:(Some sc) ~cycle_cap:cap
          in
          let o2 = classify ~golden:g x2 in
          o2 <> outcome || x2.e_digest <> x.e_digest
          || x2.e_injected <> x.e_injected
        in
        ( {
            r_policy = policy;
            r_scenario = sc;
            r_seed = seed;
            r_outcome = outcome;
            r_injected = x.e_injected;
            r_digest = x.e_digest;
          },
          diverged ))
      cells
  in
  (* The restart monitor sees every Detected verdict as one termination
     + restart of the policy's enclave identity.  Its clock never
     advances, so the whole campaign lands in one sliding window — the
     worst case for the termination channel.  Fed serially, in campaign
     order, after the sharded cells have drained. *)
  let mclock = Metrics.Clock.create Metrics.Cost_model.default in
  let monitor = Autarky.Restart_monitor.create ~clock:mclock ~max_restarts () in
  let nondet = ref 0 in
  let runs =
    List.map
      (fun (r, diverged) ->
        if diverged then incr nondet;
        (match r.r_outcome with
        | Fault.Detected reason ->
          let identity = policy_name r.r_policy in
          Autarky.Restart_monitor.record_termination monitor ~identity ~reason;
          ignore (Autarky.Restart_monitor.record_start monitor ~identity)
        | _ -> ());
        r)
      outcomes
  in
  let unsafe =
    List.length (List.filter (fun r -> not (Fault.is_safe r.r_outcome)) runs)
  in
  let monitor_rows =
    List.map
      (fun p ->
        let identity = policy_name p in
        {
          m_identity = identity;
          m_refused = Autarky.Restart_monitor.refused monitor ~identity;
          m_leaked =
            Autarky.Restart_monitor.leaked_bits_bound monitor ~identity;
        })
      policies
  in
  {
    runs;
    unsafe;
    nondeterministic = !nondet;
    monitor = monitor_rows;
    ok = unsafe = 0 && !nondet = 0;
  }
