(** The Byzantine-OS fault taxonomy and the detect-or-recover verdicts.

    A scenario is one way an actively malicious (or merely broken) OS
    can violate the kernel/runtime contract of §5.2.1; an outcome is how
    a run of the hardened runtime resolved under that scenario.  The
    safety property of the subsystem is that every injected fault
    resolves into one of the three {e safe} outcomes — the enclave never
    silently computes on corrupt state, never hangs, and never escapes
    the modeled termination path with a raw simulator exception. *)

(** What the injector does to the kernel/runtime boundary. *)
type scenario =
  | Bit_flip  (** flip one ciphertext bit of a stored sealed blob *)
  | Replay  (** re-install a stale (previously valid) sealed blob *)
  | Drop_blob  (** delete a stored blob — the OS "loses" an evicted page *)
  | Epc_burst
      (** transient [`Epc_exhausted] refusals on the fetch syscalls *)
  | Limit_shrink
      (** halve the process's EPC limit for a while, reclaiming and
          ballooning down to the new allowance, then restore it *)
  | Balloon_storm  (** repeated memory-pressure upcalls *)
  | Reentry  (** spurious handler invocation with no pending exception *)

val all : scenario list
val name : scenario -> string
val of_name : string -> scenario option
val pp_scenario : Format.formatter -> scenario -> unit

(** How one injected run resolved.  The first three are the acceptable
    verdicts; the last three are subsystem failures a campaign reports
    loudly. *)
type outcome =
  | Recovered  (** completed with output identical to the golden run *)
  | Degraded
      (** completed correctly, but a policy shrank its cache or budget
          under sustained pressure (["rt.policy_degraded"] > 0) *)
  | Detected of string
      (** modeled enclave termination with the given reason — the
          Autarky answer to tampering, replay, lost blobs, starvation
          and re-entrancy *)
  | Silent_corruption of string
      (** completed but diverged from the uninjected golden run *)
  | Hang of string  (** exceeded the cycle watchdog *)
  | Crash of string  (** a raw exception escaped the modeled paths *)

val is_safe : outcome -> bool
val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit
