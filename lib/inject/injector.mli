(** Deterministic, seed-driven Byzantine-OS fault injector.

    One injector drives one {!Fault.scenario} against one simulated
    platform.  It interposes on the kernel/runtime boundary in two ways:

    {ul
    {- {!wrap_os} wraps the {!Autarky.Os_iface.t} record before the
       runtime sees it (pass it as [?wrap_os] to
       {!Harness.System.create}), so armed [`Epc_exhausted] bursts are
       served to [fetch_pages] / [aug_pages] / [page_in_os_managed]
       calls from inside the runtime's own fetch paths;}
    {- {!tick}, called by the campaign between workload operations,
       draws one uniform variate and — at the configured [rate] — fires
       the scenario's action against the kernel, the backing store or
       the enclave directly.}}

    All randomness flows through a private {!Metrics.Rng.t}, so the same
    seed produces the same injection schedule, the same trace events and
    the same verdict, run after run.  Every firing emits a
    {!Trace.Event.Inject} event (actor [Attacker]) before acting. *)

type t

val create :
  seed:int64 -> scenario:Fault.scenario -> ?rate:float -> unit -> t
(** [rate] (default 0.08) is the per-{!tick} firing probability. *)

val scenario : t -> Fault.scenario

val injected : t -> int
(** Injections actually performed (a tick that found nothing to corrupt
    — e.g. no blob currently stored — does not count). *)

val wrap_os : t -> Autarky.Os_iface.t -> Autarky.Os_iface.t
(** Interpose on the kernel/runtime boundary.  Safe to install before
    {!attach}: the gate is inert until a burst is armed. *)

val attach : t -> sys:Harness.System.t -> targets:Sgx.Types.vpage list -> unit
(** Point the injector at a built platform.  [targets] are the pages
    whose backing-store blobs tampering scenarios may corrupt. *)

val tick : t -> unit
(** One injection opportunity.  Must be called outside the enclave
    (between workload operations).  May raise
    {!Sgx.Types.Enclave_terminated} when the fired action is detected
    immediately (e.g. [Reentry]). *)
